(* Command-line driver for the bespoke-processor flow.

   bespoke_cli asm prog.s            assemble and list
   bespoke_cli run prog.s            run on the ISS and the gate-level core
   bespoke_cli analyze prog.s        input-independent gate activity analysis
   bespoke_cli tailor prog.s         full flow: analyze, cut, report, verify
   bespoke_cli report                savings report across the benchmark suite
   bespoke_cli verify                verification campaign: equivalence +
                                     fault injection + shrunk repros
   bespoke_cli bench-list            list the built-in benchmark programs

   Programs are assembly for the selected core (`--core msp430`, the
   default, or `--core rv32`; see lib/isa/asm.mli and lib/rv32/asm.ml
   for the dialects); `--bench NAME` uses a built-in benchmark of that
   core instead of a file. *)

open Cmdliner

module Asm = Bespoke_isa.Asm
module Coredef = Bespoke_coreapi.Coredef
module Cores = Bespoke_cores.Cores
module Netlist = Bespoke_netlist.Netlist
module System = Bespoke_coreapi.System
module Lockstep = Bespoke_coreapi.Lockstep
module Activity = Bespoke_analysis.Activity
module B = Bespoke_programs.Benchmark
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Usage = Bespoke_core.Usage
module Report = Bespoke_power.Report
module Sta = Bespoke_power.Sta
module Voltage = Bespoke_power.Voltage
module Obs = Bespoke_obs.Obs
module Gate = Bespoke_netlist.Gate
module Bit = Bespoke_logic.Bit
module Provenance = Bespoke_report.Provenance
module Attribution = Bespoke_report.Attribution
module Artifact = Bespoke_report.Artifact
module Verify = Bespoke_verify.Verify
module Campaign = Bespoke_campaign.Campaign
module Pool = Bespoke_core.Pool
module Flowcache = Bespoke_core.Flowcache
module Stats = Bespoke_obs.Stats
module Guard = Bespoke_guard.Guard
module Mutation = Bespoke_mutation.Mutation

(* Not used directly here, but referencing them links their
   compilation units so their metrics register and appear in
   --metrics-out snapshots (with zero counts when the phase never
   ran); a module alias alone is resolved statically and does not
   force the link. *)
let _ = Bespoke_core.Profiling.profile

let ( let* ) r f = Result.bind r f

(* ---- common arguments ---- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"PROG.S" ~doc:"Assembly source file.")

let bench_arg =
  Arg.(value & opt (some string) None
       & info [ "bench" ] ~docv:"NAME" ~doc:"Use a built-in benchmark instead of a file.")

let core_arg =
  Arg.(value
       & opt string Cores.default.Cores.core.Coredef.name
       & info [ "core" ] ~docv:"CORE"
           ~doc:(Printf.sprintf
                   "Target core: %s (default %s).  Every flow stage — \
                    assembly, analysis, tailoring, verification, guards — \
                    runs against this core's descriptor."
                   (String.concat ", " Cores.names)
                   Cores.default.Cores.core.Coredef.name))

let resolve_core name : (Cores.entry, string) result =
  match Cores.find name with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown core %S; try: %s" name
         (String.concat ", " Cores.names))

let gpio_arg =
  Arg.(value & opt int 0 & info [ "gpio" ] ~docv:"N" ~doc:"GPIO input value for concrete runs.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Input-generation seed for benchmarks.")

(* Parallelism: --jobs N beats the BESPOKE_JOBS env var, which beats
   the single-domain default. *)
let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Domains for parallel work (overrides the \
                 $(b,BESPOKE_JOBS) environment variable; default 1; \
                 capped at the machine's core count).")

let apply_jobs jobs = Option.iter Pool.set_default_jobs jobs

let json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit a machine-readable JSON document on stdout (schema \
                 $(b,bespoke-report/v1)); all human-readable output moves to \
                 stderr so stdout stays parseable.")

let engine_conv =
  let parse s =
    match Runner.engine_of_string s with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown engine %S (expected full, event, packed or compiled)" s))
  in
  Arg.conv
    (parse, fun ppf e -> Format.pp_print_string ppf (Runner.engine_to_string e))

(* Every engine is bit-identical; they differ only in speed.  The
   default varies per subcommand: concrete runs default to the
   compiled engine, symbolic analysis to the event-driven one. *)
let engine_arg default =
  Arg.(value & opt engine_conv default
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:(Printf.sprintf
                   "Gate-level simulation engine: $(b,full), $(b,event), \
                    $(b,packed) or $(b,compiled) (default %s).  All engines \
                    are bit-identical."
                   (Runner.engine_to_string default)))

(* The packed engine is seed-parallel (many inputs in one bit-parallel
   run); subcommands that simulate a single concrete or symbolic
   execution cannot use it. *)
let require_scalar cmd engine =
  if engine = Runner.Packed then
    failwith
      (cmd
     ^ ": --engine packed is seed-parallel; choose full, event or compiled")

let load_program (entry : Cores.entry) file bench : (B.t, string) result =
  match bench, file with
  | Some name, _ -> (
    match Cores.benchmark entry name with
    | Some b -> Ok b
    | None ->
      Error
        (Printf.sprintf "unknown benchmark %S on core %s; try: %s" name
           entry.Cores.core.Coredef.name
           (String.concat ", "
              (List.map (fun b -> b.B.name) entry.Cores.benchmarks))))
  | None, Some path -> (
    try
      let ic = open_in path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Ok
        {
          B.name = Filename.basename path;
          description = path;
          group = B.Sensor;
          source = src;
          input_ranges = [];
          gen_inputs = (fun _ -> ([], 0));
          uses_irq = false;
          irq_pulses = (fun _ -> []);
          result_addrs =
            (* raw files have no declared result words outside the
               default core's convention *)
            (if entry.Cores.core.Coredef.name
                = Cores.default.Cores.core.Coredef.name
             then [ B.output_base ]
             else []);
        }
    with Sys_error m -> Error m)
  | None, None -> Error "provide a source file or --bench NAME"

(* Default benchmark suite of a core, for suite-wide subcommands
   (report, verify): the plain benchmarks — the RTOS kernel and SUBNEG
   characterization stay opt-in via --bench. *)
let suite (entry : Cores.entry) =
  if entry.Cores.core.Coredef.name = Cores.default.Cores.core.Coredef.name
  then B.all
  else entry.Cores.benchmarks

let handle = function
  | Ok () -> `Ok ()
  | Error m -> `Error (false, m)

(* ---- observability (also enabled by the BESPOKE_TRACE env var) ---- *)

let obs_args =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Enable telemetry and write a Chrome-trace JSONL span log to \
                   $(docv) (one event per line; wrap in a JSON array, e.g. \
                   'jq -s .', to open in a trace viewer).")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Enable telemetry and write a JSON metrics snapshot \
                   (counters, gauges, histograms) to $(docv).  With \
                   $(b,--metrics-interval) the file becomes a \
                   $(b,bespoke-metrics/v1) JSONL time series instead.")
  in
  let interval =
    Arg.(value & opt (some int) None
         & info [ "metrics-interval" ] ~docv:"MS"
             ~doc:"Enable telemetry and sample the metrics registry every \
                   $(docv) milliseconds into a $(b,bespoke-metrics/v1) JSONL \
                   time series (at $(b,--metrics-out), default \
                   $(b,bespoke_metrics.jsonl)).")
  in
  Term.(const (fun t m i -> (t, m, i)) $ trace $ metrics $ interval)

(* Run [f] with telemetry enabled if requested, then write the
   requested outputs and print the per-phase summary to stderr.
   [finish] is idempotent and registered at_exit as well as in the
   protect, so a crashed, interrupted (Sys.Break) or directly-exiting
   run still leaves its partial trace/metrics behind. *)
let with_obs (trace, metrics_out, interval) f =
  match interval with
  | Some ms when ms <= 0 ->
    (* the sampler itself clamps to 1 ms, but an explicit request for a
       zero or negative period is a typo worth stopping on *)
    Error (Printf.sprintf "--metrics-interval must be at least 1 ms (got %d)" ms)
  | _ ->
  if trace <> None || metrics_out <> None || interval <> None then Obs.enable ();
  (match interval with
  | Some ms ->
    let path = Option.value metrics_out ~default:"bespoke_metrics.jsonl" in
    Obs.Sampler.start ~path ~interval_ms:ms ()
  | None -> ());
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      if Obs.enabled () then begin
        if Obs.Sampler.running () then begin
          let p = Obs.Sampler.path () in
          Obs.Sampler.stop ();
          Option.iter
            (fun p -> Printf.eprintf "wrote metrics time series to %s\n" p)
            p
        end;
        Option.iter
          (fun path ->
            Obs.Trace.write_jsonl path;
            Printf.eprintf "wrote trace to %s\n" path)
          trace;
        (match (metrics_out, interval) with
        | Some path, None ->
          let oc = open_out path in
          output_string oc (Obs.Metrics.snapshot_json ());
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "wrote metrics to %s\n" path
        | _ -> () (* the sampler owns the file when an interval is set *));
        let summary = Obs.Trace.summary () in
        if summary <> "" then prerr_string summary
      end
    end
  in
  at_exit finish;
  Fun.protect ~finally:finish f

(* --cache-stats: dump the flow-cache registry to stderr at exit (even
   on failure — the counts explain what the run did or did not pay
   for). *)
let cache_stats_arg =
  Arg.(value & flag
       & info [ "cache-stats" ]
           ~doc:"Print per-flowcache hit/miss/eviction counts to stderr when \
                 the command finishes.")

let with_cache_stats enabled f =
  Fun.protect
    ~finally:(fun () ->
      if enabled then prerr_string (Flowcache.stats_table ()))
    f

let catching f =
  try f () with
  | Sys.Break -> Error "interrupted (partial telemetry artifacts flushed)"
  | Asm.Error { line; message } ->
    Error (Printf.sprintf "assembly error, line %d: %s" line message)
  | Bespoke_rv32.Asm.Error m -> Error ("assembly error: " ^ m)
  | Activity.Analysis_error m -> Error ("analysis error: " ^ m)
  | Runner.Mismatch m -> Error ("verification mismatch: " ^ m)
  | Pool.Task_errors errs ->
    Error
      (Printf.sprintf "%d parallel task(s) failed: %s" (List.length errs)
         (String.concat "; "
            (List.map
               (fun (i, e) ->
                 Printf.sprintf "task %d: %s" i
                   (match e with
                   | Failure m -> m
                   | e -> Printexc.to_string e))
               errs)))
  | Failure m -> Error m

(* ---- savings-report entry (shared by tailor --json and report) ---- *)

let group_name = function
  | B.Sensor -> "sensor"
  | B.Eembc -> "eembc"
  | B.Unit_test -> "unit-test"
  | B.Synthetic -> "synthetic"

let build_entry (b : B.t) (report : Activity.report) ~net ~bespoke
    (stats : Cut.stats) prov =
  let sta0 = Sta.analyze net and sta1 = Sta.analyze bespoke in
  {
    Artifact.name = b.B.name;
    group = group_name b.B.group;
    gates_original = stats.Cut.original_gates;
    gates_cut = stats.Cut.cut_gates;
    gates_bespoke = stats.Cut.bespoke_gates;
    area_original = stats.Cut.original_area;
    area_bespoke = stats.Cut.bespoke_area;
    leak_original = Report.leakage_nw net;
    leak_bespoke = Report.leakage_nw bespoke;
    critical_ps_original = sta0.Sta.critical_path_ps;
    critical_ps_bespoke = sta1.Sta.critical_path_ps;
    vmin =
      Voltage.vmin ~critical_path_ps:sta1.Sta.critical_path_ps
        ~period_ps:sta0.Sta.critical_path_ps;
    paths = report.Activity.paths;
    merges = report.Activity.merges;
    prunes = report.Activity.prunes;
    escapes = report.Activity.escaped_paths;
    cycles = report.Activity.total_cycles;
    cut_reasons = Provenance.histogram prov;
    modules = Attribution.table ~original:net ~bespoke;
  }

(* ---- per-gate explanation (tailor --explain) ---- *)

let resolve_gate_ref net s =
  match int_of_string_opt s with
  | Some id ->
    if id >= 0 && id < Netlist.gate_count net then Ok [ id ]
    else
      Error
        (Printf.sprintf "gate id %d out of range (design has %d gates)" id
           (Netlist.gate_count net))
  | None -> (
    match Netlist.find_bits net s with
    | ids -> Ok (Array.to_list ids)
    | exception Not_found ->
      Error (Printf.sprintf "no gate, net or port named %S" s))

let explain_gate oc net (report : Activity.report) (prov : Provenance.t) id =
  let g = net.Netlist.gates.(id) in
  Printf.fprintf oc "gate %d: %s (drive %d)%s%s\n" id (Gate.op_name g.Gate.op)
    g.Gate.drive
    (if g.Gate.module_path = "" then ""
     else ", module " ^ g.Gate.module_path)
    (match Netlist.names_of net id with
    | [] -> ""
    | names -> ", aka " ^ String.concat ", " names);
  (match report.Activity.first_toggle.(id) with
  | Some ft ->
    Printf.fprintf oc "  first possible toggle: cycle %d, tree node %d%s\n"
      ft.Activity.ft_cycle ft.Activity.ft_node
      (if ft.Activity.ft_pc >= 0 then
         Printf.sprintf ", pc=0x%04x" ft.Activity.ft_pc
       else " (before the first instruction boundary)");
    let tr = report.Activity.tree in
    let rec chain acc n =
      if n < 0 then acc else chain (n :: acc) tr.(n).Activity.parent
    in
    Printf.fprintf oc "  tree path: %s\n"
      (String.concat " -> "
         (List.map
            (fun n -> Printf.sprintf "%d[%s]" n tr.(n).Activity.edge_label)
            (chain [] ft.Activity.ft_node)))
  | None -> ());
  match prov.Provenance.reason.(id) with
  | None -> Printf.fprintf oc "  port pin / tie cell: free in the silicon model\n"
  | Some r ->
    Printf.fprintf oc "  %s\n" (Format.asprintf "%a" Provenance.pp_reason r);
    if Provenance.is_cut r && Array.length g.Gate.fanin > 0 then begin
      (* The causal chain: the fanin cone with the reset-time constants
         Algorithm 1 recorded, bounded to keep the output readable. *)
      Printf.fprintf oc "  fanin cone (recorded constants):\n";
      let seen = Hashtbl.create 16 in
      let rec walk depth fid =
        if depth <= 3 && not (Hashtbl.mem seen fid) then begin
          Hashtbl.replace seen fid ();
          let fg = net.Netlist.gates.(fid) in
          Printf.fprintf oc "  %s- gate %d %s%s\n"
            (String.make (2 * depth) ' ')
            fid (Gate.op_name fg.Gate.op)
            (if report.Activity.possibly_toggled.(fid) then " (can toggle)"
             else
               Printf.sprintf " = %c"
                 (Bit.to_char report.Activity.constant_values.(fid)));
          if not report.Activity.possibly_toggled.(fid) then
            Array.iter (walk (depth + 1)) fg.Gate.fanin
        end
      in
      Array.iter (walk 1) g.Gate.fanin
    end

(* ---- asm ---- *)

let cmd_asm =
  let run file bench core_name =
    handle
      (catching (fun () ->
           let* entry = resolve_core core_name in
           let* b = load_program entry file bench in
           let img = entry.Cores.core.Coredef.assemble b.B.source in
           print_string (img.Coredef.listing ());
           Ok ()))
  in
  Cmd.v (Cmd.info "asm" ~doc:"Assemble a program and print its listing")
    Term.(ret (const run $ file_arg $ bench_arg $ core_arg))

(* ---- run ---- *)

let cmd_run =
  let netlist_arg =
    Arg.(value & opt (some file) None
         & info [ "netlist" ] ~docv:"FILE"
             ~doc:"Run on a saved (bespoke) netlist instead of the stock core.")
  in
  let guard_flag =
    Arg.(value & flag
         & info [ "guard" ]
             ~doc:"Tailor the benchmark and run it with the shadow guard \
                   watcher attached: every hardware-checkable cut assumption \
                   is re-checked at each committed cycle.  Exits non-zero if \
                   any assumption is violated (on the program the design was \
                   tailored to, it never is).")
  in
  let guard_out_arg =
    Arg.(value & opt (some string) None
         & info [ "guard-out" ] ~docv:"FILE"
             ~doc:"With $(b,--guard): write the bespoke-guard/v1 JSONL \
                   violation stream to $(docv).")
  in
  let run file bench core_name gpio seed netlist_file engine jobs guard
      guard_out obs =
    handle
      (with_obs obs @@ fun () ->
       catching (fun () ->
           apply_jobs jobs;
           let* entry = resolve_core core_name in
           let core = entry.Cores.core in
           let* b = load_program entry file bench in
           if guard then begin
             if netlist_file <> None then
               Error
                 "--guard tailors the benchmark itself and cannot rebuild the \
                  cut provenance of a saved netlist; drop --netlist"
             else begin
               require_scalar "run" engine;
               let report, net = Runner.analyze ~core b in
               let bespoke, _, prov =
                 Cut.tailor_explained net
                   ~possibly_toggled:report.Activity.possibly_toggled
                   ~constants:report.Activity.constant_values
               in
               let plan =
                 Guard.plan ~original:net ~bespoke ~prov
                   ~possibly_toggled:report.Activity.possibly_toggled
                   ~constants:report.Activity.constant_values
               in
               let w = Guard.watch_bespoke plan in
               let o =
                 Runner.check_equivalence ~engine ~attach:(Guard.attach w)
                   ~netlist:bespoke ~core b ~seed
               in
               Printf.printf
                 "ran %d instructions, %d cycles (gate level verified against \
                  the ISS)\n"
                 o.Runner.instructions o.Runner.cycles;
               Printf.printf "guard: %d monitor(s) over %d cycle(s): %s\n"
                 (List.length plan.Guard.p_monitors)
                 (Guard.cycles_checked w)
                 (if Guard.clean w then "clean" else "VIOLATED");
               List.iter
                 (fun v -> Format.printf "%a@." (Guard.pp_violation plan) v)
                 (Guard.violations w);
               (match guard_out with
               | None -> ()
               | Some path ->
                 let oc = open_out path in
                 Guard.write_stream oc plan ~core:core.Coredef.name
                   ~design:b.B.name ~workload:b.B.name ~mode:"shadow" w;
                 close_out oc;
                 Printf.eprintf "wrote guard stream to %s\n" path);
               if Guard.clean w then Ok ()
               else
                 Error
                   (Printf.sprintf "%d cut-assumption violation(s)"
                      (Guard.total_violations w))
             end
           end
           else begin
           let netlist = Option.map Bespoke_netlist.Serial.load netlist_file in
           let o =
             if b.B.gen_inputs seed = ([], 0) && gpio <> 0 then begin
               (* raw program: run via lockstep with the given gpio *)
               require_scalar "run" engine;
               let img = core.Coredef.assemble b.B.source in
               let r =
                 Lockstep.run ~mode:(Runner.mode_of_engine engine) ?netlist
                   ~gpio_in:gpio ~core img
               in
               Printf.printf "ran %d instructions, %d cycles, gpio_out=0x%0*x\n"
                 r.Lockstep.instructions r.Lockstep.cycles
                 (Coredef.hex_digits core) r.Lockstep.gpio_final;
               None
             end
             else Some (Runner.check_equivalence ~engine ?netlist ~core b ~seed)
           in
           (match o with
           | Some o ->
             Printf.printf
               "ran %d instructions, %d cycles (gate level verified against the ISS)\n"
               o.Runner.instructions o.Runner.cycles;
             List.iter
               (fun (a, v) -> Printf.printf "result[0x%04x] = 0x%04x\n" a v)
               o.Runner.results;
             Printf.printf "gpio_out = 0x%04x\n" o.Runner.gpio_out
           | None -> ());
           Ok ()
           end))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a program on the ISS and the gate-level core")
    Term.(
      ret
        (const run $ file_arg $ bench_arg $ core_arg $ gpio_arg $ seed_arg
        $ netlist_arg $ engine_arg Runner.Compiled $ jobs_arg $ guard_flag
        $ guard_out_arg $ obs_args))

(* ---- analyze ---- *)

let cmd_analyze =
  let tree_dot_arg =
    Arg.(value & opt (some string) None
         & info [ "tree-dot" ] ~docv:"FILE"
             ~doc:"Write the explored symbolic execution tree as a Graphviz \
                   digraph to $(docv) (nodes colored by how each path ended).")
  in
  let run file bench core_name json tree_dot engine jobs obs =
    handle
      (with_obs obs @@ fun () ->
       catching (fun () ->
           apply_jobs jobs;
           let* entry = resolve_core core_name in
           let core = entry.Cores.core in
           let* b = load_program entry file bench in
           require_scalar "analyze" engine;
           let report, net = Runner.analyze ~engine ~core b in
           let oc = if json then stderr else stdout in
           Printf.fprintf oc
             "explored %d paths (%d merges, %d prunes, %d escapes), %d cycles\n"
             report.Activity.paths report.Activity.merges report.Activity.prunes
             report.Activity.escaped_paths report.Activity.total_cycles;
           let rows = Usage.per_module net report.Activity.possibly_toggled in
           Printf.fprintf oc "exercisable gates per module:\n%!";
           let ff = Format.formatter_of_out_channel oc in
           Format.fprintf ff "%a@?" Usage.pp_per_module rows;
           (match tree_dot with
           | None -> ()
           | Some path ->
             let och = open_out path in
             output_string och (Activity.tree_dot report);
             close_out och;
             Printf.fprintf oc "wrote execution tree to %s (%d nodes)\n" path
               (Array.length report.Activity.tree));
           if json then
             print_string
               (Artifact.analysis_to_json ~name:b.B.name
                  ~paths:report.Activity.paths ~merges:report.Activity.merges
                  ~prunes:report.Activity.prunes
                  ~escapes:report.Activity.escaped_paths
                  ~cycles:report.Activity.total_cycles
                  ~modules:
                    (List.filter_map
                       (fun r ->
                         if r.Usage.module_name = "(total)" then None
                         else
                           Some (r.Usage.module_name, r.Usage.active, r.Usage.total))
                       rows));
           Ok ()))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Input-independent gate activity analysis of a program")
    Term.(
      ret
        (const run $ file_arg $ bench_arg $ core_arg $ json_arg $ tree_dot_arg
        $ engine_arg Runner.Event $ jobs_arg $ obs_args))

(* ---- tailor ---- *)

let cmd_tailor =
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ] ~doc:"Verify the bespoke design (input-based + symbolic shadow).")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE"
             ~doc:"Save the bespoke netlist in reloadable text form (see the \
                   run command's --netlist).")
  in
  let explain_arg =
    Arg.(value & opt_all string []
         & info [ "explain" ] ~docv:"GATE"
             ~doc:"Explain what happened to a gate of the original design \
                   (numeric id, or a net/port name like $(b,pc) or \
                   $(b,pc\\[3\\])): first-toggle provenance for exercisable \
                   gates, the typed cut reason and recorded fanin-cone \
                   constants otherwise.  Repeatable.")
  in
  let instrument_arg =
    Arg.(value & flag
         & info [ "instrument" ]
             ~doc:"Add deployment guards to the bespoke design: one \
                   comparator + sticky violation DFF per checkable cut \
                   assumption, OR-reduced into a 1-bit \
                   $(b,guard_violation) output port.  Reports the guard's \
                   own area/power overhead; with $(b,--save) the saved \
                   netlist is the instrumented one.")
  in
  let run file bench core_name verify save json explain instrument engine jobs
      obs cache_stats =
    handle
      (with_obs obs @@ fun () ->
       with_cache_stats cache_stats @@ fun () ->
       catching (fun () ->
           apply_jobs jobs;
           let* entry = resolve_core core_name in
           let core = entry.Cores.core in
           let* b = load_program entry file bench in
           require_scalar "tailor" engine;
           let report, net = Runner.analyze ~engine ~core b in
           let bespoke, stats, prov =
             Cut.tailor_explained net
               ~possibly_toggled:report.Activity.possibly_toggled
               ~constants:report.Activity.constant_values
           in
           let guarded =
             if not instrument then None
             else begin
               let plan =
                 Guard.plan ~original:net ~bespoke ~prov
                   ~possibly_toggled:report.Activity.possibly_toggled
                   ~constants:report.Activity.constant_values
               in
               let inst = Guard.instrument plan in
               Some (plan, inst)
             end
           in
           let oc = if json then stderr else stdout in
           let ff = Format.formatter_of_out_channel oc in
           Format.fprintf ff "%a@." Cut.pp_stats stats;
           Option.iter
             (fun (plan, inst) ->
               Format.fprintf ff "guard: %a@." Guard.pp_hw_stats
                 (Guard.hw_stats plan inst))
             guarded;
           let sta0 = Sta.analyze net and sta1 = Sta.analyze bespoke in
           let vmin =
             Voltage.vmin ~critical_path_ps:sta1.Sta.critical_path_ps
               ~period_ps:sta0.Sta.critical_path_ps
           in
           Printf.fprintf oc
             "critical path %.0f ps -> %.0f ps (%.1f%% slack); Vmin %.2f V\n"
             sta0.Sta.critical_path_ps sta1.Sta.critical_path_ps
             (100.0
             *. Sta.slack_fraction ~baseline_ps:sta0.Sta.critical_path_ps sta1)
             vmin;
           Printf.fprintf oc "area %.0f -> %.0f um2\n" (Report.area_um2 net)
             (Report.area_um2 bespoke);
           let* () =
             List.fold_left
               (fun acc s ->
                 let* () = acc in
                 let* ids = resolve_gate_ref net s in
                 List.iter (explain_gate oc net report prov) ids;
                 Ok ())
               (Ok ()) explain
           in
           if verify then begin
             List.iter
               (fun seed ->
                 ignore
                   (Runner.check_equivalence ~engine ~netlist:bespoke ~core b
                      ~seed))
               [ 1; 2; 3 ];
             let img = Runner.image ~core b in
             let sys = System.create ~core img in
             let sh = System.create ~netlist:bespoke ~core img in
             let config =
               {
                 Activity.default_config with
                 Activity.ram_x_ranges = b.B.input_ranges;
                 irq_x = b.B.uses_irq;
               }
             in
             ignore (Activity.analyze ~config ~shadow:sh sys);
             Printf.fprintf oc
               "verified: input-based equivalence (3 seeds) and symbolic shadow analysis\n"
           end;
           (match save with
           | None -> ()
           | Some path ->
             let saved =
               match guarded with
               | Some (_, inst) -> inst.Guard.i_design
               | None -> bespoke
             in
             Bespoke_netlist.Serial.save path saved;
             (* the usable-gate set over the original design enables
                later in-field update checks *)
             Bespoke_netlist.Serial.save_gate_set (path ^ ".gates")
               report.Activity.possibly_toggled;
             Printf.fprintf oc "saved %s netlist to %s (+ %s.gates)\n"
               (if guarded = None then "bespoke" else "instrumented bespoke")
               path path);
           if json then
             print_string
               (Artifact.to_json
                  [ build_entry b report ~net ~bespoke stats prov ]);
           Ok ()))
  in
  Cmd.v
    (Cmd.info "tailor" ~doc:"Produce and report the bespoke design for a program")
    Term.(
      ret
        (const run $ file_arg $ bench_arg $ core_arg $ verify_arg $ save_arg
        $ json_arg $ explain_arg $ instrument_arg $ engine_arg Runner.Event
        $ jobs_arg $ obs_args $ cache_stats_arg))

(* ---- report (savings artifact across benchmarks) ---- *)

let cmd_report =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run bench core_name json out obs =
    handle
      (with_obs obs @@ fun () ->
       catching (fun () ->
           let* entry = resolve_core core_name in
           let core = entry.Cores.core in
           let* benches =
             match bench with
             | None -> Ok (suite entry)
             | Some name ->
               let* b = load_program entry None (Some name) in
               Ok [ b ]
           in
           let entries =
             List.map
               (fun (b : B.t) ->
                 Printf.eprintf "tailoring %-18s ...\n%!" b.B.name;
                 let report, net = Runner.analyze ~core b in
                 let bespoke, stats, prov =
                   Cut.tailor_explained net
                     ~possibly_toggled:report.Activity.possibly_toggled
                     ~constants:report.Activity.constant_values
                 in
                 build_entry b report ~net ~bespoke stats prov)
               benches
           in
           let text =
             if json then Artifact.to_json entries
             else Format.asprintf "%a" Artifact.pp_text entries
           in
           (match out with
           | None -> print_string text
           | Some path ->
             let och = open_out path in
             output_string och text;
             close_out och;
             Printf.eprintf "wrote %s (%d benchmarks)\n" path
               (List.length entries));
           Ok ()))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Tailor one or all benchmarks and emit the savings report \
             (human-readable text, or a schema-versioned JSON artifact with \
             per-module attribution and cut-reason histograms)")
    Term.(ret (const run $ bench_arg $ core_arg $ json_arg $ out_arg $ obs_args))

(* ---- verify (paper Section 5.1 / Table 3 campaign) ---- *)

let cmd_verify =
  let faults_arg =
    Arg.(value & opt int 8
         & info [ "faults" ] ~docv:"N"
             ~doc:"Number of netlist faults injected per benchmark (layer 2 \
                   of the campaign); 0 disables fault injection.")
  in
  let budget_arg =
    Arg.(value & opt (some int) None
         & info [ "explore-budget" ] ~docv:"N"
             ~doc:"Candidate budget for the coverage-directed input search.")
  in
  let run file bench core_name json faults seed budget engine jobs obs
      cache_stats =
    handle
      (with_obs obs @@ fun () ->
       with_cache_stats cache_stats @@ fun () ->
       catching (fun () ->
           apply_jobs jobs;
           let* entry = resolve_core core_name in
           let core = entry.Cores.core in
           let* benches =
             match bench, file with
             | None, None -> Ok (suite entry)
             | _ ->
               let* b = load_program entry file bench in
               Ok [ b ]
           in
           require_scalar "verify" engine;
           List.iter
             (fun (b : B.t) ->
               Printf.eprintf "verifying %-18s ...\n%!" b.B.name)
             benches;
           let campaigns =
             Verify.run_campaign ~engine ~faults ~seed ?explore_budget:budget
               ~core benches
           in
           let oc = if json then stderr else stdout in
           let ff = Format.formatter_of_out_channel oc in
           Format.fprintf ff "%a@?" Verify.pp_text campaigns;
           if json then print_string (Verify.to_json campaigns);
           let bad =
             List.filter (fun (c : Verify.campaign) -> not c.Verify.equivalent)
               campaigns
           in
           let missed =
             List.filter
               (fun c ->
                 let s = Verify.kill_stats c in
                 Verify.detectable_score_pct s < 100.0 -. 1e-9)
               campaigns
           in
           match bad, missed with
           | [], [] -> Ok ()
           | b :: _, _ ->
             Error
               (Printf.sprintf "verification FAILED: %s is not equivalent"
                  b.Verify.benchmark)
           | [], m :: _ ->
             Error
               (Printf.sprintf
                  "verification FAILED: %s: a detectable injected fault \
                   survived the checker"
                  m.Verify.benchmark)))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the verification campaign: symbolic + input-based \
             equivalence checking of the bespoke design (Table 3 columns), \
             adversarial netlist-fault injection with a mutation-kill score, \
             and shrunk repros for every divergence.  Exits non-zero if any \
             design is non-equivalent or any detectable fault survives.")
    Term.(
      ret
        (const run $ file_arg $ bench_arg $ core_arg $ json_arg $ faults_arg
        $ seed_arg $ budget_arg $ engine_arg Runner.Compiled $ jobs_arg
        $ obs_args $ cache_stats_arg))

(* ---- campaign (batch jobs on the pool, JSONL stream) ---- *)

let cmd_campaign =
  let jobs_file_arg =
    Arg.(value & opt (some file) None
         & info [ "file" ] ~docv:"JOBS.TXT"
             ~doc:"Job-list file: one $(b,KIND BENCH [core=NAME] [seed=N] \
                   [faults=N] [mutant=N] [engine=E]) per line, where KIND is \
                   analyze, tailor, report, verify, run or guard; blank lines \
                   and # comments are skipped.")
  in
  let job_specs_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"JOB"
             ~doc:"Inline job specs, colon-separated: \
                   $(b,KIND:BENCH[:core=NAME][:seed=N][:faults=N][:engine=E]), \
                   e.g. $(b,verify:mult:core=rv32:faults=4).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the bespoke-campaign/v1 JSONL stream to $(docv) \
                   (default stdout).")
  in
  let progress_arg =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:"Render a live status line (done/running/failed, jobs/s, \
                   cache hit-rate, ETA) on stderr and interleave \
                   machine-readable heartbeat records into the JSONL stream.")
  in
  let run jobs_file specs out jobs progress obs cache_stats =
    handle
      (with_obs obs @@ fun () ->
       with_cache_stats cache_stats @@ fun () ->
       catching (fun () ->
           apply_jobs jobs;
           let* from_file =
             match jobs_file with
             | None -> Ok []
             | Some path -> Campaign.parse_file path
           in
           let* from_specs =
             List.fold_left
               (fun acc spec ->
                 let* js = acc in
                 let line =
                   String.concat " " (String.split_on_char ':' spec)
                 in
                 match Campaign.parse_line line with
                 | Ok (Some j) -> Ok (j :: js)
                 | Ok None -> Error (Printf.sprintf "empty job spec %S" spec)
                 | Error m -> Error (Printf.sprintf "%S: %s" spec m))
               (Ok []) specs
           in
           let js = from_file @ List.rev from_specs in
           if js = [] then
             Error "no jobs: give --file JOBS.TXT and/or inline JOB specs"
           else begin
             let oc, close =
               match out with
               | None -> (stdout, fun () -> flush stdout)
               | Some path ->
                 let oc = open_out path in
                 (oc, fun () -> close_out oc)
             in
             Fun.protect ~finally:close @@ fun () ->
             let jobs_n = Pool.default_jobs () in
             let cores =
               List.sort_uniq compare
                 (List.map (fun j -> j.Campaign.core) js)
             in
             output_string oc
               (Campaign.header_jsonl ~jobs:jobs_n ~cores
                  ~total:(List.length js));
             output_char oc '\n';
             let emit o =
               output_string oc (Campaign.outcome_jsonl o);
               output_char oc '\n';
               flush oc;
               (* with --progress the status line replaces per-job logs *)
               if not progress then
                 match o.Campaign.status with
                 | Ok _ ->
                   Printf.eprintf "job %d %s %s: ok%s (%.3f s)\n%!"
                     o.Campaign.o_index
                     (Campaign.kind_to_string o.Campaign.o_job.Campaign.kind)
                     (Campaign.program_name o.Campaign.o_job.Campaign.program)
                     (if o.Campaign.cached then " (cached)" else "")
                     o.Campaign.time_s
                 | Error m ->
                   Printf.eprintf "job %d %s %s: ERROR %s\n%!"
                     o.Campaign.o_index
                     (Campaign.kind_to_string o.Campaign.o_job.Campaign.kind)
                     (Campaign.program_name o.Campaign.o_job.Campaign.program)
                     m
             in
             (* Heartbeats: one every ~1/8 of the campaign (at least one,
                always one at the end), written after the outcome record
                that triggered them — the callbacks share the campaign's
                serialization lock, so the stream never interleaves.  The
                stderr line is wall-clock throttled instead, to stay
                readable on fast cache-warm runs. *)
             let hb_every = max 1 (List.length js / 8) in
             let hb_seq = ref 0 in
             let last_render = ref 0.0 in
             let on_event ev (p : Campaign.progress) =
               (match ev with
               | Campaign.Job_finished _
                 when p.Campaign.p_done mod hb_every = 0
                      || p.Campaign.p_done = p.Campaign.p_total ->
                 output_string oc (Campaign.heartbeat_jsonl ~seq:!hb_seq p);
                 output_char oc '\n';
                 flush oc;
                 incr hb_seq
               | _ -> ());
               let t = Unix.gettimeofday () in
               if
                 t -. !last_render >= 0.1
                 || p.Campaign.p_done = p.Campaign.p_total
               then begin
                 last_render := t;
                 Printf.eprintf "\r%s%!" (Campaign.progress_line p)
               end
             in
             let _, summary =
               Campaign.run ~on_outcome:emit
                 ?on_event:(if progress then Some on_event else None)
                 js
             in
             if progress then prerr_newline ();
             output_string oc (Campaign.summary_jsonl summary);
             output_char oc '\n';
             Printf.eprintf
               "campaign: %d job(s), %d ok, %d failed, %d cache hit(s), %.3f s \
                at %d job(s) in flight\n%!"
               summary.Campaign.total summary.Campaign.ok
               summary.Campaign.failed summary.Campaign.cache_hits
               summary.Campaign.wall_s summary.Campaign.jobs_used;
             (* per-job failures are error records in the stream, not a
                campaign failure — the campaign completed *)
             Ok ()
           end))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a batch of flow jobs (analyze/tailor/report/verify/run/\
             guard) across the domain pool, memoized by the content-addressed \
             flow cache, streaming schema-versioned bespoke-campaign/v1 \
             JSONL.  A job that fails yields an error record; the campaign \
             always completes.")
    Term.(
      ret
        (const run $ jobs_file_arg $ job_specs_arg $ out_arg $ jobs_arg
       $ progress_arg $ obs_args $ cache_stats_arg))

(* ---- guard (deployment-guard replay; paper Section 5.3 risk) ---- *)

let cmd_guard =
  let mutant_arg =
    Arg.(value & opt (some int) None
         & info [ "mutant" ] ~docv:"ID"
             ~doc:"Replay mutant $(docv) of the program (a one-instruction \
                   bug-fix update; see $(b,--list)) instead of the program \
                   itself — the paper's Section 5.3 in-field-update risk, \
                   made observable.")
  in
  let list_arg =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"List the program's mutants (id, type, line, change) and \
                   exit.")
  in
  let mode_arg =
    Arg.(value
         & opt (enum [ ("hw", `Hw); ("shadow", `Shadow); ("original", `Original) ])
             `Hw
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"What watches the replay: $(b,hw) (default) runs the \
                   instrumented design — the synthesized guard logic drives \
                   the $(b,guard_violation) port and the shadow watcher \
                   cross-checks it; $(b,shadow) runs the plain bespoke design \
                   with only the zero-hardware watcher; $(b,original) replays \
                   on the original core, where every assumption (including \
                   unmonitorable ones) is checkable.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the bespoke-guard/v1 JSONL stream (header, one \
                   record per violated assumption with its cut provenance, \
                   summary) to $(docv).")
  in
  let max_cycles_arg =
    Arg.(value & opt int 300_000
         & info [ "max-cycles" ] ~docv:"N"
             ~doc:"Replay deadline in cycles (default 300000) — a workload \
                   the design was not tailored for may never halt; the \
                   violations seen before the deadline are the point.")
  in
  let run file bench core_name mutant list_only mode out seed max_cycles engine
      jobs obs cache_stats =
    handle
      (with_obs obs @@ fun () ->
       with_cache_stats cache_stats @@ fun () ->
       catching (fun () ->
           apply_jobs jobs;
           let* entry = resolve_core core_name in
           let core = entry.Cores.core in
           let msp430 =
             core.Coredef.name = Cores.default.Cores.core.Coredef.name
           in
           let* () =
             if (mutant <> None || list_only) && not msp430 then
               Error
                 (Printf.sprintf
                    "guard mutants are not available on core %s (the mutation \
                     catalog rewrites %s assembly)"
                    core.Coredef.name Cores.default.Cores.core.Coredef.name)
             else Ok ()
           in
           let* b = load_program entry file bench in
           if list_only then begin
             List.iter
               (fun (m : Mutation.mutant) ->
                 Printf.printf "%4d  %-20s line %-3d %s -> %s\n" m.Mutation.id
                   (Mutation.type_name m.Mutation.mtype)
                   m.Mutation.line m.Mutation.original m.Mutation.replacement)
               (Mutation.mutants b);
             Ok ()
           end
           else begin
             require_scalar "guard" engine;
             let* workload =
               match mutant with
               | None -> Ok b
               | Some id -> (
                 let ms = Mutation.mutants b in
                 match
                   List.find_opt (fun m -> m.Mutation.id = id) ms
                 with
                 | Some m -> Ok (Mutation.to_benchmark b m)
                 | None ->
                   Error
                     (Printf.sprintf
                        "no mutant %d of %s (%d mutant(s); see guard --list)"
                        id b.B.name (List.length ms)))
             in
             let report, net = Runner.analyze ~core b in
             let bespoke, _, prov =
               Cut.tailor_explained net
                 ~possibly_toggled:report.Activity.possibly_toggled
                 ~constants:report.Activity.constant_values
             in
             let plan =
               Guard.plan ~original:net ~bespoke ~prov
                 ~possibly_toggled:report.Activity.possibly_toggled
                 ~constants:report.Activity.constant_values
             in
             let mode_s =
               match mode with
               | `Hw -> "hw"
               | `Shadow -> "shadow"
               | `Original -> "original"
             in
             let watcher, netlist =
               match mode with
               | `Hw ->
                 let inst = Guard.instrument plan in
                 Printf.printf "guard hardware: %s\n"
                   (Format.asprintf "%a" Guard.pp_hw_stats
                      (Guard.hw_stats plan inst));
                 (Guard.watch_bespoke plan, inst.Guard.i_design)
               | `Shadow -> (Guard.watch_bespoke plan, bespoke)
               | `Original -> (Guard.watch_original plan, net)
             in
             Printf.printf
               "replaying %s on %s's %s design: %d assumption(s), %d \
                monitor(s) (%d implied, %d unmonitorable)\n%!"
               workload.B.name b.B.name
               (if mode = `Original then "original" else "bespoke")
               (List.length plan.Guard.p_assumptions)
               (List.length plan.Guard.p_monitors)
               plan.Guard.p_implied plan.Guard.p_unmonitorable;
             let rp =
               Guard.replay ~engine ~max_cycles watcher ~core ~netlist workload
                 ~seed
             in
             (match rp.Guard.rp_result with
             | Ok o -> Printf.printf "halted after %d cycle(s)\n" o.Runner.g_cycles
             | Error m -> Printf.printf "replay did not complete: %s\n" m);
             let vs = Guard.violations watcher in
             List.iteri
               (fun i v ->
                 if i < 20 then
                   Format.printf "%a@." (Guard.pp_violation plan) v)
               vs;
             if List.length vs > 20 then
               Printf.printf "... and %d more violating gate(s)\n"
                 (List.length vs - 20);
             (match rp.Guard.rp_hw_violation with
             | Some bit ->
               Printf.printf "guard_violation port = %c\n" (Bit.to_char bit)
             | None -> ());
             (match out with
             | None -> ()
             | Some path ->
               let oc = open_out path in
               Guard.write_stream oc plan ~core:core.Coredef.name
                 ~design:b.B.name ~workload:workload.B.name ~mode:mode_s
                 watcher;
               close_out oc;
               Printf.eprintf "wrote guard stream to %s\n" path);
             let hw_hit = rp.Guard.rp_hw_violation = Some Bit.One in
             if Guard.clean watcher && not hw_hit then begin
               Printf.printf "clean: every cut assumption held\n";
               Ok ()
             end
             else
               Error
                 (Printf.sprintf
                    "%d cut-assumption violation(s) on %d gate(s)%s"
                    (Guard.total_violations watcher)
                    (List.length vs)
                    (if hw_hit then "; guard_violation=1" else ""))
           end))
  in
  Cmd.v
    (Cmd.info "guard"
       ~doc:"Replay a workload (the program itself, or one of its \
             single-instruction mutants) against the program's tailored \
             design with the deployment guards watching: synthesized \
             cut-assumption monitors in hardware mode, the zero-overhead \
             shadow watcher otherwise.  Streams bespoke-guard/v1 JSONL with \
             cut/keep provenance per violation and exits non-zero when any \
             assumption is violated.")
    Term.(
      ret
        (const run $ file_arg $ bench_arg $ core_arg $ mutant_arg $ list_arg
        $ mode_arg $ out_arg $ seed_arg $ max_cycles_arg
        $ engine_arg Runner.Compiled $ jobs_arg $ obs_args $ cache_stats_arg))

(* ---- update-check (paper Section 3.5) ---- *)

let cmd_update_check =
  let set_arg =
    Arg.(required & opt (some file) None
         & info [ "design-set" ] ~docv:"FILE.gates"
             ~doc:"Usable-gate set saved by 'tailor --save'.")
  in
  let run file bench core_name set_file =
    handle
      (catching (fun () ->
           let* entry = resolve_core core_name in
           let core = entry.Cores.core in
           let* b = load_program entry file bench in
           let design_set = Bespoke_netlist.Serial.load_gate_set set_file in
           let report, _ = Runner.analyze ~core b in
           let needed = report.Activity.possibly_toggled in
           if Array.length needed <> Array.length design_set then
             Error "gate set does not match this core (size mismatch)"
           else begin
             let missing = ref 0 in
             Array.iteri
               (fun i n -> if n && not design_set.(i) then incr missing)
               needed;
             if !missing = 0 then begin
               Printf.printf
                 "SUPPORTED: the update runs on the existing bespoke design\n";
               Ok ()
             end
             else begin
               Printf.printf
                 "NOT SUPPORTED: the update needs %d gates the design does not \
                  have\n"
                 !missing;
               Ok ()
             end
           end))
  in
  Cmd.v
    (Cmd.info "update-check"
       ~doc:"Check whether a new binary runs on an existing bespoke design")
    Term.(ret (const run $ file_arg $ bench_arg $ core_arg $ set_arg))

(* ---- export ---- *)

let cmd_export =
  let fmt_arg =
    Arg.(value
         & opt (enum [ ("verilog", `Verilog); ("dot-modules", `Dot_modules);
                       ("dot-gates", `Dot_gates); ("netlist", `Netlist) ])
             `Verilog
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: verilog, dot-modules, dot-gates or netlist \
                   (reloadable text form).")
  in
  let bespoke_arg =
    Arg.(value & flag
         & info [ "bespoke" ]
             ~doc:"Export the tailored (bespoke) design instead of the stock core.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run file bench core_name fmt bespoke out =
    handle
      (catching (fun () ->
           let* entry = resolve_core core_name in
           let core = entry.Cores.core in
           let* b = load_program entry file bench in
           let net =
             if bespoke then begin
               let report, net = Runner.analyze ~core b in
               let design, _ =
                 Cut.tailor net
                   ~possibly_toggled:report.Activity.possibly_toggled
                   ~constants:report.Activity.constant_values
               in
               design
             end
             else Runner.shared_netlist core
           in
           let text =
             match fmt with
             | `Verilog ->
               Bespoke_netlist.Export.to_verilog
                 ~module_name:
                   (if bespoke then "bespoke_" ^ b.B.name
                    else if
                      core.Coredef.name
                      = Cores.default.Cores.core.Coredef.name
                    then "openmcu"
                    else core.Coredef.name)
                 net
             | `Dot_modules -> Bespoke_netlist.Export.module_graph_dot net
             | `Dot_gates ->
               Bespoke_netlist.Export.gate_graph_dot ~max_gates:10_000 net
             | `Netlist -> Bespoke_netlist.Serial.to_string net
           in
           (match out with
           | None -> print_string text
           | Some path ->
             let oc = open_out path in
             output_string oc text;
             close_out oc;
             Printf.printf "wrote %s (%d bytes)\n" path (String.length text));
           Ok ()))
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a design as structural Verilog or a Graphviz graph")
    Term.(
      ret
        (const run $ file_arg $ bench_arg $ core_arg $ fmt_arg $ bespoke_arg
       $ out_arg))

(* ---- trace (VCD) ---- *)

let cmd_trace =
  let out_arg =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"VCD output file.")
  in
  let run file bench core_name seed out =
    handle
      (catching (fun () ->
           let* entry = resolve_core core_name in
           let core = entry.Cores.core in
           let* b = load_program entry file bench in
           let sys =
             System.create ~netlist:(Runner.shared_netlist core) ~core
               (Runner.image ~core b)
           in
           System.reset sys;
           let ram_writes, gpio = b.B.gen_inputs seed in
           List.iter (fun (a, v) -> System.load_ram_word sys a v) ram_writes;
           System.set_gpio_in_int sys gpio;
           System.set_irq sys Bespoke_logic.Bit.Zero;
           let buf = Buffer.create (1 lsl 16) in
           let vcd =
             Bespoke_sim.Vcd.create buf (System.engine sys)
               ~signals:core.Coredef.trace_signals
           in
           let cycles = ref 0 in
           while (not (System.halted sys)) && !cycles < 100_000 do
             Bespoke_sim.Vcd.sample vcd ~time:!cycles;
             System.step_cycle sys;
             incr cycles
           done;
           Bespoke_sim.Vcd.sample vcd ~time:!cycles;
           Bespoke_sim.Vcd.finish vcd ~time:(!cycles + 1);
           let oc = open_out out in
           Buffer.output_buffer oc buf;
           close_out oc;
           Printf.printf "wrote %s (%d cycles)\n" out !cycles;
           Ok ()))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a program and dump a VCD waveform")
    Term.(ret (const run $ file_arg $ bench_arg $ core_arg $ seed_arg $ out_arg))

(* ---- stats (aggregate telemetry artifacts; regression compare) ---- *)

let cmd_stats =
  let trace_arg =
    Arg.(value & opt (some file) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Aggregate a Chrome-trace JSONL file into a per-span \
                   self-time table.")
  in
  let metrics_arg =
    Arg.(value & opt (some file) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Summarize a $(b,bespoke-metrics/v1) JSONL time series \
                   (final counters/gauges, histogram p50/p90/p99).")
  in
  let campaign_arg =
    Arg.(value & opt (some file) None
         & info [ "campaign" ] ~docv:"FILE"
             ~doc:"Summarize a $(b,bespoke-campaign/v1) JSONL stream \
                   (outcomes, per-kind time, heartbeats).")
  in
  let guard_arg =
    Arg.(value & opt (some file) None
         & info [ "guard" ] ~docv:"FILE"
             ~doc:"Summarize a $(b,bespoke-guard/v1) JSONL stream (monitor \
                   coverage, violation verdict, cut-reason histogram).")
  in
  let top_arg =
    Arg.(value & opt int 15
         & info [ "top" ] ~docv:"N" ~doc:"Rows in the span table (default 15).")
  in
  let compare_arg =
    Arg.(value & flag
         & info [ "compare" ]
             ~doc:"Compare two bench artifacts (positional $(b,OLD NEW): \
                   BENCH_sim.json or BENCH_history.jsonl, last entry) and \
                   exit non-zero if any throughput metric regressed beyond \
                   $(b,--threshold).")
  in
  let threshold_arg =
    Arg.(value & opt float 10.0
         & info [ "threshold" ] ~docv:"PCT"
             ~doc:"Regression threshold for --compare, in percent (default \
                   10: flag metrics that dropped more than 10%).")
  in
  let files_arg =
    Arg.(value & pos_all file []
         & info [] ~docv:"FILE" ~doc:"For --compare: the OLD and NEW bench \
                                      artifacts.")
  in
  let run trace metrics campaign guard top compare threshold files =
    handle
      (catching (fun () ->
           let ( let* ) = Result.bind in
           if compare then
             match files with
             | [ old_f; new_f ] ->
               let* old_e = Stats.load_bench old_f in
               let* new_e = Stats.load_bench new_f in
               let threshold = threshold /. 100.0 in
               let c = Stats.compare_benches ~threshold old_e new_e in
               print_string (Stats.render_compare ~threshold old_e new_e c);
               if c.Stats.regressions = [] then Ok ()
               else
                 Error
                   (Printf.sprintf
                      "%d metric(s) regressed more than %.0f%% (worst: %s, \
                       %+.1f%%)"
                      (List.length c.Stats.regressions)
                      (threshold *. 100.0)
                      (List.hd c.Stats.regressions).Stats.d_metric
                      (100.0
                      *. ((List.hd c.Stats.regressions).Stats.d_ratio -. 1.0)))
             | _ -> Error "--compare needs exactly two files: OLD NEW"
           else if
             trace = None && metrics = None && campaign = None && guard = None
           then
             Error
               "nothing to do: give --trace, --metrics, --campaign and/or \
                --guard, or --compare OLD NEW"
           else begin
             let* () =
               match trace with
               | None -> Ok ()
               | Some path ->
                 let* spans = Stats.load_trace path in
                 Printf.printf "spans (%s):\n%s" path
                   (Stats.render_spans ~top spans);
                 Ok ()
             in
             let* () =
               match metrics with
               | None -> Ok ()
               | Some path ->
                 let* series = Stats.load_metrics path in
                 Printf.printf "metrics (%s): %s" path
                   (Stats.render_series series);
                 Ok ()
             in
             let* () =
               match campaign with
               | None -> Ok ()
               | Some path ->
                 let* c = Stats.load_campaign path in
                 Printf.printf "campaign (%s): %s" path
                   (Stats.render_campaign c);
                 Ok ()
             in
             let* () =
               match guard with
               | None -> Ok ()
               | Some path ->
                 let* g = Stats.load_guard path in
                 Printf.printf "guard (%s): %s" path (Stats.render_guard g);
                 Ok ()
             in
             Ok ()
           end))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Aggregate flow telemetry artifacts — per-span self-time tables \
             from traces, metrics time-series summaries, campaign stream \
             digests — and compare bench artifacts for performance \
             regressions (non-zero exit when --compare finds one).")
    Term.(
      ret
        (const run $ trace_arg $ metrics_arg $ campaign_arg $ guard_arg
       $ top_arg $ compare_arg $ threshold_arg $ files_arg))

(* ---- bench-list ---- *)

let cmd_bench_list =
  let core_filter_arg =
    Arg.(value
         & opt (some string) None
         & info [ "core" ] ~docv:"CORE"
             ~doc:(Printf.sprintf "Only list one core's suite: %s."
                     (String.concat ", " Cores.names)))
  in
  let run core_filter =
    let list_entry (entry : Cores.entry) =
      Printf.printf "core %s:\n" entry.Cores.core.Coredef.name;
      List.iter
        (fun (b : B.t) ->
          Printf.printf "  %-18s %s\n" b.B.name b.B.description)
        entry.Cores.benchmarks
    in
    match core_filter with
    | None ->
      List.iter list_entry Cores.all;
      `Ok ()
    | Some name -> (
      match resolve_core name with
      | Ok entry ->
        list_entry entry;
        `Ok ()
      | Error m -> `Error (false, m))
  in
  Cmd.v
    (Cmd.info "bench-list"
       ~doc:"List the built-in benchmark programs, per core")
    Term.(ret (const run $ core_filter_arg))

let () =
  (* SIGINT becomes Sys.Break, which [catching] reports after the
     telemetry finalizers have flushed partial artifacts *)
  Sys.catch_break true;
  let info =
    Cmd.info "bespoke_cli" ~version:"1.0"
      ~doc:"Bespoke processor tailoring (ISCA 2017 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            cmd_asm; cmd_run; cmd_analyze; cmd_tailor; cmd_report; cmd_verify;
            cmd_campaign; cmd_guard; cmd_stats; cmd_update_check; cmd_export;
            cmd_trace; cmd_bench_list;
          ]))
