(* Experiment harness: regenerates every table and figure of the
   paper's evaluation.  Each table/figure is one [run_*] function,
   registered in [sections]; `dune exec bench/main.exe` runs them all,
   `-- --only fig11` runs one.  EXPERIMENTS.md records paper-vs-
   measured values from a full run. *)

module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate
module Isa = Bespoke_isa.Isa
module B = Bespoke_programs.Benchmark
module Rtos = Bespoke_programs.Rtos
module Subneg = Bespoke_programs.Subneg
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Usage = Bespoke_core.Usage
module Multi = Bespoke_core.Multi
module Profiling = Bespoke_core.Profiling
module Module_prune = Bespoke_core.Module_prune
module Power_gating = Bespoke_core.Power_gating
module Report = Bespoke_power.Report
module Sta = Bespoke_power.Sta
module Voltage = Bespoke_power.Voltage
module Mutation = Bespoke_mutation.Mutation
module Coverage = Bespoke_coverage.Coverage
module System = Bespoke_cpu.System
module Engine = Bespoke_sim.Engine
module Compile = Bespoke_sim.Compile
module Pool = Bespoke_core.Pool
module Flowcache = Bespoke_core.Flowcache
module Campaign = Bespoke_campaign.Campaign
module Guard = Bespoke_guard.Guard
module Obs = Bespoke_obs.Obs

let freq_hz = 1e8
let profile_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* The paper's evaluation targets the MSP430; every table and figure
   below runs the flow against that core.  The bench-sim section also
   records per-core throughput rows for the other registered cores. *)
let core = Bespoke_cpu.Msp430.core

let printf = Printf.printf
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Shared, lazily computed per-benchmark context                        *)

type ctx = {
  bench : B.t;
  report : Activity.report;
  analysis_seconds : float;
  bespoke : Netlist.t;
  stats : Cut.stats;
  baseline_profile : Profiling.t Lazy.t;
  bespoke_profile : Profiling.t Lazy.t;
}

let stock () = Runner.shared_netlist core

let ctx_cache : (string, ctx) Hashtbl.t = Hashtbl.create 32

let compute_ctx (b : B.t) : ctx =
  let (report, net), analysis_seconds = time (fun () -> Runner.analyze ~core b) in
  let bespoke, stats =
    Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values
  in
  {
    bench = b;
    report;
    analysis_seconds;
    bespoke;
    stats;
    baseline_profile =
      lazy (Profiling.profile ~core ~netlist:net ~seeds:profile_seeds b);
    bespoke_profile =
      lazy (Profiling.profile ~core ~netlist:bespoke ~seeds:profile_seeds b);
  }

let ctx_of (b : B.t) : ctx =
  match Hashtbl.find_opt ctx_cache b.B.name with
  | Some c -> c
  | None ->
    let c = compute_ctx b in
    Hashtbl.replace ctx_cache b.B.name c;
    c

(* With BESPOKE_JOBS > 1 the per-benchmark analyses (the dominant cost
   of a full run) are computed up front on the domain pool; the cache
   itself is only touched from the main domain. *)
let prewarm_ctxs () =
  if Pool.default_jobs () > 1 then begin
    ignore (stock ());
    let todo =
      List.filter (fun (b : B.t) -> not (Hashtbl.mem ctx_cache b.B.name)) B.table1
    in
    let cs = Pool.map (fun b -> (b, compute_ctx b)) todo in
    List.iter (fun ((b : B.t), c) -> Hashtbl.replace ctx_cache b.B.name c) cs
  end

let baseline_power (c : ctx) =
  let p = Lazy.force c.baseline_profile in
  Report.power ~freq_hz ~toggles:p.Profiling.total_toggles
    ~cycles:p.Profiling.total_cycles (stock ())

let bespoke_power ?(vdd = 1.0) (c : ctx) =
  let p = Lazy.force c.bespoke_profile in
  Report.power ~vdd ~freq_hz ~toggles:p.Profiling.total_toggles
    ~cycles:p.Profiling.total_cycles c.bespoke

let pct x = 100.0 *. x
let saving now base = pct (1.0 -. (now /. base))

let baseline_sta = lazy (Sta.analyze (stock ()))
let clock_period_ps () = (Lazy.force baseline_sta).Sta.critical_path_ps

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)

let run_table1 () =
  printf "=== Table 1: benchmark suite and max execution length ===\n";
  printf "%-18s %-52s %10s\n" "Benchmark" "Description" "Max cycles";
  List.iter
    (fun (b : B.t) ->
      let worst =
        List.fold_left
          (fun acc seed ->
            let o = Runner.run_iss ~core b ~seed in
            max acc o.Runner.cycles)
          0 [ 1; 2; 3; 4; 5 ]
      in
      printf "%-18s %-52s %10d\n" b.B.name b.B.description worst)
    B.table1;
  printf
    "(gate-level executions take one additional reset cycle; inputs are \
     scaled down vs. the paper — see DESIGN.md)\n"

(* ------------------------------------------------------------------ *)
(* Figure 2: profiling underestimates and varies with inputs           *)

let run_fig2 () =
  printf "=== Figure 2: unused gates (%%) under input profiling ===\n";
  printf "%-18s %8s %8s %12s\n" "Benchmark" "min" "max" "all-inputs";
  List.iter
    (fun (b : B.t) ->
      let p = Profiling.profile ~core ~netlist:(stock ()) ~seeds:profile_seeds b in
      let mn, mx, inter = Profiling.untoggled_fraction_range (stock ()) p in
      printf "%-18s %8.1f %8.1f %12.1f\n" b.B.name (pct mn) (pct mx) (pct inter))
    B.table1

(* ------------------------------------------------------------------ *)
(* Figures 3/4: unique vs common untoggled gates                        *)

let diff_table name_a name_b (a : B.t) (b : B.t) ~same_inputs =
  let seeds_a = profile_seeds in
  let seeds_b = if same_inputs then profile_seeds else profile_seeds in
  let pa = Profiling.profile ~core ~netlist:(stock ()) ~seeds:seeds_a a in
  let pb = Profiling.profile ~core ~netlist:(stock ()) ~seeds:seeds_b b in
  let d =
    Usage.compare_unused (stock ()) pa.Profiling.union_toggled
      pb.Profiling.union_toggled
  in
  printf "common untoggled: %d gates\n" d.Usage.common_untoggled;
  printf "untoggled only by %s: %d gates\n" name_a d.Usage.unique_a;
  printf "untoggled only by %s: %d gates\n" name_b d.Usage.unique_b;
  printf "%-16s %14s %14s\n" "module" ("uniq " ^ name_a) ("uniq " ^ name_b);
  let all_mods =
    List.sort_uniq String.compare
      (List.map fst d.Usage.per_module_unique_a
      @ List.map fst d.Usage.per_module_unique_b)
  in
  List.iter
    (fun m ->
      let get l = Option.value ~default:0 (List.assoc_opt m l) in
      printf "%-16s %14d %14d\n" m
        (get d.Usage.per_module_unique_a)
        (get d.Usage.per_module_unique_b))
    all_mods

let run_fig3 () =
  printf "=== Figure 3: FFT vs binSearch untoggled-gate comparison ===\n";
  diff_table "FFT" "binSearch" (B.find "FFT") (B.find "binSearch")
    ~same_inputs:false

let run_fig4 () =
  printf "=== Figure 4: intFilt vs scrambled-intFilt (same inputs) ===\n";
  diff_table "intFilt" "scrambled" (B.find "intFilt")
    (B.find "scrambled-intFilt") ~same_inputs:true

(* ------------------------------------------------------------------ *)
(* Figure 10: toggleable fraction with per-module breakdown             *)

let run_fig10 () =
  printf "=== Figure 10: fraction of gates toggleable (symbolic analysis) ===\n";
  let mods = Netlist.modules (stock ()) in
  printf "%-18s %8s" "Benchmark" "usable%%";
  List.iter (fun m -> printf " %10s" (if m = "" then "(glue)" else m)) mods;
  printf "\n";
  (* the paper's first bar: each module's share of the baseline *)
  let all_toggled = Array.make (Netlist.gate_count (stock ())) true in
  let base_rows = Usage.per_module (stock ()) all_toggled in
  printf "%-18s %8s" "(baseline)" "-";
  List.iter
    (fun m ->
      match List.find_opt (fun r -> r.Usage.module_name = m) base_rows with
      | Some r -> printf " %10d" r.Usage.total
      | None -> printf " %10s" "-")
    mods;
  printf "\n";
  List.iter
    (fun (b : B.t) ->
      let c = ctx_of b in
      let rows =
        Usage.per_module (stock ()) c.report.Activity.possibly_toggled
      in
      printf "%-18s %8.1f" b.B.name
        (pct (Usage.usable_fraction (stock ()) c.report.Activity.possibly_toggled));
      List.iter
        (fun m ->
          match List.find_opt (fun r -> r.Usage.module_name = m) rows with
          | Some r ->
            printf " %6d/%-4d" r.Usage.active r.Usage.total
          | None -> printf " %10s" "-")
        mods;
      printf "\n")
    B.table1

(* ------------------------------------------------------------------ *)
(* Figure 11: savings vs the baseline processor                         *)

let run_fig11 () =
  printf "=== Figure 11: gate / area / power savings vs baseline ===\n";
  printf "%-18s %8s %8s %8s\n" "Benchmark" "gates%%" "area%%" "power%%";
  let g_acc = ref [] and a_acc = ref [] and p_acc = ref [] in
  List.iter
    (fun (b : B.t) ->
      let c = ctx_of b in
      let g =
        saving
          (float_of_int c.stats.Cut.bespoke_gates)
          (float_of_int c.stats.Cut.original_gates)
      in
      let a = saving c.stats.Cut.bespoke_area c.stats.Cut.original_area in
      let p =
        saving (bespoke_power c).Report.total_nw (baseline_power c).Report.total_nw
      in
      g_acc := g :: !g_acc;
      a_acc := a :: !a_acc;
      p_acc := p :: !p_acc;
      printf "%-18s %8.1f %8.1f %8.1f\n" b.B.name g a p)
    B.table1;
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  printf "%-18s %8.1f %8.1f %8.1f   (paper averages: 62%% area, 50%% power)\n"
    "(average)" (avg !g_acc) (avg !a_acc) (avg !p_acc)

(* ------------------------------------------------------------------ *)
(* Figure 12: vs coarse-grained module-level bespoke                    *)

let run_fig12 () =
  printf "=== Figure 12: savings vs module-level (Xtensa-like) pruning ===\n";
  printf "%-18s %18s %8s %8s %8s\n" "Benchmark" "removed modules" "gates%%"
    "area%%" "power%%";
  List.iter
    (fun (b : B.t) ->
      let c = ctx_of b in
      let coarse, removed =
        Module_prune.prune (stock ())
          ~possibly_toggled:c.report.Activity.possibly_toggled
          ~constants:c.report.Activity.constant_values
      in
      let coarse_profile = Profiling.profile ~core ~netlist:coarse ~seeds:profile_seeds b in
      let p_coarse =
        Report.power ~freq_hz ~toggles:coarse_profile.Profiling.total_toggles
          ~cycles:coarse_profile.Profiling.total_cycles coarse
      in
      let p_fine = bespoke_power c in
      printf "%-18s %18s %8.1f %8.1f %8.1f\n" b.B.name
        (String.concat "," removed)
        (saving
           (float_of_int (Netlist.num_gates c.bespoke))
           (float_of_int (Netlist.num_gates coarse)))
        (saving (Report.area_um2 c.bespoke) (Report.area_um2 coarse))
        (saving p_fine.Report.total_nw p_coarse.Report.total_nw))
    B.table1

(* ------------------------------------------------------------------ *)
(* Table 2: exploiting exposed timing slack                             *)

let run_table2 () =
  printf "=== Table 2: timing slack, Vmin, power savings from slack ===\n";
  printf "%-18s %8s %6s %10s %10s %8s\n" "Benchmark" "slack%%" "Vmin"
    "addl-sav%%" "total-sav%%" "fmax+%%";
  let period = clock_period_ps () in
  let fsum = ref 0.0 in
  List.iter
    (fun (b : B.t) ->
      let c = ctx_of b in
      let sta = Sta.analyze c.bespoke in
      let slack = Sta.slack_fraction ~baseline_ps:period sta in
      let vmin =
        Voltage.vmin ~critical_path_ps:sta.Sta.critical_path_ps
          ~period_ps:period
      in
      let base = (baseline_power c).Report.total_nw in
      let p_nom = (bespoke_power c).Report.total_nw in
      let p_min = (bespoke_power ~vdd:vmin c).Report.total_nw in
      (* the alternative use of slack: clock the design faster at
         nominal voltage (paper footnote 6: 13% on average) *)
      let fscale =
        Voltage.max_frequency_scale
          ~critical_path_ps:sta.Sta.critical_path_ps ~period_ps:period
      in
      fsum := !fsum +. (fscale -. 1.0);
      printf "%-18s %8.1f %6.2f %10.1f %10.1f %8.1f\n" b.B.name (pct slack)
        vmin
        (pct ((p_nom -. p_min) /. base))
        (saving p_min base)
        (pct (fscale -. 1.0)))
    B.table1;
  printf
    "(average frequency headroom at nominal voltage: %.1f%%; paper: 13%%)\n"
    (pct (!fsum /. float_of_int (List.length B.table1)))

(* ------------------------------------------------------------------ *)
(* Table 3: verification runtime and coverage                           *)

let run_table3 () =
  printf "=== Table 3: verification effort and coverage ===\n";
  printf "%-18s %8s %8s %6s %6s %7s %7s %7s %6s\n" "Benchmark" "X-sim(s)"
    "inp-sim(s)" "paths" "inputs" "line%%" "br%%" "brdir%%" "gate%%";
  List.iter
    (fun (b : B.t) ->
      let c = ctx_of b in
      let cov = Coverage.explore ~core b in
      let _, input_time =
        time (fun () -> ignore (Runner.run_gate ~core ~netlist:c.bespoke b ~seed:1))
      in
      (* gate coverage of the bespoke design under the kept inputs *)
      let p =
        Profiling.profile ~core ~netlist:c.bespoke ~seeds:cov.Coverage.kept_seeds b
      in
      let covered = Usage.usable_fraction c.bespoke p.Profiling.union_toggled in
      printf "%-18s %8.2f %8.2f %6d %6d %7.0f %7.0f %7.0f %6.0f\n" b.B.name
        c.analysis_seconds
        (input_time *. float_of_int (List.length cov.Coverage.kept_seeds))
        c.report.Activity.paths
        (List.length cov.Coverage.kept_seeds)
        cov.Coverage.line_pct cov.Coverage.branch_pct cov.Coverage.branch_dir_pct
        (pct covered))
    B.table1

(* ------------------------------------------------------------------ *)
(* Figure 13: multi-program bespoke designs                             *)

let run_fig13 () =
  printf "=== Figure 13: N-program bespoke designs (ranges over all C(15,N)) ===\n";
  let benches = Array.of_list B.table1 in
  let n = Array.length benches in
  let ctxs = Array.map ctx_of benches in
  (* only real gates count *)
  let real =
    Array.mapi
      (fun id (g : Gate.t) ->
        ignore id;
        match g.Gate.op with Gate.Input | Gate.Const _ -> false | _ -> true)
      (stock ()).Netlist.gates
  in
  let real_set = Multi.bitset_of real in
  let sets =
    Array.map
      (fun c ->
        let s = Multi.bitset_of c.report.Activity.possibly_toggled in
        Array.mapi (fun i w -> w land real_set.(i)) s)
      ctxs
  in
  let total_real = Multi.popcount real_set in
  let (best, worst), sweep_seconds = time (fun () -> Multi.sweep sets) in
  printf "sweep: %d subsets in %.3f s (%d domain(s))\n"
    ((1 lsl n) - 1) sweep_seconds (Pool.default_jobs ());
  printf
    "%3s %14s %14s %14s %14s %14s %14s\n" "N" "min-gates" "max-gates"
    "min-area" "max-area" "min-power" "max-power";
  let evaluate subset =
    let members =
      List.filter_map
        (fun i -> if subset land (1 lsl i) <> 0 then Some i else None)
        (List.init n (fun i -> i))
    in
    let reports =
      List.map
        (fun i ->
          ( ctxs.(i).report.Activity.possibly_toggled,
            ctxs.(i).report.Activity.constant_values ))
        members
    in
    let design, _ = Multi.tailor_multi (stock ()) ~reports in
    (* representative activity: one run of each member on the design *)
    let toggles = Array.make (Netlist.gate_count design) 0 in
    let cycles = ref 0 in
    List.iter
      (fun i ->
        let o = Runner.run_gate ~core ~netlist:design benches.(i) ~seed:1 in
        Array.iteri (fun k t -> toggles.(k) <- toggles.(k) + t) o.Runner.toggles;
        cycles := !cycles + o.Runner.sim_cycles)
      members;
    let p = Report.power ~freq_hz ~toggles ~cycles:!cycles design in
    (Report.area_um2 design, p.Report.total_nw)
  in
  let base_area = Report.area_um2 (stock ()) in
  (* baseline power normalization: average of the 15 single-app
     baseline powers *)
  let base_power =
    let sum =
      Array.fold_left
        (fun acc c -> acc +. (baseline_power c).Report.total_nw)
        0.0 ctxs
    in
    sum /. float_of_int n
  in
  for k = 1 to n do
    let bc, bs = best.(k) and wc, ws = worst.(k) in
    let min_area, min_pow = evaluate bs in
    let max_area, max_pow = evaluate ws in
    printf "%3d %14.3f %14.3f %14.3f %14.3f %14.3f %14.3f\n" k
      (float_of_int bc /. float_of_int total_real)
      (float_of_int wc /. float_of_int total_real)
      (min_area /. base_area) (max_area /. base_area) (min_pow /. base_power)
      (max_pow /. base_power)
  done;
  printf "(values normalized to the baseline design)\n"

(* ------------------------------------------------------------------ *)
(* Tables 4/5 and Figure 14: in-field updates via mutants               *)

let mutation_benchmarks =
  [ "binSearch"; "inSort"; "rle"; "tea8"; "Viterbi"; "autocorr" ]

let mutant_reports_cache :
    (string, (Mutation.mutant * bool array option) list) Hashtbl.t =
  Hashtbl.create 8

let mutant_reports name =
  match Hashtbl.find_opt mutant_reports_cache name with
  | Some r -> r
  | None ->
    let b = B.find name in
    let ms = Mutation.mutants b in
    ignore (stock ());
    let r =
      Pool.map
        (fun m ->
          let mb = Mutation.to_benchmark b m in
          match Runner.analyze ~core mb with
          | rep, _ -> (m, Some rep.Activity.possibly_toggled)
          | exception Activity.Analysis_error _ -> (m, None))
        ms
    in
    Hashtbl.replace mutant_reports_cache name r;
    r

let run_table4 () =
  printf "=== Table 4: mutants generated per type ===\n";
  printf "%-18s %8s %8s %8s %8s\n" "Benchmark" "TypeI" "TypeII" "TypeIII" "Total";
  List.iter
    (fun name ->
      let ms = Mutation.mutants (B.find name) in
      let by = Mutation.count_by_type ms in
      let get t = List.assoc t by in
      printf "%-18s %8d %8d %8d %8d\n" name (get Mutation.Conditional)
        (get Mutation.Computation)
        (get Mutation.Loop_conditional)
        (List.length ms))
    mutation_benchmarks

let run_table5 () =
  printf "=== Table 5: %% of mutants supported by the base bespoke design ===\n";
  printf "%-18s %8s %8s %8s %8s %10s\n" "Benchmark" "TypeI%%" "TypeII%%"
    "TypeIII%%" "Total%%" "analyzed";
  List.iter
    (fun name ->
      let c = ctx_of (B.find name) in
      let reports = mutant_reports name in
      let supported_of ty =
        let of_ty =
          List.filter
            (fun ((m : Mutation.mutant), r) -> m.Mutation.mtype = ty && r <> None)
            reports
        in
        if of_ty = [] then None
        else
          let sup =
            List.length
              (List.filter
                 (fun (_, r) ->
                   Multi.supported
                     ~design_toggled:c.report.Activity.possibly_toggled
                     ~app_toggled:(Option.get r))
                 of_ty)
          in
          Some (100.0 *. float_of_int sup /. float_of_int (List.length of_ty))
      in
      let str = function None -> "-" | Some v -> Printf.sprintf "%.0f" v in
      let analyzed = List.length (List.filter (fun (_, r) -> r <> None) reports) in
      let all_ty =
        let ok =
          List.filter
            (fun (_, r) ->
              match r with
              | Some t ->
                Multi.supported
                  ~design_toggled:c.report.Activity.possibly_toggled
                  ~app_toggled:t
              | None -> false)
            reports
        in
        if analyzed = 0 then 0.0
        else 100.0 *. float_of_int (List.length ok) /. float_of_int analyzed
      in
      printf "%-18s %8s %8s %8s %8.0f %10d\n" name
        (str (supported_of Mutation.Conditional))
        (str (supported_of Mutation.Computation))
        (str (supported_of Mutation.Loop_conditional))
        all_ty analyzed)
    mutation_benchmarks

let run_fig14 () =
  printf "=== Figure 14: designs supporting all mutants (normalized) ===\n";
  printf "%-18s %10s %10s %10s\n" "Benchmark" "gates" "area" "power";
  List.iter
    (fun name ->
      let b = B.find name in
      let c = ctx_of b in
      let reports =
        (c.report.Activity.possibly_toggled, c.report.Activity.constant_values)
        :: List.filter_map
             (fun (_, r) ->
               Option.map
                 (fun t -> (t, c.report.Activity.constant_values))
                 r)
             (mutant_reports name)
      in
      let design, stats = Multi.tailor_multi (stock ()) ~reports in
      let p = Profiling.profile ~core ~netlist:design ~seeds:[ 1; 2; 3 ] b in
      let pw =
        Report.power ~freq_hz ~toggles:p.Profiling.total_toggles
          ~cycles:p.Profiling.total_cycles design
      in
      let base = baseline_power c in
      printf "%-18s %10.3f %10.3f %10.3f\n" name
        (float_of_int stats.Cut.bespoke_gates
        /. float_of_int stats.Cut.original_gates)
        (stats.Cut.bespoke_area /. stats.Cut.original_area)
        (pw.Report.total_nw /. base.Report.total_nw))
    mutation_benchmarks

(* ------------------------------------------------------------------ *)
(* subneg: Turing-complete update support                               *)

let run_subneg () =
  printf "=== Section 5.3: subneg-enhanced bespoke processors ===\n";
  let sub_report, _ = Runner.analyze ~core Subneg.characterization in
  printf "subneg interpreter alone: %.1f%% of gates usable\n"
    (pct (Usage.usable_fraction (stock ()) sub_report.Activity.possibly_toggled));
  printf "%-18s %12s %12s %12s %12s\n" "Benchmark" "area-ovh%%" "power-ovh%%"
    "area-sav%%" "power-sav%%";
  let aovh = ref [] and povh = ref [] and asav = ref [] and psav = ref [] in
  List.iter
    (fun (b : B.t) ->
      let c = ctx_of b in
      let design, stats =
        Multi.tailor_multi (stock ())
          ~reports:
            [
              (c.report.Activity.possibly_toggled, c.report.Activity.constant_values);
              (sub_report.Activity.possibly_toggled, sub_report.Activity.constant_values);
            ]
      in
      let p = Profiling.profile ~core ~netlist:design ~seeds:[ 1; 2; 3 ] b in
      let pw =
        Report.power ~freq_hz ~toggles:p.Profiling.total_toggles
          ~cycles:p.Profiling.total_cycles design
      in
      let base = (baseline_power c).Report.total_nw in
      let plain_area = c.stats.Cut.bespoke_area in
      let plain_pow = (bespoke_power c).Report.total_nw in
      let a_o = pct ((stats.Cut.bespoke_area /. plain_area) -. 1.0) in
      let p_o = pct ((pw.Report.total_nw /. plain_pow) -. 1.0) in
      let a_s = saving stats.Cut.bespoke_area c.stats.Cut.original_area in
      let p_s = saving pw.Report.total_nw base in
      aovh := a_o :: !aovh;
      povh := p_o :: !povh;
      asav := a_s :: !asav;
      psav := p_s :: !psav;
      printf "%-18s %12.1f %12.1f %12.1f %12.1f\n" b.B.name a_o p_o a_s p_s)
    B.table1;
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  printf
    "(average overhead: %.1f%% area, %.1f%% power; average savings: %.1f%% \
     area, %.1f%% power; paper: 8%%/10%% overhead, 56%%/43%% savings)\n"
    (avg !aovh) (avg !povh) (avg !asav) (avg !psav)

(* ------------------------------------------------------------------ *)
(* Section 5.4: system code (RTOS)                                      *)

let run_rtos () =
  printf "=== Section 5.4: system code (RTOS kernel) ===\n";
  let r, net = Runner.analyze ~core Rtos.kernel in
  let kernel_set = r.Activity.possibly_toggled in
  printf "RTOS kernel alone: %.1f%% of gates unused (paper FreeRTOS: 57%%)\n"
    (pct (1.0 -. Usage.usable_fraction net kernel_set));
  printf "%-18s %16s\n" "Benchmark+RTOS" "unused gates %%";
  let union_all = ref kernel_set in
  let worst = ref 1.0 in
  List.iter
    (fun (b : B.t) ->
      let c = ctx_of b in
      let u = Multi.union_toggled [ kernel_set; c.report.Activity.possibly_toggled ] in
      union_all := Multi.union_toggled [ !union_all; u ];
      let unused = 1.0 -. Usage.usable_fraction net u in
      if unused < !worst then worst := unused;
      printf "%-18s %16.1f\n" b.B.name (pct unused))
    B.table1;
  printf "worst case: %.1f%% unused (paper: 37%%)\n" (pct !worst);
  printf "RTOS + all 15 benchmarks: %.1f%% unused (paper: 27%%)\n"
    (pct (1.0 -. Usage.usable_fraction net !union_all))

(* ------------------------------------------------------------------ *)
(* Figure 15: oracular module-level power gating                        *)

let run_fig15 () =
  printf "=== Figure 15: oracular zero-overhead module power gating ===\n";
  printf "%-18s %14s %24s\n" "Benchmark" "PG savings%%" "bespoke savings%% (cf)";
  List.iter
    (fun (b : B.t) ->
      let c = ctx_of b in
      let pg = Power_gating.evaluate ~core ~netlist:(stock ()) b in
      let bespoke_sav =
        saving (bespoke_power c).Report.total_nw (baseline_power c).Report.total_nw
      in
      printf "%-18s %14.1f %24.1f\n" b.B.name
        (pct pg.Power_gating.power_saving_fraction)
        bespoke_sav)
    B.table1

(* ------------------------------------------------------------------ *)
(* Table 6: static survey table                                         *)

let run_table6 () =
  printf "=== Table 6: microarchitectural features in embedded processors ===\n";
  printf "%-28s %16s %6s\n" "Processor" "Branch predictor" "Cache";
  List.iter
    (fun (p, bp, c) -> printf "%-28s %16s %6s\n" p bp c)
    [
      ("ARM Cortex-M0", "no", "no");
      ("ARM Cortex-M3", "yes", "no");
      ("Atmel ATxmega128A4", "no", "no");
      ("Freescale/NXP MC13224v", "no", "no");
      ("Intel Quark-D1000", "yes", "yes");
      ("Jennic/NXP JN5169", "no", "no");
      ("SiLab Si2012", "no", "no");
      ("TI MSP430", "no", "no");
    ]

(* ------------------------------------------------------------------ *)
(* Ablations of this reproduction's own design choices (DESIGN.md)     *)

let run_ablation () =
  printf "=== Ablation 1: conservative-table key refinement ===\n";
  printf "%-12s %22s %22s %22s\n" "Benchmark" "pc-only" "pc+gie" "full (default)";
  let try_key b key =
    let config =
      {
        Activity.default_config with
        Activity.ram_x_ranges = b.B.input_ranges;
        irq_x = b.B.uses_irq;
        key_refinement = key;
        max_paths = 100_000;
      }
    in
    match time (fun () -> Runner.analyze ~core ~config b) with
    | (r, net), dt ->
      Printf.sprintf "%4.0f%% %5dp %5.1fs"
        (pct (Usage.usable_fraction net r.Activity.possibly_toggled))
        r.Activity.paths dt
    | exception Activity.Analysis_error m ->
      "fail: " ^ String.sub m 0 (min 14 (String.length m))
  in
  List.iter
    (fun name ->
      let b = if name = "rtos" then Rtos.kernel else B.find name in
      printf "%-12s %22s %22s %22s\n" name (try_key b `Pc_only)
        (try_key b `Pc_gie) (try_key b `Full))
    [ "binSearch"; "tea8"; "irq"; "rtos" ];
  printf
    "\n=== Ablation 2: re-synthesis depth (gates remaining after the cut) ===\n";
  printf "%-12s %10s %12s %12s %12s\n" "Benchmark" "stitched" "no-seqconst"
    "one-pass" "full";
  List.iter
    (fun name ->
      let b = B.find name in
      let c = ctx_of b in
      let stitched =
        Cut.cut_and_stitch (stock ())
          ~possibly_toggled:c.report.Activity.possibly_toggled
          ~constants:c.report.Activity.constant_values
      in
      let no_seq =
        Bespoke_core.Resynth.optimize ~seq_const:false stitched
      in
      let one_pass = Bespoke_core.Resynth.pass stitched in
      let full = Bespoke_core.Resynth.optimize stitched in
      printf "%-12s %10d %12d %12d %12d\n" name
        (Netlist.num_gates stitched)
        (Netlist.num_gates no_seq)
        (Netlist.num_gates one_pass)
        (Netlist.num_gates full))
    [ "binSearch"; "intFilt"; "FFT"; "dbg" ];
  printf
    "\n=== Ablation 3: computed-branch fallback (escape vs enumerate) ===\n";
  printf "%-12s %26s %26s\n" "Benchmark" "escape (default)" "enumerate";
  let try_fb b fb =
    let config =
      {
        Activity.default_config with
        Activity.ram_x_ranges = b.B.input_ranges;
        irq_x = b.B.uses_irq;
        computed_branch_fallback = fb;
        max_paths = 100_000;
        max_total_cycles = 30_000_000;
      }
    in
    match time (fun () -> Runner.analyze ~core ~config b) with
    | (r, net), dt ->
      Printf.sprintf "%4.0f%% %5dp %2de %5.1fs"
        (pct (Usage.usable_fraction net r.Activity.possibly_toggled))
        r.Activity.paths r.Activity.escaped_paths dt
    | exception Activity.Analysis_error m ->
      "fail: " ^ String.sub m 0 (min 16 (String.length m))
  in
  List.iter
    (fun name ->
      let b = if name = "rtos" then Rtos.kernel else B.find name in
      printf "%-12s %26s %26s\n" name (try_fb b `Escape) (try_fb b `Enumerate))
    [ "irq"; "rtos" ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the hot primitives                       *)

let run_bechamel () =
  printf "=== microbenchmarks (Bechamel) ===\n";
  let open Bechamel in
  let open Toolkit in
  let img =
    Bespoke_isa.Asm.assemble
      "start: mov #0x0280, sp\nloop: dec r4\n jnz loop\n halt\n"
  in
  let sys = System.create ~netlist:(stock ()) img in
  System.reset sys;
  System.set_irq sys Bit.Zero;
  let t_cycle =
    Test.make ~name:"gate-level cpu cycle"
      (Staged.stage (fun () -> System.step_cycle sys))
  in
  let t_tern =
    Test.make ~name:"ternary and (table)"
      (Staged.stage (fun () -> Bit.tbl_and.(4)))
  in
  let t_asm =
    Test.make ~name:"assemble small program"
      (Staged.stage (fun () ->
           ignore
             (Bespoke_isa.Asm.assemble
                "start: mov #1, r4\n add r4, r5\n halt\n")))
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) i raw)
        instances
    in
    let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
    Hashtbl.iter
      (fun _clock tbl ->
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> printf "%-28s %12.1f ns/run\n" name est
            | _ -> printf "%-28s (no estimate)\n" name)
          tbl)
      results
  in
  List.iter benchmark [ t_tern; t_asm; t_cycle ]

(* ------------------------------------------------------------------ *)
(* Simulator throughput: full-eval vs event-driven vs 64-way packed
   vs compiled word-level                                              *)

(* Every cycles/sec figure is the median of [timing_reps] repetitions
   of the whole measurement (recorded in the artifact), so a transient
   load spike during one trial cannot flip a comparison between two
   engines measured at different moments. *)
let timing_reps = 3

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let median_of_reps f = median (List.init timing_reps (fun _ -> f ()))

type sim_row = {
  sr_core : string;  (** {!Bespoke_cores.Cores} registry name *)
  sr_name : string;
  sr_sim_cycles : int;  (** total simulated cycles (all profiling seeds) *)
  full_cps : float;
  event_cps : float;
  packed_cps : float;
  compiled_cps : float;
  t_analysis : float;
  t_cut : float;
  t_profile : float;
}

let bench_sim_row ~core (b : B.t) : sim_row =
  let net = Runner.shared_netlist core in
  let sim_cycles = ref 0 in
  let run_engine engine =
    median_of_reps (fun () ->
        let cyc = ref 0 in
        let (), dt =
          time (fun () ->
              List.iter
                (fun seed ->
                  let o = Runner.run_gate ~core ~engine ~netlist:net b ~seed in
                  cyc := !cyc + o.Runner.sim_cycles)
                profile_seeds)
        in
        sim_cycles := !cyc;
        float_of_int !cyc /. dt)
  in
  let full_cps = run_engine Runner.Full in
  let event_cps = run_engine Runner.Event in
  let compiled_cps = run_engine Runner.Compiled in
  let packed_cps =
    median_of_reps (fun () ->
        let cyc = ref 0 in
        let (), dt =
          time (fun () ->
              List.iter
                (fun (_, (o : Runner.gate_outcome)) ->
                  cyc := !cyc + o.Runner.sim_cycles)
                (Runner.run_gate_packed ~core ~netlist:net b ~seeds:profile_seeds))
        in
        float_of_int !cyc /. dt)
  in
  let sim_cycles = !sim_cycles in
  let (report, anet), t_analysis = time (fun () -> Runner.analyze ~core b) in
  let _, t_cut =
    time (fun () ->
        ignore
          (Cut.tailor anet ~possibly_toggled:report.Activity.possibly_toggled
             ~constants:report.Activity.constant_values))
  in
  let _, t_profile =
    time (fun () -> ignore (Profiling.profile ~core ~netlist:net ~seeds:profile_seeds b))
  in
  {
    sr_core = core.Bespoke_coreapi.Coredef.name;
    sr_name = b.B.name;
    sr_sim_cycles = sim_cycles;
    full_cps;
    event_cps;
    packed_cps;
    compiled_cps;
    t_analysis;
    t_cut;
    t_profile;
  }

(* Observability overhead: cycles/sec on one small benchmark with
   tracing disabled vs enabled, measured per engine (the event and
   compiled engines have different hook densities).  The disabled path
   is the default for every other row in this table, so any regression
   there shows up directly in the cps columns; the enabled slowdown is
   only paid when --trace/--metrics-out/BESPOKE_TRACE is in effect. *)
let obs_reps = 5

let measure_obs_overhead engine =
  let b = B.find "mult" in
  let net = stock () in
  let reps = 40 in
  let run () =
    let cyc = ref 0 in
    let (), dt =
      time (fun () ->
          for _ = 1 to reps do
            let o = Runner.run_gate ~core ~engine ~netlist:net b ~seed:1 in
            cyc := !cyc + o.Runner.sim_cycles
          done)
    in
    float_of_int !cyc /. dt
  in
  ignore (run ());  (* warm-up: page in the netlist and code paths *)
  (* [obs_reps] alternating trials per mode, paired so both modes see
     the same load environment, then the median of each: a single
     transient spike (or lull) cannot produce a nonsense comparison
     such as a negative enabled slowdown *)
  let disabled = ref [] and enabled = ref [] in
  for _ = 1 to obs_reps do
    disabled := run () :: !disabled;
    Obs.enable ();
    enabled := run () :: !enabled;
    Obs.disable ();
    Obs.Trace.clear ();
    Obs.Metrics.reset ()
  done;
  (median !disabled, median !enabled)

(* Marginal cost of the background metrics sampler on top of enabled
   telemetry: the same paired-trial discipline, enabled-only vs
   enabled-with-a-live-Sampler (ticking into a scratch file at the
   interval the acceptance flow uses). *)
let sampler_interval_ms = 100

let measure_sampler_overhead () =
  let b = B.find "mult" in
  let net = stock () in
  let reps = 40 in
  let run () =
    let cyc = ref 0 in
    let (), dt =
      time (fun () ->
          for _ = 1 to reps do
            let o =
              Runner.run_gate ~core ~engine:Runner.Event ~netlist:net b ~seed:1
            in
            cyc := !cyc + o.Runner.sim_cycles
          done)
    in
    float_of_int !cyc /. dt
  in
  let path = Filename.temp_file "bespoke_sampler_bench" ".jsonl" in
  Obs.enable ();
  ignore (run ());
  let enabled = ref [] and sampled = ref [] in
  for _ = 1 to obs_reps do
    enabled := run () :: !enabled;
    Obs.Sampler.start ~path ~interval_ms:sampler_interval_ms ();
    sampled := run () :: !sampled;
    Obs.Sampler.stop ()
  done;
  Obs.disable ();
  Obs.Trace.clear ();
  Obs.Metrics.reset ();
  (try Sys.remove path with Sys_error _ -> ());
  (median !enabled, median !sampled)

(* Marginal cost of the zero-hardware guard: the same paired-trial
   discipline as the obs/sampler rows, plain bespoke runs vs runs with
   the cut-assumption shadow watcher attached (`run --guard`'s hot
   path).  The watcher recomputes every monitored cut function at each
   committed cycle, so its cost scales with the monitor count — the
   artifact records both. *)
let guard_plan_of (b : B.t) =
  let report, net = Runner.analyze ~core b in
  let bespoke, _, prov =
    Cut.tailor_explained net
      ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values
  in
  ( Guard.plan ~original:net ~bespoke ~prov
      ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values,
    bespoke )

let measure_guard_overhead () =
  let b = B.find "mult" in
  let plan, bespoke = guard_plan_of b in
  let reps = 40 in
  let run ~watch () =
    let cyc = ref 0 in
    let (), dt =
      time (fun () ->
          for _ = 1 to reps do
            let o =
              if watch then (
                (* violations are sticky per watcher: a fresh one per
                   run keeps every rep on the same (clean) fast path *)
                let w = Guard.watch_bespoke plan in
                Runner.run_gate ~core ~engine:Runner.Event
                  ~attach:(Guard.attach w) ~netlist:bespoke b ~seed:1)
              else
                Runner.run_gate ~core ~engine:Runner.Event ~netlist:bespoke b
                  ~seed:1
            in
            cyc := !cyc + o.Runner.sim_cycles
          done)
    in
    float_of_int !cyc /. dt
  in
  ignore (run ~watch:false ());
  let plain = ref [] and watched = ref [] in
  for _ = 1 to obs_reps do
    plain := run ~watch:false () :: !plain;
    watched := run ~watch:true () :: !watched
  done;
  (List.length plan.Guard.p_monitors, median !plain, median !watched)

(* One-time program-compilation cost of the compiled engine for the
   stock core, and the per-instance cost of a design-cache hit
   (dominated by the netlist hash).  Reported separately from the
   cycles/sec columns, which all run with a warm cache. *)
let measure_compile_cost () =
  let net = stock () in
  Compile.clear_cache ();
  let _, cold = time (fun () -> ignore (Compile.create net)) in
  let warm =
    median_of_reps (fun () ->
        let _, dt = time (fun () -> ignore (Compile.create net)) in
        dt)
  in
  (cold, warm)

(* Campaign throughput: the analyze+tailor+report+run flow over all
   15 benchmarks (60 jobs), three ways.

   - "one-shot" is the pre-campaign world: one fresh CLI process per
     job.  Simulated in-process by clearing every flow cache (and the
     compiled-engine design cache) before each job and charging each
     job a netlist build, which a fresh process always pays.
   - "cold" campaigns start with cleared caches and pay one netlist
     build, but the 60 jobs share the process — and the flow cache, so
     the four kinds share one analysis (and one cut) per benchmark.
   - "warm" reruns the same campaign without clearing: every job is a
     content-addressed cache hit.

   On a multi-core box the jobs=4 campaign additionally overlaps four
   jobs; on one core jobs=4 clamps to one domain
   (Pool.clamp_jobs) and the win is cache sharing alone. *)
let measure_campaign () =
  let kinds =
    [ Campaign.Analyze; Campaign.Tailor; Campaign.Report; Campaign.Run ]
  in
  let all_jobs =
    List.concat_map
      (fun (b : B.t) ->
        List.map (fun kind -> Campaign.job ~kind (Campaign.Inline b)) kinds)
      B.table1
  in
  let clear_caches () =
    Flowcache.clear_all ();
    Compile.clear_cache ()
  in
  let t_build =
    median_of_reps (fun () ->
        snd (time (fun () -> ignore (Bespoke_cpu.Cpu.build ()))))
  in
  let assert_ok tag (s : Campaign.summary) =
    if s.Campaign.failed > 0 then
      failwith
        (Printf.sprintf "bench campaign (%s): %d job(s) failed" tag
           s.Campaign.failed)
  in
  let oneshot_s =
    List.fold_left
      (fun acc j ->
        clear_caches ();
        let (_, s), dt = time (fun () -> Campaign.run ~jobs:1 [ j ]) in
        assert_ok "oneshot" s;
        acc +. dt +. t_build)
      0.0 all_jobs
  in
  let run_one tag n ~cold =
    if cold then clear_caches ();
    let (_, s), dt = time (fun () -> Campaign.run ~jobs:n all_jobs) in
    assert_ok tag s;
    if cold then dt +. t_build else dt
  in
  let cold1_s = run_one "cold1" 1 ~cold:true in
  let cold4_s = run_one "cold4" 4 ~cold:true in
  let warm4_s = run_one "warm4" 4 ~cold:false in
  (List.length all_jobs, t_build, oneshot_s, cold1_s, cold4_s, warm4_s)

(* Set by `--history` on the command line: after writing BENCH_sim.json,
   also append the same payload as one bespoke-bench/v1 line to
   BENCH_history.jsonl so `stats --compare` has a trail to diff.      *)
let history_requested = ref false

let append_bench_history buf =
  let compact = String.map (function '\n' -> ' ' | c -> c) (Buffer.contents buf) in
  let now = Unix.time () in
  let tm = Unix.gmtime now in
  let label =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_history.jsonl"
  in
  Printf.fprintf oc
    "{\"schema\": \"bespoke-bench/v1\", \"unix_time\": %.0f, \"label\": %S, \
     \"bench\": %s}\n"
    now label compact;
  close_out oc;
  printf "appended %s entry to BENCH_history.jsonl\n" label

let run_bench_sim () =
  printf "=== simulator throughput: cycles/sec over the profiling workload ===\n";
  printf "%-8s %-12s %9s %9s %9s %9s %9s %8s | %8s %6s %8s\n" "Core"
    "Benchmark" "cycles" "full" "event" "packed" "compiled" "speedup"
    "analy(s)" "cut(s)" "prof(s)";
  (* per-core rows: the MSP430 suite the paper evaluates, plus every
     other registered core's benchmarks — same engines, same netlist
     memoization, so the artifact records cross-ISA throughput too *)
  let per_core =
    (core, B.table1)
    :: List.filter_map
         (fun (e : Bespoke_cores.Cores.entry) ->
           let c = e.Bespoke_cores.Cores.core in
           if c.Bespoke_coreapi.Coredef.name = core.Bespoke_coreapi.Coredef.name
           then None
           else Some (c, e.Bespoke_cores.Cores.benchmarks))
         Bespoke_cores.Cores.all
  in
  let rows =
    List.concat_map
      (fun (c, benches) ->
        List.map
          (fun b ->
            let r = bench_sim_row ~core:c b in
            printf
              "%-8s %-12s %9d %9.0f %9.0f %9.0f %9.0f %7.1fx | %8.2f %6.2f \
               %8.2f\n"
              r.sr_core r.sr_name r.sr_sim_cycles r.full_cps r.event_cps
              r.packed_cps r.compiled_cps
              (r.compiled_cps /. r.full_cps)
              r.t_analysis r.t_cut r.t_profile;
            r)
          benches)
      per_core
  in
  List.iter
    (fun (c, _) ->
      let cname = c.Bespoke_coreapi.Coredef.name in
      let crows = List.filter (fun r -> r.sr_core = cname) rows in
      let geomean f =
        exp
          (List.fold_left (fun acc r -> acc +. log (f r)) 0.0 crows
          /. float_of_int (List.length crows))
      in
      printf
        "geomean cycles/sec (%s): full %.0f, event %.0f, packed %.0f, \
         compiled %.0f\n"
        cname
        (geomean (fun r -> r.full_cps))
        (geomean (fun r -> r.event_cps))
        (geomean (fun r -> r.packed_cps))
        (geomean (fun r -> r.compiled_cps)))
    per_core;
  let compile_cold_s, compile_warm_s = measure_compile_cost () in
  printf
    "compiled engine: program build %.3f s (cache miss), cached create %.4f s \
     (%d hits / %d misses this run)\n"
    compile_cold_s compile_warm_s (Compile.cache_hits ())
    (Compile.cache_misses ());
  let obs_rows =
    List.map
      (fun engine ->
        let d, e = measure_obs_overhead engine in
        printf
          "obs overhead (mult, %s engine): disabled %.0f cps, enabled %.0f \
           cps (%.1f%% slower when tracing)\n"
          (Runner.engine_to_string engine)
          d e
          (100.0 *. (1.0 -. (e /. d)));
        (Runner.engine_to_string engine, d, e))
      [ Runner.Event; Runner.Compiled ]
  in
  let smp_enabled_cps, smp_sampled_cps = measure_sampler_overhead () in
  printf
    "sampler overhead (mult, event engine, %d ms ticks): enabled %.0f cps, \
     +sampler %.0f cps (%.1f%% slower)\n"
    sampler_interval_ms smp_enabled_cps smp_sampled_cps
    (100.0 *. (1.0 -. (smp_sampled_cps /. smp_enabled_cps)));
  let guard_monitors, guard_plain_cps, guard_watched_cps =
    measure_guard_overhead ()
  in
  printf
    "guard overhead (mult, event engine, %d monitor(s)): plain %.0f cps, \
     +watcher %.0f cps (%.1f%% slower in shadow mode)\n"
    guard_monitors guard_plain_cps guard_watched_cps
    (100.0 *. (1.0 -. (guard_watched_cps /. guard_plain_cps)));
  let camp_jobs, camp_build_s, camp_oneshot_s, camp_cold1_s, camp_cold4_s,
      camp_warm4_s =
    measure_campaign ()
  in
  let jps t = float_of_int camp_jobs /. t in
  printf
    "campaign (%d jobs: analyze+tailor+report+run x %d benchmarks):\n\
    \  one-shot %.1f s (%.2f jobs/s), cold jobs=1 %.1f s (%.2f), cold jobs=4 \
     %.1f s (%.2f), warm jobs=4 %.3f s (%.0f)\n\
    \  speedups: cold jobs=4 vs one-shot %.2fx, warm vs cold %.1fx\n"
    camp_jobs (List.length B.table1) camp_oneshot_s (jps camp_oneshot_s)
    camp_cold1_s (jps camp_cold1_s) camp_cold4_s (jps camp_cold4_s)
    camp_warm4_s (jps camp_warm4_s)
    (camp_oneshot_s /. camp_cold4_s)
    (camp_cold4_s /. camp_warm4_s);
  let buf = Buffer.create 8192 in
  let out fmt = Printf.bprintf buf fmt in
  out "{\n  \"workload\": \"gate-level runs over %d profiling seeds\",\n"
    (List.length profile_seeds);
  out "  \"timing\": {\"reps\": %d, \"statistic\": \"median\", \
       \"obs_reps\": %d},\n"
    timing_reps obs_reps;
  out
    "  \"compiled_engine\": {\"compile_seconds\": %.4f, \
     \"cached_create_seconds\": %.4f,\n\
    \                      \"cache_hits\": %d, \"cache_misses\": %d},\n"
    compile_cold_s compile_warm_s (Compile.cache_hits ())
    (Compile.cache_misses ());
  out "  \"obs_overhead\": [\n";
  List.iteri
    (fun i (eng, d, e) ->
      out
        "    {\"benchmark\": \"mult\", \"engine\": %S, \"disabled_cps\": \
         %.0f, \"enabled_cps\": %.0f, \"enabled_slowdown\": %.4f}%s\n"
        eng d e
        (1.0 -. (e /. d))
        (if i = List.length obs_rows - 1 then "" else ","))
    obs_rows;
  out "  ],\n";
  out
    "  \"sampler_overhead\": {\"benchmark\": \"mult\", \"engine\": \
     \"event\", \"interval_ms\": %d,\n\
    \                       \"enabled_cps\": %.0f, \"sampler_cps\": %.0f, \
     \"sampler_slowdown\": %.4f},\n"
    sampler_interval_ms smp_enabled_cps smp_sampled_cps
    (1.0 -. (smp_sampled_cps /. smp_enabled_cps));
  out
    "  \"guard_overhead\": {\"benchmark\": \"mult\", \"engine\": \"event\", \
     \"monitors\": %d,\n\
    \                     \"plain_cps\": %.0f, \"watched_cps\": %.0f, \
     \"watch_slowdown\": %.4f},\n"
    guard_monitors guard_plain_cps guard_watched_cps
    (1.0 -. (guard_watched_cps /. guard_plain_cps));
  out
    "  \"campaign\": {\"jobs_total\": %d, \"benchmarks\": %d, \"kinds\": \
     [\"analyze\", \"tailor\", \"report\", \"run\"],\n"
    camp_jobs (List.length B.table1);
  out "    \"netlist_build_seconds\": %.3f,\n" camp_build_s;
  out
    "    \"oneshot_seconds\": %.2f, \"cold_jobs1_seconds\": %.2f, \
     \"cold_jobs4_seconds\": %.2f, \"warm_jobs4_seconds\": %.4f,\n"
    camp_oneshot_s camp_cold1_s camp_cold4_s camp_warm4_s;
  out
    "    \"jobs_per_sec\": {\"oneshot\": %.3f, \"cold_jobs1\": %.3f, \
     \"cold_jobs4\": %.3f, \"warm_jobs4\": %.1f},\n"
    (jps camp_oneshot_s) (jps camp_cold1_s) (jps camp_cold4_s)
    (jps camp_warm4_s);
  out "    \"speedup_cold_jobs4_vs_oneshot\": %.2f,\n"
    (camp_oneshot_s /. camp_cold4_s);
  out "    \"speedup_warm_vs_cold\": %.2f},\n" (camp_cold4_s /. camp_warm4_s);
  out "  \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"name\": %S, \"core\": %S, \"sim_cycles\": %d,\n\
        \     \"cycles_per_sec\": {\"full\": %.0f, \"event\": %.0f, \
         \"packed\": %.0f, \"compiled\": %.0f},\n\
        \     \"speedup_vs_full\": {\"event\": %.2f, \"packed\": %.2f, \
         \"compiled\": %.2f},\n\
        \     \"phase_seconds\": {\"analysis\": %.3f, \"cut\": %.3f, \
         \"profile\": %.3f}}%s\n"
        r.sr_name r.sr_core r.sr_sim_cycles r.full_cps r.event_cps r.packed_cps
        r.compiled_cps
        (r.event_cps /. r.full_cps)
        (r.packed_cps /. r.full_cps)
        (r.compiled_cps /. r.full_cps)
        r.t_analysis r.t_cut r.t_profile
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  let oc = open_out "BENCH_sim.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  printf "wrote BENCH_sim.json\n";
  if !history_requested then append_bench_history buf

(* ------------------------------------------------------------------ *)
(* guard-table: hardware cost of the deployment guard per benchmark —
   the EXPERIMENTS.md "cut-assumption monitors" table.  Every area and
   leakage figure comes from the same Report instruments that measure
   the tailoring savings the guard protects.                           *)

let run_guard_table () =
  printf "=== deployment guard: per-benchmark hardware overhead ===\n";
  printf "%-12s %8s %8s %8s %7s %6s %8s %7s %8s %8s\n" "Benchmark" "assume"
    "monitor" "implied" "unmon" "cov%" "+gates" "+dffs" "area+%" "leak+%";
  let cov_acc = ref [] and area_acc = ref [] and leak_acc = ref [] in
  List.iter
    (fun (b : B.t) ->
      let plan, _ = guard_plan_of b in
      let inst = Guard.instrument plan in
      let hw = Guard.hw_stats plan inst in
      let assumptions = List.length plan.Guard.p_assumptions in
      (* monitored or statically implied: the fraction of assumptions
         the shipped hardware actually accounts for *)
      let cov =
        if assumptions = 0 then 100.0
        else
          100.0
          *. float_of_int (hw.Guard.h_monitors + hw.Guard.h_implied)
          /. float_of_int assumptions
      in
      cov_acc := cov :: !cov_acc;
      area_acc := hw.Guard.h_area_pct :: !area_acc;
      leak_acc := hw.Guard.h_leakage_pct :: !leak_acc;
      printf "%-12s %8d %8d %8d %7d %6.1f %8d %7d %8.1f %8.1f\n" b.B.name
        assumptions hw.Guard.h_monitors hw.Guard.h_implied
        hw.Guard.h_unmonitorable cov hw.Guard.h_added_gates
        hw.Guard.h_added_dffs hw.Guard.h_area_pct hw.Guard.h_leakage_pct)
    B.table1;
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  printf "%-12s %8s %8s %8s %7s %6.1f %8s %7s %8.1f %8.1f   (average)\n"
    "(average)" "" "" "" "" (avg !cov_acc) "" "" (avg !area_acc)
    (avg !leak_acc);
  printf
    "(overhead is relative to the bespoke design; the shadow watcher covers \
     the same monitors at zero hardware)\n"

(* ------------------------------------------------------------------ *)
(* bench-smoke: one tiny benchmark through all four engines, asserting
   bit-identical outcomes, plus a validation pass over the recorded
   BENCH_sim.json artifact.  Wired into `dune runtest` via the
   @bench-smoke alias.                                                 *)

(* Validate the checked-in BENCH_sim.json: every benchmark row must
   carry a compiled column, and the recorded compiled engine must not
   be slower than the event engine on any benchmark — a regression
   gate on the artifact the docs quote. *)
let validate_bench_sim_artifact () =
  let path =
    if Sys.file_exists "BENCH_sim.json" then "BENCH_sim.json"
    else "../BENCH_sim.json"
  in
  let ic = open_in path in
  let rows = ref [] in
  let name = ref "" in
  let camp_cold_speedup = ref None in
  let camp_warm_speedup = ref None in
  let obs_engines = ref [] in
  let guard_monitors = ref None in
  (try
     while true do
       let line = String.trim (input_line ic) in
       (try Scanf.sscanf line "{\"name\": %S" (fun n -> name := n)
        with Scanf.Scan_failure _ | End_of_file -> ());
       (try
          Scanf.sscanf line "{\"benchmark\": %S, \"engine\": %S" (fun _ e ->
              obs_engines := e :: !obs_engines)
        with Scanf.Scan_failure _ | End_of_file -> ());
       (try
          Scanf.sscanf line "\"speedup_cold_jobs4_vs_oneshot\": %f" (fun x ->
              camp_cold_speedup := Some x)
        with Scanf.Scan_failure _ | End_of_file -> ());
       (try
          Scanf.sscanf line
            "\"guard_overhead\": {\"benchmark\": %S, \"engine\": %S, \
             \"monitors\": %d," (fun _ _ m -> guard_monitors := Some m)
        with Scanf.Scan_failure _ | End_of_file -> ());
       (try
          Scanf.sscanf line "\"speedup_warm_vs_cold\": %f" (fun x ->
              camp_warm_speedup := Some x)
        with Scanf.Scan_failure _ | End_of_file -> ());
       if
         String.length line >= 17
         && String.sub line 0 17 = "\"cycles_per_sec\":"
       then
         Scanf.sscanf line
           "\"cycles_per_sec\": {\"full\": %f, \"event\": %f, \"packed\": \
            %f, \"compiled\": %f}%_s"
           (fun _full event _packed compiled ->
             rows := (!name, event, compiled) :: !rows)
     done
   with End_of_file -> close_in ic);
  if !rows = [] then
    failwith
      (Printf.sprintf
         "bench-smoke: no cycles_per_sec rows with a compiled column in %s \
          (regenerate with --bench-sim)"
         path);
  List.iter
    (fun engine ->
      if not (List.mem engine !obs_engines) then
        failwith
          (Printf.sprintf
             "bench-smoke: no obs_overhead row for the %s engine in %s \
              (regenerate with --bench-sim)"
             engine path))
    [ "event"; "compiled" ];
  List.iter
    (fun (n, event, compiled) ->
      if compiled < event then
        failwith
          (Printf.sprintf
             "bench-smoke: %s records compiled %.0f < event %.0f cycles/sec \
              in %s — compiled engine regression"
             n compiled event path))
    !rows;
  (* the campaign acceptance bars: batch throughput >= 2.5x one-shot,
     warm cache >= 5x cold *)
  let cold =
    match !camp_cold_speedup with
    | Some x -> x
    | None ->
      failwith
        (Printf.sprintf
           "bench-smoke: no campaign speedup_cold_jobs4_vs_oneshot in %s \
            (regenerate with --bench-sim)"
           path)
  in
  let warm =
    match !camp_warm_speedup with
    | Some x -> x
    | None ->
      failwith
        (Printf.sprintf
           "bench-smoke: no campaign speedup_warm_vs_cold in %s (regenerate \
            with --bench-sim)"
           path)
  in
  if cold < 2.5 then
    failwith
      (Printf.sprintf
         "bench-smoke: campaign cold speedup %.2fx < 2.5x one-shot in %s — \
          campaign throughput regression"
         cold path);
  if warm < 5.0 then
    failwith
      (Printf.sprintf
         "bench-smoke: campaign warm-cache speedup %.2fx < 5x cold in %s — \
          flow cache regression"
         warm path);
  let guard_mons =
    match !guard_monitors with
    | Some m -> m
    | None ->
      failwith
        (Printf.sprintf
           "bench-smoke: no guard_overhead block in %s (regenerate with \
            --bench-sim)"
           path)
  in
  if guard_mons < 1 then
    failwith
      (Printf.sprintf
         "bench-smoke: guard_overhead in %s records no monitors — the \
          shadow watcher measured nothing"
         path);
  printf
    "bench-smoke: BENCH_sim.json valid (%d benchmarks, compiled >= event on \
     all; campaign %.2fx vs one-shot cold, %.1fx warm vs cold; guard \
     watcher measured over %d monitor(s))\n"
    (List.length !rows) cold warm guard_mons

let run_bench_smoke () =
  let b = B.find "mult" in
  let net = stock () in
  let seeds = [ 1; 2; 3 ] in
  let run engine =
    List.map (fun s -> Runner.run_gate ~core ~engine ~netlist:net b ~seed:s) seeds
  in
  let full = run Runner.Full in
  let event = run Runner.Event in
  let compiled = run Runner.Compiled in
  let packed = List.map snd (Runner.run_gate_packed ~core ~netlist:net b ~seeds) in
  let check tag (a : Runner.gate_outcome) (c : Runner.gate_outcome) =
    if
      a.Runner.g_results <> c.Runner.g_results
      || a.Runner.g_cycles <> c.Runner.g_cycles
      || a.Runner.g_gpio_out <> c.Runner.g_gpio_out
      || a.Runner.sim_cycles <> c.Runner.sim_cycles
      || a.Runner.toggles <> c.Runner.toggles
    then failwith (Printf.sprintf "bench-smoke: %s engine diverges on %s" tag b.B.name)
  in
  List.iter2 (check "event") full event;
  List.iter2 (check "packed") full packed;
  List.iter2 (check "compiled") full compiled;
  printf
    "bench-smoke: full/event/packed/compiled bit-identical on %s (%d seeds, \
     %d cycles each)\n"
    b.B.name (List.length seeds) (List.hd full).Runner.sim_cycles;
  validate_bench_sim_artifact ()

(* ------------------------------------------------------------------ *)

let sections : (string * (unit -> unit)) list =
  [
    ("table1", run_table1);
    ("fig2", run_fig2);
    ("fig3", run_fig3);
    ("fig4", run_fig4);
    ("fig10", run_fig10);
    ("fig11", run_fig11);
    ("fig12", run_fig12);
    ("table2", run_table2);
    ("table3", run_table3);
    ("fig13", run_fig13);
    ("table4", run_table4);
    ("table5", run_table5);
    ("fig14", run_fig14);
    ("subneg", run_subneg);
    ("rtos", run_rtos);
    ("fig15", run_fig15);
    ("table6", run_table6);
    ("ablation", run_ablation);
    ("bechamel", run_bechamel);
    ("guard-table", run_guard_table);
    ("bench-sim", run_bench_sim);
    ("bench-smoke", run_bench_smoke);
  ]

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "--history" argv then history_requested := true;
  let only =
    if List.mem "--bench-sim" argv then Some "bench-sim"
    else if List.mem "--bench-smoke" argv then Some "bench-smoke"
    else
      let rec find = function
        | "--only" :: v :: _ -> Some v
        | _ :: rest -> find rest
        | [] -> None
      in
      find argv
  in
  let chosen =
    match only with
    | None ->
      prewarm_ctxs ();
      (* bench-sim times engines against each other; keep it out of the
         default full run, which already exercises all three. *)
      List.filter (fun (id, _) -> id <> "bench-sim") sections
    | Some id -> (
      match List.assoc_opt id sections with
      | Some f -> [ (id, f) ]
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n" id
          (String.concat ", " (List.map fst sections));
        exit 1)
  in
  List.iter
    (fun (id, f) ->
      let (), dt = time f in
      printf "--- %s completed in %.1fs ---\n\n%!" id dt)
    chosen
