(* A product that ships several firmware images on one chip (paper
   Section 3.5 / 5.2): tailor one bespoke processor to the union of a
   filter, an encoder and an encryption kernel, and compare it against
   both the general-purpose part and the single-application parts.

   Run with: dune exec examples/multi_app_product.exe *)

module B = Bespoke_programs.Benchmark
module Runner = Bespoke_core.Runner
module Activity = Bespoke_analysis.Activity
module Cut = Bespoke_core.Cut
module Multi = Bespoke_core.Multi
module Report = Bespoke_power.Report
module Netlist = Bespoke_netlist.Netlist

let core = Bespoke_cpu.Msp430.core

let apps = [ "intFilt"; "convEn"; "tea8" ]

let () =
  let net = Runner.shared_netlist core in
  let reports =
    List.map
      (fun name ->
        let b = B.find name in
        let r, _ = Runner.analyze ~core b in
        Format.printf "%-10s needs %5d gates on its own@." name
          (Multi.usable_gate_count net r.Activity.possibly_toggled);
        (b, r))
      apps
  in
  (* single-app bespoke sizes for reference *)
  List.iter
    (fun (b, r) ->
      let _, stats =
        Cut.tailor net ~possibly_toggled:r.Activity.possibly_toggled
          ~constants:r.Activity.constant_values
      in
      Format.printf "%-10s single-app bespoke: %d gates, %.0f um2@."
        b.B.name stats.Cut.bespoke_gates stats.Cut.bespoke_area)
    reports;
  (* the three-application design *)
  let design, stats =
    Multi.tailor_multi net
      ~reports:
        (List.map
           (fun (_, r) ->
             (r.Activity.possibly_toggled, r.Activity.constant_values))
           reports)
  in
  Format.printf "@.three-app bespoke: %a@." Cut.pp_stats stats;
  Format.printf "area saving vs general-purpose part: %.1f%%@."
    (100.0 *. (1.0 -. (Report.area_um2 design /. Report.area_um2 net)));
  (* every application must still run on the shared design *)
  List.iter
    (fun (b, _) ->
      List.iter
        (fun seed ->
          ignore (Runner.check_equivalence ~netlist:design ~core b ~seed))
        [ 1; 2 ];
      Format.printf "%-10s verified on the shared bespoke design@." b.B.name)
    reports;
  (* and the subset check says so statically, too *)
  let design_set =
    Multi.union_toggled
      (List.map (fun (_, r) -> r.Activity.possibly_toggled) reports)
  in
  List.iter
    (fun (b, r) ->
      assert
        (Multi.supported ~design_toggled:design_set
           ~app_toggled:r.Activity.possibly_toggled);
      Format.printf "%-10s statically supported (gate subset)@." b.B.name)
    reports
