(* The hand-off story: tailor a design once, save it, and produce the
   artifacts a downstream ASIC/FPGA flow or a debug session would
   want — a reloadable netlist, structural Verilog, a module-level
   connectivity graph, and a VCD waveform of the firmware booting on
   the tailored core.

   Run with: dune exec examples/asic_handoff.exe
   (writes its artifacts into ./_handoff/) *)

module B = Bespoke_programs.Benchmark
module Netlist = Bespoke_netlist.Netlist
module Serial = Bespoke_netlist.Serial
module Export = Bespoke_netlist.Export
module System = Bespoke_cpu.System
module Vcd = Bespoke_sim.Vcd
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Activity = Bespoke_analysis.Activity

let core = Bespoke_cpu.Msp430.core

let dir = "_handoff"
let path name = Filename.concat dir name

let write name text =
  let oc = open_out (path name) in
  output_string oc text;
  close_out oc;
  Format.printf "wrote %-22s %7d bytes@." (path name) (String.length text)

let () =
  (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
  let bench = B.find "tea8" in
  Format.printf "tailoring %s...@." bench.B.name;
  let report, net = Runner.analyze ~core bench in
  let bespoke, stats =
    Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values
  in
  Format.printf "%a@." Cut.pp_stats stats;

  (* 1. reloadable netlist *)
  write "tea8.netlist" (Serial.to_string bespoke);
  (* 2. structural Verilog for downstream tools *)
  write "tea8.v" (Export.to_verilog ~module_name:"bespoke_tea8" bespoke);
  (* 3. module connectivity graph (render with: dot -Tsvg) *)
  write "tea8_modules.dot" (Export.module_graph_dot bespoke);

  (* 4. prove the reloaded artifact is the design we tailored *)
  let reloaded = Serial.load (path "tea8.netlist") in
  ignore (Runner.check_equivalence ~netlist:reloaded ~core bench ~seed:7);
  Format.printf "reloaded netlist verified against the golden ISS@.";

  (* 5. a waveform of the firmware booting on the bespoke core *)
  let sys = System.create ~netlist:reloaded (B.image bench) in
  System.reset sys;
  let inputs, gpio = bench.B.gen_inputs 7 in
  List.iter
    (fun (a, v) ->
      Bespoke_sim.Memory.load_int (System.ram sys) ((a lsr 1) land 0x7ff) v)
    inputs;
  System.set_gpio_in_int sys gpio;
  System.set_irq sys Bespoke_logic.Bit.Zero;
  let buf = Buffer.create (1 lsl 16) in
  let vcd =
    Vcd.create buf (System.engine sys)
      ~signals:[ "pc"; "state"; "sp"; "gpio_out"; "halted" ]
  in
  let t = ref 0 in
  while (not (System.halted sys)) && !t < 10_000 do
    Vcd.sample vcd ~time:!t;
    System.step_cycle sys;
    incr t
  done;
  Vcd.finish vcd ~time:!t;
  write "tea8.vcd" (Buffer.contents buf);
  Format.printf "firmware ran to completion in %d cycles on the handoff design@." !t
