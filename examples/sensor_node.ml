(* A wearable-style sensor node (the paper's motivating scenario): a
   threshold-detector firmware runs for the lifetime of the part, so
   the part should carry only the gates that firmware can use.

   Walks the full flow on the tHold benchmark and prints the per-module
   story: which parts of the microcontroller the firmware provably
   cannot exercise, what the tailored design looks like, and the power
   budget before/after at the lowered supply.

   Run with: dune exec examples/sensor_node.exe *)

module B = Bespoke_programs.Benchmark
module Runner = Bespoke_core.Runner
module Activity = Bespoke_analysis.Activity
module Cut = Bespoke_core.Cut
module Usage = Bespoke_core.Usage
module Profiling = Bespoke_core.Profiling
module Report = Bespoke_power.Report
module Sta = Bespoke_power.Sta
module Voltage = Bespoke_power.Voltage

let core = Bespoke_cpu.Msp430.core

let () =
  let bench = B.find "tHold" in
  Format.printf "firmware: %s — %s@." bench.B.name bench.B.description;
  (* what can the firmware ever toggle? *)
  let report, net = Runner.analyze ~core bench in
  Format.printf "@.per-module usability (symbolic, all inputs):@.%a"
    Usage.pp_per_module
    (Usage.per_module net report.Activity.possibly_toggled);
  (* tailor *)
  let bespoke, stats =
    Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values
  in
  Format.printf "@.%a@." Cut.pp_stats stats;
  (* power at the nominal point *)
  let prof_base = Profiling.profile ~netlist:net ~core bench in
  let prof_besp = Profiling.profile ~netlist:bespoke ~core bench in
  let p_base =
    Report.power ~freq_hz:1e8 ~toggles:prof_base.Profiling.total_toggles
      ~cycles:prof_base.Profiling.total_cycles net
  in
  let p_besp =
    Report.power ~freq_hz:1e8 ~toggles:prof_besp.Profiling.total_toggles
      ~cycles:prof_besp.Profiling.total_cycles bespoke
  in
  Format.printf "power: %a@.   ->  %a@." Report.pp p_base Report.pp p_besp;
  (* exploit the exposed slack: lower the supply *)
  let period = (Sta.analyze net).Sta.critical_path_ps in
  let crit = (Sta.analyze bespoke).Sta.critical_path_ps in
  let vmin = Voltage.vmin ~critical_path_ps:crit ~period_ps:period in
  let p_scaled =
    Report.power ~vdd:vmin ~freq_hz:1e8
      ~toggles:prof_besp.Profiling.total_toggles
      ~cycles:prof_besp.Profiling.total_cycles bespoke
  in
  Format.printf
    "slack: %.0f ps -> %.0f ps; Vmin %.2f V; scaled: %a@."
    period crit vmin Report.pp p_scaled;
  Format.printf "total power saving: %.1f%%@."
    (100.0 *. (1.0 -. (p_scaled.Report.total_nw /. p_base.Report.total_nw)));
  (* and the firmware still runs, verified against the golden model *)
  List.iter
    (fun seed -> ignore (Runner.check_equivalence ~netlist:bespoke ~core bench ~seed))
    [ 1; 2; 3 ];
  Format.printf "firmware verified on the bespoke part for 3 input sets@."
