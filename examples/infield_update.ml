(* In-field updates on a bespoke part (paper Section 5.3):

   1. check whether a bug-fix "update" (a mutant of the shipped binary)
      happens to run on the already-tailored part;
   2. see the deployment guard catch an unsupported update at runtime,
      naming the cut decision it violates;
   3. harden a design against a class of bug fixes by co-analyzing the
      mutants at tailoring time;
   4. keep full updateability with a Turing-complete subneg fallback.

   Run with: dune exec examples/infield_update.exe *)

module B = Bespoke_programs.Benchmark
module Subneg = Bespoke_programs.Subneg
module Runner = Bespoke_core.Runner
module Activity = Bespoke_analysis.Activity
module Cut = Bespoke_core.Cut
module Multi = Bespoke_core.Multi
module Mutation = Bespoke_mutation.Mutation
module Guard = Bespoke_guard.Guard

let core = Bespoke_cpu.Msp430.core

let () =
  let base = B.find "rle" in
  let r_base, net = Runner.analyze ~core base in
  let bespoke, stats_base, prov =
    Cut.tailor_explained net
      ~possibly_toggled:r_base.Activity.possibly_toggled
      ~constants:r_base.Activity.constant_values
  in
  Format.printf "shipped design for %s: %d gates@." base.B.name
    stats_base.Cut.bespoke_gates;

  (* 1. which candidate bug fixes does the shipped part already run? *)
  let mutants = Mutation.mutants base in
  Format.printf "generated %d single-instruction updates (mutants)@."
    (List.length mutants);
  let supported, unsupported =
    List.partition
      (fun m ->
        match Runner.analyze ~core (Mutation.to_benchmark base m) with
        | r, _ ->
          Multi.supported ~design_toggled:r_base.Activity.possibly_toggled
            ~app_toggled:r.Activity.possibly_toggled
        | exception Activity.Analysis_error _ -> false)
      mutants
  in
  Format.printf "supported by the shipped part as-is: %d / %d@."
    (List.length supported) (List.length mutants);
  List.iteri
    (fun i (m : Mutation.mutant) ->
      if i < 3 then
        Format.printf "  e.g. NOT supported: line %d, %s -> %s (%s)@."
          m.Mutation.line m.Mutation.original m.Mutation.replacement
          (Mutation.type_name m.Mutation.mtype))
    unsupported;

  (* 2. deploy an unsupported update anyway: the guard's shadow
     watcher replays it on the shipped design and reports which cut
     assumption broke — the same monitors `tailor --instrument` puts
     in silicon as the guard_violation status bit *)
  let plan =
    Guard.plan ~original:net ~bespoke ~prov
      ~possibly_toggled:r_base.Activity.possibly_toggled
      ~constants:r_base.Activity.constant_values
  in
  Format.printf
    "guard plan: %d assumption(s) = %d monitor(s) + %d implied + %d \
     unmonitorable@."
    (List.length plan.Guard.p_assumptions)
    (List.length plan.Guard.p_monitors)
    plan.Guard.p_implied plan.Guard.p_unmonitorable;
  let silent = ref 0 in
  let caught =
    List.find_map
      (fun (m : Mutation.mutant) ->
        let w = Guard.watch_bespoke plan in
        let rp =
          Guard.replay w ~core ~netlist:bespoke
            (Mutation.to_benchmark base m)
            ~seed:1
        in
        match Guard.violations w with
        | [] ->
          (* a broken update can also fail outside the monitors' reach
             (e.g. only in swept dead logic) — silence here is why the
             shipped part still needs the offline supported-check *)
          incr silent;
          None
        | v :: _ -> Some (m, rp, w, v))
      unsupported
  in
  (match caught with
  | None ->
    Format.printf
      "no unsupported update tripped a monitor (%d replayed silently)@."
      !silent
  | Some (m, rp, w, v) ->
    Format.printf
      "deploying unsupported update (line %d, %s -> %s) on the shipped \
       part: %s@."
      m.Mutation.line m.Mutation.original m.Mutation.replacement
      (match rp.Guard.rp_result with
      | Ok _ -> "halted"
      | Error e -> e);
    Format.printf
      "  guard caught %d violation(s) on %d gate(s) (%d earlier update(s) \
       broke silently); first:@."
      (Guard.total_violations w)
      (List.length (Guard.violations w))
      !silent;
    Format.printf "    %a@." (Guard.pp_violation plan) v);

  (* 3. harden: tailor to base + all mutants *)
  let reports =
    (r_base.Activity.possibly_toggled, r_base.Activity.constant_values)
    :: List.filter_map
         (fun m ->
           match Runner.analyze ~core (Mutation.to_benchmark base m) with
           | r, _ ->
             Some
               (r.Activity.possibly_toggled, r_base.Activity.constant_values)
           | exception Activity.Analysis_error _ -> None)
         mutants
  in
  let _, stats_hard = Multi.tailor_multi net ~reports in
  Format.printf
    "hardened design (supports every mutant): %d gates (%+d vs shipped)@."
    stats_hard.Cut.bespoke_gates
    (stats_hard.Cut.bespoke_gates - stats_base.Cut.bespoke_gates);

  (* 4. Turing-complete fallback: co-analyze the subneg interpreter *)
  let r_sub, _ = Runner.analyze ~core Subneg.characterization in
  let _, stats_tc =
    Multi.tailor_multi net
      ~reports:
        [
          (r_base.Activity.possibly_toggled, r_base.Activity.constant_values);
          (r_sub.Activity.possibly_toggled, r_sub.Activity.constant_values);
        ]
  in
  Format.printf
    "subneg-enhanced design (arbitrary updates, slower): %d gates (%+d)@."
    stats_tc.Cut.bespoke_gates
    (stats_tc.Cut.bespoke_gates - stats_base.Cut.bespoke_gates);
  Format.printf "general-purpose part, for scale: %d gates@."
    stats_base.Cut.original_gates
