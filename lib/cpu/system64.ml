(* Back-compat facade over the core-generic packed harness
   {!Bespoke_coreapi.System64}, fixed to the {!Msp430} descriptor. *)

include Bespoke_coreapi.System64

let create ?lanes ?netlist (image : Bespoke_isa.Asm.image) =
  Bespoke_coreapi.System64.create ?lanes ?netlist ~core:Msp430.core
    (Msp430.coreimage image)
