(** Full-chip simulation harness: the CPU netlist coupled to external
    program-ROM and data-RAM macros.

    Runs both concretely (known inputs) and symbolically (X inputs /
    X-marked RAM regions); all memory-model semantics are the
    conservative ternary ones of {!Bespoke_sim.Memory}. *)

module Bit := Bespoke_logic.Bit
module Bvec := Bespoke_logic.Bvec
module Netlist := Bespoke_netlist.Netlist
module Engine := Bespoke_sim.Engine
module Memory := Bespoke_sim.Memory

type t

val create :
  ?mode:Engine.mode -> ?netlist:Netlist.t -> Bespoke_isa.Asm.image -> t
(** [netlist] defaults to a freshly built {!Cpu.build}; pass a bespoke
    (pruned) netlist to simulate the tailored design.  [mode] selects
    the simulation engine (default event-driven). *)

val netlist : t -> Netlist.t
val engine : t -> Engine.t
val image : t -> Bespoke_isa.Asm.image

val reset : t -> unit
(** Reset the core, reload ROM, clear RAM, and settle cycle 0 (the
    hardware reset-vector fetch). *)

(** {1 Inputs (persist across cycles)} *)

val set_gpio_in : t -> Bvec.t -> unit
val set_gpio_in_int : t -> int -> unit
val set_gpio_in_x : t -> unit
val set_irq : t -> Bit.t -> unit

(** {1 Observation} *)

val pc : t -> Bvec.t
val read_hook : t -> string -> Bvec.t
val read_hook_int : t -> string -> int option
val reg : t -> int -> Bvec.t
(** Architectural register 0..15 (r3 reads as 0). *)

val halted : t -> bool
(** True iff the halt flag is definitely 1. *)

val fetching : t -> Bit.t
(** Value of the "fetching" hook this cycle. *)

val insn_boundary_code : t -> int
(** Ternary code (0/1/2=X) of the "insn_boundary" hook, allocation-free
    (for per-cycle driver loops). *)

val cycles : t -> int
val ram : t -> Memory.t
val read_ram_word : t -> int -> Bvec.t
(** By byte address. *)

val set_ram_x : t -> lo_addr:int -> hi_addr:int -> unit
(** Mark a byte-address range of RAM unknown (inclusive). *)

val gpio_out : t -> Bvec.t

val output_trace : t -> (int * Bvec.t) list
(** [(cycle, value)] for each cycle in which the GPIO output register
    was written (strobe definitely high), oldest first. *)

(** {1 Execution} *)

val step_cycle : t -> unit
(** Advance one clock: sample writes, commit activity, clock edge,
    feed memories. *)

val run_to_boundary : ?max_cycles:int -> t -> [ `Fetch | `Halted | `Unknown ]
(** Step until the next cycle whose "fetching" hook is definitely 1
    (an instruction boundary), the design is halted, or the hook is X
    (control state has become unknown — callers must fork or give
    up).  @raise Failure when [max_cycles] elapse first. *)

val run : ?max_cycles:int -> t -> int
(** Run until halted; returns total cycles.
    @raise Failure on timeout or unknown control state. *)

(** {1 State capture (execution-tree exploration)} *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val snapshot_dffs : snapshot -> Bvec.t
val snapshot_ram : snapshot -> Memory.snapshot

val snapshot_subsumes : general:snapshot -> specific:snapshot -> bool
val snapshot_merge : snapshot -> snapshot -> snapshot
val with_dffs : snapshot -> Bvec.t -> snapshot
