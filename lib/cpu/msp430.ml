module Isa = Bespoke_isa.Isa
module Asm = Bespoke_isa.Asm
module Iss = Bespoke_isa.Iss
module Memmap = Bespoke_isa.Memmap
module Disasm = Bespoke_isa.Disasm
module Coredef = Bespoke_coreapi.Coredef

(* The MSP430-class core as a {!Bespoke_coreapi.Coredef} descriptor:
   the original target of the flow, now one core among several.  All
   MSP430 specifics the analysis/verification layers used to hardcode
   (geometry, register hook names, control-instruction shapes, the
   return-context refinement, the fuzz-program menu) live here. *)

(* ---- golden model -------------------------------------------------- *)

let coreiss (img : Asm.image) () : Coredef.iss =
  let t = Iss.create img in
  {
    Coredef.reset = (fun () -> Iss.reset t);
    step = (fun () -> Iss.step t);
    halted = (fun () -> Iss.halted t);
    pc = (fun () -> Iss.pc t);
    reg = (fun r -> Iss.reg t r);
    cycles = (fun () -> Iss.cycles t);
    retired = (fun () -> Iss.instructions_retired t);
    read_ram_word = (fun a -> Iss.read_ram_word t a);
    write_ram_word = (fun a v -> Iss.write_ram_word t a v);
    set_gpio_in = (fun v -> Iss.set_gpio_in t v);
    gpio_out = (fun () -> Iss.gpio_out t);
    output_trace = (fun () -> Iss.output_trace t);
    set_irq_line = (fun b -> Iss.set_irq_line t b);
    irq_entry = (fun () -> Iss.read_word t Memmap.irq_vector);
    current_insn =
      (fun () -> try Isa.to_string (Iss.current_insn t) with _ -> "?");
  }

let coreimage (img : Asm.image) : Coredef.image =
  {
    Coredef.rom = Asm.image_rom img;
    entry = img.Asm.entry;
    insn_addrs = Asm.instruction_addrs img;
    listing = (fun () -> Disasm.listing img);
    mk_iss = coreiss img;
  }

(* ---- static instruction classification ----------------------------- *)

let is_control_insn (i : Isa.t) =
  match i with
  | Isa.Jump _ -> true
  | Isa.One { op = Isa.CALL | Isa.RETI; _ } -> true
  | Isa.One { op = Isa.RRC | Isa.RRA | Isa.SWPB | Isa.SXT; dst = Isa.Sreg 0; _ }
    -> true
  | Isa.One _ -> false
  | Isa.Two { dst = Isa.Dreg 0; _ } -> true
  | Isa.Two _ -> false

let decode_at ~rom_word ~pc =
  try Isa.decode (rom_word pc) [ rom_word (pc + 2); rom_word (pc + 4) ]
  with Isa.Decode_error m -> failwith (Printf.sprintf "decode at %04x: %s" pc m)

let classify ~rom_word ~pc =
  let insn, n = decode_at ~rom_word ~pc in
  {
    Coredef.ci_control = is_control_insn insn;
    ci_cond_branch =
      (match insn with
      | Isa.Jump { cond; _ } -> cond <> Isa.JMP
      | _ -> false);
    ci_next = pc + (2 * n);
  }

(* For instructions that load PC from the stack (RETI, RET), the
   return context — the stack-top words — refines the analyzer's merge
   key: states returning to different places are never merged, so each
   continues to its concrete target instead of producing an X program
   counter. *)
let ret_context ~rom_word ~read_reg ~read_ram_word ~pc =
  let insn = fst (decode_at ~rom_word ~pc) in
  let stack_word off =
    match read_reg 1 with
    | None -> -1
    | Some sp -> (
      if not (Memmap.in_ram sp) then -1
      else match read_ram_word (sp + off) with Some v -> v | None -> -1)
  in
  match insn with
  | Isa.One { op = Isa.RETI; _ } -> (stack_word 0, stack_word 2)
  | Isa.Two { dst = Isa.Dreg 0; src = Isa.Sinc 1 | Isa.Sind 1; _ } ->
    (stack_word 0, 0)
  | _ -> (0, 0)

(* ---- fuzz-program generator ----------------------------------------

   Generated programs exercise arbitrary mixes of the ISA (all
   two-op/one-op instructions, byte/word, every addressing mode,
   bounded loops, forward branches, stack traffic, multiplier and GPIO
   access) and always terminate.  The same seed always yields the same
   program, so any failure is reproducible from the seed alone. *)

module Fuzz = struct
  let scratch = 0x0300  (* 32-word scratch window the programs write *)

  (* deterministic PRNG so failures are reproducible from the seed *)
  type rng = { mutable s : int }

  let next r =
    r.s <- ((r.s * 1103515245) + 12345) land 0x3FFFFFFF;
    (r.s lsr 7) land 0xFFFFFF

  let pick r l = List.nth l (next r mod List.length l)
  let chance r pct = next r mod 100 < pct

  let reg r = pick r [ "r4"; "r5"; "r6"; "r7"; "r8"; "r9"; "r10"; "r11" ]

  let imm r =
    pick r
      [ "#0"; "#1"; "#2"; "#4"; "#8";
        Printf.sprintf "#%d" (next r land 0xffff) ]

  let scratch_abs r = Printf.sprintf "&0x%04x" (scratch + (next r land 0x3e))
  let scratch_idx r = Printf.sprintf "%d(r14)" (next r land 0x3e)

  let src r =
    match next r mod 6 with
    | 0 -> reg r
    | 1 | 2 -> imm r
    | 3 -> scratch_abs r
    | 4 -> scratch_idx r
    | _ -> "@r14"

  let dst r =
    match next r mod 4 with
    | 0 | 1 -> reg r
    | 2 -> scratch_abs r
    | _ -> scratch_idx r

  let two_op r =
    pick r
      [ "mov"; "add"; "addc"; "sub"; "subc"; "cmp"; "dadd"; "bit"; "bic";
        "bis"; "xor"; "and" ]

  let size_suffix r = if chance r 25 then ".b" else ""

  let gen_instr r buf label_counter =
    match next r mod 12 with
    | 0 | 1 | 2 | 3 | 4 ->
      Buffer.add_string buf
        (Printf.sprintf "        %s%s %s, %s\n" (two_op r) (size_suffix r)
           (src r) (dst r))
    | 5 ->
      let op = pick r [ "rrc"; "rra" ] in
      Buffer.add_string buf
        (Printf.sprintf "        %s%s %s\n" op (size_suffix r) (reg r))
    | 6 ->
      let op = pick r [ "swpb"; "sxt" ] in
      Buffer.add_string buf (Printf.sprintf "        %s %s\n" op (reg r))
    | 7 ->
      (* balanced stack traffic *)
      Buffer.add_string buf
        (Printf.sprintf "        push %s\n        pop %s\n" (src r) (reg r))
    | 8 ->
      (* forward conditional skip *)
      incr label_counter;
      let l = Printf.sprintf "fl%d" !label_counter in
      let cond = pick r [ "jz"; "jnz"; "jc"; "jnc"; "jn"; "jge"; "jl" ] in
      Buffer.add_string buf
        (Printf.sprintf "        %s %s\n        %s %s, %s\n%s:\n" cond l
           (two_op r) (src r) (dst r) l)
    | 9 ->
      (* bounded loop *)
      incr label_counter;
      let l = Printf.sprintf "lp%d" !label_counter in
      let n = 1 + (next r mod 6) in
      Buffer.add_string buf
        (Printf.sprintf
           "        mov #%d, r12\n\
            %s:\n\
           \        %s %s, %s\n\
           \        dec r12\n\
           \        jnz %s\n"
           n l (two_op r) (src r) (reg r) l)
    | 10 ->
      (* hardware multiplier *)
      Buffer.add_string buf
        (Printf.sprintf
           "        mov %s, &0x0130\n\
           \        mov %s, &0x0138\n\
           \        mov &0x013a, %s\n"
           (src r) (src r) (reg r))
    | _ ->
      (* GPIO *)
      if chance r 50 then
        Buffer.add_string buf
          (Printf.sprintf "        mov &0x0010, %s\n" (reg r))
      else
        Buffer.add_string buf
          (Printf.sprintf "        mov %s, &0x0012\n" (src r))

  let program ~seed =
    let r = { s = (seed * 2654435761) lor 1 } in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "start:  mov #0x0400, sp\n";
    Buffer.add_string buf (Printf.sprintf "        mov #0x%04x, r14\n" scratch);
    (* seed some registers and scratch *)
    for i = 4 to 11 do
      Buffer.add_string buf
        (Printf.sprintf "        mov #0x%04x, r%d\n" (next r land 0xffff) i)
    done;
    for i = 0 to 7 do
      Buffer.add_string buf
        (Printf.sprintf "        mov #0x%04x, &0x%04x\n" (next r land 0xffff)
           (scratch + (2 * i)))
    done;
    let label_counter = ref 0 in
    let n = 12 + (next r mod 25) in
    for _ = 1 to n do
      gen_instr r buf label_counter
    done;
    (* publish a checksum so divergence is observable even in registers
       we never compare *)
    Buffer.add_string buf "        mov r4, &0x0380\n";
    Buffer.add_string buf "        halt\n";
    Buffer.contents buf
end

(* ---- the descriptor ------------------------------------------------ *)

let core : Coredef.t =
  {
    Coredef.name = "msp430";
    word_bits = 16;
    addr_shift = 1;
    insn_align = 2;
    mem_words = 2048;
    rom_base = Memmap.rom_base;
    rom_words = Memmap.rom_words;
    ram_base = Memmap.ram_base;
    ram_words = Memmap.ram_words;
    reset_extra_cycles = 1;
    arch_regs = [ 0; 1; 2; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ];
    reg_name = (fun r -> Printf.sprintf "r%d" r);
    reg_hook =
      (fun r ->
        match r with
        | 0 -> Some "pc"
        | 1 -> Some "sp"
        | 2 -> Some "sr"
        | 3 -> None  (* constant generator: reads as 0 *)
        | _ -> Some (Printf.sprintf "r%d" r));
    sp_reg = Some 1;
    has_irq = true;
    gie_bit = Some ("sr", Isa.flag_gie);
    trace_signals =
      [ "pc"; "state"; "ir"; "sp"; "sr"; "pmem_addr"; "dmem_addr";
        "dmem_wdata"; "dmem_wen"; "gpio_out"; "halted" ];
    build = Cpu.build;
    assemble = (fun src -> coreimage (Asm.assemble src));
    classify;
    ret_context;
    fuzz_program = (fun ~seed -> Fuzz.program ~seed);
  }
