(** Lockstep execution of the gate-level CPU against the ISS golden
    model, comparing architectural state at every instruction boundary
    and cycle counts against the {!Bespoke_isa.Timing} contract.

    This is the primary correctness oracle for the CPU netlist and,
    with [~netlist], the input-based verification procedure for
    bespoke designs (paper, Section 5.1). *)

type result = {
  instructions : int;
  cycles : int;  (** gate-level cycles, including the reset cycle *)
  gpio_final : int;
  outputs : int list;  (** values written to the GPIO output port *)
  toggles : int array;
      (** per-gate toggle counts of the gate-level run (indexed by
          gate id); the denominator for gate-coverage accounting *)
}

type divergence_info = {
  at_insn : int;
      (** instruction index of the first mismatch; [-1] when the
          divergence predates the first boundary (reset) *)
  at_pc : int;  (** ISS program counter at the mismatch, [-1] if n/a *)
  what : string;
      (** the diverging state element: ["r7"], ["cycles"],
          ["ram\[0382\]"], ["gpio_out"], ["halt"], ... *)
  detail : string;  (** full human-readable diagnostic *)
}
(** Structured description of the first architectural divergence —
    the shrinking layer of the verification campaign keys on
    [at_insn]/[what] rather than parsing [detail]. *)

exception Divergence of string

val run :
  ?mode:Bespoke_sim.Engine.mode ->
  ?netlist:Bespoke_netlist.Netlist.t ->
  ?gpio_in:int ->
  ?ram_writes:(int * int) list ->
  ?irq_pulse_at:int list ->
  ?max_insns:int ->
  ?x_dont_care:bool ->
  Bespoke_isa.Asm.image ->
  result
(** Runs both models to completion (the halt port).  [mode] selects
    the gate-level simulation engine for the CPU side (the ISS is
    unaffected); all modes are bit-identical.  [ram_writes]
    preloads (byte address, word) pairs into both models' data RAM
    before the run (benchmark inputs).  [irq_pulse_at] lists
    instruction indices before which the external IRQ line is pulsed
    high for one instruction.

    [x_dont_care] (default [false]) only requires the {e concrete}
    gate-level bits to match the ISS: a tailored design may hold
    const-X ties on state the analysis proved the application never
    observes (e.g. SP bits of a program with no stack traffic), which
    is correct by construction but fails the strict all-bits compare.
    Leave it off for stock netlists, where an X is always a bug.

    @raise Divergence on the first architectural mismatch, with a
    diagnostic. *)

val run_result :
  ?mode:Bespoke_sim.Engine.mode ->
  ?netlist:Bespoke_netlist.Netlist.t ->
  ?gpio_in:int ->
  ?ram_writes:(int * int) list ->
  ?irq_pulse_at:int list ->
  ?max_insns:int ->
  ?x_dont_care:bool ->
  Bespoke_isa.Asm.image ->
  (result, divergence_info) Stdlib.result
(** Like {!run} but never raises {!Divergence}: the first mismatch is
    returned as structured {!divergence_info} instead, so callers (the
    verification campaign, the fault-injection kill check) can shrink
    and report without string matching. *)
