module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Netlist = Bespoke_netlist.Netlist
module Engine = Bespoke_sim.Engine
module Memory = Bespoke_sim.Memory
module Asm = Bespoke_isa.Asm
module Memmap = Bespoke_isa.Memmap

type t = {
  eng : Engine.t;
  image : Asm.image;
  rom : Memory.t;  (* 2048 words, indexed by addr[11:1] *)
  ram : Memory.t;  (* 2048 words, indexed by addr[11:1] *)
  mem_cone : Engine.cone;
  mutable gpio_in : Bvec.t;
  mutable irq : Bit.t;
  mutable cycle : int;
  mutable trace : (int * Bvec.t) list;  (* newest first *)
}

let word_index (addr : Bvec.t) = Array.sub addr 1 11

let create ?mode ?netlist image =
  let net = match netlist with Some n -> n | None -> Cpu.build () in
  let eng = Engine.create ?mode net in
  let rom = Memory.create ~words:2048 ~width:16 ~init:Bit.Zero in
  Array.iteri (fun i w -> Memory.load_int rom i w) (Asm.image_rom image);
  let ram = Memory.create ~words:2048 ~width:16 ~init:Bit.Zero in
  let mem_inputs =
    Array.append
      (Netlist.find_input net "pmem_rdata")
      (Netlist.find_input net "dmem_rdata")
  in
  let mem_cone = Engine.make_cone eng mem_inputs in
  {
    eng;
    image;
    rom;
    ram;
    mem_cone;
    gpio_in = Bvec.of_int ~width:16 0;
    irq = Bit.Zero;
    cycle = 0;
    trace = [];
  }

let netlist t = Engine.netlist t.eng
let engine t = t.eng
let image t = t.image

(* Feed combinational memory read data for the currently settled cycle. *)
let feed_memories t =
  let pmem_addr = Engine.read t.eng "pmem_addr" in
  Engine.set_input t.eng "pmem_rdata" (Memory.read t.rom (word_index pmem_addr));
  let dmem_addr = Engine.read t.eng "dmem_addr" in
  Engine.set_input t.eng "dmem_rdata" (Memory.read t.ram (word_index dmem_addr));
  Engine.eval_cone t.eng t.mem_cone

let apply_inputs t =
  Engine.set_input t.eng "gpio_in" t.gpio_in;
  Engine.set_input t.eng "irq" [| t.irq |]

let reset t =
  Memory.clear t.ram Bit.Zero;
  Array.iteri (fun i w -> Memory.load_int t.rom i w) (Asm.image_rom t.image);
  Engine.reset t.eng;
  apply_inputs t;
  Engine.eval t.eng;
  feed_memories t;
  t.cycle <- 0;
  t.trace <- []

let set_gpio_in t v =
  t.gpio_in <- v;
  apply_inputs t;
  Engine.eval t.eng;
  feed_memories t

let set_gpio_in_int t n = set_gpio_in t (Bvec.of_int ~width:16 n)
let set_gpio_in_x t = set_gpio_in t (Bvec.all_x 16)

let set_irq t v =
  t.irq <- v;
  apply_inputs t;
  Engine.eval t.eng;
  feed_memories t

let read_hook t name = Engine.read t.eng name
let read_hook_int t name = Engine.read_int t.eng name
let pc t = read_hook t "pc"

let reg t i =
  match i with
  | 0 -> read_hook t "pc"
  | 1 -> read_hook t "sp"
  | 2 -> read_hook t "sr"
  | 3 -> Bvec.of_int ~width:16 0
  | _ -> read_hook t (Printf.sprintf "r%d" i)

let halted t = Bit.equal (read_hook t "halted").(0) Bit.One
let fetching t = (read_hook t "fetching").(0)
let cycles t = t.cycle
let ram t = t.ram
let read_ram_word t addr = Memory.read_word t.ram ((addr lsr 1) land 0x7ff)

let set_ram_x t ~lo_addr ~hi_addr =
  Memory.set_x_range t.ram ~lo:((lo_addr lsr 1) land 0x7ff)
    ~hi:((hi_addr lsr 1) land 0x7ff)

let gpio_out t = read_hook t "gpio_out"

let output_trace t = List.rev t.trace

(* Sample this cycle's RAM write (if any) and the GPIO trace. *)
let sample_writes t =
  let wen = (read_hook t "dmem_wen").(0) in
  (match wen with
  | Bit.Zero -> ()
  | Bit.One | Bit.X ->
    let addr = read_hook t "dmem_addr" in
    let ben = read_hook t "dmem_ben" in
    let data = read_hook t "dmem_wdata" in
    let mask =
      Array.init 16 (fun i -> if i < 8 then ben.(0) else ben.(1))
    in
    Memory.write t.ram ~addr:(word_index addr) ~data ~mask ~en:wen);
  match (read_hook t "gpio_wr").(0) with
  | Bit.One -> t.trace <- (t.cycle, gpio_out t) :: t.trace
  | Bit.Zero | Bit.X -> ()

let step_cycle t =
  sample_writes t;
  Engine.step t.eng;
  (* inputs persist; recompute memory data for the new cycle *)
  feed_memories t;
  (* commit the newly settled cycle immediately, so a path that ends
     here (halt, prune, fork) has its final transition recorded *)
  Engine.commit_cycle t.eng;
  t.cycle <- t.cycle + 1

let run_to_boundary ?(max_cycles = 1_000_000) t =
  let deadline = t.cycle + max_cycles in
  let rec go () =
    if halted t then `Halted
    else begin
      step_cycle t;
      if t.cycle > deadline then
        failwith "System.run_to_boundary: cycle limit exceeded";
      if halted t then `Halted
      else
        (* Stop at every FETCH-state cycle, including one whose fetch
           is pre-empted by a pending interrupt: that is still an
           instruction boundary (it aligns with the ISS, whose
           interrupt entry is its own step). *)
        match (read_hook t "insn_boundary").(0) with
        | Bit.One -> `Fetch
        | Bit.X -> `Unknown
        | Bit.Zero -> go ()
    end
  in
  go ()

let run ?(max_cycles = 5_000_000) t =
  let deadline = t.cycle + max_cycles in
  while (not (halted t)) && t.cycle <= deadline do
    step_cycle t
  done;
  if not (halted t) then failwith "System.run: cycle limit exceeded";
  t.cycle

type snapshot = { dffs : Bvec.t; ram_snap : Memory.snapshot }

let snapshot t = { dffs = Engine.dff_state t.eng; ram_snap = Memory.snapshot t.ram }

let restore t s =
  Memory.restore t.ram s.ram_snap;
  Engine.restore_dff_state t.eng s.dffs;
  apply_inputs t;
  Engine.eval t.eng;
  feed_memories t;
  (* the jump between exploration states is not switching activity *)
  Engine.sync_prev t.eng

let snapshot_dffs s = s.dffs
let snapshot_ram s = s.ram_snap

let snapshot_subsumes ~general ~specific =
  Bvec.subsumes ~general:general.dffs ~specific:specific.dffs
  && Memory.subsumes ~general:general.ram_snap ~specific:specific.ram_snap

let snapshot_merge a b =
  {
    dffs = Bvec.merge a.dffs b.dffs;
    ram_snap = Memory.merge_snapshot a.ram_snap b.ram_snap;
  }

let with_dffs s dffs = { s with dffs }
