(* Back-compat facade: the MSP430-specialized system harness is now
   the core-generic {!Bespoke_coreapi.System} instantiated with the
   {!Msp430} descriptor.  [create] keeps the historical signature
   (a raw {!Bespoke_isa.Asm.image}). *)

include Bespoke_coreapi.System

let create ?mode ?netlist (image : Bespoke_isa.Asm.image) =
  Bespoke_coreapi.System.create ?mode ?netlist ~core:Msp430.core
    (Msp430.coreimage image)
