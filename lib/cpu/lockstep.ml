(* Back-compat facade over the core-generic lockstep runner
   {!Bespoke_coreapi.Lockstep}, fixed to the {!Msp430} descriptor. *)

include Bespoke_coreapi.Lockstep

let run_result ?mode ?netlist ?gpio_in ?ram_writes ?irq_pulse_at ?max_insns
    ?x_dont_care (image : Bespoke_isa.Asm.image) =
  Bespoke_coreapi.Lockstep.run_result ?mode ?netlist ?gpio_in ?ram_writes
    ?irq_pulse_at ?max_insns ?x_dont_care ~core:Msp430.core
    (Msp430.coreimage image)

let run ?mode ?netlist ?gpio_in ?ram_writes ?irq_pulse_at ?max_insns
    ?x_dont_care (image : Bespoke_isa.Asm.image) =
  Bespoke_coreapi.Lockstep.run ?mode ?netlist ?gpio_in ?ram_writes
    ?irq_pulse_at ?max_insns ?x_dont_care ~core:Msp430.core
    (Msp430.coreimage image)
