module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Iss = Bespoke_isa.Iss
module Asm = Bespoke_isa.Asm
module Memmap = Bespoke_isa.Memmap
module Memory = Bespoke_sim.Memory
module Engine = Bespoke_sim.Engine

type result = {
  instructions : int;
  cycles : int;
  gpio_final : int;
  outputs : int list;
  toggles : int array;
}

type divergence_info = {
  at_insn : int;
  at_pc : int;
  what : string;
  detail : string;
}

exception Divergence of string

(* internal: carries the structured record out of the comparators *)
exception Diverged of divergence_info

let fail ?(at_insn = -1) ?(at_pc = -1) ~what fmt =
  Printf.ksprintf
    (fun detail -> raise (Diverged { at_insn; at_pc; what; detail }))
    fmt

(* Every concrete bit of [got] agrees with [expected]; X bits pass.
   Used by the [x_dont_care] mode: a tailored design holds const-X
   ties on state the application provably never observes, so only the
   bits the gate level actually knows are required to match. *)
let concrete_bits_match expected (got : Bvec.t) =
  let ok = ref true in
  Array.iteri
    (fun i b ->
      match b with
      | Bit.Zero -> if (expected lsr i) land 1 <> 0 then ok := false
      | Bit.One -> if (expected lsr i) land 1 <> 1 then ok := false
      | Bit.X -> ())
    got;
  !ok

let compare_boundary ~x_dont_care ~insn_idx sys iss =
  let at_pc = Iss.pc iss in
  let check name expected (got : Bvec.t) =
    match Bvec.to_int got with
    | Some v when v = expected -> ()
    | Some v ->
      fail ~at_insn:insn_idx ~at_pc ~what:name
        "insn %d: %s mismatch: ISS %04x, CPU %04x (iss pc %04x)" insn_idx
        name expected v (Iss.pc iss)
    | None when x_dont_care && concrete_bits_match expected got -> ()
    | None ->
      fail ~at_insn:insn_idx ~at_pc ~what:name
        "insn %d: %s is unknown in CPU: %s (ISS %04x)" insn_idx name
        (Bvec.to_string got) expected
  in
  for r = 0 to 15 do
    if r <> 3 then
      check (Printf.sprintf "r%d" r) (Iss.reg iss r) (System.reg sys r)
  done;
  (* Cycle agreement: the CPU spends one extra cycle in RESET. *)
  let cpu_cycles = System.cycles sys in
  let iss_cycles = Iss.cycles iss in
  if cpu_cycles <> iss_cycles + 1 then
    fail ~at_insn:insn_idx ~at_pc ~what:"cycles"
      "insn %d (pc %04x): cycle mismatch: ISS %d (+1 reset), CPU %d"
      insn_idx (Iss.pc iss) iss_cycles cpu_cycles

let compare_final ~x_dont_care ~insn_idx sys iss =
  let at_pc = Iss.pc iss in
  (* data RAM *)
  for w = 0 to Memmap.ram_words - 1 do
    let addr = Memmap.ram_base + (2 * w) in
    let cpu_v = System.read_ram_word sys addr in
    let iss_v = Iss.read_ram_word iss addr in
    let what = Printf.sprintf "ram[%04x]" addr in
    match Bvec.to_int cpu_v with
    | Some v when v = iss_v -> ()
    | Some v ->
      fail ~at_insn:insn_idx ~at_pc ~what "ram[%04x]: ISS %04x, CPU %04x" addr
        iss_v v
    | None when x_dont_care && concrete_bits_match iss_v cpu_v -> ()
    | None ->
      fail ~at_insn:insn_idx ~at_pc ~what "ram[%04x]: unknown in CPU (%s)" addr
        (Bvec.to_string cpu_v)
  done;
  let gpio = System.gpio_out sys in
  match Bvec.to_int gpio with
  | Some v when v = Iss.gpio_out iss -> ()
  | Some v ->
    fail ~at_insn:insn_idx ~at_pc ~what:"gpio_out" "gpio_out: ISS %04x, CPU %04x"
      (Iss.gpio_out iss) v
  | None when x_dont_care && concrete_bits_match (Iss.gpio_out iss) gpio -> ()
  | None -> fail ~at_insn:insn_idx ~at_pc ~what:"gpio_out" "gpio_out unknown in CPU"

let run_result ?mode ?netlist ?(gpio_in = 0) ?(ram_writes = [])
    ?(irq_pulse_at = []) ?(max_insns = 200_000) ?(x_dont_care = false) image =
  try
    let iss = Iss.create image in
    Iss.reset iss;
    Iss.set_gpio_in iss gpio_in;
    List.iter (fun (a, v) -> Iss.write_ram_word iss a v) ram_writes;
    let sys = System.create ?mode ?netlist image in
    System.reset sys;
    System.set_gpio_in_int sys gpio_in;
    List.iter
      (fun (a, v) -> Memory.load_int (System.ram sys) ((a lsr 1) land 0x7ff) v)
      ram_writes;
    (* consume the reset-vector cycle so both models sit at the first
       instruction boundary *)
    (match System.run_to_boundary ~max_cycles:4 sys with
    | `Fetch -> ()
    | `Halted | `Unknown ->
      fail ~what:"reset" "did not reach the first fetch");
    let insn_idx = ref 0 in
    let finished = ref false in
    while not !finished do
      if !insn_idx > max_insns then
        fail ~at_insn:!insn_idx ~what:"limit" "instruction limit exceeded";
      let line = List.mem !insn_idx irq_pulse_at in
      Iss.set_irq_line iss line;
      System.set_irq sys (Bit.of_bool line);
      (* Advance the CPU to its next instruction boundary (or halt). *)
      (match System.run_to_boundary ~max_cycles:100 sys with
      | `Fetch | `Halted -> ()
      | `Unknown ->
        fail ~at_insn:!insn_idx ~at_pc:(Iss.pc iss) ~what:"control"
          "CPU control state became unknown");
      (* Advance the ISS to match: one instruction, or one interrupt
         entry (which the CPU's IRQ sequence mirrors cycle for cycle). *)
      if System.halted sys then begin
        Iss.step iss;  (* the halting instruction *)
        if not (Iss.halted iss) then
          fail ~at_insn:!insn_idx ~at_pc:(Iss.pc iss) ~what:"halt"
            "CPU halted but ISS did not";
        compare_final ~x_dont_care ~insn_idx:!insn_idx sys iss;
        finished := true
      end
      else begin
        Iss.step iss;
        incr insn_idx;
        if Iss.halted iss then
          fail ~at_insn:!insn_idx ~at_pc:(Iss.pc iss) ~what:"halt"
            "ISS halted but CPU did not"
        else compare_boundary ~x_dont_care ~insn_idx:!insn_idx sys iss
      end
    done;
    Ok
      {
        instructions = Iss.instructions_retired iss;
        cycles = System.cycles sys;
        gpio_final = Iss.gpio_out iss;
        outputs = List.map snd (Iss.output_trace iss);
        toggles = Engine.toggle_counts (System.engine sys);
      }
  with Diverged info -> Error info

let run ?mode ?netlist ?gpio_in ?ram_writes ?irq_pulse_at ?max_insns
    ?x_dont_care image =
  match
    run_result ?mode ?netlist ?gpio_in ?ram_writes ?irq_pulse_at ?max_insns
      ?x_dont_care image
  with
  | Ok r -> r
  | Error info -> raise (Divergence info.detail)
