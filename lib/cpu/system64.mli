(** Packed full-chip harness: the CPU netlist simulated across up to
    63 lanes at once via {!Bespoke_sim.Engine64}, each lane with its
    own data RAM, GPIO input and IRQ line (the ROM is shared and
    read-only after load).

    Per-lane committed activity is bit-identical to a scalar
    {!System} run of the same stimulus — the packed profiling path
    ({!Bespoke_core.Runner.run_gate_packed}) depends on this. *)

module Bit := Bespoke_logic.Bit
module Bvec := Bespoke_logic.Bvec
module Netlist := Bespoke_netlist.Netlist
module Engine64 := Bespoke_sim.Engine64
module Memory := Bespoke_sim.Memory

type t

val create :
  ?lanes:int -> ?netlist:Netlist.t -> Bespoke_isa.Asm.image -> t

val netlist : t -> Netlist.t
val engine : t -> Engine64.t
val lanes : t -> int
val image : t -> Bespoke_isa.Asm.image
val cycles : t -> int

val reset : t -> unit
(** Reset the core in every lane, reload ROM, clear all RAMs, settle
    cycle 0. *)

(** {1 Per-lane inputs} *)

val set_gpio_in_lane : t -> int -> Bvec.t -> unit
val set_irq_lanes : t -> Bit.t array -> unit
val load_ram_word : t -> int -> int -> int -> unit
(** [load_ram_word t lane byte_addr value]. *)

(** {1 Observation} *)

val read_hook_lane : t -> string -> int -> Bvec.t
val read_hook_lane_int : t -> string -> int -> int option
val halted_lane : t -> int -> bool
val halted_mask : t -> int
val ram : t -> int -> Memory.t
val read_ram_word : t -> int -> int -> Bvec.t
val gpio_out_lane : t -> int -> Bvec.t

(** {1 Stepping} *)

val step_cycle : t -> active:int -> unit
(** One clock cycle in every lane; only [active] lanes sample RAM
    writes and are charged committed activity. *)
