module Coredef = Bespoke_coreapi.Coredef
module B = Bespoke_programs.Benchmark

(* The core registry: every supported core descriptor paired with its
   benchmark suite.  This is the only module that knows all concrete
   cores; the flow layers (analysis, tailoring, verification, guards,
   campaigns) work from whichever {!Coredef.t} they are handed.
   Adding a third core means adding one entry here. *)

type entry = {
  core : Coredef.t;
  benchmarks : B.t list;  (* the per-core tailoring suite *)
}

let msp430 =
  {
    core = Bespoke_cpu.Msp430.core;
    benchmarks =
      B.all
      @ [ Bespoke_programs.Rtos.kernel;
          Bespoke_programs.Subneg.characterization ];
  }

let rv32 = { core = Bespoke_rv32.Rv32.core; benchmarks = Bespoke_rv32.Bench.all }

let all = [ msp430; rv32 ]
let names = List.map (fun e -> e.core.Coredef.name) all
let default = msp430

let find name =
  List.find_opt (fun e -> e.core.Coredef.name = name) all

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf "unknown core %S (known: %s)" name
         (String.concat ", " names))

let benchmark entry name =
  List.find_opt (fun b -> b.B.name = name) entry.benchmarks
