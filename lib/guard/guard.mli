(** Deployment guards: runtime monitors for the cut-boundary
    assumptions a tailoring makes.

    The paper's Section 5.3 risk is that a program update exercises
    logic that was cut; {!Bespoke_core.Multi.supported} catches that
    offline, but nothing observes the {e shipped} design.  This module
    closes the loop two ways:

    - {b Hardware mode} ({!instrument}): synthesize, through the
      ordinary netlist types, one comparator per checkable assumption
      (the cut gate's function recomputed over surviving bespoke nets
      and tie constants, compared against the assumed constant), a
      sticky violation DFF per monitor, and an OR-reduction into a
      1-bit [guard_violation] output port — a memory-mappable guard
      status register.  The instrumented design runs through the
      normal {!Bespoke_core.Runner} / {!Bespoke_power.Report} flow, so
      its area/power overhead is measured with the same instruments as
      the savings it protects.
    - {b Shadow mode} ({!watch_original}/{!watch_bespoke} +
      {!attach}): zero hardware — an {!Bespoke_sim.Engine.set_cycle_hook}
      probe checks the same assumptions during any simulation (all
      four engines) and streams schema-versioned [bespoke-guard/v1]
      JSONL violation records carrying the cut/keep provenance chain
      from {!Bespoke_report.Provenance}, so a violation names exactly
      which cut decision it invalidates. *)

module Bit := Bespoke_logic.Bit
module Netlist := Bespoke_netlist.Netlist
module Engine := Bespoke_sim.Engine
module Engine64 := Bespoke_sim.Engine64
module Provenance := Bespoke_report.Provenance
module Runner := Bespoke_core.Runner
module Benchmark := Bespoke_programs.Benchmark

(** {1 Planning} *)

(** Where a monitor input comes from in the bespoke design. *)
type source =
  | Net of int  (** a surviving bespoke gate's output *)
  | Tie of Bit.t  (** a constant (cut fanin, tie cell) *)

(** One hardware-checkable assumption: recompute the cut gate's
    function over [m_fanin] and compare against [m_const]. *)
type monitor = {
  m_gate : int;  (** original gate id of the cut gate *)
  m_const : Bit.t;  (** the constant deployment assumes *)
  m_op : Bespoke_netlist.Gate.op;  (** the cut gate's function *)
  m_fanin : source array;  (** mapped fanins, original order *)
}

type plan = {
  p_original : Netlist.t;
  p_bespoke : Netlist.t;
  p_prov : Provenance.t;
  p_assumptions : Bespoke_core.Cut.assumption list;  (** every cut gate *)
  p_monitors : monitor list;
      (** boundary assumptions checkable in hardware: every fanin maps
          to a surviving net or tie, and at least one is a live net *)
  p_implied : int;
      (** interior assumptions statically satisfied by the ties alone
          (all fanins constant) — no monitor needed *)
  p_unmonitorable : int;
      (** assumptions with a fanin the bespoke design no longer
          computes (swept dead logic): invisible to hardware monitors,
          still checked by the shadow watcher on the original design *)
}

val plan :
  original:Netlist.t ->
  bespoke:Netlist.t ->
  prov:Provenance.t ->
  possibly_toggled:bool array ->
  constants:Bit.t array ->
  plan
(** Classify every tailoring assumption.  [bespoke] and [prov] must
    come from {!Bespoke_core.Cut.tailor_explained} on [original] with
    the same activity report. *)

(** {1 Hardware instrumentation} *)

type instrumented = {
  i_design : Netlist.t;
      (** the bespoke design plus guard logic: per-monitor comparator,
          sticky violation DFF (armed one cycle after reset, so the
          reset settle does not trip it), OR-reduced into a 1-bit
          [guard_violation] output port.  Named nets: [guard_mismatch]
          and [guard_sticky] (one bit per monitor, {!instrumented}
          order), [guard_armed]. *)
  i_monitors : monitor array;  (** bit order of the guard_* nets *)
  i_base_gates : int;  (** silicon gates before instrumenting *)
  i_added_gates : int;  (** silicon gates the guard adds *)
  i_added_dffs : int;
}

val instrument : plan -> instrumented
(** Monitors only observe existing nets, so the instrumented design is
    bit-identical to the plain bespoke design on every port it shares
    with it (enforced by [test_guard]). *)

type hw_stats = {
  h_monitors : int;
  h_implied : int;
  h_unmonitorable : int;
  h_added_gates : int;
  h_added_dffs : int;
  h_area_um2 : float;  (** guard area: instrumented - bespoke *)
  h_area_pct : float;  (** as % of the bespoke design's area *)
  h_leakage_nw : float;
  h_leakage_pct : float;
}

val hw_stats : plan -> instrumented -> hw_stats
val pp_hw_stats : Format.formatter -> hw_stats -> unit

(** {1 Shadow watchers} *)

type violation = {
  v_cycle : int;  (** committed cycle the mismatch was first seen *)
  v_gate : int;  (** original gate id of the violated assumption *)
  v_assumed : Bit.t;
  v_observed : Bit.t;  (** always a known value: X never convicts *)
}

type watcher

val watch_original : plan -> watcher
(** Check {e every} assumption by reading the assumption nets directly
    — complete, but needs a simulation of the original design. *)

val watch_bespoke : plan -> watcher
(** Check the hardware-checkable monitors by recomputing each cut
    function over live bespoke nets — what the guard hardware sees,
    usable on the tailored {e or} instrumented design. *)

val attach : watcher -> Engine.t -> unit
(** Hook the watcher into an engine's per-cycle commit (any mode).
    One watcher per engine; violations are sticky per gate (a gate is
    reported once, at its first violating cycle). *)

val attach64 : watcher -> lane:int -> Engine64.t -> unit
(** Packed-engine variant: watch one lane of an {!Engine64}. *)

val violations : watcher -> violation list
(** First violation per gate, in detection order (capped at 10_000). *)

val total_violations : watcher -> int
(** Gate-cycle mismatch count, including re-offending gates. *)

val cycles_checked : watcher -> int
val clean : watcher -> bool

(** {1 Replay} *)

type replay = {
  rp_result : (Runner.gate_outcome, string) result;
      (** [Error] carries the failure text when the workload did not
          halt within [max_cycles] — itself a symptom on a cut design *)
  rp_hw_violation : Bit.t option;
      (** final settled [guard_violation] port, when the netlist has
          one and the engine is scalar *)
}

val replay :
  ?engine:Runner.engine ->
  ?max_cycles:int ->
  watcher ->
  core:Bespoke_coreapi.Coredef.t ->
  netlist:Netlist.t ->
  Benchmark.t ->
  seed:int ->
  replay
(** Run a workload (e.g. a {!Bespoke_mutation} mutant benchmark) on
    [netlist] with the watcher attached.  [max_cycles] defaults to
    300_000 — a mutant on a cut design may never halt, and the
    violations seen before the deadline are the point. *)

(** {1 bespoke-guard/v1 stream} *)

val schema : string
(** ["bespoke-guard/v1"]. *)

val header_jsonl :
  plan -> core:string -> design:string -> workload:string -> mode:string ->
  string
(** [core] is the descriptor name the design was tailored for
    ({!Bespoke_coreapi.Coredef.t.name}) — an additive [core] field in
    the [bespoke-guard/v1] header. *)

val violation_jsonl : plan -> violation -> string
(** Carries the provenance chain: the violated gate's names, module,
    reason label and human-readable cut reason. *)

val summary_jsonl : watcher -> string

val write_stream :
  out_channel ->
  plan ->
  core:string ->
  design:string ->
  workload:string ->
  mode:string ->
  watcher ->
  unit
(** Header, one record per violation, summary. *)

val pp_violation : plan -> Format.formatter -> violation -> unit
(** Human one-liner naming the responsible cut decision. *)
