module Bit = Bespoke_logic.Bit
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Engine = Bespoke_sim.Engine
module Engine64 = Bespoke_sim.Engine64
module Report = Bespoke_power.Report
module Provenance = Bespoke_report.Provenance
module Cut = Bespoke_core.Cut
module Runner = Bespoke_core.Runner
module Obs = Bespoke_obs.Obs

let m_assumptions = Obs.Metrics.counter "guard.assumptions"
let m_monitors = Obs.Metrics.counter "guard.monitors"
let m_watchers = Obs.Metrics.counter "guard.watchers"
let m_cycles = Obs.Metrics.counter "guard.cycles"
let m_violations = Obs.Metrics.counter "guard.violations"

(* {1 Planning} *)

type source = Net of int | Tie of Bit.t

type monitor = {
  m_gate : int;
  m_const : Bit.t;
  m_op : Gate.op;
  m_fanin : source array;
}

type plan = {
  p_original : Netlist.t;
  p_bespoke : Netlist.t;
  p_prov : Provenance.t;
  p_assumptions : Cut.assumption list;
  p_monitors : monitor list;
  p_implied : int;
  p_unmonitorable : int;
}

(* Original input-port gate id -> bespoke input-port gate id, matched
   by port name and bit position (ports survive tailoring). *)
let input_map (original : Netlist.t) (bespoke : Netlist.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (name, ids) ->
      match List.assoc_opt name bespoke.Netlist.input_ports with
      | Some bids when Array.length bids = Array.length ids ->
        Array.iteri (fun i oid -> Hashtbl.replace tbl oid bids.(i)) ids
      | _ -> ())
    original.Netlist.input_ports;
  tbl

(* Where original gate [f]'s value lives in the bespoke design, if the
   bespoke design still computes it. *)
let map_source (original : Netlist.t) (prov : Provenance.t) inputs f =
  if prov.Provenance.new_id.(f) >= 0 then Some (Net prov.Provenance.new_id.(f))
  else
    match original.Netlist.gates.(f).Gate.op with
    | Gate.Const b -> Some (Tie b)
    | Gate.Input -> (
      match Hashtbl.find_opt inputs f with
      | Some id -> Some (Net id)
      | None -> None)
    | _ -> (
      match prov.Provenance.reason.(f) with
      | Some (Provenance.Never_toggled c) -> Some (Tie c)
      | Some (Provenance.Merged m) -> Some (Net m)
      | _ -> None)

let plan ~original ~bespoke ~prov ~possibly_toggled ~constants =
  let assumptions = Cut.assumptions original ~possibly_toggled ~constants in
  let inputs = input_map original bespoke in
  let monitors = ref [] in
  let implied = ref 0 in
  let unmonitorable = ref 0 in
  List.iter
    (fun { Cut.a_gate; a_const } ->
      let g = original.Netlist.gates.(a_gate) in
      let mapped = Array.map (map_source original prov inputs) g.Gate.fanin in
      if Array.exists Option.is_none mapped then incr unmonitorable
      else
        let fanin = Array.map Option.get mapped in
        if Array.for_all (function Tie _ -> true | Net _ -> false) fanin then
          (* interior assumption: every fanin is itself tied off, so
             the ties alone guarantee it — nothing to watch *)
          incr implied
        else
          monitors :=
            { m_gate = a_gate; m_const = a_const; m_op = g.Gate.op; m_fanin = fanin }
            :: !monitors)
    assumptions;
  Obs.Metrics.add m_assumptions (List.length assumptions);
  Obs.Metrics.add m_monitors (List.length !monitors);
  {
    p_original = original;
    p_bespoke = bespoke;
    p_prov = prov;
    p_assumptions = assumptions;
    p_monitors = List.rev !monitors;
    p_implied = !implied;
    p_unmonitorable = !unmonitorable;
  }

(* {1 Hardware instrumentation} *)

type instrumented = {
  i_design : Netlist.t;
  i_monitors : monitor array;
  i_base_gates : int;
  i_added_gates : int;
  i_added_dffs : int;
}

let instrument plan =
  let bespoke = plan.p_bespoke in
  let base = Array.length bespoke.Netlist.gates in
  let extra = ref [] in
  let count = ref 0 in
  let add op fanin =
    let id = base + !count in
    extra := { Gate.op; fanin; module_path = "guard"; drive = 0 } :: !extra;
    incr count;
    id
  in
  let ties = Hashtbl.create 4 in
  let tie b =
    match Hashtbl.find_opt ties b with
    | Some id -> id
    | None ->
      let id = add (Gate.Const b) [||] in
      Hashtbl.add ties b id;
      id
  in
  let src = function Net id -> id | Tie b -> tie b in
  let monitors = Array.of_list plan.p_monitors in
  let names = ref [] in
  let violation =
    if Array.length monitors = 0 then tie Bit.Zero
    else begin
      (* armed is 0 during the reset settle and 1 from the first clock
         edge on, so settling noise cannot trip a sticky bit *)
      let armed = add (Gate.Dff Bit.Zero) [| tie Bit.One |] in
      let mismatch =
        Array.map
          (fun m ->
            let fan = Array.map src m.m_fanin in
            let recomp =
              match m.m_op with
              | Gate.Dff _ ->
                (* a cut DFF would toggle iff its D input leaves the
                   assumed constant: monitor the next-state function *)
                add Gate.Buf fan
              | op -> add op fan
            in
            match m.m_const with
            | Bit.One -> add Gate.Not [| recomp |]
            | Bit.Zero | Bit.X -> recomp)
          monitors
      in
      let sticky =
        Array.map
          (fun mi ->
            let gated = add Gate.And [| mi; armed |] in
            (* self-loop: or_id reads the DFF added right after it *)
            let or_id = base + !count in
            let dff_id = or_id + 1 in
            let _ = add Gate.Or [| dff_id; gated |] in
            let dff = add (Gate.Dff Bit.Zero) [| or_id |] in
            assert (dff = dff_id);
            dff)
          mismatch
      in
      let rec reduce = function
        | [] -> tie Bit.Zero
        | [ x ] -> x
        | xs ->
          let rec pair = function
            | a :: b :: tl -> add Gate.Or [| a; b |] :: pair tl
            | tl -> tl
          in
          reduce (pair xs)
      in
      names :=
        [
          ("guard_mismatch", mismatch);
          ("guard_sticky", sticky);
          ("guard_armed", [| armed |]);
        ];
      reduce (Array.to_list sticky)
    end
  in
  let design =
    {
      bespoke with
      Netlist.gates =
        Array.append bespoke.Netlist.gates (Array.of_list (List.rev !extra));
      output_ports =
        bespoke.Netlist.output_ports @ [ ("guard_violation", [| violation |]) ];
      names = bespoke.Netlist.names @ !names;
    }
  in
  Netlist.validate design;
  {
    i_design = design;
    i_monitors = monitors;
    i_base_gates = Netlist.num_gates bespoke;
    i_added_gates = Netlist.num_gates design - Netlist.num_gates bespoke;
    i_added_dffs = Netlist.num_dffs design - Netlist.num_dffs bespoke;
  }

type hw_stats = {
  h_monitors : int;
  h_implied : int;
  h_unmonitorable : int;
  h_added_gates : int;
  h_added_dffs : int;
  h_area_um2 : float;
  h_area_pct : float;
  h_leakage_nw : float;
  h_leakage_pct : float;
}

let hw_stats plan inst =
  let base_area = Report.area_um2 plan.p_bespoke in
  let base_leak = Report.leakage_nw plan.p_bespoke in
  let area = Report.area_um2 inst.i_design -. base_area in
  let leak = Report.leakage_nw inst.i_design -. base_leak in
  {
    h_monitors = Array.length inst.i_monitors;
    h_implied = plan.p_implied;
    h_unmonitorable = plan.p_unmonitorable;
    h_added_gates = inst.i_added_gates;
    h_added_dffs = inst.i_added_dffs;
    h_area_um2 = area;
    h_area_pct = 100.0 *. area /. base_area;
    h_leakage_nw = leak;
    h_leakage_pct = 100.0 *. leak /. base_leak;
  }

let pp_hw_stats fmt h =
  Format.fprintf fmt
    "%d monitor(s) (%d implied, %d unmonitorable), +%d gate(s) (%d DFF), \
     +%.0f um2 (+%.2f%%), +%.1f nW leakage (+%.2f%%)"
    h.h_monitors h.h_implied h.h_unmonitorable h.h_added_gates h.h_added_dffs
    h.h_area_um2 h.h_area_pct h.h_leakage_nw h.h_leakage_pct

(* {1 Shadow watchers} *)

type violation = {
  v_cycle : int;
  v_gate : int;
  v_assumed : Bit.t;
  v_observed : Bit.t;
}

type target = Direct of int | Recompute of Gate.op * source array
type check = { c_gate : int; c_assumed : Bit.t; c_target : target }

type watcher = {
  checks : check array;
  tripped : Bytes.t;
  mutable listed : violation list;  (* reversed *)
  mutable listed_n : int;
  mutable total : int;
  mutable cycles : int;
}

let max_listed = 10_000

let make_watcher checks =
  {
    checks;
    tripped = Bytes.make (Array.length checks) '\000';
    listed = [];
    listed_n = 0;
    total = 0;
    cycles = 0;
  }

let watch_original plan =
  make_watcher
    (Array.of_list
       (List.map
          (fun { Cut.a_gate; a_const } ->
            { c_gate = a_gate; c_assumed = a_const; c_target = Direct a_gate })
          plan.p_assumptions))

let watch_bespoke plan =
  make_watcher
    (Array.of_list
       (List.map
          (fun m ->
            {
              c_gate = m.m_gate;
              c_assumed = m.m_const;
              c_target = Recompute (m.m_op, m.m_fanin);
            })
          plan.p_monitors))

(* One pass over the checks at a committed cycle.  [read] returns the
   engine's value code for a gate id.  X never convicts: only a known
   value differing from the assumption is a violation. *)
let check_cycle w read cycle =
  w.cycles <- w.cycles + 1;
  Obs.Metrics.incr m_cycles;
  let n = Array.length w.checks in
  for i = 0 to n - 1 do
    let c = Array.unsafe_get w.checks i in
    let code =
      match c.c_target with
      | Direct id -> read id
      | Recompute (op, fanin) ->
        let vals =
          Array.map
            (function Net id -> Bit.of_int_exn (read id) | Tie b -> b)
            fanin
        in
        Bit.to_int (Gate.eval op vals)
    in
    if code <> Bit.code_x && code <> Bit.to_int c.c_assumed then begin
      w.total <- w.total + 1;
      Obs.Metrics.incr m_violations;
      if Bytes.get w.tripped i = '\000' then begin
        Bytes.set w.tripped i '\001';
        if w.listed_n < max_listed then begin
          w.listed <-
            {
              v_cycle = cycle;
              v_gate = c.c_gate;
              v_assumed = c.c_assumed;
              v_observed = Bit.of_int_exn code;
            }
            :: w.listed;
          w.listed_n <- w.listed_n + 1
        end
      end
    end
  done

let attach w eng =
  Obs.Metrics.incr m_watchers;
  Engine.set_cycle_hook eng
    (Some (fun cycle -> check_cycle w (fun id -> Engine.value_code eng id) cycle))

let attach64 w ~lane eng =
  Obs.Metrics.incr m_watchers;
  Engine64.set_cycle_hook eng
    (Some
       (fun cycle ->
         check_cycle w
           (fun id -> Bit.to_int (Engine64.value_lane eng id lane))
           cycle))

let violations w = List.rev w.listed
let total_violations w = w.total
let cycles_checked w = w.cycles
let clean w = w.total = 0

let violating_gates w =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) w.tripped;
  !n

(* {1 Replay} *)

type replay = {
  rp_result : (Runner.gate_outcome, string) result;
  rp_hw_violation : Bit.t option;
}

let replay ?(engine = Runner.Compiled) ?(max_cycles = 300_000) w ~core ~netlist
    b ~seed =
  let eng = ref None in
  let result =
    try
      Ok
        (Runner.run_gate ~engine
           ~attach:(fun e ->
             eng := Some e;
             attach w e)
           ~attach64:(fun e -> attach64 w ~lane:0 e)
           ~netlist ~max_cycles ~core b ~seed)
    with Failure msg -> Error msg
  in
  let hw_violation =
    match !eng with
    | Some e when List.mem_assoc "guard_violation" netlist.Netlist.output_ports
      ->
      Some (Engine.value e (Netlist.find_output netlist "guard_violation").(0))
    | _ -> None
  in
  { rp_result = result; rp_hw_violation = hw_violation }

(* {1 bespoke-guard/v1 stream} *)

let schema = "bespoke-guard/v1"

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

let header_jsonl plan ~core ~design ~workload ~mode =
  Printf.sprintf
    "{\"schema\":%s,\"core\":%s,\"design\":%s,\"workload\":%s,\"mode\":%s,\"assumptions\":%d,\"monitors\":%d,\"implied\":%d,\"unmonitorable\":%d}"
    (str schema) (str core) (str design) (str workload) (str mode)
    (List.length plan.p_assumptions)
    (List.length plan.p_monitors)
    plan.p_implied plan.p_unmonitorable

let reason_of plan gate =
  match plan.p_prov.Provenance.reason.(gate) with
  | Some r ->
    (Provenance.reason_label r, Format.asprintf "%a" Provenance.pp_reason r)
  | None -> ("none", "port pin or tie cell")

let violation_jsonl plan v =
  let names = Netlist.names_of plan.p_original v.v_gate in
  let modname = Netlist.module_of plan.p_original v.v_gate in
  let label, detail = reason_of plan v.v_gate in
  Printf.sprintf
    "{\"cycle\":%d,\"gate\":%d,\"names\":[%s],\"module\":%s,\"assumed\":%s,\"observed\":%s,\"reason\":%s,\"detail\":%s}"
    v.v_cycle v.v_gate
    (String.concat "," (List.map str names))
    (str modname)
    (str (String.make 1 (Bit.to_char v.v_assumed)))
    (str (String.make 1 (Bit.to_char v.v_observed)))
    (str label) (str detail)

let summary_jsonl w =
  Printf.sprintf
    "{\"summary\":true,\"cycles\":%d,\"violations\":%d,\"violating_gates\":%d,\"clean\":%b}"
    w.cycles w.total (violating_gates w) (clean w)

let write_stream oc plan ~core ~design ~workload ~mode w =
  output_string oc (header_jsonl plan ~core ~design ~workload ~mode);
  output_char oc '\n';
  List.iter
    (fun v ->
      output_string oc (violation_jsonl plan v);
      output_char oc '\n')
    (violations w);
  output_string oc (summary_jsonl w);
  output_char oc '\n'

let pp_violation plan fmt v =
  let names = Netlist.names_of plan.p_original v.v_gate in
  let modname = Netlist.module_of plan.p_original v.v_gate in
  let _, detail = reason_of plan v.v_gate in
  Format.fprintf fmt "cycle %d: gate %d%s%s assumed %c, observed %c — %s"
    v.v_cycle v.v_gate
    (if names = [] then "" else " (aka " ^ String.concat ", " names ^ ")")
    (if modname = "" then "" else " in " ^ modname)
    (Bit.to_char v.v_assumed) (Bit.to_char v.v_observed) detail
