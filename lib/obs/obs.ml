(* Telemetry core: per-domain span buffers, an atomic metrics
   registry, Chrome-trace JSONL export.  See obs.mli for the contract;
   the key invariant is that nothing here allocates or locks unless
   the [on] flag is set. *)

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let t0 = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. t0) *. 1e6

(* the domain this module was initialised in — named "main" in trace
   exports unless renamed *)
let main_tid = (Domain.self () :> int)

(* ------------------------------------------------------------------ *)
(* JSON emission helpers (no external JSON dependency)                 *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  (* JSON has no NaN/Infinity; clamp those to zero *)
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* ------------------------------------------------------------------ *)
(* Trace buffers                                                       *)

module Trace = struct
  type event = {
    name : string;
    ph : char;
    ts_us : float;
    tid : int;
    args : (string * string) list;
  }

  let dummy = { name = ""; ph = 'i'; ts_us = 0.0; tid = 0; args = [] }

  type buf = {
    tid : int;
    mutable thread_name : string;  (* "" = default naming at export *)
    mutable evs : event array;
    mutable len : int;
    mutable last_ts : float;
  }

  let mu = Mutex.create ()
  let buffers : buf list ref = ref []

  let key =
    Domain.DLS.new_key (fun () ->
        let b =
          {
            tid = (Domain.self () :> int);
            thread_name = "";
            evs = Array.make 256 dummy;
            len = 0;
            last_ts = 0.0;
          }
        in
        Mutex.protect mu (fun () -> buffers := b :: !buffers);
        b)

  (* Name the current domain's track in trace exports (Chrome-trace
     thread_name metadata).  Cheap and unconditional — a name set
     while collection is off still labels later events. *)
  let set_thread_name name = (Domain.DLS.get key).thread_name <- name

  let thread_names () =
    Mutex.protect mu (fun () ->
        List.rev_map (fun b -> (b.tid, b.thread_name)) !buffers)

  let emit name ph args =
    let b = Domain.DLS.get key in
    if b.len = Array.length b.evs then begin
      let evs = Array.make (2 * b.len) dummy in
      Array.blit b.evs 0 evs 0 b.len;
      b.evs <- evs
    end;
    (* wall clock can step backwards (NTP); clamp per buffer so span
       begin/end pairs always nest with non-decreasing timestamps *)
    let ts = now_us () in
    let ts = if ts < b.last_ts then b.last_ts else ts in
    b.last_ts <- ts;
    b.evs.(b.len) <- { name; ph; ts_us = ts; tid = b.tid; args };
    b.len <- b.len + 1

  let events () =
    let all =
      Mutex.protect mu (fun () ->
          List.concat_map
            (fun b -> Array.to_list (Array.sub b.evs 0 b.len))
            !buffers)
    in
    List.stable_sort (fun a b -> Float.compare a.ts_us b.ts_us) all

  let clear () =
    Mutex.protect mu (fun () ->
        List.iter
          (fun b ->
            b.len <- 0;
            b.last_ts <- 0.0)
          !buffers)

  let event_to_json e =
    let b = Buffer.create 96 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"bespoke\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":0,\"tid\":%d"
         (json_escape e.name) e.ph e.ts_us e.tid);
    if e.args <> [] then begin
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        e.args;
      Buffer.add_char b '}'
    end;
    Buffer.add_char b '}';
    Buffer.contents b

  (* Chrome-trace metadata ([ph:"M"]) naming the process and one track
     per domain, so Perfetto shows "pool-worker-N" instead of a bare
     domain id.  Only emitted when the trace has real events — an
     empty trace stays empty. *)
  let metadata_jsonl () =
    let b = Buffer.create 256 in
    Buffer.add_string b
      "{\"name\":\"process_name\",\"cat\":\"bespoke\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"name\":\"bespoke\"}}\n";
    List.iter
      (fun (tid, name) ->
        let name =
          if name <> "" then name
          else if tid = main_tid then "main"
          else Printf.sprintf "domain-%d" tid
        in
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"cat\":\"bespoke\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}\n"
             tid (json_escape name)))
      (List.sort compare (thread_names ()));
    Buffer.contents b

  let to_jsonl () =
    match events () with
    | [] -> ""
    | evs ->
      let b = Buffer.create 4096 in
      Buffer.add_string b (metadata_jsonl ());
      List.iter
        (fun e ->
          Buffer.add_string b (event_to_json e);
          Buffer.add_char b '\n')
        evs;
      Buffer.contents b

  let write_jsonl path =
    let oc = open_out path in
    output_string oc (to_jsonl ());
    close_out oc

  let summary () =
    (* cumulative wall time per span name, matching B/E per domain *)
    let totals : (string, float * int) Hashtbl.t = Hashtbl.create 32 in
    let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (e : event) ->
        let stack =
          match Hashtbl.find_opt stacks e.tid with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.replace stacks e.tid s;
            s
        in
        match e.ph with
        | 'B' -> stack := (e.name, e.ts_us) :: !stack
        | 'E' -> (
          match !stack with
          | (name, t_begin) :: rest when name = e.name ->
            stack := rest;
            let total, count =
              Option.value ~default:(0.0, 0) (Hashtbl.find_opt totals name)
            in
            Hashtbl.replace totals name
              (total +. (e.ts_us -. t_begin), count + 1)
          | _ -> ())
        | _ -> ())
      (events ());
    let rows =
      List.sort
        (fun (_, (a, _)) (_, (b, _)) -> Float.compare b a)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [])
    in
    let b = Buffer.create 512 in
    if rows <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "%-32s %8s %14s\n" "phase" "count" "total(ms)");
      List.iter
        (fun (name, (total_us, count)) ->
          Buffer.add_string b
            (Printf.sprintf "%-32s %8d %14.3f\n" name count (total_us /. 1e3)))
        rows
    end;
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

module Span = struct
  let with_ ?(args = []) ~name f =
    if not (enabled ()) then f ()
    else begin
      Trace.emit name 'B' args;
      Fun.protect ~finally:(fun () -> Trace.emit name 'E' []) f
    end

  let instant ?(args = []) name =
    if enabled () then Trace.emit name 'i' args
end

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

module Metrics = struct
  type counter = int Atomic.t
  type gauge = float Atomic.t

  type histogram = {
    h_count : int Atomic.t;
    h_sum : int Atomic.t;
    h_min : int Atomic.t;
    h_max : int Atomic.t;
    buckets : int Atomic.t array;  (* bucket b: values in [2^(b-1), 2^b) *)
  }

  type metric = C of counter | G of gauge | H of histogram

  let mu = Mutex.create ()
  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  let register name make =
    Mutex.protect mu (fun () ->
        match Hashtbl.find_opt registry name with
        | Some m -> m
        | None ->
          let m = make () in
          Hashtbl.replace registry name m;
          m)

  let counter name =
    match register name (fun () -> C (Atomic.make 0)) with
    | C c -> c
    | _ -> invalid_arg (Printf.sprintf "Obs.Metrics.counter %S: kind mismatch" name)

  let gauge name =
    match register name (fun () -> G (Atomic.make 0.0)) with
    | G g -> g
    | _ -> invalid_arg (Printf.sprintf "Obs.Metrics.gauge %S: kind mismatch" name)

  let histogram name =
    let make () =
      H
        {
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_min = Atomic.make max_int;
          h_max = Atomic.make min_int;
          buckets = Array.init 63 (fun _ -> Atomic.make 0);
        }
    in
    match register name make with
    | H h -> h
    | _ ->
      invalid_arg (Printf.sprintf "Obs.Metrics.histogram %S: kind mismatch" name)

  let add c n = if enabled () then ignore (Atomic.fetch_and_add c n)
  let incr c = add c 1
  let counter_value = Atomic.get
  let set g v = if enabled () then Atomic.set g v
  let gauge_value = Atomic.get

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 in
      let v = ref v in
      while !v > 0 do
        v := !v lsr 1;
        b := !b + 1
      done;
      min 62 !b
    end

  let rec atomic_update a f =
    let old = Atomic.get a in
    let v = f old in
    if v <> old && not (Atomic.compare_and_set a old v) then atomic_update a f

  let observe h v =
    if enabled () then begin
      let v = max 0 v in
      ignore (Atomic.fetch_and_add h.h_count 1);
      ignore (Atomic.fetch_and_add h.h_sum v);
      ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
      atomic_update h.h_min (fun m -> min m v);
      atomic_update h.h_max (fun m -> max m v)
    end

  let histogram_count h = Atomic.get h.h_count

  let percentile h p =
    let total = Atomic.get h.h_count in
    if total = 0 then 0.0
    else begin
      let p = Float.max 0.0 (Float.min 1.0 p) in
      let target =
        max 1 (int_of_float (Float.round (p *. float_of_int total)))
      in
      let cum = ref 0 in
      let b = ref 0 in
      (try
         for i = 0 to Array.length h.buckets - 1 do
           cum := !cum + Atomic.get h.buckets.(i);
           if !cum >= target then begin
             b := i;
             raise Exit
           end
         done;
         b := Array.length h.buckets - 1
       with Exit -> ());
      (* geometric midpoint of bucket [2^(b-1), 2^b), clamped to the
         exactly observed range *)
      let rep =
        if !b = 0 then 0.0
        else 0.75 *. Float.of_int (1 lsl !b)
      in
      let lo = float_of_int (Atomic.get h.h_min)
      and hi = float_of_int (Atomic.get h.h_max) in
      Float.max lo (Float.min hi rep)
    end

  let names () =
    List.sort String.compare
      (Mutex.protect mu (fun () ->
           Hashtbl.fold (fun k _ acc -> k :: acc) registry []))

  let snapshot_json () =
    let entries =
      Mutex.protect mu (fun () ->
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry [])
    in
    let entries =
      List.sort (fun (a, _) (b, _) -> String.compare a b) entries
    in
    let b = Buffer.create 1024 in
    let section tag keep pp =
      Buffer.add_string b (Printf.sprintf "\"%s\":{" tag);
      let first = ref true in
      List.iter
        (fun (name, m) ->
          match keep m with
          | None -> ()
          | Some v ->
            if not !first then Buffer.add_char b ',';
            first := false;
            Buffer.add_string b
              (Printf.sprintf "\"%s\":%s" (json_escape name) (pp v)))
        entries;
      Buffer.add_char b '}'
    in
    Buffer.add_char b '{';
    section "counters"
      (function C c -> Some c | _ -> None)
      (fun c -> string_of_int (Atomic.get c));
    Buffer.add_char b ',';
    section "gauges"
      (function G g -> Some g | _ -> None)
      (fun g -> json_float (Atomic.get g));
    Buffer.add_char b ',';
    section "histograms"
      (function H h -> Some h | _ -> None)
      (fun h ->
        let count = Atomic.get h.h_count in
        let mn = if count = 0 then 0 else Atomic.get h.h_min in
        let mx = if count = 0 then 0 else Atomic.get h.h_max in
        Printf.sprintf
          "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
          count (Atomic.get h.h_sum) mn mx
          (json_float (percentile h 0.5))
          (json_float (percentile h 0.9))
          (json_float (percentile h 0.99)));
    Buffer.add_char b '}';
    Buffer.contents b

  let reset () =
    Mutex.protect mu (fun () ->
        Hashtbl.iter
          (fun _ m ->
            match m with
            | C c -> Atomic.set c 0
            | G g -> Atomic.set g 0.0
            | H h ->
              Atomic.set h.h_count 0;
              Atomic.set h.h_sum 0;
              Atomic.set h.h_min max_int;
              Atomic.set h.h_max min_int;
              Array.iter (fun b -> Atomic.set b 0) h.buckets)
          registry)
end

let reset () =
  Trace.clear ();
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Background metrics sampler: a ticker domain that snapshots the
   whole registry every [interval_ms] into a schema-versioned JSONL
   time series.  One header line, then one record per sample; the
   first sample is taken synchronously in [start] and a final one in
   [stop], so even a short run yields >= 2 snapshots.               *)

module Sampler = struct
  let schema = "bespoke-metrics/v1"

  (* Probes run just before each snapshot; subsystems register one to
     refresh gauges whose value is derived state (e.g. the pool's
     queue depth) rather than written at every change. *)
  let probes_mu = Mutex.create ()
  let probes : (unit -> unit) list ref = ref []

  let add_probe f =
    Mutex.protect probes_mu (fun () -> probes := f :: !probes)

  let run_probes () =
    let ps = Mutex.protect probes_mu (fun () -> !probes) in
    List.iter (fun f -> try f () with _ -> ()) ps

  type state = {
    oc : out_channel;
    s_path : string;
    mutable seq : int;
    stop_flag : bool Atomic.t;
    mutable ticker : unit Domain.t option;
    io_lock : Mutex.t;  (* ticker and stop both write *)
  }

  let mu = Mutex.create ()
  let current : state option ref = ref None

  let snapshot_line ~seq =
    Printf.sprintf "{\"seq\":%d,\"ts_us\":%s,\"metrics\":%s}" seq
      (json_float (now_us ()))
      (Metrics.snapshot_json ())

  let emit st =
    run_probes ();
    Mutex.protect st.io_lock (fun () ->
        output_string st.oc (snapshot_line ~seq:st.seq);
        output_char st.oc '\n';
        flush st.oc;
        st.seq <- st.seq + 1)

  let running () = Mutex.protect mu (fun () -> Option.is_some !current)
  let path () = Mutex.protect mu (fun () -> Option.map (fun s -> s.s_path) !current)

  let stop () =
    let st =
      Mutex.protect mu (fun () ->
          let s = !current in
          current := None;
          s)
    in
    match st with
    | None -> ()
    | Some st ->
      Atomic.set st.stop_flag true;
      Option.iter Domain.join st.ticker;
      emit st;
      close_out st.oc

  let stop_at_exit_registered = Atomic.make false

  let start ?(path = "bespoke_metrics.jsonl") ~interval_ms () =
    let interval_ms = max 1 interval_ms in
    enable ();
    (* a crashed or [exit]ed run still closes the series cleanly *)
    if not (Atomic.exchange stop_at_exit_registered true) then
      at_exit (fun () -> try stop () with Sys_error _ -> ());
    Mutex.protect mu (fun () ->
        match !current with
        | Some _ -> ()  (* already sampling; keep the running series *)
        | None ->
          let oc = open_out path in
          Printf.fprintf oc "{\"schema\":\"%s\",\"interval_ms\":%d}\n"
            (json_escape schema) interval_ms;
          let st =
            {
              oc;
              s_path = path;
              seq = 0;
              stop_flag = Atomic.make false;
              ticker = None;
              io_lock = Mutex.create ();
            }
          in
          emit st;
          let ticker =
            Domain.spawn (fun () ->
                let interval_s = float_of_int interval_ms /. 1000.0 in
                let rec loop () =
                  (* chunked sleep so [stop] never waits a full
                     interval to join *)
                  let slept = ref 0.0 in
                  while
                    (not (Atomic.get st.stop_flag)) && !slept < interval_s
                  do
                    let chunk = Float.min 0.02 (interval_s -. !slept) in
                    Unix.sleepf chunk;
                    slept := !slept +. chunk
                  done;
                  if not (Atomic.get st.stop_flag) then begin
                    emit st;
                    loop ()
                  end
                in
                loop ())
          in
          st.ticker <- Some ticker;
          current := Some st)
end

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader (for validating exports without a JSON dep)     *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail m = raise (Bad (Printf.sprintf "%s at offset %d" m !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "bad \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some code ->
              (* keep it simple: BMP code points as UTF-8 *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4;
              go ())
          | _ -> fail "bad escape")
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad m -> Error m

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* BESPOKE_TRACE: enable collection from the environment; a path-like
   value additionally writes the JSONL trace there at exit.           *)

let () =
  match Sys.getenv_opt "BESPOKE_TRACE" with
  | None | Some "" | Some "0" -> ()
  | Some v ->
    enable ();
    (match String.lowercase_ascii v with
    | "1" | "true" | "yes" | "on" -> ()
    | _ -> at_exit (fun () -> try Trace.write_jsonl v with Sys_error _ -> ()))
