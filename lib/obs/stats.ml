(* Offline aggregation of flow telemetry artifacts.

   Everything here reads the files the live side writes — Chrome-trace
   JSONL ([Obs.Trace]), bespoke-metrics/v1 time series
   ([Obs.Sampler]), bespoke-campaign/v1 streams — plus bench artifacts
   (BENCH_sim.json / BENCH_history.jsonl lines), and turns them into
   tables and regression verdicts for the `stats` subcommand.  Parsing
   uses the in-tree [Obs.Json] reader, so the module stays
   dependency-free. *)

module J = Obs.Json

let read_lines path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | l -> go (if String.trim l = "" then acc else l :: acc)
  in
  go []

(* A live JSONL stream can end mid-record (crash, kill -9, full disk):
   a malformed line is fatal anywhere except at the very end of the
   file, where it is a truncated tail — skipped with a warning so the
   records written before the cut still aggregate. *)
let skip_truncated path m =
  Printf.eprintf "warning: %s: skipping truncated final line (%s)\n%!" path m

let mem_num name j =
  match J.member name j with
  | Some (J.Num f) -> Some f
  | _ -> None

let mem_str name j =
  match J.member name j with
  | Some (J.Str s) -> Some s
  | _ -> None

let mem_bool name j =
  match J.member name j with
  | Some (J.Bool b) -> Some b
  | _ -> None

let pct f = 100.0 *. f

(* ------------------------------------------------------------------ *)
(* Trace aggregation: per-span counts, cumulative and self time.  Self
   time is a span's duration minus the durations of its directly
   nested children, reconstructed from the B/E bracketing per track
   (tid).  This is what "where did the wall clock actually go" means
   when spans nest: summing totals alone double-counts parents. *)

type span_stat = {
  span_name : string;
  count : int;
  total_us : float;
  self_us : float;
}

type frame = { f_name : string; f_start : float; mutable f_child : float }

let load_trace path : (span_stat list, string) result =
  match read_lines path with
  | exception Sys_error m -> Error m
  | lines ->
    let table : (string, int ref * float ref * float ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 8 in
    let stack tid =
      match Hashtbl.find_opt stacks tid with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
    in
    let record name dur self =
      let c, t, s =
        match Hashtbl.find_opt table name with
        | Some e -> e
        | None ->
          let e = (ref 0, ref 0.0, ref 0.0) in
          Hashtbl.add table name e;
          e
      in
      incr c;
      t := !t +. dur;
      s := !s +. self
    in
    let bad = ref None in
    let last = List.length lines - 1 in
    List.iteri
      (fun i line ->
        if !bad = None then
          match J.parse line with
          | Error m when i = last -> skip_truncated path m
          | Error m -> bad := Some (Printf.sprintf "line %d: %s" (i + 1) m)
          | Ok j -> (
            let tid =
              match mem_num "tid" j with Some f -> int_of_float f | None -> 0
            in
            match (mem_str "ph" j, mem_str "name" j, mem_num "ts" j) with
            | Some "B", Some name, Some ts ->
              let s = stack tid in
              s := { f_name = name; f_start = ts; f_child = 0.0 } :: !s
            | Some "E", _, Some ts -> (
              let s = stack tid in
              match !s with
              | [] -> ()  (* unmatched E: tolerate truncated traces *)
              | fr :: rest ->
                s := rest;
                let dur = Float.max 0.0 (ts -. fr.f_start) in
                record fr.f_name dur (Float.max 0.0 (dur -. fr.f_child));
                (match rest with
                | parent :: _ -> parent.f_child <- parent.f_child +. dur
                | [] -> ()))
            | _ -> ()  (* i/M/malformed: not a span boundary *)))
      lines;
    (match !bad with
    | Some m -> Error m
    | None ->
      let stats =
        Hashtbl.fold
          (fun name (c, t, s) acc ->
            { span_name = name; count = !c; total_us = !t; self_us = !s }
            :: acc)
          table []
      in
      Ok
        (List.sort
           (fun a b -> compare (b.self_us, b.span_name) (a.self_us, a.span_name))
           stats))

let render_spans ?(top = 15) (stats : span_stat list) =
  let b = Buffer.create 512 in
  let total_self =
    List.fold_left (fun acc s -> acc +. s.self_us) 0.0 stats
  in
  Buffer.add_string b
    (Printf.sprintf "%-32s %8s %12s %12s %6s\n" "span" "count" "total_ms"
       "self_ms" "self%");
  let shown = List.filteri (fun i _ -> i < top) stats in
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%-32s %8d %12.3f %12.3f %5.1f%%\n" s.span_name s.count
           (s.total_us /. 1e3) (s.self_us /. 1e3)
           (if total_self > 0.0 then pct (s.self_us /. total_self) else 0.0)))
    shown;
  let rest = List.length stats - List.length shown in
  if rest > 0 then
    Buffer.add_string b (Printf.sprintf "... and %d more span name(s)\n" rest);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Metrics time series (bespoke-metrics/v1). *)

type series = {
  interval_ms : int;
  snapshots : int;
  span_us : float;  (* ts of last snapshot - ts of first *)
  last : J.t;  (* the last snapshot's metrics object *)
}

let load_metrics path : (series, string) result =
  match read_lines path with
  | exception Sys_error m -> Error m
  | [] -> Error (path ^ ": empty metrics series")
  | header :: rest -> (
    match J.parse header with
    | Error m -> Error ("header: " ^ m)
    | Ok h -> (
      match mem_str "schema" h with
      | Some s when s = Obs.Sampler.schema -> (
        let interval_ms =
          match mem_num "interval_ms" h with
          | Some f -> int_of_float f
          | None -> 0
        in
        let parse_snap i line =
          match J.parse line with
          | Error m -> Error (Printf.sprintf "snapshot %d: %s" i m)
          | Ok j -> (
            match (mem_num "ts_us" j, J.member "metrics" j) with
            | Some ts, Some m -> Ok (ts, m)
            | _ ->
              Error (Printf.sprintf "snapshot %d: missing ts_us/metrics" i))
        in
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | l :: tl -> (
            match parse_snap i l with
            | Error m when tl = [] ->
              skip_truncated path m;
              Ok (List.rev acc)
            | Error m -> Error m
            | Ok s -> go (i + 1) (s :: acc) tl)
        in
        match go 0 [] rest with
        | Error m -> Error m
        | Ok [] -> Error (path ^ ": no snapshots")
        | Ok ((t0, _) :: _ as snaps) ->
          let tn, last = List.nth snaps (List.length snaps - 1) in
          Ok
            {
              interval_ms;
              snapshots = List.length snaps;
              span_us = tn -. t0;
              last;
            })
      | Some s -> Error (Printf.sprintf "unexpected schema %S" s)
      | None -> Error "metrics header is missing a schema field"))

let render_series (s : series) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%d snapshot(s) over %.1f ms (interval %d ms)\n"
       s.snapshots (s.span_us /. 1e3) s.interval_ms);
  let section title fmt fields =
    match J.member title s.last with
    | Some (J.Obj kvs) when kvs <> [] ->
      Buffer.add_string b (title ^ ":\n");
      List.iter (fun (k, v) -> Buffer.add_string b (fmt k v)) kvs
    | _ -> ignore fields
  in
  section "counters"
    (fun k v ->
      match v with
      | J.Num f -> Printf.sprintf "  %-40s %12.0f\n" k f
      | _ -> "")
    ();
  section "gauges"
    (fun k v ->
      match v with
      | J.Num f -> Printf.sprintf "  %-40s %12.2f\n" k f
      | _ -> "")
    ();
  (match J.member "histograms" s.last with
  | Some (J.Obj kvs) when kvs <> [] ->
    Buffer.add_string b
      (Printf.sprintf "histograms:\n  %-38s %8s %10s %10s %10s\n" "" "count"
         "p50" "p90" "p99");
    List.iter
      (fun (k, v) ->
        let f name = Option.value ~default:0.0 (mem_num name v) in
        Buffer.add_string b
          (Printf.sprintf "  %-38s %8.0f %10.1f %10.1f %10.1f\n" k (f "count")
             (f "p50") (f "p90") (f "p99")))
      kvs
  | _ -> ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Campaign streams (bespoke-campaign/v1), heartbeats included. *)

type campaign_stat = {
  c_total : int;
  c_ok : int;
  c_failed : int;
  c_cached : int;
  c_wall_s : float;
  c_heartbeats : int;
  c_kinds : (string * int * float) list;  (* kind, records, cumulative s *)
}

let load_campaign path : (campaign_stat, string) result =
  match read_lines path with
  | exception Sys_error m -> Error m
  | [] -> Error (path ^ ": empty campaign stream")
  | header :: rest -> (
    match J.parse header with
    | Error m -> Error ("header: " ^ m)
    | Ok h -> (
      match mem_str "schema" h with
      | Some "bespoke-campaign/v1" -> (
        let ok = ref 0 and failed = ref 0 and cached = ref 0 in
        let heartbeats = ref 0 in
        let wall = ref 0.0 and total = ref 0 in
        let kinds : (string, int ref * float ref) Hashtbl.t =
          Hashtbl.create 8
        in
        let bad = ref None in
        let last = List.length rest - 1 in
        List.iteri
          (fun i line ->
            if !bad = None then
              match J.parse line with
              | Error m when i = last -> skip_truncated path m
              | Error m ->
                bad := Some (Printf.sprintf "line %d: %s" (i + 2) m)
              | Ok j ->
                if mem_bool "heartbeat" j = Some true then incr heartbeats
                else if J.member "summary" j <> None then begin
                  total :=
                    int_of_float (Option.value ~default:0.0 (mem_num "total" j));
                  wall := Option.value ~default:0.0 (mem_num "wall_s" j)
                end
                else begin
                  (match mem_str "status" j with
                  | Some "ok" -> incr ok
                  | Some _ -> incr failed
                  | None -> ());
                  if mem_bool "cached" j = Some true then incr cached;
                  match mem_str "kind" j with
                  | None -> ()
                  | Some k ->
                    let c, t =
                      match Hashtbl.find_opt kinds k with
                      | Some e -> e
                      | None ->
                        let e = (ref 0, ref 0.0) in
                        Hashtbl.add kinds k e;
                        e
                    in
                    incr c;
                    t :=
                      !t +. Option.value ~default:0.0 (mem_num "time_s" j)
                end)
          rest;
        match !bad with
        | Some m -> Error m
        | None ->
          Ok
            {
              c_total = (if !total > 0 then !total else !ok + !failed);
              c_ok = !ok;
              c_failed = !failed;
              c_cached = !cached;
              c_wall_s = !wall;
              c_heartbeats = !heartbeats;
              c_kinds =
                List.sort compare
                  (Hashtbl.fold
                     (fun k (c, t) acc -> (k, !c, !t) :: acc)
                     kinds []);
            })
      | Some s -> Error (Printf.sprintf "unexpected schema %S" s)
      | None -> Error "campaign header is missing a schema field"))

let render_campaign (c : campaign_stat) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "%d job(s): %d ok, %d failed, %d cache hit(s), %.3f s wall, %d \
        heartbeat(s)\n"
       c.c_total c.c_ok c.c_failed c.c_cached c.c_wall_s c.c_heartbeats);
  if c.c_wall_s > 0.0 then
    Buffer.add_string b
      (Printf.sprintf "throughput: %.1f jobs/s\n"
         (float_of_int c.c_total /. c.c_wall_s));
  if c.c_kinds <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-10s %8s %12s\n" "kind" "jobs" "cpu_s");
    List.iter
      (fun (k, n, t) ->
        Buffer.add_string b (Printf.sprintf "%-10s %8d %12.3f\n" k n t))
      c.c_kinds
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Guard streams (bespoke-guard/v1): one header describing the plan's
   monitor coverage, one record per assumption violation (carrying the
   cut-reason provenance), one trailing summary. *)

type guard_stat = {
  g_design : string;
  g_workload : string;
  g_mode : string;
  g_assumptions : int;
  g_monitors : int;
  g_implied : int;
  g_unmonitorable : int;
  g_cycles : int;
  g_violations : int;
  g_violating_gates : int;
  g_clean : bool;
  g_reasons : (string * int) list;
}

let load_guard path : (guard_stat, string) result =
  match read_lines path with
  | exception Sys_error m -> Error m
  | [] -> Error (path ^ ": empty guard stream")
  | header :: rest -> (
    match J.parse header with
    | Error m -> Error ("header: " ^ m)
    | Ok h -> (
      match mem_str "schema" h with
      | Some "bespoke-guard/v1" -> (
        let int_of name j =
          int_of_float (Option.value ~default:0.0 (mem_num name j))
        in
        let sfield name = Option.value ~default:"?" (mem_str name h) in
        let cycles = ref 0 and violations = ref 0 and gates = ref 0 in
        let clean = ref true and saw_summary = ref false in
        let reasons : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
        let bad = ref None in
        let last = List.length rest - 1 in
        List.iteri
          (fun i line ->
            if !bad = None then
              match J.parse line with
              | Error m when i = last -> skip_truncated path m
              | Error m ->
                bad := Some (Printf.sprintf "line %d: %s" (i + 2) m)
              | Ok j ->
                if J.member "summary" j <> None then begin
                  saw_summary := true;
                  cycles := int_of "cycles" j;
                  violations := int_of "violations" j;
                  gates := int_of "violating_gates" j;
                  clean := mem_bool "clean" j = Some true
                end
                else
                  match mem_str "reason" j with
                  | None -> ()
                  | Some r ->
                    clean := false;
                    incr gates;
                    (match Hashtbl.find_opt reasons r with
                    | Some c -> incr c
                    | None -> Hashtbl.add reasons r (ref 1)))
          rest;
        match !bad with
        | Some m -> Error m
        | None ->
          (* without the trailing summary (truncated stream) the
             per-violation records still give a lower bound *)
          if not !saw_summary then violations := !gates;
          Ok
            {
              g_design = sfield "design";
              g_workload = sfield "workload";
              g_mode = sfield "mode";
              g_assumptions = int_of "assumptions" h;
              g_monitors = int_of "monitors" h;
              g_implied = int_of "implied" h;
              g_unmonitorable = int_of "unmonitorable" h;
              g_cycles = !cycles;
              g_violations = !violations;
              g_violating_gates = !gates;
              g_clean = !clean;
              g_reasons =
                List.sort compare
                  (Hashtbl.fold (fun k c acc -> (k, !c) :: acc) reasons []);
            })
      | Some s -> Error (Printf.sprintf "unexpected schema %S" s)
      | None -> Error "guard header is missing a schema field"))

let render_guard (g : guard_stat) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "workload %s on the %s design (%s mode): %d assumption(s) = %d \
        monitor(s) + %d implied + %d unmonitorable\n"
       g.g_workload g.g_design g.g_mode g.g_assumptions g.g_monitors
       g.g_implied g.g_unmonitorable);
  Buffer.add_string b
    (Printf.sprintf "%d cycle(s) checked: %s (%d violation(s) on %d gate(s))\n"
       g.g_cycles
       (if g.g_clean then "CLEAN" else "VIOLATED")
       g.g_violations g.g_violating_gates);
  if g.g_reasons <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-16s %8s\n" "cut reason" "gates");
    List.iter
      (fun (r, n) ->
        Buffer.add_string b (Printf.sprintf "%-16s %8d\n" r n))
      g.g_reasons
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Bench artifacts and regression comparison.

   A bench entry is a flat (metric -> value) map where every metric is
   throughput-like (higher is better): cps/<core>/<bench>/<engine>
   from the per-benchmark rows (the core segment is dropped for rows
   that predate the core field, keeping old artifacts comparable) and
   campaign/jobs_per_sec/<mode> from the campaign block.  Sources: BENCH_sim.json (one pretty-printed JSON
   value) or a BENCH_history.jsonl line (schema bespoke-bench/v1, the
   same value nested under "bench" with a timestamp and label); given
   a .jsonl file the LAST entry is used. *)

let history_schema = "bespoke-bench/v1"

type bench_entry = { b_label : string; b_metrics : (string * float) list }

let entry_of_json ~label j : bench_entry =
  (* unwrap a history line down to the BENCH_sim.json payload *)
  let label, j =
    match J.member "bench" j with
    | Some payload ->
      (Option.value ~default:label (mem_str "label" j), payload)
    | None -> (label, j)
  in
  let metrics = ref [] in
  (match J.member "benchmarks" j with
  | Some (J.Arr rows) ->
    List.iter
      (fun row ->
        match (mem_str "name" row, J.member "cycles_per_sec" row) with
        | Some name, Some (J.Obj engines) ->
          let name =
            match mem_str "core" row with
            | Some core -> core ^ "/" ^ name
            | None -> name
          in
          List.iter
            (fun (engine, v) ->
              match v with
              | J.Num f ->
                metrics :=
                  (Printf.sprintf "cps/%s/%s" name engine, f) :: !metrics
              | _ -> ())
            engines
        | _ -> ())
      rows
  | _ -> ());
  (match J.member "campaign" j with
  | Some c -> (
    match J.member "jobs_per_sec" c with
    | Some (J.Obj modes) ->
      List.iter
        (fun (mode, v) ->
          match v with
          | J.Num f ->
            metrics := ("campaign/jobs_per_sec/" ^ mode, f) :: !metrics
          | _ -> ())
        modes
    | _ -> ())
  | None -> ());
  { b_label = label; b_metrics = List.sort compare !metrics }

let load_bench path : (bench_entry, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)
  with
  | exception Sys_error m -> Error m
  | contents -> (
    let parsed =
      match J.parse contents with
      | Ok j -> Ok j
      | Error _ -> (
        (* a JSONL history file: take the last non-empty line *)
        let lines =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' contents)
        in
        match List.rev lines with
        | last :: _ -> J.parse last
        | [] -> Error "empty file")
    in
    match parsed with
    | Error m -> Error (path ^ ": " ^ m)
    | Ok j -> (
      let entry = entry_of_json ~label:path j in
      match entry.b_metrics with
      | [] -> Error (path ^ ": no bench metrics found (not a bench artifact?)")
      | _ -> Ok entry))

type delta = {
  d_metric : string;
  d_old : float;
  d_new : float;
  d_ratio : float;  (* new / old; < 1 is a slowdown *)
}

type comparison = {
  deltas : delta list;  (* every metric present in both entries *)
  regressions : delta list;  (* ratio below 1 - threshold *)
  only_old : string list;
  only_new : string list;
}

let compare_benches ~threshold (old_e : bench_entry) (new_e : bench_entry) =
  let deltas = ref [] and only_old = ref [] and only_new = ref [] in
  List.iter
    (fun (m, ov) ->
      match List.assoc_opt m new_e.b_metrics with
      | None -> only_old := m :: !only_old
      | Some nv ->
        let ratio = if ov > 0.0 then nv /. ov else 1.0 in
        deltas := { d_metric = m; d_old = ov; d_new = nv; d_ratio = ratio }
                  :: !deltas)
    old_e.b_metrics;
  List.iter
    (fun (m, _) ->
      if not (List.mem_assoc m old_e.b_metrics) then only_new := m :: !only_new)
    new_e.b_metrics;
  let deltas = List.sort (fun a b -> compare a.d_ratio b.d_ratio) !deltas in
  {
    deltas;
    regressions =
      List.filter (fun d -> d.d_ratio < 1.0 -. threshold) deltas;
    only_old = List.rev !only_old;
    only_new = List.rev !only_new;
  }

let render_compare ~threshold (old_e : bench_entry) (new_e : bench_entry)
    (c : comparison) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "old: %s\nnew: %s\n%d metric(s) compared, threshold %.0f%%\n"
       old_e.b_label new_e.b_label (List.length c.deltas) (pct threshold));
  let row d =
    Printf.sprintf "  %-34s %12.1f %12.1f %+7.1f%%\n" d.d_metric d.d_old d.d_new
      (pct (d.d_ratio -. 1.0))
  in
  if c.regressions <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "REGRESSIONS (%d):\n" (List.length c.regressions));
    List.iter (fun d -> Buffer.add_string b (row d)) c.regressions
  end
  else Buffer.add_string b "no regressions\n";
  (* the biggest movers either way, for context *)
  let interesting =
    List.filter (fun d -> Float.abs (d.d_ratio -. 1.0) >= 0.02) c.deltas
  in
  let shown = List.filteri (fun i _ -> i < 10) interesting in
  if shown <> [] && c.regressions = [] then begin
    Buffer.add_string b "largest deltas:\n";
    List.iter (fun d -> Buffer.add_string b (row d)) shown
  end;
  if c.only_old <> [] then
    Buffer.add_string b
      (Printf.sprintf "only in old: %s\n" (String.concat ", " c.only_old));
  if c.only_new <> [] then
    Buffer.add_string b
      (Printf.sprintf "only in new: %s\n" (String.concat ", " c.only_new));
  Buffer.contents b
