(** Offline aggregation of flow telemetry artifacts: Chrome-trace
    JSONL, bespoke-metrics/v1 time series, bespoke-campaign/v1
    streams, and bench artifacts (BENCH_sim.json /
    BENCH_history.jsonl) with threshold-based regression comparison.
    Backs the [stats] CLI subcommand; parsing uses {!Obs.Json}, so no
    external JSON dependency.

    All JSONL loaders tolerate a truncated {e final} line (a live
    stream cut mid-record by a crash or a full disk): the tail is
    skipped with a warning on stderr and the records before it still
    aggregate.  A malformed line anywhere else is an error. *)

(** Per-span aggregate over a trace: [self_us] is [total_us] minus the
    time spent in directly nested child spans — summing self times
    never double-counts a parent. *)
type span_stat = {
  span_name : string;
  count : int;
  total_us : float;
  self_us : float;
}

val load_trace : string -> (span_stat list, string) result
(** Reconstruct span durations from the B/E events of a trace JSONL
    file (per-tid bracketing; [i]/[M] events and unmatched [E]s are
    tolerated).  Sorted by self time, descending. *)

val render_spans : ?top:int -> span_stat list -> string
(** Table of the [top] (default 15) spans by self time. *)

(** A loaded metrics time series. *)
type series = {
  interval_ms : int;
  snapshots : int;  (** number of snapshot records *)
  span_us : float;  (** last snapshot ts - first snapshot ts *)
  last : Obs.Json.t;  (** the last snapshot's metrics object *)
}

val load_metrics : string -> (series, string) result
(** Parse a bespoke-metrics/v1 JSONL file (header + snapshots). *)

val render_series : series -> string
(** Counters/gauges and histogram p50/p90/p99 from the last
    snapshot, plus the sampling envelope. *)

(** Aggregate over a campaign stream, heartbeat records included. *)
type campaign_stat = {
  c_total : int;
  c_ok : int;
  c_failed : int;
  c_cached : int;
  c_wall_s : float;
  c_heartbeats : int;
  c_kinds : (string * int * float) list;  (** kind, records, cumulative s *)
}

val load_campaign : string -> (campaign_stat, string) result
val render_campaign : campaign_stat -> string

(** Aggregate over a [bespoke-guard/v1] stream (see
    {!Bespoke_guard.Guard}): the plan's monitor coverage from the
    header, the violation verdict from the trailing summary, and a
    cut-reason histogram over the violation records. *)
type guard_stat = {
  g_design : string;
  g_workload : string;
  g_mode : string;  (** [hw], [shadow] or [original] *)
  g_assumptions : int;
  g_monitors : int;
  g_implied : int;
  g_unmonitorable : int;
  g_cycles : int;
  g_violations : int;
  g_violating_gates : int;
  g_clean : bool;
  g_reasons : (string * int) list;
      (** violated cut-reason label -> violating gates *)
}

val load_guard : string -> (guard_stat, string) result
val render_guard : guard_stat -> string

val history_schema : string
(** ["bespoke-bench/v1"] — the schema of BENCH_history.jsonl lines,
    which nest a BENCH_sim.json payload under ["bench"] with a
    timestamp and label. *)

(** A bench artifact flattened to (metric, value) pairs where every
    metric is throughput-like — higher is better: [cps/<bench>/<engine>]
    and [campaign/jobs_per_sec/<mode>]. *)
type bench_entry = { b_label : string; b_metrics : (string * float) list }

val load_bench : string -> (bench_entry, string) result
(** Load BENCH_sim.json (one JSON value) or a BENCH_history.jsonl file
    (the last line is used). *)

type delta = {
  d_metric : string;
  d_old : float;
  d_new : float;
  d_ratio : float;  (** new / old; < 1 is a slowdown *)
}

type comparison = {
  deltas : delta list;  (** metrics present in both entries, worst first *)
  regressions : delta list;  (** ratio below [1 - threshold] *)
  only_old : string list;
  only_new : string list;
}

val compare_benches : threshold:float -> bench_entry -> bench_entry -> comparison
(** [compare_benches ~threshold old new]: a metric regresses when
    [new/old < 1 - threshold] (e.g. [threshold = 0.1] flags >10%
    throughput drops). *)

val render_compare :
  threshold:float -> bench_entry -> bench_entry -> comparison -> string
