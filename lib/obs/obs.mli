(** Flow-wide telemetry: structured tracing spans, a metrics registry,
    and Chrome-trace-compatible JSONL export.

    The whole subsystem is disabled by default and designed so that an
    instrumentation hook in a hot path costs a single mutable-flag
    check: every recording entry point ({!Span.with_},
    {!Metrics.incr}, {!Metrics.observe}, ...) first reads {!enabled}
    and returns immediately when tracing is off.  Callers that would
    otherwise do work just to build a hook's arguments should guard
    with [if Obs.enabled () then ...] themselves.

    Collection is domain-safe: trace events go to per-domain buffers
    (so {!Bespoke_core.Pool} workers can trace without contention) and
    metric updates are atomic.  Exporting ({!Trace.events},
    {!Metrics.snapshot_json}) is meant to run after worker domains
    have been joined.

    Setting the [BESPOKE_TRACE] environment variable enables
    collection at program start; if its value looks like a file path
    (anything other than [1]/[true]/[yes]/[on]) the JSONL trace is
    also written there at exit. *)

val enabled : unit -> bool
(** Is collection currently on?  This is the single flag every hook
    checks. *)

val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Clear all collected events and zero every registered metric
    (registrations themselves persist). *)

(** Nestable wall-clock spans with monotonic timestamps. *)
module Span : sig
  val with_ : ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
  (** [with_ ~name f] runs [f], bracketing it with a begin/end event
      pair in the current domain's buffer.  The end event is emitted
      even if [f] raises.  When collection is disabled this is exactly
      [f ()]. *)

  val instant : ?args:(string * string) list -> string -> unit
  (** A point event ([ph:"i"]) in the current domain's buffer. *)
end

(** Counters, gauges and log-scale histograms, registered by name.
    Registration is idempotent: looking a name up twice returns the
    same metric.  A name must keep its kind for the whole program. *)
module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  val incr : counter -> unit
  val add : counter -> int -> unit
  val counter_value : counter -> int

  val gauge : string -> gauge
  val set : gauge -> float -> unit
  val gauge_value : gauge -> float

  val histogram : string -> histogram

  val observe : histogram -> int -> unit
  (** Record a non-negative sample into power-of-two buckets. *)

  val histogram_count : histogram -> int

  val percentile : histogram -> float -> float
  (** [percentile h p] ([0. <= p <= 1.]) estimates the p-quantile from
      the log-scale buckets: the answer lies within the matched
      bucket's bounds (a factor-of-two resolution), clamped to the
      exact observed min/max. *)

  val names : unit -> string list
  (** All registered metric names, sorted. *)

  val snapshot_json : unit -> string
  (** The whole registry as a JSON object
      [{"counters":{..},"gauges":{..},"histograms":{..}}], with
      histograms expanded to count/sum/min/max/p50/p90/p99.  Built
      with no JSON library dependency. *)

  val reset : unit -> unit
end

(** Export of the collected event stream. *)
module Trace : sig
  type event = {
    name : string;
    ph : char;  (** ['B'] begin, ['E'] end, ['i'] instant *)
    ts_us : float;  (** microseconds since program start, monotonic per domain *)
    tid : int;  (** domain id *)
    args : (string * string) list;
  }

  val events : unit -> event list
  (** All buffered events, globally sorted by timestamp. *)

  val set_thread_name : string -> unit
  (** Name the calling domain's track in trace exports.  {!to_jsonl}
      turns each name into a Chrome-trace [M]-phase [thread_name]
      metadata event, so Perfetto shows one labelled track per domain.
      Unnamed domains appear as ["domain-<tid>"] (the main domain as
      ["main"]). *)

  val to_jsonl : unit -> string
  (** One Chrome-trace event object per line: [M]-phase
      process/thread-name metadata first, then events
      ([ph:"B"/"E"/"i"], [ts] in microseconds).  Wrap the lines in a
      JSON array (e.g. [jq -s .]) to load the file in a Chrome-trace
      viewer. *)

  val write_jsonl : string -> unit
  (** Write {!to_jsonl} to a file. *)

  val summary : unit -> string
  (** Human-readable per-phase table: for every span name, the number
      of completed spans and their cumulative wall time. *)

  val clear : unit -> unit
end

(** Background metrics sampler: a ticker domain snapshots the whole
    {!Metrics} registry every [interval_ms] into a schema-versioned
    ([bespoke-metrics/v1]) JSONL time series — a header line
    [{"schema":...,"interval_ms":N}] followed by
    [{"seq":N,"ts_us":T,"metrics":{...}}] records.  A snapshot is
    taken synchronously in {!Sampler.start} and a final one in
    {!Sampler.stop}, so any sampled run yields at least two. *)
module Sampler : sig
  val schema : string
  (** ["bespoke-metrics/v1"]. *)

  val add_probe : (unit -> unit) -> unit
  (** Register a callback run just before every snapshot; subsystems
      use it to refresh gauges derived from live state (e.g. the
      pool's queue depth).  Exceptions from probes are swallowed. *)

  val start : ?path:string -> interval_ms:int -> unit -> unit
  (** Open [path] (default ["bespoke_metrics.jsonl"]), write the
      header and first snapshot, and spawn the ticker domain.  Also
      calls {!enable}.  No-op if a sampler is already running.
      [interval_ms] is clamped to at least 1 ms (a zero or negative
      interval would spin the ticker); the clamped value is what the
      header records. *)

  val running : unit -> bool

  val path : unit -> string option
  (** The output path of the running sampler, if any. *)

  val stop : unit -> unit
  (** Join the ticker, emit a final snapshot and close the file.
      Idempotent; also registered [at_exit] by {!start}. *)
end

(** A minimal JSON reader, used to validate exported traces and
    metrics snapshots in tests and smoke checks without an external
    JSON dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Parse one complete JSON value (surrounding whitespace allowed). *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end
