module Bit = Bespoke_logic.Bit

exception Parse_error of { line : int; message : string }

let err line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let op_token (op : Gate.op) =
  match op with
  | Gate.Const Bit.Zero -> "const0"
  | Gate.Const Bit.One -> "const1"
  | Gate.Const Bit.X -> "constx"
  | Gate.Input -> "input"
  | Gate.Buf -> "buf"
  | Gate.Not -> "not"
  | Gate.And -> "and"
  | Gate.Or -> "or"
  | Gate.Nand -> "nand"
  | Gate.Nor -> "nor"
  | Gate.Xor -> "xor"
  | Gate.Xnor -> "xnor"
  | Gate.Mux -> "mux"
  | Gate.Dff Bit.Zero -> "dff0"
  | Gate.Dff Bit.One -> "dff1"
  | Gate.Dff Bit.X -> "dffx"

let op_of_token line = function
  | "const0" -> Gate.Const Bit.Zero
  | "const1" -> Gate.Const Bit.One
  | "constx" -> Gate.Const Bit.X
  | "input" -> Gate.Input
  | "buf" -> Gate.Buf
  | "not" -> Gate.Not
  | "and" -> Gate.And
  | "or" -> Gate.Or
  | "nand" -> Gate.Nand
  | "nor" -> Gate.Nor
  | "xor" -> Gate.Xor
  | "xnor" -> Gate.Xnor
  | "mux" -> Gate.Mux
  | "dff0" -> Gate.Dff Bit.Zero
  | "dff1" -> Gate.Dff Bit.One
  | "dffx" -> Gate.Dff Bit.X
  | t -> err line "unknown gate op %S" t

let to_string (n : Netlist.t) =
  let buf = Buffer.create (1 lsl 16) in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "bespoke-netlist 1\n";
  add "gates %d\n" (Netlist.gate_count n);
  Array.iter
    (fun (g : Gate.t) ->
      add "g %s %d %s" (op_token g.Gate.op) g.Gate.drive
        (if g.Gate.module_path = "" then "-" else g.Gate.module_path);
      Array.iter (fun f -> add " %d" f) g.Gate.fanin;
      add "\n")
    n.Netlist.gates;
  let port kind (name, ids) =
    add "%s %s" kind name;
    Array.iter (fun id -> add " %d" id) ids;
    add "\n"
  in
  List.iter (port "input") n.Netlist.input_ports;
  List.iter (port "output") n.Netlist.output_ports;
  List.iter (port "name") n.Netlist.names;
  add "end\n";
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let gates = ref [] in
  let inputs = ref [] in
  let outputs = ref [] in
  let names = ref [] in
  let expected = ref (-1) in
  let seen_header = ref false in
  let seen_end = ref false in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line = "" || !seen_end then ()
      else
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "bespoke-netlist"; "1" ] -> seen_header := true
        | "bespoke-netlist" :: v -> err lineno "unsupported version %s" (String.concat " " v)
        | [ "gates"; k ] -> (
          match int_of_string_opt k with
          | Some v -> expected := v
          | None -> err lineno "bad gate count %S" k)
        | "g" :: op :: drive :: path :: fanin ->
          if not !seen_header then err lineno "missing header";
          let op = op_of_token lineno op in
          let drive =
            match int_of_string_opt drive with
            | Some d -> d
            | None -> err lineno "bad drive %S" drive
          in
          let fanin =
            Array.of_list
              (List.map
                 (fun t ->
                   match int_of_string_opt t with
                   | Some v -> v
                   | None -> err lineno "bad fanin id %S" t)
                 fanin)
          in
          gates :=
            {
              Gate.op;
              fanin;
              module_path = (if path = "-" then "" else path);
              drive;
            }
            :: !gates
        | kind :: name :: ids
          when kind = "input" || kind = "output" || kind = "name" ->
          let ids =
            Array.of_list
              (List.map
                 (fun t ->
                   match int_of_string_opt t with
                   | Some v -> v
                   | None -> err lineno "bad gate id %S" t)
                 ids)
          in
          let dst =
            if kind = "input" then inputs
            else if kind = "output" then outputs
            else names
          in
          dst := (name, ids) :: !dst
        | [ "end" ] -> seen_end := true
        | tok :: _ -> err lineno "unexpected line starting with %S" tok
        | [] -> ())
    lines;
  if not !seen_end then err (List.length lines) "missing 'end'";
  let gate_arr = Array.of_list (List.rev !gates) in
  if !expected >= 0 && Array.length gate_arr <> !expected then
    err 0 "gate count mismatch: header says %d, found %d" !expected
      (Array.length gate_arr);
  let n =
    {
      Netlist.gates = gate_arr;
      input_ports = List.rev !inputs;
      output_ports = List.rev !outputs;
      names = List.rev !names;
    }
  in
  (try Netlist.validate n
   with Failure m -> err 0 "invalid netlist: %s" m);
  n

let save path n =
  let oc = open_out path in
  output_string oc (to_string n);
  close_out oc

let load path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  of_string text

(* ---------------- gate sets ---------------- *)

let gate_set_to_string (set : bool array) =
  let n = Array.length set in
  let buf = Buffer.create ((n / 4) + 64) in
  Buffer.add_string buf (Printf.sprintf "bespoke-gate-set 1 %d\n" n);
  let nibbles = (n + 3) / 4 in
  for k = 0 to nibbles - 1 do
    let v = ref 0 in
    for j = 0 to 3 do
      let i = (4 * k) + j in
      if i < n && set.(i) then v := !v lor (1 lsl j)
    done;
    Buffer.add_char buf "0123456789abcdef".[!v];
    if k mod 64 = 63 then Buffer.add_char buf '\n'
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let gate_set_of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest -> (
    match String.split_on_char ' ' header with
    | [ "bespoke-gate-set"; "1"; count ] -> (
      match int_of_string_opt count with
      | None -> err 1 "bad gate-set count %S" count
      | Some n ->
        let set = Array.make n false in
        let idx = ref 0 in
        List.iter
          (fun line ->
            String.iter
              (fun c ->
                let v =
                  match c with
                  | '0' .. '9' -> Char.code c - Char.code '0'
                  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                  | _ -> err 0 "bad hex digit %C" c
                in
                for j = 0 to 3 do
                  let i = (4 * !idx) + j in
                  if i < n then set.(i) <- v land (1 lsl j) <> 0
                done;
                incr idx)
              (String.trim line))
          rest;
        if !idx < (n + 3) / 4 then err 0 "truncated gate set";
        set)
    | _ -> err 1 "bad gate-set header")
  | [] -> err 1 "empty gate set"

let save_gate_set path set =
  let oc = open_out path in
  output_string oc (gate_set_to_string set);
  close_out oc

let load_gate_set path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  gate_set_of_string text

(* Design identity for memoization caches (e.g. the compiled-simulation
   cache): a digest of the canonical text serialization, so any change
   to a gate, port or name produces a different key while re-serialized
   copies of the same design share one. *)
(* Digest over a compact binary encoding of the same information as
   [to_string].  [create]-per-run callers (the compiled engine's
   design cache) hit this on every instance, so it avoids the Printf
   formatting cost of the text serialization. *)
let hash (n : Netlist.t) =
  let buf = Buffer.create (1 lsl 16) in
  let add_int i = Buffer.add_int64_le buf (Int64.of_int i) in
  let add_str s =
    add_int (String.length s);
    Buffer.add_string buf s
  in
  add_int (Netlist.gate_count n);
  Array.iter
    (fun (g : Gate.t) ->
      add_str (op_token g.Gate.op);
      add_int g.Gate.drive;
      add_str g.Gate.module_path;
      add_int (Array.length g.Gate.fanin);
      Array.iter add_int g.Gate.fanin)
    n.Netlist.gates;
  let port (name, ids) =
    add_str name;
    add_int (Array.length ids);
    Array.iter add_int ids
  in
  List.iter port n.Netlist.input_ports;
  List.iter port n.Netlist.output_ports;
  List.iter port n.Netlist.names;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes buf))
