(** Plain-text netlist serialization.

    A stable, diff-friendly format so tailored designs can be saved,
    versioned and reloaded without re-running the analysis:

    {v
    bespoke-netlist 1
    gates <count>
    g <op> <drive> <module-path-or-“-”> <fanin ids...>
    input <name> <gate ids...>
    output <name> <gate ids...>
    name <name> <gate ids...>
    end
    v} *)

val to_string : Netlist.t -> string

exception Parse_error of { line : int; message : string }

val of_string : string -> Netlist.t
(** Validates the result.  @raise Parse_error on malformed input. *)

val save : string -> Netlist.t -> unit
val load : string -> Netlist.t

(** {1 Gate sets}

    A usable-gate set (one flag per gate of the {e original} design)
    saved alongside a bespoke netlist enables the paper's in-field
    update check: a new binary is supported iff its usable set is a
    subset of the recorded one.  Format: a header line with the count,
    then the flags packed as hex nibbles, 64 per line. *)

val gate_set_to_string : bool array -> string
val gate_set_of_string : string -> bool array
val save_gate_set : string -> bool array -> unit
val load_gate_set : string -> bool array

val hash : Netlist.t -> string
(** Hex digest of the canonical serialization — a stable design
    identity used to key memoization caches (the compiled-simulation
    engine's design cache in particular).  Equal for structurally
    identical netlists, different after any gate/port/name change. *)
