(** Structural gate-level netlist.

    A netlist is an array of gates (each gate drives the net with its
    own id), plus named input/output ports and named internal nets
    ("hooks") that analysis tools may observe without the nets being
    design outputs. *)

type t = {
  gates : Gate.t array;
  input_ports : (string * int array) list;
      (** port name -> gate id per bit (each an [Input] gate), LSB first *)
  output_ports : (string * int array) list;
      (** port name -> driving gate id per bit, LSB first *)
  names : (string * int array) list;
      (** named internal nets (analysis hooks), LSB first *)
}

val gate_count : t -> int
val num_gates : t -> int
(** Gates that would exist in silicon: everything except [Input] and
    [Const] drivers (ports and tie-cells are free in our model). *)

val num_dffs : t -> int
val find_input : t -> string -> int array
val find_output : t -> string -> int array
val find_name : t -> string -> int array
(** Looks up [names], then output ports, then input ports.
    @raise Not_found if absent. *)

val mem_name : t -> string -> bool

val validate : t -> unit
(** Checks fanin arities, id ranges, and port references.
    @raise Failure with a diagnostic on the first violation. *)

val levelize : t -> int array
(** Topological order of all combinational (non-source) gates.  Source
    gates ([Input], [Const], [Dff]) are excluded.
    @raise Failure on a combinational cycle, listing a gate on it. *)

val levels : t -> int array
(** [levels.(id)] = longest combinational path from a source to that
    gate's output (sources have level 0). *)

val fanout : t -> int array array
(** [fanout.(id)] = ids of gates reading gate [id]'s output. *)

val output_ids : t -> int list
(** All gate ids referenced by output ports. *)

val live_gates : t -> bool array
(** Gates whose output can reach (transitively, through combinational
    and sequential elements) an output port or a DFF data input.  Used
    by the dead-gate sweep: a gate that is not live can be removed even
    if it toggles (paper, Section 3.2/3.3: gates with floating outputs
    are removed at re-synthesis). *)

val module_of : t -> int -> string
(** Top-level component of the gate's module path ("" for top). *)

val modules : t -> string list
(** Sorted list of distinct top-level module names. *)

val names_of : t -> int -> string list
(** Reverse lookup: every name, output-port or input-port bit driven
    by gate [id], as ["name"] (1-bit nets) or ["name[i]"].  Sorted,
    deduplicated; empty for anonymous internal gates. *)

val find_bits : t -> string -> int array
(** Resolve a human gate reference: ["name"] gives all bits of the
    net (as {!find_name}), ["name\[i\]"] the single bit [i].
    @raise Not_found if the name is absent or the bit out of range. *)

(** {1 Construction} *)

module Builder : sig
  type netlist := t
  type t

  val create : unit -> t
  val add : t -> Gate.t -> int
  (** Returns the new gate's id. *)

  val add_op :
    t -> ?module_path:string -> ?drive:int -> Gate.op -> int array -> int

  val gate : t -> int -> Gate.t
  val set : t -> int -> Gate.t -> unit
  (** Replace an already-added gate (used to patch DFF feedback). *)

  val size : t -> int
  val set_input_port : t -> string -> int array -> unit
  val set_output_port : t -> string -> int array -> unit
  val set_name : t -> string -> int array -> unit
  val finish : t -> netlist
  (** Validates before returning. *)
end

(** {1 Rewriting} *)

val map_gates : t -> (int -> Gate.t -> Gate.t) -> t
(** Pointwise gate replacement; ports and names are preserved.  The
    result is validated. *)

val compact : t -> keep:bool array -> t * int array
(** Renumber the netlist keeping only gates with [keep.(id)] true
    (input-port gates are always kept).  Fanin references to dropped
    gates are an error unless the dropped gate is a [Const]; dropped
    const references are re-materialized as shared tie cells.  Output
    ports and names are remapped; name bits whose driver vanished are
    remapped to tie cells (of the dropped constant's value, or X for a
    swept non-constant hook).
    Returns the new netlist and the old-id -> new-id map (-1 for
    dropped gates). *)

val pp_summary : Format.formatter -> t -> unit
