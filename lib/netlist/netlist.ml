module Bit = Bespoke_logic.Bit

type t = {
  gates : Gate.t array;
  input_ports : (string * int array) list;
  output_ports : (string * int array) list;
  names : (string * int array) list;
}

let gate_count n = Array.length n.gates

let num_gates n =
  let count = ref 0 in
  Array.iter
    (fun (g : Gate.t) ->
      match g.op with Gate.Input | Gate.Const _ -> () | _ -> incr count)
    n.gates;
  !count

let num_dffs n =
  let count = ref 0 in
  Array.iter (fun g -> if Gate.is_sequential g then incr count) n.gates;
  !count

let assoc_exn what name l =
  match List.assoc_opt name l with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Netlist: no %s named %S" what name)

let find_input n name = assoc_exn "input port" name n.input_ports
let find_output n name = assoc_exn "output port" name n.output_ports

let find_name n name =
  match List.assoc_opt name n.names with
  | Some v -> v
  | None -> (
    match List.assoc_opt name n.output_ports with
    | Some v -> v
    | None -> (
      match List.assoc_opt name n.input_ports with
      | Some v -> v
      | None -> raise Not_found))

let mem_name n name =
  List.mem_assoc name n.names
  || List.mem_assoc name n.output_ports
  || List.mem_assoc name n.input_ports

let validate n =
  let ng = Array.length n.gates in
  Array.iteri
    (fun id (g : Gate.t) ->
      let want = Gate.arity g.op in
      if Array.length g.fanin <> want then
        failwith
          (Printf.sprintf "Netlist.validate: gate %d (%s) has %d fanins, wants %d"
             id (Gate.op_name g.op) (Array.length g.fanin) want);
      Array.iter
        (fun f ->
          if f < 0 || f >= ng then
            failwith
              (Printf.sprintf
                 "Netlist.validate: gate %d (%s) references out-of-range id %d"
                 id (Gate.op_name g.op) f))
        g.fanin)
    n.gates;
  let check_port kind (name, ids) =
    Array.iter
      (fun id ->
        if id < 0 || id >= ng then
          failwith
            (Printf.sprintf "Netlist.validate: %s port %S references id %d" kind
               name id))
      ids
  in
  List.iter
    (fun (name, ids) ->
      check_port "input" (name, ids);
      Array.iter
        (fun id ->
          match n.gates.(id).op with
          | Gate.Input -> ()
          | op ->
            failwith
              (Printf.sprintf
                 "Netlist.validate: input port %S bit is a %s, not an Input"
                 name (Gate.op_name op)))
        ids)
    n.input_ports;
  List.iter (check_port "output") n.output_ports;
  List.iter (check_port "named") n.names

let levelize n =
  let ng = Array.length n.gates in
  let indegree = Array.make ng 0 in
  let readers = Array.make ng [] in
  Array.iteri
    (fun id (g : Gate.t) ->
      if not (Gate.is_source g) then
        Array.iter
          (fun f ->
            if not (Gate.is_source n.gates.(f)) then begin
              indegree.(id) <- indegree.(id) + 1;
              readers.(f) <- id :: readers.(f)
            end)
          g.fanin)
    n.gates;
  let order = Array.make ng 0 in
  let count = ref 0 in
  let queue = Queue.create () in
  Array.iteri
    (fun id (g : Gate.t) ->
      if (not (Gate.is_source g)) && indegree.(id) = 0 then Queue.add id queue)
    n.gates;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order.(!count) <- id;
    incr count;
    List.iter
      (fun r ->
        indegree.(r) <- indegree.(r) - 1;
        if indegree.(r) = 0 then Queue.add r queue)
      readers.(id)
  done;
  let total_comb =
    Array.fold_left
      (fun acc g -> if Gate.is_source g then acc else acc + 1)
      0 n.gates
  in
  if !count <> total_comb then begin
    (* find a gate on a cycle for the diagnostic *)
    let culprit = ref (-1) in
    Array.iteri
      (fun id (g : Gate.t) ->
        if !culprit < 0 && (not (Gate.is_source g)) && indegree.(id) > 0 then
          culprit := id)
      n.gates;
    failwith
      (Printf.sprintf
         "Netlist.levelize: combinational cycle (gate %d, %s, module %s)"
         !culprit
         (Gate.op_name n.gates.(!culprit).op)
         n.gates.(!culprit).module_path)
  end;
  Array.sub order 0 !count

let levels n =
  let order = levelize n in
  let lvl = Array.make (Array.length n.gates) 0 in
  Array.iter
    (fun id ->
      let g = n.gates.(id) in
      let m = ref 0 in
      Array.iter
        (fun f ->
          let fl = lvl.(f) in
          if fl >= !m then m := fl)
        g.fanin;
      lvl.(id) <- !m + 1)
    order;
  lvl

let fanout n =
  let ng = Array.length n.gates in
  let counts = Array.make ng 0 in
  Array.iter
    (fun (g : Gate.t) ->
      Array.iter (fun f -> counts.(f) <- counts.(f) + 1) g.fanin)
    n.gates;
  let out = Array.init ng (fun i -> Array.make counts.(i) 0) in
  let fill = Array.make ng 0 in
  Array.iteri
    (fun id (g : Gate.t) ->
      Array.iter
        (fun f ->
          out.(f).(fill.(f)) <- id;
          fill.(f) <- fill.(f) + 1)
        g.fanin)
    n.gates;
  out

let output_ids n =
  List.concat_map (fun (_, ids) -> Array.to_list ids) n.output_ports

let live_gates n =
  let ng = Array.length n.gates in
  let live = Array.make ng false in
  let stack = Stack.create () in
  let mark id =
    if not live.(id) then begin
      live.(id) <- true;
      Stack.push id stack
    end
  in
  List.iter mark (output_ids n);
  while not (Stack.is_empty stack) do
    let id = Stack.pop stack in
    Array.iter mark n.gates.(id).fanin
  done;
  live

let module_of n id =
  let p = n.gates.(id).module_path in
  match String.index_opt p '/' with
  | None -> p
  | Some i -> String.sub p 0 i

let modules n =
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun id _ -> Hashtbl.replace tbl (module_of n id) ()) n.gates;
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let names_of n id =
  let acc = ref [] in
  let scan (name, ids) =
    Array.iteri
      (fun i g ->
        if g = id then
          acc :=
            (if Array.length ids = 1 then name
             else Printf.sprintf "%s[%d]" name i)
            :: !acc)
      ids
  in
  List.iter scan n.names;
  List.iter scan n.output_ports;
  List.iter scan n.input_ports;
  List.sort_uniq String.compare !acc

let find_bits n ref_str =
  let len = String.length ref_str in
  let base, idx =
    if len > 1 && ref_str.[len - 1] = ']' then
      match String.index_opt ref_str '[' with
      | Some i -> (
        match int_of_string_opt (String.sub ref_str (i + 1) (len - i - 2)) with
        | Some bit -> (String.sub ref_str 0 i, Some bit)
        | None -> (ref_str, None))
      | None -> (ref_str, None)
    else (ref_str, None)
  in
  let ids = find_name n base in
  match idx with
  | None -> ids
  | Some bit ->
    if bit < 0 || bit >= Array.length ids then raise Not_found
    else [| ids.(bit) |]

module Builder = struct
  type t = {
    mutable arr : Gate.t array;
    mutable len : int;
    mutable inputs : (string * int array) list;
    mutable outputs : (string * int array) list;
    mutable named : (string * int array) list;
  }

  let dummy : Gate.t =
    { op = Gate.Const Bit.Zero; fanin = [||]; module_path = ""; drive = 0 }

  let create () =
    { arr = Array.make 1024 dummy; len = 0; inputs = []; outputs = []; named = [] }

  let add b g =
    if b.len = Array.length b.arr then begin
      let bigger = Array.make (2 * b.len) dummy in
      Array.blit b.arr 0 bigger 0 b.len;
      b.arr <- bigger
    end;
    b.arr.(b.len) <- g;
    b.len <- b.len + 1;
    b.len - 1

  let add_op b ?(module_path = "") ?(drive = 0) op fanin =
    add b { op; fanin; module_path; drive }

  let gate b id =
    if id < 0 || id >= b.len then invalid_arg "Builder.gate: bad id";
    b.arr.(id)

  let set b id g =
    if id < 0 || id >= b.len then invalid_arg "Builder.set: bad id";
    b.arr.(id) <- g

  let size b = b.len
  let set_input_port b name ids = b.inputs <- b.inputs @ [ (name, ids) ]
  let set_output_port b name ids = b.outputs <- b.outputs @ [ (name, ids) ]
  let set_name b name ids = b.named <- b.named @ [ (name, ids) ]

  let finish b =
    let n =
      {
        gates = Array.sub b.arr 0 b.len;
        input_ports = b.inputs;
        output_ports = b.outputs;
        names = b.named;
      }
    in
    validate n;
    n
end

let map_gates n f =
  let n' = { n with gates = Array.mapi f n.gates } in
  validate n';
  n'

let compact n ~keep =
  let ng = Array.length n.gates in
  let keep = Array.copy keep in
  (* Input-port gates always survive so port shapes are stable. *)
  List.iter
    (fun (_, ids) -> Array.iter (fun id -> keep.(id) <- true) ids)
    n.input_ports;
  let remap = Array.make ng (-1) in
  let b = Builder.create () in
  (* Shared tie cells, created on demand. *)
  let ties = Hashtbl.create 3 in
  let tie v =
    match Hashtbl.find_opt ties v with
    | Some id -> id
    | None ->
      let id = Builder.add_op b ~module_path:"" (Gate.Const v) [||] in
      Hashtbl.replace ties v id;
      id
  in
  Array.iteri
    (fun id (g : Gate.t) -> if keep.(id) then remap.(id) <- Builder.add b g)
    n.gates;
  (* Rewrite fanins of kept gates. *)
  let resolve ~context old =
    if remap.(old) >= 0 then remap.(old)
    else
      match n.gates.(old).op with
      | Gate.Const v -> tie v
      | op ->
        failwith
          (Printf.sprintf
             "Netlist.compact: %s references dropped non-const gate %d (%s)"
             context old (Gate.op_name op))
  in
  Array.iteri
    (fun id (g : Gate.t) ->
      if keep.(id) then begin
        let g' =
          {
            g with
            Gate.fanin =
              Array.map
                (resolve ~context:(Printf.sprintf "gate %d" id))
                g.fanin;
          }
        in
        Builder.set b remap.(id) g'
      end)
    n.gates;
  let remap_port kind (name, ids) =
    ( name,
      Array.map (resolve ~context:(Printf.sprintf "%s port %S" kind name)) ids )
  in
  List.iter
    (fun p -> Builder.set_input_port b (fst p) (snd (remap_port "input" p)))
    n.input_ports;
  List.iter
    (fun p -> Builder.set_output_port b (fst p) (snd (remap_port "output" p)))
    n.output_ports;
  (* Names are observation metadata, not design structure: a hook bit
     whose driver was swept away is remapped to an X tie cell rather
     than failing the compaction. *)
  List.iter
    (fun (name, ids) ->
      let ids' =
        Array.map
          (fun old ->
            if remap.(old) >= 0 then remap.(old)
            else
              match n.gates.(old).Gate.op with
              | Gate.Const v -> tie v
              | _ -> tie Bit.X)
          ids
      in
      Builder.set_name b name ids')
    n.names;
  (Builder.finish b, remap)

let pp_summary fmt n =
  Format.fprintf fmt "netlist: %d gates (%d real, %d DFFs), %d in-ports, %d out-ports"
    (gate_count n) (num_gates n) (num_dffs n)
    (List.length n.input_ports)
    (List.length n.output_ports)
