module Bit = Bespoke_logic.Bit
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist

type reason =
  | Kept
  | Downsized of int * int
  | Never_toggled of Bit.t
  | Dead_fanout
  | Const_folded
  | Merged of int

type t = {
  reason : reason option array;
  new_id : int array;
}

let is_cut = function
  | Never_toggled _ | Dead_fanout | Const_folded | Merged _ -> true
  | Kept | Downsized _ -> false

let reason_label = function
  | Kept -> "kept"
  | Downsized _ -> "downsized"
  | Never_toggled _ -> "never-toggled"
  | Dead_fanout -> "dead-fanout"
  | Const_folded -> "const-folded"
  | Merged _ -> "merged"

let pp_reason fmt = function
  | Kept -> Format.fprintf fmt "kept (unchanged)"
  | Downsized (a, b) ->
    Format.fprintf fmt "kept, cell downsized (drive %d -> %d)" a b
  | Never_toggled v ->
    Format.fprintf fmt
      "cut: can never toggle (Algorithm 1), stitched to constant %c"
      (Bit.to_char v)
  | Dead_fanout ->
    Format.fprintf fmt "cut: fanout dead after cutting (dead-gate sweep)"
  | Const_folded ->
    Format.fprintf fmt "cut: folded to a constant during re-synthesis"
  | Merged m ->
    Format.fprintf fmt
      "cut: absorbed into the equivalent bespoke gate %d (CSE/simplification)"
      m

let build ~original ~bespoke ~possibly_toggled ~constants ~map =
  let ng = Netlist.gate_count original in
  if
    Array.length map <> ng
    || Array.length possibly_toggled <> ng
    || Array.length constants <> ng
  then invalid_arg "Provenance.build: array size mismatch";
  let reason = Array.make ng None in
  let new_id = Array.make ng (-1) in
  (* A bespoke gate is "owned" by the lowest-id original gate with the
     same op that maps to it: that gate is the one the rewrite
     re-emitted; any other original gate landing on the same id was
     absorbed into it. *)
  let owner : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  for id = 0 to ng - 1 do
    let g = original.Netlist.gates.(id) in
    match g.Gate.op with
    | Gate.Input | Gate.Const _ -> ()
    | op ->
      if possibly_toggled.(id) then begin
        let m = map.(id) in
        if
          m >= 0
          && (not (Hashtbl.mem owner m))
          && Gate.op_equal op bespoke.Netlist.gates.(m).Gate.op
        then Hashtbl.replace owner m id
      end
  done;
  for id = 0 to ng - 1 do
    let g = original.Netlist.gates.(id) in
    match g.Gate.op with
    | Gate.Input | Gate.Const _ -> ()
    | _ ->
      if not possibly_toggled.(id) then
        reason.(id) <- Some (Never_toggled constants.(id))
      else begin
        let m = map.(id) in
        if m < 0 then reason.(id) <- Some Dead_fanout
        else
          match bespoke.Netlist.gates.(m).Gate.op with
          | Gate.Const _ -> reason.(id) <- Some Const_folded
          | _ ->
            if Hashtbl.find_opt owner m = Some id then begin
              new_id.(id) <- m;
              let d0 = g.Gate.drive in
              let d1 = bespoke.Netlist.gates.(m).Gate.drive in
              reason.(id) <-
                Some (if d0 = d1 then Kept else Downsized (d0, d1))
            end
            else reason.(id) <- Some (Merged m)
      end
  done;
  { reason; new_id }

let count p t =
  Array.fold_left
    (fun acc r -> match r with Some r when p r -> acc + 1 | _ -> acc)
    0 t.reason

let cut_count t = count is_cut t
let kept_count t = count (fun r -> not (is_cut r)) t

let histogram t =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (function
      | None -> ()
      | Some r ->
        let l = reason_label r in
        Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    t.reason;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
