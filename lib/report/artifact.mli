(** Machine-readable savings artifact: a schema-versioned JSON
    document reproducing the per-benchmark savings tables of the paper
    (gates / area / leakage / timing / Vmin, Figs. 5-9 and Table 2),
    plus the analysis statistics and the per-module attribution.

    The JSON is built with no external dependency and is validated in
    the [@report-smoke] check by the minimal reader in
    {!Bespoke_obs.Obs.Json}. *)

type entry = {
  name : string;  (** benchmark name *)
  group : string;
  gates_original : int;
  gates_cut : int;  (** never-toggled gates removed by Algorithm 1 *)
  gates_bespoke : int;  (** gates remaining after re-synthesis *)
  area_original : float;  (** um2 *)
  area_bespoke : float;
  leak_original : float;  (** nW at nominal supply *)
  leak_bespoke : float;
  critical_ps_original : float;
  critical_ps_bespoke : float;
  vmin : float;  (** V, from the exposed timing slack *)
  paths : int;
  merges : int;
  prunes : int;
  escapes : int;
  cycles : int;  (** symbolic cycles simulated by the analysis *)
  cut_reasons : (string * int) list;  (** {!Provenance.histogram} *)
  modules : Attribution.row list;
}

val schema : string
(** The version tag written to the ["schema"] field
    (["bespoke-report/v1"]); bump on any incompatible change. *)

val to_json : entry list -> string
(** The full artifact as one JSON object:
    [{"schema":..., "generator":..., "benchmarks":[...]}]. *)

val pp_text : Format.formatter -> entry list -> unit
(** The same content as a human-readable report. *)

(** {1 Analysis-only output} *)

val analysis_to_json :
  name:string ->
  paths:int -> merges:int -> prunes:int -> escapes:int -> cycles:int ->
  modules:(string * int * int) list ->
  string
(** Machine-readable [analyze] result: exploration statistics plus
    [(module, exercisable, total)] gate counts, under the same schema
    tag. *)
