(** Per-gate cut/keep provenance for the bespoke flow.

    The paper's central artifact is the set of gates that can never
    toggle and may therefore be cut; the flow historically reported
    only aggregate counts.  This module keeps, for every gate of the
    {e original} design, a typed record of what happened to it on the
    way to the bespoke design, so "why was gate G cut?" has a
    first-class answer. *)

module Bit := Bespoke_logic.Bit
module Netlist := Bespoke_netlist.Netlist

type reason =
  | Kept  (** survives unchanged into the bespoke design *)
  | Downsized of int * int
      (** survives with a smaller cell: (original drive, bespoke
          drive) — the slack-driven downsizing step *)
  | Never_toggled of Bit.t
      (** Algorithm 1 proved it can never toggle; cut and stitched to
          this constant *)
  | Dead_fanout
      (** removed by the dead-gate sweep: its output no longer reaches
          an output port or DFF after cutting *)
  | Const_folded
      (** folded into a tie cell by constant propagation during
          re-synthesis *)
  | Merged of int
      (** absorbed into the structurally equivalent bespoke gate with
          this id (peephole simplification or CSE) *)

type t = {
  reason : reason option array;
      (** indexed by original gate id; [None] for port pins and tie
          cells, which are free in the silicon model *)
  new_id : int array;
      (** original id -> bespoke id for [Kept]/[Downsized] gates, else
          [-1] *)
}

val build :
  original:Netlist.t ->
  bespoke:Netlist.t ->
  possibly_toggled:bool array ->
  constants:Bit.t array ->
  map:int array ->
  t
(** [map] is the original-id -> bespoke-id map threaded through
    re-synthesis ([-1] for gates with no surviving image); drive
    comparison against [bespoke] detects downsizing.  When several
    original gates map to one bespoke gate, the lowest-id gate with a
    matching op owns it; the others are [Merged]. *)

val is_cut : reason -> bool
(** True for [Never_toggled], [Dead_fanout], [Const_folded] and
    [Merged] — the gate has no cell of its own in the bespoke
    design. *)

val cut_count : t -> int
val kept_count : t -> int

val reason_label : reason -> string
(** Stable kebab-case tag for machine-readable output. *)

val histogram : t -> (string * int) list
(** Count per {!reason_label}, sorted by label. *)

val pp_reason : Format.formatter -> reason -> unit
(** Human-readable one-line explanation. *)
