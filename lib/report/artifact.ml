type entry = {
  name : string;
  group : string;
  gates_original : int;
  gates_cut : int;
  gates_bespoke : int;
  area_original : float;
  area_bespoke : float;
  leak_original : float;
  leak_bespoke : float;
  critical_ps_original : float;
  critical_ps_bespoke : float;
  vmin : float;
  paths : int;
  merges : int;
  prunes : int;
  escapes : int;
  cycles : int;
  cut_reasons : (string * int) list;
  modules : Attribution.row list;
}

let schema = "bespoke-report/v1"

(* ---- minimal JSON writer (mirrors the style of Bespoke_obs) ---- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let str s = "\"" ^ escape s ^ "\""
let obj fields = "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"
let int_ i = string_of_int i

let pct ~original ~bespoke =
  if original = 0.0 then 0.0 else 100.0 *. (1.0 -. (bespoke /. original))

let savings_obj ~original ~bespoke =
  obj
    [
      ("original", num original);
      ("bespoke", num bespoke);
      ("saved_pct", num (pct ~original ~bespoke));
    ]

let module_json (r : Attribution.row) =
  obj
    [
      ("module", str r.Attribution.module_name);
      ("gates_original", int_ r.Attribution.gates_original);
      ("gates_bespoke", int_ r.Attribution.gates_bespoke);
      ("area_original_um2", num r.Attribution.area_original);
      ("area_bespoke_um2", num r.Attribution.area_bespoke);
      ("leakage_original_nw", num r.Attribution.leak_original);
      ("leakage_bespoke_nw", num r.Attribution.leak_bespoke);
    ]

let entry_json e =
  obj
    [
      ("name", str e.name);
      ("group", str e.group);
      ( "gates",
        obj
          [
            ("original", int_ e.gates_original);
            ("cut", int_ e.gates_cut);
            ("bespoke", int_ e.gates_bespoke);
            ( "saved_pct",
              num
                (pct
                   ~original:(float_of_int e.gates_original)
                   ~bespoke:(float_of_int e.gates_bespoke)) );
          ] );
      ( "area_um2",
        savings_obj ~original:e.area_original ~bespoke:e.area_bespoke );
      ( "leakage_nw",
        savings_obj ~original:e.leak_original ~bespoke:e.leak_bespoke );
      ( "timing",
        obj
          [
            ("critical_ps_original", num e.critical_ps_original);
            ("critical_ps_bespoke", num e.critical_ps_bespoke);
            ( "slack_pct",
              num
                (pct ~original:e.critical_ps_original
                   ~bespoke:e.critical_ps_bespoke) );
            ("vmin_v", num e.vmin);
          ] );
      ( "analysis",
        obj
          [
            ("paths", int_ e.paths);
            ("merges", int_ e.merges);
            ("prunes", int_ e.prunes);
            ("escapes", int_ e.escapes);
            ("cycles", int_ e.cycles);
          ] );
      ( "cut_reasons",
        obj (List.map (fun (k, v) -> (k, int_ v)) e.cut_reasons) );
      ("modules", arr (List.map module_json e.modules));
    ]

let to_json entries =
  obj
    [
      ("schema", str schema);
      ("generator", str "bespoke_cli report");
      ("benchmarks", arr (List.map entry_json entries));
    ]
  ^ "\n"

let analysis_to_json ~name ~paths ~merges ~prunes ~escapes ~cycles ~modules =
  obj
    [
      ("schema", str schema);
      ("generator", str "bespoke_cli analyze");
      ("benchmark", str name);
      ( "analysis",
        obj
          [
            ("paths", int_ paths);
            ("merges", int_ merges);
            ("prunes", int_ prunes);
            ("escapes", int_ escapes);
            ("cycles", int_ cycles);
          ] );
      ( "modules",
        arr
          (List.map
             (fun (m, active, total) ->
               obj
                 [
                   ("module", str m);
                   ("exercisable", int_ active);
                   ("total", int_ total);
                 ])
             modules) );
    ]
  ^ "\n"

let pp_text fmt entries =
  List.iter
    (fun e ->
      Format.fprintf fmt "benchmark %s (%s)@." e.name e.group;
      Format.fprintf fmt
        "  gates   %6d -> %6d (%d cut, %.1f%% saved)@." e.gates_original
        e.gates_bespoke e.gates_cut
        (pct
           ~original:(float_of_int e.gates_original)
           ~bespoke:(float_of_int e.gates_bespoke));
      Format.fprintf fmt "  area    %8.0f -> %8.0f um2 (%.1f%% saved)@."
        e.area_original e.area_bespoke
        (pct ~original:e.area_original ~bespoke:e.area_bespoke);
      Format.fprintf fmt "  leakage %8.1f -> %8.1f nW (%.1f%% saved)@."
        e.leak_original e.leak_bespoke
        (pct ~original:e.leak_original ~bespoke:e.leak_bespoke);
      Format.fprintf fmt
        "  timing  %.0f -> %.0f ps critical (%.1f%% slack), Vmin %.2f V@."
        e.critical_ps_original e.critical_ps_bespoke
        (pct ~original:e.critical_ps_original ~bespoke:e.critical_ps_bespoke)
        e.vmin;
      Format.fprintf fmt
        "  analysis: %d paths, %d merges, %d prunes, %d escapes, %d cycles@."
        e.paths e.merges e.prunes e.escapes e.cycles;
      Format.fprintf fmt "  cut reasons: %s@."
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s %d" k v)
              e.cut_reasons));
      Attribution.pp fmt e.modules;
      Format.fprintf fmt "@.")
    entries
