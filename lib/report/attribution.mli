(** Per-RTL-module attribution of the bespoke savings — the paper's
    Table-2-style view ("which module lost how many gates / how much
    area and leakage"), also the basis of its coarse-grained
    (Xtensa-like) baseline comparison.

    Gate counts cover "real" gates only (ports and tie cells are free);
    area and leakage use the same cell-library accounting as
    {!Bespoke_power.Report}, so the "(total)" row agrees with the
    aggregate numbers the tailor flow prints. *)

module Netlist := Bespoke_netlist.Netlist

type row = {
  module_name : string;
  gates_original : int;
  gates_bespoke : int;  (** kept: still present in the bespoke design *)
  area_original : float;  (** um2, routing overhead included *)
  area_bespoke : float;
  leak_original : float;  (** nW at nominal supply *)
  leak_bespoke : float;
}

val gates_cut : row -> int
val area_cut : row -> float
val leak_cut : row -> float

val table : original:Netlist.t -> bespoke:Netlist.t -> row list
(** One row per top-level RTL module present in either design, sorted
    by name, with a final ["(total)"] row summing the rest. *)

val pp : Format.formatter -> row list -> unit
