module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Report = Bespoke_power.Report

type row = {
  module_name : string;
  gates_original : int;
  gates_bespoke : int;
  area_original : float;
  area_bespoke : float;
  leak_original : float;
  leak_bespoke : float;
}

let gates_cut r = r.gates_original - r.gates_bespoke
let area_cut r = r.area_original -. r.area_bespoke
let leak_cut r = r.leak_original -. r.leak_bespoke

let is_real (g : Gate.t) =
  match g.Gate.op with Gate.Input | Gate.Const _ -> false | _ -> true

(* module -> (gates, area, leakage) over one netlist *)
let tally net =
  let tbl : (string, int * float * float) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun id (g : Gate.t) ->
      let m = Netlist.module_of net id in
      let n0, a0, l0 =
        Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt tbl m)
      in
      Hashtbl.replace tbl m
        ( (if is_real g then n0 + 1 else n0),
          a0 +. Report.gate_area_um2 net id,
          l0 +. Report.gate_leakage_nw net id ))
    net.Netlist.gates;
  tbl

let table ~original ~bespoke =
  let a = tally original and b = tally bespoke in
  let names = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) a;
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) b;
  let rows =
    Hashtbl.fold
      (fun module_name () acc ->
        let n0, a0, l0 =
          Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt a module_name)
        in
        let n1, a1, l1 =
          Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt b module_name)
        in
        {
          module_name;
          gates_original = n0;
          gates_bespoke = n1;
          area_original = a0;
          area_bespoke = a1;
          leak_original = l0;
          leak_bespoke = l1;
        }
        :: acc)
      names []
    |> List.sort (fun x y -> String.compare x.module_name y.module_name)
  in
  let total =
    List.fold_left
      (fun t r ->
        {
          t with
          gates_original = t.gates_original + r.gates_original;
          gates_bespoke = t.gates_bespoke + r.gates_bespoke;
          area_original = t.area_original +. r.area_original;
          area_bespoke = t.area_bespoke +. r.area_bespoke;
          leak_original = t.leak_original +. r.leak_original;
          leak_bespoke = t.leak_bespoke +. r.leak_bespoke;
        })
      {
        module_name = "(total)";
        gates_original = 0;
        gates_bespoke = 0;
        area_original = 0.0;
        area_bespoke = 0.0;
        leak_original = 0.0;
        leak_bespoke = 0.0;
      }
      rows
  in
  rows @ [ total ]

let pp fmt rows =
  Format.fprintf fmt "  %-16s %13s %18s %18s@."
    "module" "gates kept/tot" "area kept/tot um2" "leak kept/tot nW";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-16s %6d /%6d %8.0f /%8.0f %8.1f /%8.1f@."
        r.module_name r.gates_bespoke r.gates_original r.area_bespoke
        r.area_original r.leak_bespoke r.leak_original)
    rows
