module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Serial = Bespoke_netlist.Serial
module Obs = Bespoke_obs.Obs

(* Telemetry: compilation/cache traffic and per-settle execution
   counts ("ops per cycle" = instr_execs / cycles).  All hooks are
   flag-guarded so the disabled cost is one check per settle. *)
let m_cache_hits = Obs.Metrics.counter "sim.compile.cache_hits"
let m_cache_misses = Obs.Metrics.counter "sim.compile.cache_misses"
let m_instr_execs = Obs.Metrics.counter "sim.compile.instr_execs"
let m_settles = Obs.Metrics.counter "sim.compile.settles"
let m_cycles = Obs.Metrics.counter "sim.compile.cycles"
let h_active = Obs.Metrics.histogram "sim.compile.execs_per_settle"

(* Gate opcodes, same numbering as [Engine]. *)
let op_buf = 0

and op_not = 1

and op_and = 2

and op_or = 3

and op_nand = 4

and op_nor = 5

and op_xor = 6

and op_xnor = 7

and op_mux = 8

let opcode_of : Gate.op -> int = function
  | Gate.Buf -> op_buf
  | Gate.Not -> op_not
  | Gate.And -> op_and
  | Gate.Or -> op_or
  | Gate.Nand -> op_nand
  | Gate.Nor -> op_nor
  | Gate.Xor -> op_xor
  | Gate.Xnor -> op_xnor
  | Gate.Mux -> op_mux
  | Gate.Const _ | Gate.Input | Gate.Dff _ -> -1

(* An operand is a width-w column of gate values, materialized as a
   pair of dual-rail words.  Columns that land as consecutive bits of
   one state word are a shift; single-gate columns broadcast; anything
   else gathers bit by bit through precompiled locations.  This is the
   compile-time representation; the program stores operands encoded
   into ints (see [enc_op]). *)
type operand =
  | OAligned of { c : int; sh : int }
  | OBcast of { c : int; sh : int }
  | OGather of int array  (* per output bit: (chunk lsl 6) lor bit *)

(* Compile-time IR, serialized to the flat [code] array below. *)
type instr =
  | I1 of { op : int; a : operand; dst : int; mask : int }
  | I2 of { op : int; a : operand; b : operand; dst : int; mask : int }
  | IMuxS of {
      sel_c : int;
      sel_sh : int;
      a : operand;
      b : operand;
      dst : int;
      mask : int;
    }
  | IMuxV of { sel : operand; a : operand; b : operand; dst : int; mask : int }
  | IAdd of {
      x : operand;
      y : operand;
      cin_c : int;
      cin_sh : int;
      d_axb : int;
      d_out : int;
      d_t1 : int;
      d_t2 : int;
      d_cout : int;
      w : int;
      mask : int;
    }
  | IGate of {
      op : int;
      l0 : int;
      l1 : int;
      l2 : int;
      dst : int;  (* packed destination location *)
      dg : int;  (* destination gate id *)
    }

(* The immutable compiled design, shared by every instance simulating
   a netlist with the same design hash (including across domains).
   Instructions live in one flat int array [code] indexed through
   [ioff], so the dispatch loop chases no pointers:
     word ops    [opc; dst; mask; operands...]         opc 0..9
     adder       [10; mask; w; cin; 5 dsts; x; y]
     scalar gate [11+op; dstloc; dstgate; fanin locs]
   Word operands are ints: low 2 bits select aligned (0) / broadcast
   (1) / gather (2); aligned and broadcast carry chunk and shift,
   gather carries an offset into [gpool] (length-prefixed location
   list). *)
type program = {
  ng : int;
  nchunks : int;
  ninstr : int;
  ch_mask : int array;
  ch_gidx : int array;  (* chunk -> offset of its bit->gate map *)
  ch_bitidx : Bytes.t;  (* chunks whose readers are tracked per gate *)
  gid_tbl : int array;  (* ch_gidx.(c) + bit -> gate id *)
  g_chunk : int array;
  g_bit : int array;
  code : int array;
  ioff : int array;  (* instr index -> offset into [code] *)
  gpool : int array;
  rd_start : int array;  (* CSR: word chunk -> (reader, read-mask) *)
  rd_instr : int array;
  rd_mask : int array;
  rb_start : int array;  (* CSR: gate -> readers (bit-indexed chunks) *)
  rb : int array;
  rs_chunk : int array;  (* reset plan: source chunks and their rails *)
  rs_lo : int array;
  rs_hi : int array;
  dc_chunk : int array;  (* clock-edge plan: DFF chunk and its D column *)
  dc_src : operand array;
  dc_mask : int array;
  dff_ids : int array;
  n_word_gates : int;
  n_adders : int;
}

(* Toggle counters are bit-sliced: plane i of a chunk holds bit i of
   every lane's count, so charging a whole changed-mask costs an
   amortized two word ops instead of a per-bit loop. *)
let planes = 32

type t = {
  net : Netlist.t;
  p : program;
  lo : int array;  (* dual-rail state: can-be-0 / can-be-1, per chunk *)
  hi : int array;
  prev_lo : int array;
  prev_hi : int array;
  poss_w : int array;  (* per-chunk mask of already possibly-toggled bits *)
  tplanes : int array;  (* bit-sliced toggle counters, [planes] per chunk *)
  possibly : Bytes.t;
  pend : int array;  (* pending-instruction bitmask, topo order *)
  touched : int array;  (* chunks written-with-change since last commit *)
  mutable touched_len : int;
  in_touched : Bytes.t;
  mutable committed : int;
  mutable full_commit : bool;
  mutable on_first_possibly : (int -> unit) option;
  mutable sc_lo : int;  (* operand-load scratch, avoids tuple allocation *)
  mutable sc_hi : int;
  dff_next_lo : int array;
  dff_next_hi : int array;
  from_cache : bool;
}

let max_w = 63

(* trailing-zero count of a one-bit word *)
let ntz b =
  let n = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    b := !b lsr 32
  end;
  if !b land 0xFFFF = 0 then begin
    n := !n + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    n := !n + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    n := !n + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    n := !n + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then incr n;
  !n

(* ---------- compilation ---------- *)

type kind =
  | KAdd of int  (* ripple-carry chain of w repetitions (5 gates each) *)
  | KRun of int  (* w consecutive same-op gates, constant-stride columns *)
  | KSeq of int  (* w consecutive DFF or input bits sharing one word *)

let loc_pack c b = (c lsl 6) lor b

let compile net =
  let ng = Netlist.gate_count net in
  let gates = net.Netlist.gates in
  (* Clustering (and ordering instructions by base id) relies on every
     combinational gate reading strictly lower ids; netlists built by
     the RTL DSL and the fuzzers satisfy this.  Otherwise fall back to
     per-gate instructions in levelized order. *)
  let forward_ok =
    let ok = ref true in
    Array.iteri
      (fun id (g : Gate.t) ->
        if not (Gate.is_source g) then
          Array.iter (fun f -> if f >= id then ok := false) g.fanin)
      gates;
    !ok
  in
  let start : kind option array = Array.make (max ng 1) None in
  let claimed = Bytes.make (max ng 1) '\000' in
  let is_claimed i = Bytes.get claimed i <> '\000' in
  let claim i n = Bytes.fill claimed i n '\001' in
  if forward_ok then begin
    (* Ripple-carry adders: the RTL lowering emits, per bit,
       axb = Xor(x,y); out = Xor(axb,c); t1 = And(x,y);
       t2 = And(c,axb); c' = Or(t1,t2), with the carry chain linking
       consecutive 5-gate repetitions. *)
    let add_bit_at i ~base ~carry =
      i + 4 < ng
      && (not (is_claimed i))
      &&
      let axb = gates.(i)
      and out = gates.(i + 1)
      and t1 = gates.(i + 2)
      and t2 = gates.(i + 3)
      and c' = gates.(i + 4) in
      match (axb.op, out.op, t1.op, t2.op, c'.op) with
      | Gate.Xor, Gate.Xor, Gate.And, Gate.And, Gate.Or ->
        Array.length axb.fanin = 2
        && axb.fanin.(0) < base
        && axb.fanin.(1) < base
        && out.fanin.(0) = i
        && out.fanin.(1)
           = (match carry with Some c -> c | None -> out.fanin.(1))
        && (match carry with Some _ -> true | None -> out.fanin.(1) < base)
        && t1.fanin.(0) = axb.fanin.(0)
        && t1.fanin.(1) = axb.fanin.(1)
        && t2.fanin.(0) = out.fanin.(1)
        && t2.fanin.(1) = i
        && c'.fanin.(0) = i + 2
        && c'.fanin.(1) = i + 3
      | _ -> false
    in
    let i = ref 0 in
    while !i < ng do
      if (not (is_claimed !i)) && add_bit_at !i ~base:!i ~carry:None then begin
        let base = !i in
        let w = ref 1 in
        while
          !w < 60
          && add_bit_at
               (base + (5 * !w))
               ~base
               ~carry:(Some (base + (5 * !w) - 1))
        do
          incr w
        done;
        if !w >= 2 then begin
          start.(base) <- Some (KAdd !w);
          claim base (5 * !w);
          i := base + (5 * !w)
        end
        else incr i
      end
      else incr i
    done;
    (* Vector runs: maximal consecutive-id same-op gates whose fanin
       columns are arithmetic progressions through lower ids. *)
    let i = ref 0 in
    while !i < ng do
      let g = gates.(!i) in
      let nf = Array.length g.fanin in
      if (not (is_claimed !i)) && (not (Gate.is_source g)) && nf > 0 then begin
        let base = !i in
        let strides = Array.make nf 0 in
        let w = ref 1 in
        let fits k =
          (* does gate base+k extend the run? *)
          base + k < ng
          && (not (is_claimed (base + k)))
          &&
          let h = gates.(base + k) in
          Gate.op_equal h.op g.op
          && Array.length h.fanin = nf
          &&
          let ok = ref true in
          for j = 0 to nf - 1 do
            if k = 1 then strides.(j) <- h.fanin.(j) - g.fanin.(j);
            if h.fanin.(j) <> g.fanin.(j) + (strides.(j) * k) then ok := false;
            if h.fanin.(j) >= base then ok := false
          done;
          !ok
        in
        while !w < max_w && fits !w do
          incr w
        done;
        if !w >= 2 then begin
          start.(base) <- Some (KRun !w);
          claim base !w;
          i := base + !w
        end
        else incr i
      end
      else incr i
    done
  end;
  (* DFF and input-port bits: consecutive ids share one word. *)
  let i = ref 0 in
  while !i < ng do
    if not (is_claimed !i) then begin
      let seq_op (g : Gate.t) =
        match g.op with
        | Gate.Dff _ -> 1
        | Gate.Input -> 2
        | _ -> 0
      in
      let k = seq_op gates.(!i) in
      if k <> 0 then begin
        let base = !i in
        let w = ref 1 in
        while
          !w < max_w
          && base + !w < ng
          && (not (is_claimed (base + !w)))
          && seq_op gates.(base + !w) = k
        do
          incr w
        done;
        if !w >= 2 then start.(base) <- Some (KSeq !w);
        claim base !w;
        i := base + !w
      end
      else incr i
    end
    else incr i
  done;
  (* Pass 1: assign every gate a (chunk, bit) location.  Gates inside
     a discovered structure share a word; leftover singletons are
     packed up to 63 per word by category (combinational / DFF /
     source), keeping the state vector small and commits cheap.
     Readers of packed-singleton bits are scheduled through per-gate
     lists ([rb]); word-structure chunks use per-chunk reader lists
     with read-masks ([rd]), so a changed bit only wakes instructions
     that actually read it. *)
  let g_chunk = Array.make (max ng 1) 0 in
  let g_bit = Array.make (max ng 1) 0 in
  let ch_mask = ref [] and ch_gids = ref [] and ch_bit = ref [] in
  let nchunks = ref 0 in
  let new_chunk gids ~bitidx =
    let c = !nchunks in
    incr nchunks;
    let w = Array.length gids in
    ch_mask := ((1 lsl w) - 1) :: !ch_mask;
    ch_gids := gids :: !ch_gids;
    ch_bit := bitidx :: !ch_bit;
    Array.iteri
      (fun b g ->
        g_chunk.(g) <- c;
        g_bit.(g) <- b)
      gids;
    c
  in
  let n_word_gates = ref 0 and n_adders = ref 0 in
  let pools = Array.make 3 [] and pool_n = Array.make 3 0 in
  let flush cat =
    if pool_n.(cat) > 0 then begin
      ignore (new_chunk (Array.of_list (List.rev pools.(cat))) ~bitidx:true);
      pools.(cat) <- [];
      pool_n.(cat) <- 0
    end
  in
  let pool cat g =
    pools.(cat) <- g :: pools.(cat);
    pool_n.(cat) <- pool_n.(cat) + 1;
    if pool_n.(cat) = max_w then flush cat
  in
  let i = ref 0 in
  while !i < ng do
    match start.(!i) with
    | Some (KAdd w) ->
      let base = !i in
      for k = 0 to 4 do
        ignore
          (new_chunk (Array.init w (fun b -> base + k + (5 * b))) ~bitidx:false)
      done;
      n_word_gates := !n_word_gates + (5 * w);
      incr n_adders;
      i := base + (5 * w)
    | Some (KRun w) | Some (KSeq w) ->
      let base = !i in
      ignore (new_chunk (Array.init w (fun b -> base + b)) ~bitidx:false);
      n_word_gates := !n_word_gates + w;
      i := base + w
    | None ->
      let cat =
        match gates.(!i).Gate.op with
        | Gate.Dff _ -> 1
        | Gate.Input | Gate.Const _ -> 2
        | _ -> 0
      in
      pool cat !i;
      incr i
  done;
  flush 0;
  flush 1;
  flush 2;
  let nchunks = !nchunks in
  let ch_mask = Array.of_list (List.rev !ch_mask) in
  let ch_gids = Array.of_list (List.rev !ch_gids) in
  let ch_bitarr = Array.of_list (List.rev !ch_bit) in
  let ch_bitidx = Bytes.make (max nchunks 1) '\000' in
  Array.iteri (fun c b -> if b then Bytes.set ch_bitidx c '\001') ch_bitarr;
  let ch_gidx = Array.make (nchunks + 1) 0 in
  for c = 0 to nchunks - 1 do
    ch_gidx.(c + 1) <- ch_gidx.(c) + Array.length ch_gids.(c)
  done;
  let gid_tbl = Array.make (max ng 1) 0 in
  Array.iteri
    (fun c gids -> Array.iteri (fun b g -> gid_tbl.(ch_gidx.(c) + b) <- g) gids)
    ch_gids;
  (* Pass 2: build instructions (locations are now all known). *)
  let mk_operand (col : int array) =
    let w = Array.length col in
    let g0 = col.(0) in
    let all_same = ref (w > 1) in
    Array.iter (fun g -> if g <> g0 then all_same := false) col;
    if !all_same then OBcast { c = g_chunk.(g0); sh = g_bit.(g0) }
    else begin
      let c0 = g_chunk.(g0) and b0 = g_bit.(g0) in
      let aligned = ref true in
      Array.iteri
        (fun k g ->
          if g_chunk.(g) <> c0 || g_bit.(g) <> b0 + k then aligned := false)
        col;
      if !aligned then OAligned { c = c0; sh = b0 }
      else OGather (Array.map (fun g -> loc_pack g_chunk.(g) g_bit.(g)) col)
    end
  in
  let column base stride w j =
    Array.init w (fun k -> gates.(base + (stride * k)).Gate.fanin.(j))
  in
  let instrs = ref [] in
  let ninstr = ref 0 in
  let emit ins =
    instrs := ins :: !instrs;
    incr ninstr
  in
  let emit_single id (g : Gate.t) =
    let nf = Array.length g.fanin in
    let l j =
      if j < nf then loc_pack g_chunk.(g.fanin.(j)) g_bit.(g.fanin.(j)) else 0
    in
    emit
      (IGate
         {
           op = opcode_of g.op;
           l0 = l 0;
           l1 = l 1;
           l2 = l 2;
           dst = loc_pack g_chunk.(id) g_bit.(id);
           dg = id;
         })
  in
  let emit_struct id =
    match start.(id) with
    | Some (KAdd w) ->
      let out0 = gates.(id + 1) in
      emit
        (IAdd
           {
             x = mk_operand (column id 5 w 0);
             y = mk_operand (column id 5 w 1);
             cin_c = g_chunk.(out0.fanin.(1));
             cin_sh = g_bit.(out0.fanin.(1));
             d_axb = g_chunk.(id);
             d_out = g_chunk.(id + 1);
             d_t1 = g_chunk.(id + 2);
             d_t2 = g_chunk.(id + 3);
             d_cout = g_chunk.(id + 4);
             w;
             mask = (1 lsl w) - 1;
           })
    | Some (KRun w) ->
      let g = gates.(id) in
      let dst = g_chunk.(id) and mask = (1 lsl w) - 1 in
      let op = opcode_of g.op in
      if op = op_buf || op = op_not then
        emit (I1 { op; a = mk_operand (column id 1 w 0); dst; mask })
      else if op = op_mux then begin
        let sel = column id 1 w 0 in
        let a = mk_operand (column id 1 w 1) in
        let b = mk_operand (column id 1 w 2) in
        let s0 = sel.(0) in
        let bcast = Array.for_all (fun g -> g = s0) sel in
        if bcast then
          emit
            (IMuxS
               { sel_c = g_chunk.(s0); sel_sh = g_bit.(s0); a; b; dst; mask })
        else emit (IMuxV { sel = mk_operand sel; a; b; dst; mask })
      end
      else
        emit
          (I2
             {
               op;
               a = mk_operand (column id 1 w 0);
               b = mk_operand (column id 1 w 1);
               dst;
               mask;
             })
    | Some (KSeq _) | None -> ()
  in
  if forward_ok then begin
    let i = ref 0 in
    while !i < ng do
      (match start.(!i) with
      | Some (KAdd w) ->
        emit_struct !i;
        i := !i + (5 * w)
      | Some (KRun w) ->
        emit_struct !i;
        i := !i + w
      | Some (KSeq w) -> i := !i + w
      | None ->
        let g = gates.(!i) in
        if not (Gate.is_source g) then emit_single !i g;
        incr i)
    done
  end
  else
    (* Per-gate instructions in levelized (topological) order. *)
    Array.iter (fun id -> emit_single id gates.(id)) (Netlist.levelize net);
  let ninstr = !ninstr in
  let prog = Array.of_list (List.rev !instrs) in
  (* Serialize the IR into the flat dispatch format. *)
  let codebuf = ref [] and clen = ref 0 in
  let emitw w =
    codebuf := w :: !codebuf;
    incr clen
  in
  let gbuf = ref [] and glen = ref 0 in
  let enc_op = function
    | OAligned { c; sh } -> (c lsl 8) lor (sh lsl 2)
    | OBcast { c; sh } -> (c lsl 8) lor (sh lsl 2) lor 1
    | OGather locs ->
      let off = !glen in
      gbuf := Array.length locs :: !gbuf;
      incr glen;
      Array.iter
        (fun l ->
          gbuf := l :: !gbuf;
          incr glen)
        locs;
      (off lsl 2) lor 2
  in
  let ioff = Array.make (ninstr + 1) 0 in
  Array.iteri
    (fun i ins ->
      ioff.(i) <- !clen;
      match ins with
      | I1 { op; a; dst; mask } ->
        emitw op;
        emitw dst;
        emitw mask;
        emitw (enc_op a)
      | I2 { op; a; b; dst; mask } ->
        emitw op;
        emitw dst;
        emitw mask;
        emitw (enc_op a);
        emitw (enc_op b)
      | IMuxS { sel_c; sel_sh; a; b; dst; mask } ->
        emitw 8;
        emitw dst;
        emitw mask;
        emitw (loc_pack sel_c sel_sh);
        emitw (enc_op a);
        emitw (enc_op b)
      | IMuxV { sel; a; b; dst; mask } ->
        emitw 9;
        emitw dst;
        emitw mask;
        emitw (enc_op sel);
        emitw (enc_op a);
        emitw (enc_op b)
      | IAdd { x; y; cin_c; cin_sh; d_axb; d_out; d_t1; d_t2; d_cout; w; mask }
        ->
        emitw 10;
        emitw mask;
        emitw w;
        emitw (loc_pack cin_c cin_sh);
        emitw d_axb;
        emitw d_out;
        emitw d_t1;
        emitw d_t2;
        emitw d_cout;
        emitw (enc_op x);
        emitw (enc_op y)
      | IGate { op; l0; l1; l2; dst; dg } ->
        emitw (11 + op);
        emitw dst;
        emitw dg;
        emitw l0;
        if op >= op_and then emitw l1;
        if op = op_mux then emitw l2)
    prog;
  ioff.(ninstr) <- !clen;
  let code = Array.make (max !clen 1) 0 in
  List.iteri (fun k w -> code.(!clen - 1 - k) <- w) !codebuf;
  let gpool = Array.make (max !glen 1) 0 in
  List.iteri (fun k w -> gpool.(!glen - 1 - k) <- w) !gbuf;
  (* Reader lists.  For each instruction, collect (chunk, bit-mask) of
     everything it reads; bits of bit-indexed chunks feed the per-gate
     CSR, word chunks keep (instr, mask) entries. *)
  let dep_masks ins =
    let acc = ref [] in
    let add c m =
      match List.assoc_opt c !acc with
      | Some r -> r := !r lor m
      | None -> acc := (c, ref m) :: !acc
    in
    let add_loc l = add (l lsr 6) (1 lsl (l land 63)) in
    let add_op mask = function
      | OAligned { c; sh } -> add c (mask lsl sh)
      | OBcast { c; sh } -> add c (1 lsl sh)
      | OGather locs -> Array.iter add_loc locs
    in
    (match ins with
    | I1 { a; mask; _ } -> add_op mask a
    | I2 { a; b; mask; _ } ->
      add_op mask a;
      add_op mask b
    | IMuxS { sel_c; sel_sh; a; b; mask; _ } ->
      add sel_c (1 lsl sel_sh);
      add_op mask a;
      add_op mask b
    | IMuxV { sel; a; b; mask; _ } ->
      add_op mask sel;
      add_op mask a;
      add_op mask b
    | IAdd { x; y; cin_c; cin_sh; mask; _ } ->
      add_op mask x;
      add_op mask y;
      add cin_c (1 lsl cin_sh)
    | IGate { op; l0; l1; l2; _ } ->
      add_loc l0;
      if op >= op_and then add_loc l1;
      if op = op_mux then add_loc l2);
    List.map (fun (c, r) -> (c, !r)) !acc
  in
  let deps = Array.map dep_masks prog in
  let wc_counts = Array.make (nchunks + 1) 0 in
  let gb_counts = Array.make (ng + 1) 0 in
  let iter_bits m f =
    let mm = ref m in
    while !mm <> 0 do
      let b = !mm land (0 - !mm) in
      mm := !mm lxor b;
      f (ntz b)
    done
  in
  Array.iter
    (List.iter (fun (c, m) ->
         if Bytes.get ch_bitidx c = '\000' then
           wc_counts.(c) <- wc_counts.(c) + 1
         else
           iter_bits m (fun b ->
               let g = gid_tbl.(ch_gidx.(c) + b) in
               gb_counts.(g) <- gb_counts.(g) + 1)))
    deps;
  let rd_start = Array.make (nchunks + 1) 0 in
  for c = 0 to nchunks - 1 do
    rd_start.(c + 1) <- rd_start.(c) + wc_counts.(c)
  done;
  let rd_instr = Array.make (max rd_start.(nchunks) 1) 0 in
  let rd_mask = Array.make (max rd_start.(nchunks) 1) 0 in
  let rb_start = Array.make (ng + 1) 0 in
  for g = 0 to ng - 1 do
    rb_start.(g + 1) <- rb_start.(g) + gb_counts.(g)
  done;
  let rb = Array.make (max rb_start.(ng) 1) 0 in
  let wfill = Array.make (max nchunks 1) 0 in
  let gfill = Array.make (max ng 1) 0 in
  Array.iteri
    (fun idx dl ->
      List.iter
        (fun (c, m) ->
          if Bytes.get ch_bitidx c = '\000' then begin
            rd_instr.(rd_start.(c) + wfill.(c)) <- idx;
            rd_mask.(rd_start.(c) + wfill.(c)) <- m;
            wfill.(c) <- wfill.(c) + 1
          end
          else
            iter_bits m (fun b ->
                let g = gid_tbl.(ch_gidx.(c) + b) in
                rb.(rb_start.(g) + gfill.(g)) <- idx;
                gfill.(g) <- gfill.(g) + 1))
        dl)
    deps;
  (* Reset plan (source chunks) and clock-edge plan (DFF chunks). *)
  let rs = ref [] and dcs = ref [] in
  for c = 0 to nchunks - 1 do
    let gids = ch_gids.(c) in
    match gates.(gids.(0)).Gate.op with
    | Gate.Input | Gate.Const _ | Gate.Dff _ ->
      let lo = ref 0 and hi = ref 0 in
      Array.iteri
        (fun k g ->
          let l, h =
            match gates.(g).Gate.op with
            | Gate.Input | Gate.Dff Bit.X | Gate.Const Bit.X -> (1, 1)
            | Gate.Dff Bit.Zero | Gate.Const Bit.Zero -> (1, 0)
            | Gate.Dff Bit.One | Gate.Const Bit.One -> (0, 1)
            | _ -> assert false
          in
          lo := !lo lor (l lsl k);
          hi := !hi lor (h lsl k))
        gids;
      rs := (c, !lo, !hi) :: !rs;
      (match gates.(gids.(0)).Gate.op with
      | Gate.Dff _ ->
        let d_col = Array.map (fun g -> gates.(g).Gate.fanin.(0)) gids in
        dcs := (c, mk_operand d_col, ch_mask.(c)) :: !dcs
      | _ -> ())
    | _ -> ()
  done;
  let rs = Array.of_list (List.rev !rs) in
  let dcs = Array.of_list (List.rev !dcs) in
  let dff_ids = ref [] in
  for g = ng - 1 downto 0 do
    match gates.(g).Gate.op with
    | Gate.Dff _ -> dff_ids := g :: !dff_ids
    | _ -> ()
  done;
  {
    ng;
    nchunks;
    ninstr;
    ch_mask;
    ch_gidx;
    ch_bitidx;
    gid_tbl;
    g_chunk;
    g_bit;
    code;
    ioff;
    gpool;
    rd_start;
    rd_instr;
    rd_mask;
    rb_start;
    rb;
    rs_chunk = Array.map (fun (c, _, _) -> c) rs;
    rs_lo = Array.map (fun (_, l, _) -> l) rs;
    rs_hi = Array.map (fun (_, _, h) -> h) rs;
    dc_chunk = Array.map (fun (c, _, _) -> c) dcs;
    dc_src = Array.map (fun (_, s, _) -> s) dcs;
    dc_mask = Array.map (fun (_, _, m) -> m) dcs;
    dff_ids = Array.of_list !dff_ids;
    n_word_gates = !n_word_gates;
    n_adders = !n_adders;
  }

(* ---------- design cache ---------- *)

let cache : (string, program) Hashtbl.t = Hashtbl.create 16
let cache_lock = Mutex.create ()
let hits = Atomic.make 0
let misses = Atomic.make 0

let compile_cached net =
  let key = Serial.hash net in
  let found =
    Mutex.lock cache_lock;
    let r = Hashtbl.find_opt cache key in
    Mutex.unlock cache_lock;
    r
  in
  match found with
  | Some p ->
    Atomic.incr hits;
    if Obs.enabled () then Obs.Metrics.incr m_cache_hits;
    (p, true)
  | None ->
    Atomic.incr misses;
    if Obs.enabled () then Obs.Metrics.incr m_cache_misses;
    let p = Obs.Span.with_ ~name:"sim.compile" (fun () -> compile net) in
    Mutex.lock cache_lock;
    if not (Hashtbl.mem cache key) then Hashtbl.add cache key p;
    Mutex.unlock cache_lock;
    (p, false)

let cache_hits () = Atomic.get hits
let cache_misses () = Atomic.get misses

let clear_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  Mutex.unlock cache_lock

(* ---------- instance state ---------- *)

let create net =
  let p, from_cache = compile_cached net in
  let nc = max p.nchunks 1 in
  let npw = (p.ninstr + 62) / 63 in
  let t =
    {
      net;
      p;
      (* like [Engine.create]: everything starts X, and the whole
         program is pending so the first eval is a complete sweep *)
      lo = Array.copy p.ch_mask;
      hi = Array.copy p.ch_mask;
      prev_lo = Array.copy p.ch_mask;
      prev_hi = Array.copy p.ch_mask;
      poss_w = Array.make nc 0;
      tplanes = Array.make (nc * planes) 0;
      possibly = Bytes.make (max p.ng 1) '\000';
      pend = Array.make (max npw 1) 0;
      touched = Array.make nc 0;
      touched_len = 0;
      in_touched = Bytes.make nc '\000';
      committed = 0;
      full_commit = true;
      on_first_possibly = None;
      sc_lo = 0;
      sc_hi = 0;
      dff_next_lo = Array.make (max (Array.length p.dc_chunk) 1) 0;
      dff_next_hi = Array.make (max (Array.length p.dc_chunk) 1) 0;
      from_cache;
    }
  in
  for i = 0 to p.ninstr - 1 do
    t.pend.(i / 63) <- t.pend.(i / 63) lor (1 lsl (i mod 63))
  done;
  t

let netlist t = t.net

type stats = {
  gates : int;
  instructions : int;
  word_gates : int;
  adders : int;
  from_cache : bool;
}

let stats t =
  {
    gates = t.p.ng;
    instructions = t.p.ninstr;
    word_gates = t.p.n_word_gates;
    adders = t.p.n_adders;
    from_cache = t.from_cache;
  }

(* ---------- execution ---------- *)

let mark_touched t c =
  if Bytes.unsafe_get t.in_touched c = '\000' then begin
    Bytes.unsafe_set t.in_touched c '\001';
    t.touched.(t.touched_len) <- c;
    t.touched_len <- t.touched_len + 1
  end

(* wake the readers of gate [g] (bit of a bit-indexed chunk) *)
let schedule_rb t g =
  let s = Array.unsafe_get t.p.rb_start g
  and e = Array.unsafe_get t.p.rb_start (g + 1) in
  for k = s to e - 1 do
    let i = Array.unsafe_get t.p.rb k in
    let wi = i / 63 in
    Array.unsafe_set t.pend wi
      (Array.unsafe_get t.pend wi lor (1 lsl (i mod 63)))
  done

(* wake readers of the changed bits [delta] of chunk [c] *)
let schedule_delta t c delta =
  if Bytes.unsafe_get t.p.ch_bitidx c <> '\000' then begin
    let gx = Array.unsafe_get t.p.ch_gidx c in
    let m = ref delta in
    while !m <> 0 do
      let b = !m land (0 - !m) in
      m := !m lxor b;
      schedule_rb t (Array.unsafe_get t.p.gid_tbl (gx + ntz b))
    done
  end
  else begin
    let s = Array.unsafe_get t.p.rd_start c
    and e = Array.unsafe_get t.p.rd_start (c + 1) in
    for k = s to e - 1 do
      if Array.unsafe_get t.p.rd_mask k land delta <> 0 then begin
        let i = Array.unsafe_get t.p.rd_instr k in
        let wi = i / 63 in
        Array.unsafe_set t.pend wi
          (Array.unsafe_get t.pend wi lor (1 lsl (i mod 63)))
      end
    done
  end

let store t c nlo nhi =
  let olo = Array.unsafe_get t.lo c and ohi = Array.unsafe_get t.hi c in
  let delta = olo lxor nlo lor (ohi lxor nhi) in
  if delta <> 0 then begin
    Array.unsafe_set t.lo c nlo;
    Array.unsafe_set t.hi c nhi;
    mark_touched t c;
    schedule_delta t c delta
  end

(* Decode an int-encoded operand into the dual-rail scratch pair. *)
let load t v mask =
  let m = v land 3 in
  if m = 0 then begin
    let c = v lsr 8 and sh = (v lsr 2) land 63 in
    t.sc_lo <- (Array.unsafe_get t.lo c lsr sh) land mask;
    t.sc_hi <- (Array.unsafe_get t.hi c lsr sh) land mask
  end
  else if m = 1 then begin
    let c = v lsr 8 and sh = (v lsr 2) land 63 in
    t.sc_lo <- (0 - ((Array.unsafe_get t.lo c lsr sh) land 1)) land mask;
    t.sc_hi <- (0 - ((Array.unsafe_get t.hi c lsr sh) land 1)) land mask
  end
  else begin
    let gp = t.p.gpool in
    let off = v lsr 2 in
    let len = Array.unsafe_get gp off in
    let llo = ref 0 and lhi = ref 0 in
    for i = 0 to len - 1 do
      let l = Array.unsafe_get gp (off + 1 + i) in
      let c = l lsr 6 and b = l land 63 in
      llo := !llo lor (((Array.unsafe_get t.lo c lsr b) land 1) lsl i);
      lhi := !lhi lor (((Array.unsafe_get t.hi c lsr b) land 1) lsl i)
    done;
    t.sc_lo <- !llo;
    t.sc_hi <- !lhi
  end

(* Clock-edge D columns are kept as IR operands (cold path). *)
let load_rec t a mask =
  match a with
  | OAligned { c; sh } ->
    t.sc_lo <- (Array.unsafe_get t.lo c lsr sh) land mask;
    t.sc_hi <- (Array.unsafe_get t.hi c lsr sh) land mask
  | OBcast { c; sh } ->
    t.sc_lo <- (0 - ((Array.unsafe_get t.lo c lsr sh) land 1)) land mask;
    t.sc_hi <- (0 - ((Array.unsafe_get t.hi c lsr sh) land 1)) land mask
  | OGather locs ->
    let llo = ref 0 and lhi = ref 0 in
    for i = 0 to Array.length locs - 1 do
      let l = Array.unsafe_get locs i in
      let c = l lsr 6 and b = l land 63 in
      llo := !llo lor (((Array.unsafe_get t.lo c lsr b) land 1) lsl i);
      lhi := !lhi lor (((Array.unsafe_get t.hi c lsr b) land 1) lsl i)
    done;
    t.sc_lo <- !llo;
    t.sc_hi <- !lhi

(* value code (0/1/2) of the bit at a packed location *)
let code_loc t l =
  let c = l lsr 6 and b = l land 63 in
  let lo = (Array.unsafe_get t.lo c lsr b) land 1
  and hi = (Array.unsafe_get t.hi c lsr b) land 1 in
  hi + (lo land hi)

let exec t i =
  let code = t.p.code in
  let o = Array.unsafe_get t.p.ioff i in
  let opc = Array.unsafe_get code o in
  if opc >= 11 then begin
    (* scalar gate: one dispatch evaluates and stores a single bit *)
    let a = code_loc t (Array.unsafe_get code (o + 3)) in
    let r =
      if opc = 11 then a
      else if opc = 12 then Bit.tbl_not.(a)
      else
        let b = code_loc t (Array.unsafe_get code (o + 4)) in
        if opc = 13 then Bit.tbl_and.((a * 3) + b)
        else if opc = 14 then Bit.tbl_or.((a * 3) + b)
        else if opc = 15 then Bit.tbl_nand.((a * 3) + b)
        else if opc = 16 then Bit.tbl_nor.((a * 3) + b)
        else if opc = 17 then Bit.tbl_xor.((a * 3) + b)
        else if opc = 18 then Bit.tbl_xnor.((a * 3) + b)
        else
          let s = code_loc t (Array.unsafe_get code (o + 5)) in
          Bit.tbl_mux.((a * 9) + (b * 3) + s)
    in
    let dst = Array.unsafe_get code (o + 1) in
    let c = dst lsr 6 and b = dst land 63 in
    let nl = 1 - (r land 1) and nh = (r + 1) lsr 1 in
    let olo = Array.unsafe_get t.lo c and ohi = Array.unsafe_get t.hi c in
    if (olo lsr b) land 1 <> nl || (ohi lsr b) land 1 <> nh then begin
      let m = lnot (1 lsl b) in
      Array.unsafe_set t.lo c (olo land m lor (nl lsl b));
      Array.unsafe_set t.hi c (ohi land m lor (nh lsl b));
      mark_touched t c;
      schedule_rb t (Array.unsafe_get code (o + 2))
    end
  end
  else if opc < 8 then begin
    let dst = Array.unsafe_get code (o + 1)
    and mask = Array.unsafe_get code (o + 2) in
    if opc < 2 then begin
      load t (Array.unsafe_get code (o + 3)) mask;
      if opc = 0 then store t dst t.sc_lo t.sc_hi
      else store t dst t.sc_hi t.sc_lo
    end
    else begin
      load t (Array.unsafe_get code (o + 3)) mask;
      let alo = t.sc_lo and ahi = t.sc_hi in
      load t (Array.unsafe_get code (o + 4)) mask;
      let blo = t.sc_lo and bhi = t.sc_hi in
      if opc = 2 then store t dst (alo lor blo) (ahi land bhi)
      else if opc = 3 then store t dst (alo land blo) (ahi lor bhi)
      else if opc = 4 then store t dst (ahi land bhi) (alo lor blo)
      else if opc = 5 then store t dst (ahi lor bhi) (alo land blo)
      else if opc = 6 then
        store t dst
          ((alo land blo) lor (ahi land bhi))
          ((alo land bhi) lor (ahi land blo))
      else
        store t dst
          ((alo land bhi) lor (ahi land blo))
          ((alo land blo) lor (ahi land bhi))
    end
  end
  else if opc = 8 then begin
    let dst = Array.unsafe_get code (o + 1)
    and mask = Array.unsafe_get code (o + 2)
    and sel = Array.unsafe_get code (o + 3) in
    let sc = sel lsr 6 and sb = sel land 63 in
    let sl = (Array.unsafe_get t.lo sc lsr sb) land 1
    and sh = (Array.unsafe_get t.hi sc lsr sb) land 1 in
    if sh = 0 then begin
      load t (Array.unsafe_get code (o + 4)) mask;
      store t dst t.sc_lo t.sc_hi
    end
    else if sl = 0 then begin
      load t (Array.unsafe_get code (o + 5)) mask;
      store t dst t.sc_lo t.sc_hi
    end
    else begin
      load t (Array.unsafe_get code (o + 4)) mask;
      let alo = t.sc_lo and ahi = t.sc_hi in
      load t (Array.unsafe_get code (o + 5)) mask;
      store t dst (alo lor t.sc_lo) (ahi lor t.sc_hi)
    end
  end
  else if opc = 9 then begin
    let dst = Array.unsafe_get code (o + 1)
    and mask = Array.unsafe_get code (o + 2) in
    load t (Array.unsafe_get code (o + 3)) mask;
    let slo = t.sc_lo and shi = t.sc_hi in
    load t (Array.unsafe_get code (o + 4)) mask;
    let alo = t.sc_lo and ahi = t.sc_hi in
    load t (Array.unsafe_get code (o + 5)) mask;
    let blo = t.sc_lo and bhi = t.sc_hi in
    let s0 = slo land lnot shi
    and s1 = shi land lnot slo
    and sx = slo land shi in
    store t dst
      ((s0 land alo) lor (s1 land blo) lor (sx land (alo lor blo)))
      ((s0 land ahi) lor (s1 land bhi) lor (sx land (ahi lor bhi)))
  end
  else begin
    (* opc = 10: recovered ripple-carry adder *)
    let mask = Array.unsafe_get code (o + 1)
    and w = Array.unsafe_get code (o + 2)
    and cin = Array.unsafe_get code (o + 3) in
    let d_axb = Array.unsafe_get code (o + 4)
    and d_out = Array.unsafe_get code (o + 5)
    and d_t1 = Array.unsafe_get code (o + 6)
    and d_t2 = Array.unsafe_get code (o + 7)
    and d_cout = Array.unsafe_get code (o + 8) in
    load t (Array.unsafe_get code (o + 9)) mask;
    let xlo = t.sc_lo and xhi = t.sc_hi in
    load t (Array.unsafe_get code (o + 10)) mask;
    let ylo = t.sc_lo and yhi = t.sc_hi in
    let cc = cin lsr 6 and cb = cin land 63 in
    let cl = (Array.unsafe_get t.lo cc lsr cb) land 1
    and ch = (Array.unsafe_get t.hi cc lsr cb) land 1 in
    if (xlo land xhi) lor (ylo land yhi) lor (cl land ch) = 0 then begin
      (* no X anywhere: one native add reconstructs every internal
         gate of the ripple chain word-wise *)
      let a = xhi and b = yhi in
      let tsum = a + b + ch in
      let u = tsum lxor a lxor b in
      (* bit k of [u] is the carry into bit k *)
      let axb = a lxor b in
      let sum = tsum land mask in
      let t1 = a land b in
      let cinw = u land mask in
      let t2 = cinw land axb in
      let cout = (u lsr 1) land mask in
      store t d_axb (lnot axb land mask) axb;
      store t d_out (lnot sum land mask) sum;
      store t d_t1 (lnot t1 land mask) t1;
      store t d_t2 (lnot t2 land mask) t2;
      store t d_cout (lnot cout land mask) cout
    end
    else begin
      (* three-valued fallback: exact per-bit gate functions *)
      let lo_axb = ref 0 and hi_axb = ref 0 in
      let lo_out = ref 0 and hi_out = ref 0 in
      let lo_t1 = ref 0 and hi_t1 = ref 0 in
      let lo_t2 = ref 0 and hi_t2 = ref 0 in
      let lo_co = ref 0 and hi_co = ref 0 in
      let cc = ref (ch + (cl land ch)) in
      for k = 0 to w - 1 do
        let xc =
          let l = (xlo lsr k) land 1 and h = (xhi lsr k) land 1 in
          h + (l land h)
        in
        let yc =
          let l = (ylo lsr k) land 1 and h = (yhi lsr k) land 1 in
          h + (l land h)
        in
        let axb = Bit.tbl_xor.((xc * 3) + yc) in
        let out = Bit.tbl_xor.((axb * 3) + !cc) in
        let t1 = Bit.tbl_and.((xc * 3) + yc) in
        let t2 = Bit.tbl_and.((!cc * 3) + axb) in
        let co = Bit.tbl_or.((t1 * 3) + t2) in
        let dep lo hi c =
          lo := !lo lor ((1 - (c land 1)) lsl k);
          hi := !hi lor (((c + 1) lsr 1) lsl k)
        in
        dep lo_axb hi_axb axb;
        dep lo_out hi_out out;
        dep lo_t1 hi_t1 t1;
        dep lo_t2 hi_t2 t2;
        dep lo_co hi_co co;
        cc := co
      done;
      store t d_axb !lo_axb !hi_axb;
      store t d_out !lo_out !hi_out;
      store t d_t1 !lo_t1 !hi_t1;
      store t d_t2 !lo_t2 !hi_t2;
      store t d_cout !lo_co !hi_co
    end
  end

(* Drain pending instructions in topological order.  Every reader of a
   chunk sits strictly later in the program, so one forward sweep
   settles everything. *)
let eval t =
  let pend = t.pend in
  let nw = Array.length pend in
  let counting = Obs.enabled () in
  let execs = ref 0 in
  for wi = 0 to nw - 1 do
    while Array.unsafe_get pend wi <> 0 do
      let w = Array.unsafe_get pend wi in
      let b = w land (0 - w) in
      Array.unsafe_set pend wi (w lxor b);
      let i = (wi * 63) + ntz b in
      exec t i;
      if counting then incr execs
    done
  done;
  if counting then begin
    Obs.Metrics.add m_instr_execs !execs;
    Obs.Metrics.incr m_settles;
    Obs.Metrics.observe h_active !execs
  end

let clear_pending t = Array.fill t.pend 0 (Array.length t.pend) 0

let clear_touched t =
  t.touched_len <- 0;
  Bytes.fill t.in_touched 0 (Bytes.length t.in_touched) '\000'

let reset t =
  clear_pending t;
  clear_touched t;
  let p = t.p in
  for k = 0 to Array.length p.rs_chunk - 1 do
    let c = p.rs_chunk.(k) in
    t.lo.(c) <- p.rs_lo.(k);
    t.hi.(c) <- p.rs_hi.(k)
  done;
  (* full unconditional sweep, then forget the bookkeeping it caused *)
  for i = 0 to p.ninstr - 1 do
    exec t i
  done;
  clear_pending t;
  clear_touched t;
  Array.blit t.lo 0 t.prev_lo 0 p.nchunks;
  Array.blit t.hi 0 t.prev_hi 0 p.nchunks;
  t.committed <- 0;
  t.full_commit <- true

(* ---------- values ---------- *)

let value_code t g = code_loc t (loc_pack t.p.g_chunk.(g) t.p.g_bit.(g))
let value t g = Bit.of_int_exn (value_code t g)

let write_bit t g bit =
  let c = t.p.g_chunk.(g) and b = t.p.g_bit.(g) in
  let nlo, nhi =
    match bit with Bit.Zero -> (1, 0) | Bit.One -> (0, 1) | Bit.X -> (1, 1)
  in
  let olo = (t.lo.(c) lsr b) land 1 and ohi = (t.hi.(c) lsr b) land 1 in
  if olo <> nlo || ohi <> nhi then begin
    let m = lnot (1 lsl b) in
    t.lo.(c) <- t.lo.(c) land m lor (nlo lsl b);
    t.hi.(c) <- t.hi.(c) land m lor (nhi lsl b);
    mark_touched t c;
    schedule_delta t c (1 lsl b)
  end

let set_gate t g bit =
  (match t.net.Netlist.gates.(g).op with
  | Gate.Input -> ()
  | op ->
    invalid_arg
      (Printf.sprintf "Compile.set_gate: gate %d is %s, not an input" g
         (Gate.op_name op)));
  write_bit t g bit

(* Drive a whole input port from an int in one word store when its
   gates share a chunk (the common case: consecutive input-port bits
   are packed together at compile time).  Only the first id's op is
   checked; callers pass input-port id vectors. *)
let set_gates_int t (ids : int array) v =
  let n = Array.length ids in
  if n > 0 then begin
    (match t.net.Netlist.gates.(ids.(0)).op with
    | Gate.Input -> ()
    | op ->
      invalid_arg
        (Printf.sprintf "Compile.set_gates_int: gate %d is %s, not an input"
           ids.(0) (Gate.op_name op)));
    let p = t.p in
    let c = p.g_chunk.(ids.(0)) and b0 = p.g_bit.(ids.(0)) in
    let aligned = ref (n <= max_w) in
    for i = 1 to n - 1 do
      if p.g_chunk.(ids.(i)) <> c || p.g_bit.(ids.(i)) <> b0 + i then
        aligned := false
    done;
    if !aligned then begin
      let mask = ((1 lsl n) - 1) lsl b0 in
      let hibits = (v lsl b0) land mask in
      let lobits = mask land lnot hibits in
      let keep = lnot mask in
      store t c
        ((t.lo.(c) land keep) lor lobits)
        ((t.hi.(c) land keep) lor hibits)
    end
    else
      Array.iteri
        (fun i id ->
          write_bit t id (if (v lsr i) land 1 = 1 then Bit.One else Bit.Zero))
        ids
  end

(* Int readback of a gate-id vector; [None] if any bit is X.  One word
   extract when the ids are consecutive bits of a chunk. *)
let read_ids_int t (ids : int array) =
  let n = Array.length ids in
  if n = 0 then Some 0
  else begin
    let p = t.p in
    let c = p.g_chunk.(ids.(0)) and b0 = p.g_bit.(ids.(0)) in
    let aligned = ref (b0 + n <= max_w) in
    for i = 1 to n - 1 do
      if p.g_chunk.(ids.(i)) <> c || p.g_bit.(ids.(i)) <> b0 + i then
        aligned := false
    done;
    if !aligned then begin
      let mask = (1 lsl n) - 1 in
      let lo = (t.lo.(c) lsr b0) land mask
      and hi = (t.hi.(c) lsr b0) land mask in
      if lo land hi <> 0 then None else Some hi
    end
    else begin
      let v = ref 0 and known = ref true in
      Array.iteri
        (fun i id ->
          let cd = value_code t id in
          if cd > 1 then known := false else v := !v lor (cd lsl i))
        ids;
      if !known then Some !v else None
    end
  end

let find_port t name = Netlist.find_input t.net name

let set_input t name (v : Bvec.t) =
  let ids = find_port t name in
  if Array.length ids <> Bvec.width v then
    invalid_arg (Printf.sprintf "Compile.set_input %s: width mismatch" name);
  Array.iteri (fun i id -> set_gate t id v.(i)) ids

let set_input_int t name n =
  let ids = find_port t name in
  set_input t name (Bvec.of_int ~width:(Array.length ids) n)

let set_input_x t name =
  Array.iter (fun id -> set_gate t id Bit.X) (find_port t name)

let set_all_inputs_x t =
  List.iter (fun (name, _) -> set_input_x t name) t.net.Netlist.input_ports

let read t name = Array.map (fun id -> value t id) (Netlist.find_name t.net name)
let read_int t name = Bvec.to_int (read t name)

(* ---------- clock edge ---------- *)

let step t =
  let p = t.p in
  let n = Array.length p.dc_chunk in
  for i = 0 to n - 1 do
    load_rec t p.dc_src.(i) p.dc_mask.(i);
    t.dff_next_lo.(i) <- t.sc_lo;
    t.dff_next_hi.(i) <- t.sc_hi
  done;
  for i = 0 to n - 1 do
    store t p.dc_chunk.(i) t.dff_next_lo.(i) t.dff_next_hi.(i)
  done;
  eval t

(* ---------- per-cycle activity ---------- *)

(* bit-sliced increment: add the changed mask into the counter planes *)
let add_toggles t c m =
  let base = c * planes in
  let carry = ref m and i = ref 0 in
  while !carry <> 0 && !i < planes do
    let idx = base + !i in
    let p = Array.unsafe_get t.tplanes idx in
    Array.unsafe_set t.tplanes idx (p lxor !carry);
    carry := p land !carry;
    incr i
  done

let commit_chunk t c =
  let cl = Array.unsafe_get t.lo c and ch = Array.unsafe_get t.hi c in
  let changed =
    cl lxor Array.unsafe_get t.prev_lo c
    lor (ch lxor Array.unsafe_get t.prev_hi c)
  in
  if changed <> 0 then begin
    add_toggles t c changed;
    Array.unsafe_set t.prev_lo c cl;
    Array.unsafe_set t.prev_hi c ch
  end;
  let target =
    (changed lor (cl land ch)) land lnot (Array.unsafe_get t.poss_w c)
  in
  if target <> 0 then begin
    Array.unsafe_set t.poss_w c (Array.unsafe_get t.poss_w c lor target);
    let gx = Array.unsafe_get t.p.ch_gidx c in
    let m = ref target in
    while !m <> 0 do
      let bbit = !m land (0 - !m) in
      let g = Array.unsafe_get t.p.gid_tbl (gx + ntz bbit) in
      Bytes.unsafe_set t.possibly g '\001';
      (match t.on_first_possibly with None -> () | Some f -> f g);
      m := !m lxor bbit
    done
  end

let commit_cycle t =
  if t.full_commit then begin
    for c = 0 to t.p.nchunks - 1 do
      commit_chunk t c
    done;
    t.full_commit <- false
  end
  else
    for k = 0 to t.touched_len - 1 do
      commit_chunk t (Array.unsafe_get t.touched k)
    done;
  clear_touched t;
  t.committed <- t.committed + 1;
  if Obs.enabled () then Obs.Metrics.incr m_cycles

let cycles_committed t = t.committed

let toggle_counts t =
  let arr = Array.make (max t.p.ng 1) 0 in
  for c = 0 to t.p.nchunks - 1 do
    let gx = t.p.ch_gidx.(c) in
    let base = c * planes in
    for i = 0 to planes - 1 do
      let w = ref t.tplanes.(base + i) in
      while !w <> 0 do
        let b = !w land (0 - !w) in
        let g = t.p.gid_tbl.(gx + ntz b) in
        arr.(g) <- arr.(g) + (1 lsl i);
        w := !w lxor b
      done
    done
  done;
  arr

let possibly_toggled t =
  Array.init t.p.ng (fun i -> Bytes.get t.possibly i <> '\000')

let merge_possibly_toggled_into t (acc : bool array) =
  for i = 0 to t.p.ng - 1 do
    if Bytes.unsafe_get t.possibly i <> '\000' then acc.(i) <- true
  done

let clear_activity t =
  Array.fill t.tplanes 0 (Array.length t.tplanes) 0;
  Bytes.fill t.possibly 0 (Bytes.length t.possibly) '\000';
  Array.fill t.poss_w 0 (Array.length t.poss_w) 0;
  Array.blit t.lo 0 t.prev_lo 0 t.p.nchunks;
  Array.blit t.hi 0 t.prev_hi 0 t.p.nchunks;
  t.committed <- 0;
  clear_touched t;
  t.full_commit <- true

let set_first_possibly_hook t f = t.on_first_possibly <- f

let sync_prev t =
  Array.blit t.lo 0 t.prev_lo 0 t.p.nchunks;
  Array.blit t.hi 0 t.prev_hi 0 t.p.nchunks

let snapshot_values t = Array.init t.p.ng (fun i -> value t i)

(* ---------- sequential state ---------- *)

let dff_ids t = Array.copy t.p.dff_ids
let dff_state t = Array.map (fun id -> value t id) t.p.dff_ids

let restore_dff_state t (s : Bvec.t) =
  if Bvec.width s <> Array.length t.p.dff_ids then
    invalid_arg "Compile.restore_dff_state: width mismatch";
  Array.iteri (fun i id -> write_bit t id s.(i)) t.p.dff_ids;
  eval t
