(** Bit-parallel packed gate-level simulator: up to 63 independent
    concrete simulations ("lanes") of the same netlist evaluated at
    once.

    Lane values are ternary, encoded dual-rail across two native-int
    words per gate: rail [lo] carries "can be 0", rail [hi] "can be 1"
    (X = both).  Gate functions are whole-word boolean operations with
    exact Kleene semantics per lane, so each lane behaves bit-for-bit
    like a scalar {!Engine} run — the packed profiling path relies on
    this and [test_engine_equiv] enforces it.

    The evaluation core is the same dirty-queue levelized sweep as the
    event-driven {!Engine}: only the fanout of gates whose packed word
    actually changed is re-evaluated, and per-cycle activity commits
    walk the touched list only. *)

module Bit := Bespoke_logic.Bit
module Bvec := Bespoke_logic.Bvec
module Netlist := Bespoke_netlist.Netlist

type t

val max_lanes : int
(** 63: native ints carry 63 usable bits. *)

val create : ?lanes:int -> Netlist.t -> t
(** [lanes] defaults to {!max_lanes}; must be within [1..max_lanes]. *)

val lanes : t -> int
val netlist : t -> Netlist.t

val reset : t -> unit
(** DFFs to reset values and inputs to X in every lane, full settle,
    activity baseline re-initialized.  Also discards any partially
    propagated event state. *)

(** {1 Values} *)

val value_lane : t -> int -> int -> Bit.t
(** [value_lane t gate lane]. *)

val set_gate_packed : t -> int -> lo:int -> hi:int -> unit
(** Raw dual-rail write of an [Input] gate (lane bits beyond the lane
    count are masked off). *)

val set_gate_lane : t -> int -> int -> Bit.t -> unit
(** [set_gate_lane t gate lane b]: update one lane of an input. *)

val set_input_lanes : t -> string -> Bvec.t array -> unit
(** Per-lane values for a whole input port; lanes beyond the array are
    set to X. *)

val set_input_uniform : t -> string -> Bvec.t -> unit
(** Same value in every lane. *)

val read_lane : t -> string -> int -> Bvec.t
val read_lane_int : t -> string -> int -> int option

(** {1 Evaluation} *)

val eval : t -> unit
(** Drain the dirty queue (event-driven settle). *)

val step : t -> unit
(** Clock edge in every lane: latch DFF words, then settle. *)

(** {1 Per-cycle activity} *)

val commit_cycle : ?active:int -> t -> unit
(** Commit the settled cycle.  [active] is a lane bitmask (default
    all): only active lanes are charged toggles / possibly-toggled
    marks, so lanes whose simulation has ended (halted CPU) stop
    accumulating activity exactly like a scalar run that has stopped.
    Lanes must leave the active set monotonically. *)

val set_cycle_hook : t -> (int -> unit) option -> unit
(** Probe hook: [f n] is called at the end of every {!commit_cycle}
    with the new committed count [n].  Zero cost when unset (cf.
    {!Engine.set_cycle_hook}). *)

val cycles_committed : t -> int
val toggle_counts_lane : t -> int -> int array
val possibly_toggled_lane : t -> int -> bool array

val sync_prev : t -> unit
(** Make current values the activity baseline without charging
    toggles (cf. {!Engine.sync_prev}). *)
