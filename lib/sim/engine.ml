module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Obs = Bespoke_obs.Obs

(* Telemetry (all no-ops unless Obs is enabled): total gate
   re-evaluations, settle sweeps, and the dirty-set size drained per
   settle.  Counting is accumulated locally and flushed once per
   settle so the disabled-path cost is one flag check per sweep. *)
let m_gate_evals = Obs.Metrics.counter "sim.gate_evals"
let m_settles = Obs.Metrics.counter "sim.settle_iterations"
let h_dirty = Obs.Metrics.histogram "sim.dirty_set_size"

(* Compiled opcodes for the inner evaluation loop. *)
let op_buf = 0

and op_not = 1

and op_and = 2

and op_or = 3

and op_nand = 4

and op_nor = 5

and op_xor = 6

and op_xnor = 7

and op_mux = 8

type mode = Full | Event | Compiled

type t = {
  comp : Compile.t option;
      (* [Compiled] mode: every operation delegates to the compiled
         word-level engine (see the dispatch block at the end) *)
  net : Netlist.t;
  mode : mode;
  order : int array;  (* levelized combinational order *)
  opcode : int array;
  fi0 : int array;
  fi1 : int array;
  fi2 : int array;
  values : Bytes.t;  (* current settled value per gate, codes 0/1/2 *)
  prev : Bytes.t;  (* settled value at the last committed cycle *)
  dffs : int array;
  dff_next : Bytes.t;  (* scratch for the clock edge *)
  toggles : int array;
  possibly : Bytes.t;  (* 0/1 flags *)
  mutable committed : int;
  topo_index : int array;  (* position of each gate in [order], -1 for sources *)
  (* -- event-driven machinery (Event mode only) -- *)
  level : int array;  (* combinational depth; sources are level 0 *)
  fan_start : int array;  (* CSR fanout over combinational readers *)
  fan : int array;
  lvl_stack : int array array;  (* pending dirty gates, bucketed by level *)
  lvl_len : int array;
  on_queue : Bytes.t;  (* gate already scheduled for re-evaluation *)
  touched : int array;  (* gates written-with-change since last commit *)
  mutable touched_len : int;
  in_touched : Bytes.t;
  mutable full_commit : bool;
      (* next [commit_cycle] must scan every gate (after create/reset/
         clear_activity, when the touched list does not yet cover all
         possibly-X gates) *)
  mutable on_first_possibly : (int -> unit) option;
      (* provenance hook: called once per gate, when it is first
         marked possibly-toggled *)
  mutable on_cycle : (int -> unit) option;
      (* probe hook: called after every [commit_cycle] with the new
         committed count, in every mode (guard shadow watchers) *)
}

type cone = int array  (* gate ids in topological order, excluding sources *)

let code_of_bit = Bit.to_int
let bit_of_code = Bit.of_int_exn

let create_compiled net mode =
  {
    comp = Some (Compile.create net);
    net;
    mode;
    order = [||];
    opcode = [||];
    fi0 = [||];
    fi1 = [||];
    fi2 = [||];
    values = Bytes.empty;
    prev = Bytes.empty;
    dffs = [||];
    dff_next = Bytes.empty;
    toggles = [||];
    possibly = Bytes.empty;
    committed = 0;
    topo_index = [||];
    level = [||];
    fan_start = [||];
    fan = [||];
    lvl_stack = [||];
    lvl_len = [||];
    on_queue = Bytes.empty;
    touched = [||];
    touched_len = 0;
    in_touched = Bytes.empty;
    full_commit = true;
    on_first_possibly = None;
    on_cycle = None;
  }

let create ?(mode = Event) net =
  if mode = Compiled then create_compiled net mode
  else
  let ng = Netlist.gate_count net in
  let order = Netlist.levelize net in
  let opcode = Array.make ng (-1) in
  let fi0 = Array.make ng 0 in
  let fi1 = Array.make ng 0 in
  let fi2 = Array.make ng 0 in
  let dffs = ref [] in
  Array.iteri
    (fun id (g : Gate.t) ->
      (match g.op with
      | Gate.Dff _ ->
        dffs := id :: !dffs;
        (* [step] reads the D pin through fi0 even though DFFs are
           sources for levelization purposes. *)
        fi0.(id) <- g.fanin.(0)
      | _ -> ());
      let set c =
        opcode.(id) <- c;
        (match Array.length g.fanin with
        | 0 -> ()
        | 1 -> fi0.(id) <- g.fanin.(0)
        | 2 ->
          fi0.(id) <- g.fanin.(0);
          fi1.(id) <- g.fanin.(1)
        | _ ->
          fi0.(id) <- g.fanin.(0);
          fi1.(id) <- g.fanin.(1);
          fi2.(id) <- g.fanin.(2))
      in
      match g.op with
      | Gate.Const _ | Gate.Input | Gate.Dff _ -> ()
      | Gate.Buf -> set op_buf
      | Gate.Not -> set op_not
      | Gate.And -> set op_and
      | Gate.Or -> set op_or
      | Gate.Nand -> set op_nand
      | Gate.Nor -> set op_nor
      | Gate.Xor -> set op_xor
      | Gate.Xnor -> set op_xnor
      | Gate.Mux -> set op_mux)
    net.Netlist.gates;
  let topo_index = Array.make ng (-1) in
  Array.iteri (fun pos id -> topo_index.(id) <- pos) order;
  let dffs = Array.of_list (List.rev !dffs) in
  (* Combinational depth: used to drain the dirty queue level by level
     so each gate is re-evaluated at most once per settle. *)
  let level = Array.make ng 0 in
  Array.iter
    (fun id ->
      let g = net.Netlist.gates.(id) in
      let m = ref 0 in
      Array.iter
        (fun f -> if level.(f) >= !m then m := level.(f))
        g.fanin;
      level.(id) <- !m + 1)
    order;
  let nlevels =
    1 + Array.fold_left (fun acc l -> if l > acc then l else acc) 0 level
  in
  (* CSR fanout restricted to combinational readers: only they need
     re-evaluation when a driver changes (DFFs sample their D pin at
     the clock edge, directly). *)
  let counts = Array.make ng 0 in
  Array.iter
    (fun (g : Gate.t) ->
      if not (Gate.is_source g) then
        Array.iter (fun f -> counts.(f) <- counts.(f) + 1) g.fanin)
    net.Netlist.gates;
  let fan_start = Array.make (ng + 1) 0 in
  for i = 0 to ng - 1 do
    fan_start.(i + 1) <- fan_start.(i) + counts.(i)
  done;
  let fan = Array.make fan_start.(ng) 0 in
  let fill = Array.make ng 0 in
  Array.iteri
    (fun id (g : Gate.t) ->
      if not (Gate.is_source g) then
        Array.iter
          (fun f ->
            fan.(fan_start.(f) + fill.(f)) <- id;
            fill.(f) <- fill.(f) + 1)
          g.fanin)
    net.Netlist.gates;
  let per_level = Array.make nlevels 0 in
  Array.iter (fun id -> per_level.(level.(id)) <- per_level.(level.(id)) + 1) order;
  let t =
    {
      comp = None;
      net;
      mode;
      order;
      opcode;
      fi0;
      fi1;
      fi2;
      values = Bytes.make ng (Char.chr Bit.code_x);
      prev = Bytes.make ng (Char.chr Bit.code_x);
      dffs;
      dff_next = Bytes.make (Array.length dffs) '\000';
      toggles = Array.make ng 0;
      possibly = Bytes.make ng '\000';
      committed = 0;
      topo_index;
      level;
      fan_start;
      fan;
      lvl_stack = Array.map (fun n -> Array.make (max n 1) 0) per_level;
      lvl_len = Array.make nlevels 0;
      on_queue = Bytes.make ng '\000';
      touched = Array.make ng 0;
      touched_len = 0;
      in_touched = Bytes.make ng '\000';
      full_commit = true;
      on_first_possibly = None;
      on_cycle = None;
    }
  in
  (* Nothing is settled yet: schedule every combinational gate so the
     first [eval] is a complete sweep even in Event mode. *)
  Array.iter
    (fun id ->
      let l = t.level.(id) in
      t.lvl_stack.(l).(t.lvl_len.(l)) <- id;
      t.lvl_len.(l) <- t.lvl_len.(l) + 1;
      Bytes.unsafe_set t.on_queue id '\001')
    order;
  t

let netlist t = t.net
let mode t = t.mode
let get t id = Char.code (Bytes.unsafe_get t.values id)
let put t id c = Bytes.unsafe_set t.values id (Char.unsafe_chr c)
let value t id = bit_of_code (get t id)

let mark_touched t id =
  if Bytes.unsafe_get t.in_touched id = '\000' then begin
    Bytes.unsafe_set t.in_touched id '\001';
    t.touched.(t.touched_len) <- id;
    t.touched_len <- t.touched_len + 1
  end

let schedule_readers t id =
  let lo = t.fan_start.(id) and hi = t.fan_start.(id + 1) in
  for k = lo to hi - 1 do
    let r = Array.unsafe_get t.fan k in
    if Bytes.unsafe_get t.on_queue r = '\000' then begin
      Bytes.unsafe_set t.on_queue r '\001';
      let l = Array.unsafe_get t.level r in
      t.lvl_stack.(l).(t.lvl_len.(l)) <- r;
      t.lvl_len.(l) <- t.lvl_len.(l) + 1
    end
  done

(* Write a value; in Event mode, track the change and wake the fanout. *)
let write t id c =
  if t.mode = Full then put t id c
  else if get t id <> c then begin
    put t id c;
    mark_touched t id;
    schedule_readers t id
  end

let compute t id =
  let c = t.opcode.(id) in
  let a = get t t.fi0.(id) in
  if c = op_buf then a
  else if c = op_not then Bit.tbl_not.(a)
  else
    let b = get t t.fi1.(id) in
    if c = op_and then Bit.tbl_and.((a * 3) + b)
    else if c = op_or then Bit.tbl_or.((a * 3) + b)
    else if c = op_nand then Bit.tbl_nand.((a * 3) + b)
    else if c = op_nor then Bit.tbl_nor.((a * 3) + b)
    else if c = op_xor then Bit.tbl_xor.((a * 3) + b)
    else if c = op_xnor then Bit.tbl_xnor.((a * 3) + b)
    else
      let s = get t t.fi2.(id) in
      Bit.tbl_mux.((a * 9) + (b * 3) + s)

let eval_one t id = put t id (compute t id)

(* Mux fanin layout is [sel; a; b]: fi0 = sel, fi1 = a, fi2 = b, so the
   table index must be sel*9 + a*3 + b. *)

let eval_full t =
  let order = t.order in
  for k = 0 to Array.length order - 1 do
    eval_one t order.(k)
  done;
  if Obs.enabled () then begin
    Obs.Metrics.add m_gate_evals (Array.length order);
    Obs.Metrics.incr m_settles;
    Obs.Metrics.observe h_dirty (Array.length order)
  end

(* Drain the dirty queue in increasing level order.  A gate's readers
   are always at strictly higher levels, so each scheduled gate is
   visited exactly once per settle, after all its fanin writes. *)
let flush_dirty t =
  let counting = Obs.enabled () in
  let drained = ref 0 in
  let nl = Array.length t.lvl_len in
  for l = 1 to nl - 1 do
    let stack = t.lvl_stack.(l) in
    (* the stack at this level cannot grow while it drains *)
    let n = t.lvl_len.(l) in
    if counting then drained := !drained + n;
    for k = 0 to n - 1 do
      let id = Array.unsafe_get stack k in
      Bytes.unsafe_set t.on_queue id '\000';
      let r = compute t id in
      if get t id <> r then begin
        put t id r;
        mark_touched t id;
        schedule_readers t id
      end
    done;
    t.lvl_len.(l) <- 0
  done;
  if counting then begin
    Obs.Metrics.add m_gate_evals !drained;
    Obs.Metrics.incr m_settles;
    Obs.Metrics.observe h_dirty !drained
  end

let eval t =
  match t.mode with Full -> eval_full t | Event | Compiled -> flush_dirty t

let make_cone t (sources : int array) =
  let ng = Netlist.gate_count t.net in
  let fanout = Netlist.fanout t.net in
  let in_cone = Array.make ng false in
  let stack = Stack.create () in
  Array.iter
    (fun id ->
      Array.iter
        (fun r ->
          if (not in_cone.(r)) && not (Gate.is_source t.net.Netlist.gates.(r))
          then begin
            in_cone.(r) <- true;
            Stack.push r stack
          end)
        fanout.(id))
    sources;
  while not (Stack.is_empty stack) do
    let id = Stack.pop stack in
    Array.iter
      (fun r ->
        if (not in_cone.(r)) && not (Gate.is_source t.net.Netlist.gates.(r))
        then begin
          in_cone.(r) <- true;
          Stack.push r stack
        end)
      fanout.(id)
  done;
  let members = ref [] in
  Array.iteri (fun id b -> if b then members := id :: !members) in_cone;
  let cone = Array.of_list !members in
  Array.sort (fun a b -> Int.compare t.topo_index.(a) t.topo_index.(b)) cone;
  cone

let eval_cone t (cone : cone) =
  match t.mode with
  | Event | Compiled ->
    (* dirty propagation subsumes the precomputed cone *)
    flush_dirty t
  | Full ->
    for k = 0 to Array.length cone - 1 do
      eval_one t cone.(k)
    done

let set_gate t id b =
  (match t.net.Netlist.gates.(id).op with
  | Gate.Input -> ()
  | op ->
    invalid_arg
      (Printf.sprintf "Engine.set_gate: gate %d is %s, not an input" id
         (Gate.op_name op)));
  write t id (code_of_bit b)

let find_port t name = Netlist.find_input t.net name

let set_input t name (v : Bvec.t) =
  let ids = find_port t name in
  if Array.length ids <> Bvec.width v then
    invalid_arg (Printf.sprintf "Engine.set_input %s: width mismatch" name);
  Array.iteri (fun i id -> set_gate t id v.(i)) ids

let set_input_int t name n =
  let ids = find_port t name in
  set_input t name (Bvec.of_int ~width:(Array.length ids) n)

let set_input_x t name =
  let ids = find_port t name in
  Array.iter (fun id -> set_gate t id Bit.X) ids

let set_all_inputs_x t =
  List.iter (fun (name, _) -> set_input_x t name) t.net.Netlist.input_ports

let read t name =
  let ids = Netlist.find_name t.net name in
  Array.map (fun id -> value t id) ids

let read_int t name = Bvec.to_int (read t name)

let clear_dirty t =
  Array.fill t.lvl_len 0 (Array.length t.lvl_len) 0;
  Bytes.fill t.on_queue 0 (Bytes.length t.on_queue) '\000'

let clear_touched t =
  t.touched_len <- 0;
  Bytes.fill t.in_touched 0 (Bytes.length t.in_touched) '\000'

let reset t =
  (* Discard any partially propagated state: pending dirty entries and
     the touched list describe a world that no longer exists after the
     sources are forced back to their reset values. *)
  clear_dirty t;
  clear_touched t;
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.op with
      | Gate.Const b -> put t id (code_of_bit b)
      | Gate.Input -> put t id Bit.code_x
      | Gate.Dff init -> put t id (code_of_bit init)
      | _ -> ())
    t.net.Netlist.gates;
  eval_full t;
  Bytes.blit t.values 0 t.prev 0 (Bytes.length t.values);
  t.committed <- 0;
  t.full_commit <- true

let step t =
  let dffs = t.dffs in
  for i = 0 to Array.length dffs - 1 do
    let id = dffs.(i) in
    Bytes.unsafe_set t.dff_next i
      (Char.unsafe_chr (get t t.fi0.(id)))
  done;
  for i = 0 to Array.length dffs - 1 do
    write t dffs.(i) (Char.code (Bytes.unsafe_get t.dff_next i))
  done;
  eval t

let commit_one t id =
  let cur = Char.code (Bytes.unsafe_get t.values id) in
  let old = Char.code (Bytes.unsafe_get t.prev id) in
  if cur <> old then t.toggles.(id) <- t.toggles.(id) + 1;
  if
    (cur <> old || cur = Bit.code_x)
    && Bytes.unsafe_get t.possibly id = '\000'
  then begin
    Bytes.unsafe_set t.possibly id '\001';
    match t.on_first_possibly with None -> () | Some f -> f id
  end

let set_first_possibly_hook t f = t.on_first_possibly <- f

let commit_cycle t =
  let ng = Bytes.length t.values in
  if t.mode = Full || t.full_commit then begin
    for id = 0 to ng - 1 do
      commit_one t id
    done;
    Bytes.blit t.values 0 t.prev 0 ng;
    t.full_commit <- false
  end
  else begin
    (* Only touched gates can differ from [prev]; an untouched gate
       stuck at X was already X (and hence marked possibly-toggled) at
       the previous commit, so scanning the touched list is exact. *)
    for k = 0 to t.touched_len - 1 do
      let id = Array.unsafe_get t.touched k in
      commit_one t id;
      Bytes.unsafe_set t.prev id (Bytes.unsafe_get t.values id)
    done
  end;
  clear_touched t;
  t.committed <- t.committed + 1;
  match t.on_cycle with None -> () | Some f -> f t.committed

let cycles_committed t = t.committed
let toggle_counts t = Array.copy t.toggles

let possibly_toggled t =
  Array.init (Bytes.length t.possibly) (fun i ->
      Bytes.get t.possibly i <> '\000')

let merge_possibly_toggled_into t (acc : bool array) =
  for i = 0 to Bytes.length t.possibly - 1 do
    if Bytes.unsafe_get t.possibly i <> '\000' then acc.(i) <- true
  done

let clear_activity t =
  Array.fill t.toggles 0 (Array.length t.toggles) 0;
  Bytes.fill t.possibly 0 (Bytes.length t.possibly) '\000';
  Bytes.blit t.values 0 t.prev 0 (Bytes.length t.values);
  t.committed <- 0;
  clear_touched t;
  (* the possibly flags were wiped: currently-X gates must be re-marked
     at the next commit even if they never change again *)
  t.full_commit <- true

let sync_prev t = Bytes.blit t.values 0 t.prev 0 (Bytes.length t.values)

let snapshot_values t =
  Array.init (Bytes.length t.values) (fun i -> bit_of_code (get t i))

let dff_ids t = Array.copy t.dffs
let dff_state t = Array.map (fun id -> value t id) t.dffs

let restore_dff_state t (s : Bvec.t) =
  if Bvec.width s <> Array.length t.dffs then
    invalid_arg "Engine.restore_dff_state: width mismatch";
  Array.iteri (fun i id -> write t id (code_of_bit s.(i))) t.dffs;
  eval t

(* ---------------------------------------------------------------- *)
(* Compiled-mode dispatch.  The shadowing definitions below route
   every public operation to the word-level compiled engine when the
   instance was created with [~mode:Compiled]; the scalar bodies bound
   above keep referring to each other directly, so Full/Event pay one
   option check per public call and nothing else. *)

let reset t = match t.comp with Some c -> Compile.reset c | None -> reset t
let value t id = match t.comp with Some c -> Compile.value c id | None -> value t id

let value_code t id =
  match t.comp with Some c -> Compile.value_code c id | None -> get t id

let read_int_ids t (ids : int array) =
  match t.comp with
  | Some c -> Compile.read_ids_int c ids
  | None ->
    let v = ref 0 and known = ref true in
    Array.iteri
      (fun i id ->
        let cd = get t id in
        if cd > 1 then known := false else v := !v lor (cd lsl i))
      ids;
    if !known then Some !v else None

let set_gate t id b =
  match t.comp with Some c -> Compile.set_gate c id b | None -> set_gate t id b

let set_gates_int t (ids : int array) v =
  match t.comp with
  | Some c -> Compile.set_gates_int c ids v
  | None ->
    Array.iteri
      (fun i id ->
        set_gate t id (if (v lsr i) land 1 = 1 then Bit.One else Bit.Zero))
      ids

let read t name = match t.comp with Some c -> Compile.read c name | None -> read t name

let read_int t name =
  match t.comp with Some c -> Compile.read_int c name | None -> read_int t name

let set_input t name v =
  match t.comp with
  | Some c -> Compile.set_input c name v
  | None -> set_input t name v

let set_input_int t name n =
  match t.comp with
  | Some c -> Compile.set_input_int c name n
  | None -> set_input_int t name n

let set_input_x t name =
  match t.comp with
  | Some c -> Compile.set_input_x c name
  | None -> set_input_x t name

let set_all_inputs_x t =
  match t.comp with
  | Some c -> Compile.set_all_inputs_x c
  | None -> set_all_inputs_x t

let eval t = match t.comp with Some c -> Compile.eval c | None -> eval t

let make_cone t sources =
  match t.comp with
  | Some _ -> [||]  (* pending-instruction tracking subsumes cones *)
  | None -> make_cone t sources

let eval_cone t cone =
  match t.comp with Some c -> Compile.eval c | None -> eval_cone t cone

let step t = match t.comp with Some c -> Compile.step c | None -> step t

let commit_cycle t =
  match t.comp with
  | Some c -> (
      Compile.commit_cycle c;
      match t.on_cycle with
      | None -> ()
      | Some f -> f (Compile.cycles_committed c))
  | None -> commit_cycle t

let set_cycle_hook t f = t.on_cycle <- f

let cycles_committed t =
  match t.comp with
  | Some c -> Compile.cycles_committed c
  | None -> cycles_committed t

let toggle_counts t =
  match t.comp with Some c -> Compile.toggle_counts c | None -> toggle_counts t

let possibly_toggled t =
  match t.comp with
  | Some c -> Compile.possibly_toggled c
  | None -> possibly_toggled t

let merge_possibly_toggled_into t acc =
  match t.comp with
  | Some c -> Compile.merge_possibly_toggled_into c acc
  | None -> merge_possibly_toggled_into t acc

let clear_activity t =
  match t.comp with
  | Some c -> Compile.clear_activity c
  | None -> clear_activity t

let set_first_possibly_hook t f =
  match t.comp with
  | Some c -> Compile.set_first_possibly_hook c f
  | None -> set_first_possibly_hook t f

let sync_prev t =
  match t.comp with Some c -> Compile.sync_prev c | None -> sync_prev t

let snapshot_values t =
  match t.comp with
  | Some c -> Compile.snapshot_values c
  | None -> snapshot_values t

let dff_ids t =
  match t.comp with Some c -> Compile.dff_ids c | None -> dff_ids t

let dff_state t =
  match t.comp with Some c -> Compile.dff_state c | None -> dff_state t

let restore_dff_state t s =
  match t.comp with
  | Some c -> Compile.restore_dff_state c s
  | None -> restore_dff_state t s

let compile_stats t = Option.map Compile.stats t.comp
