(** Levelized three-valued gate-level simulator.

    One engine instance simulates one netlist.  Values are ternary
    ({0,1,X}); running it with fully known inputs makes it an exact
    two-valued simulator, running it with X inputs makes it the
    symbolic simulator of the paper's Section 3.1.

    Protocol per clock cycle:
    {ol {- [step] latches every DFF's sampled next-state and
           re-evaluates combinational logic;}
        {- the harness sets input ports (memory read data, interrupt
           pins, ...) and calls [eval] or [eval_cone] to settle;}
        {- the harness samples outputs (memory write ports, ...);}
        {- [commit_cycle] records per-gate activity for this cycle.}} *)

module Bit := Bespoke_logic.Bit
module Bvec := Bespoke_logic.Bvec
module Netlist := Bespoke_netlist.Netlist

type t

type mode =
  | Full  (** re-evaluate the whole levelized order on every settle *)
  | Event
      (** event-driven: propagate only through the fanout of gates
          whose output actually changed (dirty-queue levelized sweep),
          and commit activity for touched gates only.  Produces
          bit-identical values, toggle counts and possibly-toggled
          flags to [Full] — enforced by [test_engine_equiv]. *)
  | Compiled
      (** word-level compiled evaluation (see {!Compile}): the netlist
          is lowered once into a flat instruction program over native
          63-bit words (vector ops, recovered integer adders, packed
          registers) and memoized by design hash.  Values, toggle
          counts and possibly-toggled flags are bit-identical to the
          other modes — enforced by [test_compile_equiv]. *)

val create : ?mode:mode -> Netlist.t -> t
(** [mode] defaults to [Event]. *)

val mode : t -> mode
val netlist : t -> Netlist.t

val reset : t -> unit
(** DFFs to their reset values, inputs to X, combinational settle, and
    activity baseline re-initialized. *)

(** {1 Values} *)

val value : t -> int -> Bit.t

val value_code : t -> int -> int
(** [value] as its integer code (0/1/2=X), allocation-free. *)

val read_int_ids : t -> int array -> int option
(** Integer value of the given gate bits (LSB first), [None] if any
    bit is X.  Allocation-free; callers that probe the same signal
    every cycle should resolve its ids once and use this instead of
    {!read_int}. *)

val set_gate : t -> int -> Bit.t -> unit
(** Only valid on [Input] gates. *)

val set_gates_int : t -> int array -> int -> unit
(** Drive input gate [ids.(i)] to bit [i] of the int (LSB first).
    Only valid on [Input] gates; in compiled mode a chunk-aligned port
    is driven with a single word store. *)

val read : t -> string -> Bvec.t
(** Read a named net, output port or input port. *)

val read_int : t -> string -> int option
val set_input : t -> string -> Bvec.t -> unit
val set_input_int : t -> string -> int -> unit
val set_input_x : t -> string -> unit
val set_all_inputs_x : t -> unit

(** {1 Evaluation} *)

val eval : t -> unit
(** Settle all combinational logic.  In [Event] mode this drains the
    dirty queue (gates downstream of changed sources) instead of
    sweeping the full order; the settled values are identical. *)

type cone

val make_cone : t -> int array -> cone
(** Precompute the forward combinational cone of the given source
    gates (typically an input port's bits), for cheap incremental
    re-evaluation. *)

val eval_cone : t -> cone -> unit

val step : t -> unit
(** Clock edge: latch DFFs, then full [eval]. *)

(** {1 Per-cycle activity} *)

val commit_cycle : t -> unit
(** Compare every gate's settled value against the previous committed
    cycle; a gate is charged one toggle when the value changed, and is
    marked possibly-toggled when it changed {e or} is X (paper: an X
    propagating through a gate counts as a possible toggle). *)

val cycles_committed : t -> int
val toggle_counts : t -> int array
(** Concrete toggle counter per gate (X-involved changes also count). *)

val possibly_toggled : t -> bool array
(** The symbolic "exercisable" marking used by gate activity analysis. *)

val merge_possibly_toggled_into : t -> bool array -> unit
val clear_activity : t -> unit

val set_first_possibly_hook : t -> (int -> unit) option -> unit
(** Provenance hook: [f id] is called from {!commit_cycle} the first
    time gate [id] is marked possibly-toggled (once per gate until
    {!clear_activity}/{!reset}).  Costs one byte-compare per marking
    when unset.  Gate activity analysis uses it to attribute each
    gate's first toggle to an execution-tree node / cycle / PC. *)

val set_cycle_hook : t -> (int -> unit) option -> unit
(** Probe hook: [f n] is called at the end of every {!commit_cycle}
    with the new committed-cycle count [n], in every mode (including
    [Compiled]).  Zero cost when unset.  The guard shadow watcher uses
    it to check cut-boundary assumptions against live values. *)

val sync_prev : t -> unit
(** Make the current settled values the activity baseline without
    charging toggles.  Called after restoring an execution-tree
    snapshot, so the jump between unrelated simulation states is not
    itself counted as switching activity. *)

val snapshot_values : t -> Bespoke_logic.Bvec.t
(** Every gate's current settled value (for recording the constant
    values of never-toggled gates). *)

(** {1 Sequential state (for the execution-tree explorer)} *)

val dff_ids : t -> int array

val dff_state : t -> Bvec.t
(** Current DFF outputs, in [dff_ids] order. *)

val restore_dff_state : t -> Bvec.t -> unit
(** Overwrite DFF outputs and re-settle combinational logic.  Does not
    touch activity. *)

val compile_stats : t -> Compile.stats option
(** Program statistics when running in [Compiled] mode, [None]
    otherwise. *)
