module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec

type t = { store : Bytes.t; words : int; width : int }
type snapshot = Bytes.t

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~words ~width ~init =
  if not (is_pow2 words) then invalid_arg "Memory.create: words not a power of 2";
  { store = Bytes.make (words * width) (Char.chr (Bit.to_int init)); words; width }

let words t = t.words
let width t = t.width

let clear t b =
  Bytes.fill t.store 0 (Bytes.length t.store) (Char.chr (Bit.to_int b))

let get t w i = Bit.of_int_exn (Char.code (Bytes.get t.store ((w * t.width) + i)))
let put t w i b = Bytes.set t.store ((w * t.width) + i) (Char.chr (Bit.to_int b))

let load t w (v : Bvec.t) =
  if Bvec.width v <> t.width then invalid_arg "Memory.load: width mismatch";
  let w = w land (t.words - 1) in
  Array.iteri (fun i b -> put t w i b) v

let load_int t w n = load t w (Bvec.of_int ~width:t.width n)
let read_word t w = Array.init t.width (get t (w land (t.words - 1)))

let read_word_int t w =
  let w = w land (t.words - 1) in
  let base = w * t.width in
  let v = ref 0 and known = ref true in
  for i = t.width - 1 downto 0 do
    let c = Char.code (Bytes.unsafe_get t.store (base + i)) in
    if c > 1 then known := false else v := (!v lsl 1) lor c
  done;
  if !known then Some !v else None

let write_masked_int t w ~data ~mask =
  let w = w land (t.words - 1) in
  let base = w * t.width in
  for i = 0 to t.width - 1 do
    if (mask lsr i) land 1 = 1 then
      Bytes.unsafe_set t.store (base + i)
        (Char.unsafe_chr ((data lsr i) land 1))
  done

let set_x_range t ~lo ~hi =
  for w = lo to hi do
    for i = 0 to t.width - 1 do
      put t (w land (t.words - 1)) i Bit.X
    done
  done

(* Indices selectable by a ternary address (address wraps modulo the
   size, so only the low log2(words) bits matter). *)
let candidate_indices t (addr : Bvec.t) =
  let bits = ref [] in
  let idx_bits =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    log2 t.words
  in
  let base = ref 0 in
  let known = Bvec.width addr in
  for i = 0 to idx_bits - 1 do
    let b = if i < known then addr.(i) else Bit.Zero in
    match b with
    | Bit.Zero -> ()
    | Bit.One -> base := !base lor (1 lsl i)
    | Bit.X -> bits := i :: !bits
  done;
  (!base, !bits)

let all_indices t = List.init t.words (fun i -> i)

let expand t base free_bits =
  if List.length free_bits > 10 then all_indices t
  else
    List.fold_left
      (fun acc bit -> List.concat_map (fun w -> [ w; w lor (1 lsl bit) ]) acc)
      [ base ] free_bits

let read t (addr : Bvec.t) =
  let base, free = candidate_indices t addr in
  match free with
  | [] -> read_word t base
  | _ ->
    let idxs = expand t base free in
    let acc = read_word t (List.hd idxs) in
    List.iter
      (fun w ->
        let v = read_word t w in
        Array.iteri (fun i b -> acc.(i) <- Bit.merge acc.(i) b) v)
      (List.tl idxs);
    acc

let write_cell t w (data : Bvec.t) (mask : Bvec.t) ~(certain : bool) =
  for i = 0 to t.width - 1 do
    let old = get t w i in
    let updated =
      match mask.(i) with
      | Bit.Zero -> old
      | Bit.One -> data.(i)
      | Bit.X -> Bit.merge old data.(i)
    in
    let v = if certain then updated else Bit.merge old updated in
    put t w i v
  done

let write t ~addr ~data ~mask ~en =
  if Bvec.width data <> t.width || Bvec.width mask <> t.width then
    invalid_arg "Memory.write: width mismatch";
  match en with
  | Bit.Zero -> ()
  | Bit.One | Bit.X ->
    let certain_en = Bit.equal en Bit.One in
    let base, free = candidate_indices t addr in
    (match free with
    | [] -> write_cell t base data mask ~certain:certain_en
    | _ ->
      (* The write lands on exactly one of the candidates, so from any
         single cell's point of view it is uncertain. *)
      List.iter
        (fun w -> write_cell t w data mask ~certain:false)
        (expand t base free))

let snapshot t = Bytes.copy t.store

let restore t s =
  if Bytes.length s <> Bytes.length t.store then
    invalid_arg "Memory.restore: size mismatch";
  Bytes.blit s 0 t.store 0 (Bytes.length s)

let merge_snapshot a b =
  if Bytes.length a <> Bytes.length b then
    invalid_arg "Memory.merge_snapshot: size mismatch";
  Bytes.init (Bytes.length a) (fun i ->
      let x = Char.code (Bytes.get a i) and y = Char.code (Bytes.get b i) in
      Char.chr Bit.tbl_merge.((x * 3) + y))

let subsumes ~general ~specific =
  Bytes.length general = Bytes.length specific
  &&
  let ok = ref true in
  for i = 0 to Bytes.length general - 1 do
    let g = Char.code (Bytes.get general i)
    and s = Char.code (Bytes.get specific i) in
    if g <> Bit.code_x && g <> s then ok := false
  done;
  !ok

let equal_snapshot = Bytes.equal

let consistent_snapshots a b =
  Bytes.length a = Bytes.length b
  &&
  let ok = ref true in
  for i = 0 to Bytes.length a - 1 do
    let x = Char.code (Bytes.get a i) and y = Char.code (Bytes.get b i) in
    if x <> y && x <> Bit.code_x && y <> Bit.code_x then ok := false
  done;
  !ok
let snapshot_words s = Bytes.length s
