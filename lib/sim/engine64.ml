module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Obs = Bespoke_obs.Obs

(* Telemetry for the packed engine (no-ops unless Obs is enabled):
   each "eval" here re-evaluates one gate across all lanes at once. *)
let m_gate_evals = Obs.Metrics.counter "sim.packed_gate_evals"
let m_settles = Obs.Metrics.counter "sim.packed_settles"
let h_dirty = Obs.Metrics.histogram "sim.packed_dirty_set_size"

(* Up to 63 independent concrete simulations packed into dual-rail
   native-int words.  Rail [lo] has a lane's bit set when the lane's
   value can be 0, rail [hi] when it can be 1:

     0 -> (lo=1, hi=0)    1 -> (lo=0, hi=1)    X -> (lo=1, hi=1)

   Gate functions become whole-word boolean operations with exact
   Kleene (ternary) semantics per lane; lanes never interact.  The
   evaluation core is the same dirty-queue levelized sweep as the
   event-driven {!Engine}. *)

let max_lanes = 63  (* OCaml native ints carry 63 usable bits *)

let op_buf = 0

and op_not = 1

and op_and = 2

and op_or = 3

and op_nand = 4

and op_nor = 5

and op_xor = 6

and op_xnor = 7

and op_mux = 8

type t = {
  net : Netlist.t;
  lanes : int;
  lane_mask : int;
  order : int array;
  opcode : int array;
  fi0 : int array;
  fi1 : int array;
  fi2 : int array;
  lo : int array;  (* rail: lane value can be 0 *)
  hi : int array;  (* rail: lane value can be 1 *)
  prev_lo : int array;
  prev_hi : int array;
  dffs : int array;
  dff_next_lo : int array;
  dff_next_hi : int array;
  toggles : int array array;  (* per lane, per gate *)
  possibly : int array;  (* lane bitmask per gate *)
  mutable committed : int;
  (* event-driven machinery, as in {!Engine} *)
  level : int array;
  fan_start : int array;
  fan : int array;
  lvl_stack : int array array;
  lvl_len : int array;
  on_queue : Bytes.t;
  touched : int array;
  mutable touched_len : int;
  in_touched : Bytes.t;
  mutable full_commit : bool;
  mutable on_cycle : (int -> unit) option;
      (* probe hook: called after every [commit_cycle] with the new
         committed count (guard shadow watchers) *)
}

let create ?(lanes = max_lanes) net =
  if lanes < 1 || lanes > max_lanes then
    invalid_arg (Printf.sprintf "Engine64.create: lanes %d not in 1..63" lanes);
  let lane_mask = if lanes = max_lanes then -1 else (1 lsl lanes) - 1 in
  let ng = Netlist.gate_count net in
  let order = Netlist.levelize net in
  let opcode = Array.make ng (-1) in
  let fi0 = Array.make ng 0 in
  let fi1 = Array.make ng 0 in
  let fi2 = Array.make ng 0 in
  let dffs = ref [] in
  Array.iteri
    (fun id (g : Gate.t) ->
      (match g.op with
      | Gate.Dff _ ->
        dffs := id :: !dffs;
        fi0.(id) <- g.fanin.(0)
      | _ -> ());
      let set c =
        opcode.(id) <- c;
        (match Array.length g.fanin with
        | 0 -> ()
        | 1 -> fi0.(id) <- g.fanin.(0)
        | 2 ->
          fi0.(id) <- g.fanin.(0);
          fi1.(id) <- g.fanin.(1)
        | _ ->
          fi0.(id) <- g.fanin.(0);
          fi1.(id) <- g.fanin.(1);
          fi2.(id) <- g.fanin.(2))
      in
      match g.op with
      | Gate.Const _ | Gate.Input | Gate.Dff _ -> ()
      | Gate.Buf -> set op_buf
      | Gate.Not -> set op_not
      | Gate.And -> set op_and
      | Gate.Or -> set op_or
      | Gate.Nand -> set op_nand
      | Gate.Nor -> set op_nor
      | Gate.Xor -> set op_xor
      | Gate.Xnor -> set op_xnor
      | Gate.Mux -> set op_mux)
    net.Netlist.gates;
  let dffs = Array.of_list (List.rev !dffs) in
  let level = Array.make ng 0 in
  Array.iter
    (fun id ->
      let g = net.Netlist.gates.(id) in
      let m = ref 0 in
      Array.iter (fun f -> if level.(f) >= !m then m := level.(f)) g.fanin;
      level.(id) <- !m + 1)
    order;
  let nlevels =
    1 + Array.fold_left (fun acc l -> if l > acc then l else acc) 0 level
  in
  let counts = Array.make ng 0 in
  Array.iter
    (fun (g : Gate.t) ->
      if not (Gate.is_source g) then
        Array.iter (fun f -> counts.(f) <- counts.(f) + 1) g.fanin)
    net.Netlist.gates;
  let fan_start = Array.make (ng + 1) 0 in
  for i = 0 to ng - 1 do
    fan_start.(i + 1) <- fan_start.(i) + counts.(i)
  done;
  let fan = Array.make fan_start.(ng) 0 in
  let fill = Array.make ng 0 in
  Array.iteri
    (fun id (g : Gate.t) ->
      if not (Gate.is_source g) then
        Array.iter
          (fun f ->
            fan.(fan_start.(f) + fill.(f)) <- id;
            fill.(f) <- fill.(f) + 1)
          g.fanin)
    net.Netlist.gates;
  let per_level = Array.make nlevels 0 in
  Array.iter (fun id -> per_level.(level.(id)) <- per_level.(level.(id)) + 1) order;
  let t =
    {
      net;
      lanes;
      lane_mask;
      order;
      opcode;
      fi0;
      fi1;
      fi2;
      lo = Array.make ng lane_mask;  (* all lanes X *)
      hi = Array.make ng lane_mask;
      prev_lo = Array.make ng lane_mask;
      prev_hi = Array.make ng lane_mask;
      dffs;
      dff_next_lo = Array.make (Array.length dffs) 0;
      dff_next_hi = Array.make (Array.length dffs) 0;
      toggles = Array.init lanes (fun _ -> Array.make ng 0);
      possibly = Array.make ng 0;
      committed = 0;
      level;
      fan_start;
      fan;
      lvl_stack = Array.map (fun n -> Array.make (max n 1) 0) per_level;
      lvl_len = Array.make nlevels 0;
      on_queue = Bytes.make ng '\000';
      touched = Array.make ng 0;
      touched_len = 0;
      in_touched = Bytes.make ng '\000';
      full_commit = true;
      on_cycle = None;
    }
  in
  Array.iter
    (fun id ->
      let l = t.level.(id) in
      t.lvl_stack.(l).(t.lvl_len.(l)) <- id;
      t.lvl_len.(l) <- t.lvl_len.(l) + 1;
      Bytes.unsafe_set t.on_queue id '\001')
    order;
  t

let netlist t = t.net
let lanes t = t.lanes

(* rail pair for a single Bit *)
let rails_of_bit = function
  | Bit.Zero -> (1, 0)
  | Bit.One -> (0, 1)
  | Bit.X -> (1, 1)

let bit_of_rails lo hi =
  match (lo, hi) with
  | 1, 0 -> Bit.Zero
  | 0, 1 -> Bit.One
  | 1, 1 -> Bit.X
  | _ -> invalid_arg "Engine64: invalid rail state (unwritten lane?)"

let value_lane t id lane =
  bit_of_rails ((t.lo.(id) lsr lane) land 1) ((t.hi.(id) lsr lane) land 1)

let mark_touched t id =
  if Bytes.unsafe_get t.in_touched id = '\000' then begin
    Bytes.unsafe_set t.in_touched id '\001';
    t.touched.(t.touched_len) <- id;
    t.touched_len <- t.touched_len + 1
  end

let schedule_readers t id =
  let s = t.fan_start.(id) and e = t.fan_start.(id + 1) in
  for k = s to e - 1 do
    let r = Array.unsafe_get t.fan k in
    if Bytes.unsafe_get t.on_queue r = '\000' then begin
      Bytes.unsafe_set t.on_queue r '\001';
      let l = Array.unsafe_get t.level r in
      t.lvl_stack.(l).(t.lvl_len.(l)) <- r;
      t.lvl_len.(l) <- t.lvl_len.(l) + 1
    end
  done

let write t id lo hi =
  if t.lo.(id) <> lo || t.hi.(id) <> hi then begin
    t.lo.(id) <- lo;
    t.hi.(id) <- hi;
    mark_touched t id;
    schedule_readers t id
  end

let set_gate_packed t id ~lo ~hi =
  (match t.net.Netlist.gates.(id).op with
  | Gate.Input -> ()
  | op ->
    invalid_arg
      (Printf.sprintf "Engine64.set_gate_packed: gate %d is %s, not an input" id
         (Gate.op_name op)));
  write t id (lo land t.lane_mask) (hi land t.lane_mask)

let set_gate_lane t id lane b =
  let l, h = rails_of_bit b in
  let m = lnot (1 lsl lane) in
  set_gate_packed t id
    ~lo:((t.lo.(id) land m) lor (l lsl lane))
    ~hi:((t.hi.(id) land m) lor (h lsl lane))

let pack_bits t (bits : Bit.t array) =
  (* [bits.(lane)] -> packed rails; lanes beyond [Array.length bits]
     are X, keeping unwritten lanes in a valid encoding *)
  let lo = ref 0 and hi = ref 0 in
  for lane = 0 to t.lanes - 1 do
    let l, h =
      if lane < Array.length bits then rails_of_bit bits.(lane) else (1, 1)
    in
    lo := !lo lor (l lsl lane);
    hi := !hi lor (h lsl lane)
  done;
  (!lo, !hi)

let find_input t name = Netlist.find_input t.net name

let set_input_lanes t name (vs : Bvec.t array) =
  let ids = find_input t name in
  Array.iter
    (fun v ->
      if Bvec.width v <> Array.length ids then
        invalid_arg
          (Printf.sprintf "Engine64.set_input_lanes %s: width mismatch" name))
    vs;
  let scratch = Array.make (Array.length vs) Bit.X in
  Array.iteri
    (fun i id ->
      Array.iteri (fun lane v -> scratch.(lane) <- v.(i)) vs;
      let lo, hi = pack_bits t scratch in
      set_gate_packed t id ~lo ~hi)
    ids

let set_input_uniform t name (v : Bvec.t) =
  let ids = find_input t name in
  if Bvec.width v <> Array.length ids then
    invalid_arg (Printf.sprintf "Engine64.set_input_uniform %s: width mismatch" name);
  Array.iteri
    (fun i id ->
      let l, h = rails_of_bit v.(i) in
      set_gate_packed t id ~lo:(if l = 1 then t.lane_mask else 0)
        ~hi:(if h = 1 then t.lane_mask else 0))
    ids

let read_lane t name lane =
  let ids = Netlist.find_name t.net name in
  Array.map (fun id -> value_lane t id lane) ids

let read_lane_int t name lane = Bvec.to_int (read_lane t name lane)

let compute t id =
  let c = t.opcode.(id) in
  let i0 = t.fi0.(id) in
  let a_lo = t.lo.(i0) and a_hi = t.hi.(i0) in
  if c = op_buf then (a_lo, a_hi)
  else if c = op_not then (a_hi, a_lo)
  else
    let i1 = t.fi1.(id) in
    let b_lo = t.lo.(i1) and b_hi = t.hi.(i1) in
    if c = op_and then (a_lo lor b_lo, a_hi land b_hi)
    else if c = op_or then (a_lo land b_lo, a_hi lor b_hi)
    else if c = op_nand then (a_hi land b_hi, a_lo lor b_lo)
    else if c = op_nor then (a_hi lor b_hi, a_lo land b_lo)
    else if c = op_xor then
      ((a_lo land b_lo) lor (a_hi land b_hi),
       (a_lo land b_hi) lor (a_hi land b_lo))
    else if c = op_xnor then
      ((a_lo land b_hi) lor (a_hi land b_lo),
       (a_lo land b_lo) lor (a_hi land b_hi))
    else begin
      (* mux: fi0 = sel, fi1 = a (sel=0), fi2 = b (sel=1);
         an X select merges the two data inputs *)
      let s_lo = a_lo and s_hi = a_hi in
      let i2 = t.fi2.(id) in
      let c_lo = t.lo.(i2) and c_hi = t.hi.(i2) in
      let s0 = s_lo land lnot s_hi in
      let s1 = s_hi land lnot s_lo in
      let sx = s_lo land s_hi in
      ( (s0 land b_lo) lor (s1 land c_lo) lor (sx land (b_lo lor c_lo)),
        (s0 land b_hi) lor (s1 land c_hi) lor (sx land (b_hi lor c_hi)) )
    end

let eval_full t =
  let order = t.order in
  for k = 0 to Array.length order - 1 do
    let id = Array.unsafe_get order k in
    let lo, hi = compute t id in
    t.lo.(id) <- lo;
    t.hi.(id) <- hi
  done

let flush_dirty t =
  let counting = Obs.enabled () in
  let drained = ref 0 in
  let nl = Array.length t.lvl_len in
  for l = 1 to nl - 1 do
    let stack = t.lvl_stack.(l) in
    let n = t.lvl_len.(l) in
    if counting then drained := !drained + n;
    for k = 0 to n - 1 do
      let id = Array.unsafe_get stack k in
      Bytes.unsafe_set t.on_queue id '\000';
      let lo, hi = compute t id in
      if t.lo.(id) <> lo || t.hi.(id) <> hi then begin
        t.lo.(id) <- lo;
        t.hi.(id) <- hi;
        mark_touched t id;
        schedule_readers t id
      end
    done;
    t.lvl_len.(l) <- 0
  done;
  if counting then begin
    Obs.Metrics.add m_gate_evals !drained;
    Obs.Metrics.incr m_settles;
    Obs.Metrics.observe h_dirty !drained
  end

let eval t = flush_dirty t

let clear_dirty t =
  Array.fill t.lvl_len 0 (Array.length t.lvl_len) 0;
  Bytes.fill t.on_queue 0 (Bytes.length t.on_queue) '\000'

let clear_touched t =
  t.touched_len <- 0;
  Bytes.fill t.in_touched 0 (Bytes.length t.in_touched) '\000'

let reset t =
  clear_dirty t;
  clear_touched t;
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.op with
      | Gate.Const b ->
        let l, h = rails_of_bit b in
        t.lo.(id) <- (if l = 1 then t.lane_mask else 0);
        t.hi.(id) <- (if h = 1 then t.lane_mask else 0)
      | Gate.Input ->
        t.lo.(id) <- t.lane_mask;
        t.hi.(id) <- t.lane_mask
      | Gate.Dff init ->
        let l, h = rails_of_bit init in
        t.lo.(id) <- (if l = 1 then t.lane_mask else 0);
        t.hi.(id) <- (if h = 1 then t.lane_mask else 0)
      | _ -> ())
    t.net.Netlist.gates;
  eval_full t;
  Array.blit t.lo 0 t.prev_lo 0 (Array.length t.lo);
  Array.blit t.hi 0 t.prev_hi 0 (Array.length t.hi);
  t.committed <- 0;
  t.full_commit <- true

let step t =
  let dffs = t.dffs in
  for i = 0 to Array.length dffs - 1 do
    let d = t.fi0.(dffs.(i)) in
    t.dff_next_lo.(i) <- t.lo.(d);
    t.dff_next_hi.(i) <- t.hi.(d)
  done;
  for i = 0 to Array.length dffs - 1 do
    write t dffs.(i) t.dff_next_lo.(i) t.dff_next_hi.(i)
  done;
  eval t

let commit_one t id active =
  let cur_lo = t.lo.(id) and cur_hi = t.hi.(id) in
  let changed =
    ((cur_lo lxor t.prev_lo.(id)) lor (cur_hi lxor t.prev_hi.(id))) land active
  in
  if changed <> 0 then begin
    let lanes = t.lanes in
    for lane = 0 to lanes - 1 do
      if changed land (1 lsl lane) <> 0 then
        t.toggles.(lane).(id) <- t.toggles.(lane).(id) + 1
    done
  end;
  t.possibly.(id) <-
    t.possibly.(id) lor changed lor (cur_lo land cur_hi land active);
  t.prev_lo.(id) <- cur_lo;
  t.prev_hi.(id) <- cur_hi

(* [active]: lane bitmask to charge activity to.  Lanes must only ever
   leave the active set (a lane re-entering after a masked commit
   would charge the whole gap as a single transition). *)
let commit_cycle ?active t =
  let active =
    (match active with None -> t.lane_mask | Some a -> a land t.lane_mask)
  in
  if t.full_commit then begin
    for id = 0 to Array.length t.lo - 1 do
      commit_one t id active
    done;
    t.full_commit <- false
  end
  else
    for k = 0 to t.touched_len - 1 do
      commit_one t (Array.unsafe_get t.touched k) active
    done;
  clear_touched t;
  t.committed <- t.committed + 1;
  match t.on_cycle with None -> () | Some f -> f t.committed

let set_cycle_hook t f = t.on_cycle <- f
let cycles_committed t = t.committed
let toggle_counts_lane t lane = Array.copy t.toggles.(lane)

let possibly_toggled_lane t lane =
  Array.map (fun m -> m land (1 lsl lane) <> 0) t.possibly

let sync_prev t =
  Array.blit t.lo 0 t.prev_lo 0 (Array.length t.lo);
  Array.blit t.hi 0 t.prev_hi 0 (Array.length t.hi)
