(** Compiled word-level gate simulation.

    [create] lowers a levelized netlist into a flat, closure-free
    instruction program over native 63-bit words and caches the result
    by design hash ({!Bespoke_netlist.Serial.hash}), so repeated
    simulations of the same (or an unchanged) design recompile
    nothing.

    The compiler re-discovers word-level structure that the RTL DSL
    lowered away:

    - maximal runs of consecutive-id gates with the same op whose
      fanin columns are arithmetic progressions become one vector
      instruction (AND/OR/XOR/... over a whole word per step);
    - the 5-gates-per-bit ripple-carry pattern emitted for adders
      becomes one integer-add instruction that reconstructs every
      internal carry/propagate gate value word-wise, so per-gate
      activity stays exact;
    - consecutive DFF and input-port bits share one word each;
    - everything else falls back to per-gate instructions.

    State is dual-rail (can-be-0 / can-be-1 masks), making the word
    operations exact three-valued Kleene evaluation: values, toggle
    counts and possibly-toggled flags are bit-identical to
    {!Engine} in both [Full] and [Event] modes (enforced by
    [test_compile_equiv]).  Instructions are re-executed only when an
    operand word actually changed (a pending bitmask in topological
    order), so settles after small input changes are cheap.

    This module mirrors the {!Engine} per-cycle protocol; it is
    normally driven through [Engine.create ~mode:Compiled]. *)

module Bit := Bespoke_logic.Bit
module Bvec := Bespoke_logic.Bvec
module Netlist := Bespoke_netlist.Netlist

type t

val create : Netlist.t -> t
(** Compile [net] (or reuse a cached program for its design hash) and
    allocate fresh per-instance state. *)

val netlist : t -> Netlist.t
val reset : t -> unit

(** {1 Values} *)

val value : t -> int -> Bit.t
val value_code : t -> int -> int
val set_gate : t -> int -> Bit.t -> unit

val set_gates_int : t -> int array -> int -> unit
(** [set_gates_int t ids v] drives input gate [ids.(i)] to bit [i] of
    [v].  When the ids are consecutive bits of one state word (the
    common case for input ports) this is a single word store. *)

val read_ids_int : t -> int array -> int option
(** Int readback of a gate-id vector, LSB first, or [None] if any bit
    is X; one word extract when the ids are chunk-aligned. *)

val read : t -> string -> Bvec.t
val read_int : t -> string -> int option
val set_input : t -> string -> Bvec.t -> unit
val set_input_int : t -> string -> int -> unit
val set_input_x : t -> string -> unit
val set_all_inputs_x : t -> unit

(** {1 Evaluation} *)

val eval : t -> unit
val step : t -> unit

(** {1 Per-cycle activity} *)

val commit_cycle : t -> unit
val cycles_committed : t -> int
val toggle_counts : t -> int array
val possibly_toggled : t -> bool array
val merge_possibly_toggled_into : t -> bool array -> unit
val clear_activity : t -> unit
val set_first_possibly_hook : t -> (int -> unit) option -> unit
val sync_prev : t -> unit
val snapshot_values : t -> Bvec.t

(** {1 Sequential state} *)

val dff_ids : t -> int array
val dff_state : t -> Bvec.t
val restore_dff_state : t -> Bvec.t -> unit

(** {1 Program introspection} *)

type stats = {
  gates : int;
  instructions : int;  (** flat program length *)
  word_gates : int;
      (** gates covered by vector/adder/register words (vs singletons) *)
  adders : int;  (** ripple-carry chains recovered as integer adds *)
  from_cache : bool;  (** this instance reused a memoized program *)
}

val stats : t -> stats

val cache_hits : unit -> int
val cache_misses : unit -> int
val clear_cache : unit -> unit
