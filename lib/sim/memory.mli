(** Ternary word-addressed memory model (program ROM / data RAM).

    Memories are external to the pruned netlist (the paper tailors the
    core's gates, not the SRAM macros), so the simulator models them
    behaviorally with conservative ternary semantics:

    - read at a known index: the stored word (bits may be X);
    - read at an index with X bits: the merge of every word the index
      pattern could select;
    - write with X write-enable or X mask bits: old and new values are
      merged (the write may or may not happen);
    - write at an index with X bits: every word the pattern could
      select merges in the (masked) data.

    All of which over-approximates the set of reachable memory states,
    keeping Algorithm 1 sound. *)

module Bit := Bespoke_logic.Bit
module Bvec := Bespoke_logic.Bvec

type t

val create : words:int -> width:int -> init:Bit.t -> t
(** [words] must be a power of two; indices wrap modulo [words]. *)

val words : t -> int
val width : t -> int
val clear : t -> Bit.t -> unit

(** {1 Direct (known-index) access, for program loading and harnesses} *)

val load : t -> int -> Bvec.t -> unit
val load_int : t -> int -> int -> unit
val read_word : t -> int -> Bvec.t

val read_word_int : t -> int -> int option
(** Allocation-free fast path for harness inner loops: the stored word
    as an integer, [None] if any bit is X. *)

val write_masked_int : t -> int -> data:int -> mask:int -> unit
(** Fully-known write fast path: store bit [i] of [data] wherever bit
    [i] of [mask] is set.  Semantically identical to {!write} with a
    known index, known data, a definite per-bit mask and [en = One]. *)

val set_x_range : t -> lo:int -> hi:int -> unit
(** Mark an inclusive word-index range unknown (application-input
    regions during symbolic analysis). *)

(** {1 Ternary port access} *)

val read : t -> Bvec.t -> Bvec.t

val write : t -> addr:Bvec.t -> data:Bvec.t -> mask:Bvec.t -> en:Bit.t -> unit
(** [mask] is a per-bit write mask of the memory width (byte lanes
    expanded by the caller); a mask bit of [Zero] leaves the stored bit
    unchanged, [One] writes it, [X] merges. *)

(** {1 State capture (execution-tree exploration)} *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val merge_snapshot : snapshot -> snapshot -> snapshot
val subsumes : general:snapshot -> specific:snapshot -> bool
val equal_snapshot : snapshot -> snapshot -> bool

(** [consistent_snapshots a b]: no bit is definite in both snapshots
    with different values (X is compatible with anything). *)
val consistent_snapshots : snapshot -> snapshot -> bool
val snapshot_words : snapshot -> int
