module Netlist = Bespoke_netlist.Netlist

(* A core descriptor: everything the tailoring flow needs to know
   about a processor, bundled as a first-class value.  The analysis,
   cutting, verification and guard layers depend only on this record
   (plus the hook-net naming contract below), never on a concrete
   core, so a new ISA drops into the whole flow — symbolic activity
   analysis, lockstep verification, fault injection, deployment
   guards, the campaign engine — by providing one value of this type.

   Hook-net contract.  Every core netlist exposes the same port and
   named-net surface; only the widths vary with the core's geometry:

   - inputs [pmem_rdata], [dmem_rdata] ([word_bits]), [gpio_in]
     ([word_bits]), [irq] (1)
   - outputs [pmem_addr], [dmem_addr], [dmem_wdata], [dmem_ben]
     ([word_bits]/8 lanes), [dmem_wen], [dmem_ren], [gpio_out],
     [halt]
   - named nets [pc], [state], [ir], [fetching], [insn_boundary],
     [halted], [gpio_wr], [exec_jump], [branch_taken],
     [branch_target], [branch_fallthrough], [irq_pending],
     [irq_flag], [irq_enable], and one net per architectural
     register (via [reg_hook]).

   A core without interrupts ties [irq_pending]/[irq_flag]/
   [irq_enable] to constant zero nets so the analyzer's interrupt
   forking is inert. *)

(* Golden-model instance as a record of closures over hidden state.
   One value per run; [reset] rewinds it to the post-reset state. *)
type iss = {
  reset : unit -> unit;
  step : unit -> unit;  (* one instruction (or one interrupt entry) *)
  halted : unit -> bool;
  pc : unit -> int;
  reg : int -> int;  (* architectural register by core-defined index *)
  cycles : unit -> int;
  retired : unit -> int;  (* instructions retired *)
  read_ram_word : int -> int;  (* by byte address *)
  write_ram_word : int -> int -> unit;
  set_gpio_in : int -> unit;
  gpio_out : unit -> int;
  output_trace : unit -> (int * int) list;  (* (cycle, gpio value) *)
  set_irq_line : bool -> unit;
  irq_entry : unit -> int;  (* interrupt-handler entry pc, or -1 *)
  current_insn : unit -> string;  (* disassembly at the current pc *)
}

(* An assembled program in core-neutral form.  [rom] is word-indexed
   and exactly [rom_words] long; the ISS constructor and the listing
   close over whatever core-native image they need. *)
type image = {
  rom : int array;
  entry : int;
  insn_addrs : int list;  (* instruction start addresses *)
  listing : unit -> string;
  mk_iss : unit -> iss;
}

(* Static classification of the instruction at [pc], from ROM words
   alone.  [ci_next] is the fall-through address. *)
type insn_info = {
  ci_control : bool;  (* can redirect the pc (jump/call/return/...) *)
  ci_cond_branch : bool;  (* conditional branch (coverage counts it) *)
  ci_next : int;
}

type t = {
  name : string;
  word_bits : int;  (* datapath / memory word width *)
  addr_shift : int;  (* log2 bytes per memory word *)
  insn_align : int;  (* instruction address alignment in bytes *)
  mem_words : int;  (* harness memory-array size (power of 2, the
                       word-index mask for both ports) *)
  rom_base : int;
  rom_words : int;  (* architectural ROM extent, <= mem_words *)
  ram_base : int;
  ram_words : int;  (* architectural RAM extent, <= mem_words *)
  reset_extra_cycles : int;  (* gate-level cycles spent in reset *)
  arch_regs : int list;  (* register indices the lockstep compares *)
  reg_name : int -> string;
  reg_hook : int -> string option;  (* None: reads as constant zero *)
  sp_reg : int option;  (* stack pointer's register index, if any *)
  has_irq : bool;
  gie_bit : (string * int) option;  (* global-int-enable (hook, bit) *)
  trace_signals : string list;  (* default VCD signal set *)
  build : unit -> Netlist.t;
  assemble : string -> image;  (* raises on bad source *)
  classify : rom_word:(int -> int) -> pc:int -> insn_info;
  (* Return context for PC-from-memory instructions: the values the
     next pc will be loaded from, so the analyzer can key its merge
     table on them.  The accessors return None for unknown state. *)
  ret_context :
    rom_word:(int -> int) ->
    read_reg:(int -> int option) ->
    read_ram_word:(int -> int option) ->
    pc:int ->
    int * int;
  fuzz_program : seed:int -> string;  (* seed-replayable random program *)
}

let word_bytes c = 1 lsl c.addr_shift
let ben_lanes c = c.word_bits / 8
let rom_bytes c = c.rom_words lsl c.addr_shift
let ram_bytes c = c.ram_words lsl c.addr_shift
let in_rom c a = a >= c.rom_base && a < c.rom_base + rom_bytes c
let in_ram c a = a >= c.ram_base && a < c.ram_base + ram_bytes c
let rom_index c a = (a lsr c.addr_shift) land (c.mem_words - 1)
let ram_index c a = (a lsr c.addr_shift) land (c.mem_words - 1)
let hex_digits c = (c.word_bits + 3) / 4

(* Content hash of an assembled image (ROM contents + entry). *)
let image_hash (img : image) =
  let b = Buffer.create 4096 in
  Array.iter (fun w -> Buffer.add_string b (Printf.sprintf "%x;" w)) img.rom;
  Buffer.add_string b (Printf.sprintf "@%x" img.entry);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Identity of the core itself, for memoization keys: the name plus
   the full geometry, so two cores (or two revisions of one) never
   share cached flow artifacts by accident. *)
let fingerprint c =
  Printf.sprintf "%s/w%d/s%d/a%d/rom%x+%d/ram%x+%d/irq%b" c.name c.word_bits
    c.addr_shift c.insn_align c.rom_base c.rom_words c.ram_base c.ram_words
    c.has_irq
