module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Engine = Bespoke_sim.Engine

(* Core-generic lockstep comparison: run the gate-level system and the
   core's ISS golden model instruction by instruction, comparing every
   architectural register at every instruction boundary, the full data
   RAM and GPIO at the end, and cycle counts against the core's timing
   contract. *)

type result = {
  instructions : int;
  cycles : int;
  gpio_final : int;
  outputs : int list;
  toggles : int array;
}

type divergence_info = {
  at_insn : int;
  at_pc : int;
  what : string;
  detail : string;
}

exception Divergence of string

(* internal: carries the structured record out of the comparators *)
exception Diverged of divergence_info

let fail ?(at_insn = -1) ?(at_pc = -1) ~what fmt =
  Printf.ksprintf
    (fun detail -> raise (Diverged { at_insn; at_pc; what; detail }))
    fmt

(* Every concrete bit of [got] agrees with [expected]; X bits pass.
   Used by the [x_dont_care] mode: a tailored design holds const-X
   ties on state the application provably never observes, so only the
   bits the gate level actually knows are required to match. *)
let concrete_bits_match expected (got : Bvec.t) =
  let ok = ref true in
  Array.iteri
    (fun i b ->
      match b with
      | Bit.Zero -> if (expected lsr i) land 1 <> 0 then ok := false
      | Bit.One -> if (expected lsr i) land 1 <> 1 then ok := false
      | Bit.X -> ())
    got;
  !ok

let compare_boundary ~x_dont_care ~insn_idx sys (iss : Coredef.iss) =
  let core = System.core sys in
  let hx = Coredef.hex_digits core in
  let at_pc = iss.Coredef.pc () in
  let check name expected (got : Bvec.t) =
    match Bvec.to_int got with
    | Some v when v = expected -> ()
    | Some v ->
      fail ~at_insn:insn_idx ~at_pc ~what:name
        "insn %d: %s mismatch: ISS %0*x, CPU %0*x (iss pc %0*x)" insn_idx name
        hx expected hx v hx at_pc
    | None when x_dont_care && concrete_bits_match expected got -> ()
    | None ->
      fail ~at_insn:insn_idx ~at_pc ~what:name
        "insn %d: %s is unknown in CPU: %s (ISS %0*x)" insn_idx name
        (Bvec.to_string got) hx expected
  in
  List.iter
    (fun r ->
      check (core.Coredef.reg_name r) (iss.Coredef.reg r) (System.reg sys r))
    core.Coredef.arch_regs;
  (* Cycle agreement: the CPU spends extra cycles in its reset state. *)
  let cpu_cycles = System.cycles sys in
  let iss_cycles = iss.Coredef.cycles () in
  if cpu_cycles <> iss_cycles + core.Coredef.reset_extra_cycles then
    fail ~at_insn:insn_idx ~at_pc ~what:"cycles"
      "insn %d (pc %0*x): cycle mismatch: ISS %d (+%d reset), CPU %d" insn_idx
      hx at_pc iss_cycles core.Coredef.reset_extra_cycles cpu_cycles

let compare_final ~x_dont_care ~insn_idx sys (iss : Coredef.iss) =
  let core = System.core sys in
  let hx = Coredef.hex_digits core in
  let at_pc = iss.Coredef.pc () in
  (* data RAM *)
  for w = 0 to core.Coredef.ram_words - 1 do
    let addr = core.Coredef.ram_base + (w lsl core.Coredef.addr_shift) in
    let cpu_v = System.read_ram_word sys addr in
    let iss_v = iss.Coredef.read_ram_word addr in
    let what = Printf.sprintf "ram[%04x]" addr in
    match Bvec.to_int cpu_v with
    | Some v when v = iss_v -> ()
    | Some v ->
      fail ~at_insn:insn_idx ~at_pc ~what "ram[%04x]: ISS %0*x, CPU %0*x" addr
        hx iss_v hx v
    | None when x_dont_care && concrete_bits_match iss_v cpu_v -> ()
    | None ->
      fail ~at_insn:insn_idx ~at_pc ~what "ram[%04x]: unknown in CPU (%s)" addr
        (Bvec.to_string cpu_v)
  done;
  let gpio = System.gpio_out sys in
  match Bvec.to_int gpio with
  | Some v when v = iss.Coredef.gpio_out () -> ()
  | Some v ->
    fail ~at_insn:insn_idx ~at_pc ~what:"gpio_out"
      "gpio_out: ISS %0*x, CPU %0*x" hx
      (iss.Coredef.gpio_out ())
      hx v
  | None when x_dont_care && concrete_bits_match (iss.Coredef.gpio_out ()) gpio
    -> ()
  | None ->
    fail ~at_insn:insn_idx ~at_pc ~what:"gpio_out" "gpio_out unknown in CPU"

let run_result ?mode ?netlist ?(gpio_in = 0) ?(ram_writes = [])
    ?(irq_pulse_at = []) ?(max_insns = 200_000) ?(x_dont_care = false) ~core
    (image : Coredef.image) =
  try
    let iss = image.Coredef.mk_iss () in
    iss.Coredef.reset ();
    iss.Coredef.set_gpio_in gpio_in;
    List.iter (fun (a, v) -> iss.Coredef.write_ram_word a v) ram_writes;
    let sys = System.create ?mode ?netlist ~core image in
    System.reset sys;
    System.set_gpio_in_int sys gpio_in;
    List.iter (fun (a, v) -> System.load_ram_word sys a v) ram_writes;
    (* consume the reset cycles so both models sit at the first
       instruction boundary *)
    (match
       System.run_to_boundary
         ~max_cycles:(core.Coredef.reset_extra_cycles + 3)
         sys
     with
    | `Fetch -> ()
    | `Halted | `Unknown -> fail ~what:"reset" "did not reach the first fetch");
    let insn_idx = ref 0 in
    let finished = ref false in
    while not !finished do
      if !insn_idx > max_insns then
        fail ~at_insn:!insn_idx ~what:"limit" "instruction limit exceeded";
      let line = List.mem !insn_idx irq_pulse_at in
      iss.Coredef.set_irq_line line;
      System.set_irq sys (Bit.of_bool line);
      (* Advance the CPU to its next instruction boundary (or halt). *)
      (match System.run_to_boundary ~max_cycles:100 sys with
      | `Fetch | `Halted -> ()
      | `Unknown ->
        fail ~at_insn:!insn_idx
          ~at_pc:(iss.Coredef.pc ())
          ~what:"control" "CPU control state became unknown");
      (* Advance the ISS to match: one instruction, or one interrupt
         entry (which the CPU's IRQ sequence mirrors cycle for cycle). *)
      if System.halted sys then begin
        iss.Coredef.step ();  (* the halting instruction *)
        if not (iss.Coredef.halted ()) then
          fail ~at_insn:!insn_idx
            ~at_pc:(iss.Coredef.pc ())
            ~what:"halt" "CPU halted but ISS did not";
        compare_final ~x_dont_care ~insn_idx:!insn_idx sys iss;
        finished := true
      end
      else begin
        iss.Coredef.step ();
        incr insn_idx;
        if iss.Coredef.halted () then
          fail ~at_insn:!insn_idx
            ~at_pc:(iss.Coredef.pc ())
            ~what:"halt" "ISS halted but CPU did not"
        else compare_boundary ~x_dont_care ~insn_idx:!insn_idx sys iss
      end
    done;
    Ok
      {
        instructions = iss.Coredef.retired ();
        cycles = System.cycles sys;
        gpio_final = iss.Coredef.gpio_out ();
        outputs = List.map snd (iss.Coredef.output_trace ());
        toggles = Engine.toggle_counts (System.engine sys);
      }
  with Diverged info -> Error info

let run ?mode ?netlist ?gpio_in ?ram_writes ?irq_pulse_at ?max_insns
    ?x_dont_care ~core image =
  match
    run_result ?mode ?netlist ?gpio_in ?ram_writes ?irq_pulse_at ?max_insns
      ?x_dont_care ~core image
  with
  | Ok r -> r
  | Error info -> raise (Divergence info.detail)
