module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Netlist = Bespoke_netlist.Netlist
module Engine = Bespoke_sim.Engine
module Memory = Bespoke_sim.Memory

(* Core-generic gate-level system harness: one core netlist (per the
   {!Coredef} hook contract) plus word-addressed instruction and data
   memories, ternary-precision GPIO/IRQ inputs, and snapshot/restore
   for the symbolic explorer.  All geometry (word width, address
   shift, memory sizes) comes from the core descriptor. *)

let ilog2 n =
  let rec go i = if 1 lsl i >= n then i else go (i + 1) in
  go 0

(* Gate ids of the signals the per-cycle loop probes, resolved once at
   [create] so the hot path never goes through string lookups or
   allocates Bvecs. *)
type hooks = {
  pmem_widx : int array;  (* pmem_addr word-index bits *)
  dmem_widx : int array;  (* dmem_addr word-index bits *)
  pmem_rdata : int array;
  dmem_rdata : int array;
  dmem_wdata : int array;
  dmem_wen : int;
  dmem_ben : int array;  (* one byte-enable per 8 data bits *)
  gpio_wr : int;
  halted : int;
  fetching : int;
  insn_boundary : int;
}

type t = {
  core : Coredef.t;
  eng : Engine.t;
  image : Coredef.image;
  rom : Memory.t;
  ram : Memory.t;
  mem_cone : Engine.cone;
  hk : hooks;
  mutable gpio_in : Bvec.t;
  mutable irq : Bit.t;
  mutable cycle : int;
  mutable trace : (int * Bvec.t) list;  (* newest first *)
}

let word_index t (addr : Bvec.t) =
  Array.sub addr t.core.Coredef.addr_shift (ilog2 t.core.Coredef.mem_words)

let create ?mode ?netlist ~core (image : Coredef.image) =
  let net = match netlist with Some n -> n | None -> core.Coredef.build () in
  let eng = Engine.create ?mode net in
  let width = core.Coredef.word_bits in
  let rom = Memory.create ~words:core.Coredef.mem_words ~width ~init:Bit.Zero in
  Array.iteri (fun i w -> Memory.load_int rom i w) image.Coredef.rom;
  let ram = Memory.create ~words:core.Coredef.mem_words ~width ~init:Bit.Zero in
  let mem_inputs =
    Array.append
      (Netlist.find_input net "pmem_rdata")
      (Netlist.find_input net "dmem_rdata")
  in
  let mem_cone = Engine.make_cone eng mem_inputs in
  let bit0 name = (Netlist.find_name net name).(0) in
  let sub_idx name words =
    Array.sub (Netlist.find_name net name) core.Coredef.addr_shift (ilog2 words)
  in
  let hk =
    {
      pmem_widx = sub_idx "pmem_addr" core.Coredef.mem_words;
      dmem_widx = sub_idx "dmem_addr" core.Coredef.mem_words;
      pmem_rdata = Netlist.find_input net "pmem_rdata";
      dmem_rdata = Netlist.find_input net "dmem_rdata";
      dmem_wdata = Netlist.find_name net "dmem_wdata";
      dmem_wen = bit0 "dmem_wen";
      dmem_ben = Netlist.find_name net "dmem_ben";
      gpio_wr = bit0 "gpio_wr";
      halted = bit0 "halted";
      fetching = bit0 "fetching";
      insn_boundary = bit0 "insn_boundary";
    }
  in
  {
    core;
    eng;
    image;
    rom;
    ram;
    mem_cone;
    hk;
    gpio_in = Bvec.of_int ~width 0;
    irq = Bit.Zero;
    cycle = 0;
    trace = [];
  }

let core t = t.core
let netlist t = Engine.netlist t.eng
let engine t = t.eng
let image t = t.image

(* Feed combinational memory read data for the currently settled
   cycle.  The int fast path applies while address and stored word are
   fully known (the overwhelmingly common concrete case); any X falls
   back to the ternary Bvec path with identical semantics. *)
let feed_port t mem ~widx ~rdata ~addr_name ~rdata_name =
  (match Engine.read_int_ids t.eng widx with
  | Some w -> (
    match Memory.read_word_int mem w with
    | Some v -> Engine.set_gates_int t.eng rdata v
    | None -> Engine.set_input t.eng rdata_name (Memory.read_word mem w))
  | None ->
    let addr = Engine.read t.eng addr_name in
    Engine.set_input t.eng rdata_name (Memory.read mem (word_index t addr)))

let feed_memories t =
  feed_port t t.rom ~widx:t.hk.pmem_widx ~rdata:t.hk.pmem_rdata
    ~addr_name:"pmem_addr" ~rdata_name:"pmem_rdata";
  feed_port t t.ram ~widx:t.hk.dmem_widx ~rdata:t.hk.dmem_rdata
    ~addr_name:"dmem_addr" ~rdata_name:"dmem_rdata";
  Engine.eval_cone t.eng t.mem_cone

let apply_inputs t =
  Engine.set_input t.eng "gpio_in" t.gpio_in;
  Engine.set_input t.eng "irq" [| t.irq |]

let reset t =
  Memory.clear t.ram Bit.Zero;
  Array.iteri (fun i w -> Memory.load_int t.rom i w) t.image.Coredef.rom;
  Engine.reset t.eng;
  apply_inputs t;
  Engine.eval t.eng;
  feed_memories t;
  t.cycle <- 0;
  t.trace <- []

let set_gpio_in t v =
  t.gpio_in <- v;
  apply_inputs t;
  Engine.eval t.eng;
  feed_memories t

let set_gpio_in_int t n =
  set_gpio_in t (Bvec.of_int ~width:t.core.Coredef.word_bits n)

let set_gpio_in_x t = set_gpio_in t (Bvec.all_x t.core.Coredef.word_bits)

let set_irq t v =
  t.irq <- v;
  apply_inputs t;
  Engine.eval t.eng;
  feed_memories t

let read_hook t name = Engine.read t.eng name
let read_hook_int t name = Engine.read_int t.eng name
let pc t = read_hook t "pc"

let reg t i =
  match t.core.Coredef.reg_hook i with
  | Some name -> read_hook t name
  | None -> Bvec.of_int ~width:t.core.Coredef.word_bits 0

let halted t = Engine.value_code t.eng t.hk.halted = 1
let fetching t = Engine.value t.eng t.hk.fetching

let insn_boundary_code t = Engine.value_code t.eng t.hk.insn_boundary
let cycles t = t.cycle
let ram t = t.ram

let ram_index t addr = Coredef.ram_index t.core addr
let read_ram_word t addr = Memory.read_word t.ram (ram_index t addr)
let load_ram_word t addr v = Memory.load_int t.ram (ram_index t addr) v

let set_ram_x t ~lo_addr ~hi_addr =
  Memory.set_x_range t.ram ~lo:(ram_index t lo_addr) ~hi:(ram_index t hi_addr)

let gpio_out t = read_hook t "gpio_out"

let output_trace t = List.rev t.trace

(* Sample this cycle's RAM write (if any) and the GPIO trace.  The
   ternary path is kept for any X on the write port; definite writes
   (the common case) go through the masked-int fast path. *)
let byte_mask t (ben : Bvec.t) =
  Array.init t.core.Coredef.word_bits (fun i -> ben.(i / 8))

let sample_writes_slow t wen =
  let addr = read_hook t "dmem_addr" in
  let ben = read_hook t "dmem_ben" in
  let data = read_hook t "dmem_wdata" in
  let mask = byte_mask t ben in
  Memory.write t.ram ~addr:(word_index t addr) ~data ~mask ~en:wen

let sample_writes t =
  let hk = t.hk in
  (match Engine.value_code t.eng hk.dmem_wen with
  | 0 -> ()
  | 1 -> (
    let lanes = Array.length hk.dmem_ben in
    let mask = ref 0 and definite = ref true in
    for l = 0 to lanes - 1 do
      match Engine.value_code t.eng hk.dmem_ben.(l) with
      | 0 -> ()
      | 1 -> mask := !mask lor (0xff lsl (8 * l))
      | _ -> definite := false
    done;
    if !definite then
      match
        ( Engine.read_int_ids t.eng hk.dmem_widx,
          Engine.read_int_ids t.eng hk.dmem_wdata )
      with
      | Some w, Some data ->
        if !mask <> 0 then Memory.write_masked_int t.ram w ~data ~mask:!mask
      | _ -> sample_writes_slow t Bit.One
    else sample_writes_slow t Bit.One)
  | _ -> sample_writes_slow t Bit.X);
  match Engine.value_code t.eng hk.gpio_wr with
  | 1 -> t.trace <- (t.cycle, gpio_out t) :: t.trace
  | _ -> ()

let step_cycle t =
  sample_writes t;
  Engine.step t.eng;
  (* inputs persist; recompute memory data for the new cycle *)
  feed_memories t;
  (* commit the newly settled cycle immediately, so a path that ends
     here (halt, prune, fork) has its final transition recorded *)
  Engine.commit_cycle t.eng;
  t.cycle <- t.cycle + 1

let run_to_boundary ?(max_cycles = 1_000_000) t =
  let deadline = t.cycle + max_cycles in
  let rec go () =
    if halted t then `Halted
    else begin
      step_cycle t;
      if t.cycle > deadline then
        failwith "System.run_to_boundary: cycle limit exceeded";
      if halted t then `Halted
      else
        (* Stop at every fetch-state cycle, including one whose fetch
           is pre-empted by a pending interrupt: that is still an
           instruction boundary (it aligns with the ISS, whose
           interrupt entry is its own step). *)
        match insn_boundary_code t with
        | 1 -> `Fetch
        | 0 -> go ()
        | _ -> `Unknown
    end
  in
  go ()

let run ?(max_cycles = 5_000_000) t =
  let deadline = t.cycle + max_cycles in
  while (not (halted t)) && t.cycle <= deadline do
    step_cycle t
  done;
  if not (halted t) then failwith "System.run: cycle limit exceeded";
  t.cycle

type snapshot = { dffs : Bvec.t; ram_snap : Memory.snapshot }

let snapshot t =
  { dffs = Engine.dff_state t.eng; ram_snap = Memory.snapshot t.ram }

let restore t s =
  Memory.restore t.ram s.ram_snap;
  Engine.restore_dff_state t.eng s.dffs;
  apply_inputs t;
  Engine.eval t.eng;
  feed_memories t;
  (* the jump between exploration states is not switching activity *)
  Engine.sync_prev t.eng

let snapshot_dffs s = s.dffs
let snapshot_ram s = s.ram_snap

let snapshot_subsumes ~general ~specific =
  Bvec.subsumes ~general:general.dffs ~specific:specific.dffs
  && Memory.subsumes ~general:general.ram_snap ~specific:specific.ram_snap

let snapshot_merge a b =
  {
    dffs = Bvec.merge a.dffs b.dffs;
    ram_snap = Memory.merge_snapshot a.ram_snap b.ram_snap;
  }

let with_dffs s dffs = { s with dffs }
