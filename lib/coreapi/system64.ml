module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Netlist = Bespoke_netlist.Netlist
module Engine64 = Bespoke_sim.Engine64
module Memory = Bespoke_sim.Memory

(* Packed counterpart of {!System}: one core netlist simulated across
   up to 63 lanes at once, each lane with its own data RAM, GPIO value
   and IRQ line.  The ROM is shared (never written after load).  Code
   paths deliberately mirror {!System} statement for statement so each
   lane's committed activity is bit-identical to a scalar run. *)

let ilog2 n =
  let rec go i = if 1 lsl i >= n then i else go (i + 1) in
  go 0

type t = {
  core : Coredef.t;
  eng : Engine64.t;
  lanes : int;
  image : Coredef.image;
  rom : Memory.t;
  rams : Memory.t array;  (* one per lane *)
  gpio_in : Bvec.t array;  (* per lane *)
  irq : Bit.t array;  (* per lane *)
  mutable cycle : int;
  (* cached port/hook gate ids for the per-cycle hot path *)
  pmem_addr : int array;
  pmem_rdata : int array;
  dmem_addr : int array;
  dmem_rdata : int array;
  dmem_wdata : int array;
  dmem_ben : int array;
  dmem_wen : int;
  halted_id : int;
}

let word_index t (addr : Bvec.t) =
  Array.sub addr t.core.Coredef.addr_shift (ilog2 t.core.Coredef.mem_words)

let create ?(lanes = Engine64.max_lanes) ?netlist ~core
    (image : Coredef.image) =
  let net = match netlist with Some n -> n | None -> core.Coredef.build () in
  let eng = Engine64.create ~lanes net in
  let width = core.Coredef.word_bits in
  let rom = Memory.create ~words:core.Coredef.mem_words ~width ~init:Bit.Zero in
  Array.iteri (fun i w -> Memory.load_int rom i w) image.Coredef.rom;
  let rams =
    Array.init lanes (fun _ ->
        Memory.create ~words:core.Coredef.mem_words ~width ~init:Bit.Zero)
  in
  {
    core;
    eng;
    lanes;
    image;
    rom;
    rams;
    gpio_in = Array.make lanes (Bvec.of_int ~width 0);
    irq = Array.make lanes Bit.Zero;
    cycle = 0;
    pmem_addr = Netlist.find_name net "pmem_addr";
    pmem_rdata = Netlist.find_input net "pmem_rdata";
    dmem_addr = Netlist.find_name net "dmem_addr";
    dmem_rdata = Netlist.find_input net "dmem_rdata";
    dmem_wdata = Netlist.find_name net "dmem_wdata";
    dmem_ben = Netlist.find_name net "dmem_ben";
    dmem_wen = (Netlist.find_name net "dmem_wen").(0);
    halted_id = (Netlist.find_name net "halted").(0);
  }

let core t = t.core
let netlist t = Engine64.netlist t.eng
let engine t = t.eng
let lanes t = t.lanes
let image t = t.image
let cycles t = t.cycle

let read_ids_lane t ids lane =
  Array.map (fun id -> Engine64.value_lane t.eng id lane) ids

(* Feed packed memory read data for the currently settled cycle: read
   each lane's address scalar-wise, then transpose the data bits
   across lanes into the packed input rails. *)
let feed_one_port t ~addr_ids ~rdata_ids ~mem_of_lane =
  let lanes = t.lanes in
  let data = Array.make lanes [||] in
  for lane = 0 to lanes - 1 do
    let addr = read_ids_lane t addr_ids lane in
    data.(lane) <- Memory.read (mem_of_lane lane) (word_index t addr)
  done;
  Array.iteri
    (fun i id ->
      let lo = ref 0 and hi = ref 0 in
      for lane = 0 to lanes - 1 do
        (match data.(lane).(i) with
        | Bit.Zero -> lo := !lo lor (1 lsl lane)
        | Bit.One -> hi := !hi lor (1 lsl lane)
        | Bit.X ->
          lo := !lo lor (1 lsl lane);
          hi := !hi lor (1 lsl lane))
      done;
      Engine64.set_gate_packed t.eng id ~lo:!lo ~hi:!hi)
    rdata_ids

let feed_memories t =
  feed_one_port t ~addr_ids:t.pmem_addr ~rdata_ids:t.pmem_rdata
    ~mem_of_lane:(fun _ -> t.rom);
  feed_one_port t ~addr_ids:t.dmem_addr ~rdata_ids:t.dmem_rdata
    ~mem_of_lane:(fun lane -> t.rams.(lane));
  Engine64.eval t.eng

let apply_inputs t =
  Engine64.set_input_lanes t.eng "gpio_in" t.gpio_in;
  Engine64.set_input_lanes t.eng "irq" (Array.map (fun b -> [| b |]) t.irq)

let reset t =
  Array.iter (fun ram -> Memory.clear ram Bit.Zero) t.rams;
  Array.iteri (fun i w -> Memory.load_int t.rom i w) t.image.Coredef.rom;
  Engine64.reset t.eng;
  apply_inputs t;
  Engine64.eval t.eng;
  feed_memories t;
  t.cycle <- 0

let set_gpio_in_lane t lane v =
  t.gpio_in.(lane) <- v;
  apply_inputs t;
  Engine64.eval t.eng;
  feed_memories t

let set_gpio_in_lane_int t lane n =
  set_gpio_in_lane t lane (Bvec.of_int ~width:t.core.Coredef.word_bits n)

let set_irq_lanes t (vs : Bit.t array) =
  Array.blit vs 0 t.irq 0 t.lanes;
  apply_inputs t;
  Engine64.eval t.eng;
  feed_memories t

let read_hook_lane t name lane = Engine64.read_lane t.eng name lane
let read_hook_lane_int t name lane = Engine64.read_lane_int t.eng name lane

let halted_lane t lane =
  Bit.equal (Engine64.value_lane t.eng t.halted_id lane) Bit.One

let halted_mask t =
  let m = ref 0 in
  for lane = 0 to t.lanes - 1 do
    if halted_lane t lane then m := !m lor (1 lsl lane)
  done;
  !m

let ram t lane = t.rams.(lane)

let read_ram_word t lane addr =
  Memory.read_word t.rams.(lane) (Coredef.ram_index t.core addr)

let gpio_out_lane t lane = read_hook_lane t "gpio_out" lane

(* Sample this cycle's RAM writes, lane by lane, for active lanes
   only: a lane whose scalar counterpart has stopped must stop
   mutating its memory. *)
let sample_writes t ~active =
  for lane = 0 to t.lanes - 1 do
    if active land (1 lsl lane) <> 0 then begin
      let wen = Engine64.value_lane t.eng t.dmem_wen lane in
      match wen with
      | Bit.Zero -> ()
      | Bit.One | Bit.X ->
        let addr = read_ids_lane t t.dmem_addr lane in
        let ben = read_ids_lane t t.dmem_ben lane in
        let data = read_ids_lane t t.dmem_wdata lane in
        let mask =
          Array.init t.core.Coredef.word_bits (fun i -> ben.(i / 8))
        in
        Memory.write t.rams.(lane) ~addr:(word_index t addr) ~data ~mask ~en:wen
    end
  done

let step_cycle t ~active =
  sample_writes t ~active;
  Engine64.step t.eng;
  feed_memories t;
  Engine64.commit_cycle ~active t.eng;
  t.cycle <- t.cycle + 1

let load_ram_word t lane addr v =
  Memory.load_int t.rams.(lane) (Coredef.ram_index t.core addr) v
