module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Engine = Bespoke_sim.Engine
module Memory = Bespoke_sim.Memory
module Coredef = Bespoke_coreapi.Coredef
module System = Bespoke_coreapi.System
module Obs = Bespoke_obs.Obs

(* Execution-tree telemetry (no-ops unless Obs is enabled), flushed
   once per [analyze] call. *)
let m_branches = Obs.Metrics.counter "analysis.branches"
let m_merges = Obs.Metrics.counter "analysis.merges"
let m_prunes = Obs.Metrics.counter "analysis.prunes"
let m_paths = Obs.Metrics.counter "analysis.paths"
let m_cycles = Obs.Metrics.counter "analysis.cycles"

type config = {
  gpio_x : bool;
  irq_x : bool;
  ram_x_ranges : (int * int) list;
  max_total_cycles : int;
  max_paths : int;
  max_pc_candidates : int;
  computed_branch_fallback : [ `Escape | `Enumerate ];
  key_refinement : [ `Pc_only | `Pc_gie | `Full ];
  verbose : bool;
  probe : (System.t -> unit) option;
}

let default_config =
  {
    gpio_x = true;
    irq_x = true;
    ram_x_ranges = [];
    max_total_cycles = 3_000_000;
    max_paths = 20_000;
    max_pc_candidates = 1024;
    computed_branch_fallback = `Escape;
    key_refinement = `Full;
    verbose = false;
    probe = None;
  }

type first_toggle = { ft_cycle : int; ft_node : int; ft_pc : int }

type tree_node = {
  node_id : int;
  parent : int;
  edge_label : string;
  start_pc : int;
  mutable end_pc : int;
  mutable end_kind : string;
  mutable node_cycles : int;
}

type report = {
  possibly_toggled : bool array;
  constant_values : Bit.t array;
  paths : int;
  merges : int;
  prunes : int;
  total_cycles : int;
  halted_paths : int;
  escaped_paths : int;
  first_toggle : first_toggle option array;
  tree : tree_node array;
}

exception Analysis_error of string
exception Shadow_mismatch of string

let fail fmt = Printf.ksprintf (fun s -> raise (Analysis_error s)) fmt
let mismatch fmt = Printf.ksprintf (fun s -> raise (Shadow_mismatch s)) fmt

(* Positions of specific architectural bits inside the DFF-state
   vector, for forcing forked values.  In a bespoke (pruned) netlist
   some hook bits are constants rather than DFFs; those get position
   -1 and forcing skips them (a reachable forced value always agrees
   with the constant the cut recorded). *)
let dff_positions sys net hook =
  let ids = Netlist.find_name net hook in
  let dff_ids = Engine.dff_ids (System.engine sys) in
  let pos_of id =
    let rec go i =
      if i >= Array.length dff_ids then -1
      else if dff_ids.(i) = id then i
      else go (i + 1)
    in
    go 0
  in
  Array.map pos_of ids

type entry = {
  snap : System.snapshot;
  snap_sh : System.snapshot option;
  candidates : int list;  (* recorded jump targets if PC is unknown *)
  skip_table : bool;  (* fork children continue the merged state *)
  node : tree_node;  (* execution-tree node this entry continues *)
}

let analyze_impl ?(config = default_config) ?shadow sys =
  let net = System.netlist sys in
  let eng = System.engine sys in
  let core = System.core sys in
  let image = System.image sys in
  let rom = image.Coredef.rom in
  let rom_word a =
    if Coredef.in_rom core a then rom.((a - core.Coredef.rom_base) lsr core.Coredef.addr_shift)
    else 0
  in
  let classify ~pc =
    try core.Coredef.classify ~rom_word ~pc with Failure m -> fail "%s" m
  in
  let pc_pos = dff_positions sys net "pc" in
  let pc_width = Array.length pc_pos in
  let ifg0_pos = lazy (dff_positions sys net "irq_flag").(0) in
  let gie_pos =
    lazy
      (match core.Coredef.gie_bit with
      | Some (hook, bit) -> (dff_positions sys net hook).(bit)
      | None -> -1)
  in
  let pc_pos_sh =
    lazy
      (match shadow with
      | Some sh -> dff_positions sh (System.netlist sh) "pc"
      | None -> [||])
  in
  let ifg0_pos_sh =
    lazy
      (match shadow with
      | Some sh -> (dff_positions sh (System.netlist sh) "irq_flag").(0)
      | None -> -1)
  in
  let gie_pos_sh =
    lazy
      (match shadow, core.Coredef.gie_bit with
      | Some sh, Some (hook, bit) ->
        (dff_positions sh (System.netlist sh) hook).(bit)
      | _ -> -1)
  in
  let ie0_pos = lazy (dff_positions sys net "irq_enable").(0) in
  let ie0_pos_sh =
    lazy
      (match shadow with
      | Some sh -> (dff_positions sh (System.netlist sh) "irq_enable").(0)
      | None -> -1)
  in
  (* Valid fork targets for X-bit PC enumeration: actual instruction
     start addresses of the binary (mid-instruction words are not
     reachable boundaries of any concrete execution). *)
  let insn_starts =
    let tbl = Hashtbl.create 256 in
    List.iter (fun a -> Hashtbl.replace tbl a ()) image.Coredef.insn_addrs;
    tbl
  in
  let merges = ref 0 in
  let forks = ref 0 in
  let prunes = ref 0 in
  let paths = ref 0 in
  let halted_paths = ref 0 in
  let escaped_paths = ref 0 in
  let total_cycles = ref 0 in
  (* -- provenance: first-toggle attribution + execution tree -- *)
  let first_toggle = Array.make (Netlist.gate_count net) None in
  let nodes = ref [] in
  let node_count = ref 0 in
  let new_node ~parent ~edge ~start_pc =
    let n =
      {
        node_id = !node_count;
        parent;
        edge_label = edge;
        start_pc;
        end_pc = -1;
        end_kind = "open";
        node_cycles = 0;
      }
    in
    incr node_count;
    nodes := n :: !nodes;
    n
  in
  let root = new_node ~parent:(-1) ~edge:"reset" ~start_pc:(-1) in
  let cur_node = ref root in
  let cur_pc = ref (-1) in
  Engine.set_first_possibly_hook eng
    (Some
       (fun id ->
         match first_toggle.(id) with
         | Some _ -> ()
         | None ->
           first_toggle.(id) <-
             Some
               {
                 ft_cycle = !total_cycles;
                 ft_node = (!cur_node).node_id;
                 ft_pc = !cur_pc;
               }));
  Fun.protect ~finally:(fun () -> Engine.set_first_possibly_hook eng None)
  @@ fun () ->
  (* -- initialization -- *)
  let init_system s =
    System.reset s;
    if config.gpio_x then System.set_gpio_in_x s
    else System.set_gpio_in_int s 0;
    System.set_irq s (if config.irq_x then Bit.X else Bit.Zero);
    List.iter
      (fun (lo, hi) -> System.set_ram_x s ~lo_addr:lo ~hi_addr:hi)
      config.ram_x_ranges
  in
  init_system sys;
  Option.iter init_system shadow;
  let constant_values = Engine.snapshot_values eng in
  (* Conservative-state table keyed by (pc, GIE, stack context).
     Keeping interrupt-enabled/-disabled contexts and different stack
     contexts (SP bits 15:4) apart stops the merge from smearing one
     task's state into another's through shared code (handlers,
     context switches), which would otherwise drive SP to full X and
     make every X-address store conservatively touch the whole
     peripheral file.  Finer keys mean strictly less merging, so this
     only refines (never weakens) the paper's conservative scheme. *)
  let table :
      ( int * int * int * (int * int),
        System.snapshot * System.snapshot option )
      Hashtbl.t =
    Hashtbl.create 256
  in
  let sp_bucket () =
    match core.Coredef.sp_reg with
    | None -> 0
    | Some sp -> (
      let v = System.reg sys sp in
      match Bvec.to_int (Array.sub v 4 (Array.length v - 4)) with
      | Some b -> b
      | None -> -1)
  in
  let gie_value () =
    match core.Coredef.gie_bit with
    | Some (hook, bit) -> Bit.to_int (System.read_hook sys hook).(bit)
    | None -> 0
  in
  (* For instructions that load PC from memory (returns), the return
     context — the core-defined key words, e.g. the stack top — is
     part of the key: states returning to different places are never
     merged, so each continues to its concrete target instead of
     producing an X program counter. *)
  let ret_context pcv =
    core.Coredef.ret_context ~rom_word
      ~read_reg:(fun r -> Bvec.to_int (System.reg sys r))
      ~read_ram_word:(fun a -> Bvec.to_int (System.read_ram_word sys a))
      ~pc:pcv
  in
  let table_key pcv =
    match config.key_refinement with
    | `Pc_only -> (pcv, 0, 0, (0, 0))
    | `Pc_gie -> (pcv, gie_value (), 0, (0, 0))
    | `Full -> (pcv, gie_value (), sp_bucket (), ret_context pcv)
  in
  let stack : entry Stack.t = Stack.create () in
  let log fmt =
    if config.verbose then Printf.eprintf (fmt ^^ "\n%!")
    else Printf.ifprintf stderr fmt
  in

  (* Re-synthesized logic is functionally equivalent but not ternary-
     precision-identical (X can propagate differently through an
     equivalent gate structure), so the check is consistency: no bit
     may be definite in both designs with different values. *)
  let consistent a b =
    Array.for_all2
      (fun x y -> Bit.equal x y || not (Bit.is_known x && Bit.is_known y))
      a b
  in
  let compare_shadow context =
    match shadow with
    | None -> ()
    | Some sh ->
      List.iter
        (fun r ->
          let a = System.reg sys r and b = System.reg sh r in
          if not (consistent a b) then
            mismatch "%s: %s differs: original %s, bespoke %s" context
              (core.Coredef.reg_name r) (Bvec.to_string a) (Bvec.to_string b))
        core.Coredef.arch_regs;
      if System.halted sys <> System.halted sh then
        mismatch "%s: halt state differs" context
  in
  let compare_shadow_ram context =
    match shadow with
    | None -> ()
    | Some sh ->
      let ra = System.snapshot_ram (System.snapshot sys) in
      let rb = System.snapshot_ram (System.snapshot sh) in
      if not (Memory.consistent_snapshots ra rb) then
        mismatch "%s: data memory differs at path end" context
  in

  let snapshot_both () =
    (System.snapshot sys, Option.map System.snapshot shadow)
  in
  let restore_both (s, s_sh) =
    System.restore sys s;
    (match shadow, s_sh with
    | Some sh, Some ss -> System.restore sh ss
    | None, _ -> ()
    | Some _, None -> fail "internal: missing shadow snapshot")
  in

  let force_bits snap positions (value : Bvec.t) =
    let dffs = Bvec.copy (System.snapshot_dffs snap) in
    Array.iteri (fun i pos -> if pos >= 0 then dffs.(pos) <- value.(i)) positions;
    System.with_dffs snap dffs
  in
  let force_both (s, s_sh) ~pos ~pos_sh value =
    ( force_bits s pos value,
      match s_sh with
      | None -> None
      | Some ss -> Some (force_bits ss pos_sh value) )
  in

  (* Simulate from the current (settled, boundary) state to the next
     instruction boundary.  Returns the recorded conditional-jump
     candidates if the branch decision was unknown. *)
  let simulate_segment () =
    let candidates = ref [] in
    let rec go budget =
      if budget = 0 then fail "instruction did not complete in 20 cycles";
      System.step_cycle sys;
      Option.iter System.step_cycle shadow;
      Option.iter (fun f -> f sys) config.probe;
      incr total_cycles;
      (!cur_node).node_cycles <- (!cur_node).node_cycles + 1;
      if !total_cycles > config.max_total_cycles then
        fail "exceeded max_total_cycles (%d)" config.max_total_cycles;
      (* record candidate targets at an unknown branch decision *)
      (match (System.read_hook sys "exec_jump").(0) with
      | Bit.One | Bit.X -> (
        log "exec_jump: taken=%c"
          (Bit.to_char (System.read_hook sys "branch_taken").(0));
        match (System.read_hook sys "branch_taken").(0) with
        | Bit.X -> (
          match
            ( System.read_hook_int sys "branch_target",
              System.read_hook_int sys "branch_fallthrough" )
          with
          | Some t, Some f -> candidates := [ t; f ]
          | _ -> ())
        | Bit.Zero | Bit.One -> ())
      | Bit.Zero -> ());
      if System.halted sys then `Halted
      else
        match (System.read_hook sys "insn_boundary").(0) with
        | Bit.One -> `Boundary
        | Bit.X ->
          fail "FSM state became unknown (pc %s)" (Bvec.to_string (System.pc sys))
        | Bit.Zero -> go (budget - 1)
    in
    let r = go 20 in
    (r, !candidates)
  in

  (* Process one stack entry: run its path until pruned / halted /
     forked. *)
  let run_path (e : entry) =
    incr paths;
    if !paths > config.max_paths then fail "exceeded max_paths";
    restore_both (e.snap, e.snap_sh);
    let nd = e.node in
    cur_node := nd;
    cur_pc := -1;
    let finish kind =
      nd.end_kind <- kind;
      nd.end_pc <- !cur_pc
    in
    let skip_table = ref e.skip_table in
    let candidates = ref e.candidates in
    let finished = ref false in
    while not !finished do
      if System.halted sys then begin
        incr halted_paths;
        compare_shadow "halted path";
        compare_shadow_ram "halted path";
        finish "halted";
        finished := true
      end
      else begin
        compare_shadow "boundary";
        match Bvec.to_int (System.pc sys) with
        | None when !candidates = [] && config.computed_branch_fallback = `Escape
          ->
          (* a computed branch whose target merged to X: see the
             [computed_branch_fallback] documentation *)
          incr escaped_paths;
          log "computed-branch escape (pc %s)" (Bvec.to_string (System.pc sys));
          finish "escaped";
          finished := true
        | None ->
          (* conditional jump with unknown decision: fork on the
             recorded candidates; or, under [`Enumerate], bounded
             X-bit enumeration of a computed target *)
          let cands =
            match !candidates with
            | _ :: _ as c -> c
            | [] ->
              let pcv = System.pc sys in
              let valid =
                if Bvec.count_x pcv <= 10 then
                  List.filter_map
                    (fun v ->
                      let a = Bvec.to_int_exn v in
                      if
                        a land (core.Coredef.insn_align - 1) = 0
                        && Coredef.in_rom core a
                        && Hashtbl.mem insn_starts a
                      then Some a
                      else None)
                    (Bvec.concretizations pcv)
                else
                  Hashtbl.fold
                    (fun a () acc ->
                      if
                        Bvec.subsumes ~general:pcv
                          ~specific:(Bvec.of_int ~width:(Array.length pcv) a)
                      then a :: acc
                      else acc)
                    insn_starts []
              in
              if valid = [] then fail "no valid PC candidate";
              if List.length valid > config.max_pc_candidates then
                fail "too many PC candidates (%d)" (List.length valid);
              valid
          in
          let snap = snapshot_both () in
          List.iter
            (fun t ->
              let s, s_sh =
                force_both snap ~pos:pc_pos ~pos_sh:(Lazy.force pc_pos_sh)
                  (Bvec.of_int ~width:pc_width t)
              in
              let edge = Printf.sprintf "pc=0x%04x" t in
              (* prune eagerly if the table already covers this child *)
              let covered =
                Hashtbl.fold
                  (fun (p, _, _, _) (c, _) acc ->
                    acc
                    || p = t
                       && System.snapshot_subsumes ~general:c ~specific:s)
                  table false
              in
              if covered then begin
                incr prunes;
                let child = new_node ~parent:nd.node_id ~edge ~start_pc:t in
                child.end_kind <- "pruned";
                child.end_pc <- t
              end
              else begin
                incr forks;
                Stack.push
                  { snap = s; snap_sh = s_sh; candidates = [];
                    skip_table = false;
                    node = new_node ~parent:nd.node_id ~edge ~start_pc:t }
                  stack
              end)
            cands;
          log "fork: pc unknown -> %d candidates" (List.length cands);
          finish "forked";
          finished := true
        | Some pcv when
            (not (Coredef.in_rom core pcv)) || not (Hashtbl.mem insn_starts pcv)
          ->
          (* Only an over-approximate merged superstate can compute a
             PC outside the program (e.g. a spurious enumeration child
             that unwinds an empty stack).  No concrete execution of
             the binary reaches here, so ending the path loses no real
             activity; the count is reported for auditability. *)
          incr escaped_paths;
          log "path escaped at %04x" pcv;
          cur_pc := pcv;
          finish "escaped";
          finished := true
        | Some pcv ->
          cur_pc := pcv;
          let info = classify ~pc:pcv in
          let pending = (System.read_hook sys "irq_pending").(0) in
          let is_ctl =
            info.Coredef.ci_control || not (Bit.equal pending Bit.Zero)
          in
          if is_ctl && not !skip_table then begin
            let key = table_key pcv in
            let s = snapshot_both () in
            match Hashtbl.find_opt table key with
            | Some (c, _)
              when System.snapshot_subsumes ~general:c ~specific:(fst s) ->
              incr prunes;
              log "prune at %04x" pcv;
              finish "pruned";
              finished := true
            | Some (c, c_sh) ->
              let m = System.snapshot_merge c (fst s) in
              let m_sh =
                match c_sh, snd s with
                | Some a, Some b -> Some (System.snapshot_merge a b)
                | _ -> None
              in
              Hashtbl.replace table key (m, m_sh);
              incr merges;
              restore_both (m, m_sh);
              log "merge at %04x" pcv
            | None -> Hashtbl.replace table key s
          end;
          skip_table := false;
          if not !finished then begin
            (* Fork on an unknown pending-interrupt condition.  The
               fork must leave [pending] definite in every child, so
               every X bit among {IFG0, GIE, IE0} is enumerated (at
               most 8 children). *)
            let pending = (System.read_hook sys "irq_pending").(0) in
            (match pending with
            | Bit.X ->
              let s = snapshot_both () in
              let gie_source =
                match core.Coredef.gie_bit with
                | Some (hook, bit) ->
                  [ ((System.read_hook sys hook).(bit),
                     Lazy.force gie_pos, Lazy.force gie_pos_sh) ]
                | None -> []
              in
              let sources =
                ((System.read_hook sys "irq_flag").(0),
                 Lazy.force ifg0_pos, Lazy.force ifg0_pos_sh)
                :: gie_source
                @ [ ((System.read_hook sys "irq_enable").(0),
                     Lazy.force ie0_pos, Lazy.force ie0_pos_sh) ]
              in
              let unknown =
                List.filter (fun (v, _, _) -> not (Bit.is_known v)) sources
              in
              if unknown = [] then
                fail "irq_pending X but its sources are known at %04x" pcv;
              let children =
                List.fold_left
                  (fun acc (_, pos, pos_sh) ->
                    List.concat_map
                      (fun snap ->
                        [
                          force_both snap ~pos:[| pos |] ~pos_sh:[| pos_sh |]
                            [| Bit.Zero |];
                          force_both snap ~pos:[| pos |] ~pos_sh:[| pos_sh |]
                            [| Bit.One |];
                        ])
                      acc)
                  [ s ] unknown
              in
              (match children with
              | first :: rest ->
                List.iter
                  (fun (c, c_sh) ->
                    incr forks;
                    Stack.push
                      { snap = c; snap_sh = c_sh; candidates = [];
                        skip_table = true;
                        node =
                          new_node ~parent:nd.node_id ~edge:"irq-case"
                            ~start_pc:pcv }
                      stack)
                  rest;
                restore_both first
              | [] -> assert false);
              log "fork on pending irq at %04x (%d children)" pcv
                (List.length children)
            | Bit.Zero | Bit.One -> ());
            match simulate_segment () with
            | `Halted, _ ->
              incr halted_paths;
              compare_shadow "halted path";
              compare_shadow_ram "halted path";
              finish "halted";
              finished := true
            | `Boundary, cands -> candidates := cands
          end
      end
    done
  in

  (* reach the first instruction boundary (reset vector fetch) *)
  (match simulate_segment () with
  | `Boundary, _ -> ()
  | `Halted, _ ->
    incr halted_paths;
    root.end_kind <- "halted");
  let s0, s0_sh = snapshot_both () in
  Stack.push
    { snap = s0; snap_sh = s0_sh; candidates = []; skip_table = false;
      node = root }
    stack;
  while not (Stack.is_empty stack) do
    run_path (Stack.pop stack)
  done;
  if Obs.enabled () then begin
    Obs.Metrics.add m_branches !forks;
    Obs.Metrics.add m_merges !merges;
    Obs.Metrics.add m_prunes !prunes;
    Obs.Metrics.add m_paths !paths;
    Obs.Metrics.add m_cycles !total_cycles
  end;
  {
    possibly_toggled = Engine.possibly_toggled eng;
    constant_values;
    paths = !paths;
    merges = !merges;
    prunes = !prunes;
    total_cycles = !total_cycles;
    halted_paths = !halted_paths;
    escaped_paths = !escaped_paths;
    first_toggle;
    tree = Array.of_list (List.rev !nodes);
  }

let analyze ?config ?shadow sys =
  Obs.Span.with_ ~name:"analysis.analyze" (fun () ->
      analyze_impl ?config ?shadow sys)

let tree_dot ?(max_nodes = 4000) r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "digraph exec_tree {\n  rankdir=TB;\n\
    \  node [shape=box fontsize=9 fontname=\"monospace\"];\n";
  let n = Array.length r.tree in
  let shown = min n max_nodes in
  let pc_str p = if p < 0 then "?" else Printf.sprintf "0x%04x" p in
  for i = 0 to shown - 1 do
    let nd = r.tree.(i) in
    let color =
      match nd.end_kind with
      | "halted" -> "palegreen"
      | "pruned" -> "lightgray"
      | "escaped" -> "lightsalmon"
      | "forked" -> "lightblue"
      | _ -> "white"
    in
    Buffer.add_string b
      (Printf.sprintf
         "  n%d [label=\"#%d %s\\n%s -> %s\\n%d cycles\" style=filled \
          fillcolor=%s];\n"
         nd.node_id nd.node_id nd.end_kind (pc_str nd.start_pc)
         (pc_str nd.end_pc) nd.node_cycles color);
    (* a node's parent always has a smaller id, so it is never cut off
       by the [max_nodes] truncation before its children *)
    if nd.parent >= 0 then
      Buffer.add_string b
        (Printf.sprintf "  n%d -> n%d [label=\"%s\" fontsize=8];\n" nd.parent
           nd.node_id nd.edge_label)
  done;
  if shown < n then
    Buffer.add_string b
      (Printf.sprintf "  trunc [label=\"... %d more nodes\" shape=plaintext];\n"
         (n - shown));
  Buffer.add_string b "}\n";
  Buffer.contents b

let exercisable_count r =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 r.possibly_toggled

let gate_is_cuttable r net id =
  (not r.possibly_toggled.(id))
  &&
  match net.Netlist.gates.(id).Gate.op with
  | Gate.Input | Gate.Const _ -> false
  | _ -> true
