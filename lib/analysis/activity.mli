(** Input-independent gate activity analysis (paper Algorithm 1).

    Symbolically simulates a program on the gate-level system with all
    application inputs unknown (X), exploring the execution tree:

    - at an input-dependent conditional jump the explorer forks on the
      two recorded candidate targets;
    - at an input-dependent computed branch (PC with X bits and no
      recorded candidates) it falls back to bounded enumeration of the
      X bits, keeping only even ROM addresses;
    - when the pending-interrupt condition is unknown it forks on the
      interrupt flag;
    - at every PC-modifying instruction boundary the state is checked
      against the most conservative state previously observed at that
      PC: substates are pruned, otherwise the table entry is merged
      and simulation continues from the merged (more conservative)
      state, which guarantees the continuation covers every state
      merged into it.

    The result is the set of gates that can possibly toggle in {e any}
    execution with {e any} inputs, and the constant values of all the
    others. *)

module Bit := Bespoke_logic.Bit
module System := Bespoke_coreapi.System

type config = {
  gpio_x : bool;  (** drive the GPIO input port with X (default true) *)
  irq_x : bool;  (** drive the IRQ line with X (default true) *)
  ram_x_ranges : (int * int) list;
      (** byte-address ranges of RAM holding application inputs *)
  max_total_cycles : int;
  max_paths : int;
  max_pc_candidates : int;
  computed_branch_fallback : [ `Escape | `Enumerate ];
      (** What to do when the PC is unknown at a boundary {e without}
          recorded conditional-jump candidates (a computed branch —
          RET/RETI/BR — whose target merged to X).  Every concrete
          predecessor path pushed a concrete target and was explored
          before the merge, and X data reaching post-return code is
          propagated by the conservative table at the surrounding
          control points, so [`Escape] ends such merge-artifact paths
          (counted in [escaped_paths]).  [`Enumerate] instead forks
          over every instruction-start the X pattern allows — fully
          conservative, but the spurious children execute from
          mid-sequence states and can smear X over shared memory,
          grossly over-approximating interrupt-driven programs. *)
  key_refinement : [ `Pc_only | `Pc_gie | `Full ];
      (** Granularity of the conservative-state table key: PC only
          (the paper's scheme), PC+GIE, or PC+GIE+stack context
          (default).  Finer keys merge strictly less, trading paths
          explored for precision; see the ablation bench. *)
  verbose : bool;
  probe : (System.t -> unit) option;
      (** debugging hook, called after every simulated cycle *)
}

val default_config : config

type first_toggle = {
  ft_cycle : int;
      (** global analysis cycle at which the gate was first marked
          possibly-toggled *)
  ft_node : int;  (** execution-tree node ({!tree_node.node_id}) *)
  ft_pc : int;
      (** PC of the instruction executing at that boundary, [-1] when
          it was not concrete (e.g. during reset) *)
}
(** Provenance of a gate's first possible toggle: the answer to "which
    instruction / path first exercised gate H?". *)

type tree_node = {
  node_id : int;
  parent : int;  (** [-1] for the root (reset) node *)
  edge_label : string;
      (** how the explorer reached this node from its parent:
          ["reset"], ["pc=0x.."] (branch fork), ["irq-case"] *)
  start_pc : int;  (** first concrete PC, [-1] for the reset node *)
  mutable end_pc : int;  (** last concrete PC seen, [-1] if none *)
  mutable end_kind : string;
      (** ["halted"], ["pruned"], ["escaped"], ["forked"] (or ["open"]
          if exploration aborted inside the node) *)
  mutable node_cycles : int;  (** cycles simulated within this node *)
}
(** One node of the explored symbolic execution tree. *)

type report = {
  possibly_toggled : bool array;
  constant_values : Bit.t array;
      (** reset-time value per gate; meaningful where not possibly
          toggled *)
  paths : int;  (** execution-tree paths explored *)
  merges : int;  (** conservative-superstate merges *)
  prunes : int;  (** paths pruned as substates *)
  total_cycles : int;
  halted_paths : int;
  escaped_paths : int;
      (** paths ended because an over-approximate merged superstate
          computed a PC outside the program — impossible for any
          concrete execution, reported for auditability *)
  first_toggle : first_toggle option array;
      (** per gate; [Some _] exactly for possibly-toggled gates *)
  tree : tree_node array;  (** indexed by [node_id] *)
}

exception Analysis_error of string

exception Shadow_mismatch of string
(** Raised by a shadow run (below) on the first architectural-state
    divergence. *)

val analyze : ?config:config -> ?shadow:System.t -> System.t -> report
(** Resets the system first.  @raise Analysis_error when the
    exploration exceeds its bounds or control state becomes
    unrecoverably unknown.

    [shadow] is the paper's symbolic verification procedure (Section
    5.1): a second system — typically the bespoke design — is stepped
    in lockstep through the {e same} execution tree (same forks, same
    merges), and the architectural state (PC, SP, SR, R4..R15) is
    compared at every instruction boundary, the data RAM at every
    halted path end.  @raise Shadow_mismatch on divergence. *)

val tree_dot : ?max_nodes:int -> report -> string
(** The explored execution tree as a Graphviz digraph (nodes colored
    by end kind, edges labeled with the fork decision).  At most
    [max_nodes] (default 4000) nodes are drawn, lowest ids first, with
    a truncation marker. *)

val exercisable_count : report -> int
val gate_is_cuttable : report -> Bespoke_netlist.Netlist.t -> int -> bool
(** True for a real gate (not port/const) that can never toggle. *)
