(** The campaign engine: batches of flow jobs sharded across the
    persistent {!Bespoke_core.Pool}, memoized by the content-addressed
    {!Bespoke_core.Flowcache}, streamed as schema-versioned
    [bespoke-campaign/v1] JSONL.

    A job that raises yields an error record (its [status] is
    [Error _]); every other job still completes — a campaign never
    dies with a job. *)

module B := Bespoke_programs.Benchmark
module Runner := Bespoke_core.Runner

type kind =
  | Analyze  (** input-independent activity analysis *)
  | Tailor  (** analysis + cut-and-stitch + resynthesis *)
  | Report  (** tailor + representative run + area/power report *)
  | Verify  (** the three-layer verification campaign *)
  | Run  (** concrete ISS/gate run with equivalence check *)
  | Guard
      (** deployment-guard replay: the benchmark (or its mutant
          [mutant], when >= 0) runs on the bespoke design with the
          {!Bespoke_guard.Guard} shadow watcher attached; the payload
          carries monitor coverage and the violation verdict *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type program =
  | Named of string
      (** resolved against the job's core's benchmark registry
          ({!Bespoke_cores.Cores}) at {e execution} time, so an
          unknown name — or an unknown core — is that job's error
          record, not a campaign failure *)
  | Inline of B.t

type job = {
  kind : kind;
  core : string;  (** {!Bespoke_cores.Cores} registry name *)
  program : program;
  seed : int;  (** concrete-input seed for report/run/verify/guard *)
  faults : int;  (** injected faults for verify *)
  mutant : int;  (** guard workload: mutant id, or < 0 for the program *)
  engine : Runner.engine;
}

val job :
  ?kind:kind -> ?core:string -> ?seed:int -> ?faults:int -> ?mutant:int ->
  ?engine:Runner.engine -> program -> job
(** Defaults: [Analyze], the default core ([msp430]), seed 1, 3
    faults, mutant -1, [Compiled]. *)

val program_name : program -> string

type outcome = {
  o_job : job;
  o_index : int;  (** position in the submitted job list *)
  status : ((string * string) list, string) result;
      (** [Ok payload] as (field, raw JSON value) pairs, or the
          exception text *)
  time_s : float;
  cached : bool;  (** payload came from the flow cache *)
}

type summary = {
  total : int;
  ok : int;
  failed : int;
  cache_hits : int;
  wall_s : float;
  jobs_used : int;
}

(** Live campaign events, for progress reporting. *)
type event =
  | Job_started of int * job  (** input index, just dequeued *)
  | Job_finished of outcome

(** A consistent snapshot of campaign progress, passed to the event
    hook alongside every event. *)
type progress = {
  p_done : int;
  p_ok : int;
  p_failed : int;
  p_cached : int;
  p_running : int;  (** started but not yet finished *)
  p_total : int;
  p_elapsed_s : float;
}

val jobs_per_sec : progress -> float
(** Completion rate so far; 0 until the first job finishes. *)

val eta_s : progress -> float option
(** Remaining wall-clock estimate at the current rate; [None] until
    the first job finishes. *)

val cache_hit_rate : progress -> float
(** Fraction of finished jobs served from the flow cache, in [0,1]. *)

val progress_line : progress -> string
(** One-line human status: done/running/failed, jobs/s, cache
    hit-rate, ETA — what [campaign --progress] renders to stderr. *)

val run :
  ?jobs:int ->
  ?on_outcome:(outcome -> unit) ->
  ?on_event:(event -> progress -> unit) ->
  job list ->
  outcome list * summary
(** Execute the jobs on the pool ([jobs] defaults to
    {!Bespoke_core.Pool.default_jobs}; either way the count is
    clamped to the hardware's concurrency — the campaign is CPU-bound
    and oversubscribed domains only slow it down).  The count
    actually used is reported as [jobs_used].  [on_outcome] is called as
    each job finishes and [on_event] on every start/finish, with the
    progress snapshot taken after applying the event; both are
    serialized under one lock — safe to write a stream from.
    Outcomes are returned in input order regardless.  Each job is
    memoized by (kind, binary hash, netlist hash, input content,
    params) — the engine is not part of the key, engines are
    bit-identical.

    Exception: [Sys.Break] is {e not} crash-isolated — an interrupt
    aborts the campaign (pending jobs are skipped, the whole run
    raises [Sys.Break]) rather than becoming one job's error
    record. *)

val parse_line : string -> (job option, string) result
(** One job-list line:
    [KIND BENCH [core=NAME] [seed=N] [faults=N] [mutant=N] [engine=E]].
    Blank lines and [#] comments are [Ok None]. *)

val parse_file : string -> (job list, string) result
(** Parse a job file; the error carries [file:line:]. *)

val schema : string
(** ["bespoke-campaign/v1"]. *)

val header_jsonl : jobs:int -> cores:string list -> total:int -> string
(** [cores] is the distinct core names the campaign targets — an
    additive field of the [bespoke-campaign/v1] header. *)

val outcome_jsonl : outcome -> string

val heartbeat_jsonl : seq:int -> progress -> string
(** A machine-readable progress record interleaved into the stream;
    distinguished from outcomes by its ["heartbeat"] field. *)

val summary_jsonl : summary -> string
