(** The campaign engine: batches of flow jobs sharded across the
    persistent {!Bespoke_core.Pool}, memoized by the content-addressed
    {!Bespoke_core.Flowcache}, streamed as schema-versioned
    [bespoke-campaign/v1] JSONL.

    A job that raises yields an error record (its [status] is
    [Error _]); every other job still completes — a campaign never
    dies with a job. *)

module B := Bespoke_programs.Benchmark
module Runner := Bespoke_core.Runner

type kind =
  | Analyze  (** input-independent activity analysis *)
  | Tailor  (** analysis + cut-and-stitch + resynthesis *)
  | Report  (** tailor + representative run + area/power report *)
  | Verify  (** the three-layer verification campaign *)
  | Run  (** concrete ISS/gate run with equivalence check *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type program =
  | Named of string
      (** resolved against the benchmark suite (plus the RTOS kernel
          and SUBNEG characterization) at {e execution} time, so an
          unknown name is that job's error record, not a campaign
          failure *)
  | Inline of B.t

type job = {
  kind : kind;
  program : program;
  seed : int;  (** concrete-input seed for report/run/verify *)
  faults : int;  (** injected faults for verify *)
  engine : Runner.engine;
}

val job :
  ?kind:kind -> ?seed:int -> ?faults:int -> ?engine:Runner.engine ->
  program -> job
(** Defaults: [Analyze], seed 1, 3 faults, [Compiled]. *)

val program_name : program -> string

type outcome = {
  o_job : job;
  o_index : int;  (** position in the submitted job list *)
  status : ((string * string) list, string) result;
      (** [Ok payload] as (field, raw JSON value) pairs, or the
          exception text *)
  time_s : float;
  cached : bool;  (** payload came from the flow cache *)
}

type summary = {
  total : int;
  ok : int;
  failed : int;
  cache_hits : int;
  wall_s : float;
  jobs_used : int;
}

val run :
  ?jobs:int -> ?on_outcome:(outcome -> unit) -> job list ->
  outcome list * summary
(** Execute the jobs on the pool ([jobs] defaults to
    {!Bespoke_core.Pool.default_jobs}; either way the count is
    clamped to the hardware's concurrency — the campaign is CPU-bound
    and oversubscribed domains only slow it down).  The count
    actually used is reported as [jobs_used].  [on_outcome] is called as
    each job finishes (serialized — safe to write a stream from);
    outcomes are returned in input order regardless.  Each job is
    memoized by (kind, binary hash, netlist hash, input content,
    params) — the engine is not part of the key, engines are
    bit-identical. *)

val parse_line : string -> (job option, string) result
(** One job-list line: [KIND BENCH [seed=N] [faults=N] [engine=E]].
    Blank lines and [#] comments are [Ok None]. *)

val parse_file : string -> (job list, string) result
(** Parse a job file; the error carries [file:line:]. *)

val schema : string
(** ["bespoke-campaign/v1"]. *)

val header_jsonl : jobs:int -> total:int -> string
val outcome_jsonl : outcome -> string
val summary_jsonl : summary -> string
