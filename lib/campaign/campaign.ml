(* The campaign engine: run a batch of (program, config) flow jobs as
   fast as the hardware allows.

   Jobs are sharded across the persistent Pool (work-stealing domain
   pool); every job runs through the content-addressed Flowcache, so a
   campaign that touches the same (binary, netlist, config) triple
   twice — analyze + tailor + report of one benchmark, or a warm rerun
   of a whole campaign — pays for the expensive analysis once.  A job
   that raises yields an error record; the campaign always completes.

   Results stream as schema-versioned bespoke-campaign/v1 JSONL: one
   header line, one record per job (in completion order — the [job]
   field is the input index), one trailing summary line. *)

module B = Bespoke_programs.Benchmark
module Coredef = Bespoke_coreapi.Coredef
module Cores = Bespoke_cores.Cores
module Activity = Bespoke_analysis.Activity
module Netlist = Bespoke_netlist.Netlist
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Pool = Bespoke_core.Pool
module Flowcache = Bespoke_core.Flowcache
module Report = Bespoke_power.Report
module Verify = Bespoke_verify.Verify
module Guard = Bespoke_guard.Guard
module Mutation = Bespoke_mutation.Mutation
module Obs = Bespoke_obs.Obs

let m_jobs = Obs.Metrics.counter "campaign.jobs"
let m_failures = Obs.Metrics.counter "campaign.failures"

let now = Unix.gettimeofday

type kind = Analyze | Tailor | Report | Verify | Run | Guard

let kind_to_string = function
  | Analyze -> "analyze"
  | Tailor -> "tailor"
  | Report -> "report"
  | Verify -> "verify"
  | Run -> "run"
  | Guard -> "guard"

let kind_of_string = function
  | "analyze" -> Some Analyze
  | "tailor" -> Some Tailor
  | "report" -> Some Report
  | "verify" -> Some Verify
  | "run" -> Some Run
  | "guard" -> Some Guard
  | _ -> None

type program = Named of string | Inline of B.t

type job = {
  kind : kind;
  core : string;  (* registry name of the target core *)
  program : program;
  seed : int;
  faults : int;
  mutant : int;
  engine : Runner.engine;
}

let job ?(kind = Analyze) ?core ?(seed = 1) ?(faults = 3) ?(mutant = -1)
    ?(engine = Runner.Compiled) program =
  let core =
    match core with
    | Some c -> c
    | None -> Cores.default.Cores.core.Coredef.name
  in
  { kind; core; program; seed; faults; mutant; engine }

let program_name = function Named n -> n | Inline b -> b.B.name

(* Cores and benchmarks are resolved at execution time, inside the
   per-job exception fence — an unknown name becomes that job's error
   record, never a dead campaign.  Benchmark registries are per-core:
   the same name ("mult", ...) may resolve to a different port on each
   core. *)
let resolve_core name = Cores.find_exn name

let resolve_program (entry : Cores.entry) = function
  | Inline b -> b
  | Named name -> (
    match Cores.benchmark entry name with
    | Some b -> b
    | None ->
      failwith
        (Printf.sprintf "unknown benchmark %S on core %s (see `bespoke bench-list`)"
           name entry.Cores.core.Coredef.name))

(* ------------------------------------------------------------------ *)
(* Job execution.  Every kind goes through the campaign job cache —
   keyed by kind, binary image hash, netlist hash and the parameters
   that affect the result (seed/faults where they matter; the engine
   is excluded because all engines are bit-identical).  The payload is
   a list of (field, raw JSON value) pairs, ready to stream. *)

let jobs_cache : (string * string) list Flowcache.t =
  Flowcache.create ~name:"campaign.jobs" ()

let freq_hz = 1e8

let num f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

let count_toggled a =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a

let analyze_payload (report : Activity.report) =
  [
    ("toggled_gates", string_of_int (count_toggled report.Activity.possibly_toggled));
    ("paths", string_of_int report.Activity.paths);
    ("total_cycles", string_of_int report.Activity.total_cycles);
  ]

(* Tailored designs are cached too, so a Report job after (or racing)
   a Tailor job of the same benchmark reuses the cut instead of
   re-cutting.  The analysis config is the default one, so the key
   only needs what varies it: image, netlist, X-ranges, IRQ use. *)
let tailor_cache : (Activity.report * Netlist.t * Cut.stats) Flowcache.t =
  Flowcache.create ~name:"campaign.tailor" ()

let tailored ~core b =
  let key =
    Flowcache.digest
      [
        "campaign.tailor";
        Coredef.fingerprint core;
        Runner.image_hash (Runner.image ~core b);
        Runner.shared_netlist_hash core;
        String.concat ","
          (List.map (fun (a, z) -> Printf.sprintf "%x-%x" a z) b.B.input_ranges);
        string_of_bool b.B.uses_irq;
      ]
  in
  Flowcache.find_or_compute tailor_cache ~key (fun () ->
      let (report, net), _ = Runner.analyze_cached ~core b in
      let bespoke, stats =
        Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
          ~constants:report.Activity.constant_values
      in
      (report, bespoke, stats))

let stats_payload (stats : Cut.stats) =
  [
    ("gates_original", string_of_int stats.Cut.original_gates);
    ("gates_cut", string_of_int stats.Cut.cut_gates);
    ("gates_bespoke", string_of_int stats.Cut.bespoke_gates);
    ("area_ratio", num (stats.Cut.bespoke_area /. stats.Cut.original_area));
  ]

let exec_kind (j : job) ~(core : Coredef.t) (b : B.t) : (string * string) list =
  match j.kind with
  | Analyze ->
    let (report, _), _ = Runner.analyze_cached ~core b in
    analyze_payload report
  | Tailor ->
    let _, _, stats = tailored ~core b in
    stats_payload stats
  | Report ->
    let _, bespoke, stats = tailored ~core b in
    let o =
      Runner.run_gate ~engine:j.engine ~netlist:bespoke ~core b ~seed:j.seed
    in
    let p =
      Report.power ~freq_hz ~toggles:o.Runner.toggles
        ~cycles:o.Runner.sim_cycles bespoke
    in
    stats_payload stats
    @ [
        ("area_um2", num p.Report.area_um2);
        ("total_nw", num p.Report.total_nw);
        ("cycles", string_of_int o.Runner.g_cycles);
      ]
  | Verify ->
    let c =
      Verify.check_benchmark ~engine:j.engine ~faults:j.faults ~seed:j.seed
        ~core b
    in
    let score = Verify.kill_stats c in
    [
      ("equivalent", if c.Verify.equivalent then "true" else "false");
      ("faults_injected", string_of_int score.Verify.injected);
      ("faults_survived", string_of_int score.Verify.survived);
      ("kill_score_pct", num (Verify.kill_score_pct score));
    ]
  | Run ->
    let iss = Runner.check_equivalence ~engine:j.engine ~core b ~seed:j.seed in
    [
      ("cycles", string_of_int iss.Runner.cycles);
      ("instructions", string_of_int iss.Runner.instructions);
      ("equivalent", "true");
    ]
  | Guard ->
    (* deployment-guard replay: the bespoke design tailored to [b],
       watched by the shadow cut-assumption monitors, running either
       [b] itself (mutant < 0) or one of its single-instruction
       mutants — the in-field-update risk as a campaign job *)
    let (report, net), _ = Runner.analyze_cached ~core b in
    let bespoke, _, prov =
      Cut.tailor_explained net
        ~possibly_toggled:report.Activity.possibly_toggled
        ~constants:report.Activity.constant_values
    in
    let plan =
      Guard.plan ~original:net ~bespoke ~prov
        ~possibly_toggled:report.Activity.possibly_toggled
        ~constants:report.Activity.constant_values
    in
    let workload =
      if j.mutant < 0 then b
      else if core.Coredef.name <> Cores.default.Cores.core.Coredef.name then
        (* the mutation catalog rewrites MSP430 assembly; other cores
           replay their pristine workload only *)
        failwith
          (Printf.sprintf "guard mutants are not available on core %s"
             core.Coredef.name)
      else
        match
          List.find_opt
            (fun m -> m.Mutation.id = j.mutant)
            (Mutation.mutants b)
        with
        | Some m -> Mutation.to_benchmark b m
        | None ->
          failwith
            (Printf.sprintf "no mutant %d of %s (see `bespoke guard --list`)"
               j.mutant b.B.name)
    in
    let w = Guard.watch_bespoke plan in
    let rp =
      Guard.replay ~engine:j.engine w ~core ~netlist:bespoke workload
        ~seed:j.seed
    in
    [
      ("workload", json_str workload.B.name);
      ("assumptions", string_of_int (List.length plan.Guard.p_assumptions));
      ("monitors", string_of_int (List.length plan.Guard.p_monitors));
      ("implied", string_of_int plan.Guard.p_implied);
      ("unmonitorable", string_of_int plan.Guard.p_unmonitorable);
      ("halted", if Result.is_ok rp.Guard.rp_result then "true" else "false");
      ("cycles_checked", string_of_int (Guard.cycles_checked w));
      ("violations", string_of_int (Guard.total_violations w));
      ( "violating_gates",
        string_of_int (List.length (Guard.violations w)) );
      ("clean", if Guard.clean w then "true" else "false");
    ]

(* The part of a benchmark's input content the image hash cannot see:
   the analysis X-ranges, and for concrete runs the generated RAM
   writes, GPIO value and IRQ schedule at the job's seed.  Without
   this, two benchmarks sharing a binary but differing in inputs would
   alias in the cache.  Generation runs inside the per-job fence, so a
   benchmark whose [gen_inputs] raises becomes an error record before
   it ever touches the cache. *)
let inputs_fingerprint (j : job) (b : B.t) =
  let ranges =
    String.concat ","
      (List.map (fun (a, z) -> Printf.sprintf "%x-%x" a z) b.B.input_ranges)
  in
  match j.kind with
  | Analyze | Tailor -> Printf.sprintf "ranges=%s;irq=%b" ranges b.B.uses_irq
  | Report | Run | Verify | Guard ->
    let writes, gpio = b.B.gen_inputs j.seed in
    let irqs = if b.B.uses_irq then b.B.irq_pulses j.seed else [] in
    let buf = Buffer.create 64 in
    List.iter
      (fun (a, v) -> Buffer.add_string buf (Printf.sprintf "%x:%x;" a v))
      writes;
    Printf.sprintf "ranges=%s;inputs=%s;gpio=%x;irqs=%s" ranges
      (Digest.to_hex (Digest.string (Buffer.contents buf)))
      gpio
      (String.concat "," (List.map string_of_int irqs))

let exec_job (j : job) : (string * string) list * bool =
  let entry = resolve_core j.core in
  let core = entry.Cores.core in
  let b = resolve_program entry j.program in
  let params =
    match j.kind with
    | Analyze | Tailor -> ""
    | Report | Run -> Printf.sprintf "seed=%d" j.seed
    | Verify -> Printf.sprintf "seed=%d;faults=%d" j.seed j.faults
    | Guard -> Printf.sprintf "seed=%d;mutant=%d" j.seed j.mutant
  in
  let key =
    Flowcache.digest
      [
        "campaign";
        kind_to_string j.kind;
        Coredef.fingerprint core;
        Runner.image_hash (Runner.image ~core b);
        Runner.shared_netlist_hash core;
        inputs_fingerprint j b;
        params;
      ]
  in
  Flowcache.find_or_compute_report jobs_cache ~key (fun () ->
      exec_kind j ~core b)

(* ------------------------------------------------------------------ *)

type outcome = {
  o_job : job;
  o_index : int;
  status : ((string * string) list, string) result;
  time_s : float;
  cached : bool;
}

type summary = {
  total : int;
  ok : int;
  failed : int;
  cache_hits : int;
  wall_s : float;
  jobs_used : int;
}

(* ---- live progress ---- *)

type event = Job_started of int * job | Job_finished of outcome

type progress = {
  p_done : int;
  p_ok : int;
  p_failed : int;
  p_cached : int;
  p_running : int;
  p_total : int;
  p_elapsed_s : float;
}

let jobs_per_sec p =
  if p.p_elapsed_s > 0.0 && p.p_done > 0 then
    float_of_int p.p_done /. p.p_elapsed_s
  else 0.0

let eta_s p =
  let r = jobs_per_sec p in
  if r > 0.0 then Some (float_of_int (p.p_total - p.p_done) /. r) else None

let cache_hit_rate p =
  if p.p_done > 0 then float_of_int p.p_cached /. float_of_int p.p_done
  else 0.0

let progress_line p =
  Printf.sprintf
    "campaign: %d/%d done, %d running, %d failed, %.1f jobs/s, cache %.0f%%, \
     ETA %s"
    p.p_done p.p_total p.p_running p.p_failed (jobs_per_sec p)
    (100.0 *. cache_hit_rate p)
    (match eta_s p with Some e -> Printf.sprintf "%.0fs" e | None -> "?")

let run ?jobs ?on_outcome ?on_event (js : job list) =
  (* the campaign is CPU-bound, so even an explicit request is capped
     at the hardware's concurrency *)
  let jobs_n =
    match jobs with
    | Some j -> Pool.clamp_jobs j
    | None -> Pool.default_jobs ()
  in
  Obs.Span.with_ ~name:"campaign.run"
    ~args:
      [
        ("jobs", string_of_int jobs_n);
        ("tasks", string_of_int (List.length js));
      ]
  @@ fun () ->
  (* shared memos, forced once per distinct core before the domains
     fan out (the memo tables are not domain-safe).  An unresolvable
     core name is skipped here — it becomes that job's error record
     inside the execution fence. *)
  List.iter
    (fun name ->
      match Cores.find name with
      | Some e ->
        ignore (Runner.shared_netlist e.Cores.core);
        ignore (Runner.shared_netlist_hash e.Cores.core)
      | None -> ())
    (List.sort_uniq compare (List.map (fun j -> j.core) js));
  let t0 = now () in
  (* One lock serializes progress-state updates AND both callbacks, so
     a stream writer in the callback sees events in a consistent
     order with monotonically advancing progress counts. *)
  let cb_lock = Mutex.create () in
  let st =
    ref
      {
        p_done = 0;
        p_ok = 0;
        p_failed = 0;
        p_cached = 0;
        p_running = 0;
        p_total = List.length js;
        p_elapsed_s = 0.0;
      }
  in
  let guard what f =
    try f ()
    with e ->
      Printf.eprintf "warning: campaign %s raised: %s\n%!" what
        (Printexc.to_string e)
  in
  let started i j =
    if on_event <> None then begin
      Mutex.lock cb_lock;
      st :=
        { !st with p_running = !st.p_running + 1; p_elapsed_s = now () -. t0 };
      Option.iter
        (fun f -> guard "on_event" (fun () -> f (Job_started (i, j)) !st))
        on_event;
      Mutex.unlock cb_lock
    end
  in
  let emit o =
    if on_outcome <> None || on_event <> None then begin
      Mutex.lock cb_lock;
      let ok = Result.is_ok o.status in
      st :=
        {
          !st with
          p_done = !st.p_done + 1;
          p_ok = (!st.p_ok + if ok then 1 else 0);
          p_failed = (!st.p_failed + if ok then 0 else 1);
          p_cached = (!st.p_cached + if o.cached then 1 else 0);
          p_running = max 0 (!st.p_running - 1);
          p_elapsed_s = now () -. t0;
        };
      Option.iter (fun f -> guard "on_outcome" (fun () -> f o)) on_outcome;
      Option.iter
        (fun f -> guard "on_event" (fun () -> f (Job_finished o) !st))
        on_event;
      Mutex.unlock cb_lock
    end
  in
  (* A Ctrl-C (Sys.Break) is the user killing the campaign, not a job
     failure: the struck job sets the abort flag and re-raises, jobs
     not yet started bail out immediately, and the whole run surfaces
     one Sys.Break (so the CLI flushes partial telemetry on the way
     out) instead of a Task_errors full of per-job records. *)
  let aborted = Atomic.make false in
  let outcomes =
    try
      Pool.map ~jobs:jobs_n
        (fun (i, j) ->
          if Atomic.get aborted then raise Sys.Break;
          Obs.Metrics.incr m_jobs;
          started i j;
          let t = now () in
          let status, cached =
            match exec_job j with
            | payload, hit -> (Ok payload, hit)
            | exception Sys.Break ->
              Atomic.set aborted true;
              raise Sys.Break
            | exception e ->
              Obs.Metrics.incr m_failures;
              let m =
                match e with Failure m -> m | e -> Printexc.to_string e
              in
              (Error m, false)
          in
          let o =
            { o_job = j; o_index = i; status; time_s = now () -. t; cached }
          in
          emit o;
          o)
        (List.mapi (fun i j -> (i, j)) js)
    with
    | Pool.Task_errors errs
      when List.exists
             (fun (_, e) -> match e with Sys.Break -> true | _ -> false)
             errs ->
      raise Sys.Break
  in
  let ok = List.length (List.filter (fun o -> Result.is_ok o.status) outcomes) in
  let hits = List.length (List.filter (fun o -> o.cached) outcomes) in
  let summary =
    {
      total = List.length outcomes;
      ok;
      failed = List.length outcomes - ok;
      cache_hits = hits;
      wall_s = now () -. t0;
      jobs_used = jobs_n;
    }
  in
  (outcomes, summary)

(* ------------------------------------------------------------------ *)
(* Job-list parsing: one job per line, `KIND BENCH [core=NAME] [seed=N]
   [faults=N] [engine=E]`; blank lines and #-comments are skipped.  A
   malformed line is a campaign-level error (the file is wrong, not a
   job); an unknown core or benchmark NAME is a job-level error,
   surfaced when the job runs. *)

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line))
  in
  match words with
  | [] -> Ok None
  | kind_s :: bench :: opts -> (
    match kind_of_string kind_s with
    | None -> Error (Printf.sprintf "unknown job kind %S" kind_s)
    | Some kind -> (
      let j = ref (job ~kind (Named bench)) in
      let bad = ref None in
      List.iter
        (fun opt ->
          match String.split_on_char '=' opt with
          | [ "core"; v ] -> j := { !j with core = v }
          | [ "seed"; v ] -> (
            match int_of_string_opt v with
            | Some s -> j := { !j with seed = s }
            | None -> bad := Some (Printf.sprintf "bad seed %S" v))
          | [ "faults"; v ] -> (
            match int_of_string_opt v with
            | Some f -> j := { !j with faults = f }
            | None -> bad := Some (Printf.sprintf "bad faults %S" v))
          | [ "mutant"; v ] -> (
            match int_of_string_opt v with
            | Some m -> j := { !j with mutant = m }
            | None -> bad := Some (Printf.sprintf "bad mutant %S" v))
          | [ "engine"; v ] -> (
            match Runner.engine_of_string v with
            | Some e -> j := { !j with engine = e }
            | None -> bad := Some (Printf.sprintf "unknown engine %S" v))
          | _ -> bad := Some (Printf.sprintf "unknown option %S" opt))
        opts;
      match !bad with Some m -> Error m | None -> Ok (Some !j)))
  | [ k ] -> Error (Printf.sprintf "job %S is missing a benchmark name" k)

let parse_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file -> Ok (List.rev acc)
    | line -> (
      match parse_line line with
      | Ok None -> go (lineno + 1) acc
      | Ok (Some j) -> go (lineno + 1) (j :: acc)
      | Error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m))
  in
  go 1 []

(* ---- the bespoke-campaign/v1 JSONL stream ---- *)

let schema = "bespoke-campaign/v1"
let str = json_str

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

let header_jsonl ~jobs ~cores ~total =
  obj
    [
      ("schema", str schema);
      ("total_jobs", string_of_int total);
      ("jobs", string_of_int jobs);
      ("cores", "[" ^ String.concat "," (List.map str cores) ^ "]");
    ]

let outcome_jsonl (o : outcome) =
  let common =
    [
      ("job", string_of_int o.o_index);
      ("kind", str (kind_to_string o.o_job.kind));
      ("core", str o.o_job.core);
      ("bench", str (program_name o.o_job.program));
      ("seed", string_of_int o.o_job.seed);
      ("faults", string_of_int o.o_job.faults);
      ("mutant", string_of_int o.o_job.mutant);
      ("engine", str (Runner.engine_to_string o.o_job.engine));
      ("cached", if o.cached then "true" else "false");
      ("time_s", num o.time_s);
    ]
  in
  match o.status with
  | Ok payload ->
    obj (common @ [ ("status", str "ok"); ("payload", obj payload) ])
  | Error m -> obj (common @ [ ("status", str "error"); ("error", str m) ])

(* Heartbeats interleave with outcome records in the stream; readers
   distinguish them by the ["heartbeat"] field (outcome records have
   ["job"], the trailer has ["summary"]). *)
let heartbeat_jsonl ~seq (p : progress) =
  obj
    ([
       ("heartbeat", "true");
       ("seq", string_of_int seq);
       ("done", string_of_int p.p_done);
       ("ok", string_of_int p.p_ok);
       ("failed", string_of_int p.p_failed);
       ("cached", string_of_int p.p_cached);
       ("running", string_of_int p.p_running);
       ("total", string_of_int p.p_total);
       ("elapsed_s", num p.p_elapsed_s);
       ("jobs_per_sec", num (jobs_per_sec p));
       ("cache_hit_rate", num (cache_hit_rate p));
     ]
    @ match eta_s p with Some e -> [ ("eta_s", num e) ] | None -> [])

let summary_jsonl (s : summary) =
  obj
    [
      ("summary", "true");
      ("total", string_of_int s.total);
      ("ok", string_of_int s.ok);
      ("failed", string_of_int s.failed);
      ("cache_hits", string_of_int s.cache_hits);
      ("wall_s", num s.wall_s);
      ("jobs", string_of_int s.jobs_used);
    ]
