(* Instruction-set simulator for the RV32 subset: the golden model the
   gate-level core is verified against.  Semantics mirror the RTL
   bit-for-bit, including the small-address-space quirks: 16-bit pc
   and effective addresses, peripheral decode by exact address match,
   and RAM indexing that wraps modulo the harness array size. *)

let mask32 = 0xFFFFFFFF
let mask16 = 0xFFFF
let sext32 v = Isa.sext ~bits:32 v

type t = {
  rom : int array;
  regs : int array;  (* x1..x31 at indices 1..31; index 0 unused *)
  ram : int array;  (* Defs.mem_words words *)
  mutable pc : int;
  mutable halted : bool;
  mutable cycles : int;
  mutable retired : int;
  mutable gpio_in : int;
  mutable gpio_reg : int;
  mutable trace : (int * int) list;  (* newest first *)
}

let create rom =
  {
    rom;
    regs = Array.make 32 0;
    ram = Array.make Defs.mem_words 0;
    pc = Defs.rom_base;
    halted = false;
    cycles = 0;
    retired = 0;
    gpio_in = 0;
    gpio_reg = 0;
    trace = [];
  }

let reset t =
  Array.fill t.regs 0 32 0;
  Array.fill t.ram 0 Defs.mem_words 0;
  t.pc <- Defs.rom_base;
  t.halted <- false;
  t.cycles <- 0;
  t.retired <- 0;
  t.gpio_reg <- 0;
  t.trace <- []

let pc t = t.pc
let halted t = t.halted
let cycles t = t.cycles
let retired t = t.retired
let gpio_out t = t.gpio_reg
let set_gpio_in t v = t.gpio_in <- v land mask32
let output_trace t = List.rev t.trace

let reg t r = if r = 0 then 0 else t.regs.(r) land mask32
let set_reg t r v = if r <> 0 then t.regs.(r) <- v land mask32

let ram_idx a = (a lsr 2) land (Defs.mem_words - 1)
let read_ram_word t a = t.ram.(ram_idx a)
let write_ram_word t a v = t.ram.(ram_idx a) <- v land mask32

let fetch_word t = t.rom.(ram_idx t.pc)

let current_insn t =
  match Isa.decode (fetch_word t) with
  | i -> Isa.to_string i
  | exception Isa.Decode_error m -> Printf.sprintf "<%s>" m

let alu op a b =
  let a = a land mask32 and b = b land mask32 in
  match op with
  | Isa.Add -> (a + b) land mask32
  | Isa.Sub -> (a - b) land mask32
  | Isa.Sll -> (a lsl (b land 31)) land mask32
  | Isa.Slt -> if sext32 a < sext32 b then 1 else 0
  | Isa.Sltu -> if a < b then 1 else 0
  | Isa.Xor -> a lxor b
  | Isa.Srl -> a lsr (b land 31)
  | Isa.Sra -> sext32 a asr (b land 31) land mask32
  | Isa.Or -> a lor b
  | Isa.And -> a land b

let cond_holds cond a b =
  let a = a land mask32 and b = b land mask32 in
  match cond with
  | Isa.Beq -> a = b
  | Isa.Bne -> a <> b
  | Isa.Blt -> sext32 a < sext32 b
  | Isa.Bge -> sext32 a >= sext32 b
  | Isa.Bltu -> a < b
  | Isa.Bgeu -> a >= b

(* The load path: select the addressed word (peripheral or RAM), then
   the byte/halfword lane by the low effective-address bits. *)
let load_word t ea =
  if ea = Defs.gpio_in_addr then t.gpio_in
  else if ea = Defs.gpio_out_addr then t.gpio_reg
  else read_ram_word t ea

let load_value width word ea =
  match width with
  | Isa.Lw -> word
  | Isa.Lh | Isa.Lhu ->
    let half = (word lsr (16 * ((ea lsr 1) land 1))) land 0xFFFF in
    if width = Isa.Lh then Isa.sext ~bits:16 half land mask32 else half
  | Isa.Lb | Isa.Lbu ->
    let byte = (word lsr (8 * (ea land 3))) land 0xFF in
    if width = Isa.Lb then Isa.sext ~bits:8 byte land mask32 else byte

(* The store path: replicated data lanes plus a byte-enable mask, as
   on the gate-level write port. *)
let store_lanes width data ea =
  match width with
  | Isa.Sw -> (data land mask32, 0xF)
  | Isa.Sh ->
    let h = data land 0xFFFF in
    ((h lsl 16) lor h, 0x3 lsl (ea land 2))
  | Isa.Sb ->
    let b = data land 0xFF in
    ((b lsl 24) lor (b lsl 16) lor (b lsl 8) lor b, 1 lsl (ea land 3))

let merge_word old data ben =
  let m = ref 0 in
  for l = 0 to 3 do
    if (ben lsr l) land 1 = 1 then m := !m lor (0xFF lsl (8 * l))
  done;
  (old land lnot !m) lor (data land !m) land mask32

let step t =
  if not t.halted then begin
    let insn = Isa.decode (fetch_word t) in
    let pc = t.pc in
    let next = (pc + 4) land mask16 in
    let wr rd v = set_reg t rd v in
    let new_pc = ref next in
    (match insn with
    | Isa.Lui { rd; imm } -> wr rd imm
    | Isa.Auipc { rd; imm } -> wr rd (pc + imm)
    | Isa.Jal { rd; off } ->
      wr rd next;
      new_pc := (pc + off) land mask16
    | Isa.Jalr { rd; rs1; imm } ->
      let target = (reg t rs1 + imm) land 0xFFFC in
      wr rd next;
      new_pc := target
    | Isa.Branch { cond; rs1; rs2; off } ->
      if cond_holds cond (reg t rs1) (reg t rs2) then
        new_pc := (pc + off) land mask16
    | Isa.Load { width; rd; rs1; imm } ->
      let ea = (reg t rs1 + imm) land mask16 in
      wr rd (load_value width (load_word t ea) ea)
    | Isa.Store { width; rs1; rs2; imm } ->
      let ea = (reg t rs1 + imm) land mask16 in
      let data, ben = store_lanes width (reg t rs2) ea in
      if ea = Defs.halt_addr then t.halted <- true
      else if ea = Defs.gpio_out_addr then begin
        t.gpio_reg <- merge_word t.gpio_reg data ben;
        t.trace <- (t.cycles + Defs.cycles_per_insn, t.gpio_reg) :: t.trace
      end
      else
        let i = ram_idx ea in
        t.ram.(i) <- merge_word t.ram.(i) data ben
    | Isa.Opimm { op; rd; rs1; imm } -> wr rd (alu op (reg t rs1) imm)
    | Isa.Op { op; rd; rs1; rs2 } -> wr rd (alu op (reg t rs1) (reg t rs2)));
    t.pc <- !new_pc;
    t.retired <- t.retired + 1;
    t.cycles <- t.cycles + Defs.cycles_per_insn
  end

let run ?(max_insns = 1_000_000) t =
  let n = ref 0 in
  while (not t.halted) && !n < max_insns do
    step t;
    incr n
  done;
  if not t.halted then failwith "Rv32.Iss.run: instruction limit exceeded"

(* The descriptor's record-of-closures view.  Register index 32 is the
   pc (so the lockstep comparator checks it like any register); index
   0 is the hard-wired zero. *)
let coredef_iss t =
  {
    Bespoke_coreapi.Coredef.reset = (fun () -> reset t);
    step = (fun () -> step t);
    halted = (fun () -> halted t);
    pc = (fun () -> pc t);
    reg = (fun r -> if r = 32 then t.pc else reg t r);
    cycles = (fun () -> cycles t);
    retired = (fun () -> retired t);
    read_ram_word = (fun a -> read_ram_word t a);
    write_ram_word = (fun a v -> write_ram_word t a v);
    set_gpio_in = (fun v -> set_gpio_in t v);
    gpio_out = (fun () -> gpio_out t);
    output_trace = (fun () -> output_trace t);
    set_irq_line = (fun _ -> ());
    irq_entry = (fun () -> -1);
    current_insn = (fun () -> current_insn t);
  }
