(* The RV32I subset: the 37 user-level integer instructions minus
   FENCE / ECALL / EBREAK / CSR.  Standard RISC-V encodings, so any
   off-the-shelf toolchain's output for this subset runs unmodified
   (within the 16-bit address space). *)

type cond = Beq | Bne | Blt | Bge | Bltu | Bgeu
type aluop = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
type lwidth = Lb | Lh | Lw | Lbu | Lhu
type swidth = Sb | Sh | Sw

type t =
  | Lui of { rd : int; imm : int }  (* imm: upper 20 bits, pre-shifted *)
  | Auipc of { rd : int; imm : int }
  | Jal of { rd : int; off : int }
  | Jalr of { rd : int; rs1 : int; imm : int }
  | Branch of { cond : cond; rs1 : int; rs2 : int; off : int }
  | Load of { width : lwidth; rd : int; rs1 : int; imm : int }
  | Store of { width : swidth; rs1 : int; rs2 : int; imm : int }
  | Opimm of { op : aluop; rd : int; rs1 : int; imm : int }
  | Op of { op : aluop; rd : int; rs1 : int; rs2 : int }

exception Decode_error of string

let mask32 = 0xFFFFFFFF
let sext ~bits v =
  let m = 1 lsl (bits - 1) in
  ((v land ((1 lsl bits) - 1)) lxor m) - m

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let cond_f3 = function
  | Beq -> 0 | Bne -> 1 | Blt -> 4 | Bge -> 5 | Bltu -> 6 | Bgeu -> 7

let lwidth_f3 = function Lb -> 0 | Lh -> 1 | Lw -> 2 | Lbu -> 4 | Lhu -> 5
let swidth_f3 = function Sb -> 0 | Sh -> 1 | Sw -> 2

let aluop_f3 = function
  | Add | Sub -> 0 | Sll -> 1 | Slt -> 2 | Sltu -> 3 | Xor -> 4
  | Srl | Sra -> 5 | Or -> 6 | And -> 7

let r_type ~f7 ~rs2 ~rs1 ~f3 ~rd ~opc =
  (f7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12)
  lor (rd lsl 7) lor opc

let i_type ~imm ~rs1 ~f3 ~rd ~opc =
  ((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12) lor (rd lsl 7)
  lor opc

let s_type ~imm ~rs2 ~rs1 ~f3 ~opc =
  let imm = imm land 0xFFF in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12)
  lor ((imm land 0x1F) lsl 7) lor opc

let b_type ~off ~rs2 ~rs1 ~f3 ~opc =
  let o = off land 0x1FFF in
  (((o lsr 12) land 1) lsl 31)
  lor (((o lsr 5) land 0x3F) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12)
  lor (((o lsr 1) land 0xF) lsl 8)
  lor (((o lsr 11) land 1) lsl 7)
  lor opc

let u_type ~imm ~rd ~opc = (imm land 0xFFFFF000) lor (rd lsl 7) lor opc

let j_type ~off ~rd ~opc =
  let o = off land 0x1FFFFF in
  (((o lsr 20) land 1) lsl 31)
  lor (((o lsr 1) land 0x3FF) lsl 21)
  lor (((o lsr 11) land 1) lsl 20)
  lor (((o lsr 12) land 0xFF) lsl 12)
  lor (rd lsl 7) lor opc

let encode = function
  | Lui { rd; imm } -> u_type ~imm ~rd ~opc:0x37
  | Auipc { rd; imm } -> u_type ~imm ~rd ~opc:0x17
  | Jal { rd; off } -> j_type ~off ~rd ~opc:0x6F
  | Jalr { rd; rs1; imm } -> i_type ~imm ~rs1 ~f3:0 ~rd ~opc:0x67
  | Branch { cond; rs1; rs2; off } ->
    b_type ~off ~rs2 ~rs1 ~f3:(cond_f3 cond) ~opc:0x63
  | Load { width; rd; rs1; imm } ->
    i_type ~imm ~rs1 ~f3:(lwidth_f3 width) ~rd ~opc:0x03
  | Store { width; rs1; rs2; imm } ->
    s_type ~imm ~rs2 ~rs1 ~f3:(swidth_f3 width) ~opc:0x23
  | Opimm { op; rd; rs1; imm } -> (
    match op with
    | Sll -> r_type ~f7:0 ~rs2:(imm land 0x1F) ~rs1 ~f3:1 ~rd ~opc:0x13
    | Srl -> r_type ~f7:0 ~rs2:(imm land 0x1F) ~rs1 ~f3:5 ~rd ~opc:0x13
    | Sra -> r_type ~f7:0x20 ~rs2:(imm land 0x1F) ~rs1 ~f3:5 ~rd ~opc:0x13
    | Sub -> invalid_arg "Isa.encode: subi does not exist"
    | op -> i_type ~imm ~rs1 ~f3:(aluop_f3 op) ~rd ~opc:0x13)
  | Op { op; rd; rs1; rs2 } ->
    let f7 = match op with Sub | Sra -> 0x20 | _ -> 0 in
    r_type ~f7 ~rs2 ~rs1 ~f3:(aluop_f3 op) ~rd ~opc:0x33

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let imm_i w = sext ~bits:12 (w lsr 20)
let imm_s w = sext ~bits:12 (((w lsr 25) lsl 5) lor ((w lsr 7) land 0x1F))

let imm_b w =
  sext ~bits:13
    ((((w lsr 31) land 1) lsl 12)
    lor (((w lsr 7) land 1) lsl 11)
    lor (((w lsr 25) land 0x3F) lsl 5)
    lor (((w lsr 8) land 0xF) lsl 1))

let imm_u w = w land 0xFFFFF000

let imm_j w =
  sext ~bits:21
    ((((w lsr 31) land 1) lsl 20)
    lor (((w lsr 12) land 0xFF) lsl 12)
    lor (((w lsr 20) land 1) lsl 11)
    lor (((w lsr 21) land 0x3FF) lsl 1))

let decode w =
  let w = w land mask32 in
  let opc = w land 0x7F in
  let rd = (w lsr 7) land 0x1F in
  let f3 = (w lsr 12) land 0x7 in
  let rs1 = (w lsr 15) land 0x1F in
  let rs2 = (w lsr 20) land 0x1F in
  let f7 = (w lsr 25) land 0x7F in
  let bad what = raise (Decode_error (Printf.sprintf "%s in %08x" what w)) in
  match opc with
  | 0x37 -> Lui { rd; imm = imm_u w }
  | 0x17 -> Auipc { rd; imm = imm_u w }
  | 0x6F -> Jal { rd; off = imm_j w }
  | 0x67 -> if f3 = 0 then Jalr { rd; rs1; imm = imm_i w } else bad "jalr f3"
  | 0x63 ->
    let cond =
      match f3 with
      | 0 -> Beq | 1 -> Bne | 4 -> Blt | 5 -> Bge | 6 -> Bltu | 7 -> Bgeu
      | _ -> bad "branch f3"
    in
    Branch { cond; rs1; rs2; off = imm_b w }
  | 0x03 ->
    let width =
      match f3 with
      | 0 -> Lb | 1 -> Lh | 2 -> Lw | 4 -> Lbu | 5 -> Lhu
      | _ -> bad "load f3"
    in
    Load { width; rd; rs1; imm = imm_i w }
  | 0x23 ->
    let width =
      match f3 with 0 -> Sb | 1 -> Sh | 2 -> Sw | _ -> bad "store f3"
    in
    Store { width; rs1; rs2; imm = imm_s w }
  | 0x13 -> (
    match f3 with
    | 0 -> Opimm { op = Add; rd; rs1; imm = imm_i w }
    | 1 ->
      if f7 = 0 then Opimm { op = Sll; rd; rs1; imm = rs2 }
      else bad "slli f7"
    | 2 -> Opimm { op = Slt; rd; rs1; imm = imm_i w }
    | 3 -> Opimm { op = Sltu; rd; rs1; imm = imm_i w }
    | 4 -> Opimm { op = Xor; rd; rs1; imm = imm_i w }
    | 5 ->
      if f7 = 0 then Opimm { op = Srl; rd; rs1; imm = rs2 }
      else if f7 = 0x20 then Opimm { op = Sra; rd; rs1; imm = rs2 }
      else bad "shift f7"
    | 6 -> Opimm { op = Or; rd; rs1; imm = imm_i w }
    | _ -> Opimm { op = And; rd; rs1; imm = imm_i w })
  | 0x33 ->
    let op =
      match (f3, f7) with
      | 0, 0 -> Add | 0, 0x20 -> Sub
      | 1, 0 -> Sll | 2, 0 -> Slt | 3, 0 -> Sltu | 4, 0 -> Xor
      | 5, 0 -> Srl | 5, 0x20 -> Sra
      | 6, 0 -> Or | 7, 0 -> And
      | _ -> bad "op f3/f7"
    in
    Op { op; rd; rs1; rs2 }
  | _ -> bad "opcode"

(* ------------------------------------------------------------------ *)
(* Disassembly                                                         *)

let reg_str r = "x" ^ string_of_int r

let cond_str = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge"
  | Bltu -> "bltu" | Bgeu -> "bgeu"

let lwidth_str = function
  | Lb -> "lb" | Lh -> "lh" | Lw -> "lw" | Lbu -> "lbu" | Lhu -> "lhu"

let swidth_str = function Sb -> "sb" | Sh -> "sh" | Sw -> "sw"

let aluop_str = function
  | Add -> "add" | Sub -> "sub" | Sll -> "sll" | Slt -> "slt"
  | Sltu -> "sltu" | Xor -> "xor" | Srl -> "srl" | Sra -> "sra"
  | Or -> "or" | And -> "and"

let to_string = function
  | Lui { rd; imm } -> Printf.sprintf "lui %s, 0x%x" (reg_str rd) (imm lsr 12)
  | Auipc { rd; imm } ->
    Printf.sprintf "auipc %s, 0x%x" (reg_str rd) (imm lsr 12)
  | Jal { rd; off } -> Printf.sprintf "jal %s, %d" (reg_str rd) off
  | Jalr { rd; rs1; imm } ->
    Printf.sprintf "jalr %s, %d(%s)" (reg_str rd) imm (reg_str rs1)
  | Branch { cond; rs1; rs2; off } ->
    Printf.sprintf "%s %s, %s, %d" (cond_str cond) (reg_str rs1) (reg_str rs2)
      off
  | Load { width; rd; rs1; imm } ->
    Printf.sprintf "%s %s, %d(%s)" (lwidth_str width) (reg_str rd) imm
      (reg_str rs1)
  | Store { width; rs1; rs2; imm } ->
    Printf.sprintf "%s %s, %d(%s)" (swidth_str width) (reg_str rs2) imm
      (reg_str rs1)
  | Opimm { op = Add; rd; rs1 = 0; imm } ->
    Printf.sprintf "li %s, %d" (reg_str rd) imm
  | Opimm { op; rd; rs1; imm } ->
    Printf.sprintf "%si %s, %s, %d" (aluop_str op) (reg_str rd) (reg_str rs1)
      imm
  | Op { op; rd; rs1; rs2 } ->
    Printf.sprintf "%s %s, %s, %s" (aluop_str op) (reg_str rd) (reg_str rs1)
      (reg_str rs2)
