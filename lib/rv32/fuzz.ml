(* Seed-replayable random-program generator for the RV32 subset.

   Generated programs exercise arbitrary instruction mixes (every ALU
   op, all load/store widths, forward branches, bounded loops, calls,
   GPIO access) and always terminate with a halt store.  The same seed
   always yields the same program, so any divergence is reproducible
   from the seed alone. *)

let scratch = Defs.ram_base (* 32-word scratch window the programs write *)

type rng = { mutable s : int }

let next r =
  r.s <- ((r.s * 1103515245) + 12345) land 0x3FFFFFFF;
  (r.s lsr 7) land 0xFFFFFF

let pick r l = List.nth l (next r mod List.length l)
let chance r pct = next r mod 100 < pct

(* working registers; x14 holds the scratch base, x15 the GPIO word *)
let reg r = pick r [ "x4"; "x5"; "x6"; "x7"; "x8"; "x9"; "x10"; "x11" ]
let imm12 r = (next r land 0xFFF) - 2048

let alu_rr r =
  pick r [ "add"; "sub"; "sll"; "slt"; "sltu"; "xor"; "srl"; "sra"; "or"; "and" ]

let alu_ri r =
  pick r [ "addi"; "slti"; "sltiu"; "xori"; "ori"; "andi" ]

let word_off r = next r land 0x7C (* word-aligned scratch offset *)

let gen_instr r buf label_counter =
  let adds = Buffer.add_string buf in
  match next r mod 12 with
  | 0 | 1 | 2 ->
    adds
      (Printf.sprintf "        %s %s, %s, %s\n" (alu_rr r) (reg r) (reg r)
         (reg r))
  | 3 | 4 ->
    adds (Printf.sprintf "        %s %s, %s, %d\n" (alu_ri r) (reg r) (reg r) (imm12 r))
  | 5 ->
    let op = pick r [ "slli"; "srli"; "srai" ] in
    adds (Printf.sprintf "        %s %s, %s, %d\n" op (reg r) (reg r) (next r land 31))
  | 6 ->
    adds (Printf.sprintf "        li %s, %d\n" (reg r) (next r land 0xFFFFFF))
  | 7 ->
    (* scratch traffic, all widths: stores then a load back *)
    let off = word_off r in
    let w = pick r [ ("sw", "lw"); ("sh", "lh"); ("sb", "lbu") ] in
    adds (Printf.sprintf "        %s %s, %d(x14)\n" (fst w) (reg r) off);
    adds (Printf.sprintf "        %s %s, %d(x14)\n" (snd w) (reg r) off)
  | 8 ->
    (* forward conditional skip *)
    incr label_counter;
    let l = Printf.sprintf "fl%d" !label_counter in
    let cond = pick r [ "beq"; "bne"; "blt"; "bge"; "bltu"; "bgeu" ] in
    adds
      (Printf.sprintf "        %s %s, %s, %s\n        %s %s, %s, %s\n%s:\n"
         cond (reg r) (reg r) l (alu_rr r) (reg r) (reg r) (reg r) l)
  | 9 ->
    (* bounded count-down loop *)
    incr label_counter;
    let l = Printf.sprintf "lp%d" !label_counter in
    let n = 1 + (next r mod 6) in
    adds
      (Printf.sprintf
         "        li x12, %d\n\
          %s:\n\
         \        %s %s, %s, %s\n\
         \        addi x12, x12, -1\n\
         \        bne x12, x0, %s\n"
         n l (alu_rr r) (reg r) (reg r) (reg r) l)
  | 10 ->
    (* call / return through ra *)
    incr label_counter;
    let f = Printf.sprintf "fn%d" !label_counter in
    let k = Printf.sprintf "fk%d" !label_counter in
    adds
      (Printf.sprintf
         "        jal ra, %s\n\
         \        j %s\n\
          %s:\n\
         \        %s %s, %s, %s\n\
         \        ret\n\
          %s:\n"
         f k f (alu_rr r) (reg r) (reg r) (reg r) k)
  | _ ->
    if chance r 50 then
      adds (Printf.sprintf "        lw %s, %d(x0)\n" (reg r) Defs.gpio_in_addr)
    else
      adds (Printf.sprintf "        sw %s, %d(x0)\n" (reg r) Defs.gpio_out_addr)

let program ~seed =
  let r = { s = (seed * 2654435761) lor 1 } in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "start:  li x14, 0x%04x\n" scratch);
  (* seed some registers and scratch *)
  for i = 4 to 11 do
    Buffer.add_string buf
      (Printf.sprintf "        li x%d, 0x%x\n" i (next r land 0xFFFFFF))
  done;
  for i = 0 to 7 do
    Buffer.add_string buf
      (Printf.sprintf "        li x13, 0x%x\n        sw x13, %d(x14)\n"
         (next r land 0xFFFFFF) (4 * i))
  done;
  let label_counter = ref 0 in
  let n = 12 + (next r mod 25) in
  for _ = 1 to n do
    gen_instr r buf label_counter
  done;
  (* publish a checksum so divergence is observable even in state the
     final comparison would otherwise miss *)
  Buffer.add_string buf
    (Printf.sprintf "        li x13, 0x%04x\n" Defs.output_base);
  Buffer.add_string buf "        sw x4, 0(x13)\n";
  Buffer.add_string buf
    (Printf.sprintf "        sw x4, %d(x0)\n" Defs.gpio_out_addr);
  Buffer.add_string buf "        halt\n";
  Buffer.contents buf
