module Coredef = Bespoke_coreapi.Coredef

(* The RV32 subset's {!Coredef} descriptor: the one value that plugs
   the core into the whole tailoring flow.  Everything core-specific
   (netlist builder, ISS, assembler, instruction classification,
   return-context refinement, the fuzz-program menu) lives in the
   sibling modules; this file only bundles them. *)

let mask16 = 0xFFFF

let classify ~rom_word ~pc =
  match Isa.decode (rom_word pc) with
  | exception Isa.Decode_error m -> failwith ("rv32 classify: " ^ m)
  | i ->
    let control =
      match i with Isa.Jal _ | Isa.Jalr _ | Isa.Branch _ -> true | _ -> false
    in
    let cond = match i with Isa.Branch _ -> true | _ -> false in
    {
      Coredef.ci_control = control;
      ci_cond_branch = cond;
      ci_next = (pc + 4) land mask16;
    }

(* A JALR takes its target from a register: report the value the next
   pc will be computed from, so the analyzer can key its merge table
   on the actual return target. *)
let ret_context ~rom_word ~read_reg ~read_ram_word:_ ~pc =
  match Isa.decode (rom_word pc) with
  | Isa.Jalr { rs1; imm; _ } -> (
    match read_reg rs1 with
    | Some v -> ((v + imm) land 0xFFFC, 0)
    | None -> (-1, 0))
  | _ -> (0, 0)
  | exception Isa.Decode_error _ -> (0, 0)

let core : Coredef.t =
  {
    Coredef.name = "rv32";
    word_bits = 32;
    addr_shift = 2;
    insn_align = 4;
    mem_words = Defs.mem_words;
    rom_base = Defs.rom_base;
    rom_words = Defs.rom_words;
    ram_base = Defs.ram_base;
    ram_words = Defs.ram_words;
    reset_extra_cycles = 1;
    (* index 32 is the pc, checked like any register; x0 is omitted
       (it reads as constant zero on both models by construction) *)
    arch_regs = 32 :: List.init 31 (fun i -> i + 1);
    reg_name = (fun r -> if r = 32 then "pc" else Printf.sprintf "x%d" r);
    reg_hook =
      (fun r ->
        if r = 0 then None
        else if r = 32 then Some "pc"
        else Some (Printf.sprintf "x%d" r));
    sp_reg = Some 2;
    has_irq = false;
    gie_bit = None;
    trace_signals =
      [ "pc"; "state"; "ir"; "pmem_addr"; "dmem_addr"; "dmem_wdata";
        "dmem_wen"; "gpio_out"; "halted" ];
    build = Cpu.build;
    assemble = Asm.assemble;
    classify;
    ret_context;
    fuzz_program = (fun ~seed -> Fuzz.program ~seed);
  }
