(* Memory map and geometry of the RV32 subset core.

   Addresses are 16 bits wide (the datapath registers are 32 bits, but
   the address space is small, as befits an ultra-low-area target).
   ROM and RAM are word (32-bit) memories; the harness feeds each from
   its own array indexed by address bits [12:2], so the bases are
   chosen to wrap to index 0. *)

let rom_base = 0x2000
let rom_words = 2048 (* 8 KiB of code *)
let ram_base = 0x8000
let ram_words = 2048 (* 8 KiB of data *)
let mem_words = 2048

(* Memory-mapped peripherals, decoded by exact address match. *)
let halt_addr = 0x0008 (* any store halts the core *)
let gpio_out_addr = 0x000C (* 32-bit output register, lane-writable *)
let gpio_in_addr = 0x0010 (* 32-bit input port *)

(* Benchmark I/O convention (mirrors the MSP430 suite's layout). *)
let input_base = 0x8100
let output_base = 0x8180

(* Uniform timing contract: fetch / execute / write-back. *)
let cycles_per_insn = 3
