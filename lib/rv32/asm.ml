(* Two-pass assembler for the RV32 subset.

   Syntax: one instruction per line, [label:] prefixes, [#] or [;]
   comments, [.equ NAME, value] constants (define before use — [li]
   chooses its expansion while sizes are being laid out).  Registers
   are [x0]-[x31] or the standard ABI names.  Pseudo-instructions:
   [li], [mv], [not], [j], [jal target], [jalr rs], [ret], [nop], and
   [halt] (a store to the halt port).  Programs are placed at
   [Defs.rom_base], which is also the entry point. *)

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let abi_names =
  [ ("zero", 0); ("ra", 1); ("sp", 2); ("gp", 3); ("tp", 4);
    ("t0", 5); ("t1", 6); ("t2", 7); ("s0", 8); ("fp", 8); ("s1", 9);
    ("a0", 10); ("a1", 11); ("a2", 12); ("a3", 13); ("a4", 14); ("a5", 15);
    ("a6", 16); ("a7", 17); ("s2", 18); ("s3", 19); ("s4", 20); ("s5", 21);
    ("s6", 22); ("s7", 23); ("s8", 24); ("s9", 25); ("s10", 26); ("s11", 27);
    ("t3", 28); ("t4", 29); ("t5", 30); ("t6", 31) ]

let parse_reg s =
  let s = String.lowercase_ascii (String.trim s) in
  match List.assoc_opt s abi_names with
  | Some r -> r
  | None ->
    if String.length s >= 2 && s.[0] = 'x' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some r when r >= 0 && r <= 31 -> r
      | _ -> err "bad register %S" s
    else err "bad register %S" s

(* Operand expressions: literals and symbols joined by + and -. *)
let eval_expr ~symbols s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then err "empty operand";
  let term t =
    let t = String.trim t in
    if t = "" then err "empty term in %S" s
    else
      match int_of_string_opt t with
      | Some v -> v
      | None -> (
        match Hashtbl.find_opt symbols t with
        | Some v -> v
        | None -> err "undefined symbol %S" t)
  in
  let buf = Buffer.create 16 in
  let acc = ref 0 and sign = ref 1 and started = ref false in
  let flush () =
    acc := !acc + (!sign * term (Buffer.contents buf));
    Buffer.clear buf
  in
  String.iteri
    (fun i c ->
      match c with
      | '+' when !started -> flush (); sign := 1
      | '-' when !started && Buffer.length buf > 0 -> flush (); sign := -1
      | c ->
        Buffer.add_char buf c;
        if c <> ' ' && c <> '-' then started := true;
        ignore i)
    s;
  flush ();
  !acc

(* mem operand: "off(rs1)" with off optional *)
let parse_mem ~symbols s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> err "expected off(reg), got %S" s
  | Some i ->
    let close =
      match String.rindex_opt s ')' with
      | Some j when j > i -> j
      | _ -> err "unbalanced parens in %S" s
    in
    let off_s = String.trim (String.sub s 0 i) in
    let off = if off_s = "" then 0 else eval_expr ~symbols off_s in
    (off, parse_reg (String.sub s (i + 1) (close - i - 1)))

let split_operands s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(* An instruction slot after layout: either fully resolved or a
   control transfer waiting for its label. *)
type slot =
  | Done of Isa.t
  | Br of { cond : Isa.cond; rs1 : int; rs2 : int; target : string }
  | Jump of { rd : int; target : string }

let li_insns rd imm =
  let imm = imm land 0xFFFFFFFF in
  let simm = Isa.sext ~bits:32 imm in
  if simm >= -2048 && simm <= 2047 then
    [ Isa.Opimm { op = Isa.Add; rd; rs1 = 0; imm = simm } ]
  else
    let hi = (imm + 0x800) land 0xFFFFF000 in
    let lo = Isa.sext ~bits:12 imm in
    if lo = 0 then [ Isa.Lui { rd; imm = hi } ]
    else [ Isa.Lui { rd; imm = hi }; Isa.Opimm { op = Isa.Add; rd; rs1 = rd; imm = lo } ]

let assemble source =
  let symbols = Hashtbl.create 32 in
  let labels = Hashtbl.create 32 in
  let slots = ref [] (* (addr, lineno, line, slot), reversed *) in
  let pc = ref Defs.rom_base in
  let emit lineno line s =
    slots := (!pc, lineno, line, s) :: !slots;
    pc := !pc + 4
  in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun lineno0 raw ->
      let lineno = lineno0 + 1 in
      let line =
        let cut c s =
          match String.index_opt s c with
          | Some i -> String.sub s 0 i
          | None -> s
        in
        String.trim (cut '#' (cut ';' raw))
      in
      let line =
        match String.index_opt line ':' with
        | Some i
          when (not (String.contains line ' ')
               && i = String.length line - 1)
               || i < (match String.index_opt line ' ' with
                       | Some s -> s
                       | None -> max_int) ->
          let lbl = String.trim (String.sub line 0 i) in
          if lbl = "" then err "line %d: empty label" lineno;
          if Hashtbl.mem labels lbl then
            err "line %d: duplicate label %S" lineno lbl;
          Hashtbl.replace labels lbl !pc;
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        | _ -> line
      in
      if line <> "" then begin
        let mnem, rest =
          match String.index_opt line ' ' with
          | Some i ->
            ( String.lowercase_ascii (String.sub line 0 i),
              String.trim (String.sub line i (String.length line - i)) )
          | None -> (String.lowercase_ascii line, "")
        in
        let ops = split_operands rest in
        let reg n = parse_reg (List.nth ops n) in
        let expr n = eval_expr ~symbols (List.nth ops n) in
        let arity n =
          if List.length ops <> n then
            err "line %d: %s expects %d operands, got %d" lineno mnem n
              (List.length ops)
        in
        let wrap f = try f () with Error m -> err "line %d: %s" lineno m in
        wrap (fun () ->
            match mnem with
            | ".equ" ->
              arity 2;
              Hashtbl.replace symbols (List.nth ops 0) (expr 1)
            | ".org" | ".entry" -> err ".org/.entry not supported"
            | "lui" ->
              arity 2;
              emit lineno line (Done (Isa.Lui { rd = reg 0; imm = expr 1 lsl 12 }))
            | "auipc" ->
              arity 2;
              emit lineno line
                (Done (Isa.Auipc { rd = reg 0; imm = expr 1 lsl 12 }))
            | "jal" ->
              if List.length ops = 1 then
                emit lineno line (Jump { rd = 1; target = List.nth ops 0 })
              else begin
                arity 2;
                emit lineno line (Jump { rd = reg 0; target = List.nth ops 1 })
              end
            | "j" ->
              arity 1;
              emit lineno line (Jump { rd = 0; target = List.nth ops 0 })
            | "jalr" ->
              if List.length ops = 1 && not (String.contains rest '(') then
                emit lineno line
                  (Done (Isa.Jalr { rd = 1; rs1 = reg 0; imm = 0 }))
              else begin
                arity 2;
                let imm, rs1 = parse_mem ~symbols (List.nth ops 1) in
                emit lineno line (Done (Isa.Jalr { rd = reg 0; rs1; imm }))
              end
            | "ret" ->
              arity 0;
              emit lineno line (Done (Isa.Jalr { rd = 0; rs1 = 1; imm = 0 }))
            | "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" ->
              arity 3;
              let cond =
                match mnem with
                | "beq" -> Isa.Beq | "bne" -> Isa.Bne | "blt" -> Isa.Blt
                | "bge" -> Isa.Bge | "bltu" -> Isa.Bltu | _ -> Isa.Bgeu
              in
              emit lineno line
                (Br { cond; rs1 = reg 0; rs2 = reg 1; target = List.nth ops 2 })
            | "lb" | "lh" | "lw" | "lbu" | "lhu" ->
              arity 2;
              let width =
                match mnem with
                | "lb" -> Isa.Lb | "lh" -> Isa.Lh | "lw" -> Isa.Lw
                | "lbu" -> Isa.Lbu | _ -> Isa.Lhu
              in
              let imm, rs1 = parse_mem ~symbols (List.nth ops 1) in
              emit lineno line (Done (Isa.Load { width; rd = reg 0; rs1; imm }))
            | "sb" | "sh" | "sw" ->
              arity 2;
              let width =
                match mnem with "sb" -> Isa.Sb | "sh" -> Isa.Sh | _ -> Isa.Sw
              in
              let imm, rs1 = parse_mem ~symbols (List.nth ops 1) in
              emit lineno line
                (Done (Isa.Store { width; rs2 = reg 0; rs1; imm }))
            | "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli"
            | "srli" | "srai" ->
              arity 3;
              let op =
                match mnem with
                | "addi" -> Isa.Add | "slti" -> Isa.Slt | "sltiu" -> Isa.Sltu
                | "xori" -> Isa.Xor | "ori" -> Isa.Or | "andi" -> Isa.And
                | "slli" -> Isa.Sll | "srli" -> Isa.Srl | _ -> Isa.Sra
              in
              let imm = expr 2 in
              (match op with
              | Isa.Sll | Isa.Srl | Isa.Sra ->
                if imm < 0 || imm > 31 then err "shift amount %d out of range" imm
              | _ ->
                if imm < -2048 || imm > 2047 then
                  err "immediate %d out of range" imm);
              emit lineno line
                (Done (Isa.Opimm { op; rd = reg 0; rs1 = reg 1; imm }))
            | "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra"
            | "or" | "and" ->
              arity 3;
              let op =
                match mnem with
                | "add" -> Isa.Add | "sub" -> Isa.Sub | "sll" -> Isa.Sll
                | "slt" -> Isa.Slt | "sltu" -> Isa.Sltu | "xor" -> Isa.Xor
                | "srl" -> Isa.Srl | "sra" -> Isa.Sra | "or" -> Isa.Or
                | _ -> Isa.And
              in
              emit lineno line
                (Done (Isa.Op { op; rd = reg 0; rs1 = reg 1; rs2 = reg 2 }))
            | "li" ->
              arity 2;
              List.iter (fun i -> emit lineno line (Done i)) (li_insns (reg 0) (expr 1))
            | "mv" ->
              arity 2;
              emit lineno line
                (Done (Isa.Opimm { op = Isa.Add; rd = reg 0; rs1 = reg 1; imm = 0 }))
            | "not" ->
              arity 2;
              emit lineno line
                (Done (Isa.Opimm { op = Isa.Xor; rd = reg 0; rs1 = reg 1; imm = -1 }))
            | "nop" ->
              arity 0;
              emit lineno line
                (Done (Isa.Opimm { op = Isa.Add; rd = 0; rs1 = 0; imm = 0 }))
            | "halt" ->
              arity 0;
              emit lineno line
                (Done
                   (Isa.Store
                      { width = Isa.Sw; rs2 = 0; rs1 = 0; imm = Defs.halt_addr }))
            | m -> err "unknown mnemonic %S" m)
      end)
    lines;
  let slots = List.rev !slots in
  if List.length slots > Defs.rom_words then
    err "program too large: %d instructions" (List.length slots);
  let resolve lineno target =
    match Hashtbl.find_opt labels target with
    | Some a -> a
    | None -> err "line %d: undefined label %S" lineno target
  in
  let resolved =
    List.map
      (fun (addr, lineno, line, slot) ->
        let insn =
          match slot with
          | Done i -> i
          | Br { cond; rs1; rs2; target } ->
            let off = resolve lineno target - addr in
            if off < -4096 || off > 4094 then
              err "line %d: branch target out of range" lineno;
            Isa.Branch { cond; rs1; rs2; off }
          | Jump { rd; target } ->
            let off = resolve lineno target - addr in
            if off < -1048576 || off > 1048574 then
              err "line %d: jump target out of range" lineno;
            Isa.Jal { rd; off }
        in
        (addr, line, insn))
      slots
  in
  let rom = Array.make Defs.rom_words 0 in
  List.iter
    (fun (addr, _, insn) ->
      rom.((addr - Defs.rom_base) lsr 2) <- Isa.encode insn)
    resolved;
  let listing () =
    String.concat "\n"
      (List.map
         (fun (addr, _, insn) ->
           Printf.sprintf "%04x: %08x  %s" addr (Isa.encode insn)
             (Isa.to_string insn))
         resolved)
  in
  {
    Bespoke_coreapi.Coredef.rom;
    entry = Defs.rom_base;
    insn_addrs = List.map (fun (a, _, _) -> a) resolved;
    listing;
    mk_iss = (fun () -> Iss.coredef_iss (Iss.create rom));
  }
