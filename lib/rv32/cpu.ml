open Bespoke_rtl.Rtl

(* Gate-level RV32 subset core: a 3-stage FSM (fetch / execute /
   write-back, 3 cycles per instruction) over a 32-bit datapath with
   16-bit addresses.  Implements RV32I minus FENCE/ECALL/EBREAK/CSR.

   The core follows the {!Bespoke_coreapi.Coredef} hook contract:
   word memories on [pmem]/[dmem] ports, exact-address peripherals
   (halt port, GPIO), and the analysis hook nets ([pc], [state],
   [insn_boundary], [exec_jump], [branch_*], ...).  It has no
   interrupt machinery; the [irq_*] hooks are tied to constant 0 so
   the analyzer's interrupt forking is inert. *)

let st_fetch = 0
let st_exec = 1
let st_wb = 2
let st_reset = 3

let build () =
  let b = create_builder () in
  let c16 v = constant ~width:16 v in

  let pmem_rdata = input b "pmem_rdata" 32 in
  let dmem_rdata = input b "dmem_rdata" 32 in
  let gpio_in = input b "gpio_in" 32 in
  (* No interrupts: the port exists per the hook contract, unused. *)
  let _irq = input b "irq" 1 in

  let state = wire 2 in
  let pc = wire 16 in
  let ir = wire 32 in
  let halted = wire 1 in

  let in_state s = state ==: constant ~width:2 s in
  let s_fetch = in_state st_fetch in
  let s_exec = in_state st_exec in
  let s_wb = in_state st_wb in

  (* ---------------- control ---------------- *)
  in_scope b "control" (fun () ->
      let state_next =
        mux state
          [
            constant ~width:2 st_exec;  (* fetch -> exec *)
            constant ~width:2 st_wb;  (* exec -> wb *)
            constant ~width:2 st_fetch;  (* wb -> fetch *)
            constant ~width:2 st_fetch;  (* reset -> fetch *)
          ]
      in
      state <== reg b ~enable:~:halted ~init:st_reset state_next;
      ir <== reg b ~enable:s_fetch ~init:0 pmem_rdata);

  (* ---------------- decode (combinational, from ir) ---------------- *)
  let d =
    in_scope b "decode" (fun () ->
        let opc = select ir ~hi:6 ~lo:0 in
        let is op = eq_const opc op in
        object
          method rd = select ir ~hi:11 ~lo:7
          method f3 = select ir ~hi:14 ~lo:12
          method rs1 = select ir ~hi:19 ~lo:15
          method rs2 = select ir ~hi:24 ~lo:20
          method bit30 = bit ir 30
          method is_lui = is 0x37
          method is_auipc = is 0x17
          method is_jal = is 0x6F
          method is_jalr = is 0x67
          method is_branch = is 0x63
          method is_load = is 0x03
          method is_store = is 0x23
          method is_opimm = is 0x13
          method is_op = is 0x33

          method imm_i = sresize (select ir ~hi:31 ~lo:20) 32

          method imm_s =
            sresize
              (concat [ select ir ~hi:11 ~lo:7; select ir ~hi:31 ~lo:25 ])
              32

          method imm_b =
            sresize
              (concat
                 [ gnd; select ir ~hi:11 ~lo:8; select ir ~hi:30 ~lo:25;
                   bit ir 7; bit ir 31 ])
              32

          method imm_u = concat [ zero 12; select ir ~hi:31 ~lo:12 ]

          method imm_j =
            sresize
              (concat
                 [ gnd; select ir ~hi:30 ~lo:21; bit ir 20;
                   select ir ~hi:19 ~lo:12; bit ir 31 ])
              32
        end)
  in

  (* ---------------- register file ---------------- *)
  let exec_rd = wire 5 in
  let exec_has_rd = wire 1 in
  let wb_value = wire 32 in
  let regs =
    in_scope b "register_file" (fun () ->
        let wr = s_wb &: exec_has_rd in
        List.init 31 (fun i ->
            let n = i + 1 in
            let en = wr &: eq_const exec_rd n in
            let q = reg b ~enable:en ~init:0 wb_value in
            name_net b (Printf.sprintf "x%d" n) q;
            q))
  in
  let read_port sel = mux sel (zero 32 :: regs) in
  let rs1_val = in_scope b "register_file" (fun () -> read_port d#rs1) in
  let rs2_val = in_scope b "register_file" (fun () -> read_port d#rs2) in

  (* ---------------- execute ---------------- *)
  let ex =
    in_scope b "execute" (fun () ->
        let a = rs1_val in
        let is_imm_alu = d#is_opimm in
        let bv = mux2 is_imm_alu rs2_val d#imm_i in
        let sh = select bv ~hi:4 ~lo:0 in

        (* ALU *)
        let alu =
          in_scope b "alu" (fun () ->
              let add_r = add a bv in
              let sub_r = sub a bv in
              (* f7 bit 30 selects sub only for register-register ops
                 (ADDI has no subtract form). *)
              let add_sub = mux2 (d#is_op &: d#bit30) add_r sub_r in
              let barrel shift x =
                let rec go x i =
                  if i = 5 then x
                  else go (mux2 (bit sh i) x (shift x (1 lsl i))) (i + 1)
                in
                go x 0
              in
              let sll_r = barrel (fun x k -> sll_const x k) a in
              let srl_r = barrel (fun x k -> srl_const x k) a in
              let sra_r =
                let sign = msb a in
                barrel
                  (fun x k ->
                    concat [ select x ~hi:31 ~lo:k; repeat sign k ])
                  a
              in
              let shr = mux2 d#bit30 srl_r sra_r in
              let ltu = a <: bv in
              let lts = ltu ^: msb a ^: msb bv in
              let slt_r = uresize lts 32 in
              let sltu_r = uresize ltu 32 in
              let out =
                mux d#f3
                  [
                    add_sub; sll_r; slt_r; sltu_r; a ^: bv; shr; a |: bv;
                    a &: bv;
                  ]
              in
              object
                method out = out
                method eq = a ==: rs2_val
                method lts = (a <: rs2_val) ^: msb a ^: msb rs2_val
                method ltu = a <: rs2_val
              end)
        in

        (* branch condition *)
        let cond =
          mux d#f3
            [ alu#eq; ~:(alu#eq); gnd; gnd; alu#lts; ~:(alu#lts); alu#ltu;
              ~:(alu#ltu) ]
        in

        (* next-pc selection (16-bit address arithmetic) *)
        let pc_plus4 = add pc (c16 4) in
        let br_target = add pc (select d#imm_b ~hi:15 ~lo:0) in
        let jal_target = add pc (select d#imm_j ~hi:15 ~lo:0) in
        let jalr_sum = add (select rs1_val ~hi:15 ~lo:0) (select d#imm_i ~hi:15 ~lo:0) in
        let jalr_target = concat [ zero 2; select jalr_sum ~hi:15 ~lo:2 ] in
        let jump_target =
          mux2 d#is_jalr (mux2 d#is_jal br_target jal_target) jalr_target
        in
        let take_jump =
          d#is_jal |: d#is_jalr |: (d#is_branch &: cond)
        in
        let next_pc = mux2 take_jump pc_plus4 jump_target in

        (* write-back value for non-load instructions *)
        let link = uresize pc_plus4 32 in
        let auipc_r = add (uresize pc 32) d#imm_u in
        let result =
          onehot_select
            [
              (d#is_lui, d#imm_u);
              (d#is_auipc, auipc_r);
              (d#is_jal |: d#is_jalr, link);
            ]
            ~default:alu#out
        in

        (* effective address and store lanes *)
        let ea =
          add (select rs1_val ~hi:15 ~lo:0)
            (select (mux2 d#is_store d#imm_i d#imm_s) ~hi:15 ~lo:0)
        in
        let lo8 = select rs2_val ~hi:7 ~lo:0 in
        let lo16 = select rs2_val ~hi:15 ~lo:0 in
        let sdata =
          mux2 (bit d#f3 1) (* sw? *)
            (mux2 (bit d#f3 0) (* sh vs sb *)
               (repeat lo8 4)
               (concat [ lo16; lo16 ]))
            rs2_val
        in
        let ben =
          mux2 (bit d#f3 1)
            (mux2 (bit d#f3 0)
               (mux (select ea ~hi:1 ~lo:0)
                  [ constant ~width:4 1; constant ~width:4 2;
                    constant ~width:4 4; constant ~width:4 8 ])
               (mux2 (bit ea 1) (constant ~width:4 0x3)
                  (constant ~width:4 0xC)))
            (constant ~width:4 0xF)
        in
        let has_rd =
          d#is_lui |: d#is_auipc |: d#is_jal |: d#is_jalr |: d#is_load
          |: d#is_opimm |: d#is_op
        in
        let latch s = reg b ~enable:s_exec ~init:0 s in
        let l_next_pc = latch next_pc in
        let l_value = latch result in
        let l_ea = latch ea in
        let l_sdata = latch sdata in
        let l_ben = latch ben in
        let l_f3 = latch d#f3 in
        let l_is_load = latch d#is_load in
        let l_is_store = latch d#is_store in
        let l_has_rd = latch has_rd in
        let l_rd = latch d#rd in
        let e_jump = s_exec &: (d#is_jal |: d#is_jalr |: d#is_branch) in
        let b_taken = mux2 d#is_branch vdd cond in
        object
          method next_pc = l_next_pc
          method value = l_value
          method ea = l_ea
          method sdata = l_sdata
          method ben = l_ben
          method f3 = l_f3
          method is_load = l_is_load
          method is_store = l_is_store
          method has_rd = l_has_rd
          method rd = l_rd
          method exec_jump = e_jump
          method branch_taken = b_taken
          method branch_target = jump_target
          method branch_fallthrough = pc_plus4
        end)
  in
  exec_rd <== ex#rd;
  exec_has_rd <== ex#has_rd;

  (* pc: updated at write-back; frozen once halted *)
  in_scope b "control" (fun () ->
      pc <== reg b ~enable:(s_wb &: ~:halted) ~init:Defs.rom_base ex#next_pc);

  (* ---------------- memory backbone & peripherals ---------------- *)
  let periph =
    in_scope b "mem_backbone" (fun () ->
        let ea = ex#ea in
        let is_halt = ea ==: c16 Defs.halt_addr in
        let is_gpio_out = ea ==: c16 Defs.gpio_out_addr in
        let is_gpio_in = ea ==: c16 Defs.gpio_in_addr in
        let is_periph = is_halt |: is_gpio_out |: is_gpio_in in
        output b "pmem_addr" pc;
        output b "dmem_addr" ea;
        output b "dmem_wdata" ex#sdata;
        output b "dmem_ben" ex#ben;
        output b "dmem_wen" (s_wb &: ex#is_store &: ~:is_periph);
        output b "dmem_ren" (s_wb &: ex#is_load &: ~:is_periph);
        object
          method is_halt = is_halt
          method is_gpio_out = is_gpio_out
          method is_gpio_in = is_gpio_in
        end)
  in

  let gpio_reg =
    in_scope b "peripherals" (fun () ->
        let gpio_wr = s_wb &: ex#is_store &: periph#is_gpio_out in
        let q = wire 32 in
        let merged =
          concat
            (List.init 4 (fun l ->
                 mux2 (bit ex#ben l)
                   (select q ~hi:((8 * l) + 7) ~lo:(8 * l))
                   (select ex#sdata ~hi:((8 * l) + 7) ~lo:(8 * l))))
        in
        q <== reg b ~enable:gpio_wr ~init:0 merged;
        output b "gpio_out" q;
        name_net b "gpio_wr" gpio_wr;
        let halt_trigger = s_wb &: ex#is_store &: periph#is_halt in
        halted <== reg b ~init:0 (halted |: halt_trigger);
        output b "halt" halted;
        q)
  in

  (* ---------------- write-back ---------------- *)
  in_scope b "writeback" (fun () ->
      let word =
        onehot_select
          [ (periph#is_gpio_in, gpio_in); (periph#is_gpio_out, gpio_reg) ]
          ~default:dmem_rdata
      in
      let ea = ex#ea in
      let byte =
        mux (select ea ~hi:1 ~lo:0)
          (List.init 4 (fun l -> select word ~hi:((8 * l) + 7) ~lo:(8 * l)))
      in
      let half =
        mux2 (bit ea 1) (select word ~hi:15 ~lo:0) (select word ~hi:31 ~lo:16)
      in
      let lval =
        mux ex#f3
          [
            sresize byte 32;  (* lb *)
            sresize half 32;  (* lh *)
            word;  (* lw *)
            word;
            uresize byte 32;  (* lbu *)
            uresize half 32;  (* lhu *)
            word;
            word;
          ]
      in
      wb_value <== mux2 ex#is_load ex#value lval);

  (* ---------------- analysis hooks ---------------- *)
  name_net b "pc" pc;
  name_net b "state" state;
  name_net b "ir" ir;
  name_net b "fetching" s_fetch;
  name_net b "insn_boundary" s_fetch;
  name_net b "halted" halted;
  name_net b "exec_jump" ex#exec_jump;
  name_net b "branch_taken" ex#branch_taken;
  name_net b "branch_target" ex#branch_target;
  name_net b "branch_fallthrough" ex#branch_fallthrough;
  (* no interrupts: inert constant hooks *)
  name_net b "irq_pending" gnd;
  name_net b "irq_flag" gnd;
  name_net b "irq_enable" gnd;
  synthesize b
