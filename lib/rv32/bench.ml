module B = Bespoke_programs.Benchmark

(* RV32 ports of the sensor benchmark suite.  Same algorithms and
   input distributions as the MSP430 versions, re-expressed for the
   RV32 subset's memory map (word-addressed I/O windows at
   [Defs.input_base]/[Defs.output_base], GPIO by absolute address,
   software shift-add multiply instead of the hardware MAC). *)

let input_base = Defs.input_base
let output_base = Defs.output_base

let rand16 ~state =
  state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
  (!state lsr 7) land 0xFFFF

let words ~state ~base ~count ?(mask = 0xFFFF) () =
  List.init count (fun i -> (base + (4 * i), rand16 ~state land mask))

let prologue =
  Printf.sprintf
    {|
        .equ IN, 0x%04x
        .equ OUT, 0x%04x
        .equ GPIO_IN, 0x%04x
        .equ GPIO_OUT, 0x%04x
|}
    input_base output_base Defs.gpio_in_addr Defs.gpio_out_addr

let src body = prologue ^ body

let mult =
  B.mk "mult" "Unsigned 16x16 multiply of two inputs (software shift-add)"
    ~input_ranges:[ (input_base, input_base + 7) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 23) in
      ([ (input_base, rand16 ~state); (input_base + 4, rand16 ~state) ], 0))
    ~result_addrs:[ output_base ]
    (src
       {|
start:  li s0, IN
        lw a0, 0(s0)         ; multiplicand
        lw a1, 4(s0)         ; multiplier
        li a2, 0             ; product
        li a3, 16
mloop:  andi a4, a1, 1
        beq a4, x0, mnext
        add a2, a2, a0
mnext:  slli a0, a0, 1
        srli a1, a1, 1
        addi a3, a3, -1
        bne a3, x0, mloop
        li s1, OUT
        sw a2, 0(s1)
        sw a2, GPIO_OUT(x0)
        halt
|})

let bin_search =
  B.mk "binSearch" "Binary search over a 16-word sorted input table"
    ~input_ranges:[ (input_base, input_base + 67) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 17) in
      let tbl =
        List.init 16 (fun _ -> rand16 ~state land 0x0FFF)
        |> List.sort Int.compare
      in
      let key =
        if seed land 1 = 0 then List.nth tbl (seed mod 16)
        else rand16 ~state land 0x0FFF
      in
      ( List.mapi (fun i v -> (input_base + (4 * i), v)) tbl
        @ [ (input_base + 64, key) ],
        0 ))
    ~result_addrs:[ output_base ]
    (src
       {|
start:  li s0, IN
        lw a0, 64(s0)        ; key
        li t0, 0             ; lo (word index)
        li t1, 16            ; hi (exclusive)
        li a1, -1            ; result: not found
loop:   bgeu t0, t1, done
        add t2, t0, t1
        srli t2, t2, 1       ; mid
        slli t3, t2, 2
        andi t3, t3, 0x3c    ; bound the table index
        add t4, s0, t3
        lw t5, 0(t4)
        beq t5, a0, found
        bltu t5, a0, less
        mv t1, t2            ; hi = mid
        j loop
less:   addi t0, t2, 1       ; lo = mid + 1
        j loop
found:  mv a1, t2
done:   li t6, OUT
        sw a1, 0(t6)
        sw a1, GPIO_OUT(x0)
        halt
|})

let in_sort =
  B.mk "inSort" "In-place insertion sort of 8 input words"
    ~input_ranges:[ (input_base, input_base + 31) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 3) in
      (words ~state ~base:input_base ~count:8 (), 0))
    ~result_addrs:[ output_base ]
    (src
       {|
start:  li s0, IN
        li t0, 4             ; i (byte offset)
        li t6, 32
outer:  bgeu t0, t6, sorted
        andi t5, t0, 0x1c
        add t5, t5, s0
        lw a0, 0(t5)         ; key
        mv t1, t0            ; j
inner:  beq t1, x0, insert
        addi t2, t1, -4
        andi t2, t2, 0x1c    ; bound the load index
        add t3, t2, s0
        lw a1, 0(t3)         ; a[j-1]
        bgeu a0, a1, insert  ; key >= a[j-1]
        andi t4, t1, 0x1c    ; bound the store index
        add t4, t4, s0
        sw a1, 0(t4)         ; a[j] = a[j-1]
        addi t1, t1, -4
        j inner
insert: andi t4, t1, 0x1c
        add t4, t4, s0
        sw a0, 0(t4)
        addi t0, t0, 4
        j outer
sorted: li a2, 0             ; checksum the sorted array
        li t1, 0
cksum:  andi t2, t1, 0x1c
        add t3, t2, s0
        lw a1, 0(t3)
        add a2, a2, a1
        addi t1, t1, 4
        bltu t1, t6, cksum
        li t6, OUT
        sw a2, 0(t6)
        sw a2, GPIO_OUT(x0)
        halt
|})

let int_avg =
  B.mk "intAVG" "Signed average of 16 input samples"
    ~input_ranges:[ (input_base, input_base + 63) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 7) in
      (words ~state ~base:input_base ~count:16 ~mask:0x0FFF (), 0))
    ~result_addrs:[ output_base ]
    (src
       {|
start:  li s0, IN
        li a0, 0             ; sum
        li t0, 0             ; index (bytes)
        li t6, 64
aloop:  andi t1, t0, 0x3c
        add t2, t1, s0
        lw a1, 0(t2)
        add a0, a0, a1
        addi t0, t0, 4
        bltu t0, t6, aloop
        srai a0, a0, 4       ; /16 (arithmetic)
        li t6, OUT
        sw a0, 0(t6)
        sw a0, GPIO_OUT(x0)
        halt
|})

let rle =
  B.mk "rle" "Run-length encoder over 16 input bytes"
    ~input_ranges:[ (input_base, input_base + 15) ]
    ~gen_inputs:(fun seed ->
      let state = ref (seed + 5) in
      (* runs are likely: draw from a 4-symbol alphabet *)
      ( List.init 4 (fun i ->
            let w =
              (rand16 ~state land 0x0303)
              lor ((rand16 ~state land 0x0303) lsl 16)
            in
            (input_base + (4 * i), w)),
        0 ))
    ~result_addrs:[ output_base; output_base + 4 ]
    (src
       {|
start:  li s0, IN
        li s1, OUT
        li t0, 1             ; input byte index
        lbu a0, 0(s0)        ; current symbol
        li a1, 1             ; run length
        li t2, 0             ; output byte offset
        li t6, 16
rloop:  bgeu t0, t6, rdone
        andi t3, t0, 0xf
        add t4, t3, s0
        lbu a2, 0(t4)
        addi t0, t0, 1
        bne a2, a0, rflush
        addi a1, a1, 1
        j rloop
rflush: andi t5, t2, 0x1e    ; bound the output pointer
        add t4, t5, s1
        sb a0, 0(t4)
        addi t5, t5, 1
        andi t5, t5, 0x1f
        add t4, t5, s1
        sb a1, 0(t4)
        addi t2, t2, 2
        mv a0, a2
        li a1, 1
        j rloop
rdone:  andi t5, t2, 0x1e
        add t4, t5, s1
        sb a0, 0(t4)
        addi t5, t5, 1
        andi t5, t5, 0x1f
        add t4, t5, s1
        sb a1, 0(t4)
        addi t2, t2, 2
        sw t2, GPIO_OUT(x0)  ; encoded length (bytes)
        halt
|})

let all = [ mult; bin_search; in_sort; int_avg; rle ]
