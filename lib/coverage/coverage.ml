module Coredef = Bespoke_coreapi.Coredef
module Runner = Bespoke_core.Runner
module Benchmark = Bespoke_programs.Benchmark
module Obs = Bespoke_obs.Obs

(* Coverage telemetry (no-ops unless Obs is enabled), in the same
   style as the sim/analysis instrumentation: counters accumulate
   across measurements, gauges hold the most recent result. *)
let m_trace_runs = Obs.Metrics.counter "coverage.trace_runs"
let m_candidates = Obs.Metrics.counter "coverage.candidates_tried"
let g_kept_seeds = Obs.Metrics.gauge "coverage.kept_seeds"
let g_line_pct = Obs.Metrics.gauge "coverage.line_pct"
let g_branch_pct = Obs.Metrics.gauge "coverage.branch_pct"
let g_branch_dir_pct = Obs.Metrics.gauge "coverage.branch_dir_pct"

type stats = {
  kept_seeds : int list;
  line_pct : float;
  branch_pct : float;
  branch_dir_pct : float;
  lines_total : int;
  branches_total : int;
}

let record_stats s =
  if Obs.enabled () then begin
    Obs.Metrics.set g_kept_seeds (float_of_int (List.length s.kept_seeds));
    Obs.Metrics.set g_line_pct s.line_pct;
    Obs.Metrics.set g_branch_pct s.branch_pct;
    Obs.Metrics.set g_branch_dir_pct s.branch_dir_pct
  end

let rom_word_of ~core (img : Coredef.image) a =
  if Coredef.in_rom core a then
    img.Coredef.rom.((a - core.Coredef.rom_base) lsr core.Coredef.addr_shift)
  else 0

(* Classification of the instruction at [a], or [None] when the word
   does not decode (data in the instruction stream). *)
let classify_opt ~core img a =
  match core.Coredef.classify ~rom_word:(rom_word_of ~core img) ~pc:a with
  | info -> Some info
  | exception Failure _ -> None

(* Static program structure: instruction starts and conditional
   branches. *)
let program_shape ~core (img : Coredef.image) =
  let starts = img.Coredef.insn_addrs in
  let branches =
    List.filter
      (fun a ->
        match classify_opt ~core img a with
        | Some info -> info.Coredef.ci_cond_branch
        | None -> false)
      starts
  in
  (starts, branches)

(* One concrete ISS run recording executed addresses and branch
   directions. *)
let trace_run ~core (b : Benchmark.t) ~seed ~executed ~taken ~not_taken =
  Obs.Metrics.incr m_trace_runs;
  let img = Runner.image ~core b in
  let t = img.Coredef.mk_iss () in
  t.Coredef.reset ();
  let ram_writes, gpio = b.Benchmark.gen_inputs seed in
  List.iter (fun (a, v) -> t.Coredef.write_ram_word a v) ram_writes;
  t.Coredef.set_gpio_in gpio;
  let pulses = if b.Benchmark.uses_irq then b.Benchmark.irq_pulses seed else [] in
  let steps = ref 0 in
  while (not (t.Coredef.halted ())) && !steps < 500_000 do
    t.Coredef.set_irq_line (List.mem (t.Coredef.retired ()) pulses);
    let pc0 = t.Coredef.pc () in
    let info = classify_opt ~core img pc0 in
    t.Coredef.step ();
    incr steps;
    Hashtbl.replace executed pc0 ();
    (match info with
    | Some i when i.Coredef.ci_cond_branch ->
      (* took the branch iff PC is not sequential (and the step was
         not pre-empted by an interrupt entry) *)
      if t.Coredef.pc () = i.Coredef.ci_next then
        Hashtbl.replace not_taken pc0 ()
      else if t.Coredef.pc () <> t.Coredef.irq_entry () then
        Hashtbl.replace taken pc0 ()
    | _ -> ())
  done;
  t.Coredef.halted ()

let coverage_of ~core (b : Benchmark.t) seeds =
  let img = Runner.image ~core b in
  let starts, branches = program_shape ~core img in
  let executed = Hashtbl.create 128 in
  let taken = Hashtbl.create 32 in
  let not_taken = Hashtbl.create 32 in
  List.iter
    (fun seed -> ignore (trace_run ~core b ~seed ~executed ~taken ~not_taken))
    seeds;
  let lines_total = List.length starts in
  let branches_total = List.length branches in
  let lines_hit =
    List.length (List.filter (Hashtbl.mem executed) starts)
  in
  let branches_hit =
    List.length (List.filter (Hashtbl.mem executed) branches)
  in
  let dirs_hit =
    List.fold_left
      (fun acc a ->
        acc
        + (if Hashtbl.mem taken a then 1 else 0)
        + if Hashtbl.mem not_taken a then 1 else 0)
      0 branches
  in
  let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b in
  {
    kept_seeds = seeds;
    line_pct = pct lines_hit lines_total;
    branch_pct = pct branches_hit branches_total;
    branch_dir_pct = pct dirs_hit (2 * branches_total);
    lines_total;
    branches_total;
  }

let measure ~core b ~seeds =
  let s = coverage_of ~core b seeds in
  record_stats s;
  s

let score s = s.line_pct +. s.branch_dir_pct

let explore ?(initial = 2) ?(budget = 40) ~core b =
  Obs.Span.with_ ~name:"coverage.explore"
    ~args:
      [
        ("benchmark", b.Benchmark.name);
        ("initial", string_of_int initial);
        ("budget", string_of_int budget);
      ]
  @@ fun () ->
  let seeds = ref (List.init initial (fun i -> i + 1)) in
  let best = ref (coverage_of ~core b !seeds) in
  let candidate = ref (initial + 1) in
  let stale = ref 0 in
  while !stale < 10 && !candidate <= initial + budget
        && score !best < 200.0 -. 1e-9 do
    let trial = !seeds @ [ !candidate ] in
    Obs.Metrics.incr m_candidates;
    let s = coverage_of ~core b trial in
    if score s > score !best +. 1e-9 then begin
      seeds := trial;
      best := s;
      stale := 0
    end
    else incr stale;
    incr candidate
  done;
  record_stats !best;
  !best
