module Isa = Bespoke_isa.Isa
module Asm = Bespoke_isa.Asm
module Iss = Bespoke_isa.Iss
module Benchmark = Bespoke_programs.Benchmark
module Obs = Bespoke_obs.Obs

(* Coverage telemetry (no-ops unless Obs is enabled), in the same
   style as the sim/analysis instrumentation: counters accumulate
   across measurements, gauges hold the most recent result. *)
let m_trace_runs = Obs.Metrics.counter "coverage.trace_runs"
let m_candidates = Obs.Metrics.counter "coverage.candidates_tried"
let g_kept_seeds = Obs.Metrics.gauge "coverage.kept_seeds"
let g_line_pct = Obs.Metrics.gauge "coverage.line_pct"
let g_branch_pct = Obs.Metrics.gauge "coverage.branch_pct"
let g_branch_dir_pct = Obs.Metrics.gauge "coverage.branch_dir_pct"

type stats = {
  kept_seeds : int list;
  line_pct : float;
  branch_pct : float;
  branch_dir_pct : float;
  lines_total : int;
  branches_total : int;
}

let record_stats s =
  if Obs.enabled () then begin
    Obs.Metrics.set g_kept_seeds (float_of_int (List.length s.kept_seeds));
    Obs.Metrics.set g_line_pct s.line_pct;
    Obs.Metrics.set g_branch_pct s.branch_pct;
    Obs.Metrics.set g_branch_dir_pct s.branch_dir_pct
  end

(* Static program structure: instruction starts and conditional
   branches. *)
let program_shape (img : Asm.image) =
  let rom = Asm.image_rom img in
  let starts = Asm.instruction_addrs img in
  let branches =
    List.filter
      (fun a ->
        let w = rom.((a - Bespoke_isa.Memmap.rom_base) / 2) in
        match Isa.decode w [ 0; 0 ] with
        | Isa.Jump { cond; _ }, _ -> cond <> Isa.JMP
        | _ -> false
        | exception Isa.Decode_error _ -> false)
      starts
  in
  (starts, branches)

(* One concrete ISS run recording executed addresses and branch
   directions. *)
let trace_run (b : Benchmark.t) ~seed ~executed ~taken ~not_taken =
  Obs.Metrics.incr m_trace_runs;
  let img = Benchmark.image b in
  let t = Iss.create img in
  Iss.reset t;
  let ram_writes, gpio = b.Benchmark.gen_inputs seed in
  List.iter (fun (a, v) -> Iss.write_ram_word t a v) ram_writes;
  Iss.set_gpio_in t gpio;
  let pulses = if b.Benchmark.uses_irq then b.Benchmark.irq_pulses seed else [] in
  let steps = ref 0 in
  while (not (Iss.halted t)) && !steps < 500_000 do
    Iss.set_irq_line t (List.mem (Iss.instructions_retired t) pulses);
    let pc0 = Iss.pc t in
    let insn = try Some (Iss.current_insn t) with Isa.Decode_error _ -> None in
    Iss.step t;
    incr steps;
    Hashtbl.replace executed pc0 ();
    (match insn with
    | Some (Isa.Jump { cond; _ }) when cond <> Isa.JMP ->
      (* took the branch iff PC is not sequential *)
      if Iss.pc t = (pc0 + 2) land 0xffff then Hashtbl.replace not_taken pc0 ()
      else if Iss.pc t <> Iss.read_word t Bespoke_isa.Memmap.irq_vector then
        Hashtbl.replace taken pc0 ()
    | _ -> ())
  done;
  Iss.halted t

let coverage_of (b : Benchmark.t) seeds =
  let img = Benchmark.image b in
  let starts, branches = program_shape img in
  let executed = Hashtbl.create 128 in
  let taken = Hashtbl.create 32 in
  let not_taken = Hashtbl.create 32 in
  List.iter
    (fun seed -> ignore (trace_run b ~seed ~executed ~taken ~not_taken))
    seeds;
  let lines_total = List.length starts in
  let branches_total = List.length branches in
  let lines_hit =
    List.length (List.filter (Hashtbl.mem executed) starts)
  in
  let branches_hit =
    List.length (List.filter (Hashtbl.mem executed) branches)
  in
  let dirs_hit =
    List.fold_left
      (fun acc a ->
        acc
        + (if Hashtbl.mem taken a then 1 else 0)
        + if Hashtbl.mem not_taken a then 1 else 0)
      0 branches
  in
  let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b in
  {
    kept_seeds = seeds;
    line_pct = pct lines_hit lines_total;
    branch_pct = pct branches_hit branches_total;
    branch_dir_pct = pct dirs_hit (2 * branches_total);
    lines_total;
    branches_total;
  }

let measure b ~seeds =
  let s = coverage_of b seeds in
  record_stats s;
  s

let score s = s.line_pct +. s.branch_dir_pct

let explore ?(initial = 2) ?(budget = 40) b =
  Obs.Span.with_ ~name:"coverage.explore"
    ~args:
      [
        ("benchmark", b.Benchmark.name);
        ("initial", string_of_int initial);
        ("budget", string_of_int budget);
      ]
  @@ fun () ->
  let seeds = ref (List.init initial (fun i -> i + 1)) in
  let best = ref (coverage_of b !seeds) in
  let candidate = ref (initial + 1) in
  let stale = ref 0 in
  while !stale < 10 && !candidate <= initial + budget
        && score !best < 200.0 -. 1e-9 do
    let trial = !seeds @ [ !candidate ] in
    Obs.Metrics.incr m_candidates;
    let s = coverage_of b trial in
    if score s > score !best +. 1e-9 then begin
      seeds := trial;
      best := s;
      stale := 0
    end
    else incr stale;
    incr candidate
  done;
  record_stats !best;
  !best
