(** Coverage-directed input generation and coverage accounting — the
    KLEE stand-in for the verification study (paper Table 3).

    Inputs are drawn from each benchmark's generator under different
    seeds; a greedy search keeps a seed only if it increases line or
    branch-direction coverage, and stops when a run of candidates adds
    nothing.  Coverage is measured on the core's ISS:

    - {e line} coverage: fraction of instruction start addresses
      executed;
    - {e branch} coverage: fraction of conditional branches executed;
    - {e branch direction} coverage: fraction of (branch, taken /
      not-taken) pairs observed. *)

module Benchmark := Bespoke_programs.Benchmark

type stats = {
  kept_seeds : int list;  (** minimized input set, oldest first *)
  line_pct : float;
  branch_pct : float;
  branch_dir_pct : float;
  lines_total : int;
  branches_total : int;
}

val measure : core:Bespoke_coreapi.Coredef.t -> Benchmark.t -> seeds:int list -> stats
(** Coverage of a fixed input set (all seeds kept). *)

val score : stats -> float
(** The greedy search's objective: [line_pct +. branch_dir_pct]
    (so full coverage scores 200).  Exposed for the verification
    campaign and for determinism regression tests. *)

val explore :
  ?initial:int -> ?budget:int -> core:Bespoke_coreapi.Coredef.t ->
  Benchmark.t -> stats
(** Greedy search: start with [initial] seeds (default 2), then try up
    to [budget] further candidates (default 40), keeping those that
    improve coverage. *)
