(** Oracular module-level power gating (paper Fig 15): the upper bound
    on what power gating could save.

    A module dissipates no dynamic power in a cycle in which none of
    its gates toggles, and no leakage either — zero-overhead, perfect
    oracle, zero wake-up latency.  Even this bound falls far short of
    bespoke pruning. *)

module Benchmark := Bespoke_programs.Benchmark
module Netlist := Bespoke_netlist.Netlist

type t = {
  module_idle_fraction : (string * float) list;
      (** fraction of cycles each module is completely quiet *)
  power_saving_fraction : float;
      (** total power saved by the oracle, as a fraction of the
          baseline design's power *)
}

val evaluate :
  ?netlist:Netlist.t -> ?seed:int -> core:Bespoke_coreapi.Coredef.t ->
  Benchmark.t -> t
