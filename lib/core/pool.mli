(** Domain pool for fanning independent tasks across cores.

    Parallelism is gated behind the [BESPOKE_JOBS] environment
    variable (default 1 = fully sequential, no domains spawned), so
    tests and default runs stay deterministic.  Results are assembled
    in input order regardless of the job count.

    Tasks must be independent and must not force shared lazy values
    (force them before mapping — stdlib [Lazy] is not domain-safe). *)

val default_jobs : unit -> int
(** [BESPOKE_JOBS] as a positive int, else 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] like [List.map f xs]; with [jobs > 1] (default
    {!default_jobs}) tasks run on [jobs] domains pulling from a shared
    queue.  The first task exception (in input order) is re-raised
    after all domains join. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
