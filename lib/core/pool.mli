(** Persistent work-stealing domain pool for fanning independent tasks
    across cores.

    Worker domains are spawned on first use and reused for every later
    [map] (no per-call [Domain.spawn]/[join]).  Each domain owns a
    deque — the owner works the back, idle domains steal from the
    front — and a [map] submitted from inside a worker task pushes onto
    that worker's own deque, so nested submission composes without
    deadlock.

    Parallelism is gated behind the [BESPOKE_JOBS] environment variable
    (default 1 = fully sequential, no domains spawned), overridable
    in-process with {!set_default_jobs} (the CLI [--jobs] flag).
    Results are assembled in input order regardless of the job count.

    Tasks must be independent and must not force shared lazy values
    (force them before mapping — stdlib [Lazy] is not domain-safe). *)

exception Task_errors of (int * exn) list
(** Raised by {!map}/{!iter} when one or more tasks raised: every
    failed task as [(input index, exception)], sorted by index.  All
    tasks run to completion (or failure) before this is raised —
    a failing task never cancels its siblings. *)

val clamp_jobs : int -> int
(** [max 1 (min n (Domain.recommended_domain_count ()))]: CPU-bound
    domains beyond the core count only add scheduling and GC-sync
    overhead, so requested job counts are capped at the hardware. *)

val default_jobs : unit -> int
(** The {!set_default_jobs} override if set, else [BESPOKE_JOBS] as a
    positive int, else 1 — then {!clamp_jobs}ed to the hardware. *)

val set_default_jobs : int -> unit
(** Override [BESPOKE_JOBS] process-wide (clamped to >= 1).  Used by
    the CLI [--jobs] flag. *)

val domain_count : unit -> int
(** Number of worker domains spawned so far (0 until the first
    parallel [map]; never shrinks). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] like [List.map f xs]; with [jobs > 1] (default
    {!default_jobs}) tasks are pushed onto the submitter's deque and
    executed by the submitter plus up to [jobs - 1] pool workers.
    An explicit [~jobs] is taken literally, {e not} clamped — tests
    exercising the parallel paths need real worker domains even on a
    small machine; go through {!default_jobs} to be hardware-aware.
    Raises {!Task_errors} with {e every} failed task if any task
    raised; otherwise returns results in input order. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [iter f xs] is [map] with unit results.  Raises {!Task_errors}
    like {!map}. *)
