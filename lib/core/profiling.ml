module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate
module Benchmark = Bespoke_programs.Benchmark
module Obs = Bespoke_obs.Obs

let m_runs = Obs.Metrics.counter "profiling.runs"
let m_lanes_packed = Obs.Metrics.counter "profiling.lanes_packed"

type t = {
  per_seed_toggled : (int * bool array) list;
  union_toggled : bool array;
  intersection_untoggled : bool array;
  total_toggles : int array;
  total_cycles : int;
}

let profile ?netlist ?(seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    ?(engine = Runner.Packed) ~core b =
  Obs.Span.with_ ~name:"profiling.profile"
    ~args:[ ("benchmark", b.Benchmark.name) ]
    (fun () ->
  let net =
    match netlist with Some n -> n | None -> Runner.shared_netlist core
  in
  let ng = Netlist.gate_count net in
  let union = Array.make ng false in
  let inter_untoggled = Array.make ng true in
  let totals = Array.make ng 0 in
  let cycles = ref 0 in
  Obs.Metrics.incr m_runs;
  (* All profiling seeds in one bit-parallel run (the default), or one
     scalar run per seed fanned across the domain pool; every engine
     produces bit-identical per-seed outcomes. *)
  let outcomes =
    match engine with
    | Runner.Packed when List.length seeds > 1 ->
      Obs.Metrics.add m_lanes_packed (List.length seeds);
      Runner.run_gate_packed ~netlist:net ~core b ~seeds
    | e ->
      let e = if e = Runner.Packed then Runner.Compiled else e in
      Pool.map
        (fun seed -> (seed, Runner.run_gate ~engine:e ~netlist:net ~core b ~seed))
        seeds
  in
  let per_seed =
    List.map
      (fun (seed, o) ->
        let toggled = Array.map (fun c -> c > 0) o.Runner.toggles in
        Array.iteri
          (fun i c ->
            totals.(i) <- totals.(i) + c;
            if toggled.(i) then begin
              union.(i) <- true;
              inter_untoggled.(i) <- false
            end)
          o.Runner.toggles;
        cycles := !cycles + o.Runner.sim_cycles;
        (seed, toggled))
      outcomes
  in
  {
    per_seed_toggled = per_seed;
    union_toggled = union;
    intersection_untoggled = inter_untoggled;
    total_toggles = totals;
    total_cycles = !cycles;
  })

let untoggled_fraction_range net t =
  let real = ref 0 in
  Array.iter
    (fun (g : Gate.t) ->
      match g.Gate.op with Gate.Input | Gate.Const _ -> () | _ -> incr real)
    net.Netlist.gates;
  let frac_untoggled toggled =
    let n = ref 0 in
    Array.iteri
      (fun i (g : Gate.t) ->
        match g.Gate.op with
        | Gate.Input | Gate.Const _ -> ()
        | _ -> if not toggled.(i) then incr n)
      net.Netlist.gates;
    float_of_int !n /. float_of_int (max 1 !real)
  in
  let per_run = List.map (fun (_, tg) -> frac_untoggled tg) t.per_seed_toggled in
  let mn = List.fold_left Float.min 1.0 per_run in
  let mx = List.fold_left Float.max 0.0 per_run in
  let inter = frac_untoggled (Array.map not t.intersection_untoggled) in
  (mn, mx, inter)
