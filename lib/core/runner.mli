(** Drives a benchmark through a core's ISS and/or the gate-level
    system: loads generated inputs into RAM, applies the GPIO value
    and IRQ pulse schedule, runs to the halt port, and harvests
    results and switching activity.

    Every entry point takes the target core as an explicit
    {!Bespoke_coreapi.Coredef} descriptor; nothing in this module is
    tied to a concrete ISA. *)

module Benchmark := Bespoke_programs.Benchmark
module Netlist := Bespoke_netlist.Netlist
module Activity := Bespoke_analysis.Activity
module Coredef := Bespoke_coreapi.Coredef
module Lockstep := Bespoke_coreapi.Lockstep

type engine = Full | Event | Packed | Compiled
(** Uniform gate-simulation engine selector, shared by the library
    entry points and the CLI's [--engine] flag: [Full] re-evaluates
    every gate per settle (the reference), [Event] is event-driven,
    [Packed] packs one run per seed into Engine64 lanes, [Compiled]
    executes the memoized word-level program
    ({!Bespoke_sim.Compile}).  All four are bit-identical in results,
    cycle counts and per-gate activity. *)

val all_engines : engine list

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

val mode_of_engine : engine -> Bespoke_sim.Engine.mode
(** @raise Invalid_argument on [Packed] (seed-parallel, not a scalar
    engine mode). *)

type iss_outcome = {
  results : (int * int) list;  (** benchmark result words (addr, value) *)
  cycles : int;
  instructions : int;
  gpio_out : int;
}

val run_iss : core:Coredef.t -> Benchmark.t -> seed:int -> iss_outcome

type gate_outcome = {
  g_results : (int * int option) list;
      (** [None] when the gate-level value contains X *)
  g_cycles : int;
  g_gpio_out : int option;
  toggles : int array;
  sim_cycles : int;  (** denominator for toggle rates *)
}

val run_gate :
  ?engine:engine ->
  ?attach:(Bespoke_sim.Engine.t -> unit) ->
  ?attach64:(Bespoke_sim.Engine64.t -> unit) ->
  ?netlist:Netlist.t -> ?max_cycles:int -> core:Coredef.t ->
  Benchmark.t -> seed:int ->
  gate_outcome
(** Runs on a fresh system unless [netlist] is given (e.g. a bespoke
    design).  IRQ pulses are applied at the benchmark's instruction
    indices.  [engine] selects the gate-evaluation strategy (default
    [Compiled]; [Packed] runs a one-lane packed simulation).
    [attach] ([attach64] for [Packed]) is called on the freshly
    created engine before the run — probe hook-up point for guard
    shadow watchers ({!Bespoke_sim.Engine.set_cycle_hook}) without
    this module depending on them. *)

val run_gate_packed :
  ?attach64:(Bespoke_sim.Engine64.t -> unit) ->
  ?netlist:Netlist.t -> ?max_cycles:int -> core:Coredef.t ->
  Benchmark.t -> seeds:int list ->
  (int * gate_outcome) list
(** Run one gate-level execution per seed, packed into the lanes of a
    single bit-parallel {!Bespoke_sim.Engine64} simulation (chunks of
    up to 63 seeds).  Outcomes are bit-identical to [run_gate] on the
    same seed and are returned in seed order. *)

val co_simulate :
  ?engine:engine -> ?netlist:Netlist.t -> ?x_dont_care:bool ->
  core:Coredef.t -> Benchmark.t -> seed:int ->
  (Lockstep.result, Lockstep.divergence_info) Stdlib.result
(** Input-based co-simulation (paper Section 5.1): run the benchmark's
    generated inputs for [seed] through the gate-level design (stock,
    or [netlist] for a bespoke/faulty variant) in full lockstep with
    the core's ISS — every architectural register at every instruction
    boundary, exact cycle counts, final RAM and GPIO.  Never raises on
    divergence; the structured first mismatch is returned so the
    verification campaign can shrink and report it.  [engine] (default
    [Compiled]) selects the scalar gate-level engine;
    @raise Invalid_argument on [Packed].  [x_dont_care]
    (for tailored designs, see {!Bespoke_coreapi.Lockstep.run})
    requires only the concrete gate-level bits to match. *)

exception Mismatch of string

val check_equivalence :
  ?engine:engine ->
  ?attach:(Bespoke_sim.Engine.t -> unit) ->
  ?attach64:(Bespoke_sim.Engine64.t -> unit) ->
  ?netlist:Netlist.t -> core:Coredef.t -> Benchmark.t -> seed:int ->
  iss_outcome
(** Run both models and require identical results, GPIO and cycle
    counts.  Returns the ISS outcome.  [attach]/[attach64] as in
    {!run_gate}.  @raise Mismatch. *)

val analyze :
  ?config:Activity.config -> ?engine:engine -> ?netlist:Netlist.t ->
  core:Coredef.t -> Benchmark.t -> Activity.report * Netlist.t
(** Input-independent analysis of the benchmark (inputs per its
    [input_ranges]; GPIO X; IRQ X only if the benchmark uses it).
    Returns the report and the netlist analyzed.  [engine] (default
    [Event]) selects the scalar engine driving the symbolic
    exploration; @raise Invalid_argument on [Packed]. *)

val resolve_analysis_config :
  ?config:Activity.config -> Benchmark.t -> Activity.config
(** The exact config {!analyze} runs with: the given one (or the
    default) with the benchmark's input ranges (and, for the default,
    its IRQ usage) applied. *)

val analyze_cached :
  ?config:Activity.config -> ?engine:engine -> ?netlist:Netlist.t ->
  core:Coredef.t -> Benchmark.t -> (Activity.report * Netlist.t) * bool
(** {!analyze} through the content-addressed flow cache: keyed by
    (core fingerprint, binary image hash, netlist hash, config
    fingerprint), so a repeat analysis of the same tuple returns the
    memoized report.  The returned flag is [true] on a cache hit.
    [engine] is not part of the key (all engines are bit-identical).
    Bypasses the cache (and reports a miss) when the config carries a
    [probe] or [verbose]. *)

val image : core:Coredef.t -> Benchmark.t -> Coredef.image
(** Assemble the benchmark's source with the core's assembler,
    memoized per (core, source digest) — so mutated sources never
    collide with the pristine benchmark. *)

val shared_netlist : Coredef.t -> Netlist.t
(** One memoized copy of the core's stock netlist, shared by callers
    that do not mutate netlists.  Force this {e and}
    {!shared_netlist_hash} in the parent before fanning out with
    [Pool] — the memo table is not domain-safe. *)

val shared_netlist_hash : Coredef.t -> string
(** Memoized {!Bespoke_netlist.Serial.hash} of {!shared_netlist}
    (forces the netlist build). *)

val image_hash : Coredef.image -> string
(** Content hash of a binary image (ROM words + entry point) — a flow
    cache key component. *)

val netlist_hash : core:Coredef.t -> Netlist.t -> string
(** [Serial.hash], short-circuited to the memoized hash when given the
    core's (already forced) shared netlist. *)
