(* Content-addressed flow cache: memoize expensive flow stages
   (analysis, tailoring, whole campaign jobs) by a digest of everything
   the stage's result depends on — binary image hash, netlist hash,
   config fingerprint.  Repeated requests for the same (program,
   design, config) triple are near-free, which is what makes campaign
   batches fast on few cores.

   Each cache is a named, mutex-protected hash table with hit/miss
   counts mirrored into Obs metrics (flowcache.<name>.hits/.misses).
   Lookups that miss compute OUTSIDE the lock (a slow compute must not
   serialize unrelated lookups), and concurrent misses on the SAME key
   deduplicate: the first requester computes, later ones wait on the
   cache's condition variable and adopt the result — without this, a
   campaign running analyze/tailor/report of one benchmark on three
   domains would compute the same analysis three times and throw two
   away.  If the compute raises, the in-flight marker is cleared and a
   waiter takes over the compute.

   An optional capacity bound evicts in insertion order (FIFO) — good
   enough for the batch workloads here, where a campaign either fits or
   streams through once. *)

module Obs = Bespoke_obs.Obs

type 'v t = {
  name : string;
  lock : Mutex.t;
  cond : Condition.t; (* signaled when an in-flight compute finishes *)
  tbl : (string, 'v) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;
  order : string Queue.t; (* insertion order, for capacity eviction *)
  capacity : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_evictions : Obs.Metrics.counter;
}

(* Registry so callers (bench harness, campaign warm/cold timing) can
   reset or inspect every cache in the process at once. *)
type any = Any : 'v t -> any

let reg_lock = Mutex.create ()
let registry : any list ref = ref []

let create ?capacity ~name () =
  let c =
    {
      name;
      lock = Mutex.create ();
      cond = Condition.create ();
      tbl = Hashtbl.create 64;
      inflight = Hashtbl.create 8;
      order = Queue.create ();
      capacity;
      hits = 0;
      misses = 0;
      evictions = 0;
      m_hits = Obs.Metrics.counter (Printf.sprintf "flowcache.%s.hits" name);
      m_misses = Obs.Metrics.counter (Printf.sprintf "flowcache.%s.misses" name);
      m_evictions =
        Obs.Metrics.counter (Printf.sprintf "flowcache.%s.evictions" name);
    }
  in
  Mutex.lock reg_lock;
  registry := Any c :: !registry;
  Mutex.unlock reg_lock;
  c

let digest parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let find_or_compute_report c ~key compute =
  Mutex.lock c.lock;
  (* A waiter can wake to find the key neither cached (the computer
     raised, or a tiny capacity evicted it) nor in flight — then it
     claims the compute itself. *)
  let rec lookup () =
    match Hashtbl.find_opt c.tbl key with
    | Some v -> Some v
    | None ->
      if Hashtbl.mem c.inflight key then (
        Condition.wait c.cond c.lock;
        lookup ())
      else None
  in
  match lookup () with
  | Some v ->
    c.hits <- c.hits + 1;
    Mutex.unlock c.lock;
    Obs.Metrics.incr c.m_hits;
    (v, true)
  | None ->
    Hashtbl.replace c.inflight key ();
    c.misses <- c.misses + 1;
    Mutex.unlock c.lock;
    Obs.Metrics.incr c.m_misses;
    let v =
      try compute ()
      with e ->
        Mutex.lock c.lock;
        Hashtbl.remove c.inflight key;
        Condition.broadcast c.cond;
        Mutex.unlock c.lock;
        raise e
    in
    Mutex.lock c.lock;
    Hashtbl.remove c.inflight key;
    let v =
      match Hashtbl.find_opt c.tbl key with
      | Some v' -> v' (* first writer wins *)
      | None ->
        Hashtbl.replace c.tbl key v;
        Queue.push key c.order;
        (match c.capacity with
        | Some cap when Hashtbl.length c.tbl > cap ->
          let oldest = Queue.pop c.order in
          Hashtbl.remove c.tbl oldest;
          c.evictions <- c.evictions + 1;
          Obs.Metrics.incr c.m_evictions
        | _ -> ());
        v
    in
    Condition.broadcast c.cond;
    Mutex.unlock c.lock;
    (v, false)

let find_or_compute c ~key compute =
  fst (find_or_compute_report c ~key compute)

let clear c =
  Mutex.lock c.lock;
  Hashtbl.reset c.tbl;
  Queue.clear c.order;
  Mutex.unlock c.lock

let hits c =
  Mutex.lock c.lock;
  let h = c.hits in
  Mutex.unlock c.lock;
  h

let misses c =
  Mutex.lock c.lock;
  let m = c.misses in
  Mutex.unlock c.lock;
  m

let length c =
  Mutex.lock c.lock;
  let n = Hashtbl.length c.tbl in
  Mutex.unlock c.lock;
  n

let evictions c =
  Mutex.lock c.lock;
  let e = c.evictions in
  Mutex.unlock c.lock;
  e

let clear_all () =
  Mutex.lock reg_lock;
  let cs = !registry in
  Mutex.unlock reg_lock;
  List.iter (fun (Any c) -> clear c) cs

type stats = {
  s_name : string;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_entries : int;
}

let stats_all () =
  Mutex.lock reg_lock;
  let cs = !registry in
  Mutex.unlock reg_lock;
  List.sort
    (fun a b -> compare a.s_name b.s_name)
    (List.rev_map
       (fun (Any c) ->
         Mutex.lock c.lock;
         let s =
           {
             s_name = c.name;
             s_hits = c.hits;
             s_misses = c.misses;
             s_evictions = c.evictions;
             s_entries = Hashtbl.length c.tbl;
           }
         in
         Mutex.unlock c.lock;
         s)
       cs)

(* Shared by every `--cache-stats` CLI path. *)
let stats_table () =
  let stats = stats_all () in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-20s %8s %8s %6s %10s %8s\n" "cache" "hits" "misses"
       "hit%" "evictions" "entries");
  List.iter
    (fun s ->
      let total = s.s_hits + s.s_misses in
      Buffer.add_string b
        (Printf.sprintf "%-20s %8d %8d %5.1f%% %10d %8d\n" s.s_name s.s_hits
           s.s_misses
           (if total > 0 then 100.0 *. float_of_int s.s_hits /. float_of_int total
            else 0.0)
           s.s_evictions s.s_entries))
    stats;
  Buffer.contents b
