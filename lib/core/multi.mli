(** Multi-application bespoke designs (paper Section 3.5 / 5.2):
    the union of the per-application usable-gate sets is kept; gates in
    no application's set are cut.

    Also the in-field-update checks of Section 5.3: a new binary is
    supported by an existing bespoke design iff its usable gates are a
    subset of the design's gates. *)

module Netlist := Bespoke_netlist.Netlist

val union_toggled : bool array list -> bool array
val intersect_untoggled : bool array list -> bool array
(** Same as [union_toggled]; named for the paper's phrasing. *)

val supported : design_toggled:bool array -> app_toggled:bool array -> bool
(** Does a design tailored to [design_toggled] run an application
    needing [app_toggled]?  (Subset check.) *)

val tailor_multi :
  Netlist.t ->
  reports:(bool array * Bespoke_logic.Bit.t array) list ->
  Netlist.t * Cut.stats
(** Cut using the union of usable gates over all the applications.
    The constant values agree across reports wherever a gate is
    commonly untoggled (they all equal the reset value), so the first
    report's constants are used. *)

val usable_gate_count : Netlist.t -> bool array -> int

val bitset_of : bool array -> int array
(** Pack a toggled mask into 63-bit words (for fast subset unions). *)

val popcount : int array -> int

val sweep :
  ?jobs:int -> int array array -> (int * int) array * (int * int) array
(** [sweep sets] enumerates every nonempty subset of the [n]
    applications (bitsets from {!bitset_of}, all the same length) and
    returns [(best, worst)]: for each subset size [k] in [1..n],
    [best.(k)] / [worst.(k)] is [(gate count, subset bitmask)] of the
    subset with the fewest / most union gates.  Ties keep the smallest
    subset bitmask, independent of [jobs] (default
    {!Pool.default_jobs}) — the enumeration is chunked across the
    domain pool but merged deterministically.  Entries at index 0 are
    [(max_int, 0)] / [(min_int, 0)]. *)
