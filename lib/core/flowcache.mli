(** Content-addressed flow cache.

    Memoizes expensive flow stages by a digest of everything the
    result depends on (binary image hash, netlist hash, config
    fingerprint — see {!digest}).  Domain-safe: lookups take a
    per-cache mutex, misses compute outside it, and on a compute race
    the first writer wins.  Hit/miss counts are mirrored into Obs
    metrics as [flowcache.<name>.hits] / [flowcache.<name>.misses]. *)

type 'v t

val create : ?capacity:int -> name:string -> unit -> 'v t
(** A fresh cache registered under [name].  With [capacity], entries
    beyond it are evicted in insertion order. *)

val digest : string list -> string
(** Hex digest of the concatenated parts (NUL-separated, so part
    boundaries are unambiguous).  Use one part per input dimension:
    stage name, image hash, netlist hash, config fingerprint. *)

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v
(** Return the cached value for [key], computing (outside the lock)
    and caching it on a miss.  Concurrent misses on the same key
    deduplicate: one caller computes, the others wait and adopt the
    result (counted as hits).  If the compute raises, the exception
    propagates to its caller and a waiter takes over the compute. *)

val find_or_compute_report : 'v t -> key:string -> (unit -> 'v) -> 'v * bool
(** Like {!find_or_compute} but also reports whether the value came
    from the cache ([true] = hit, including adopting a concurrent
    in-flight compute). *)

val clear : 'v t -> unit
(** Drop all entries (hit/miss counters are kept — they count lookups,
    not contents). *)

val hits : 'v t -> int
val misses : 'v t -> int
val evictions : 'v t -> int
val length : 'v t -> int

val clear_all : unit -> unit
(** {!clear} every cache created in this process — used to measure
    cache-cold campaign timings without restarting. *)

(** One cache's lifetime counters plus its current size. *)
type stats = {
  s_name : string;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_entries : int;
}

val stats_all : unit -> stats list
(** Stats for every cache created in this process, sorted by name. *)

val stats_table : unit -> string
(** {!stats_all} rendered as the table the [--cache-stats] CLI flag
    prints. *)
