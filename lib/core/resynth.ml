module Bit = Bespoke_logic.Bit
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Engine = Bespoke_sim.Engine
module B = Netlist.Builder
module Obs = Bespoke_obs.Obs

(* Resynthesis telemetry (no-ops unless Obs is enabled): gates folded
   away per rewrite (peephole simplifications + constant evaluation)
   and fixpoint rounds run. *)
let m_const_folds = Obs.Metrics.counter "resynth.const_folds"
let m_rounds = Obs.Metrics.counter "resynth.rounds"

(* Sequential constant propagation: find DFFs that provably hold their
   reset value forever.  Greatest fixpoint: start by assuming every
   DFF stuck at its init; evaluate the combinational logic ternarily
   with all primary inputs X, stuck DFFs at their inits and the rest
   X; a DFF whose D pin is not definitely its init value is demoted.
   Ternary evaluation is monotone, so any real reachable state refines
   the evaluated one and the surviving DFFs truly never change. *)
let stuck_dffs net =
  let eng = Engine.create net in
  let dffs = Engine.dff_ids eng in
  let init_of id =
    match net.Netlist.gates.(id).Gate.op with
    | Gate.Dff v -> v
    | _ -> assert false
  in
  let stuck = Array.map (fun _ -> true) dffs in
  let changed = ref true in
  while !changed do
    changed := false;
    Engine.reset eng;
    Engine.set_all_inputs_x eng;
    let state =
      Array.mapi
        (fun i id -> if stuck.(i) then init_of id else Bit.X)
        dffs
    in
    Engine.restore_dff_state eng state;
    Array.iteri
      (fun i id ->
        if stuck.(i) then begin
          let d = net.Netlist.gates.(id).Gate.fanin.(0) in
          if not (Bit.equal (Engine.value eng d) (init_of id)) then begin
            stuck.(i) <- false;
            changed := true
          end
        end)
      dffs
  done;
  let by_gate = Hashtbl.create 64 in
  Array.iteri (fun i id -> if stuck.(i) then Hashtbl.replace by_gate id ()) dffs;
  by_gate

(* Rebuild the netlist gate by gate in topological order, folding
   constants, simplifying, and structurally hashing.  DFFs stuck at
   their reset value (constant or self-looped D) become tie cells. *)
let rewrite_traced ?(seq_const = true) net =
  let sequentially_stuck =
    if seq_const then stuck_dffs net else Hashtbl.create 1
  in
  let ng = Netlist.gate_count net in
  let b = B.create () in
  let map = Array.make ng (-1) in
  let consts : (Bit.t, int) Hashtbl.t = Hashtbl.create 3 in
  let cse : (int * int * int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let folds = ref 0 in
  let tie v =
    match Hashtbl.find_opt consts v with
    | Some id -> id
    | None ->
      let id = B.add_op b (Gate.Const v) [||] in
      Hashtbl.replace consts v id;
      id
  in
  let const_of_new id =
    match (B.gate b id).Gate.op with Gate.Const v -> Some v | _ -> None
  in
  let opcode = function
    | Gate.Buf -> 2
    | Gate.Not -> 3
    | Gate.And -> 4
    | Gate.Or -> 5
    | Gate.Nand -> 6
    | Gate.Nor -> 7
    | Gate.Xor -> 8
    | Gate.Xnor -> 9
    | Gate.Mux -> 10
    | Gate.Const _ | Gate.Input | Gate.Dff _ -> invalid_arg "opcode"
  in
  (* emit with peephole simplification + CSE over NEW gate ids *)
  let rec emit scope drive op (fanin : int array) : int =
    let c i = const_of_new fanin.(i) in
    let simplified =
      match op with
      | Gate.Buf -> Some fanin.(0)
      | Gate.Not -> (
        match c 0 with
        | Some v -> Some (tie (Bit.lnot v))
        | None -> (
          match (B.gate b fanin.(0)).Gate.op with
          | Gate.Not -> Some (B.gate b fanin.(0)).Gate.fanin.(0)
          | _ -> None))
      | Gate.And -> (
        match c 0, c 1 with
        | Some Bit.Zero, _ | _, Some Bit.Zero -> Some (tie Bit.Zero)
        | Some Bit.One, _ -> Some fanin.(1)
        | _, Some Bit.One -> Some fanin.(0)
        | Some Bit.X, Some Bit.X -> Some (tie Bit.X)
        | _ -> if fanin.(0) = fanin.(1) then Some fanin.(0) else None)
      | Gate.Or -> (
        match c 0, c 1 with
        | Some Bit.One, _ | _, Some Bit.One -> Some (tie Bit.One)
        | Some Bit.Zero, _ -> Some fanin.(1)
        | _, Some Bit.Zero -> Some fanin.(0)
        | Some Bit.X, Some Bit.X -> Some (tie Bit.X)
        | _ -> if fanin.(0) = fanin.(1) then Some fanin.(0) else None)
      | Gate.Xor -> (
        match c 0, c 1 with
        | Some Bit.Zero, _ -> Some fanin.(1)
        | _, Some Bit.Zero -> Some fanin.(0)
        | Some Bit.One, _ -> Some (emit scope drive Gate.Not [| fanin.(1) |])
        | _, Some Bit.One -> Some (emit scope drive Gate.Not [| fanin.(0) |])
        | Some Bit.X, _ | _, Some Bit.X -> Some (tie Bit.X)
        | _ -> if fanin.(0) = fanin.(1) then Some (tie Bit.Zero) else None)
      | Gate.Xnor -> (
        match c 0, c 1 with
        | Some Bit.One, _ -> Some fanin.(1)
        | _, Some Bit.One -> Some fanin.(0)
        | Some Bit.Zero, _ -> Some (emit scope drive Gate.Not [| fanin.(1) |])
        | _, Some Bit.Zero -> Some (emit scope drive Gate.Not [| fanin.(0) |])
        | Some Bit.X, _ | _, Some Bit.X -> Some (tie Bit.X)
        | _ -> if fanin.(0) = fanin.(1) then Some (tie Bit.One) else None)
      | Gate.Nand -> (
        match c 0, c 1 with
        | Some Bit.Zero, _ | _, Some Bit.Zero -> Some (tie Bit.One)
        | Some Bit.One, _ -> Some (emit scope drive Gate.Not [| fanin.(1) |])
        | _, Some Bit.One -> Some (emit scope drive Gate.Not [| fanin.(0) |])
        | _ -> None)
      | Gate.Nor -> (
        match c 0, c 1 with
        | Some Bit.One, _ | _, Some Bit.One -> Some (tie Bit.Zero)
        | Some Bit.Zero, _ -> Some (emit scope drive Gate.Not [| fanin.(1) |])
        | _, Some Bit.Zero -> Some (emit scope drive Gate.Not [| fanin.(0) |])
        | _ -> None)
      | Gate.Mux -> (
        match c 0 with
        | Some Bit.Zero -> Some fanin.(1)
        | Some Bit.One -> Some fanin.(2)
        | _ -> (
          if fanin.(1) = fanin.(2) then Some fanin.(1)
          else
            match c 1, c 2 with
            | Some Bit.Zero, Some Bit.One -> Some fanin.(0)
            | Some Bit.One, Some Bit.Zero ->
              Some (emit scope drive Gate.Not [| fanin.(0) |])
            | _ -> None))
      | Gate.Const _ | Gate.Input | Gate.Dff _ -> invalid_arg "emit"
    in
    match simplified with
    | Some id ->
      incr folds;
      id
    | None ->
      if Array.for_all (fun f -> const_of_new f <> None) fanin then begin
        incr folds;
        tie (Gate.eval op (Array.map (fun f -> Option.get (const_of_new f)) fanin))
      end
      else
        let key =
          ( opcode op,
            fanin.(0),
            (if Array.length fanin > 1 then fanin.(1) else -1),
            if Array.length fanin > 2 then fanin.(2) else -1 )
        in
        (match Hashtbl.find_opt cse key with
        | Some id -> id
        | None ->
          let id = B.add b { Gate.op; fanin; module_path = scope; drive } in
          Hashtbl.replace cse key id;
          id)
  in
  (* 1. sources: inputs, consts, and surviving DFFs (fanin patched in
     step 3) *)
  let pending_dffs = ref [] in
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.Gate.op with
      | Gate.Input -> map.(id) <- B.add b g
      | Gate.Const v -> map.(id) <- tie v
      | Gate.Dff init ->
        let d = g.Gate.fanin.(0) in
        let stuck =
          d = id
          || Hashtbl.mem sequentially_stuck id
          ||
          match net.Netlist.gates.(d).Gate.op with
          | Gate.Const v -> Bit.equal v init
          | _ -> false
        in
        if stuck then map.(id) <- tie init
        else begin
          map.(id) <- B.add b g;
          pending_dffs := (id, map.(id)) :: !pending_dffs
        end
      | _ -> ())
    net.Netlist.gates;
  (* 2. combinational gates in topological order *)
  Array.iter
    (fun id ->
      let g = net.Netlist.gates.(id) in
      let fanin = Array.map (fun f -> map.(f)) g.Gate.fanin in
      map.(id) <- emit g.Gate.module_path g.Gate.drive g.Gate.op fanin)
    (Netlist.levelize net);
  (* 3. patch DFF D pins *)
  List.iter
    (fun (old_id, new_id) ->
      let g = net.Netlist.gates.(old_id) in
      let g' = B.gate b new_id in
      B.set b new_id { g' with Gate.fanin = [| map.(g.Gate.fanin.(0)) |] })
    !pending_dffs;
  (* 4. ports and names *)
  List.iter
    (fun (n, ids) -> B.set_input_port b n (Array.map (fun i -> map.(i)) ids))
    net.Netlist.input_ports;
  List.iter
    (fun (n, ids) -> B.set_output_port b n (Array.map (fun i -> map.(i)) ids))
    net.Netlist.output_ports;
  List.iter
    (fun (n, ids) -> B.set_name b n (Array.map (fun i -> map.(i)) ids))
    net.Netlist.names;
  Obs.Metrics.add m_const_folds !folds;
  (B.finish b, map)

let rewrite ?seq_const net = fst (rewrite_traced ?seq_const net)

let dead_sweep net =
  let keep = Netlist.live_gates net in
  (* keep tie cells referenced by names so analysis hooks stay
     resolvable; compact re-materializes dropped const references *)
  Netlist.compact net ~keep

(* [m2] after [m1]; a gate dropped at either stage stays dropped. *)
let compose m1 m2 =
  Array.map (fun i -> if i < 0 then -1 else m2.(i)) m1

let pass_traced ?seq_const net =
  let net1, m1 = rewrite_traced ?seq_const net in
  let net2, m2 = dead_sweep net1 in
  (net2, compose m1 m2)

let pass ?seq_const net = fst (pass_traced ?seq_const net)

let optimize_traced ?(max_rounds = 8) ?seq_const net =
  Obs.Span.with_ ~name:"resynth.optimize" (fun () ->
      let rec go round net map =
        if round >= max_rounds then (net, map)
        else begin
          Obs.Metrics.incr m_rounds;
          let net', m' = pass_traced ?seq_const net in
          let map' = compose map m' in
          if Netlist.gate_count net' < Netlist.gate_count net then
            go (round + 1) net' map'
          else (net', map')
        end
      in
      go 0 net (Array.init (Netlist.gate_count net) Fun.id))

let optimize ?max_rounds ?seq_const net =
  fst (optimize_traced ?max_rounds ?seq_const net)
