(** Cutting and stitching (paper, Section 3.2): produce the bespoke
    netlist from the original design and a gate activity report.

    Every gate the application can never toggle is cut and its fanout
    stitched to the constant value it held; re-synthesis then folds
    the constants, removes floating logic, and re-selects drive
    strengths for the smaller design. *)

module Netlist := Bespoke_netlist.Netlist

type stats = {
  original_gates : int;
  cut_gates : int;  (** never-toggled gates removed *)
  bespoke_gates : int;  (** gates remaining after re-synthesis *)
  original_area : float;
  bespoke_area : float;
}

type assumption = {
  a_gate : int;  (** original-design gate id of a cut (never-toggled) gate *)
  a_const : Bespoke_logic.Bit.t;
      (** the constant it was stitched to — what deployment assumes *)
}

val assumptions :
  Netlist.t ->
  possibly_toggled:bool array ->
  constants:Bespoke_logic.Bit.t array ->
  assumption list
(** The boundary assumptions a tailoring makes: every cut gate paired
    with the constant it was assumed stuck at, in ascending gate-id
    order.  This is exactly the set {!cut_and_stitch} ties off; the
    guard subsystem monitors it (in hardware on the instrumented
    design, or in shadow during simulation). *)

val cut_and_stitch :
  Netlist.t ->
  possibly_toggled:bool array ->
  constants:Bespoke_logic.Bit.t array ->
  Netlist.t
(** The raw stitched netlist: cut gates replaced by their constants,
    no optimization yet. *)

val tailor :
  Netlist.t ->
  possibly_toggled:bool array ->
  constants:Bespoke_logic.Bit.t array ->
  Netlist.t * stats
(** Full flow: cut & stitch, re-synthesize, downsize drives. *)

val tailor_explained :
  Netlist.t ->
  possibly_toggled:bool array ->
  constants:Bespoke_logic.Bit.t array ->
  Netlist.t * stats * Bespoke_report.Provenance.t
(** {!tailor}, additionally returning per-gate cut/keep provenance
    over the original design: every removed gate carries a typed
    reason (never-toggled constant, dead fanout, const-folded,
    merged) and every kept gate its bespoke id and drive change. *)

val pp_stats : Format.formatter -> stats -> unit
