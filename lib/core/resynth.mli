(** Gate-level re-synthesis: the optimization pass run after cutting
    and stitching (paper, Section 3.2).

    Performs, to a fixed point: constant propagation, gate
    simplification against constant/duplicate inputs, buffer and
    double-inverter collapsing, structural hashing, elimination of
    DFFs stuck at their reset value, and removal of gates whose
    outputs cannot reach a state element or output port (floating
    outputs). *)

val rewrite :
  ?seq_const:bool -> Bespoke_netlist.Netlist.t -> Bespoke_netlist.Netlist.t
(** The rewrite step alone (no dead sweep), exposed for tests.
    [seq_const] (default true) enables sequential constant
    propagation (DFFs provably stuck at their reset value). *)

val pass :
  ?seq_const:bool -> Bespoke_netlist.Netlist.t -> Bespoke_netlist.Netlist.t
(** One rewrite + dead-sweep round. *)

val optimize :
  ?max_rounds:int -> ?seq_const:bool -> Bespoke_netlist.Netlist.t ->
  Bespoke_netlist.Netlist.t
(** Iterate {!pass} until the gate count stops improving. *)

val optimize_traced :
  ?max_rounds:int -> ?seq_const:bool -> Bespoke_netlist.Netlist.t ->
  Bespoke_netlist.Netlist.t * int array
(** Like {!optimize}, but also returns the composed old-id -> new-id
    map ([-1] for gates with no image in the result: swept dead or
    folded away) — the raw material of cut/keep provenance. *)
