module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist

let union_toggled = function
  | [] -> invalid_arg "Multi.union_toggled: empty"
  | first :: rest ->
    let acc = Array.copy first in
    List.iter
      (fun t ->
        if Array.length t <> Array.length acc then
          invalid_arg "Multi.union_toggled: size mismatch";
        Array.iteri (fun i b -> if b then acc.(i) <- true) t)
      rest;
    acc

let intersect_untoggled = union_toggled

let supported ~design_toggled ~app_toggled =
  let ok = ref true in
  Array.iteri
    (fun i b -> if b && not design_toggled.(i) then ok := false)
    app_toggled;
  !ok

let tailor_multi net ~reports =
  match reports with
  | [] -> invalid_arg "Multi.tailor_multi: no applications"
  | (_, constants) :: _ ->
    let toggled = union_toggled (List.map fst reports) in
    Cut.tailor net ~possibly_toggled:toggled ~constants

(* ------------------------------------------------------------------ *)
(* Fig 13 C(n,N) sweep: enumerate every nonempty application subset,
   union the member bitsets, and track the extreme (min/max) usable
   gate count per subset size.  The enumeration is embarrassingly
   parallel, so it is chunked across the Pool; chunks are merged in
   ascending subset order with strict comparisons, which reproduces
   the sequential scan's tie-break (smallest subset wins a tie)
   bit-for-bit at any job count. *)

let bitset_of (toggled : bool array) =
  let words = Array.make ((Array.length toggled + 62) / 63) 0 in
  Array.iteri
    (fun i b ->
      if b then words.(i / 63) <- words.(i / 63) lor (1 lsl (i mod 63)))
    toggled;
  words

let popcount words =
  Array.fold_left
    (fun acc w ->
      let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
      go w acc)
    0 words

let sweep ?jobs (sets : int array array) =
  let n = Array.length sets in
  if n = 0 then invalid_arg "Multi.sweep: no applications";
  if n > 24 then invalid_arg "Multi.sweep: 2^n subsets is too many";
  let words = Array.length sets.(0) in
  Array.iter
    (fun s ->
      if Array.length s <> words then invalid_arg "Multi.sweep: size mismatch")
    sets;
  let total = (1 lsl n) - 1 in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  (* more chunks than domains so stealing evens out the load *)
  let nchunks = min total (max 1 (jobs * 8)) in
  let bounds =
    List.init nchunks (fun c ->
        let lo = 1 + (total * c / nchunks) in
        let hi = total * (c + 1) / nchunks in
        (lo, hi))
  in
  let scan (lo, hi) =
    let best = Array.make (n + 1) (max_int, 0) in
    let worst = Array.make (n + 1) (min_int, 0) in
    let u = Array.make words 0 in
    for subset = lo to hi do
      Array.fill u 0 words 0;
      let k = ref 0 in
      for i = 0 to n - 1 do
        if subset land (1 lsl i) <> 0 then begin
          incr k;
          let s = sets.(i) in
          for w = 0 to words - 1 do
            u.(w) <- u.(w) lor s.(w)
          done
        end
      done;
      let count = popcount u in
      if count < fst best.(!k) then best.(!k) <- (count, subset);
      if count > fst worst.(!k) then worst.(!k) <- (count, subset)
    done;
    (best, worst)
  in
  let parts = Pool.map ~jobs scan bounds in
  let best = Array.make (n + 1) (max_int, 0) in
  let worst = Array.make (n + 1) (min_int, 0) in
  List.iter
    (fun (b, w) ->
      for k = 0 to n do
        if fst b.(k) < fst best.(k) then best.(k) <- b.(k);
        if fst w.(k) > fst worst.(k) then worst.(k) <- w.(k)
      done)
    parts;
  (best, worst)

let usable_gate_count net toggled =
  let n = ref 0 in
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.Gate.op with
      | Gate.Input | Gate.Const _ -> ()
      | _ -> if toggled.(id) then incr n)
    net.Netlist.gates;
  !n
