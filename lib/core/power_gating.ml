module Bit = Bespoke_logic.Bit
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Engine = Bespoke_sim.Engine
module Memory = Bespoke_sim.Memory
module System = Bespoke_coreapi.System
module Cells = Bespoke_cells.Cells
module Report = Bespoke_power.Report
module Benchmark = Bespoke_programs.Benchmark

type t = {
  module_idle_fraction : (string * float) list;
  power_saving_fraction : float;
}

let evaluate ?netlist ?(seed = 1) ~core (b : Benchmark.t) =
  let net =
    match netlist with Some n -> n | None -> Runner.shared_netlist core
  in
  let ng = Netlist.gate_count net in
  let module_of = Array.init ng (fun id -> Netlist.module_of net id) in
  let modules = Netlist.modules net in
  let midx = Hashtbl.create 16 in
  List.iteri (fun i m -> Hashtbl.replace midx m i) modules;
  let nmod = List.length modules in
  let idle = Array.make nmod 0 in
  let sys = System.create ~netlist:net ~core (Runner.image ~core b) in
  System.reset sys;
  let ram_writes, gpio = b.Benchmark.gen_inputs seed in
  List.iter (fun (a, v) -> System.load_ram_word sys a v) ram_writes;
  System.set_gpio_in_int sys gpio;
  System.set_irq sys Bit.Zero;
  let eng = System.engine sys in
  let prev = ref (Engine.snapshot_values eng) in
  let cycles = ref 0 in
  let active = Array.make nmod false in
  (* IRQ pulse schedule, aligned like Runner.run_gate *)
  let pulses = if b.Benchmark.uses_irq then b.Benchmark.irq_pulses seed else [] in
  let completed = ref 0 in
  let first = ref true in
  let after_irq_entry = ref false in
  while (not (System.halted sys)) && !cycles < 2_000_000 do
    (match (System.read_hook sys "insn_boundary").(0) with
    | Bit.One ->
      if !first then first := false
      else if !after_irq_entry then after_irq_entry := false
      else incr completed;
      (match System.fetching sys with
      | Bit.Zero -> after_irq_entry := true
      | Bit.One | Bit.X -> ());
      System.set_irq sys (Bit.of_bool (List.mem !completed pulses))
    | Bit.Zero | Bit.X -> ());
    System.step_cycle sys;
    incr cycles;
    let cur = Engine.snapshot_values eng in
    Array.fill active 0 nmod false;
    for id = 0 to ng - 1 do
      if not (Bit.equal cur.(id) !prev.(id)) then
        match net.Netlist.gates.(id).Gate.op with
        | Gate.Input | Gate.Const _ -> ()
        | _ -> active.(Hashtbl.find midx module_of.(id)) <- true
    done;
    Array.iteri (fun i a -> if not a then idle.(i) <- idle.(i) + 1) active;
    prev := cur
  done;
  if not (System.halted sys) then failwith "Power_gating: did not halt";
  let toggles = Engine.toggle_counts eng in
  let total_cycles = max 1 !cycles in
  (* per-module leakage + clock power (the components the oracle can
     gate off in idle cycles) *)
  let leak_clk = Array.make nmod 0.0 in
  for id = 0 to ng - 1 do
    let g = net.Netlist.gates.(id) in
    match g.Gate.op with
    | Gate.Input | Gate.Const _ -> ()
    | _ ->
      let cell = Cells.of_gate g.Gate.op ~drive:g.Gate.drive in
      let i = Hashtbl.find midx module_of.(id) in
      let clk =
        match g.Gate.op with
        | Gate.Dff _ ->
          2.0 *. Cells.dff_clk_pin_cap_ff *. 1e8 *. 1e-6 (* nW at 100 MHz *)
        | _ -> 0.0
      in
      leak_clk.(i) <- leak_clk.(i) +. cell.Cells.leakage_nw +. clk
  done;
  let report =
    Report.power ~freq_hz:1e8 ~toggles ~cycles:total_cycles net
  in
  let saved =
    List.fold_left
      (fun acc m ->
        let i = Hashtbl.find midx m in
        let idle_frac = float_of_int idle.(i) /. float_of_int total_cycles in
        acc +. (idle_frac *. leak_clk.(i)))
      0.0 modules
  in
  {
    module_idle_fraction =
      List.map
        (fun m ->
          let i = Hashtbl.find midx m in
          (m, float_of_int idle.(i) /. float_of_int total_cycles))
        modules;
    power_saving_fraction = saved /. Float.max 1e-9 report.Report.total_nw;
  }
