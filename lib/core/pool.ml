(* Persistent work-stealing domain pool for fanning independent tasks
   (benchmark analyses, profiling seeds, mutant reports, campaign jobs)
   across cores.

   Worker domains are spawned once, on first parallel [map], and reused
   for every later call — the old per-call fork-join paid a
   [Domain.spawn]/[join] round-trip on every map, which dominates for
   the short task lists campaigns produce.  Each domain owns a deque:
   the owner pushes and pops at the back (LIFO, cache-warm), idle
   domains steal from the front (FIFO, oldest work first).  A map
   submitted from inside a worker task pushes onto that worker's own
   deque, so nested submission composes without deadlock: the submitter
   keeps executing (its own or stolen) tasks until its batch drains.

   Parallelism is opt-in via the BESPOKE_JOBS environment variable (or
   [set_default_jobs], which overrides it) so tests and default runs
   stay single-domain and deterministic; with jobs > 1 the task results
   are still assembled in input order, so output is deterministic
   either way — only wall-clock changes.

   Callers are responsible for forcing any shared lazy values (e.g.
   [Runner.shared_netlist]) before mapping: stdlib [Lazy] is not
   domain-safe. *)

module Obs = Bespoke_obs.Obs

let m_tasks = Obs.Metrics.counter "pool.tasks"
let m_maps = Obs.Metrics.counter "pool.maps"
let m_steals = Obs.Metrics.counter "pool.steals"
let m_steals_failed = Obs.Metrics.counter "pool.steals_failed"
let m_domains = Obs.Metrics.counter "pool.domains_spawned"
let g_queue = Obs.Metrics.gauge "pool.queue_depth"

(* Tasks pushed onto some deque and not yet started; the sampler probe
   publishes it as the pool.queue_depth gauge. *)
let queued_tasks = Atomic.make 0

let () =
  Obs.Sampler.add_probe (fun () ->
      Obs.Metrics.set g_queue (float_of_int (Atomic.get queued_tasks)))

(* Per-slot "tasks run" counter, looked up lazily so the registry only
   grows names for slots that actually execute work.  Only consulted
   when collection is on — registration is an idempotent locked lookup,
   cheap enough for the traced path. *)
let slot_tasks_counter slot =
  Obs.Metrics.counter (Printf.sprintf "pool.slot%d.tasks" slot)

exception Task_errors of (int * exn) list

let () =
  Printexc.register_printer (function
    | Task_errors errs ->
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Printf.sprintf "Pool.Task_errors (%d failed task%s:"
           (List.length errs)
           (if List.length errs = 1 then "" else "s"));
      List.iter
        (fun (i, e) ->
          Buffer.add_string b
            (Printf.sprintf " [%d] %s" i (Printexc.to_string e)))
        errs;
      Buffer.add_char b ')';
      Some (Buffer.contents b)
    | _ -> None)

(* Warn (once, domain-safely) instead of silently ignoring — or worse,
   raising on — a malformed BESPOKE_JOBS value; the safe fallback is
   single-domain. *)
let warned_bad_jobs = Atomic.make false

let env_jobs () =
  match Sys.getenv_opt "BESPOKE_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ ->
      if not (Atomic.exchange warned_bad_jobs true) then
        Printf.eprintf
          "warning: BESPOKE_JOBS=%S is not a positive integer; running with 1 \
           job\n\
           %!"
          s;
      1)

(* 0 = no override, fall back to the environment. *)
let override_jobs = Atomic.make 0
let set_default_jobs n = Atomic.set override_jobs (max 1 n)

(* CPU-bound workloads gain nothing and lose plenty from running more
   domains than the machine has cores: the domains time-slice one
   core and every minor GC synchronizes all of them.  Requested job
   counts (BESPOKE_JOBS, --jobs) are therefore clamped to the
   hardware; measured here: a 45-job campaign at --jobs 4 on one core
   ran 1.3x slower than at 1 before the clamp.  [map ~jobs] stays
   literal — explicit callers (tests stressing the stealing paths)
   get exactly what they ask for. *)
let clamp_jobs n = max 1 (min n (Domain.recommended_domain_count ()))

let default_jobs () =
  let o = Atomic.get override_jobs in
  clamp_jobs (if o > 0 then o else env_jobs ())

(* ------------------------------------------------------------------ *)
(* Per-domain deques: a mutex-protected ring buffer of thunks.  The
   owner works the back, thieves take the front.  Contention is low —
   the lock is held only for a push/pop of one array slot. *)

module Deque = struct
  type t = {
    lock : Mutex.t;
    mutable buf : (unit -> unit) option array;
    mutable head : int; (* index of the first (oldest) element *)
    mutable len : int;
  }

  let create () =
    { lock = Mutex.create (); buf = Array.make 64 None; head = 0; len = 0 }

  let grow d =
    let cap = Array.length d.buf in
    let buf' = Array.make (2 * cap) None in
    for i = 0 to d.len - 1 do
      buf'.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- buf';
    d.head <- 0

  let push_back d f =
    Mutex.lock d.lock;
    let cap = Array.length d.buf in
    if d.len = cap then grow d;
    let cap = Array.length d.buf in
    d.buf.((d.head + d.len) mod cap) <- Some f;
    d.len <- d.len + 1;
    Mutex.unlock d.lock

  let pop_back d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        let cap = Array.length d.buf in
        let i = (d.head + d.len - 1) mod cap in
        let t = d.buf.(i) in
        d.buf.(i) <- None;
        d.len <- d.len - 1;
        t
      end
    in
    Mutex.unlock d.lock;
    r

  let steal_front d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        let t = d.buf.(d.head) in
        d.buf.(d.head) <- None;
        d.head <- (d.head + 1) mod Array.length d.buf;
        d.len <- d.len - 1;
        t
      end
    in
    Mutex.unlock d.lock;
    r
end

(* ------------------------------------------------------------------ *)
(* Pool state.  Slot 0 is the injector deque shared by every
   non-worker domain (normally just the main domain); slots 1..n are
   owned by worker domains.  Workers sleep on [work_cond]; [wake_gen]
   is a generation counter so a wakeup that races with a deque scan is
   never lost (capture the generation BEFORE scanning, sleep only while
   it is unchanged). *)

let max_workers = 62
let deques = Array.init (max_workers + 1) (fun _ -> Deque.create ())
let n_workers = Atomic.make 0
let pool_lock = Mutex.create ()
let work_cond = Condition.create ()
let wake_gen = ref 0
let shutdown = ref false
let worker_domains : unit Domain.t list ref = ref []
let my_slot : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let signal_work () =
  Mutex.lock pool_lock;
  incr wake_gen;
  Condition.broadcast work_cond;
  Mutex.unlock pool_lock

(* Own deque first (back, LIFO), then sweep every other deque front to
   back — including slot 0, so workers drain injected work. *)
let find_task slot =
  match Deque.pop_back deques.(slot) with
  | Some _ as t -> t
  | None ->
    let nw = Atomic.get n_workers in
    let rec scan k =
      if k > nw then begin
        (* a full sweep found nothing: the domain is about to go idle *)
        Obs.Metrics.incr m_steals_failed;
        None
      end
      else if k = slot then scan (k + 1)
      else
        match Deque.steal_front deques.(k) with
        | Some _ as t ->
          Obs.Metrics.incr m_steals;
          if Obs.enabled () then
            Obs.Span.instant "pool.steal"
              ~args:[ ("victim", string_of_int k) ];
          t
        | None -> scan (k + 1)
    in
    scan 0

(* Run one task under the telemetry wrappers: a per-slot busy span and
   tasks-run counter when collection is on, the bare thunk otherwise. *)
let exec_task slot task =
  if Obs.enabled () then begin
    Obs.Metrics.incr (slot_tasks_counter slot);
    Obs.Span.with_ ~name:"pool.busy"
      ~args:[ ("slot", string_of_int slot) ]
      task
  end
  else task ()

let worker_loop slot =
  Domain.DLS.set my_slot slot;
  Obs.Trace.set_thread_name (Printf.sprintf "worker-%d" slot);
  let rec loop () =
    Mutex.lock pool_lock;
    let g = !wake_gen in
    let stop = !shutdown in
    Mutex.unlock pool_lock;
    if not stop then begin
      (match find_task slot with
      | Some task -> (
        try exec_task slot task
        with _ -> () (* tasks report their own errors *))
      | None ->
        Obs.Span.with_ ~name:"pool.idle"
          ~args:[ ("slot", string_of_int slot) ]
        @@ fun () ->
        Mutex.lock pool_lock;
        while (not !shutdown) && !wake_gen = g do
          Condition.wait work_cond pool_lock
        done;
        Mutex.unlock pool_lock);
      loop ()
    end
  in
  loop ()

let domain_count () = Atomic.get n_workers

let ensure_workers want =
  let want = min want max_workers in
  if Atomic.get n_workers < want then begin
    Mutex.lock pool_lock;
    while Atomic.get n_workers < want do
      let slot = Atomic.get n_workers + 1 in
      let d = Domain.spawn (fun () -> worker_loop slot) in
      worker_domains := d :: !worker_domains;
      Obs.Metrics.incr m_domains;
      Atomic.set n_workers slot
    done;
    Mutex.unlock pool_lock
  end

(* Join the workers on exit so the runtime shuts down cleanly.  No map
   is in flight when the main domain reaches exit, so every worker is
   parked on [work_cond] and leaves as soon as it sees [shutdown]. *)
let () =
  at_exit (fun () ->
      if Atomic.get n_workers > 0 then begin
        Mutex.lock pool_lock;
        shutdown := true;
        Condition.broadcast work_cond;
        Mutex.unlock pool_lock;
        List.iter Domain.join !worker_domains
      end)

(* ------------------------------------------------------------------ *)

let map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  Obs.Span.with_ ~name:"pool.map"
    ~args:[ ("jobs", string_of_int jobs); ("tasks", string_of_int n) ]
  @@ fun () ->
  Obs.Metrics.incr m_maps;
  Obs.Metrics.add m_tasks n;
  let results : 'b option array = Array.make n None in
  let err_lock = Mutex.create () in
  let errors : (int * exn) list ref = ref [] in
  let run_task i =
    match f items.(i) with
    | v -> results.(i) <- Some v
    | exception e ->
      Mutex.lock err_lock;
      errors := (i, e) :: !errors;
      Mutex.unlock err_lock
  in
  if jobs <= 1 || n <= 1 then begin
    let slot = Domain.DLS.get my_slot in
    for i = 0 to n - 1 do
      exec_task slot (fun () -> run_task i)
    done
  end
  else begin
    ensure_workers (jobs - 1);
    let remaining = Atomic.make n in
    let slot = Domain.DLS.get my_slot in
    let task i () =
      Atomic.decr queued_tasks;
      run_task i;
      if Atomic.fetch_and_add remaining (-1) = 1 then signal_work ()
    in
    ignore (Atomic.fetch_and_add queued_tasks n);
    (* Push in reverse so the owner (popping the back) executes tasks
       in input order while thieves (stealing the front) start from the
       tail — disjoint ends, minimal contention. *)
    for i = n - 1 downto 0 do
      Deque.push_back deques.(slot) (task i)
    done;
    signal_work ();
    (* Drive: the submitter is a full participant — it executes its own
       (or stolen, possibly foreign/nested) tasks until this batch
       drains, then returns.  Sleeping only when the generation counter
       is unchanged since before the scan closes the lost-wakeup
       race. *)
    let rec drive () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock pool_lock;
        let g = !wake_gen in
        Mutex.unlock pool_lock;
        (match find_task slot with
        | Some t -> ( try exec_task slot t with _ -> ())
        | None ->
          Mutex.lock pool_lock;
          while Atomic.get remaining > 0 && !wake_gen = g do
            Condition.wait work_cond pool_lock
          done;
          Mutex.unlock pool_lock);
        drive ()
      end
    in
    drive ()
  end;
  (match !errors with
  | [] -> ()
  | errs ->
    (* Sort by index only: polymorphic compare on the exn payload can
       raise on functional values. *)
    let errs = List.sort (fun (a, _) (b, _) -> compare (a : int) b) errs in
    raise (Task_errors errs));
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) results)

let iter ?jobs f xs =
  ignore
    (map ?jobs
       (fun x ->
         f x;
         ())
       xs)
