(* Small work-stealing-ish domain pool for fanning independent tasks
   (benchmark analyses, profiling seeds, mutant reports) across cores.

   Parallelism is opt-in via the BESPOKE_JOBS environment variable so
   tests and default runs stay single-domain and deterministic; with
   jobs > 1 the task results are still assembled in input order, so
   output is deterministic either way — only wall-clock changes.

   Callers are responsible for forcing any shared lazy values (e.g.
   [Runner.shared_netlist]) before mapping: stdlib [Lazy] is not
   domain-safe. *)

module Obs = Bespoke_obs.Obs

let m_tasks = Obs.Metrics.counter "pool.tasks"
let m_maps = Obs.Metrics.counter "pool.maps"

(* Warn (once) instead of silently ignoring — or worse, raising on — a
   malformed BESPOKE_JOBS value; the safe fallback is single-domain. *)
let warned_bad_jobs = ref false

let default_jobs () =
  match Sys.getenv_opt "BESPOKE_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ ->
      if not !warned_bad_jobs then begin
        warned_bad_jobs := true;
        Printf.eprintf
          "warning: BESPOKE_JOBS=%S is not a positive integer; running with 1 \
           job\n\
           %!"
          s
      end;
      1)

let map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  Obs.Span.with_ ~name:"pool.map"
    ~args:[ ("jobs", string_of_int jobs); ("tasks", string_of_int n) ]
  @@ fun () ->
  Obs.Metrics.incr m_maps;
  Obs.Metrics.add m_tasks n;
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let results : 'b option array = Array.make n None in
    let errors : exn option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f items.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          go ()
        end
      in
      go ()
    in
    let spawned =
      Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x; ()) xs)
