(** Input-based profiling (the paper's Fig 2 baseline, and the source
    of representative switching activity for power estimates).

    Profiling cannot prove gates unusable — Fig 2's point is precisely
    that the profiled untoggled set varies with the inputs — but it
    gives per-input toggled sets and aggregate toggle counts. *)

module Benchmark := Bespoke_programs.Benchmark
module Netlist := Bespoke_netlist.Netlist

type t = {
  per_seed_toggled : (int * bool array) list;  (** seed -> toggled set *)
  union_toggled : bool array;  (** toggled by at least one input *)
  intersection_untoggled : bool array;
      (** untoggled for every profiled input (Fig 2's bar) *)
  total_toggles : int array;  (** summed toggle counts, for power *)
  total_cycles : int;
}

val profile :
  ?netlist:Netlist.t -> ?seeds:int list -> ?engine:Runner.engine ->
  core:Bespoke_coreapi.Coredef.t -> Benchmark.t -> t
(** Default seeds: 1..8.  [engine] (default [Packed]) selects the
    simulation engine: [Packed] runs all seeds in one bit-parallel
    {!Bespoke_sim.Engine64} simulation, the scalar engines run one
    simulation per seed, fanned across the domain pool when
    [BESPOKE_JOBS] > 1.  All engines are bit-identical. *)

val untoggled_fraction_range :
  Netlist.t -> t -> float * float * float
(** [(min, max, intersection)] fraction of real gates untoggled across
    the profiled inputs — the interval and bar of Fig 2. *)
