module Bit = Bespoke_logic.Bit
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Report = Bespoke_power.Report
module Sta = Bespoke_power.Sta
module Obs = Bespoke_obs.Obs
module Provenance = Bespoke_report.Provenance

let m_gates_removed = Obs.Metrics.counter "cut.gates_removed"

type stats = {
  original_gates : int;
  cut_gates : int;
  bespoke_gates : int;
  original_area : float;
  bespoke_area : float;
}

let cut_and_stitch net ~possibly_toggled ~constants =
  if
    Array.length possibly_toggled <> Netlist.gate_count net
    || Array.length constants <> Netlist.gate_count net
  then invalid_arg "Cut.cut_and_stitch: report size mismatch";
  Netlist.map_gates net (fun id (g : Gate.t) ->
      match g.Gate.op with
      | Gate.Input | Gate.Const _ -> g
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Dff _ ->
        if possibly_toggled.(id) then g
        else
          {
            g with
            Gate.op = Gate.Const constants.(id);
            fanin = [||];
          })

type assumption = { a_gate : int; a_const : Bit.t }

let assumptions net ~possibly_toggled ~constants =
  if
    Array.length possibly_toggled <> Netlist.gate_count net
    || Array.length constants <> Netlist.gate_count net
  then invalid_arg "Cut.assumptions: report size mismatch";
  let acc = ref [] in
  for id = Netlist.gate_count net - 1 downto 0 do
    let g = net.Netlist.gates.(id) in
    match g.Gate.op with
    | Gate.Input | Gate.Const _ -> ()
    | _ ->
      if not possibly_toggled.(id) then
        (* An X "constant" cannot happen here — X counts as a possible
           toggle — but guard against a hand-built report anyway. *)
        match constants.(id) with
        | Bit.X -> ()
        | c -> acc := { a_gate = id; a_const = c } :: !acc
  done;
  !acc

let count_cut net ~possibly_toggled =
  let n = ref 0 in
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.Gate.op with
      | Gate.Input | Gate.Const _ -> ()
      | _ -> if not possibly_toggled.(id) then incr n)
    net.Netlist.gates;
  !n

let tailor_explained net ~possibly_toggled ~constants =
  Obs.Span.with_ ~name:"cut.tailor" (fun () ->
      let stitched =
        Obs.Span.with_ ~name:"cut.cut_and_stitch" (fun () ->
            cut_and_stitch net ~possibly_toggled ~constants)
      in
      let optimized, map = Resynth.optimize_traced stitched in
      (* [Sta.downsize] is pointwise (ids preserved), so [map] reaches
         all the way to the bespoke design. *)
      let bespoke = Sta.downsize optimized in
      let prov =
        Provenance.build ~original:net ~bespoke ~possibly_toggled ~constants
          ~map
      in
      let stats =
        {
          original_gates = Netlist.num_gates net;
          cut_gates = count_cut net ~possibly_toggled;
          bespoke_gates = Netlist.num_gates bespoke;
          original_area = Report.area_um2 net;
          bespoke_area = Report.area_um2 bespoke;
        }
      in
      Obs.Metrics.add m_gates_removed stats.cut_gates;
      (bespoke, stats, prov))

let tailor net ~possibly_toggled ~constants =
  let bespoke, stats, _ = tailor_explained net ~possibly_toggled ~constants in
  (bespoke, stats)

let pp_stats fmt s =
  Format.fprintf fmt
    "%d gates -> %d cut -> %d remain; area %.0f -> %.0f um2 (%.1f%% saved)"
    s.original_gates s.cut_gates s.bespoke_gates s.original_area s.bespoke_area
    (100.0 *. (1.0 -. (s.bespoke_area /. s.original_area)))
