module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Netlist = Bespoke_netlist.Netlist
module Serial = Bespoke_netlist.Serial
module Engine = Bespoke_sim.Engine
module Engine64 = Bespoke_sim.Engine64
module Coredef = Bespoke_coreapi.Coredef
module System = Bespoke_coreapi.System
module System64 = Bespoke_coreapi.System64
module Lockstep = Bespoke_coreapi.Lockstep
module Activity = Bespoke_analysis.Activity
module Benchmark = Bespoke_programs.Benchmark
module Obs = Bespoke_obs.Obs

let m_gate_runs = Obs.Metrics.counter "runner.gate_runs"

(* Uniform engine selector shared by the library entry points and the
   CLI.  [Packed] is seed-parallel (one Engine64 lane per seed); the
   other three map onto {!Engine.mode} for a single scalar run. *)
type engine = Full | Event | Packed | Compiled

let all_engines = [ Full; Event; Packed; Compiled ]

let engine_to_string = function
  | Full -> "full"
  | Event -> "event"
  | Packed -> "packed"
  | Compiled -> "compiled"

let engine_of_string = function
  | "full" -> Some Full
  | "event" -> Some Event
  | "packed" -> Some Packed
  | "compiled" -> Some Compiled
  | _ -> None

let mode_of_engine = function
  | Full -> Engine.Full
  | Event -> Engine.Event
  | Compiled -> Engine.Compiled
  | Packed ->
    invalid_arg "Runner.mode_of_engine: packed is seed-parallel, not a mode"

type iss_outcome = {
  results : (int * int) list;
  cycles : int;
  instructions : int;
  gpio_out : int;
}

type gate_outcome = {
  g_results : (int * int option) list;
  g_cycles : int;
  g_gpio_out : int option;
  toggles : int array;
  sim_cycles : int;
}

exception Mismatch of string

(* ------------------------------------------------------------------ *)
(* Per-core memoization.  One stock netlist (and its Serial hash) per
   core descriptor, keyed by core name; one assembled image per
   (core, source digest), so re-assembly of mutant sources never
   collides with the pristine benchmark.  As with the old lazy cell:
   force these in the parent before fanning out with [Pool] — the
   tables are not domain-safe. *)

let netlist_table : (string, Netlist.t * string) Hashtbl.t = Hashtbl.create 4

let shared_netlist_entry (core : Coredef.t) =
  match Hashtbl.find_opt netlist_table core.Coredef.name with
  | Some e -> e
  | None ->
    let net = core.Coredef.build () in
    let e = (net, Serial.hash net) in
    Hashtbl.replace netlist_table core.Coredef.name e;
    e

let shared_netlist core = fst (shared_netlist_entry core)
let shared_netlist_hash core = snd (shared_netlist_entry core)

let netlist_hash ~core net =
  match Hashtbl.find_opt netlist_table core.Coredef.name with
  | Some (n, h) when n == net -> h
  | _ -> Serial.hash net

let image_table : (string, Coredef.image) Hashtbl.t = Hashtbl.create 64

let image ~core (b : Benchmark.t) =
  let key = core.Coredef.name ^ "/" ^ Digest.to_hex (Digest.string b.Benchmark.source) in
  match Hashtbl.find_opt image_table key with
  | Some img -> img
  | None ->
    let img = core.Coredef.assemble b.Benchmark.source in
    Hashtbl.replace image_table key img;
    img

(* ------------------------------------------------------------------ *)
(* Content-addressed keys for the flow cache: a binary-image hash, a
   netlist hash and a config fingerprint covering every field that can
   change the analysis result.  The core fingerprint is a separate key
   component wherever these are combined. *)

let image_hash = Coredef.image_hash

let config_fingerprint (c : Activity.config) =
  (* [verbose] only changes logging and [probe] bypasses the cache
     entirely, so neither is part of the fingerprint. *)
  let ranges =
    String.concat ","
      (List.map
         (fun (a, b) -> Printf.sprintf "%x-%x" a b)
         c.Activity.ram_x_ranges)
  in
  Printf.sprintf "gpio_x=%b;irq_x=%b;ram=%s;cycles=%d;paths=%d;pc=%d;cbf=%s;key=%s"
    c.Activity.gpio_x c.Activity.irq_x ranges c.Activity.max_total_cycles
    c.Activity.max_paths c.Activity.max_pc_candidates
    (match c.Activity.computed_branch_fallback with
    | `Escape -> "escape"
    | `Enumerate -> "enumerate")
    (match c.Activity.key_refinement with
    | `Pc_only -> "pc"
    | `Pc_gie -> "pc_gie"
    | `Full -> "full")

let run_iss ~core (b : Benchmark.t) ~seed =
  let img = image ~core b in
  let t = img.Coredef.mk_iss () in
  t.Coredef.reset ();
  let ram_writes, gpio = b.Benchmark.gen_inputs seed in
  List.iter (fun (a, v) -> t.Coredef.write_ram_word a v) ram_writes;
  t.Coredef.set_gpio_in gpio;
  let pulses = if b.Benchmark.uses_irq then b.Benchmark.irq_pulses seed else [] in
  let limit = 2_000_000 in
  let n = ref 0 in
  while (not (t.Coredef.halted ())) && !n < limit do
    t.Coredef.set_irq_line (List.mem (t.Coredef.retired ()) pulses);
    t.Coredef.step ();
    incr n
  done;
  if not (t.Coredef.halted ()) then
    failwith (Printf.sprintf "Runner.run_iss %s: did not halt" b.Benchmark.name);
  {
    results =
      List.map (fun a -> (a, t.Coredef.read_ram_word a)) b.Benchmark.result_addrs;
    cycles = t.Coredef.cycles ();
    instructions = t.Coredef.retired ();
    gpio_out = t.Coredef.gpio_out ();
  }

let run_gate_scalar ~mode ?attach ?netlist ?(max_cycles = 3_000_000) ~core
    (b : Benchmark.t) ~seed =
  Obs.Span.with_ ~name:"runner.run_gate"
    ~args:[ ("benchmark", b.Benchmark.name); ("seed", string_of_int seed) ]
  @@ fun () ->
  Obs.Metrics.incr m_gate_runs;
  let img = image ~core b in
  let net = match netlist with Some n -> n | None -> shared_netlist core in
  let sys = System.create ~mode ~netlist:net ~core img in
  (match attach with None -> () | Some f -> f (System.engine sys));
  System.reset sys;
  let ram_writes, gpio = b.Benchmark.gen_inputs seed in
  List.iter (fun (a, v) -> System.load_ram_word sys a v) ram_writes;
  System.set_gpio_in_int sys gpio;
  System.set_irq sys Bit.Zero;
  let pulses = if b.Benchmark.uses_irq then b.Benchmark.irq_pulses seed else [] in
  (* Schedule IRQ pulses by retired-instruction count, exactly like
     the ISS: the count advances at every boundary that follows a
     completed instruction — not at the first fetch, and not at the
     boundary after an IRQ-entry sequence (which retires nothing). *)
  let completed = ref 0 in
  let first = ref true in
  let after_irq_entry = ref false in
  let deadline = max_cycles in
  while (not (System.halted sys)) && System.cycles sys < deadline do
    (match Bit.of_int_exn (System.insn_boundary_code sys) with
    | Bit.One ->
      if !first then first := false
      else if !after_irq_entry then after_irq_entry := false
      else incr completed;
      (match System.fetching sys with
      | Bit.Zero -> after_irq_entry := true  (* pre-empted: IRQ entry next *)
      | Bit.One | Bit.X -> ());
      System.set_irq sys (Bit.of_bool (List.mem !completed pulses))
    | Bit.Zero | Bit.X -> ());
    System.step_cycle sys
  done;
  if not (System.halted sys) then
    failwith (Printf.sprintf "Runner.run_gate %s: did not halt" b.Benchmark.name);
  {
    g_results =
      List.map
        (fun a -> (a, Bvec.to_int (System.read_ram_word sys a)))
        b.Benchmark.result_addrs;
    g_cycles = System.cycles sys;
    g_gpio_out = Bvec.to_int (System.gpio_out sys);
    toggles = Engine.toggle_counts (System.engine sys);
    sim_cycles = System.cycles sys;
  }

(* Packed counterpart of [run_gate]: one lane per seed, all lanes
   advancing through the same global cycle loop.  The per-lane IRQ
   bookkeeping, halt detection and deadline mirror [run_gate] exactly,
   and lanes leave the active set when (and only when) the scalar loop
   would have exited, so every lane's toggle counts are bit-identical
   to its scalar run. *)
let run_packed_chunk ?attach64 ~netlist ~max_cycles ~core (b : Benchmark.t)
    (seeds : int array) =
  Obs.Span.with_ ~name:"runner.run_gate_packed"
    ~args:
      [
        ("benchmark", b.Benchmark.name);
        ("lanes", string_of_int (Array.length seeds));
      ]
  @@ fun () ->
  let lanes = Array.length seeds in
  let img = image ~core b in
  let sys = System64.create ~lanes ~netlist ~core img in
  (match attach64 with None -> () | Some f -> f (System64.engine sys));
  System64.reset sys;
  Array.iteri
    (fun lane seed ->
      let ram_writes, gpio = b.Benchmark.gen_inputs seed in
      List.iter (fun (a, v) -> System64.load_ram_word sys lane a v) ram_writes;
      System64.set_gpio_in_lane_int sys lane gpio)
    seeds;
  System64.set_irq_lanes sys (Array.make lanes Bit.Zero);
  let pulses =
    Array.map
      (fun seed ->
        if b.Benchmark.uses_irq then b.Benchmark.irq_pulses seed else [])
      seeds
  in
  let completed = Array.make lanes 0 in
  let first = Array.make lanes true in
  let after_irq_entry = Array.make lanes false in
  let irq_next = Array.make lanes Bit.Zero in
  let halt_cycle = Array.make lanes (-1) in
  let gpio_at_halt = Array.make lanes None in
  let active = ref ((1 lsl lanes) - 1) in
  let capture_halts () =
    for lane = 0 to lanes - 1 do
      if !active land (1 lsl lane) <> 0 && System64.halted_lane sys lane then begin
        active := !active land lnot (1 lsl lane);
        halt_cycle.(lane) <- System64.cycles sys;
        (* the lane's netlist keeps evaluating while other lanes run,
           so capture volatile outputs at the scalar exit point *)
        gpio_at_halt.(lane) <-
          Some (Bvec.to_int (System64.gpio_out_lane sys lane))
      end
    done
  in
  capture_halts ();
  while !active <> 0 && System64.cycles sys < max_cycles do
    for lane = 0 to lanes - 1 do
      if !active land (1 lsl lane) <> 0 then begin
        (match (System64.read_hook_lane sys "insn_boundary" lane).(0) with
        | Bit.One ->
          if first.(lane) then first.(lane) <- false
          else if after_irq_entry.(lane) then after_irq_entry.(lane) <- false
          else completed.(lane) <- completed.(lane) + 1;
          (match (System64.read_hook_lane sys "fetching" lane).(0) with
          | Bit.Zero -> after_irq_entry.(lane) <- true
          | Bit.One | Bit.X -> ());
          irq_next.(lane) <-
            Bit.of_bool (List.mem completed.(lane) pulses.(lane))
        | Bit.Zero | Bit.X -> ())
      end
    done;
    System64.set_irq_lanes sys irq_next;
    System64.step_cycle sys ~active:!active;
    capture_halts ()
  done;
  if !active <> 0 then
    failwith
      (Printf.sprintf "Runner.run_gate_packed %s: did not halt" b.Benchmark.name);
  let eng = System64.engine sys in
  Array.to_list
    (Array.mapi
       (fun lane seed ->
         ( seed,
           {
             g_results =
               List.map
                 (fun a ->
                   (a, Bvec.to_int (System64.read_ram_word sys lane a)))
                 b.Benchmark.result_addrs;
             g_cycles = halt_cycle.(lane);
             g_gpio_out = Option.get gpio_at_halt.(lane);
             toggles = Engine64.toggle_counts_lane eng lane;
             sim_cycles = halt_cycle.(lane);
           } ))
       seeds)

let run_gate_packed ?attach64 ?netlist ?(max_cycles = 3_000_000) ~core
    (b : Benchmark.t) ~seeds =
  let net = match netlist with Some n -> n | None -> shared_netlist core in
  let rec chunk acc = function
    | [] -> List.concat (List.rev acc)
    | rest ->
      let n = min (List.length rest) Engine64.max_lanes in
      let head = Array.of_list (List.filteri (fun i _ -> i < n) rest) in
      let tail = List.filteri (fun i _ -> i >= n) rest in
      chunk
        (run_packed_chunk ?attach64 ~netlist:net ~max_cycles ~core b head
         :: acc)
        tail
  in
  chunk [] seeds

(* The selector entry point.  [Packed] runs a one-lane Engine64
   simulation, so every engine answers the same single-seed question
   with bit-identical results. *)
let run_gate ?(engine = Compiled) ?attach ?attach64 ?netlist ?max_cycles ~core
    (b : Benchmark.t) ~seed =
  match engine with
  | Packed -> (
    match
      run_gate_packed ?attach64 ?netlist ?max_cycles ~core b ~seeds:[ seed ]
    with
    | [ (_, o) ] -> o
    | _ -> assert false)
  | e ->
    run_gate_scalar ~mode:(mode_of_engine e) ?attach ?netlist ?max_cycles ~core
      b ~seed

let co_simulate ?(engine = Compiled) ?netlist ?x_dont_care ~core
    (b : Benchmark.t) ~seed =
  Obs.Span.with_ ~name:"runner.co_simulate"
    ~args:[ ("benchmark", b.Benchmark.name); ("seed", string_of_int seed) ]
  @@ fun () ->
  let img = image ~core b in
  let ram_writes, gpio = b.Benchmark.gen_inputs seed in
  let irq_pulse_at =
    if b.Benchmark.uses_irq then b.Benchmark.irq_pulses seed else []
  in
  let netlist = match netlist with Some n -> n | None -> shared_netlist core in
  Lockstep.run_result ~mode:(mode_of_engine engine) ~netlist ~gpio_in:gpio
    ~ram_writes ~irq_pulse_at ?x_dont_care ~core img

let check_equivalence ?engine ?attach ?attach64 ?netlist ~core (b : Benchmark.t)
    ~seed =
  let iss = run_iss ~core b ~seed in
  let gate = run_gate ?engine ?attach ?attach64 ?netlist ~core b ~seed in
  List.iter2
    (fun (a, expect) (a', got) ->
      assert (a = a');
      match got with
      | Some v when v = expect -> ()
      | Some v ->
        raise
          (Mismatch
             (Printf.sprintf "%s seed %d: result[%04x] ISS %04x gate %04x"
                b.Benchmark.name seed a expect v))
      | None ->
        raise
          (Mismatch
             (Printf.sprintf "%s seed %d: result[%04x] unknown at gate level"
                b.Benchmark.name seed a)))
    iss.results gate.g_results;
  (match gate.g_gpio_out with
  | Some v when v = iss.gpio_out -> ()
  | _ ->
    raise
      (Mismatch (Printf.sprintf "%s seed %d: gpio mismatch" b.Benchmark.name seed)));
  (* gate-level includes the reset cycle(s) *)
  if gate.g_cycles <> iss.cycles + core.Coredef.reset_extra_cycles then
    raise
      (Mismatch
         (Printf.sprintf "%s seed %d: cycles ISS %d+%d vs gate %d"
            b.Benchmark.name seed iss.cycles core.Coredef.reset_extra_cycles
            gate.g_cycles));
  iss

let resolve_analysis_config ?config (b : Benchmark.t) =
  match config with
  | Some c -> { c with Activity.ram_x_ranges = b.Benchmark.input_ranges }
  | None ->
    {
      Activity.default_config with
      Activity.ram_x_ranges = b.Benchmark.input_ranges;
      irq_x = b.Benchmark.uses_irq;
    }

let analyze ?config ?(engine = Event) ?netlist ~core (b : Benchmark.t) =
  Obs.Span.with_ ~name:"runner.analyze"
    ~args:[ ("benchmark", b.Benchmark.name) ]
  @@ fun () ->
  (match engine with
  | Packed ->
    invalid_arg
      "Runner.analyze: packed is seed-parallel; use full, event or compiled"
  | _ -> ());
  let net = match netlist with Some n -> n | None -> shared_netlist core in
  let sys =
    System.create ~mode:(mode_of_engine engine) ~netlist:net ~core
      (image ~core b)
  in
  let config = resolve_analysis_config ?config b in
  (Activity.analyze ~config sys, net)

let analysis_cache : (Activity.report * Netlist.t) Flowcache.t =
  Flowcache.create ~name:"analysis" ()

let analyze_cached ?config ?engine ?netlist ~core (b : Benchmark.t) =
  let rc = resolve_analysis_config ?config b in
  if rc.Activity.probe <> None || rc.Activity.verbose then
    (* a probe observes every simulated cycle and verbose logs as it
       explores — a cache hit would silently skip both *)
    (analyze ~config:rc ?engine ?netlist ~core b, false)
  else begin
    let net = match netlist with Some n -> n | None -> shared_netlist core in
    let key =
      Flowcache.digest
        [
          "analysis";
          Coredef.fingerprint core;
          image_hash (image ~core b);
          netlist_hash ~core net;
          config_fingerprint rc;
        ]
    in
    (* the engine is not part of the key: all engines are bit-identical,
       so the report is engine-independent *)
    Flowcache.find_or_compute_report analysis_cache ~key (fun () ->
        analyze ~config:rc ?engine ~netlist:net ~core b)
  end
