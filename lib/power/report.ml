module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Cells = Bespoke_cells.Cells

type t = {
  num_gates : int;
  num_dffs : int;
  area_um2 : float;
  leakage_nw : float;
  dynamic_nw : float;
  clock_nw : float;
  total_nw : float;
  vdd : float;
}

let cell_of net id =
  let g = net.Netlist.gates.(id) in
  Cells.of_gate g.Gate.op ~drive:g.Gate.drive

let area_um2 net =
  let sum = ref 0.0 in
  for id = 0 to Netlist.gate_count net - 1 do
    sum := !sum +. (cell_of net id).Cells.area_um2
  done;
  !sum *. Cells.area_routing_overhead

let gate_area_um2 net id =
  (cell_of net id).Cells.area_um2 *. Cells.area_routing_overhead

let gate_leakage_nw ?(vdd = Cells.vdd_nominal) net id =
  (cell_of net id).Cells.leakage_nw *. Cells.leakage_scale ~vdd

let leakage_nw ?vdd net =
  let sum = ref 0.0 in
  for id = 0 to Netlist.gate_count net - 1 do
    sum := !sum +. gate_leakage_nw ?vdd net id
  done;
  !sum

let power ?(vdd = Cells.vdd_nominal) ~freq_hz ~toggles ~cycles net =
  let ng = Netlist.gate_count net in
  if Array.length toggles <> ng then
    invalid_arg "Report.power: toggle array size mismatch";
  let cycles = max cycles 1 in
  let fanout = Netlist.fanout net in
  let leak = ref 0.0 in
  let dyn_fj_per_cycle = ref 0.0 in
  let clk_fj_per_cycle = ref 0.0 in
  for id = 0 to ng - 1 do
    let cell = cell_of net id in
    leak := !leak +. cell.Cells.leakage_nw;
    let g = net.Netlist.gates.(id) in
    (match g.Gate.op with
    | Gate.Input | Gate.Const _ -> ()
    | _ ->
      let readers = fanout.(id) in
      let load =
        Cells.wire_cap_ff ~fanout:(Array.length readers)
        +. Array.fold_left
             (fun acc r -> acc +. (cell_of net r).Cells.input_cap_ff)
             0.0 readers
      in
      let sw_cap = load +. cell.Cells.internal_sw_ff in
      let rate = float_of_int toggles.(id) /. float_of_int cycles in
      dyn_fj_per_cycle := !dyn_fj_per_cycle +. (rate *. sw_cap));
    match g.Gate.op with
    | Gate.Dff _ ->
      (* two clock edges per cycle on every flop's clk pin *)
      clk_fj_per_cycle := !clk_fj_per_cycle +. (2.0 *. Cells.dff_clk_pin_cap_ff)
    | _ -> ()
  done;
  let v2 = Cells.dynamic_scale ~vdd in
  (* fF * V^2 * Hz = 1e-15 J * Hz = 1e-15 W; report in nW (1e-9) *)
  let to_nw fj_per_cycle = fj_per_cycle *. v2 *. freq_hz *. 1e-6 in
  let dynamic_nw = to_nw !dyn_fj_per_cycle in
  let clock_nw = to_nw !clk_fj_per_cycle in
  let leakage_nw = !leak *. Cells.leakage_scale ~vdd in
  {
    num_gates = Netlist.num_gates net;
    num_dffs = Netlist.num_dffs net;
    area_um2 = area_um2 net;
    leakage_nw;
    dynamic_nw;
    clock_nw;
    total_nw = leakage_nw +. dynamic_nw +. clock_nw;
    vdd;
  }

let per_module_area net =
  let tbl = Hashtbl.create 16 in
  for id = 0 to Netlist.gate_count net - 1 do
    let m = Netlist.module_of net id in
    let a = (cell_of net id).Cells.area_um2 in
    Hashtbl.replace tbl m (a +. Option.value ~default:0.0 (Hashtbl.find_opt tbl m))
  done;
  Hashtbl.fold (fun k v acc -> (k, v *. Cells.area_routing_overhead) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  Format.fprintf fmt
    "%d gates (%d DFFs), %.0f um2, %.1f uW total (%.1f leak / %.1f dyn / %.1f clk) @ %.2f V"
    t.num_gates t.num_dffs t.area_um2 (t.total_nw /. 1000.0)
    (t.leakage_nw /. 1000.0) (t.dynamic_nw /. 1000.0) (t.clock_nw /. 1000.0)
    t.vdd
