(** Area and power reporting (the PrimeTime stand-in).

    Dynamic power comes from per-gate toggle counts recorded by a
    concrete simulation with representative inputs; leakage and area
    from the cell library.  All figures are at the given supply. *)

type t = {
  num_gates : int;
  num_dffs : int;
  area_um2 : float;
  leakage_nw : float;
  dynamic_nw : float;
  clock_nw : float;  (** clock-tree load of the DFFs *)
  total_nw : float;
  vdd : float;
}

val area_um2 : Bespoke_netlist.Netlist.t -> float

val gate_area_um2 : Bespoke_netlist.Netlist.t -> int -> float
(** One gate's cell area (routing overhead included), so per-gate
    attributions sum exactly to {!area_um2}. *)

val gate_leakage_nw :
  ?vdd:float -> Bespoke_netlist.Netlist.t -> int -> float
(** One gate's static leakage at the given supply (default nominal). *)

val leakage_nw : ?vdd:float -> Bespoke_netlist.Netlist.t -> float
(** Whole-design static leakage, independent of any activity trace
    (the savings-report numerator; {!power} adds the dynamic terms). *)

val power :
  ?vdd:float ->
  freq_hz:float ->
  toggles:int array ->
  cycles:int ->
  Bespoke_netlist.Netlist.t ->
  t

val per_module_area : Bespoke_netlist.Netlist.t -> (string * float) list
(** Sorted by module name. *)

val pp : Format.formatter -> t -> unit
