module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Cells = Bespoke_cells.Cells
module Obs = Bespoke_obs.Obs

let m_analyses = Obs.Metrics.counter "sta.analyses"
let g_critical_path = Obs.Metrics.gauge "sta.critical_path_ps"

type t = {
  arrival_ps : float array;
  critical_path_ps : float;
  critical_gate : int;
}

let load_ff net fanout id =
  let readers = fanout.(id) in
  let pin_caps =
    Array.fold_left
      (fun acc r ->
        let g = net.Netlist.gates.(r) in
        acc +. (Cells.of_gate g.Gate.op ~drive:g.Gate.drive).Cells.input_cap_ff)
      0.0 readers
  in
  pin_caps +. Cells.wire_cap_ff ~fanout:(Array.length readers)

let gate_delay net fanout id =
  let g = net.Netlist.gates.(id) in
  let cell = Cells.of_gate g.Gate.op ~drive:g.Gate.drive in
  cell.Cells.intrinsic_ps
  +. (cell.Cells.drive_res_ps_per_ff *. load_ff net fanout id)

let analyze net =
  Obs.Span.with_ ~name:"sta.analyze" @@ fun () ->
  Obs.Metrics.incr m_analyses;
  let ng = Netlist.gate_count net in
  let fanout = Netlist.fanout net in
  let arrival = Array.make ng 0.0 in
  (* sources: inputs/consts at 0, DFFs launch after clk->q *)
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.Gate.op with
      | Gate.Dff _ -> arrival.(id) <- gate_delay net fanout id
      | Gate.Input | Gate.Const _ -> arrival.(id) <- 0.0
      | _ -> ())
    net.Netlist.gates;
  let order = Netlist.levelize net in
  Array.iter
    (fun id ->
      let g = net.Netlist.gates.(id) in
      let worst = ref 0.0 in
      Array.iter
        (fun f -> if arrival.(f) > !worst then worst := arrival.(f))
        g.Gate.fanin;
      arrival.(id) <- !worst +. gate_delay net fanout id)
    order;
  (* endpoints: DFF D pins (+ setup) and primary outputs *)
  let crit = ref 0.0 in
  let crit_gate = ref 0 in
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.Gate.op with
      | Gate.Dff _ ->
        let t = arrival.(g.Gate.fanin.(0)) +. Cells.dff_setup_ps in
        if t > !crit then begin
          crit := t;
          crit_gate := id
        end
      | _ -> ())
    net.Netlist.gates;
  List.iter
    (fun (_, ids) ->
      Array.iter
        (fun id ->
          if arrival.(id) > !crit then begin
            crit := arrival.(id);
            crit_gate := id
          end)
        ids)
    net.Netlist.output_ports;
  Obs.Metrics.set g_critical_path !crit;
  { arrival_ps = arrival; critical_path_ps = !crit; critical_gate = !crit_gate }

let slack_fraction ~baseline_ps t =
  if baseline_ps <= 0.0 then 0.0
  else Float.max 0.0 ((baseline_ps -. t.critical_path_ps) /. baseline_ps)

let downsize net =
  let fanout = Netlist.fanout net in
  Netlist.map_gates net (fun id g ->
      match g.Gate.op with
      | Gate.Input | Gate.Const _ | Gate.Dff _ -> g
      | _ ->
        let drive = if Array.length fanout.(id) >= 5 then 1 else 0 in
        { g with Gate.drive })
