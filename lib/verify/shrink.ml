module Lockstep = Bespoke_coreapi.Lockstep

type repro = {
  seeds : int list;
  info : Lockstep.divergence_info;
}

let rec minimize still_failing xs =
  match xs with
  | [] | [ _ ] -> xs
  | _ ->
    let n = List.length xs in
    let rec try_at i =
      if i >= n then xs
      else
        let shrunk = List.filteri (fun j _ -> j <> i) xs in
        if still_failing shrunk then minimize still_failing shrunk
        else try_at (i + 1)
    in
    try_at 0

let of_seeds ~check seeds =
  let cache = Hashtbl.create 8 in
  let check seed =
    match Hashtbl.find_opt cache seed with
    | Some r -> r
    | None ->
      let r = check seed in
      Hashtbl.replace cache seed r;
      r
  in
  let diverging s = List.exists (fun seed -> check seed <> None) s in
  if not (diverging seeds) then None
  else
    let seeds = minimize diverging seeds in
    let first = List.find (fun seed -> check seed <> None) seeds in
    match check first with
    | Some info -> Some { seeds; info }
    | None -> assert false

let pp_repro ppf r =
  Format.fprintf ppf "seeds [%s]; first divergence at insn %d%s in %s: %s"
    (String.concat "; " (List.map string_of_int r.seeds))
    r.info.Lockstep.at_insn
    (if r.info.Lockstep.at_pc >= 0 then
       Printf.sprintf " (pc 0x%04x)" r.info.Lockstep.at_pc
     else "")
    r.info.Lockstep.what r.info.Lockstep.detail
