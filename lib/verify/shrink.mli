(** Failing-case shrinking: when a fault or a fuzz seed produces a
    lockstep divergence, reduce the evidence to a minimal repro before
    reporting it.

    Two dimensions are shrunk:

    - the {e input seed list} is greedily minimized (drop every seed
      whose removal keeps the divergence; for independent per-seed
      co-simulation this converges to the single cheapest diverging
      seed);
    - the {e instruction trace} needs no search: lockstep compares
      every architectural register at every instruction boundary, so
      the reported [at_insn] is already the minimal diverging
      instruction index — a replay may stop there. *)

module Lockstep := Bespoke_coreapi.Lockstep

type repro = {
  seeds : int list;  (** minimal seed list, [<=] the original *)
  info : Lockstep.divergence_info;
      (** first divergence under the minimal seed list;
          [info.at_insn] is the minimal diverging instruction index *)
}

val minimize : ('a list -> bool) -> 'a list -> 'a list
(** [minimize still_failing xs] greedily removes elements while
    [still_failing] holds on the shrunk list.  [still_failing xs] must
    be true on entry; the result is a sublist on which it still
    holds, and from which no single element can be removed without
    losing the failure. *)

val of_seeds :
  check:(int -> Lockstep.divergence_info option) -> int list -> repro option
(** Shrink a diverging seed list: [check seed] co-simulates one seed
    and returns its first divergence, if any.  [None] when no seed in
    the list diverges.  [check] is memoized per seed, so the greedy
    pass costs at most one run per distinct seed. *)

val pp_repro : Format.formatter -> repro -> unit
