module B = Bespoke_programs.Benchmark
module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate
module Coredef = Bespoke_coreapi.Coredef
module Lockstep = Bespoke_coreapi.Lockstep
module System = Bespoke_coreapi.System
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Pool = Bespoke_core.Pool
module Coverage = Bespoke_coverage.Coverage
module Guard = Bespoke_guard.Guard
module Obs = Bespoke_obs.Obs

(* campaign telemetry, in the flow-wide verify.* group *)
let m_campaigns = Obs.Metrics.counter "verify.campaigns"
let m_inputs = Obs.Metrics.counter "verify.inputs_checked"
let m_faults = Obs.Metrics.counter "verify.faults_injected"
let m_killed = Obs.Metrics.counter "verify.faults_killed"
let m_survived = Obs.Metrics.counter "verify.faults_survived"
let g_kill_score = Obs.Metrics.gauge "verify.kill_score_pct"

let now = Unix.gettimeofday

type input_run = {
  ir_seed : int;
  ir_time_s : float;
  ir_diverged : Lockstep.divergence_info option;
}

type symbolic = {
  sym_ok : bool;
  sym_paths : int;
  sym_time_s : float;
  sym_detail : string option;
}

type kill =
  | Killed_input of Shrink.repro
  | Killed_symbolic of string
  | Survived

type fault_result = {
  fault : Fault.t;
  kill : kill;
  fr_time_s : float;
}

(* Deployment-guard shadow check of the unfaulted design: the
   benchmark replayed on its own bespoke design with the
   cut-assumption watcher attached — it must stay silent. *)
type guard_check = {
  gc_assumptions : int;
  gc_monitors : int;
  gc_implied : int;
  gc_unmonitorable : int;
  gc_cycles : int;
  gc_violations : int;
}

type campaign = {
  benchmark : string;
  core : string;
  gates_original : int;
  gates_bespoke : int;
  symbolic : symbolic;
  inputs : input_run list;
  coverage : Coverage.stats;
  gate_pct : float;
  equivalent : bool;
  repro : Shrink.repro option;
  faults : fault_result list;
  guard : guard_check;
  total_time_s : float;
}

type score = {
  injected : int;
  killed_input : int;
  killed_symbolic : int;
  survived : int;
  detectable : int;
  detectable_killed : int;
}

let kill_stats c =
  List.fold_left
    (fun s fr ->
      let killed = fr.kill <> Survived in
      {
        injected = s.injected + 1;
        killed_input =
          (s.killed_input
          + match fr.kill with Killed_input _ -> 1 | _ -> 0);
        killed_symbolic =
          (s.killed_symbolic
          + match fr.kill with Killed_symbolic _ -> 1 | _ -> 0);
        survived = (s.survived + if killed then 0 else 1);
        detectable = (s.detectable + if fr.fault.Fault.detectable then 1 else 0);
        detectable_killed =
          (s.detectable_killed
          + if fr.fault.Fault.detectable && killed then 1 else 0);
      })
    {
      injected = 0;
      killed_input = 0;
      killed_symbolic = 0;
      survived = 0;
      detectable = 0;
      detectable_killed = 0;
    }
    c.faults

let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b

let kill_score_pct s = pct (s.killed_input + s.killed_symbolic) s.injected
let detectable_score_pct s = pct s.detectable_killed s.detectable

(* Input-based co-simulation that never escapes: a faulty design that
   hangs or loses its control state (Failure from the cycle-bounded
   run) is a detected divergence, not a crash.  [x_dont_care]: the
   netlist under test is always a tailored design (or a mutant of
   one), whose const-X ties on application-dead state are correct by
   construction; only the concrete bits must match the ISS. *)
let cosim ?engine ~core ~netlist b ~seed =
  match Runner.co_simulate ?engine ~netlist ~x_dont_care:true ~core b ~seed with
  | r -> r
  | exception Failure m ->
    Error
      { Lockstep.at_insn = -1; at_pc = -1; what = "hang"; detail = m }

(* The symbolic layer: re-play the original design's execution tree on
   [shadow_net], comparing architectural state at every boundary. *)
let symbolic_check ~core ~original ~shadow_net b =
  Obs.Span.with_ ~name:"verify.symbolic" ~args:[ ("benchmark", b.B.name) ]
  @@ fun () ->
  let t0 = now () in
  let img = Runner.image ~core b in
  let sys = System.create ~netlist:original ~core img in
  let sh = System.create ~netlist:shadow_net ~core img in
  let config =
    {
      Activity.default_config with
      Activity.ram_x_ranges = b.B.input_ranges;
      irq_x = b.B.uses_irq;
    }
  in
  match Activity.analyze ~config ~shadow:sh sys with
  | report ->
    {
      sym_ok = true;
      sym_paths = report.Activity.paths;
      sym_time_s = now () -. t0;
      sym_detail = None;
    }
  | exception Activity.Shadow_mismatch m ->
    {
      sym_ok = false;
      sym_paths = 0;
      sym_time_s = now () -. t0;
      sym_detail = Some m;
    }
  | exception Activity.Analysis_error m ->
    (* the shadow drove the exploration off its bounds: also a
       detected difference between the two designs *)
    {
      sym_ok = false;
      sym_paths = 0;
      sym_time_s = now () -. t0;
      sym_detail = Some ("analysis diverged: " ^ m);
    }

let real_gate (g : Gate.t) =
  match g.Gate.op with Gate.Input | Gate.Const _ -> false | _ -> true

let check_benchmark ?engine ?(faults = 8) ?(seed = 1) ?explore_budget ~core b =
  Obs.Span.with_ ~name:"verify.campaign"
    ~args:[ ("benchmark", b.B.name); ("core", core.Coredef.name) ]
  @@ fun () ->
  Obs.Metrics.incr m_campaigns;
  let t0 = now () in
  (* tailor — through the flow cache, so a campaign that re-verifies a
     benchmark (or follows an analyze/tailor job for it) reuses the
     analysis *)
  let (report, net), _cached = Runner.analyze_cached ~core b in
  let bespoke, stats, prov =
    Cut.tailor_explained net
      ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values
  in
  (* layer 1a: coverage-directed input-based co-simulation *)
  let cov = Coverage.explore ?budget:explore_budget ~core b in
  let toggle_union = Array.make (Netlist.gate_count bespoke) 0 in
  let inputs =
    List.map
      (fun s ->
        Obs.Metrics.incr m_inputs;
        let t = now () in
        let r = cosim ?engine ~core ~netlist:bespoke b ~seed:s in
        (match r with
        | Ok lr ->
          Array.iteri
            (fun i c -> toggle_union.(i) <- toggle_union.(i) + c)
            lr.Lockstep.toggles
        | Error _ -> ());
        {
          ir_seed = s;
          ir_time_s = now () -. t;
          ir_diverged =
            (match r with Ok _ -> None | Error i -> Some i);
        })
      cov.Coverage.kept_seeds
  in
  let gate_pct =
    let total = ref 0 and hit = ref 0 in
    Array.iteri
      (fun i g ->
        if real_gate g then begin
          incr total;
          if toggle_union.(i) > 0 then incr hit
        end)
      bespoke.Netlist.gates;
    pct !hit !total
  in
  let inputs_ok = List.for_all (fun ir -> ir.ir_diverged = None) inputs in
  let repro =
    if inputs_ok then None
    else
      Shrink.of_seeds
        ~check:(fun s ->
          match cosim ?engine ~core ~netlist:bespoke b ~seed:s with
          | Ok _ -> None
          | Error i -> Some i)
        cov.Coverage.kept_seeds
  in
  (* layer 1b: symbolic state-trace comparison *)
  let symbolic = symbolic_check ~core ~original:net ~shadow_net:bespoke b in
  (* deployment-guard shadow check: replay the benchmark itself on the
     bespoke design with the cut-assumption watcher attached — on the
     application the design was tailored to, the guard must stay
     silent, so a violation here is a checker-level red flag on the
     tailoring, independent of the equivalence layers *)
  let guard =
    let gplan =
      Guard.plan ~original:net ~bespoke ~prov
        ~possibly_toggled:report.Activity.possibly_toggled
        ~constants:report.Activity.constant_values
    in
    let gw = Guard.watch_bespoke gplan in
    let _ = Guard.replay ?engine gw ~core ~netlist:bespoke b ~seed in
    {
      gc_assumptions = List.length gplan.Guard.p_assumptions;
      gc_monitors = List.length gplan.Guard.p_monitors;
      gc_implied = gplan.Guard.p_implied;
      gc_unmonitorable = gplan.Guard.p_unmonitorable;
      gc_cycles = Guard.cycles_checked gw;
      gc_violations = Guard.total_violations gw;
    }
  in
  (* layer 2: adversarial fault injection, each fault checked by the
     input layer first and the symbolic layer as a fallback; layer 3
     shrinks every diverging case before it is recorded *)
  let fault_list =
    Fault.generate ~seed ~core ~n:faults ~toggles:toggle_union bespoke
  in
  let fault_results =
    List.map
      (fun f ->
        Obs.Span.with_ ~name:"verify.fault"
          ~args:
            [
              ("benchmark", b.B.name);
              ("kind", Fault.kind_name f.Fault.kind);
              ("gate", string_of_int f.Fault.gate);
            ]
        @@ fun () ->
        Obs.Metrics.incr m_faults;
        let t = now () in
        let faulty = Fault.inject bespoke f in
        let kill =
          match
            Shrink.of_seeds
              ~check:(fun s ->
                match cosim ?engine ~core ~netlist:faulty b ~seed:s with
                | Ok _ -> None
                | Error i -> Some i)
              cov.Coverage.kept_seeds
          with
          | Some repro -> Killed_input repro
          | None -> (
            let sym =
              symbolic_check ~core ~original:net ~shadow_net:faulty b
            in
            match sym.sym_detail with
            | Some m when not sym.sym_ok -> Killed_symbolic m
            | _ -> Survived)
        in
        Obs.Metrics.incr
          (if kill = Survived then m_survived else m_killed);
        { fault = f; kill; fr_time_s = now () -. t })
      fault_list
  in
  let campaign =
    {
      benchmark = b.B.name;
      core = core.Coredef.name;
      gates_original = stats.Cut.original_gates;
      gates_bespoke = stats.Cut.bespoke_gates;
      symbolic;
      inputs;
      coverage = cov;
      gate_pct;
      equivalent = inputs_ok && symbolic.sym_ok;
      repro;
      faults = fault_results;
      guard;
      total_time_s = now () -. t0;
    }
  in
  if Obs.enabled () then
    Obs.Metrics.set g_kill_score (kill_score_pct (kill_stats campaign));
  campaign

let run_campaign ?engine ?faults ?seed ?explore_budget ?jobs ~core benches =
  (* the core's stock netlist and its hash are shared by every task:
     force both before the domains fan out (the memo tables are not
     domain-safe) *)
  ignore (Runner.shared_netlist core);
  ignore (Runner.shared_netlist_hash core);
  Pool.map ?jobs
    (fun b -> check_benchmark ?engine ?faults ?seed ?explore_budget ~core b)
    benches

(* ---- the bespoke-verify/v1 artifact ---- *)

let schema = "bespoke-verify/v1"

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let str s = "\"" ^ escape s ^ "\""
let int_ = string_of_int
let bool_ b = if b then "true" else "false"

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let repro_json (r : Shrink.repro) =
  obj
    [
      ("seeds", arr (List.map int_ r.Shrink.seeds));
      ("at_insn", int_ r.Shrink.info.Lockstep.at_insn);
      ("at_pc", int_ r.Shrink.info.Lockstep.at_pc);
      ("what", str r.Shrink.info.Lockstep.what);
      ("detail", str r.Shrink.info.Lockstep.detail);
    ]

let fault_json fr =
  let f = fr.fault in
  obj
    (("id", int_ f.Fault.id)
     :: ("kind", str (Fault.kind_name f.Fault.kind))
     :: ("gate", int_ f.Fault.gate)
     :: ("site", str f.Fault.desc)
     :: ("detectable", bool_ f.Fault.detectable)
     :: ( "kill",
          str
            (match fr.kill with
            | Killed_input _ -> "input"
            | Killed_symbolic _ -> "symbolic"
            | Survived -> "survived") )
     :: ("time_s", num fr.fr_time_s)
     ::
     (match fr.kill with
     | Killed_input r -> [ ("repro", repro_json r) ]
     | Killed_symbolic m -> [ ("detail", str m) ]
     | Survived -> []))

let campaign_json c =
  let s = kill_stats c in
  let input_time =
    List.fold_left (fun acc ir -> acc +. ir.ir_time_s) 0.0 c.inputs
  in
  let n_inputs = List.length c.inputs in
  obj
    (("name", str c.benchmark)
     :: ("core", str c.core)
     :: ( "gates",
          obj
            [
              ("original", int_ c.gates_original);
              ("bespoke", int_ c.gates_bespoke);
            ] )
     :: ( "symbolic",
          obj
            (("equivalent", bool_ c.symbolic.sym_ok)
             :: ("paths", int_ c.symbolic.sym_paths)
             :: ("time_s", num c.symbolic.sym_time_s)
             ::
             (match c.symbolic.sym_detail with
             | Some m -> [ ("detail", str m) ]
             | None -> [])) )
     :: ( "inputs",
          obj
            [
              ("count", int_ n_inputs);
              ("seeds", arr (List.map (fun ir -> int_ ir.ir_seed) c.inputs));
              ("time_s", num input_time);
              ( "time_s_per_input",
                num (if n_inputs = 0 then 0.0 else input_time /. float_of_int n_inputs) );
              ("line_pct", num c.coverage.Coverage.line_pct);
              ("branch_pct", num c.coverage.Coverage.branch_pct);
              ("branch_dir_pct", num c.coverage.Coverage.branch_dir_pct);
              ("gate_pct", num c.gate_pct);
              ( "all_ok",
                bool_ (List.for_all (fun ir -> ir.ir_diverged = None) c.inputs)
              );
            ] )
     :: ("verdict", str (if c.equivalent then "equivalent" else "divergent"))
     :: ( "fault_injection",
          obj
            [
              ("injected", int_ s.injected);
              ("killed_input", int_ s.killed_input);
              ("killed_symbolic", int_ s.killed_symbolic);
              ("survived", int_ s.survived);
              ("detectable", int_ s.detectable);
              ("detectable_killed", int_ s.detectable_killed);
              ("kill_score_pct", num (kill_score_pct s));
              ("detectable_score_pct", num (detectable_score_pct s));
              ("faults", arr (List.map fault_json c.faults));
            ] )
     :: ( "guard",
          obj
            [
              ("assumptions", int_ c.guard.gc_assumptions);
              ("monitors", int_ c.guard.gc_monitors);
              ("implied", int_ c.guard.gc_implied);
              ("unmonitorable", int_ c.guard.gc_unmonitorable);
              ("cycles", int_ c.guard.gc_cycles);
              ("violations", int_ c.guard.gc_violations);
              ("clean", bool_ (c.guard.gc_violations = 0));
            ] )
     :: ("time_s", num c.total_time_s)
     ::
     (match c.repro with
     | Some r -> [ ("repro", repro_json r) ]
     | None -> []))

let to_json campaigns =
  let core_name =
    match campaigns with c :: _ -> c.core | [] -> "unknown"
  in
  obj
    [
      ("schema", str schema);
      ("generator", str "bespoke_cli verify");
      ("core", str core_name);
      ("benchmarks", arr (List.map campaign_json campaigns));
    ]
  ^ "\n"

let pp_text ppf campaigns =
  List.iter
    (fun c ->
      let s = kill_stats c in
      Format.fprintf ppf "%s [%s]: %s@." c.benchmark c.core
        (if c.equivalent then "EQUIVALENT" else "DIVERGENT");
      Format.fprintf ppf
        "  gates %d -> %d; symbolic: %s (%d paths, %.3f s)@."
        c.gates_original c.gates_bespoke
        (if c.symbolic.sym_ok then "ok" else "MISMATCH")
        c.symbolic.sym_paths c.symbolic.sym_time_s;
      (match c.symbolic.sym_detail with
      | Some m -> Format.fprintf ppf "    %s@." m
      | None -> ());
      let input_time =
        List.fold_left (fun acc ir -> acc +. ir.ir_time_s) 0.0 c.inputs
      in
      Format.fprintf ppf
        "  inputs: %d seeds in %.3f s; coverage line %.1f%%, branch \
         %.1f%%, branch-dir %.1f%%, gate %.1f%%@."
        (List.length c.inputs) input_time c.coverage.Coverage.line_pct
        c.coverage.Coverage.branch_pct c.coverage.Coverage.branch_dir_pct
        c.gate_pct;
      (match c.repro with
      | Some r -> Format.fprintf ppf "  repro: %a@." Shrink.pp_repro r
      | None -> ());
      Format.fprintf ppf
        "  faults: %d injected, %d killed by inputs, %d by the symbolic \
         shadow, %d survived (kill score %.0f%%; detectable %d/%d)@."
        s.injected s.killed_input s.killed_symbolic s.survived
        (kill_score_pct s) s.detectable_killed s.detectable;
      List.iter
        (fun fr ->
          Format.fprintf ppf "    [%d] %-12s %s -> %s@." fr.fault.Fault.id
            (Fault.kind_name fr.fault.Fault.kind)
            fr.fault.Fault.desc
            (match fr.kill with
            | Killed_input r -> Format.asprintf "killed (%a)" Shrink.pp_repro r
            | Killed_symbolic m -> "killed symbolically: " ^ m
            | Survived -> "SURVIVED"))
        c.faults;
      let g = c.guard in
      Format.fprintf ppf
        "  guard: %d monitor(s) over %d assumption(s) (%d implied, %d \
         unmonitorable), %d cycle(s), %s@."
        g.gc_monitors g.gc_assumptions g.gc_implied g.gc_unmonitorable
        g.gc_cycles
        (if g.gc_violations = 0 then "clean"
         else Printf.sprintf "%d VIOLATION(S)" g.gc_violations))
    campaigns
