(** Adversarial fault injection: structural single-fault mutants of a
    bespoke netlist, used to measure the verification campaign's
    ability to detect a broken tailoring (the mutation-score
    methodology of Milu / KLEE's replay validation, applied to the
    netlist instead of the source).

    Every fault changes exactly one gate:

    - {b stuck-at-0/1}: a kept gate's output is tied to a constant;
    - {b wrong-tie}: a tie cell left behind by cutting (the constant a
      cut gate's fanout was stitched to) gets the opposite value;
    - {b dropped-gate}: a multi-input gate is bypassed by a buffer of
      one of its inputs, as if it had been lost in re-synthesis;
    - {b swapped-function}: the gate computes a sibling function
      (and<->or, nand<->nor, xor<->xnor, buf<->not, mux data swap).

    A fault is {e detectable} when it is a stuck-at on an exercised
    (positive toggle count) DFF behind a net the lockstep comparator
    observes at every instruction boundary (the core's hooked
    architectural registers — PC, SP, SR, R4-R15 on MSP430): the
    fault-free run holds each value of such a state bit across at
    least one boundary, so the stuck value is both activated and
    propagated to a compared net.  The campaign asserts a 100% kill
    rate over detectable faults; stuck-ats on other exercised gates
    and the remaining classes may be logically masked or functionally
    equivalent (a dead tie, a redundant gate) and are reported
    honestly as killed/survived. *)

module Netlist := Bespoke_netlist.Netlist

type kind =
  | Stuck_at of Bespoke_logic.Bit.t
  | Wrong_tie
  | Drop_gate
  | Swap_fn

type t = {
  id : int;
  kind : kind;
  gate : int;  (** gate id in the bespoke netlist *)
  detectable : bool;
      (** stuck-at on an exercised, boundary-observed state bit:
          guaranteed activated and propagated, must be killed *)
  desc : string;  (** human-readable site description *)
}

val kind_name : kind -> string
(** ["stuck-at-0"], ["stuck-at-1"], ["wrong-tie"], ["dropped-gate"],
    ["swapped-fn"]. *)

val inject : Netlist.t -> t -> Netlist.t
(** The faulty variant: the same netlist with the one gate replaced.
    The result still validates. *)

val generate :
  ?seed:int -> core:Bespoke_coreapi.Coredef.t -> n:int ->
  toggles:int array -> Netlist.t -> t list
(** Up to [n] faults, deterministically drawn (PRNG [seed], default 1)
    from the candidate sites of every kind, stuck-at sites first.
    [core] supplies the boundary-observed register nets that make a
    stuck-at detectable.  [toggles] are per-gate toggle counts from a
    fault-free co-simulated run of the same netlist; stuck-at sites
    are restricted to exercised gates so the resulting faults are
    detectable by construction. *)
