(** The verification-campaign subsystem (paper Section 5.1, Table 3):
    prove a bespoke netlist equivalent to the original design on the
    application, and prove the {e checker itself} trustworthy by
    injecting netlist faults it must catch.

    Three layers:

    + {b equivalence checking} — symbolic state-trace comparison
      (the original design's execution tree re-played on the bespoke
      design with architectural state compared at every boundary) plus
      coverage-directed input-based lockstep co-simulation (the
      {!Bespoke_coverage.Coverage.explore} seed set, each seed run
      gate-level vs. the golden ISS);
    + {b adversarial fault injection} — {!Fault} mutants of the
      bespoke netlist, each required to be reported non-equivalent by
      layer 1, yielding a mutation-kill score;
    + {b failing-case shrinking} — every divergence is reduced by
      {!Shrink} to a minimal seed list and the minimal diverging
      instruction index before it is reported.

    Campaigns over several benchmarks fan out across the
    [BESPOKE_JOBS] domain pool; everything is instrumented with
    [verify.*] spans and metrics. *)

module B := Bespoke_programs.Benchmark
module Coredef := Bespoke_coreapi.Coredef
module Lockstep := Bespoke_coreapi.Lockstep
module Coverage := Bespoke_coverage.Coverage
module Runner := Bespoke_core.Runner

type input_run = {
  ir_seed : int;
  ir_time_s : float;
  ir_diverged : Lockstep.divergence_info option;
}

type symbolic = {
  sym_ok : bool;
  sym_paths : int;  (** execution-tree paths compared *)
  sym_time_s : float;
  sym_detail : string option;  (** the mismatch, when [not sym_ok] *)
}

type kill =
  | Killed_input of Shrink.repro
      (** caught by input-based co-simulation; the repro is shrunk *)
  | Killed_symbolic of string
      (** survived every input, caught by the symbolic shadow *)
  | Survived  (** not distinguished by layer 1: equivalent or masked *)

type fault_result = {
  fault : Fault.t;
  kill : kill;
  fr_time_s : float;
}

type guard_check = {
  gc_assumptions : int;  (** cut assumptions recorded by the tailoring *)
  gc_monitors : int;  (** assumptions with a live boundary monitor *)
  gc_implied : int;  (** interior assumptions implied by the monitors *)
  gc_unmonitorable : int;  (** swept with the dead logic — unmappable *)
  gc_cycles : int;  (** cycles the shadow watcher checked *)
  gc_violations : int;  (** must be 0: the design's own application *)
}
(** Deployment-guard shadow check (the fourth, free, layer): the
    benchmark replayed on its own bespoke design with the
    {!Bespoke_guard.Guard} cut-assumption watcher attached.  Tailoring
    is only sound for the application it was derived from, so this
    replay must be silent; a violation here is a tailoring bug even if
    every equivalence layer passed. *)

type campaign = {
  benchmark : string;
  core : string;  (** descriptor name of the core the campaign ran on *)
  gates_original : int;
  gates_bespoke : int;
  symbolic : symbolic;
  inputs : input_run list;  (** one per kept coverage seed *)
  coverage : Coverage.stats;
  gate_pct : float;
      (** fraction of the bespoke design's real gates toggled by the
          input runs (Table 3's gate-coverage column) *)
  equivalent : bool;  (** layer-1 verdict on the unfaulted design *)
  repro : Shrink.repro option;
      (** shrunk repro when [not equivalent] via inputs *)
  faults : fault_result list;
  guard : guard_check;  (** cut-assumption shadow replay, must be clean *)
  total_time_s : float;
}

type score = {
  injected : int;
  killed_input : int;
  killed_symbolic : int;
  survived : int;
  detectable : int;
  detectable_killed : int;
}

val kill_stats : campaign -> score
val kill_score_pct : score -> float
(** Killed fraction over {e all} injected faults, in percent (100 when
    nothing was injected). *)

val detectable_score_pct : score -> float
(** Killed fraction over the detectable (stuck-at on an exercised
    gate) faults — the campaign's acceptance bar is 100. *)

val check_benchmark :
  ?engine:Runner.engine -> ?faults:int -> ?seed:int -> ?explore_budget:int ->
  core:Coredef.t -> B.t -> campaign
(** Run the full three-layer campaign on one benchmark of [core]:
    tailor it, check equivalence symbolically and on the explored
    input set, then inject [faults] (default 8) netlist faults drawn
    with PRNG [seed] (default 1) and require layer 1 to kill them.
    [engine] (default [Compiled]) selects the gate-level engine for
    the input-based co-simulation layer; the symbolic layer always
    runs event-driven.  [explore_budget] is passed to
    {!Bespoke_coverage.Coverage.explore}. *)

val run_campaign :
  ?engine:Runner.engine -> ?faults:int -> ?seed:int -> ?explore_budget:int ->
  ?jobs:int -> core:Coredef.t -> B.t list -> campaign list
(** {!check_benchmark} over several benchmarks on the
    {!Bespoke_core.Pool} (jobs default [BESPOKE_JOBS]). *)

val schema : string
(** ["bespoke-verify/v1"]. *)

val to_json : campaign list -> string
(** The whole campaign as one schema-versioned JSON artifact:
    Table 3-style per-benchmark columns (paths, inputs, per-input
    time, line/branch/branch-direction/gate coverage, verdict) plus
    the fault-injection table with per-fault kill class and shrunk
    repros. *)

val pp_text : Format.formatter -> campaign list -> unit
(** Human-readable campaign summary (one block per benchmark). *)
