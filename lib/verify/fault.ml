module Bit = Bespoke_logic.Bit
module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate

type kind =
  | Stuck_at of Bit.t
  | Wrong_tie
  | Drop_gate
  | Swap_fn

type t = {
  id : int;
  kind : kind;
  gate : int;
  detectable : bool;
  desc : string;
}

let kind_name = function
  | Stuck_at Bit.Zero -> "stuck-at-0"
  | Stuck_at Bit.One -> "stuck-at-1"
  | Stuck_at Bit.X -> "stuck-at-x"
  | Wrong_tie -> "wrong-tie"
  | Drop_gate -> "dropped-gate"
  | Swap_fn -> "swapped-fn"

let site_desc net gid =
  let g = net.Netlist.gates.(gid) in
  let names =
    match Netlist.names_of net gid with
    | [] -> ""
    | names ->
      let shown = List.filteri (fun i _ -> i < 4) names in
      let extra = List.length names - List.length shown in
      ", aka " ^ String.concat ", " shown
      ^ (if extra > 0 then Printf.sprintf " (+%d more)" extra else "")
  in
  Printf.sprintf "%s gate %d%s%s" (Gate.op_name g.Gate.op) gid
    (if g.Gate.module_path = "" then "" else ", module " ^ g.Gate.module_path)
    names

let swap_op = function
  | Gate.And -> Some Gate.Or
  | Gate.Or -> Some Gate.And
  | Gate.Nand -> Some Gate.Nor
  | Gate.Nor -> Some Gate.Nand
  | Gate.Xor -> Some Gate.Xnor
  | Gate.Xnor -> Some Gate.Xor
  | Gate.Buf -> Some Gate.Not
  | Gate.Not -> Some Gate.Buf
  | _ -> None

let inject net f =
  Netlist.map_gates net (fun id g ->
      if id <> f.gate then g
      else
        match f.kind with
        | Stuck_at v -> { g with Gate.op = Gate.Const v; fanin = [||] }
        | Wrong_tie -> (
          match g.Gate.op with
          | Gate.Const Bit.Zero -> { g with Gate.op = Gate.Const Bit.One }
          | Gate.Const Bit.One -> { g with Gate.op = Gate.Const Bit.Zero }
          | _ -> invalid_arg "Fault.inject: wrong-tie on a non-tie gate")
        | Drop_gate ->
          (* bypass: the gate becomes a buffer of one input (for a mux,
             the sel=0 data input) *)
          let keep =
            match g.Gate.op with
            | Gate.Mux -> g.Gate.fanin.(1)
            | _ -> g.Gate.fanin.(0)
          in
          { g with Gate.op = Gate.Buf; fanin = [| keep |] }
        | Swap_fn -> (
          match g.Gate.op with
          | Gate.Mux ->
            (* swap the data inputs: sel selects the wrong arm *)
            {
              g with
              Gate.fanin =
                [| g.Gate.fanin.(0); g.Gate.fanin.(2); g.Gate.fanin.(1) |];
            }
          | op -> (
            match swap_op op with
            | Some op' -> { g with Gate.op = op' }
            | None -> invalid_arg "Fault.inject: swapped-fn on this gate")))

(* deterministic PRNG (same family as the fuzzer's) so a campaign is
   replayable from its --seed *)
let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

let shuffle rng a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    rng := lcg !rng;
    let j = (!rng lsr 7) mod (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(* The nets the lockstep comparator reads at every instruction
   boundary (System.reg over the core's architectural registers): a
   toggling DFF behind one of these holds each of its values across at
   least one boundary (architectural registers only change at
   instruction writes, and the PC feeds every fetch), so a stuck-at
   there is both activated and propagated — detectable by
   construction. *)
let observed_nets (core : Bespoke_coreapi.Coredef.t) =
  List.filter_map core.Bespoke_coreapi.Coredef.reg_hook
    core.Bespoke_coreapi.Coredef.arch_regs

let observed_dffs ~core net =
  let set = Hashtbl.create 64 in
  List.iter
    (fun name ->
      if Netlist.mem_name net name then
        Array.iter
          (fun id ->
            match net.Netlist.gates.(id).Gate.op with
            | Gate.Dff _ -> Hashtbl.replace set id ()
            | _ -> ())
          (Netlist.find_name net name))
    (observed_nets core);
  set

let generate ?(seed = 1) ~core ~n ~toggles net =
  let rng = ref (lcg ((seed * 2654435761) lor 1)) in
  let exercised id = id < Array.length toggles && toggles.(id) > 0 in
  let observed = observed_dffs ~core net in
  let arch = ref [] in
  let stuck = ref [] and ties = ref [] and drops = ref [] and swaps = ref [] in
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.Gate.op with
      | Gate.Input -> ()
      | Gate.Const Bit.Zero | Gate.Const Bit.One -> ties := id :: !ties
      | Gate.Const Bit.X -> ()
      | Gate.Mux ->
        if exercised id then stuck := id :: !stuck;
        drops := id :: !drops;
        swaps := id :: !swaps
      | op ->
        if exercised id then
          if Hashtbl.mem observed id then arch := id :: !arch
          else stuck := id :: !stuck;
        if Gate.arity op >= 2 then drops := id :: !drops;
        if swap_op op <> None then swaps := id :: !swaps)
    net.Netlist.gates;
  let pools =
    [|
      shuffle rng (Array.of_list !arch);
      shuffle rng (Array.of_list !stuck);
      shuffle rng (Array.of_list !ties);
      shuffle rng (Array.of_list !drops);
      shuffle rng (Array.of_list !swaps);
    |]
  in
  let npools = Array.length pools in
  let cursor = Array.make npools 0 in
  let faults = ref [] in
  let count = ref 0 in
  let taken = Hashtbl.create 16 in
  (* round-robin over the kinds, detectable stuck-at sites first,
     skipping exhausted pools and already-used sites *)
  let progressed = ref true in
  while !count < n && !progressed do
    progressed := false;
    for k = 0 to npools - 1 do
      let pool = pools.(k) in
      (* advance past sites already used by another kind *)
      while
        cursor.(k) < Array.length pool
        && Hashtbl.mem taken (pool.(cursor.(k)))
      do
        cursor.(k) <- cursor.(k) + 1
      done;
      if !count < n && cursor.(k) < Array.length pool then begin
        let gid = pool.(cursor.(k)) in
        cursor.(k) <- cursor.(k) + 1;
        Hashtbl.replace taken gid ();
        progressed := true;
        let stuck_value () =
          rng := lcg !rng;
          if (!rng lsr 11) land 1 = 0 then Bit.Zero else Bit.One
        in
        let kind, detectable =
          match k with
          | 0 -> (Stuck_at (stuck_value ()), true)
          | 1 -> (Stuck_at (stuck_value ()), false)
          | 2 -> (Wrong_tie, false)
          | 3 -> (Drop_gate, false)
          | _ -> (Swap_fn, false)
        in
        let f =
          { id = !count; kind; gate = gid; detectable; desc = site_desc net gid }
        in
        faults := f :: !faults;
        incr count
      end
    done
  done;
  List.rev !faults
