(** Benchmark registry: the paper's Table 1 suite plus the unit-test,
    RTOS and subneg-characterization binaries.

    Conventions shared by every program:
    - stack grows down from 0x0400;
    - application inputs live in RAM at [input_base] (and/or arrive on
      the GPIO input port) — the analysis drives them with X, concrete
      runs fill them from {!gen_inputs};
    - results are stored from 0x0380 and usually echoed to the GPIO
      output port;
    - execution ends with a write to the simulation halt port. *)

type group = Sensor | Eembc | Unit_test | Synthetic

type t = {
  name : string;
  description : string;
  group : group;
  source : string;  (** assembly text *)
  input_ranges : (int * int) list;
      (** inclusive byte-address ranges of RAM treated as unknown
          inputs during analysis *)
  gen_inputs : int -> (int * int) list * int;
      (** [seed -> (ram word writes, gpio_in value)] for concrete runs *)
  uses_irq : bool;
  irq_pulses : int -> int list;
      (** [seed -> instruction indices] at which the external IRQ line
          is pulsed *)
  result_addrs : int list;  (** byte addresses of result words *)
}

val image : t -> Bespoke_isa.Asm.image
(** Assemble (memoized per call site; assembly is cheap). *)

val input_base : int
val output_base : int

(** {1 Deterministic input generation helper} *)

val rand16 : state:int ref -> int
(** LCG step returning 16 bits; used by all [gen_inputs]. *)

val words : state:int ref -> base:int -> count:int -> ?mask:int -> unit ->
  (int * int) list

val mk :
  ?group:group ->
  ?input_ranges:(int * int) list ->
  ?gen_inputs:(int -> (int * int) list * int) ->
  ?uses_irq:bool ->
  ?irq_pulses:(int -> int list) ->
  ?result_addrs:int list ->
  string -> string -> string -> t
(** [mk name description source] — constructor for benchmark records,
    exported so other cores' suites (e.g. the RV32 ports) share the
    defaults.  [result_addrs] defaults to the MSP430 [output_base];
    pass it explicitly for any other core. *)

(** {1 The suite} *)

val bin_search : t
val div : t
val in_sort : t
val int_avg : t
val int_filt : t
val scrambled_int_filt : t
val mult : t
val rle : t
val t_hold : t
val tea8 : t
val fft : t
val viterbi : t
val conv_en : t
val autocorr : t
val irq : t
val dbg : t

val table1 : t list
(** The 15 benchmarks of the paper's Table 1, in its order. *)

val all : t list
(** [table1] plus the scrambled-intFilt synthetic benchmark. *)

val find : string -> t
(** @raise Not_found *)
