module B = Bespoke_programs.Benchmark
module Bit = Bespoke_logic.Bit
module Netlist = Bespoke_netlist.Netlist
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Multi = Bespoke_core.Multi
module Mutation = Bespoke_mutation.Mutation
module Provenance = Bespoke_report.Provenance
module Guard = Bespoke_guard.Guard
module Engine = Bespoke_sim.Engine
module Vcd = Bespoke_sim.Vcd
module Obs = Bespoke_obs.Obs
let core = Bespoke_cpu.Msp430.core

(* One tailoring, shared by every test: analyze + tailor_explained +
   plan are deterministic, so computing them once keeps the suite in
   the fast tier. *)
let tailored =
  lazy
    (let base = B.find "mult" in
     let r, net = Runner.analyze ~core base in
     let possibly_toggled = r.Activity.possibly_toggled in
     let constants = r.Activity.constant_values in
     let bespoke, stats, prov =
       Cut.tailor_explained net ~possibly_toggled ~constants
     in
     let plan =
       Guard.plan ~original:net ~bespoke ~prov ~possibly_toggled ~constants
     in
     (base, net, r, bespoke, stats, prov, plan))

let test_assumptions_match_cuts () =
  let _, net, r, _, stats, _, plan = Lazy.force tailored in
  let n = List.length plan.Guard.p_assumptions in
  Alcotest.(check int) "one assumption per cut gate" stats.Cut.cut_gates n;
  (* the partition is total *)
  Alcotest.(check int)
    "monitors + implied + unmonitorable = assumptions"
    n
    (List.length plan.Guard.p_monitors
    + plan.Guard.p_implied + plan.Guard.p_unmonitorable);
  Alcotest.(check bool) "has hardware-checkable monitors" true
    (List.length plan.Guard.p_monitors > 0);
  (* every assumption names a real never-toggled gate with a known
     constant *)
  List.iter
    (fun { Cut.a_gate; a_const } ->
      Alcotest.(check bool) "cut gate not possibly toggled" false
        r.Activity.possibly_toggled.(a_gate);
      Alcotest.(check bool) "assumed constant is known" true
        (Bit.is_known a_const);
      match (Netlist.gate_count net > a_gate, a_const) with
      | true, _ -> ()
      | false, _ -> Alcotest.fail "gate id out of range")
    plan.Guard.p_assumptions

let test_instrumented_design_valid () =
  let _, _, _, bespoke, _, _, plan = Lazy.force tailored in
  let inst = Guard.instrument plan in
  let d = inst.Guard.i_design in
  (* validated at construction; check the guard surface *)
  Alcotest.(check bool) "guard_violation port" true
    (List.mem_assoc "guard_violation" d.Netlist.output_ports);
  Alcotest.(check bool) "guard_sticky named" true (Netlist.mem_name d "guard_sticky");
  Alcotest.(check bool) "guard_mismatch named" true
    (Netlist.mem_name d "guard_mismatch");
  Alcotest.(check int) "one sticky bit per monitor"
    (Array.length inst.Guard.i_monitors)
    (Array.length (Netlist.find_name d "guard_sticky"));
  Alcotest.(check bool) "adds gates" true (inst.Guard.i_added_gates > 0);
  Alcotest.(check bool) "adds sticky + armed DFFs" true
    (inst.Guard.i_added_dffs = Array.length inst.Guard.i_monitors + 1);
  (* the original ports are untouched *)
  List.iter
    (fun (name, bits) ->
      Alcotest.(check bool) (name ^ " preserved") true
        (List.assoc_opt name d.Netlist.output_ports = Some bits))
    bespoke.Netlist.output_ports;
  let hw = Guard.hw_stats plan inst in
  Alcotest.(check bool) "positive area overhead" true (hw.Guard.h_area_um2 > 0.0);
  Alcotest.(check bool) "positive leakage overhead" true
    (hw.Guard.h_leakage_nw > 0.0)

(* Soundness, clean side: on its own benchmark the instrumented design
   is bit-identical to the ISS (check_equivalence raises otherwise),
   the shadow watcher sees zero violations, and the hardware
   guard_violation port stays 0 — on every scalar engine and the
   packed one. *)
let test_clean_on_own_benchmark () =
  let base, _, _, _, _, _, plan = Lazy.force tailored in
  let inst = Guard.instrument plan in
  List.iter
    (fun engine ->
      let w = Guard.watch_bespoke plan in
      let eng = ref None in
      let (_ : Runner.iss_outcome) =
        Runner.check_equivalence ~core ~engine
          ~attach:(fun e ->
            eng := Some e;
            Guard.attach w e)
          ~attach64:(fun e -> Guard.attach64 w ~lane:0 e)
          ~netlist:inst.Guard.i_design base ~seed:1
      in
      let label = Runner.engine_to_string engine in
      Alcotest.(check bool) (label ^ ": shadow clean") true (Guard.clean w);
      Alcotest.(check bool) (label ^ ": cycles checked") true
        (Guard.cycles_checked w > 0);
      match !eng with
      | Some e ->
        let port = (Netlist.find_output inst.Guard.i_design "guard_violation").(0) in
        Alcotest.(check string) (label ^ ": hw guard_violation low") "0"
          (String.make 1 (Bit.to_char (Engine.value e port)))
      | None -> ())
    Runner.all_engines

(* Shadow mode on the original design is also clean on the base
   benchmark: the analysis constants really are invariants of every
   concrete run the analysis covers. *)
let test_original_shadow_clean () =
  let base, net, _, _, _, _, plan = Lazy.force tailored in
  let w = Guard.watch_original plan in
  let r = Guard.replay ~core w ~netlist:net base ~seed:2 in
  (match r.Guard.rp_result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "base run failed: %s" e);
  Alcotest.(check bool) "clean" true (Guard.clean w)

(* The violation-side fixture, on rle (mult's mutants are all
   supported by its own bespoke design — the in-field-update example
   shows rle has unsupported ones).  Scan unsupported mutants with
   seeds 1-3 until a shadow-original replay violates and a replay on
   the instrumented design trips the hardware guard_violation port;
   deterministic for a fixed code base, and lazy so the scan runs
   once. *)
let rle_hits =
  lazy
    (let base = B.find "rle" in
     let r_base, net = Runner.analyze ~core base in
     let possibly_toggled = r_base.Activity.possibly_toggled in
     let constants = r_base.Activity.constant_values in
     let bespoke, _, prov =
       Cut.tailor_explained net ~possibly_toggled ~constants
     in
     let plan =
       Guard.plan ~original:net ~bespoke ~prov ~possibly_toggled ~constants
     in
     let inst = Guard.instrument plan in
     let shadow_hit = ref None in
     let hw_hit = ref None in
     let saw_unsupported = ref false in
     List.iter
       (fun (m : Mutation.mutant) ->
         if !shadow_hit = None || !hw_hit = None then begin
           let mb = Mutation.to_benchmark base m in
           let unsupported =
             match Runner.analyze ~core mb with
             | r, _ ->
               not
                 (Multi.supported ~design_toggled:possibly_toggled
                    ~app_toggled:r.Activity.possibly_toggled)
             | exception Activity.Analysis_error _ -> true
           in
           if unsupported then begin
             saw_unsupported := true;
             List.iter
               (fun seed ->
                 if !shadow_hit = None then begin
                   let w = Guard.watch_original plan in
                   let (_ : Guard.replay) =
                     Guard.replay ~core w ~netlist:net mb ~seed
                   in
                   if not (Guard.clean w) then shadow_hit := Some (m, seed, w)
                 end;
                 if !hw_hit = None then begin
                   let w = Guard.watch_bespoke plan in
                   let r =
                     Guard.replay ~core w ~netlist:inst.Guard.i_design mb ~seed
                   in
                   match r.Guard.rp_hw_violation with
                   | Some Bit.One -> hw_hit := Some (m, seed, w)
                   | _ -> ()
                 end)
               [ 1; 2; 3 ]
           end
         end)
       (Mutation.mutants base);
     (net, plan, !saw_unsupported, !shadow_hit, !hw_hit))

(* Soundness, violation side: a mutant the offline Section 5.3 check
   rejects must trip the guard at runtime, and the violation's
   provenance must name the never-toggled cut decision it
   invalidates. *)
let test_unsupported_mutant_violates () =
  let _, plan, saw_unsupported, shadow_hit, _ = Lazy.force rle_hits in
  Alcotest.(check bool) "has unsupported mutants" true saw_unsupported;
  match shadow_hit with
  | None ->
    Alcotest.fail "no unsupported mutant tripped the guard on seeds 1-3"
  | Some (m, seed, w) ->
    Printf.eprintf
      "guard: mutant %d (line %d, %s -> %s) seed %d: %d violation(s)\n%!"
      m.Mutation.id m.Mutation.line m.Mutation.original m.Mutation.replacement
      seed (Guard.total_violations w);
    let vs = Guard.violations w in
    Alcotest.(check bool) "at least one violation" true (vs <> []);
    List.iter
      (fun (v : Guard.violation) ->
        Alcotest.(check bool) "observed value is known" true
          (Bit.is_known v.Guard.v_observed);
        (* the provenance chain names the cut decision *)
        match plan.Guard.p_prov.Provenance.reason.(v.Guard.v_gate) with
        | Some (Provenance.Never_toggled c) ->
          Alcotest.(check string) "reason constant = assumed"
            (String.make 1 (Bit.to_char c))
            (String.make 1 (Bit.to_char v.Guard.v_assumed))
        | other ->
          Alcotest.failf "violated gate %d has reason %s, not never-toggled"
            v.Guard.v_gate
            (match other with
            | Some r -> Provenance.reason_label r
            | None -> "none"))
      vs;
    (* the JSONL record round-trips through the Obs JSON reader and
       carries the provenance fields *)
    let line = Guard.violation_jsonl plan (List.hd vs) in
    (match Obs.Json.parse line with
    | Ok j ->
      Alcotest.(check bool) "reason field = never-toggled" true
        (Obs.Json.member "reason" j = Some (Obs.Json.Str "never-toggled"))
    | Error e -> Alcotest.failf "violation record does not parse (%s): %s" e line)

(* The hardware monitors see a mutant too: replayed on the
   instrumented design, the sticky guard_violation port goes (and
   stays) high by the end of the run, and the shadow recompute
   agrees. *)
let test_hardware_catches_mutant () =
  let _, _, _, _, hw_hit = Lazy.force rle_hits in
  match hw_hit with
  | None -> Alcotest.fail "no mutant tripped the hardware guard on seeds 1-3"
  | Some (m, seed, w) ->
    Printf.eprintf
      "guard hw: mutant %d seed %d raised guard_violation (%d shadow hits)\n%!"
      m.Mutation.id seed (Guard.total_violations w);
    Alcotest.(check bool) "shadow recompute agrees" true (not (Guard.clean w))

(* VCD export of an instrumented design: the guard nets are
   exportable signals, named in the header and dumped. *)
let test_vcd_of_instrumented () =
  let _, _, _, _, _, _, plan = Lazy.force tailored in
  let inst = Guard.instrument plan in
  let eng = Engine.create inst.Guard.i_design in
  let buf = Buffer.create 4096 in
  let vcd =
    Vcd.create buf eng
      ~signals:[ "guard_violation"; "guard_sticky"; "guard_armed" ]
  in
  Engine.set_all_inputs_x eng;
  Engine.eval eng;
  Vcd.sample vcd ~time:0;
  Engine.step eng;
  Vcd.sample vcd ~time:1;
  Vcd.finish vcd ~time:2;
  let out = Buffer.contents buf in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sig_name ->
      Alcotest.(check bool) (sig_name ^ " in header") true
        (contains out sig_name))
    [ "guard_violation"; "guard_sticky"; "guard_armed" ]

let () =
  Alcotest.run "guard"
    [
      ( "guard",
        [
          Alcotest.test_case "assumptions match cuts" `Quick
            test_assumptions_match_cuts;
          Alcotest.test_case "instrumented design valid" `Quick
            test_instrumented_design_valid;
          Alcotest.test_case "clean on own benchmark (all engines)" `Quick
            test_clean_on_own_benchmark;
          Alcotest.test_case "original shadow clean" `Quick
            test_original_shadow_clean;
          Alcotest.test_case "unsupported mutant violates" `Quick
            test_unsupported_mutant_violates;
          Alcotest.test_case "hardware catches mutant" `Quick
            test_hardware_catches_mutant;
          Alcotest.test_case "vcd of instrumented design" `Quick
            test_vcd_of_instrumented;
        ] );
    ]
