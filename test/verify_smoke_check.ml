(* Validator behind the @verify-smoke alias: parse the JSON artifact
   emitted by `bespoke_cli verify --json`, check the schema tag, the
   Table 3-style per-benchmark columns, the fault-injection arithmetic
   (killed + survived = injected, detectable kill score 100), and that
   every input-killed fault carries a shrunk repro.  Exits non-zero on
   the first violation. *)

module Obs = Bespoke_obs.Obs

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("verify-smoke: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let mem k j =
  match Obs.Json.member k j with
  | Some v -> v
  | None -> fail "missing field %S" k

let str k j = match mem k j with Obs.Json.Str s -> s | _ -> fail "field %S is not a string" k
let num k j = match mem k j with Obs.Json.Num n -> n | _ -> fail "field %S is not a number" k

let bool_ k j =
  match mem k j with Obs.Json.Bool b -> b | _ -> fail "field %S is not a bool" k

let arr k j =
  match mem k j with Obs.Json.Arr l -> l | _ -> fail "field %S is not an array" k

let pct name what v =
  if v < 0.0 || v > 100.0 then fail "%s: %s %g outside [0, 100]" name what v

let check_fault name f =
  let kill = str "kill" f in
  (match kill with
  | "input" ->
    (* an input kill must come with a shrunk, replayable repro *)
    let r = mem "repro" f in
    if arr "seeds" r = [] then fail "%s: input-killed fault with empty repro" name;
    ignore (str "what" r);
    ignore (num "at_insn" r)
  | "symbolic" -> ignore (str "detail" f)
  | "survived" -> ()
  | k -> fail "%s: unknown kill class %S" name k);
  (kill, bool_ "detectable" f)

let check_bench ~core b =
  let name = str "name" b in
  if str "core" b <> core then
    fail "%s: benchmark core %S, header says %S" name (str "core" b) core;
  let gates = mem "gates" b in
  let go = num "original" gates and gb = num "bespoke" gates in
  if go <= 0.0 then fail "%s: no original gates" name;
  if gb <= 0.0 || gb > go then
    fail "%s: bespoke gate count %g outside (0, original %g]" name gb go;
  if str "verdict" b <> "equivalent" then fail "%s: not equivalent" name;
  if not (bool_ "equivalent" (mem "symbolic" b)) then
    fail "%s: symbolic layer disagrees with the verdict" name;
  if num "paths" (mem "symbolic" b) < 1.0 then fail "%s: no symbolic paths" name;
  let inputs = mem "inputs" b in
  let n = num "count" inputs in
  if n < 1.0 then fail "%s: no co-simulated inputs" name;
  if float_of_int (List.length (arr "seeds" inputs)) <> n then
    fail "%s: inputs.count disagrees with inputs.seeds" name;
  if not (bool_ "all_ok" inputs) then fail "%s: an input run diverged" name;
  pct name "line_pct" (num "line_pct" inputs);
  pct name "branch_pct" (num "branch_pct" inputs);
  pct name "branch_dir_pct" (num "branch_dir_pct" inputs);
  pct name "gate_pct" (num "gate_pct" inputs);
  if num "gate_pct" inputs <= 0.0 then fail "%s: no gate toggled" name;
  let fi = mem "fault_injection" b in
  let injected = num "injected" fi in
  let ki = num "killed_input" fi
  and ks = num "killed_symbolic" fi
  and sv = num "survived" fi in
  if ki +. ks +. sv <> injected then
    fail "%s: kill classes sum to %g, %g injected" name (ki +. ks +. sv) injected;
  let faults = arr "faults" fi in
  if float_of_int (List.length faults) <> injected then
    fail "%s: faults array length disagrees with injected" name;
  let kills = List.map (check_fault name) faults in
  let count p = float_of_int (List.length (List.filter p kills)) in
  if count (fun (k, _) -> k = "input") <> ki then
    fail "%s: killed_input disagrees with the fault list" name;
  if count (fun (k, _) -> k = "symbolic") <> ks then
    fail "%s: killed_symbolic disagrees with the fault list" name;
  if count (fun (_, d) -> d) <> num "detectable" fi then
    fail "%s: detectable count disagrees with the fault list" name;
  if count (fun (k, d) -> d && k <> "survived") <> num "detectable_killed" fi
  then fail "%s: detectable_killed disagrees with the fault list" name;
  if injected > 0.0 && num "detectable" fi < 1.0 then
    fail "%s: campaign drew no detectable fault" name;
  (* the acceptance bar: every detectable fault killed *)
  if num "detectable_score_pct" fi <> 100.0 then
    fail "%s: detectable kill score %g, want 100" name
      (num "detectable_score_pct" fi)

let check_file path expected_core =
  match Obs.Json.parse (read_file path) with
  | Error m -> fail "%s does not parse: %s" path m
  | Ok j ->
    if str "schema" j <> "bespoke-verify/v1" then
      fail "%s: unexpected schema tag %S" path (str "schema" j);
    ignore (str "generator" j);
    if str "core" j <> expected_core then
      fail "%s: header core %S, want %S" path (str "core" j) expected_core;
    let benches = arr "benchmarks" j in
    if benches = [] then fail "%s lists no benchmarks" path;
    List.iter (check_bench ~core:expected_core) benches;
    List.length benches

let () =
  let rec pairs = function
    | [] -> []
    | file :: core :: rest -> (file, core) :: pairs rest
    | [ _ ] -> fail "usage: verify_smoke_check FILE.json CORE ..."
  in
  match pairs (List.tl (Array.to_list Sys.argv)) with
  | [] -> fail "usage: verify_smoke_check FILE.json CORE ..."
  | ps ->
    let n =
      List.fold_left (fun acc (f, c) -> acc + check_file f c) 0 ps
    in
    Printf.printf
      "verify-smoke: %d benchmark campaign(s) validated across core(s) %s\n"
      n
      (String.concat ", " (List.map snd ps))
