(* Provenance, attribution and savings-artifact tests: unit checks on
   the typed reasons plus an end-to-end run of the explained tailor
   flow on the smallest benchmark (mult, 78 analysis cycles). *)

module Bit = Bespoke_logic.Bit
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Report = Bespoke_power.Report
module Provenance = Bespoke_report.Provenance
module Attribution = Bespoke_report.Attribution
module Artifact = Bespoke_report.Artifact
module B = Bespoke_programs.Benchmark
module Obs = Bespoke_obs.Obs
let core = Bespoke_cpu.Msp430.core

(* One shared analyze+tailor of mult for all integration tests. *)
let flow =
  lazy
    (let b = B.find "mult" in
     let report, net = Runner.analyze ~core b in
     let bespoke, stats, prov =
       Cut.tailor_explained net
         ~possibly_toggled:report.Activity.possibly_toggled
         ~constants:report.Activity.constant_values
     in
     (b, report, net, bespoke, stats, prov))

(* ---- reason labels (stable machine-readable tags) ---- *)

let test_reason_labels () =
  let check r label cut =
    Alcotest.(check string) "label" label (Provenance.reason_label r);
    Alcotest.(check bool) ("is_cut " ^ label) cut (Provenance.is_cut r)
  in
  check Provenance.Kept "kept" false;
  check (Provenance.Downsized (2, 1)) "downsized" false;
  check (Provenance.Never_toggled Bit.Zero) "never-toggled" true;
  check Provenance.Dead_fanout "dead-fanout" true;
  check Provenance.Const_folded "const-folded" true;
  check (Provenance.Merged 7) "merged" true

(* ---- provenance over the real flow ---- *)

let test_provenance_counts () =
  let _, _, net, _, stats, prov = Lazy.force flow in
  Alcotest.(check int) "kept = bespoke gates" stats.Cut.bespoke_gates
    (Provenance.kept_count prov);
  Alcotest.(check int) "kept + cut = original real gates"
    (Netlist.num_gates net)
    (Provenance.kept_count prov + Provenance.cut_count prov);
  let hist = Provenance.histogram prov in
  let count label = Option.value ~default:0 (List.assoc_opt label hist) in
  Alcotest.(check int) "never-toggled = stats.cut_gates" stats.Cut.cut_gates
    (count "never-toggled");
  Alcotest.(check int) "histogram sums to real gates" (Netlist.num_gates net)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 hist)

let test_provenance_classification () =
  let _, report, net, bespoke, _, prov = Lazy.force flow in
  Array.iteri
    (fun id (g : Gate.t) ->
      match prov.Provenance.reason.(id) with
      | None -> (
        (* only port pins and tie cells are unclassified *)
        match g.Gate.op with
        | Gate.Input | Gate.Const _ -> ()
        | op -> Alcotest.failf "real gate %d (%s) has no reason" id (Gate.op_name op))
      | Some (Provenance.Never_toggled v) ->
        Alcotest.(check bool) "cut gate did not toggle" false
          report.Activity.possibly_toggled.(id);
        Alcotest.(check bool) "stitched constant recorded" true
          (Bit.equal v report.Activity.constant_values.(id))
      | Some (Provenance.Kept | Provenance.Downsized _) ->
        let nid = prov.Provenance.new_id.(id) in
        Alcotest.(check bool) "kept gate has a bespoke image" true (nid >= 0);
        Alcotest.(check bool) "op preserved" true
          (Gate.op_equal g.Gate.op bespoke.Netlist.gates.(nid).Gate.op)
      | Some _ ->
        Alcotest.(check int) "cut gate has no bespoke image" (-1)
          prov.Provenance.new_id.(id))
    net.Netlist.gates

(* ---- first-toggle provenance and the execution tree ---- *)

let test_first_toggle_iff_possibly () =
  let _, report, _, _, _, _ = Lazy.force flow in
  Array.iteri
    (fun id ft ->
      Alcotest.(check bool)
        (Printf.sprintf "gate %d first_toggle iff possibly_toggled" id)
        report.Activity.possibly_toggled.(id)
        (ft <> None))
    report.Activity.first_toggle

let test_tree_well_formed () =
  let _, report, _, _, _, _ = Lazy.force flow in
  let tr = report.Activity.tree in
  Alcotest.(check bool) "tree non-empty" true (Array.length tr > 0);
  Alcotest.(check int) "root is node 0" 0 tr.(0).Activity.node_id;
  Alcotest.(check int) "root has no parent" (-1) tr.(0).Activity.parent;
  Array.iteri
    (fun i nd ->
      Alcotest.(check int) "node_id is the index" i nd.Activity.node_id;
      if i > 0 then
        Alcotest.(check bool) "parent precedes child" true
          (nd.Activity.parent >= 0 && nd.Activity.parent < i))
    tr;
  Alcotest.(check int) "node cycles sum to total"
    report.Activity.total_cycles
    (Array.fold_left (fun acc nd -> acc + nd.Activity.node_cycles) 0 tr);
  (* every first-toggle points into the tree *)
  Array.iter
    (function
      | None -> ()
      | Some ft ->
        Alcotest.(check bool) "first-toggle node exists" true
          (ft.Activity.ft_node >= 0 && ft.Activity.ft_node < Array.length tr))
    report.Activity.first_toggle

let test_tree_dot () =
  let _, report, _, _, _, _ = Lazy.force flow in
  let dot = Activity.tree_dot report in
  let has sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (has "digraph" dot);
  Alcotest.(check bool) "root node drawn" true (has "n0 " dot);
  (* truncation stays well-formed *)
  let tiny = Activity.tree_dot ~max_nodes:1 report in
  Alcotest.(check bool) "truncated still a digraph" true (has "digraph" tiny)

(* ---- per-module attribution ---- *)

let test_attribution_totals () =
  let _, _, net, bespoke, _, _ = Lazy.force flow in
  let rows = Attribution.table ~original:net ~bespoke in
  match List.rev rows with
  | total :: rest when total.Attribution.module_name = "(total)" ->
    let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rest in
    let sumi f = List.fold_left (fun acc r -> acc + f r) 0 rest in
    Alcotest.(check int) "total gates original" (Netlist.num_gates net)
      total.Attribution.gates_original;
    Alcotest.(check int) "total gates bespoke" (Netlist.num_gates bespoke)
      total.Attribution.gates_bespoke;
    Alcotest.(check int) "rows sum to total (gates)"
      total.Attribution.gates_original
      (sumi (fun r -> r.Attribution.gates_original));
    Alcotest.(check (float 0.5)) "total area matches Report.area_um2"
      (Report.area_um2 net) total.Attribution.area_original;
    Alcotest.(check (float 0.5)) "bespoke area matches Report.area_um2"
      (Report.area_um2 bespoke) total.Attribution.area_bespoke;
    Alcotest.(check (float 0.5)) "rows sum to total (area)"
      total.Attribution.area_original
      (sum (fun r -> r.Attribution.area_original));
    Alcotest.(check (float 0.5)) "total leakage matches Report.leakage_nw"
      (Report.leakage_nw net) total.Attribution.leak_original
  | _ -> Alcotest.fail "attribution table has no (total) row"

(* ---- JSON artifact ---- *)

let entry_of_flow () =
  let b, report, net, bespoke, stats, prov = Lazy.force flow in
  {
    Artifact.name = b.B.name;
    group = "sensor";
    gates_original = stats.Cut.original_gates;
    gates_cut = stats.Cut.cut_gates;
    gates_bespoke = stats.Cut.bespoke_gates;
    area_original = stats.Cut.original_area;
    area_bespoke = stats.Cut.bespoke_area;
    leak_original = Report.leakage_nw net;
    leak_bespoke = Report.leakage_nw bespoke;
    critical_ps_original = 14000.0;
    critical_ps_bespoke = 9800.0;
    vmin = 0.8;
    paths = report.Activity.paths;
    merges = report.Activity.merges;
    prunes = report.Activity.prunes;
    escapes = report.Activity.escaped_paths;
    cycles = report.Activity.total_cycles;
    cut_reasons = Provenance.histogram prov;
    modules = Attribution.table ~original:net ~bespoke;
  }

let member_exn k j =
  match Obs.Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "artifact missing field %S" k

let test_artifact_json_parses () =
  let e = entry_of_flow () in
  let text = Artifact.to_json [ e ] in
  match Obs.Json.parse text with
  | Error m -> Alcotest.failf "artifact does not parse: %s" m
  | Ok j -> (
    (match member_exn "schema" j with
    | Obs.Json.Str s ->
      Alcotest.(check string) "schema tag" Artifact.schema s
    | _ -> Alcotest.fail "schema is not a string");
    match member_exn "benchmarks" j with
    | Obs.Json.Arr [ bench ] -> (
      (match member_exn "gates" bench with
      | gates -> (
        match member_exn "original" gates with
        | Obs.Json.Num n ->
          Alcotest.(check int) "gates.original round-trips"
            e.Artifact.gates_original (int_of_float n)
        | _ -> Alcotest.fail "gates.original is not a number"));
      match member_exn "cut_reasons" bench with
      | Obs.Json.Obj fields ->
        Alcotest.(check int) "all histogram entries serialized"
          (List.length e.Artifact.cut_reasons)
          (List.length fields)
      | _ -> Alcotest.fail "cut_reasons is not an object")
    | _ -> Alcotest.fail "expected exactly one benchmark entry")

let test_analysis_json_parses () =
  let text =
    Artifact.analysis_to_json ~name:"mult" ~paths:1 ~merges:0 ~prunes:0
      ~escapes:0 ~cycles:78
      ~modules:[ ("frontend", 166, 219); ("execution", 1424, 1801) ]
  in
  match Obs.Json.parse text with
  | Error m -> Alcotest.failf "analyze json does not parse: %s" m
  | Ok j -> (
    match member_exn "modules" j with
    | Obs.Json.Arr l -> Alcotest.(check int) "module rows" 2 (List.length l)
    | _ -> Alcotest.fail "modules is not an array")

let () =
  Alcotest.run "bespoke_report"
    [
      ( "provenance",
        [
          Alcotest.test_case "reason labels" `Quick test_reason_labels;
          Alcotest.test_case "counts agree with cut stats" `Quick
            test_provenance_counts;
          Alcotest.test_case "per-gate classification" `Quick
            test_provenance_classification;
        ] );
      ( "activity",
        [
          Alcotest.test_case "first-toggle iff possibly-toggled" `Quick
            test_first_toggle_iff_possibly;
          Alcotest.test_case "execution tree well-formed" `Quick
            test_tree_well_formed;
          Alcotest.test_case "tree dot export" `Quick test_tree_dot;
        ] );
      ( "attribution",
        [ Alcotest.test_case "totals" `Quick test_attribution_totals ] );
      ( "artifact",
        [
          Alcotest.test_case "savings json parses" `Quick
            test_artifact_json_parses;
          Alcotest.test_case "analysis json parses" `Quick
            test_analysis_json_parses;
        ] );
    ]
