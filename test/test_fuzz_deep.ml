(* Slow-tier campaigns (`dune build @slow`): the same properties as
   the fast tier, at depths that take minutes rather than seconds.

   - deep lockstep + flow fuzzing with the shared {!Fuzzgen} generator;
   - a full verification campaign (all benchmarks, fault injection,
     shrinking) asserting equivalence and a 100% detectable-fault kill
     score everywhere. *)

module B = Bespoke_programs.Benchmark
module Asm = Bespoke_isa.Asm
module Lockstep = Bespoke_cpu.Lockstep
module System = Bespoke_cpu.System
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Verify = Bespoke_verify.Verify
let core = Bespoke_cpu.Msp430.core

let shared = lazy (Runner.shared_netlist core)

let report_divergence ~seed ~src what detail =
  QCheck.Test.fail_reportf
    "seed %d %s: %s@\n\
     replay: BESPOKE_FUZZ_SEED=%d dune exec test/test_fuzz.exe@\n\
     --- generated assembly (seed %d) ---@\n\
     %s--- end assembly ---"
    seed what detail seed seed src

let test_lockstep_fuzz_deep =
  QCheck.Test.make ~name:"deep lockstep fuzz" ~count:400
    QCheck.(pair (int_bound 10_000_000) (int_bound 0xffff))
    (fun (seed, gpio) ->
      let src = Fuzzgen.program ~seed in
      let img = Asm.assemble src in
      match Lockstep.run ~netlist:(Lazy.force shared) ~gpio_in:gpio img with
      | _ -> true
      | exception Lockstep.Divergence m ->
        report_divergence ~seed ~src
          (Printf.sprintf "(gpio 0x%04x) diverged" gpio) m)

let test_flow_fuzz_deep =
  QCheck.Test.make ~name:"deep flow fuzz" ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let src = Fuzzgen.program ~seed in
      let img = Asm.assemble src in
      let net = Lazy.force shared in
      let sys = System.create ~netlist:net img in
      let report =
        try Activity.analyze sys
        with Activity.Analysis_error m ->
          report_divergence ~seed ~src "analysis failed" m
      in
      let bespoke, _ =
        Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
          ~constants:report.Activity.constant_values
      in
      List.for_all
        (fun gpio ->
          let a = Lockstep.run ~netlist:net ~gpio_in:gpio img in
          let b = Lockstep.run ~netlist:bespoke ~gpio_in:gpio img in
          a.Lockstep.gpio_final = b.Lockstep.gpio_final
          && a.Lockstep.cycles = b.Lockstep.cycles
          && a.Lockstep.outputs = b.Lockstep.outputs)
        [ 0; 0x00ff; 0xa5a5; 0xffff ])

(* Full campaign across every benchmark: the whole three-layer checker
   must declare every tailoring equivalent, and every detectable
   injected fault must be killed with a shrunk repro. *)
let test_full_campaign () =
  let campaigns = Verify.run_campaign ~core ~faults:6 ~seed:1 B.all in
  List.iter
    (fun (c : Verify.campaign) ->
      Alcotest.(check bool)
        (c.Verify.benchmark ^ " equivalent")
        true c.Verify.equivalent;
      let s = Verify.kill_stats c in
      Alcotest.(check (float 0.01))
        (c.Verify.benchmark ^ " detectable kill score")
        100.0
        (Verify.detectable_score_pct s);
      List.iter
        (fun (fr : Verify.fault_result) ->
          match fr.Verify.kill with
          | Verify.Killed_input r ->
            Alcotest.(check bool)
              (c.Verify.benchmark ^ " repro non-empty")
              true
              (r.Bespoke_verify.Shrink.seeds <> [])
          | _ -> ())
        c.Verify.faults)
    campaigns

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bespoke_fuzz_deep"
    [
      ("deep-fuzz", [ qt test_lockstep_fuzz_deep; qt test_flow_fuzz_deep ]);
      ( "deep-verify",
        [ Alcotest.test_case "full campaign" `Slow test_full_campaign ] );
    ]
