(* Validator behind the @obs-smoke alias: given a Chrome-trace JSONL
   file and a metrics snapshot produced by
   `bespoke_cli tailor --trace ... --metrics-out ...`, check that the
   trace is non-empty, every line parses, begin/end events balance per
   thread, and the snapshot parses with a reasonable spread of metric
   names.  Exits non-zero with a message on the first violation. *)

module Obs = Bespoke_obs.Obs

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("obs-smoke: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let json_str k j =
  match Obs.Json.member k j with
  | Some (Obs.Json.Str s) -> s
  | _ -> fail "trace event missing string field %S" k

let json_num k j =
  match Obs.Json.member k j with
  | Some (Obs.Json.Num n) -> n
  | _ -> fail "trace event missing numeric field %S" k

let check_trace path =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (read_file path))
  in
  if lines = [] then fail "trace %s is empty" path;
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Error m -> fail "trace line does not parse (%s): %s" m line
      | Ok j -> (
        let tid = int_of_float (json_num "tid" j) in
        if json_num "ts" j < 0.0 then fail "negative timestamp: %s" line;
        let stack = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
        match json_str "ph" j with
        | "B" -> Hashtbl.replace stacks tid (json_str "name" j :: stack)
        | "E" -> (
          match stack with
          | top :: rest ->
            if top <> json_str "name" j then
              fail "E %S does not close innermost B %S" (json_str "name" j) top;
            Hashtbl.replace stacks tid rest
          | [] -> fail "E with no open span: %s" line)
        | "i" | "M" -> ()
        | ph -> fail "unexpected ph %S" ph))
    lines;
  Hashtbl.iter
    (fun tid stack ->
      if stack <> [] then
        fail "tid %d ends with %d unclosed spans" tid (List.length stack))
    stacks;
  List.length lines

let check_metrics path =
  match Obs.Json.parse (read_file path) with
  | Error m -> fail "metrics %s does not parse: %s" path m
  | Ok j ->
    let section k =
      match Obs.Json.member k j with
      | Some (Obs.Json.Obj fields) -> List.map fst fields
      | _ -> fail "metrics missing %S object" k
    in
    let names =
      List.sort_uniq String.compare
        (section "counters" @ section "gauges" @ section "histograms")
    in
    if List.length names < 8 then
      fail "only %d distinct metric names (want >= 8): %s" (List.length names)
        (String.concat ", " names);
    List.iter
      (fun prefix ->
        if not (List.exists (fun n -> String.starts_with ~prefix n) names) then
          fail "no %S metrics in snapshot" prefix)
      [ "sim."; "analysis."; "cut."; "resynth."; "profiling." ];
    List.length names

let () =
  match Sys.argv with
  | [| _; trace; metrics |] ->
    let n_events = check_trace trace in
    let n_metrics = check_metrics metrics in
    Printf.printf "obs-smoke: OK (%d trace events balanced, %d metrics)\n"
      n_events n_metrics
  | _ ->
    prerr_endline "usage: obs_smoke_check TRACE.jsonl METRICS.json";
    exit 2
