(* Differential equivalence of the compiled word-level engine.

   The event-driven engine is already proven against the full-order
   sweep (test_engine_equiv); here the compiled engine (Engine mode
   Compiled, lib/sim/compile.ml) must be bit-identical to it:

   - every in-tree benchmark runs gate-level under both engines and
     must agree on result words (the RAM the program wrote), cycle
     counts, GPIO and per-gate toggle counts;
   - >= 50 Fuzzgen programs run in full lockstep against the ISS under
     both engines and must produce identical results, including the
     toggle vector;
   - randomized netlists (random DAGs with DFF feedback, random
     ternary stimuli including X) must agree on every gate value at
     every cycle and on final activity — this exercises the scalar
     fallback path, since random DAGs have none of the word structure
     the compiler mines;
   - a tailored (bespoke) design must round-trip identically, covering
     const-X ties and cut stitches;
   - the design-hash memoization must hit on re-creation of the same
     netlist and miss after a single-gate fault mutation. *)

module Bit = Bespoke_logic.Bit
module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate
module Engine = Bespoke_sim.Engine
module Compile = Bespoke_sim.Compile
module Asm = Bespoke_isa.Asm
module Lockstep = Bespoke_cpu.Lockstep
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Fault = Bespoke_verify.Fault
module B = Bespoke_programs.Benchmark
let core = Bespoke_cpu.Msp430.core

(* ------------------------------------------------------------------ *)
(* Benchmarks: event vs compiled outcomes                              *)

let check_outcome_equal name tag (a : Runner.gate_outcome)
    (b : Runner.gate_outcome) =
  Alcotest.(check (list (pair int (option int))))
    (name ^ ": " ^ tag ^ " results") a.Runner.g_results b.Runner.g_results;
  Alcotest.(check int) (name ^ ": " ^ tag ^ " cycles") a.Runner.g_cycles
    b.Runner.g_cycles;
  Alcotest.(check (option int))
    (name ^ ": " ^ tag ^ " gpio") a.Runner.g_gpio_out b.Runner.g_gpio_out;
  Alcotest.(check int)
    (name ^ ": " ^ tag ^ " sim_cycles") a.Runner.sim_cycles b.Runner.sim_cycles;
  Alcotest.(check bool)
    (name ^ ": " ^ tag ^ " toggles")
    true
    (a.Runner.toggles = b.Runner.toggles)

let test_benchmark (b : B.t) () =
  let net = Runner.shared_netlist core in
  List.iter
    (fun seed ->
      let ev = Runner.run_gate ~core ~engine:Runner.Event ~netlist:net b ~seed in
      let co = Runner.run_gate ~core ~engine:Runner.Compiled ~netlist:net b ~seed in
      check_outcome_equal b.B.name (Printf.sprintf "seed %d" seed) ev co)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Fuzzgen programs in lockstep under both engines                     *)

let shared = lazy (Runner.shared_netlist core)

let test_fuzz_programs () =
  let net = Lazy.force shared in
  for seed = 1 to 50 do
    let src = Fuzzgen.program ~seed in
    let img = Asm.assemble src in
    let gpio = (seed * 40503) land 0xffff in
    let run mode = Lockstep.run ~mode ~netlist:net ~gpio_in:gpio img in
    let ev = run Engine.Event and co = run Engine.Compiled in
    if ev <> co then
      Alcotest.failf
        "fuzz seed %d: compiled lockstep differs from event\n\
         (insns %d/%d, cycles %d/%d, gpio %04x/%04x, toggles equal: %b)\n\
         replay: BESPOKE_FUZZ_SEED=%d dune exec test/test_fuzz.exe"
        seed ev.Lockstep.instructions co.Lockstep.instructions
        ev.Lockstep.cycles co.Lockstep.cycles ev.Lockstep.gpio_final
        co.Lockstep.gpio_final
        (ev.Lockstep.toggles = co.Lockstep.toggles)
        seed
  done

(* ------------------------------------------------------------------ *)
(* Random netlists, random ternary stimuli (scalar-fallback stress)    *)

type rng = { mutable s : int }

let next r =
  r.s <- ((r.s * 1103515245) + 12345) land 0x3FFFFFFF;
  (r.s lsr 7) land 0xFFFFFF

let pick r l = List.nth l (next r mod List.length l)

let rand_bit r =
  match next r mod 5 with 0 -> Bit.X | 1 | 2 -> Bit.Zero | _ -> Bit.One

let gen_net seed =
  let r = { s = (seed * 2654435761) lor 1 } in
  let bld = Netlist.Builder.create () in
  let add op fanin =
    Netlist.Builder.add bld { Gate.op; fanin; module_path = ""; drive = 0 }
  in
  let n_in = 3 + (next r mod 4) in
  let inputs = Array.init n_in (fun _ -> add Gate.Input [||]) in
  let consts =
    [ add (Gate.Const Bit.Zero) [||]; add (Gate.Const Bit.One) [||];
      add (Gate.Const Bit.X) [||] ]
  in
  let n_dff = 1 + (next r mod 3) in
  let dffs =
    Array.init n_dff (fun _ ->
        add (Gate.Dff (pick r [ Bit.Zero; Bit.One ])) [| inputs.(0) |])
  in
  let pool = ref (Array.to_list inputs @ consts @ Array.to_list dffs) in
  let n_logic = 20 + (next r mod 40) in
  for _ = 1 to n_logic do
    let op =
      pick r
        [ Gate.Buf; Gate.Not; Gate.And; Gate.Or; Gate.Nand; Gate.Nor;
          Gate.Xor; Gate.Xnor; Gate.Mux ]
    in
    let fanin = Array.init (Gate.arity op) (fun _ -> pick r !pool) in
    let id = add op fanin in
    pool := id :: !pool
  done;
  Array.iter
    (fun id ->
      let g = Netlist.Builder.gate bld id in
      Netlist.Builder.set bld id { g with Gate.fanin = [| pick r !pool |] })
    dffs;
  Netlist.Builder.set_output_port bld "out"
    (Array.of_list (List.filteri (fun i _ -> i < 4) !pool));
  (Netlist.Builder.finish bld, inputs)

let run_diff seed =
  let r = { s = (seed * 48271) lor 1 } in
  let net, inputs = gen_net seed in
  let cycles = 8 + (next r mod 16) in
  let ee = Engine.create ~mode:Event net in
  let ec = Engine.create ~mode:Compiled net in
  Engine.reset ee;
  Engine.reset ec;
  let ng = Netlist.gate_count net in
  for c = 0 to cycles - 1 do
    Array.iter
      (fun id ->
        let b = rand_bit r in
        Engine.set_gate ee id b;
        Engine.set_gate ec id b)
      inputs;
    Engine.eval ee;
    Engine.eval ec;
    for id = 0 to ng - 1 do
      if Engine.value ec id <> Engine.value ee id then
        QCheck.Test.fail_reportf
          "seed %d cycle %d gate %d: compiled value differs" seed c id
    done;
    Engine.commit_cycle ee;
    Engine.commit_cycle ec;
    Engine.step ee;
    Engine.step ec
  done;
  if Engine.toggle_counts ec <> Engine.toggle_counts ee then
    QCheck.Test.fail_reportf "seed %d: compiled toggles differ" seed;
  if Engine.possibly_toggled ec <> Engine.possibly_toggled ee then
    QCheck.Test.fail_reportf "seed %d: compiled possibly-toggled differ" seed;
  true

let test_random_netlists =
  QCheck.Test.make ~name:"random netlists: compiled = event (values + activity)"
    ~count:25
    QCheck.(int_bound 1_000_000)
    run_diff

(* ------------------------------------------------------------------ *)
(* Tailored design: const-X ties and cut stitches                      *)

let test_tailored () =
  let b = B.find "mult" in
  let report, net = Runner.analyze ~core b in
  let bespoke, _ =
    Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values
  in
  List.iter
    (fun seed ->
      let ev = Runner.run_gate ~core ~engine:Runner.Event ~netlist:bespoke b ~seed in
      let co =
        Runner.run_gate ~core ~engine:Runner.Compiled ~netlist:bespoke b ~seed
      in
      check_outcome_equal "mult-bespoke" (Printf.sprintf "seed %d" seed) ev co)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Memoization: hit on re-create, miss after a single-gate mutation    *)

let test_cache () =
  (* the hit/miss counters are global and monotonic (other cases in
     this binary compile too), so assert on deltas from here *)
  Compile.clear_cache ();
  let h0 = Compile.cache_hits () and m0 = Compile.cache_misses () in
  let net = Runner.shared_netlist core in
  let c0 = Compile.create net in
  Alcotest.(check int) "first create misses" (m0 + 1) (Compile.cache_misses ());
  Alcotest.(check int) "first create does not hit" h0 (Compile.cache_hits ());
  Alcotest.(check bool) "first create compiled fresh" false
    (Compile.stats c0).Compile.from_cache;
  let c1 = Compile.create net in
  Alcotest.(check int) "re-create hits" (h0 + 1) (Compile.cache_hits ());
  Alcotest.(check int) "re-create does not recompile" (m0 + 1)
    (Compile.cache_misses ());
  Alcotest.(check bool) "re-create reused the program" true
    (Compile.stats c1).Compile.from_cache;
  (* one mutated gate must change the design hash and miss *)
  let gate =
    let found = ref (-1) in
    Array.iteri
      (fun i (g : Gate.t) ->
        if !found < 0 && g.Gate.op = Gate.And then found := i)
      net.Netlist.gates;
    !found
  in
  Alcotest.(check bool) "found an and gate to mutate" true (gate >= 0);
  let faulty =
    Fault.inject net
      { Fault.id = 0; kind = Fault.Swap_fn; gate; detectable = false;
        desc = "cache-test" }
  in
  let c2 = Compile.create faulty in
  Alcotest.(check int) "mutant misses" (m0 + 2) (Compile.cache_misses ());
  Alcotest.(check int) "mutant does not hit" (h0 + 1) (Compile.cache_hits ());
  Alcotest.(check bool) "mutant compiled fresh" false
    (Compile.stats c2).Compile.from_cache

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "compile_equiv"
    [
      ( "benchmarks",
        List.map
          (fun (b : B.t) ->
            Alcotest.test_case b.B.name `Quick (test_benchmark b))
          B.all );
      ("fuzz", [ Alcotest.test_case "50 fuzz programs" `Quick test_fuzz_programs ]);
      ("random", [ qt test_random_netlists ]);
      ("tailored", [ Alcotest.test_case "bespoke mult" `Quick test_tailored ]);
      ("cache", [ Alcotest.test_case "memoization" `Quick test_cache ]);
    ]
