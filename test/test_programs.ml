module B = Bespoke_programs.Benchmark
module Rtos = Bespoke_programs.Rtos
module Subneg = Bespoke_programs.Subneg
module Asm = Bespoke_isa.Asm
module Iss = Bespoke_isa.Iss
module Runner = Bespoke_core.Runner
let core = Bespoke_cpu.Msp430.core

let all_programs = B.all @ [ Rtos.kernel; Subneg.characterization ]

let test_all_assemble () =
  List.iter
    (fun (b : B.t) ->
      match Asm.assemble b.B.source with
      | _ -> ()
      | exception Asm.Error { line; message } ->
        Alcotest.failf "%s line %d: %s" b.B.name line message)
    all_programs

let test_all_halt_on_iss () =
  List.iter
    (fun (b : B.t) ->
      List.iter
        (fun seed ->
          let o = Runner.run_iss ~core b ~seed in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d ran" b.B.name seed)
            true
            (o.Runner.instructions > 3))
        [ 1; 2; 3 ])
    all_programs

let test_gate_equivalence_each () =
  (* one seed through full ISS-vs-gate lockstep for every program *)
  List.iter
    (fun (b : B.t) -> ignore (Runner.check_equivalence ~core b ~seed:1))
    all_programs

(* functional spot checks against independent OCaml models *)

let results_of b seed =
  let o = Runner.run_iss ~core b ~seed in
  o.Runner.results

let test_div_matches_ocaml () =
  let b = B.find "div" in
  List.iter
    (fun seed ->
      let inputs, _ = b.B.gen_inputs seed in
      let n = List.assoc B.input_base inputs in
      let d = List.assoc (B.input_base + 2) inputs in
      let results = results_of b seed in
      Alcotest.(check int) "quotient" (n / d) (List.assoc B.output_base results);
      Alcotest.(check int) "remainder" (n mod d)
        (List.assoc (B.output_base + 2) results))
    [ 1; 2; 3; 4; 5; 6 ]

let test_insort_checksum () =
  let b = B.find "inSort" in
  List.iter
    (fun seed ->
      let inputs, _ = b.B.gen_inputs seed in
      let sum =
        List.fold_left (fun acc (_, v) -> (acc + v) land 0xffff) 0 inputs
      in
      (* sorting preserves the sum *)
      Alcotest.(check int) "checksum" sum
        (List.assoc B.output_base (results_of b seed)))
    [ 1; 2; 3 ]

let test_intavg_matches_ocaml () =
  let b = B.find "intAVG" in
  let inputs, _ = b.B.gen_inputs 4 in
  let sum = List.fold_left (fun acc (_, v) -> acc + v) 0 inputs in
  (* the program wraps the 16-bit sum then does 4 arithmetic shifts *)
  let wrapped = sum land 0xffff in
  let signed = if wrapped land 0x8000 <> 0 then wrapped - 0x10000 else wrapped in
  let expect = (signed asr 4) land 0xffff in
  Alcotest.(check int) "avg" expect
    (List.assoc B.output_base (results_of b 4))

let test_thold_matches_ocaml () =
  let b = B.find "tHold" in
  List.iter
    (fun seed ->
      let inputs, _ = b.B.gen_inputs seed in
      let above = List.filter (fun (_, v) -> v >= 0x0800) inputs in
      Alcotest.(check int) "count above" (List.length above)
        (List.assoc B.output_base (results_of b seed)))
    [ 1; 2; 3 ]

let test_mult_matches_ocaml () =
  let b = B.find "mult" in
  let inputs, _ = b.B.gen_inputs 2 in
  let x = List.assoc B.input_base inputs in
  let y = List.assoc (B.input_base + 2) inputs in
  let results = results_of b 2 in
  let lo = List.assoc B.output_base results in
  let hi = List.assoc (B.output_base + 2) results in
  Alcotest.(check int) "product" (x * y) ((hi lsl 16) lor lo)

let test_tea8_roundtrip_model () =
  (* independent OCaml TEA implementation, 8 rounds, same keys *)
  let b = B.find "tea8" in
  let inputs, _ = b.B.gen_inputs 1 in
  let get a = List.assoc a inputs in
  let v0 = ref ((get (B.input_base + 2) lsl 16) lor get B.input_base) in
  let v1 = ref ((get (B.input_base + 6) lsl 16) lor get (B.input_base + 4)) in
  let k0 = 0xa341316c and k1 = 0xc8012d90 and k2 = 0xd23ce3e1 and k3 = 0x1b559a8d in
  let delta = 0x9e3779b9 in
  let m = 0xffffffff in
  let sum = ref 0 in
  for _ = 1 to 8 do
    sum := (!sum + delta) land m;
    v0 :=
      (!v0
      + (((!v1 lsl 4) land m) + k0 land m
        |> fun a -> a land m |> fun a -> a lxor ((!v1 + !sum) land m)
        |> fun a -> a lxor (((!v1 lsr 5) + k1) land m)))
      land m;
    v1 :=
      (!v1
      + ((((!v0 lsl 4) + k2) land m)
        |> fun a -> a lxor ((!v0 + !sum) land m)
        |> fun a -> a lxor (((!v0 lsr 5) + k3) land m)))
      land m
  done;
  let results = results_of b 1 in
  let got_v0 =
    (List.assoc (B.output_base + 2) results lsl 16)
    lor List.assoc B.output_base results
  in
  let got_v1 =
    (List.assoc (B.output_base + 6) results lsl 16)
    lor List.assoc (B.output_base + 4) results
  in
  Alcotest.(check int) "v0" !v0 got_v0;
  Alcotest.(check int) "v1" !v1 got_v1

let test_conven_matches_ocaml () =
  let b = B.find "convEn" in
  let inputs, _ = b.B.gen_inputs 3 in
  let bits = List.assoc B.input_base inputs in
  let g0 = ref 0 and g1 = ref 0 and s = ref 0 in
  for i = 15 downto 0 do
    let bit = (bits lsr i) land 1 in
    let s0 = !s land 1 and s1 = (!s lsr 1) land 1 in
    g0 := (!g0 lsl 1) lor (bit lxor s0 lxor s1);
    g1 := (!g1 lsl 1) lor (bit lxor s1);
    s := ((!s lsl 1) lor bit) land 3
  done;
  let results = results_of b 3 in
  Alcotest.(check int) "g0 stream" (!g0 land 0xffff)
    (List.assoc B.output_base results);
  Alcotest.(check int) "g1 stream" (!g1 land 0xffff)
    (List.assoc (B.output_base + 2) results)

let test_autocorr_matches_ocaml () =
  let b = B.find "autocorr" in
  let inputs, _ = b.B.gen_inputs 5 in
  let x = Array.of_list (List.map snd inputs) in
  let results = results_of b 5 in
  List.iteri
    (fun lag _ ->
      if lag < 4 then begin
        let acc = ref 0 in
        for i = 0 to 15 - lag do
          acc := !acc + (x.(i) * x.(i + lag))
        done;
        Alcotest.(check int)
          (Printf.sprintf "lag %d" lag)
          (!acc land 0xffff)
          (List.assoc (B.output_base + (2 * lag)) results)
      end)
    [ 0; 1; 2; 3 ]

let test_conv_viterbi_roundtrip () =
  (* encode 8 data bits with the convEn polynomial, decode with
     Viterbi: the decoder must recover the data when fed the clean
     symbol stream *)
  let data = [ 1; 0; 1; 1; 0; 0; 1; 0 ] in
  let s = ref 0 in
  let symbols =
    List.map
      (fun bit ->
        let s0 = !s land 1 and s1 = (!s lsr 1) land 1 in
        let g0 = bit lxor s0 lxor s1 and g1 = bit lxor s1 in
        s := ((!s lsl 1) lor bit) land 3;
        (g1 lsl 1) lor g0)
      data
  in
  let b = B.find "Viterbi" in
  let custom =
    {
      b with
      B.gen_inputs =
        (fun _ ->
          (List.mapi (fun i sym -> (B.input_base + (2 * i), sym)) symbols, 0));
    }
  in
  let results = results_of custom 1 in
  let decoded = List.assoc B.output_base results in
  let expect =
    List.fold_left (fun acc b -> (acc lsl 1) lor b) 0 data
    |> fun v ->
    (* program emits bit t at position t, msb-first over 8 steps *)
    let rec flip v i acc =
      if i >= 8 then acc
      else flip v (i + 1) (acc lor (((v lsr i) land 1) lsl (7 - i)))
    in
    flip v 0 0
  in
  Alcotest.(check int) "decoded" expect decoded

let test_scrambled_is_same_function () =
  (* scrambled-intFilt permutes the schedule but computes the same FIR *)
  let a = B.find "intFilt" and b = B.find "scrambled-intFilt" in
  List.iter
    (fun seed ->
      let ra = results_of a seed and rb = results_of b seed in
      List.iter2
        (fun (addr, va) (addr', vb) ->
          Alcotest.(check int) "same addr" addr addr';
          Alcotest.(check int) (Printf.sprintf "out[%04x]" addr) va vb)
        ra rb)
    [ 1; 2; 3 ]

let test_rtos_runs_both_tasks () =
  let o = Runner.run_iss ~core Rtos.kernel ~seed:1 in
  let t0 = List.assoc 0x0380 o.Runner.results in
  let t1 = List.assoc 0x0382 o.Runner.results in
  Alcotest.(check bool) "task0 progressed" true (t0 > 0);
  Alcotest.(check bool) "task1 progressed" true (t1 > 0)

let () =
  Alcotest.run "bespoke_programs"
    [
      ( "infrastructure",
        [
          Alcotest.test_case "all assemble" `Quick test_all_assemble;
          Alcotest.test_case "all halt on the ISS" `Quick test_all_halt_on_iss;
          Alcotest.test_case "gate equivalence" `Slow test_gate_equivalence_each;
        ] );
      ( "functional",
        [
          Alcotest.test_case "div" `Quick test_div_matches_ocaml;
          Alcotest.test_case "inSort checksum" `Quick test_insort_checksum;
          Alcotest.test_case "intAVG" `Quick test_intavg_matches_ocaml;
          Alcotest.test_case "tHold" `Quick test_thold_matches_ocaml;
          Alcotest.test_case "mult" `Quick test_mult_matches_ocaml;
          Alcotest.test_case "tea8 vs OCaml TEA" `Quick test_tea8_roundtrip_model;
          Alcotest.test_case "convEn" `Quick test_conven_matches_ocaml;
          Alcotest.test_case "autocorr" `Quick test_autocorr_matches_ocaml;
          Alcotest.test_case "conv->viterbi roundtrip" `Quick
            test_conv_viterbi_roundtrip;
          Alcotest.test_case "scrambled intFilt same function" `Quick
            test_scrambled_is_same_function;
          Alcotest.test_case "rtos tasks" `Quick test_rtos_runs_both_tasks;
        ] );
    ]
