(* The persistent work-stealing pool and the content-addressed flow
   cache: result-order determinism under parallelism, nested
   submission, full exception collection, and cache hit/miss
   correctness across config changes. *)

module Pool = Bespoke_core.Pool
module Flowcache = Bespoke_core.Flowcache
module Runner = Bespoke_core.Runner
module Activity = Bespoke_analysis.Activity
module B = Bespoke_programs.Benchmark
let core = Bespoke_cpu.Msp430.core

let test_map_matches_list_map () =
  let xs = List.init 200 (fun i -> i) in
  let expect = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 8 ]

let test_map_deterministic_order () =
  (* tasks finish out of order (tail tasks are stolen first, and the
     sleeps skew completion), results still come back in input order *)
  let xs = List.init 40 (fun i -> i) in
  for _ = 1 to 5 do
    let got =
      Pool.map ~jobs:4
        (fun x ->
          if x mod 7 = 0 then Unix.sleepf 0.002;
          2 * x)
        xs
    in
    Alcotest.(check (list int)) "order" (List.map (fun x -> 2 * x) xs) got
  done

let test_nested_maps () =
  let outer = List.init 6 (fun i -> i) in
  let got =
    Pool.map ~jobs:3
      (fun i ->
        let inner = List.init 25 (fun j -> j) in
        List.fold_left ( + ) 0 (Pool.map ~jobs:2 (fun j -> (i * j) + 1) inner))
      outer
  in
  let expect =
    List.map
      (fun i ->
        List.fold_left ( + ) 0 (List.init 25 (fun j -> (i * j) + 1)))
      outer
  in
  Alcotest.(check (list int)) "nested" expect got

let test_all_errors_collected () =
  let xs = List.init 20 (fun i -> i) in
  let run jobs =
    match
      Pool.map ~jobs
        (fun x -> if x mod 2 = 1 then failwith (string_of_int x) else x)
        xs
    with
    | _ -> Alcotest.fail "expected Task_errors"
    | exception Pool.Task_errors errs ->
      let idxs = List.map fst errs in
      Alcotest.(check (list int))
        (Printf.sprintf "failed indices jobs=%d" jobs)
        [ 1; 3; 5; 7; 9; 11; 13; 15; 17; 19 ]
        idxs;
      List.iter
        (fun (i, e) ->
          match e with
          | Failure m ->
            Alcotest.(check string) "payload" (string_of_int i) m
          | _ -> Alcotest.fail "expected Failure")
        errs
  in
  (* uniform semantics: sequential and parallel both report every
     failed task, sorted by input index *)
  run 1;
  run 4

let test_task_errors_printer () =
  match Pool.iter ~jobs:2 (fun _ -> failwith "boom") [ 1; 2; 3 ] with
  | () -> Alcotest.fail "expected Task_errors"
  | exception e ->
    let s = Printexc.to_string e in
    Alcotest.(check bool) "printer used" true
      (String.length s >= 16 && String.sub s 0 16 = "Pool.Task_errors")

let test_jobs_override () =
  let hw = Domain.recommended_domain_count () in
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 3;
  Alcotest.(check int) "override, hardware-clamped" (max 1 (min 3 hw))
    (Pool.default_jobs ());
  Pool.set_default_jobs 0;
  Alcotest.(check int) "floor of 1" 1 (Pool.default_jobs ());
  Alcotest.(check int) "clamp_jobs floor" 1 (Pool.clamp_jobs 0);
  Alcotest.(check int) "clamp_jobs cap" (max 1 hw) (Pool.clamp_jobs 1_000);
  Pool.set_default_jobs saved

let test_domains_persist () =
  ignore (Pool.map ~jobs:3 (fun x -> x) [ 1; 2; 3; 4 ]);
  let d1 = Pool.domain_count () in
  Alcotest.(check bool) "workers spawned" true (d1 >= 2);
  ignore (Pool.map ~jobs:3 (fun x -> x) [ 1; 2; 3; 4 ]);
  Alcotest.(check int) "workers reused, not respawned" d1 (Pool.domain_count ())

(* ---- flow cache ---- *)

let test_flowcache_hit_miss () =
  let c = Flowcache.create ~name:"test.basic" () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    !calls
  in
  let v1, hit1 = Flowcache.find_or_compute_report c ~key:"k1" compute in
  let v2, hit2 = Flowcache.find_or_compute_report c ~key:"k1" compute in
  Alcotest.(check (pair int bool)) "first is a miss" (1, false) (v1, hit1);
  Alcotest.(check (pair int bool)) "second is a hit" (1, true) (v2, hit2);
  let v3, hit3 = Flowcache.find_or_compute_report c ~key:"k2" compute in
  Alcotest.(check (pair int bool)) "new key misses" (2, false) (v3, hit3);
  Alcotest.(check int) "hits" 1 (Flowcache.hits c);
  Alcotest.(check int) "misses" 2 (Flowcache.misses c);
  Flowcache.clear c;
  let v4, hit4 = Flowcache.find_or_compute_report c ~key:"k1" compute in
  Alcotest.(check (pair int bool)) "cleared -> miss" (3, false) (v4, hit4)

let test_flowcache_capacity () =
  let c = Flowcache.create ~capacity:2 ~name:"test.cap" () in
  let get k = Flowcache.find_or_compute c ~key:k (fun () -> k) in
  ignore (get "a");
  ignore (get "b");
  ignore (get "c");
  Alcotest.(check int) "capacity bound" 2 (Flowcache.length c);
  (* "a" was evicted (FIFO), so it recomputes *)
  let _, hit = Flowcache.find_or_compute_report c ~key:"a" (fun () -> "a") in
  Alcotest.(check bool) "oldest evicted" false hit

let test_flowcache_digest_distinct () =
  (* the NUL separator keeps part boundaries unambiguous *)
  Alcotest.(check bool) "parts not concatenated" false
    (Flowcache.digest [ "ab"; "c" ] = Flowcache.digest [ "a"; "bc" ])

let test_analyze_cached_config_change () =
  let b = B.find "mult" in
  let (r1, _), hit1 = Runner.analyze_cached ~core b in
  let (r2, _), hit2 = Runner.analyze_cached ~core b in
  Alcotest.(check bool) "second analysis hits" true ((not hit1) || hit2);
  Alcotest.(check bool) "repeat analysis is a hit" true hit2;
  Alcotest.(check int) "same report" r1.Activity.paths r2.Activity.paths;
  (* a config change must miss: same program, different key *)
  let config =
    { (Runner.resolve_analysis_config b) with Activity.max_total_cycles = 4_999 }
  in
  let (r3, _), hit3 = Runner.analyze_cached ~core ~config b in
  Alcotest.(check bool) "changed config misses" false hit3;
  let (_, _), hit4 = Runner.analyze_cached ~core ~config b in
  Alcotest.(check bool) "changed config then hits" true hit4;
  Alcotest.(check int) "mult still fits the budget" r1.Activity.paths
    r3.Activity.paths

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches List.map" `Quick
            test_map_matches_list_map;
          Alcotest.test_case "deterministic result order" `Quick
            test_map_deterministic_order;
          Alcotest.test_case "nested maps" `Quick test_nested_maps;
          Alcotest.test_case "all task errors collected" `Quick
            test_all_errors_collected;
          Alcotest.test_case "Task_errors printer" `Quick
            test_task_errors_printer;
          Alcotest.test_case "set_default_jobs override" `Quick
            test_jobs_override;
          Alcotest.test_case "domains persist across maps" `Quick
            test_domains_persist;
        ] );
      ( "flowcache",
        [
          Alcotest.test_case "hit/miss/clear" `Quick test_flowcache_hit_miss;
          Alcotest.test_case "capacity eviction" `Quick test_flowcache_capacity;
          Alcotest.test_case "digest part boundaries" `Quick
            test_flowcache_digest_distinct;
          Alcotest.test_case "analysis cache across config change" `Quick
            test_analyze_cached_config_change;
        ] );
    ]
