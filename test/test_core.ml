module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate
module Rtl = Bespoke_rtl.Rtl
module Engine = Bespoke_sim.Engine
module Asm = Bespoke_isa.Asm
module System = Bespoke_cpu.System
module Activity = Bespoke_analysis.Activity
module B = Bespoke_programs.Benchmark
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Resynth = Bespoke_core.Resynth
module Usage = Bespoke_core.Usage
module Multi = Bespoke_core.Multi
module Module_prune = Bespoke_core.Module_prune
module Profiling = Bespoke_core.Profiling
let core = Bespoke_cpu.Msp430.core

(* ---- Resynth ---- *)

let eval_output net ~inputs =
  let eng = Engine.create net in
  Engine.reset eng;
  List.iter (fun (n, v) -> Engine.set_input_int eng n v) inputs;
  Engine.eval eng;
  Engine.read_int eng "out"

let test_resynth_preserves_function =
  QCheck.Test.make ~name:"resynth preserves combinational behaviour" ~count:40
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 7))
    (fun (x, y, shape) ->
      let b = Rtl.create_builder () in
      let a = Rtl.input b "a" 8 and c = Rtl.input b "b" 8 in
      let expr =
        match shape land 3 with
        | 0 -> Rtl.add (Rtl.( &: ) a c) (Rtl.( ^: ) a c)
        | 1 -> Rtl.sub (Rtl.( |: ) a c) a
        | 2 -> Rtl.mux2 (Rtl.bit a 0) (Rtl.add a c) (Rtl.sub a c)
        | _ -> Rtl.( ^: ) (Rtl.( ~: ) a) (Rtl.add c c)
      in
      Rtl.output b "out" expr;
      let net = Rtl.synthesize b in
      let opt = Resynth.optimize net in
      eval_output net ~inputs:[ ("a", x); ("b", y) ]
      = eval_output opt ~inputs:[ ("a", x); ("b", y) ])

let test_resynth_folds_constants () =
  (* tying one adder input to zero should collapse it to wires *)
  let b = Rtl.create_builder () in
  let a = Rtl.input b "a" 8 in
  Rtl.output b "out" (Rtl.add a (Rtl.zero 8));
  let opt = Resynth.optimize (Rtl.synthesize b) in
  Alcotest.(check int) "no gates left" 0 (Netlist.num_gates opt)

let test_resynth_removes_stuck_dffs () =
  let b = Rtl.create_builder () in
  let en = Rtl.input b "en" 1 in
  (* a register that can only ever hold its reset value *)
  let q = Rtl.reg b ~enable:en ~init:0 (Rtl.zero 4) in
  Rtl.output b "out" q;
  let opt = Resynth.optimize (Rtl.synthesize b) in
  Alcotest.(check int) "dff gone" 0 (Netlist.num_dffs opt)

let test_resynth_removes_floating () =
  let b = Rtl.create_builder () in
  let a = Rtl.input b "a" 8 in
  let _dead = Rtl.add a (Rtl.constant ~width:8 3) in
  Rtl.output b "out" (Rtl.bit a 0);
  let opt = Resynth.optimize (Rtl.synthesize b) in
  Alcotest.(check int) "only nothing left" 0 (Netlist.num_gates opt)

(* ---- Cut & stitch on the real core ---- *)

let small_prog =
  {|
start:  mov #0x0280, sp
        mov &0x0010, r4
        xor #0x00ff, r4
        mov r4, &0x0012
        halt
|}

let test_cut_preserves_behaviour () =
  let img = Asm.assemble small_prog in
  let net = Runner.shared_netlist core in
  let sys = System.create ~netlist:net img in
  let r = Activity.analyze sys in
  let bespoke, stats =
    Cut.tailor net ~possibly_toggled:r.Activity.possibly_toggled
      ~constants:r.Activity.constant_values
  in
  Alcotest.(check bool) "cut something" true (stats.Cut.cut_gates > 1000);
  Alcotest.(check bool) "smaller" true
    (stats.Cut.bespoke_gates < stats.Cut.original_gates);
  List.iter
    (fun gpio ->
      let a = Bespoke_cpu.Lockstep.run ~netlist:net ~gpio_in:gpio img in
      let b = Bespoke_cpu.Lockstep.run ~netlist:bespoke ~gpio_in:gpio img in
      Alcotest.(check int)
        (Printf.sprintf "gpio %d" gpio)
        a.Bespoke_cpu.Lockstep.gpio_final b.Bespoke_cpu.Lockstep.gpio_final;
      Alcotest.(check int) "same cycles" a.Bespoke_cpu.Lockstep.cycles
        b.Bespoke_cpu.Lockstep.cycles)
    [ 0; 0x5aa5; 0xffff ]

let test_cut_stats_consistent () =
  let img = Asm.assemble small_prog in
  let net = Runner.shared_netlist core in
  let sys = System.create ~netlist:net img in
  let r = Activity.analyze sys in
  let stitched =
    Cut.cut_and_stitch net ~possibly_toggled:r.Activity.possibly_toggled
      ~constants:r.Activity.constant_values
  in
  (* stitching keeps the gate array size; untoggled gates become ties *)
  Alcotest.(check int) "array size stable" (Netlist.gate_count net)
    (Netlist.gate_count stitched);
  Alcotest.(check bool) "fewer real gates" true
    (Netlist.num_gates stitched < Netlist.num_gates net)

(* ---- Usage ---- *)

let test_usage_rows_sum () =
  let net = Runner.shared_netlist core in
  let toggled = Array.make (Netlist.gate_count net) true in
  let rows = Usage.per_module net toggled in
  let total_row = List.find (fun r -> r.Usage.module_name = "(total)") rows in
  Alcotest.(check int) "total = real gates" (Netlist.num_gates net)
    total_row.Usage.total;
  Alcotest.(check int) "all active" total_row.Usage.total total_row.Usage.active

let test_compare_unused () =
  let net = Runner.shared_netlist core in
  let ng = Netlist.gate_count net in
  let ta = Array.make ng true and tb = Array.make ng true in
  (* make 10 real gates untoggled only in A, 5 only in B, 3 in both *)
  let real_ids =
    net.Netlist.gates
    |> Array.to_seqi
    |> Seq.filter_map (fun (i, (g : Gate.t)) ->
           match g.Gate.op with
           | Gate.Input | Gate.Const _ -> None
           | _ -> Some i)
    |> List.of_seq
  in
  let pick n l = List.filteri (fun i _ -> i < n) l in
  let a_only = pick 10 real_ids in
  let rest = List.filteri (fun i _ -> i >= 10) real_ids in
  let b_only = pick 5 rest in
  let both = pick 3 (List.filteri (fun i _ -> i >= 5) rest) in
  List.iter (fun i -> ta.(i) <- false) (a_only @ both);
  List.iter (fun i -> tb.(i) <- false) (b_only @ both);
  let d = Usage.compare_unused net ta tb in
  Alcotest.(check int) "common" 3 d.Usage.common_untoggled;
  Alcotest.(check int) "unique a" 10 d.Usage.unique_a;
  Alcotest.(check int) "unique b" 5 d.Usage.unique_b

(* ---- Multi ---- *)

let test_multi_union_and_support () =
  let mk bools = Array.of_list bools in
  let a = mk [ true; false; true; false ] in
  let b = mk [ false; false; true; true ] in
  let u = Multi.union_toggled [ a; b ] in
  Alcotest.(check bool) "union" true (u = mk [ true; false; true; true ]);
  Alcotest.(check bool) "a supported by union" true
    (Multi.supported ~design_toggled:u ~app_toggled:a);
  Alcotest.(check bool) "union not supported by a" false
    (Multi.supported ~design_toggled:a ~app_toggled:u)

let test_multi_design_runs_both () =
  let b1 = B.find "div" and b2 = B.find "convEn" in
  let net = Runner.shared_netlist core in
  let r1, _ = Runner.analyze ~core b1 and r2, _ = Runner.analyze ~core b2 in
  let design, stats =
    Multi.tailor_multi net
      ~reports:
        [
          (r1.Activity.possibly_toggled, r1.Activity.constant_values);
          (r2.Activity.possibly_toggled, r2.Activity.constant_values);
        ]
  in
  Alcotest.(check bool) "still smaller than baseline" true
    (stats.Cut.bespoke_gates < stats.Cut.original_gates);
  ignore (Runner.check_equivalence ~core ~netlist:design b1 ~seed:3);
  ignore (Runner.check_equivalence ~core ~netlist:design b2 ~seed:3)

(* ---- Module pruning baseline ---- *)

let test_module_prune_coarser_than_fine () =
  let b = B.find "binSearch" in
  let net = Runner.shared_netlist core in
  let r, _ = Runner.analyze ~core b in
  let coarse, removed =
    Module_prune.prune net ~possibly_toggled:r.Activity.possibly_toggled
      ~constants:r.Activity.constant_values
  in
  (* binSearch cannot use the multiplier at all *)
  Alcotest.(check bool) "multiplier removed" true (List.mem "multiplier" removed);
  let fine, _ =
    Cut.tailor net ~possibly_toggled:r.Activity.possibly_toggled
      ~constants:r.Activity.constant_values
  in
  Alcotest.(check bool) "fine-grained is smaller" true
    (Netlist.num_gates fine < Netlist.num_gates coarse);
  Alcotest.(check bool) "coarse is smaller than baseline" true
    (Netlist.num_gates coarse < Netlist.num_gates net);
  (* and the coarse design still runs the program *)
  ignore (Runner.check_equivalence ~core ~netlist:coarse b ~seed:2)

(* ---- Profiling vs analysis ---- *)

let test_profiling_never_exceeds_analysis () =
  (* anything profiled as toggled must be in the analysis exercisable
     set (profiling is a subset of all-input behaviour) *)
  let b = B.find "div" in
  let net = Runner.shared_netlist core in
  let r, _ = Runner.analyze ~core b in
  let p = Profiling.profile ~core ~netlist:net ~seeds:[ 1; 2; 3 ] b in
  let ok = ref true in
  Array.iteri
    (fun i t -> if t && not r.Activity.possibly_toggled.(i) then ok := false)
    p.Profiling.union_toggled;
  Alcotest.(check bool) "profiled toggles within analysis set" true !ok

(* ---- Oracular power gating ---- *)

let test_power_gating_bounds () =
  let b = B.find "binSearch" in
  let pg = Bespoke_core.Power_gating.evaluate ~core ~netlist:(Runner.shared_netlist core) b in
  List.iter
    (fun (m, f) ->
      Alcotest.(check bool) (m ^ " idle fraction in range") true
        (f >= 0.0 && f <= 1.0))
    pg.Bespoke_core.Power_gating.module_idle_fraction;
  (* binSearch never touches the multiplier: idle essentially always *)
  let mult_idle =
    List.assoc "multiplier" pg.Bespoke_core.Power_gating.module_idle_fraction
  in
  Alcotest.(check bool) "multiplier idle" true (mult_idle > 0.99);
  (* the oracle bound is real but small (paper Fig 15: < 13%) *)
  Alcotest.(check bool) "saving positive" true
    (pg.Bespoke_core.Power_gating.power_saving_fraction > 0.0);
  Alcotest.(check bool) "saving modest" true
    (pg.Bespoke_core.Power_gating.power_saving_fraction < 0.25)

let test_power_gating_irq_benchmark () =
  (* regression: the evaluator must drive the IRQ schedule *)
  let b = B.find "irq" in
  let pg = Bespoke_core.Power_gating.evaluate ~core ~netlist:(Runner.shared_netlist core) b in
  Alcotest.(check bool) "completed" true
    (pg.Bespoke_core.Power_gating.power_saving_fraction >= 0.0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bespoke_core"
    [
      ( "resynth",
        [
          qt test_resynth_preserves_function;
          Alcotest.test_case "constant folding" `Quick
            test_resynth_folds_constants;
          Alcotest.test_case "stuck dffs" `Quick test_resynth_removes_stuck_dffs;
          Alcotest.test_case "floating gates" `Quick
            test_resynth_removes_floating;
        ] );
      ( "cut",
        [
          Alcotest.test_case "behaviour preserved" `Slow
            test_cut_preserves_behaviour;
          Alcotest.test_case "stats consistent" `Slow test_cut_stats_consistent;
        ] );
      ( "usage",
        [
          Alcotest.test_case "rows sum" `Quick test_usage_rows_sum;
          Alcotest.test_case "compare unused" `Quick test_compare_unused;
        ] );
      ( "multi",
        [
          Alcotest.test_case "union and support" `Quick
            test_multi_union_and_support;
          Alcotest.test_case "two-app design runs both" `Slow
            test_multi_design_runs_both;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "module pruning" `Slow
            test_module_prune_coarser_than_fine;
          Alcotest.test_case "profiling subset of analysis" `Slow
            test_profiling_never_exceeds_analysis;
          Alcotest.test_case "power gating bounds" `Slow
            test_power_gating_bounds;
          Alcotest.test_case "power gating with irq" `Slow
            test_power_gating_irq_benchmark;
        ] );
    ]
