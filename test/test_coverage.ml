module B = Bespoke_programs.Benchmark
module Coverage = Bespoke_coverage.Coverage
let core = Bespoke_cpu.Msp430.core

let test_straightline_full_coverage () =
  let b = B.find "mult" in
  let s = Coverage.measure ~core b ~seeds:[ 1 ] in
  Alcotest.(check (float 0.01)) "all lines" 100.0 s.Coverage.line_pct;
  (* mult has no conditional branches at all *)
  Alcotest.(check int) "no branches" 0 s.Coverage.branches_total

let test_branchy_program () =
  let b = B.find "binSearch" in
  let s = Coverage.measure ~core b ~seeds:[ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "has branches" true (s.Coverage.branches_total > 2);
  Alcotest.(check bool) "some covered" true (s.Coverage.branch_pct > 0.0);
  Alcotest.(check bool) "lines sane" true
    (s.Coverage.line_pct > 50.0 && s.Coverage.line_pct <= 100.0)

let test_explore_improves_or_matches () =
  let b = B.find "binSearch" in
  let one = Coverage.measure ~core b ~seeds:[ 1 ] in
  let explored = Coverage.explore ~core ~initial:1 ~budget:20 b in
  Alcotest.(check bool) "explore never worse" true
    (explored.Coverage.line_pct +. explored.Coverage.branch_dir_pct
    >= one.Coverage.line_pct +. one.Coverage.branch_dir_pct -. 1e-9)

let test_more_seeds_monotone () =
  let b = B.find "tHold" in
  let s1 = Coverage.measure ~core b ~seeds:[ 1 ] in
  let s2 = Coverage.measure ~core b ~seeds:[ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check bool) "line coverage monotone" true
    (s2.Coverage.line_pct >= s1.Coverage.line_pct -. 1e-9);
  Alcotest.(check bool) "direction coverage monotone" true
    (s2.Coverage.branch_dir_pct >= s1.Coverage.branch_dir_pct -. 1e-9)

let test_explore_deterministic () =
  let b = B.find "binSearch" in
  let a = Coverage.explore ~core ~initial:2 ~budget:15 b in
  let b' = Coverage.explore ~core ~initial:2 ~budget:15 b in
  Alcotest.(check (list int)) "same kept seeds" a.Coverage.kept_seeds
    b'.Coverage.kept_seeds;
  Alcotest.(check (float 1e-9)) "same score" (Coverage.score a)
    (Coverage.score b')

let test_explore_reproducible () =
  (* the reported percentages are a pure function of the kept seeds:
     re-measuring the kept set reproduces them exactly *)
  List.iter
    (fun name ->
      let b = B.find name in
      let explored = Coverage.explore ~core ~initial:2 ~budget:12 b in
      let remeasured = Coverage.measure ~core b ~seeds:explored.Coverage.kept_seeds in
      Alcotest.(check (float 1e-9)) (name ^ " line") explored.Coverage.line_pct
        remeasured.Coverage.line_pct;
      Alcotest.(check (float 1e-9)) (name ^ " branch")
        explored.Coverage.branch_pct remeasured.Coverage.branch_pct;
      Alcotest.(check (float 1e-9)) (name ^ " branch dir")
        explored.Coverage.branch_dir_pct remeasured.Coverage.branch_dir_pct;
      Alcotest.(check int) (name ^ " lines total")
        explored.Coverage.lines_total remeasured.Coverage.lines_total)
    [ "mult"; "tHold" ]

let test_directions_bounded () =
  List.iter
    (fun name ->
      let s = Coverage.measure ~core (B.find name) ~seeds:[ 1; 2 ] in
      Alcotest.(check bool) "pcts in range" true
        (s.Coverage.line_pct <= 100.0
        && s.Coverage.branch_pct <= 100.0
        && s.Coverage.branch_dir_pct <= 100.0))
    [ "div"; "rle"; "convEn"; "irq" ]

let () =
  Alcotest.run "bespoke_coverage"
    [
      ( "coverage",
        [
          Alcotest.test_case "straight line" `Quick test_straightline_full_coverage;
          Alcotest.test_case "branchy program" `Quick test_branchy_program;
          Alcotest.test_case "explore improves" `Quick
            test_explore_improves_or_matches;
          Alcotest.test_case "monotone in seeds" `Quick test_more_seeds_monotone;
          Alcotest.test_case "explore deterministic" `Quick
            test_explore_deterministic;
          Alcotest.test_case "explore reproducible" `Quick
            test_explore_reproducible;
          Alcotest.test_case "bounded" `Quick test_directions_bounded;
        ] );
    ]
