(* Unit tests for the verification-campaign subsystem: shrinking,
   fault injection, a small fixed-seed campaign, and the JSON
   artifact. *)

module B = Bespoke_programs.Benchmark
module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate
module Bit = Bespoke_logic.Bit
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Activity = Bespoke_analysis.Activity
module Lockstep = Bespoke_cpu.Lockstep
module Obs = Bespoke_obs.Obs
module Fault = Bespoke_verify.Fault
module Shrink = Bespoke_verify.Shrink
module Verify = Bespoke_verify.Verify
let core = Bespoke_cpu.Msp430.core

(* --- shrinking ------------------------------------------------------ *)

let test_minimize_single () =
  let calls = ref 0 in
  let failing l = incr calls; List.mem 42 l in
  let r = Shrink.minimize failing [ 3; 17; 42; 5; 9 ] in
  Alcotest.(check (list int)) "only the culprit" [ 42 ] r;
  Alcotest.(check bool) "bounded work" true (!calls < 30)

let test_minimize_pair () =
  (* needs both 1 and 2: greedy must keep exactly those *)
  let failing l = List.mem 1 l && List.mem 2 l in
  let r = Shrink.minimize failing [ 9; 1; 7; 2; 5 ] in
  Alcotest.(check (list int)) "the pair" [ 1; 2 ] r

let test_minimize_keeps_failure () =
  let failing l = List.length l >= 3 in
  let r = Shrink.minimize failing [ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check int) "1-minimal" 3 (List.length r);
  Alcotest.(check bool) "still failing" true (failing r)

let info = { Lockstep.at_insn = 7; at_pc = 0x4400; what = "regs"; detail = "r4" }

let test_of_seeds () =
  let checks = ref 0 in
  let check s = incr checks; if s mod 3 = 0 then Some info else None in
  match Shrink.of_seeds ~check [ 1; 2; 6; 9; 4 ] with
  | None -> Alcotest.fail "divergence lost"
  | Some r ->
    Alcotest.(check int) "single diverging seed" 1 (List.length r.Shrink.seeds);
    Alcotest.(check bool) "a diverging seed" true
      (List.hd r.Shrink.seeds mod 3 = 0);
    Alcotest.(check int) "minimal insn kept" 7 r.Shrink.info.Lockstep.at_insn;
    (* memoized: one co-simulation per distinct seed at most *)
    Alcotest.(check bool) "memoized" true (!checks <= 5)

let test_of_seeds_clean () =
  Alcotest.(check bool) "no divergence, no repro" true
    (Shrink.of_seeds ~check:(fun _ -> None) [ 1; 2; 3 ] = None)

(* --- fault injection ------------------------------------------------ *)

let bespoke_mult =
  lazy
    (let report, net = Runner.analyze ~core (B.find "mult") in
     Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
       ~constants:report.Activity.constant_values
     |> fst)

let all_exercised net =
  Array.map
    (fun (g : Gate.t) ->
      match g.Gate.op with Gate.Input | Gate.Const _ -> 0 | _ -> 1)
    net.Netlist.gates

let test_generate_deterministic () =
  let net = Lazy.force bespoke_mult in
  let toggles = all_exercised net in
  let a = Fault.generate ~core ~seed:3 ~n:8 ~toggles net in
  let b = Fault.generate ~core ~seed:3 ~n:8 ~toggles net in
  Alcotest.(check int) "n faults" 8 (List.length a);
  Alcotest.(check bool) "same seed, same faults" true (a = b);
  let c = Fault.generate ~core ~seed:4 ~n:8 ~toggles net in
  Alcotest.(check bool) "different seed, different draw" true (a <> c);
  (* distinct sites *)
  let sites = List.map (fun f -> f.Fault.gate) a in
  Alcotest.(check int) "no site reused" (List.length sites)
    (List.length (List.sort_uniq compare sites))

let test_inject_one_gate () =
  let net = Lazy.force bespoke_mult in
  let toggles = all_exercised net in
  List.iter
    (fun f ->
      let mutant = Fault.inject net f in
      let changed = ref 0 in
      Array.iteri
        (fun i (g : Gate.t) ->
          if g <> net.Netlist.gates.(i) then incr changed;
          ignore i)
        mutant.Netlist.gates;
      Alcotest.(check int)
        (Printf.sprintf "fault %d (%s) changes one gate" f.Fault.id
           (Fault.kind_name f.Fault.kind))
        1 !changed;
      match f.Fault.kind with
      | Fault.Stuck_at v ->
        Alcotest.(check bool) "stuck gate is a tie" true
          (mutant.Netlist.gates.(f.Fault.gate).Gate.op = Gate.Const v)
      | _ -> ())
    (Fault.generate ~core ~seed:1 ~n:10 ~toggles net)

(* --- a small fixed-seed campaign ------------------------------------ *)

let campaign = lazy (Verify.check_benchmark ~core ~faults:4 ~seed:1 (B.find "mult"))

let test_campaign_equivalent () =
  let c = Lazy.force campaign in
  Alcotest.(check bool) "equivalent" true c.Verify.equivalent;
  Alcotest.(check bool) "symbolic ok" true c.Verify.symbolic.Verify.sym_ok;
  Alcotest.(check bool) "paths compared" true
    (c.Verify.symbolic.Verify.sym_paths >= 1);
  Alcotest.(check bool) "inputs ran" true (c.Verify.inputs <> []);
  Alcotest.(check bool) "no unfaulted divergence" true (c.Verify.repro = None);
  Alcotest.(check bool) "gate coverage positive" true (c.Verify.gate_pct > 0.0);
  Alcotest.(check bool) "bespoke smaller" true
    (c.Verify.gates_bespoke < c.Verify.gates_original)

let test_campaign_kills () =
  let c = Lazy.force campaign in
  let s = Verify.kill_stats c in
  Alcotest.(check int) "all injected" 4 s.Verify.injected;
  Alcotest.(check int) "classes partition the faults" s.Verify.injected
    (s.Verify.killed_input + s.Verify.killed_symbolic + s.Verify.survived);
  Alcotest.(check bool) "a detectable fault was drawn" true
    (s.Verify.detectable >= 1);
  Alcotest.(check (float 0.01)) "detectable kill score" 100.0
    (Verify.detectable_score_pct s);
  List.iter
    (fun fr ->
      match fr.Verify.kill with
      | Verify.Killed_input r ->
        Alcotest.(check bool) "shrunk repro non-empty" true
          (r.Shrink.seeds <> [])
      | _ -> ())
    c.Verify.faults

let test_json_artifact () =
  let c = Lazy.force campaign in
  let json = Verify.to_json [ c ] in
  match Obs.Json.parse json with
  | Error m -> Alcotest.failf "artifact does not parse: %s" m
  | Ok j ->
    let str k o =
      match Obs.Json.member k o with Some (Obs.Json.Str s) -> s | _ -> "" in
    Alcotest.(check string) "schema tag" Verify.schema (str "schema" j);
    (match Obs.Json.member "benchmarks" j with
    | Some (Obs.Json.Arr [ b ]) ->
      Alcotest.(check string) "benchmark name" "mult" (str "name" b);
      Alcotest.(check string) "verdict" "equivalent" (str "verdict" b)
    | _ -> Alcotest.fail "expected one benchmark entry")

let () =
  Alcotest.run "bespoke_verify"
    [
      ( "shrink",
        [
          Alcotest.test_case "minimize to culprit" `Quick test_minimize_single;
          Alcotest.test_case "minimize keeps a pair" `Quick test_minimize_pair;
          Alcotest.test_case "1-minimal result" `Quick test_minimize_keeps_failure;
          Alcotest.test_case "of_seeds shrinks" `Quick test_of_seeds;
          Alcotest.test_case "of_seeds clean" `Quick test_of_seeds_clean;
        ] );
      ( "fault",
        [
          Alcotest.test_case "deterministic draw" `Quick
            test_generate_deterministic;
          Alcotest.test_case "one-gate mutants" `Quick test_inject_one_gate;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "mult equivalent" `Quick test_campaign_equivalent;
          Alcotest.test_case "fault kills" `Quick test_campaign_kills;
          Alcotest.test_case "json artifact" `Quick test_json_artifact;
        ] );
    ]
