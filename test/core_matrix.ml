(* Cross-ISA differential test matrix: every suite below is written
   once, against {!Bespoke_coreapi.Coredef} alone, and instantiated
   for every core in the {!Bespoke_cores.Cores} registry — the proof
   that the flow layers are core-agnostic in behavior, not just in
   type.  Per core the matrix checks:

   - lockstep: every registered benchmark runs gate-level vs. the
     core's ISS golden model, exact architectural state at every
     instruction boundary;
   - engines: full-eval, event-driven, 64-way packed and compiled
     word-level engines are bit-identical on the core's netlist
     (results, cycles, GPIO, per-gate toggle counts);
   - fuzz: the core's seed-replayable random-program generator
     ({!Fuzzgen.program_for}) runs in lockstep; any divergence report
     carries the core name, the seed and the generated assembly, so
     `BESPOKE_FUZZ_SEED=<seed> dune exec test/core_matrix.exe`
     replays it;
   - serialization: the stock and tailored netlists survive a
     to_string/of_string round trip as a byte-identical fixpoint;
   - guard: the cut-assumption shadow watcher stays silent when the
     tailored design replays the very workload it was tailored to.

   Adding a third core to the registry adds a full column to this
   matrix with no new test code. *)

module B = Bespoke_programs.Benchmark
module Netlist = Bespoke_netlist.Netlist
module Serial = Bespoke_netlist.Serial
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Coredef = Bespoke_coreapi.Coredef
module Lockstep = Bespoke_coreapi.Lockstep
module Cores = Bespoke_cores.Cores
module Guard = Bespoke_guard.Guard

(* ------------------------------------------------------------------ *)

module Make (E : sig
  val entry : Cores.entry
end) =
struct
  let core = E.entry.Cores.core
  let cname = core.Coredef.name
  let benches = E.entry.Cores.benchmarks
  let stock = lazy (Runner.shared_netlist core)

  (* a small representative workload for the expensive suites: the
     first registered benchmark *)
  let rep () =
    match benches with
    | b :: _ -> b
    | [] -> Alcotest.failf "core %s registers no benchmarks" cname

  (* lockstep: ISS vs gate level on every registered benchmark *)
  let test_lockstep () =
    List.iter
      (fun (b : B.t) ->
        List.iter
          (fun seed ->
            match Runner.co_simulate ~core b ~seed with
            | Ok _ -> ()
            | Error (d : Lockstep.divergence_info) ->
              Alcotest.failf "%s/%s seed %d diverged at insn %d pc %0*x: %s"
                cname b.B.name seed d.Lockstep.at_insn
                (Coredef.hex_digits core) d.Lockstep.at_pc d.Lockstep.detail)
          [ 1; 2 ])
      benches

  (* engines: all four simulation engines bit-identical *)
  let check_outcome_equal name tag (a : Runner.gate_outcome)
      (b : Runner.gate_outcome) =
    Alcotest.(check (list (pair int (option int))))
      (name ^ ": " ^ tag ^ " results") a.Runner.g_results b.Runner.g_results;
    Alcotest.(check int)
      (name ^ ": " ^ tag ^ " cycles") a.Runner.g_cycles b.Runner.g_cycles;
    Alcotest.(check (option int))
      (name ^ ": " ^ tag ^ " gpio") a.Runner.g_gpio_out b.Runner.g_gpio_out;
    Alcotest.(check int)
      (name ^ ": " ^ tag ^ " sim_cycles")
      a.Runner.sim_cycles b.Runner.sim_cycles;
    Alcotest.(check bool)
      (name ^ ": " ^ tag ^ " toggles")
      true
      (a.Runner.toggles = b.Runner.toggles)

  let test_engines () =
    let net = Lazy.force stock in
    let seeds = [ 1; 2 ] in
    List.iter
      (fun (b : B.t) ->
        let name = cname ^ "/" ^ b.B.name in
        let run engine =
          List.map
            (fun seed -> Runner.run_gate ~core ~engine ~netlist:net b ~seed)
            seeds
        in
        let full = run Runner.Full in
        let event = run Runner.Event in
        let compiled = run Runner.Compiled in
        let packed =
          List.map snd (Runner.run_gate_packed ~core ~netlist:net b ~seeds)
        in
        List.iter2 (check_outcome_equal name "event") full event;
        List.iter2 (check_outcome_equal name "packed") full packed;
        List.iter2 (check_outcome_equal name "compiled") full compiled)
      benches

  (* fuzz: the core's own generator, in lockstep, replayable by seed *)
  let report_divergence ~seed ~src what detail =
    QCheck.Test.fail_reportf
      "core %s seed %d %s: %s@\n\
       replay: BESPOKE_FUZZ_SEED=%d dune exec test/core_matrix.exe@\n\
       --- generated %s assembly (seed %d) ---@\n\
       %s--- end assembly ---"
      cname seed what detail seed cname seed src

  let fuzz_one ~seed ~gpio =
    let src = Fuzzgen.program_for core ~seed in
    match core.Coredef.assemble src with
    | exception e ->
      report_divergence ~seed ~src "generator produced bad asm"
        (Printexc.to_string e)
    | img -> (
      match
        Lockstep.run ~netlist:(Lazy.force stock) ~gpio_in:gpio ~core img
      with
      | _ -> true
      | exception Lockstep.Divergence m ->
        report_divergence ~seed ~src
          (Printf.sprintf "(gpio 0x%04x) diverged" gpio)
          m)

  let test_fuzz =
    QCheck.Test.make
      ~name:(Printf.sprintf "%s random programs run in exact lockstep" cname)
      ~count:25
      QCheck.(pair (int_bound 1_000_000) (int_bound 0xffff))
      (fun (seed, gpio) -> fuzz_one ~seed ~gpio)

  let replay_cases =
    match Sys.getenv_opt "BESPOKE_FUZZ_SEED" with
    | None -> []
    | Some s ->
      let seed = int_of_string s in
      [
        Alcotest.test_case
          (Printf.sprintf "replay seed %d" seed)
          `Quick
          (fun () ->
            let src = Fuzzgen.program_for core ~seed in
            Printf.printf "--- generated %s assembly (seed %d) ---\n%s%!"
              cname seed src;
            ignore (fuzz_one ~seed ~gpio:0));
      ]

  (* serialization: stock and tailored netlists round-trip *)
  let bespoke_of b =
    let report, net = Runner.analyze ~core b in
    Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values

  let roundtrip what net =
    let s1 = Serial.to_string net in
    let net' = Serial.of_string s1 in
    let s2 = Serial.to_string net' in
    Alcotest.(check string) (what ^ " fixpoint") s1 s2;
    Alcotest.(check int)
      (what ^ " gate count")
      (Array.length net.Netlist.gates)
      (Array.length net'.Netlist.gates)

  let test_serial () =
    roundtrip (cname ^ " stock") (Lazy.force stock);
    let b = rep () in
    let bespoke, stats = bespoke_of b in
    Alcotest.(check bool)
      (cname ^ "/" ^ b.B.name ^ " tailoring cuts gates")
      true
      (stats.Cut.bespoke_gates < stats.Cut.original_gates);
    roundtrip (cname ^ " bespoke " ^ b.B.name) bespoke

  (* guard: the shadow watcher is silent on the tailored workload *)
  let test_guard_clean () =
    let b = rep () in
    let report, net = Runner.analyze ~core b in
    let bespoke, _, prov =
      Cut.tailor_explained net
        ~possibly_toggled:report.Activity.possibly_toggled
        ~constants:report.Activity.constant_values
    in
    let plan =
      Guard.plan ~original:net ~bespoke ~prov
        ~possibly_toggled:report.Activity.possibly_toggled
        ~constants:report.Activity.constant_values
    in
    let w = Guard.watch_bespoke plan in
    let r = Guard.replay ~core w ~netlist:bespoke b ~seed:1 in
    (match r.Guard.rp_result with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "%s replay did not halt: %s" cname m);
    Alcotest.(check int)
      (cname ^ " watcher silent on own workload")
      0
      (Guard.total_violations w)

  let suites =
    let tc name f = Alcotest.test_case name `Quick f in
    [
      ( cname,
        [
          tc "lockstep on all benchmarks" test_lockstep;
          tc "four engines bit-identical" test_engines;
          QCheck_alcotest.to_alcotest test_fuzz;
          tc "serialization fixpoint" test_serial;
          tc "guard watcher clean" test_guard_clean;
        ]
        @ replay_cases );
    ]
end

let () =
  let suites =
    List.concat_map
      (fun entry ->
        let module M = Make (struct
          let entry = entry
        end) in
        M.suites)
      Cores.all
  in
  Alcotest.run "core_matrix" suites
