(* Validator behind the @stats-smoke alias: given the three artifacts
   of an instrumented campaign run —

     TRACE     Chrome-trace JSONL from --trace
     METRICS   bespoke-metrics/v1 time series from --metrics-interval
     CAMPAIGN  bespoke-campaign/v1 stream from -o (with --progress)

   plus the rendered `bespoke_cli stats` output over all three, check
   that each artifact has the promised shape: the trace is balanced and
   carries M-phase track metadata plus pool.busy spans, the metrics
   series has a schema header and at least two snapshots whose
   histograms carry p50/p90/p99, the campaign stream contains heartbeat
   records, and the stats rendering mentions all three sections.

   Deliberately robust to a single-core host: no steal spans and no
   multiple worker tracks are required — `--jobs 4` clamps to the
   hardware.  Exits non-zero with a message on the first violation. *)

module Obs = Bespoke_obs.Obs

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("stats-smoke: " ^ m); exit 1) fmt

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let parse_line path line =
  match Obs.Json.parse line with
  | Ok j -> j
  | Error m -> fail "%s: line does not parse: %s (%s)" path m line

let mem k j = Obs.Json.member k j

let num k j =
  match mem k j with
  | Some (Obs.Json.Num n) -> n
  | _ -> fail "missing numeric field %S" k

let str k j =
  match mem k j with
  | Some (Obs.Json.Str s) -> s
  | _ -> fail "missing string field %S" k

(* ---- trace ---- *)

let check_trace path =
  let events = List.map (parse_line path) (read_lines path) in
  if events = [] then fail "%s: empty trace" path;
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 4 in
  let metadata = ref 0 and busy = ref 0 in
  List.iter
    (fun j ->
      let tid = int_of_float (num "tid" j) in
      let name = str "name" j in
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks tid) in
      match str "ph" j with
      | "B" ->
        if name = "pool.busy" then incr busy;
        Hashtbl.replace stacks tid (name :: stack)
      | "E" -> (
        match stack with
        | top :: rest ->
          if top <> name then
            fail "%s: E %S does not close innermost B %S" path name top;
          Hashtbl.replace stacks tid rest
        | [] -> fail "%s: E with no open span" path)
      | "i" -> ()
      | "M" ->
        if name <> "process_name" && name <> "thread_name" then
          fail "%s: unknown metadata event %S" path name;
        incr metadata
      | ph -> fail "%s: unexpected ph %S" path ph)
    events;
  Hashtbl.iter
    (fun tid stack ->
      if stack <> [] then
        fail "%s: tid %d ends with %d unclosed spans" path tid
          (List.length stack))
    stacks;
  if !metadata = 0 then
    fail "%s: no M-phase track metadata — Perfetto tracks would be unnamed"
      path;
  if !busy = 0 then fail "%s: no pool.busy spans from the campaign" path;
  (List.length events, !metadata, !busy)

(* ---- metrics time series ---- *)

let check_metrics path =
  match List.map (parse_line path) (read_lines path) with
  | [] -> fail "%s: empty metrics file" path
  | header :: snaps ->
    if str "schema" header <> Obs.Sampler.schema then
      fail "%s: schema %S, want %S" path (str "schema" header)
        Obs.Sampler.schema;
    if num "interval_ms" header <= 0.0 then fail "%s: interval_ms <= 0" path;
    if List.length snaps < 2 then
      fail "%s: only %d snapshot(s), want >= 2" path (List.length snaps);
    let check_snapshot (prev_seq, prev_ts) s =
      let seq = int_of_float (num "seq" s) in
      let ts = num "ts_us" s in
      if seq <> prev_seq + 1 then
        fail "%s: snapshot seq %d after %d" path seq prev_seq;
      if ts < prev_ts then fail "%s: ts_us goes backwards" path;
      (match mem "metrics" s with
      | Some (Obs.Json.Obj _) -> ()
      | _ -> fail "%s: snapshot %d has no metrics object" path seq);
      (seq, ts)
    in
    ignore (List.fold_left check_snapshot (-1, 0.0) snaps);
    (* the last snapshot's histograms must carry the percentile spread *)
    let last = List.nth snaps (List.length snaps - 1) in
    let metrics = Option.get (mem "metrics" last) in
    let hists =
      match mem "histograms" metrics with
      | Some (Obs.Json.Obj kvs) -> kvs
      | _ -> fail "%s: last snapshot has no histograms section" path
    in
    if hists = [] then fail "%s: histograms section is empty" path;
    List.iter
      (fun (hname, h) ->
        List.iter
          (fun field ->
            match mem field h with
            | Some (Obs.Json.Num _) -> ()
            | _ -> fail "%s: histogram %S lacks %S" path hname field)
          [ "count"; "p50"; "p90"; "p99" ])
      hists;
    (List.length snaps, List.length hists)

(* ---- campaign stream ---- *)

let check_campaign path =
  match List.map (parse_line path) (read_lines path) with
  | [] -> fail "%s: empty campaign stream" path
  | header :: rest ->
    if str "schema" header <> "bespoke-campaign/v1" then
      fail "%s: unexpected schema %S" path (str "schema" header);
    let total = int_of_float (num "total_jobs" header) in
    let heartbeats =
      List.filter
        (fun j ->
          match mem "heartbeat" j with
          | Some (Obs.Json.Bool true) -> true
          | _ -> false)
        rest
    in
    if heartbeats = [] then
      fail "%s: no heartbeat records despite --progress" path;
    List.iter
      (fun h ->
        if num "done" h > float_of_int total then
          fail "%s: heartbeat done exceeds total" path;
        if num "jobs_per_sec" h < 0.0 then
          fail "%s: heartbeat jobs_per_sec < 0" path;
        let r = num "cache_hit_rate" h in
        if r < 0.0 || r > 1.0 then
          fail "%s: heartbeat cache_hit_rate outside [0,1]" path)
      heartbeats;
    let final = List.nth heartbeats (List.length heartbeats - 1) in
    if int_of_float (num "done" final) <> total then
      fail "%s: final heartbeat done %g <> total %d" path (num "done" final)
        total;
    (total, List.length heartbeats)

(* ---- rendered stats output ---- *)

let check_stats_output path =
  let text =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  if String.length text = 0 then fail "%s: stats output is empty" path;
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    if not (go 0) then
      fail "%s: stats output lacks %S" path needle
  in
  (* one marker per aggregated artifact: the span table header, the
     histogram percentile columns, and the campaign heartbeat count *)
  contains "self_ms";
  contains "p50";
  contains "heartbeat";
  contains "pool.busy"

let () =
  match Sys.argv with
  | [| _; trace; metrics; campaign; stats_out |] ->
    let n_events, n_meta, n_busy = check_trace trace in
    let n_snaps, n_hists = check_metrics metrics in
    let n_jobs, n_beats = check_campaign campaign in
    check_stats_output stats_out;
    Printf.printf
      "stats-smoke: OK (%d trace events, %d track name(s), %d pool.busy \
       span(s); %d snapshot(s) x %d histogram(s); %d job(s), %d \
       heartbeat(s))\n"
      n_events n_meta n_busy n_snaps n_hists n_jobs n_beats
  | _ ->
    prerr_endline
      "usage: stats_smoke_check TRACE.jsonl METRICS.jsonl CAMPAIGN.jsonl \
       STATS_OUT.txt";
    exit 2
