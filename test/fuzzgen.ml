(* Deterministic random-program generator, shared by the fuzz tests
   and the verification campaign's fuzz driver.

   Generated programs exercise arbitrary mixes of the ISA (all
   two-op/one-op instructions, byte/word, every addressing mode,
   bounded loops, forward branches, stack traffic, multiplier and GPIO
   access) and always terminate.  The same seed always yields the same
   program, so any failure is reproducible from the seed alone. *)

let scratch = 0x0300  (* 32-word scratch window the programs write *)

(* deterministic PRNG so failures are reproducible from the seed *)
type rng = { mutable s : int }

let next r =
  r.s <- ((r.s * 1103515245) + 12345) land 0x3FFFFFFF;
  (r.s lsr 7) land 0xFFFFFF

let pick r l = List.nth l (next r mod List.length l)
let chance r pct = next r mod 100 < pct

let reg r = pick r [ "r4"; "r5"; "r6"; "r7"; "r8"; "r9"; "r10"; "r11" ]

let imm r =
  pick r [ "#0"; "#1"; "#2"; "#4"; "#8"; Printf.sprintf "#%d" (next r land 0xffff) ]

let scratch_abs r = Printf.sprintf "&0x%04x" (scratch + (next r land 0x3e))
let scratch_idx r = Printf.sprintf "%d(r14)" (next r land 0x3e)

let src r =
  match next r mod 6 with
  | 0 -> reg r
  | 1 | 2 -> imm r
  | 3 -> scratch_abs r
  | 4 -> scratch_idx r
  | _ -> "@r14"

let dst r =
  match next r mod 4 with
  | 0 | 1 -> reg r
  | 2 -> scratch_abs r
  | _ -> scratch_idx r

let two_op r =
  pick r
    [ "mov"; "add"; "addc"; "sub"; "subc"; "cmp"; "dadd"; "bit"; "bic";
      "bis"; "xor"; "and" ]

let size_suffix r = if chance r 25 then ".b" else ""

let gen_instr r buf label_counter =
  match next r mod 12 with
  | 0 | 1 | 2 | 3 | 4 ->
    Buffer.add_string buf
      (Printf.sprintf "        %s%s %s, %s\n" (two_op r) (size_suffix r)
         (src r) (dst r))
  | 5 ->
    let op = pick r [ "rrc"; "rra" ] in
    Buffer.add_string buf
      (Printf.sprintf "        %s%s %s\n" op (size_suffix r) (reg r))
  | 6 ->
    let op = pick r [ "swpb"; "sxt" ] in
    Buffer.add_string buf (Printf.sprintf "        %s %s\n" op (reg r))
  | 7 ->
    (* balanced stack traffic *)
    Buffer.add_string buf
      (Printf.sprintf "        push %s\n        pop %s\n" (src r) (reg r))
  | 8 ->
    (* forward conditional skip *)
    incr label_counter;
    let l = Printf.sprintf "fl%d" !label_counter in
    let cond = pick r [ "jz"; "jnz"; "jc"; "jnc"; "jn"; "jge"; "jl" ] in
    Buffer.add_string buf
      (Printf.sprintf "        %s %s\n        %s %s, %s\n%s:\n" cond l
         (two_op r) (src r) (dst r) l)
  | 9 ->
    (* bounded loop *)
    incr label_counter;
    let l = Printf.sprintf "lp%d" !label_counter in
    let n = 1 + (next r mod 6) in
    Buffer.add_string buf
      (Printf.sprintf
         "        mov #%d, r12\n%s:\n        %s %s, %s\n        dec r12\n        jnz %s\n"
         n l (two_op r) (src r) (reg r) l)
  | 10 ->
    (* hardware multiplier *)
    Buffer.add_string buf
      (Printf.sprintf
         "        mov %s, &0x0130\n        mov %s, &0x0138\n        mov &0x013a, %s\n"
         (src r) (src r) (reg r))
  | _ ->
    (* GPIO *)
    if chance r 50 then
      Buffer.add_string buf
        (Printf.sprintf "        mov &0x0010, %s\n" (reg r))
    else
      Buffer.add_string buf
        (Printf.sprintf "        mov %s, &0x0012\n" (src r))

let program ~seed =
  let r = { s = (seed * 2654435761) lor 1 } in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "start:  mov #0x0400, sp\n";
  Buffer.add_string buf (Printf.sprintf "        mov #0x%04x, r14\n" scratch);
  (* seed some registers and scratch *)
  for i = 4 to 11 do
    Buffer.add_string buf
      (Printf.sprintf "        mov #0x%04x, r%d\n" (next r land 0xffff) i)
  done;
  for i = 0 to 7 do
    Buffer.add_string buf
      (Printf.sprintf "        mov #0x%04x, &0x%04x\n" (next r land 0xffff)
         (scratch + (2 * i)))
  done;
  let label_counter = ref 0 in
  let n = 12 + (next r mod 25) in
  for _ = 1 to n do
    gen_instr r buf label_counter
  done;
  (* publish a checksum so divergence is observable even in registers
     we never compare *)
  Buffer.add_string buf "        mov r4, &0x0380\n";
  Buffer.add_string buf "        halt\n";
  Buffer.contents buf
