(* Core-generic deterministic random-program generator, shared by the
   fuzz tests, the cross-ISA differential matrix and the verification
   campaign's fuzz driver.

   Each core carries its own generator behind
   {!Bespoke_coreapi.Coredef.t.fuzz_program} (the MSP430 one lives in
   [Bespoke_cpu.Msp430.Fuzz], the RV32 one in [Bespoke_rv32.Fuzz]);
   this module only dispatches, so a test that is parameterized over
   cores fuzzes every ISA through one entry point.  Generated programs
   exercise arbitrary mixes of the target ISA and always terminate.
   The same (core, seed) pair always yields the same program, so any
   failure is reproducible from the seed alone — set
   [BESPOKE_FUZZ_SEED] to replay one. *)

module Coredef = Bespoke_coreapi.Coredef

let program_for (core : Coredef.t) ~seed = core.Coredef.fuzz_program ~seed

(* Back-compat entry point: the MSP430 generator, as the original
   single-core fuzz tiers use it. *)
let program ~seed = program_for Bespoke_cpu.Msp430.core ~seed
