(* Dependency-boundary check: the core-agnostic flow layers —
   lib/core, lib/analysis, lib/verify, lib/guard — must depend on
   {!Bespoke_coreapi.Coredef} alone, never on a concrete core.  Any
   [Bespoke_cpu.]/[Bespoke_isa.] reference in their sources, or a
   [bespoke_cpu]/[bespoke_isa] entry in their dune library lists,
   fails the build: that is how a second core stays a drop-in and a
   third one becomes possible. *)

let layers = [ "core"; "analysis"; "verify"; "guard" ]
let forbidden_src = [ "Bespoke_cpu."; "Bespoke_isa." ]
let forbidden_dep = [ "bespoke_cpu"; "bespoke_isa" ]

let lib_root =
  if Sys.file_exists "lib" && Sys.is_directory "lib" then "lib"
  else Filename.concat ".." "lib"

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let violations = ref []

let scan_file ~patterns path =
  let body = read_file path in
  List.iter
    (fun needle ->
      String.split_on_char '\n' body
      |> List.iteri (fun i line ->
             if contains ~needle line then
               violations :=
                 Printf.sprintf "%s:%d references %s" path (i + 1) needle
                 :: !violations))
    patterns

let () =
  let files = ref 0 in
  List.iter
    (fun layer ->
      let dir = Filename.concat lib_root layer in
      if not (Sys.file_exists dir) then (
        Printf.eprintf "boundary-check: missing layer directory %s\n" dir;
        exit 1);
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"
          then begin
            incr files;
            scan_file ~patterns:forbidden_src path
          end
          else if f = "dune" then begin
            incr files;
            scan_file ~patterns:forbidden_dep path
          end)
        (Sys.readdir dir))
    layers;
  match !violations with
  | [] ->
    Printf.printf
      "boundary-check: %d file(s) in lib/{%s} are core-agnostic (no \
       Bespoke_cpu/Bespoke_isa references)\n"
      !files
      (String.concat "," layers)
  | vs ->
    List.iter (fun v -> Printf.eprintf "boundary-check: %s\n" v)
      (List.rev vs);
    Printf.eprintf
      "boundary-check: the flow layers must target Coredef, not a \
       concrete core\n";
    exit 1
