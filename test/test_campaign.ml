(* The campaign engine: crash isolation (a raising job becomes an
   error record, every other job completes), JSONL schema, job-list
   parsing, warm-rerun caching, and input-order results. *)

module Campaign = Bespoke_campaign.Campaign
module B = Bespoke_programs.Benchmark
module Json = Bespoke_obs.Obs.Json

(* A benchmark whose execution raises mid-campaign: the source
   assembles, but input generation explodes when a job runs it. *)
let crashing =
  let mult = B.find "mult" in
  {
    mult with
    B.name = "crashing";
    description = "raises during input generation";
    gen_inputs = (fun _ -> failwith "deliberate mid-campaign crash");
  }

let jobs_mixed =
  [
    Campaign.job ~kind:Campaign.Analyze (Campaign.Named "mult");
    Campaign.job ~kind:Campaign.Run ~seed:2 (Campaign.Inline crashing);
    Campaign.job ~kind:Campaign.Tailor (Campaign.Named "mult");
    Campaign.job ~kind:Campaign.Analyze (Campaign.Named "no-such-bench");
    Campaign.job ~kind:Campaign.Run ~seed:2 (Campaign.Named "mult");
  ]

let test_crash_isolation () =
  List.iter
    (fun jobs ->
      let outcomes, summary = Campaign.run ~jobs jobs_mixed in
      Alcotest.(check int)
        (Printf.sprintf "total jobs=%d" jobs)
        5 summary.Campaign.total;
      Alcotest.(check int) "ok" 3 summary.Campaign.ok;
      Alcotest.(check int) "failed" 2 summary.Campaign.failed;
      (* outcomes in input order, each index matching its position *)
      List.iteri
        (fun i o -> Alcotest.(check int) "index" i o.Campaign.o_index)
        outcomes;
      let status_of i = (List.nth outcomes i).Campaign.status in
      Alcotest.(check bool) "job 0 ok" true (Result.is_ok (status_of 0));
      Alcotest.(check bool) "crashing job errors" true
        (Result.is_error (status_of 1));
      Alcotest.(check bool) "job after the crash ok" true
        (Result.is_ok (status_of 2));
      Alcotest.(check bool) "unknown benchmark errors" true
        (Result.is_error (status_of 3));
      Alcotest.(check bool) "last job ok" true (Result.is_ok (status_of 4));
      (match status_of 1 with
      | Error m ->
        Alcotest.(check bool) "error text survives" true
          (String.length m > 0)
      | Ok _ -> assert false))
    [ 1; 3 ]

let test_streaming_and_jsonl () =
  let lines = ref [] in
  let outcomes, summary =
    Campaign.run ~jobs:2
      ~on_outcome:(fun o -> lines := Campaign.outcome_jsonl o :: !lines)
      jobs_mixed
  in
  Alcotest.(check int) "one stream line per job" (List.length outcomes)
    (List.length !lines);
  let header =
    Json.parse
      (Campaign.header_jsonl ~jobs:2 ~cores:[ "msp430" ]
         ~total:summary.Campaign.total)
  in
  (match header with
  | Ok j ->
    Alcotest.(check bool) "schema" true
      (Json.member "schema" j = Some (Json.Str "bespoke-campaign/v1"))
  | Error m -> Alcotest.fail ("header does not parse: " ^ m));
  List.iter
    (fun line ->
      match Json.parse line with
      | Error m -> Alcotest.fail ("outcome line does not parse: " ^ m)
      | Ok j ->
        let has f = Json.member f j <> None in
        List.iter
          (fun f ->
            Alcotest.(check bool) (f ^ " present") true (has f))
          [ "job"; "kind"; "bench"; "status"; "time_s"; "cached" ];
        (match Json.member "status" j with
        | Some (Json.Str "ok") ->
          Alcotest.(check bool) "ok line has payload" true (has "payload")
        | Some (Json.Str "error") ->
          Alcotest.(check bool) "error line has error" true (has "error")
        | _ -> Alcotest.fail "status is neither ok nor error"))
    !lines;
  match Json.parse (Campaign.summary_jsonl summary) with
  | Ok j ->
    Alcotest.(check bool) "summary failed count" true
      (Json.member "failed" j = Some (Json.Num 2.0))
  | Error m -> Alcotest.fail ("summary does not parse: " ^ m)

let test_warm_rerun_cached () =
  let jobs =
    [
      Campaign.job ~kind:Campaign.Analyze (Campaign.Named "mult");
      Campaign.job ~kind:Campaign.Tailor (Campaign.Named "mult");
    ]
  in
  ignore (Campaign.run ~jobs:1 jobs);
  let outcomes, summary = Campaign.run ~jobs:1 jobs in
  Alcotest.(check int) "all jobs served from the flow cache"
    summary.Campaign.total summary.Campaign.cache_hits;
  List.iter
    (fun o -> Alcotest.(check bool) "cached flag" true o.Campaign.cached)
    outcomes

let test_parse_line () =
  (match Campaign.parse_line "analyze mult" with
  | Ok (Some j) ->
    Alcotest.(check string) "kind" "analyze"
      (Campaign.kind_to_string j.Campaign.kind);
    Alcotest.(check string) "bench" "mult"
      (Campaign.program_name j.Campaign.program)
  | _ -> Alcotest.fail "plain line");
  (match Campaign.parse_line "  verify mult seed=7 faults=4 engine=event " with
  | Ok (Some j) ->
    Alcotest.(check int) "seed" 7 j.Campaign.seed;
    Alcotest.(check int) "faults" 4 j.Campaign.faults
  | _ -> Alcotest.fail "options line");
  (match Campaign.parse_line "# a comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment line");
  (match Campaign.parse_line "   " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank line");
  (match Campaign.parse_line "tailor mult seed=xyz" with
  | Error _ -> ()
  | _ -> Alcotest.fail "bad seed must be a parse error");
  match Campaign.parse_line "frobnicate mult" with
  | Error _ -> ()
  | _ -> Alcotest.fail "unknown kind must be a parse error"

let () =
  Alcotest.run "campaign"
    [
      ( "campaign",
        [
          Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
          Alcotest.test_case "streaming JSONL" `Quick test_streaming_and_jsonl;
          Alcotest.test_case "warm rerun is fully cached" `Quick
            test_warm_rerun_cached;
          Alcotest.test_case "job-list parsing" `Quick test_parse_line;
        ] );
    ]
