(* Validator behind the @campaign-smoke alias: parse the JSONL stream
   emitted by `bespoke_cli campaign`, check the schema-versioned
   header, every per-job record (status, timing, payload/error
   discipline), the presence of at least one error record (the smoke
   job list deliberately includes a job that fails — crash isolation
   must turn it into a record, not a dead campaign), and the trailing
   summary arithmetic.  Exits non-zero on the first violation. *)

module Obs = Bespoke_obs.Obs

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("campaign-smoke: " ^ m); exit 1) fmt

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let mem k j =
  match Obs.Json.member k j with
  | Some v -> v
  | None -> fail "missing field %S" k

let str k j =
  match mem k j with Obs.Json.Str s -> s | _ -> fail "field %S is not a string" k

let num k j =
  match mem k j with Obs.Json.Num n -> n | _ -> fail "field %S is not a number" k

let bool_ k j =
  match mem k j with Obs.Json.Bool b -> b | _ -> fail "field %S is not a bool" k

let kinds = [ "analyze"; "tailor"; "report"; "verify"; "run"; "guard" ]

(* records stream in completion order, so the job index is not the
   record position — each index must simply appear exactly once *)
let check_job total i j =
  let idx = int_of_float (num "job" j) in
  if idx < 0 || idx >= total then
    fail "record %d carries job index %d outside [0, %d)" i idx total;
  if not (List.mem (str "kind" j) kinds) then
    fail "record %d: unknown kind %S" i (str "kind" j);
  if str "bench" j = "" then fail "record %d: empty bench name" i;
  if num "time_s" j < 0.0 then fail "record %d: negative time_s" i;
  ignore (bool_ "cached" j);
  match str "status" j with
  | "ok" ->
    (match mem "payload" j with
    | Obs.Json.Obj [] -> fail "record %d: ok with an empty payload" i
    | Obs.Json.Obj _ -> ()
    | _ -> fail "record %d: payload is not an object" i);
    (idx, `Ok)
  | "error" ->
    if str "error" j = "" then fail "record %d: error record with no message" i;
    (idx, `Error)
  | s -> fail "record %d: status %S is neither ok nor error" i s

let () =
  if Array.length Sys.argv <> 2 then fail "usage: campaign_smoke_check FILE.jsonl";
  let parsed =
    List.map
      (fun line ->
        match Obs.Json.parse line with
        | Ok j -> j
        | Error m -> fail "line does not parse: %s (%s)" m line)
      (read_lines Sys.argv.(1))
  in
  (* heartbeat records (from --progress) interleave with outcomes;
     validate them separately, then hold the outcome stream to the
     original discipline *)
  let is_heartbeat j =
    match Obs.Json.member "heartbeat" j with
    | Some (Obs.Json.Bool true) -> true
    | _ -> false
  in
  let heartbeats, parsed = List.partition is_heartbeat parsed in
  let _ =
    List.fold_left
      (fun prev_seq h ->
        let seq = int_of_float (num "seq" h) in
        if seq <= prev_seq then
          fail "heartbeat seq %d not increasing (previous %d)" seq prev_seq;
        if num "done" h > num "total" h then
          fail "heartbeat done %g exceeds total %g" (num "done" h)
            (num "total" h);
        if num "jobs_per_sec" h < 0.0 then fail "heartbeat jobs_per_sec < 0";
        let rate = num "cache_hit_rate" h in
        if rate < 0.0 || rate > 1.0 then
          fail "heartbeat cache_hit_rate %g outside [0,1]" rate;
        seq)
      (-1) heartbeats
  in
  match parsed with
  | [] | [ _ ] | [ _; _ ] -> fail "stream too short: want header, jobs, summary"
  | header :: rest ->
    if str "schema" header <> "bespoke-campaign/v1" then
      fail "unexpected schema tag %S" (str "schema" header);
    let total = int_of_float (num "total_jobs" header) in
    if num "jobs" header < 1.0 then fail "header jobs < 1";
    let records, summary =
      match List.rev rest with
      | s :: r -> (List.rev r, s)
      | [] -> fail "no summary line"
    in
    if List.length records <> total then
      fail "header promises %d jobs, stream carries %d records" total
        (List.length records);
    let checked = List.mapi (check_job total) records in
    let seen = List.sort compare (List.map fst checked) in
    if seen <> List.init total (fun i -> i) then
      fail "job indices are not a permutation of 0..%d" (total - 1);
    let statuses = List.map snd checked in
    let count s = List.length (List.filter (( = ) s) statuses) in
    if count `Error < 1 then
      fail "no error record: the smoke job list includes a failing job, \
            crash isolation must surface it";
    if count `Ok < 1 then fail "no job succeeded";
    if not (bool_ "summary" summary) then fail "last line is not the summary";
    if int_of_float (num "total" summary) <> total then
      fail "summary total %g disagrees with header %d" (num "total" summary)
        total;
    if num "ok" summary <> float_of_int (count `Ok) then
      fail "summary ok %g disagrees with the stream (%d)" (num "ok" summary)
        (count `Ok);
    if num "failed" summary <> float_of_int (count `Error) then
      fail "summary failed %g disagrees with the stream (%d)"
        (num "failed" summary) (count `Error);
    if num "ok" summary +. num "failed" summary <> num "total" summary then
      fail "summary ok + failed <> total";
    if num "wall_s" summary < 0.0 then fail "summary wall_s negative";
    Printf.printf
      "campaign-smoke: %d record(s) validated (%d ok, %d error, %d \
       heartbeat(s))\n"
      total (count `Ok) (count `Error) (List.length heartbeats)
