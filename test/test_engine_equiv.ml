(* Differential equivalence of the three simulation engines.

   The full-order sweep (Engine mode Full) is the reference semantics;
   the event-driven engine (mode Event) and the 64-way bit-parallel
   engine (Engine64) must be bit-identical to it:

   - every benchmark runs gate-level under all three engines and must
     agree on result words, cycle counts, GPIO and per-gate toggle
     counts;
   - randomized netlists (random DAGs with DFF feedback, driven by
     random ternary stimuli including X) must agree on every gate
     value at every cycle, and on final toggle counts and
     possibly-toggled marks, lane by lane;
   - reset and restore_dff_state must discard partially-propagated
     event state: interleaving un-evaluated input writes with reset /
     restore must leave Event indistinguishable from Full. *)

module Bit = Bespoke_logic.Bit
module Netlist = Bespoke_netlist.Netlist
module Gate = Bespoke_netlist.Gate
module Engine = Bespoke_sim.Engine
module Engine64 = Bespoke_sim.Engine64
module Runner = Bespoke_core.Runner
module B = Bespoke_programs.Benchmark
let core = Bespoke_cpu.Msp430.core

(* ------------------------------------------------------------------ *)
(* Benchmarks under all three engines                                  *)

let check_outcome_equal name tag (a : Runner.gate_outcome)
    (b : Runner.gate_outcome) =
  Alcotest.(check (list (pair int (option int))))
    (name ^ ": " ^ tag ^ " results") a.Runner.g_results b.Runner.g_results;
  Alcotest.(check int) (name ^ ": " ^ tag ^ " cycles") a.Runner.g_cycles
    b.Runner.g_cycles;
  Alcotest.(check (option int))
    (name ^ ": " ^ tag ^ " gpio") a.Runner.g_gpio_out b.Runner.g_gpio_out;
  Alcotest.(check int)
    (name ^ ": " ^ tag ^ " sim_cycles") a.Runner.sim_cycles b.Runner.sim_cycles;
  Alcotest.(check bool)
    (name ^ ": " ^ tag ^ " toggles")
    true
    (a.Runner.toggles = b.Runner.toggles)

let test_benchmark (b : B.t) () =
  let net = Runner.shared_netlist core in
  let seeds = [ 1; 2 ] in
  let full =
    List.map
      (fun s -> Runner.run_gate ~core ~engine:Runner.Full ~netlist:net b ~seed:s)
      seeds
  in
  let event =
    List.map
      (fun s -> Runner.run_gate ~core ~engine:Runner.Event ~netlist:net b ~seed:s)
      seeds
  in
  let packed = List.map snd (Runner.run_gate_packed ~core ~netlist:net b ~seeds) in
  List.iter2 (check_outcome_equal b.B.name "event") full event;
  List.iter2 (check_outcome_equal b.B.name "packed") full packed

(* ------------------------------------------------------------------ *)
(* Random netlists, random ternary stimuli                             *)

type rng = { mutable s : int }

let next r =
  r.s <- ((r.s * 1103515245) + 12345) land 0x3FFFFFFF;
  (r.s lsr 7) land 0xFFFFFF

let pick r l = List.nth l (next r mod List.length l)

let rand_bit r =
  match next r mod 5 with 0 -> Bit.X | 1 | 2 -> Bit.Zero | _ -> Bit.One

(* Random DAG: inputs, consts (incl. a tied X), a few DFFs whose [d]
   pins are patched to arbitrary gates afterwards (sequential feedback
   allowed), then a layer of random combinational gates. *)
let gen_net seed =
  let r = { s = (seed * 2654435761) lor 1 } in
  let bld = Netlist.Builder.create () in
  let add op fanin =
    Netlist.Builder.add bld { Gate.op; fanin; module_path = ""; drive = 0 }
  in
  let n_in = 3 + (next r mod 4) in
  let inputs = Array.init n_in (fun _ -> add Gate.Input [||]) in
  let consts =
    [ add (Gate.Const Bit.Zero) [||]; add (Gate.Const Bit.One) [||];
      add (Gate.Const Bit.X) [||] ]
  in
  let n_dff = 1 + (next r mod 3) in
  let dffs =
    Array.init n_dff (fun _ ->
        add (Gate.Dff (pick r [ Bit.Zero; Bit.One ])) [| inputs.(0) |])
  in
  let pool = ref (Array.to_list inputs @ consts @ Array.to_list dffs) in
  let n_logic = 20 + (next r mod 40) in
  for _ = 1 to n_logic do
    let op =
      pick r
        [ Gate.Buf; Gate.Not; Gate.And; Gate.Or; Gate.Nand; Gate.Nor;
          Gate.Xor; Gate.Xnor; Gate.Mux ]
    in
    let fanin = Array.init (Gate.arity op) (fun _ -> pick r !pool) in
    let id = add op fanin in
    pool := id :: !pool
  done;
  (* patch DFF data pins now that the whole gate pool exists *)
  Array.iter
    (fun id ->
      let g = Netlist.Builder.gate bld id in
      Netlist.Builder.set bld id { g with Gate.fanin = [| pick r !pool |] })
    dffs;
  Netlist.Builder.set_output_port bld "out"
    (Array.of_list (List.filteri (fun i _ -> i < 4) !pool));
  (Netlist.Builder.finish bld, inputs)

(* Drive [lanes] pre-generated stimulus sequences through one Full and
   one Event scalar engine per lane plus a single packed engine, and
   require identical values every cycle and identical activity at the
   end. *)
let run_diff seed =
  let r = { s = (seed * 48271) lor 1 } in
  let net, inputs = gen_net seed in
  let lanes = 1 + (next r mod 8) in
  let cycles = 8 + (next r mod 16) in
  let stim =
    Array.init lanes (fun _ ->
        Array.init cycles (fun _ ->
            Array.init (Array.length inputs) (fun _ -> rand_bit r)))
  in
  let fulls = Array.init lanes (fun _ -> Engine.create ~mode:Full net) in
  let events = Array.init lanes (fun _ -> Engine.create ~mode:Event net) in
  let packed = Engine64.create ~lanes net in
  Array.iter Engine.reset fulls;
  Array.iter Engine.reset events;
  Engine64.reset packed;
  let ng = Netlist.gate_count net in
  for c = 0 to cycles - 1 do
    for lane = 0 to lanes - 1 do
      Array.iteri
        (fun k id ->
          Engine.set_gate fulls.(lane) id stim.(lane).(c).(k);
          Engine.set_gate events.(lane) id stim.(lane).(c).(k);
          Engine64.set_gate_lane packed id lane stim.(lane).(c).(k))
        inputs
    done;
    Array.iter Engine.eval fulls;
    Array.iter Engine.eval events;
    Engine64.eval packed;
    for lane = 0 to lanes - 1 do
      for id = 0 to ng - 1 do
        let vf = Engine.value fulls.(lane) id in
        if Engine.value events.(lane) id <> vf then
          QCheck.Test.fail_reportf
            "seed %d cycle %d lane %d gate %d: event value differs" seed c
            lane id;
        if Engine64.value_lane packed id lane <> vf then
          QCheck.Test.fail_reportf
            "seed %d cycle %d lane %d gate %d: packed value differs" seed c
            lane id
      done
    done;
    Array.iter Engine.commit_cycle fulls;
    Array.iter Engine.commit_cycle events;
    Engine64.commit_cycle packed;
    Array.iter Engine.step fulls;
    Array.iter Engine.step events;
    Engine64.step packed
  done;
  for lane = 0 to lanes - 1 do
    let tf = Engine.toggle_counts fulls.(lane) in
    if Engine.toggle_counts events.(lane) <> tf then
      QCheck.Test.fail_reportf "seed %d lane %d: event toggles differ" seed lane;
    if Engine64.toggle_counts_lane packed lane <> tf then
      QCheck.Test.fail_reportf "seed %d lane %d: packed toggles differ" seed lane;
    let pf = Engine.possibly_toggled fulls.(lane) in
    if Engine.possibly_toggled events.(lane) <> pf then
      QCheck.Test.fail_reportf "seed %d lane %d: event possibly differ" seed lane;
    if Engine64.possibly_toggled_lane packed lane <> pf then
      QCheck.Test.fail_reportf "seed %d lane %d: packed possibly differ" seed lane
  done;
  true

let test_random_netlists =
  QCheck.Test.make ~name:"random netlists: full = event = packed (all lanes)"
    ~count:25
    QCheck.(int_bound 1_000_000)
    run_diff

(* All 63 lanes at once, one fixed case. *)
let test_full_width () =
  let net, inputs = gen_net 7 in
  let r = { s = 0x1234567 } in
  let lanes = Engine64.max_lanes in
  let cycles = 6 in
  let scalars = Array.init lanes (fun _ -> Engine.create ~mode:Full net) in
  let packed = Engine64.create ~lanes net in
  Array.iter Engine.reset scalars;
  Engine64.reset packed;
  for _ = 1 to cycles do
    for lane = 0 to lanes - 1 do
      Array.iter
        (fun id ->
          let b = rand_bit r in
          Engine.set_gate scalars.(lane) id b;
          Engine64.set_gate_lane packed id lane b)
        inputs
    done;
    Array.iter Engine.eval scalars;
    Engine64.eval packed;
    Array.iter Engine.commit_cycle scalars;
    Engine64.commit_cycle packed;
    Array.iter Engine.step scalars;
    Engine64.step packed
  done;
  for lane = 0 to lanes - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "lane %d toggles" lane)
      true
      (Engine64.toggle_counts_lane packed lane = Engine.toggle_counts scalars.(lane));
    Alcotest.(check bool)
      (Printf.sprintf "lane %d possibly" lane)
      true
      (Engine64.possibly_toggled_lane packed lane
      = Engine.possibly_toggled scalars.(lane))
  done

(* ------------------------------------------------------------------ *)
(* Reset / restore must invalidate partially-propagated event state    *)

let drive_and_compare name ef ee inputs r cycles =
  let ng = Netlist.gate_count (Engine.netlist ef) in
  for c = 1 to cycles do
    Array.iter
      (fun id ->
        let b = rand_bit r in
        Engine.set_gate ef id b;
        Engine.set_gate ee id b)
      inputs;
    Engine.eval ef;
    Engine.eval ee;
    for id = 0 to ng - 1 do
      if Engine.value ee id <> Engine.value ef id then
        Alcotest.failf "%s: cycle %d gate %d: event diverges from full" name c
          id
    done;
    Engine.commit_cycle ef;
    Engine.commit_cycle ee;
    Engine.step ef;
    Engine.step ee
  done;
  Alcotest.(check bool) (name ^ ": toggles") true
    (Engine.toggle_counts ee = Engine.toggle_counts ef);
  Alcotest.(check bool) (name ^ ": possibly") true
    (Engine.possibly_toggled ee = Engine.possibly_toggled ef)

let test_reset_after_partial () =
  let net, inputs = gen_net 42 in
  let ef = Engine.create ~mode:Full net in
  let ee = Engine.create ~mode:Event net in
  let r = { s = 0xbeef1 } in
  Engine.reset ef;
  Engine.reset ee;
  (* settle one stimulus, then write new inputs WITHOUT eval: the event
     engine now holds a non-empty dirty queue which reset must discard *)
  Array.iter
    (fun id ->
      Engine.set_gate ef id Bit.One;
      Engine.set_gate ee id Bit.One)
    inputs;
  Engine.eval ef;
  Engine.eval ee;
  Array.iter
    (fun id ->
      Engine.set_gate ef id Bit.Zero;
      Engine.set_gate ee id Bit.Zero)
    inputs;
  Engine.reset ef;
  Engine.reset ee;
  drive_and_compare "reset-after-partial" ef ee inputs r 8

let test_restore_after_partial () =
  let net, inputs = gen_net 99 in
  let ef = Engine.create ~mode:Full net in
  let ee = Engine.create ~mode:Event net in
  let r = { s = 0xcafe3 } in
  Engine.reset ef;
  Engine.reset ee;
  drive_and_compare "restore: warm-up" ef ee inputs r 4;
  let st = Engine.dff_state ef in
  Alcotest.(check bool) "dff snapshots agree" true (st = Engine.dff_state ee);
  (* pending un-evaluated input writes, then snapshot restore: the
     event engine must re-settle from the restored state, not from the
     stale queue *)
  Array.iter
    (fun id ->
      Engine.set_gate ef id Bit.X;
      Engine.set_gate ee id Bit.X)
    inputs;
  Engine.restore_dff_state ef st;
  Engine.restore_dff_state ee st;
  Engine.sync_prev ef;
  Engine.sync_prev ee;
  let ng = Netlist.gate_count net in
  for id = 0 to ng - 1 do
    if Engine.value ee id <> Engine.value ef id then
      Alcotest.failf "restore: gate %d differs right after restore" id
  done;
  drive_and_compare "restore: after" ef ee inputs r 8

let test_packed_reset_after_partial () =
  let net, inputs = gen_net 17 in
  let scalar = Engine.create ~mode:Full net in
  let packed = Engine64.create ~lanes:3 net in
  Engine.reset scalar;
  Engine64.reset packed;
  Array.iter
    (fun id ->
      Engine.set_gate scalar id Bit.One;
      Engine64.set_gate_lane packed id 1 Bit.One)
    inputs;
  Engine.eval scalar;
  Engine64.eval packed;
  (* dirty, un-evaluated writes... *)
  Array.iter
    (fun id ->
      Engine.set_gate scalar id Bit.Zero;
      Engine64.set_gate_lane packed id 1 Bit.Zero)
    inputs;
  (* ...then reset must make every lane a fresh X-input settle *)
  Engine.reset scalar;
  Engine64.reset packed;
  let ng = Netlist.gate_count net in
  for lane = 0 to 2 do
    for id = 0 to ng - 1 do
      if Engine64.value_lane packed id lane <> Engine.value scalar id then
        Alcotest.failf "packed reset: lane %d gate %d differs" lane id
    done
  done

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine_equiv"
    [
      ( "benchmarks",
        List.map
          (fun (b : B.t) ->
            Alcotest.test_case b.B.name `Quick (test_benchmark b))
          B.table1 );
      ( "random",
        [ qt test_random_netlists;
          Alcotest.test_case "63 lanes vs 63 scalar runs" `Quick
            test_full_width ] );
      ( "invalidate",
        [
          Alcotest.test_case "reset after partial propagation" `Quick
            test_reset_after_partial;
          Alcotest.test_case "restore_dff_state after partial propagation"
            `Quick test_restore_after_partial;
          Alcotest.test_case "packed reset after partial propagation" `Quick
            test_packed_reset_after_partial;
        ] );
    ]
