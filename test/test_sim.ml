module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Rtl = Bespoke_rtl.Rtl
module Engine = Bespoke_sim.Engine
module Memory = Bespoke_sim.Memory
module Vcd = Bespoke_sim.Vcd

(* ---- Engine activity tracking ---- *)

let counter_net () =
  let b = Rtl.create_builder () in
  let en = Rtl.input b "en" 1 in
  let count = Rtl.wire 4 in
  let q = Rtl.reg b ~enable:en ~init:0 (Rtl.add count (Rtl.constant ~width:4 1)) in
  Rtl.( <== ) count q;
  Rtl.output b "q" q;
  Rtl.synthesize b

let test_toggle_counting () =
  let eng = Engine.create (counter_net ()) in
  Engine.reset eng;
  Engine.set_input_int eng "en" 1;
  Engine.eval eng;
  Engine.commit_cycle eng;
  for _ = 1 to 8 do
    Engine.step eng;
    Engine.commit_cycle eng
  done;
  let q_ids = Bespoke_netlist.Netlist.find_output (Engine.netlist eng) "q" in
  let toggles = Engine.toggle_counts eng in
  (* Bit 0 of a counter flips every cycle; bit 3 flips once (at 8). *)
  Alcotest.(check int) "bit0 toggles" 8 toggles.(q_ids.(0));
  Alcotest.(check int) "bit3 toggles" 1 toggles.(q_ids.(3))

let test_possibly_toggled_x () =
  let eng = Engine.create (counter_net ()) in
  Engine.reset eng;
  Engine.set_input_x eng "en";
  Engine.eval eng;
  Engine.commit_cycle eng;
  Engine.step eng;
  Engine.commit_cycle eng;
  let q_ids = Bespoke_netlist.Netlist.find_output (Engine.netlist eng) "q" in
  let poss = Engine.possibly_toggled eng in
  (* With an unknown enable the counter value is unknown: exercisable. *)
  Alcotest.(check bool) "bit0 possibly toggled" true poss.(q_ids.(0))

let test_held_means_untoggled () =
  let eng = Engine.create (counter_net ()) in
  Engine.reset eng;
  Engine.set_input_int eng "en" 0;
  Engine.eval eng;
  Engine.commit_cycle eng;
  for _ = 1 to 5 do
    Engine.step eng;
    Engine.commit_cycle eng
  done;
  let q_ids = Bespoke_netlist.Netlist.find_output (Engine.netlist eng) "q" in
  let poss = Engine.possibly_toggled eng in
  Array.iter
    (fun id -> Alcotest.(check bool) "held reg untoggled" false poss.(id))
    q_ids

let test_dff_state_roundtrip () =
  let eng = Engine.create (counter_net ()) in
  Engine.reset eng;
  Engine.set_input_int eng "en" 1;
  Engine.eval eng;
  Engine.step eng;
  Engine.step eng;
  let s = Engine.dff_state eng in
  Engine.step eng;
  Engine.step eng;
  Alcotest.(check (option int)) "advanced" (Some 4) (Engine.read_int eng "q");
  Engine.restore_dff_state eng s;
  Alcotest.(check (option int)) "restored" (Some 2) (Engine.read_int eng "q")

(* ---- Memory ---- *)

let v16 = Bvec.of_int ~width:16
let mask_all = v16 0xffff

let test_mem_rw () =
  let m = Memory.create ~words:64 ~width:16 ~init:Bit.Zero in
  Memory.write m ~addr:(Bvec.of_int ~width:6 5) ~data:(v16 0xbeef)
    ~mask:mask_all ~en:Bit.One;
  Alcotest.(check (option int)) "read back" (Some 0xbeef)
    (Bvec.to_int (Memory.read m (Bvec.of_int ~width:6 5)));
  Alcotest.(check (option int)) "other word" (Some 0)
    (Bvec.to_int (Memory.read m (Bvec.of_int ~width:6 6)))

let test_mem_byte_mask () =
  let m = Memory.create ~words:16 ~width:16 ~init:Bit.Zero in
  Memory.load_int m 3 0x1234;
  Memory.write m ~addr:(Bvec.of_int ~width:4 3) ~data:(v16 0xabcd)
    ~mask:(v16 0x00ff) ~en:Bit.One;
  Alcotest.(check (option int)) "low byte written" (Some 0x12cd)
    (Bvec.to_int (Memory.read_word m 3))

let test_mem_x_enable_merges () =
  let m = Memory.create ~words:16 ~width:16 ~init:Bit.Zero in
  Memory.load_int m 2 0x00ff;
  Memory.write m ~addr:(Bvec.of_int ~width:4 2) ~data:(v16 0x0ff0)
    ~mask:mask_all ~en:Bit.X;
  let w = Memory.read_word m 2 in
  (* old 0x00ff vs new 0x0ff0: agreeing bits (15-12 zero, 7-4 one)
     stay known; disagreeing bits become X *)
  Alcotest.(check string) "merged" "0000xxxx1111xxxx"
    (String.lowercase_ascii (Bvec.to_string w))

let test_mem_x_addr_read () =
  let m = Memory.create ~words:8 ~width:8 ~init:Bit.Zero in
  Memory.load_int m 0 0xaa;
  Memory.load_int m 1 0xab;
  let addr = Bvec.of_string "00x" in
  let r = Memory.read m addr in
  (* words 0 and 1: 0xaa / 0xab differ only in bit 0 *)
  Alcotest.(check string) "merged read" "1010101x" (Bvec.to_string r)

let test_mem_x_addr_write () =
  let m = Memory.create ~words:4 ~width:8 ~init:Bit.Zero in
  Memory.load_int m 0 0x00;
  Memory.load_int m 1 0x00;
  Memory.load_int m 2 0x77;
  Memory.load_int m 3 0x77;
  let addr = Bvec.of_string "x0" in
  (* candidates: 0 and 2 *)
  Memory.write m ~addr ~data:(Bvec.of_int ~width:8 0xff) ~mask:(Bvec.of_int ~width:8 0xff)
    ~en:Bit.One;
  Alcotest.(check string) "word0 merged" "xxxxxxxx"
    (Bvec.to_string (Memory.read_word m 0));
  Alcotest.(check string) "word2 merged" "x111x111"
    (Bvec.to_string (Memory.read_word m 2));
  Alcotest.(check (option int)) "word1 untouched" (Some 0)
    (Bvec.to_int (Memory.read_word m 1))

let test_mem_snapshots () =
  let m = Memory.create ~words:8 ~width:8 ~init:Bit.Zero in
  Memory.load_int m 1 42;
  let s1 = Memory.snapshot m in
  Memory.load_int m 1 43;
  let s2 = Memory.snapshot m in
  Alcotest.(check bool) "not equal" false (Memory.equal_snapshot s1 s2);
  let merged = Memory.merge_snapshot s1 s2 in
  Alcotest.(check bool) "merged subsumes s1" true
    (Memory.subsumes ~general:merged ~specific:s1);
  Alcotest.(check bool) "merged subsumes s2" true
    (Memory.subsumes ~general:merged ~specific:s2);
  Memory.restore m s1;
  Alcotest.(check (option int)) "restored" (Some 42)
    (Bvec.to_int (Memory.read_word m 1))

let test_mem_set_x_range () =
  let m = Memory.create ~words:8 ~width:8 ~init:Bit.Zero in
  Memory.set_x_range m ~lo:2 ~hi:3;
  Alcotest.(check bool) "x region" false (Bvec.is_known (Memory.read_word m 2));
  Alcotest.(check bool) "outside known" true (Bvec.is_known (Memory.read_word m 4))

(* Conservative-write soundness: a ternary write with X in the
   address, data, mask or enable must leave the memory subsuming every
   concrete outcome. *)
let gen_tern width =
  QCheck.Gen.(
    list_size (return width) (frequencyl [ (4, Bit.Zero); (4, Bit.One); (2, Bit.X) ])
    |> map Array.of_list)

let test_mem_conservative_write =
  QCheck.Test.make ~name:"ternary write subsumes all concrete outcomes"
    ~count:150
    (QCheck.make
       QCheck.Gen.(
         let* addr = gen_tern 3 in
         let* data = gen_tern 8 in
         let* mask = gen_tern 8 in
         let* en = oneofl [ Bit.Zero; Bit.One; Bit.X ] in
         return (addr, data, mask, en)))
    (fun (addr, data, mask, en) ->
      QCheck.assume
        (Bvec.count_x addr + Bvec.count_x data + Bvec.count_x mask
         + (if Bit.is_known en then 0 else 1)
        <= 5);
      let init = Array.init 8 (fun i -> (i * 37) land 0xff) in
      let tern = Memory.create ~words:8 ~width:8 ~init:Bit.Zero in
      List.iteri (fun i v -> Memory.load_int tern i v) (Array.to_list init);
      Memory.write tern ~addr ~data ~mask ~en;
      (* every concrete choice of the unknowns *)
      let concrete_cases =
        List.concat_map
          (fun a ->
            List.concat_map
              (fun d ->
                List.concat_map
                  (fun m ->
                    List.map (fun e -> (a, d, m, e)) (Bit.concretizations en))
                  (Bvec.concretizations mask))
              (Bvec.concretizations data))
          (Bvec.concretizations addr)
      in
      List.for_all
        (fun (a, d, m, e) ->
          let model = Array.copy init in
          (if Bit.equal e Bit.One then
             let idx = Bvec.to_int_exn a in
             let dv = Bvec.to_int_exn d and mv = Bvec.to_int_exn m in
             model.(idx) <- (model.(idx) land lnot mv) lor (dv land mv));
          (* each model word must be subsumed by the ternary word *)
          Array.for_all (fun x -> x)
            (Array.mapi
               (fun w v ->
                 Bvec.subsumes ~general:(Memory.read_word tern w)
                   ~specific:(Bvec.of_int ~width:8 v))
               model))
        concrete_cases)

(* qcheck: memory write/read with known addresses behaves like an array *)
let test_mem_model =
  QCheck.Test.make ~name:"memory matches array model" ~count:200
    QCheck.(small_list (pair (int_bound 15) (int_bound 0xffff)))
    (fun writes ->
      let m = Memory.create ~words:16 ~width:16 ~init:Bit.Zero in
      let model = Array.make 16 0 in
      List.iter
        (fun (a, d) ->
          Memory.write m ~addr:(Bvec.of_int ~width:4 a) ~data:(v16 d)
            ~mask:mask_all ~en:Bit.One;
          model.(a) <- d)
        writes;
      List.for_all
        (fun a -> Bvec.to_int (Memory.read_word m a) = Some model.(a))
        (List.init 16 (fun i -> i)))

(* ---- VCD writer ---- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_vcd_header () =
  let eng = Engine.create (counter_net ()) in
  Engine.reset eng;
  let buf = Buffer.create 256 in
  let _ = Vcd.create buf eng ~signals:[ "en"; "q" ] in
  let hdr = Buffer.contents buf in
  Alcotest.(check bool) "timescale" true (contains ~sub:"$timescale" hdr);
  Alcotest.(check bool) "scope" true
    (contains ~sub:"$scope module bespoke $end" hdr);
  Alcotest.(check bool) "en is 1 bit" true
    (contains ~sub:"$var wire 1 ! en $end" hdr);
  Alcotest.(check bool) "q is 4 bits" true
    (contains ~sub:"$var wire 4 \" q $end" hdr);
  Alcotest.(check bool) "enddefinitions" true
    (contains ~sub:"$enddefinitions $end" hdr)

(* A design with more named signals than there are single-character
   VCD identifiers (94): every $var must still get a unique code. *)
let test_vcd_codes_unique () =
  let n = 100 in
  let b = Rtl.create_builder () in
  let first = Rtl.input b "s0" 1 in
  for i = 1 to n - 1 do
    ignore (Rtl.input b (Printf.sprintf "s%d" i) 1)
  done;
  Rtl.output b "y" first;
  let eng = Engine.create (Rtl.synthesize b) in
  Engine.reset eng;
  let buf = Buffer.create 4096 in
  let _ =
    Vcd.create buf eng ~signals:(List.init n (fun i -> Printf.sprintf "s%d" i))
  in
  let codes =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "$var"; "wire"; _w; code; _name; "$end" ] -> Some code
        | _ -> None)
      (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check int) "one $var per signal" n (List.length codes);
  Alcotest.(check int) "all codes distinct" n
    (List.length (List.sort_uniq String.compare codes));
  Alcotest.(check bool) "codes past 94 are multi-character" true
    (List.exists (fun c -> String.length c > 1) codes)

let test_vcd_x_values () =
  let eng = Engine.create (counter_net ()) in
  Engine.reset eng;
  Engine.set_input_x eng "en";
  Engine.eval eng;
  let buf = Buffer.create 256 in
  let vcd = Vcd.create buf eng ~signals:[ "en"; "q" ] in
  Vcd.sample vcd ~time:0;
  (* en is unknown: its scalar dump must use the VCD 'x' value *)
  Alcotest.(check bool) "x dumped" true
    (contains ~sub:"\nx!\n" (Buffer.contents buf))

let test_vcd_change_only () =
  let eng = Engine.create (counter_net ()) in
  Engine.reset eng;
  Engine.set_input_int eng "en" 0;
  Engine.eval eng;
  let buf = Buffer.create 256 in
  let vcd = Vcd.create buf eng ~signals:[ "en"; "q" ] in
  Vcd.sample vcd ~time:0;
  Engine.step eng;
  (* enable held low: nothing changed, so no #1 timestamp block *)
  Vcd.sample vcd ~time:1;
  Engine.set_input_int eng "en" 1;
  Engine.eval eng;
  Engine.step eng;
  Vcd.sample vcd ~time:2;
  Vcd.finish vcd ~time:3;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "initial dump" true (contains ~sub:"#0\n" s);
  Alcotest.(check bool) "no block for unchanged cycle" false
    (contains ~sub:"#1\n" s);
  Alcotest.(check bool) "changed cycle dumped" true (contains ~sub:"#2\n" s);
  Alcotest.(check bool) "final timestamp" true (contains ~sub:"#3\n" s)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bespoke_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "toggle counting" `Quick test_toggle_counting;
          Alcotest.test_case "x marks possibly-toggled" `Quick
            test_possibly_toggled_x;
          Alcotest.test_case "held is untoggled" `Quick test_held_means_untoggled;
          Alcotest.test_case "dff state roundtrip" `Quick test_dff_state_roundtrip;
        ] );
      ( "memory",
        [
          Alcotest.test_case "read/write" `Quick test_mem_rw;
          Alcotest.test_case "byte mask" `Quick test_mem_byte_mask;
          Alcotest.test_case "x enable merges" `Quick test_mem_x_enable_merges;
          Alcotest.test_case "x addr read" `Quick test_mem_x_addr_read;
          Alcotest.test_case "x addr write" `Quick test_mem_x_addr_write;
          Alcotest.test_case "snapshots" `Quick test_mem_snapshots;
          Alcotest.test_case "set x range" `Quick test_mem_set_x_range;
          qt test_mem_model;
          qt test_mem_conservative_write;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "header well-formed" `Quick test_vcd_header;
          Alcotest.test_case "identifier codes unique past 94" `Quick
            test_vcd_codes_unique;
          Alcotest.test_case "x values dumped" `Quick test_vcd_x_values;
          Alcotest.test_case "change-only emission" `Quick test_vcd_change_only;
        ] );
    ]
