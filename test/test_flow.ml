(* End-to-end integration: the complete bespoke flow — symbolic
   analysis, cut & stitch, re-synthesis — followed by both of the
   paper's verification procedures, for a representative slice of the
   benchmark suite (the full sweep lives in the bench harness). *)

module B = Bespoke_programs.Benchmark
module Netlist = Bespoke_netlist.Netlist
module System = Bespoke_cpu.System
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Sta = Bespoke_power.Sta
module Voltage = Bespoke_power.Voltage
module Report = Bespoke_power.Report
let core = Bespoke_cpu.Msp430.core

let flow_test (b : B.t) () =
  let report, net = Runner.analyze ~core b in
  let bespoke, stats =
    Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values
  in
  (* sane savings *)
  Alcotest.(check bool) "cut a substantial fraction" true
    (float_of_int stats.Cut.bespoke_gates
    < 0.8 *. float_of_int stats.Cut.original_gates);
  Alcotest.(check bool) "area shrank" true
    (stats.Cut.bespoke_area < stats.Cut.original_area);
  (* timing: the bespoke design never gets slower *)
  let sta0 = Sta.analyze net and sta1 = Sta.analyze bespoke in
  Alcotest.(check bool) "no slower" true
    (sta1.Sta.critical_path_ps <= sta0.Sta.critical_path_ps +. 1e-6);
  let vmin =
    Voltage.vmin ~critical_path_ps:sta1.Sta.critical_path_ps
      ~period_ps:sta0.Sta.critical_path_ps
  in
  Alcotest.(check bool) "vmin within range" true
    (vmin >= Bespoke_cells.Cells.vdd_floor -. 1e-9 && vmin <= 1.0 +. 1e-9);
  (* power at vmin is cheaper than at nominal *)
  let pw vdd =
    (Report.power ~vdd ~freq_hz:1e8
       ~toggles:(Array.make (Netlist.gate_count bespoke) 1)
       ~cycles:1 bespoke)
      .Report.total_nw
  in
  Alcotest.(check bool) "voltage scaling saves power" true
    (pw vmin <= pw 1.0 +. 1e-9);
  (* verification 1: input-based equivalence over several input sets *)
  List.iter
    (fun seed -> ignore (Runner.check_equivalence ~core ~netlist:bespoke b ~seed))
    [ 1; 2; 3 ];
  (* verification 2: symbolic shadow through the same execution tree *)
  let sys = System.create (B.image b) in
  let sh = System.create ~netlist:bespoke (B.image b) in
  let config =
    {
      Activity.default_config with
      Activity.ram_x_ranges = b.B.input_ranges;
      irq_x = b.B.uses_irq;
    }
  in
  ignore (Activity.analyze ~config ~shadow:sh sys)

let subset = [ "div"; "tHold"; "convEn"; "irq" ]

let () =
  Alcotest.run "bespoke_flow"
    [
      ( "end-to-end",
        List.map
          (fun name ->
            Alcotest.test_case name `Slow (flow_test (B.find name)))
          subset );
    ]
