(* Validator behind the @report-smoke alias: parse the JSON savings
   artifact emitted by `bespoke_cli report --json` (with the same
   minimal reader used for the telemetry smoke) and check the schema
   tag, the shape of every benchmark entry, and that the derived
   percentages and attribution totals are arithmetically consistent
   with the raw numbers.  Exits non-zero on the first violation. *)

module Obs = Bespoke_obs.Obs

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("report-smoke: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let mem k j =
  match Obs.Json.member k j with
  | Some v -> v
  | None -> fail "missing field %S" k

let str k j = match mem k j with Obs.Json.Str s -> s | _ -> fail "field %S is not a string" k
let num k j = match mem k j with Obs.Json.Num n -> n | _ -> fail "field %S is not a number" k

let arr k j =
  match mem k j with Obs.Json.Arr l -> l | _ -> fail "field %S is not an array" k

let close a b = Float.abs (a -. b) <= 0.05 +. (1e-4 *. Float.abs b)

let check_savings name what j =
  let original = num "original" j and bespoke = num "bespoke" j in
  if original <= 0.0 then fail "%s: %s.original is not positive" name what;
  if bespoke < 0.0 || bespoke > original then
    fail "%s: %s.bespoke %g outside [0, original %g]" name what bespoke original;
  let expect = 100.0 *. (1.0 -. (bespoke /. original)) in
  let got = num "saved_pct" j in
  if not (close got expect) then
    fail "%s: %s.saved_pct %g does not match original/bespoke (%g)" name what
      got expect;
  (original, bespoke)

let check_bench b =
  let name = str "name" b in
  let gates = mem "gates" b in
  let go, gb = check_savings name "gates" gates in
  let cut = num "cut" gates in
  if cut < 0.0 || cut > go then fail "%s: gates.cut %g out of range" name cut;
  let ao, _ = check_savings name "area_um2" (mem "area_um2" b) in
  let _ = check_savings name "leakage_nw" (mem "leakage_nw" b) in
  let timing = mem "timing" b in
  if num "critical_ps_bespoke" timing > num "critical_ps_original" timing then
    fail "%s: bespoke critical path longer than the original" name;
  if num "vmin_v" timing <= 0.0 then fail "%s: non-positive Vmin" name;
  if num "cycles" (mem "analysis" b) <= 0.0 then
    fail "%s: analysis simulated no cycles" name;
  (* cut-reason histogram partitions the original real gates *)
  let reasons =
    match mem "cut_reasons" b with
    | Obs.Json.Obj fields -> fields
    | _ -> fail "%s: cut_reasons is not an object" name
  in
  let count k =
    match List.assoc_opt k reasons with Some (Obs.Json.Num n) -> n | _ -> 0.0
  in
  let total =
    List.fold_left
      (fun acc (_, v) ->
        match v with Obs.Json.Num n -> acc +. n | _ -> acc)
      0.0 reasons
  in
  if total <> go then
    fail "%s: cut reasons sum to %g, design has %g gates" name total go;
  if count "kept" +. count "downsized" <> gb then
    fail "%s: kept + downsized does not equal the bespoke gate count" name;
  if count "never-toggled" <> cut then
    fail "%s: never-toggled %g does not match gates.cut %g" name
      (count "never-toggled") cut;
  (* the (total) attribution row agrees with the top-level numbers *)
  let modules = arr "modules" b in
  match
    List.find_opt (fun m -> str "module" m = "(total)") modules
  with
  | None -> fail "%s: no (total) attribution row" name
  | Some t ->
    if num "gates_original" t <> go then
      fail "%s: attribution total gates %g != %g" name
        (num "gates_original" t) go;
    if num "gates_bespoke" t <> gb then
      fail "%s: attribution bespoke gates %g != %g" name
        (num "gates_bespoke" t) gb;
    if not (close (num "area_original_um2" t) ao) then
      fail "%s: attribution total area %g != %g" name
        (num "area_original_um2" t) ao

let () =
  if Array.length Sys.argv <> 2 then fail "usage: report_smoke_check FILE.json";
  match Obs.Json.parse (read_file Sys.argv.(1)) with
  | Error m -> fail "artifact does not parse: %s" m
  | Ok j ->
    if str "schema" j <> "bespoke-report/v1" then
      fail "unexpected schema tag %S" (str "schema" j);
    ignore (str "generator" j);
    let benches = arr "benchmarks" j in
    if benches = [] then fail "artifact lists no benchmarks";
    List.iter check_bench benches;
    Printf.printf "report-smoke: %d benchmark(s) validated\n"
      (List.length benches)
