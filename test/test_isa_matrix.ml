(* Exhaustive instruction matrix: every two-operand opcode crossed
   with every source addressing mode, destination mode and operand
   size, plus every one-operand opcode across its modes — each cell a
   small program run in full gate-vs-ISS lockstep (registers, RAM,
   cycles).  This pins down the entire ISA surface, not just the paths
   the benchmarks happen to take. *)

module Asm = Bespoke_isa.Asm
module Lockstep = Bespoke_cpu.Lockstep
module Runner = Bespoke_core.Runner
let core = Bespoke_cpu.Msp430.core

let two_ops =
  [ "mov"; "add"; "addc"; "subc"; "sub"; "cmp"; "dadd"; "bit"; "bic"; "bis";
    "xor"; "and" ]

(* source operand spellings; r7 holds a scratch pointer *)
let src_modes =
  [
    ("reg", "r5");
    ("imm-cg", "#4");
    ("imm-long", "#0x1b7");
    ("abs", "&0x0302");
    ("idx", "2(r7)");
    ("ind", "@r7");
    ("autoinc", "@r7+");
  ]

let dst_modes = [ ("reg", "r6"); ("abs", "&0x0304"); ("idx", "4(r7)") ]
let sizes = [ ""; ".b" ]

let program ~op ~src ~dst ~size =
  Printf.sprintf
    {|
start:  mov #0x0400, sp
        mov #0x0300, r7
        mov #0x5a17, &0x0300
        mov #0xc3f0, &0x0302
        mov #0x0f69, &0x0304
        mov #0x8e21, r5
        mov #0x1765, r6
        setc
        %s%s %s, %s
        mov r6, &0x0380
        mov sr, &0x0382
        halt
|}
    op size src dst

let one_op_program ~op ~operand ~size =
  Printf.sprintf
    {|
start:  mov #0x0400, sp
        mov #0x0300, r7
        mov #0x8e25, &0x0300
        mov #0x8e25, r5
        setc
        %s%s %s
        mov r5, &0x0380
        mov sr, &0x0382
        halt
|}
    op size operand

let lockstep_src src =
  let img = Asm.assemble src in
  ignore (Lockstep.run ~netlist:(Runner.shared_netlist core) img)

let test_two_op_matrix () =
  List.iter
    (fun op ->
      List.iter
        (fun (sname, src) ->
          List.iter
            (fun (dname, dst) ->
              List.iter
                (fun size ->
                  try lockstep_src (program ~op ~src ~dst ~size)
                  with
                  | Lockstep.Divergence m ->
                    Alcotest.failf "%s%s %s->%s: %s" op size sname dname m
                  | Asm.Error { message; _ } ->
                    Alcotest.failf "%s%s %s->%s does not assemble: %s" op size
                      sname dname message)
                sizes)
            dst_modes)
        src_modes)
    two_ops

let test_one_op_matrix () =
  let cases =
    [
      ("rrc", [ "r5"; "&0x0300"; "@r7"; "2(r7)" ], sizes);
      ("rra", [ "r5"; "&0x0300"; "@r7" ], sizes);
      ("swpb", [ "r5"; "&0x0300" ], [ "" ]);
      ("sxt", [ "r5"; "&0x0300" ], [ "" ]);
      ("push", [ "r5"; "#0x44"; "&0x0300"; "@r7+" ], [ "" ]);
    ]
  in
  List.iter
    (fun (op, operands, szs) ->
      List.iter
        (fun operand ->
          List.iter
            (fun size ->
              try lockstep_src (one_op_program ~op ~operand ~size)
              with
              | Lockstep.Divergence m ->
                Alcotest.failf "%s%s %s: %s" op size operand m
              | Asm.Error { message; _ } ->
                Alcotest.failf "%s%s %s does not assemble: %s" op size operand
                  message)
            szs)
        operands)
    cases

let test_jump_matrix () =
  (* every condition, taken and not taken, driven by real flag state *)
  let setups =
    [
      ("zset", "mov #1, r5\n        dec r5");  (* Z=1 C=1? dec sets flags *)
      ("zclr", "mov #2, r5\n        dec r5");
      ("cset", "setc");
      ("cclr", "clrc");
      ("nset", "mov #0x8000, r5\n        tst r5");
      ("nclr", "mov #1, r5\n        tst r5");
      ("vset", "mov #0x7fff, r5\n        inc r5");
    ]
  in
  let conds = [ "jz"; "jnz"; "jc"; "jnc"; "jn"; "jge"; "jl"; "jmp" ] in
  List.iter
    (fun (sname, setup) ->
      List.iter
        (fun cond ->
          let src =
            Printf.sprintf
              {|
start:  mov #0x0400, sp
        %s
        %s taken
        mov #1, &0x0380
        halt
taken:  mov #2, &0x0380
        halt
|}
              setup cond
          in
          try lockstep_src src
          with Lockstep.Divergence m ->
            Alcotest.failf "%s after %s: %s" cond sname m)
        conds)
    setups

let () =
  Alcotest.run "bespoke_isa_matrix"
    [
      ( "matrix",
        [
          Alcotest.test_case "two-op x modes x sizes (504 programs)" `Slow
            test_two_op_matrix;
          Alcotest.test_case "one-op x modes" `Slow test_one_op_matrix;
          Alcotest.test_case "jumps x flag states" `Slow test_jump_matrix;
        ] );
    ]
