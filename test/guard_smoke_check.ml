(* Validator behind the @guard-smoke alias: parse two bespoke-guard/v1
   JSONL streams — the clean case (a benchmark replayed on its own
   instrumented bespoke design, which must be silent) and the
   violation case (an unsupported mutant on the tailored design, which
   must trip at least one monitor with cut provenance) — and check the
   schema, the coverage arithmetic, every violation record, and the
   summary discipline.  Exits non-zero on the first problem. *)

module Obs = Bespoke_obs.Obs

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("guard-smoke: " ^ m); exit 1) fmt

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let mem k j =
  match Obs.Json.member k j with
  | Some v -> v
  | None -> fail "missing field %S" k

let str k j =
  match mem k j with Obs.Json.Str s -> s | _ -> fail "field %S is not a string" k

let int_ k j =
  match mem k j with
  | Obs.Json.Num n -> int_of_float n
  | _ -> fail "field %S is not a number" k

let bool_ k j =
  match mem k j with Obs.Json.Bool b -> b | _ -> fail "field %S is not a bool" k

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Returns (violation records, summary violations) so the caller can
   assert the clean/violated expectation. *)
let check_stream ~label ~core path =
  let parsed =
    List.map
      (fun line ->
        match Obs.Json.parse line with
        | Ok j -> j
        | Error m -> fail "%s: line does not parse: %s (%s)" label m line)
      (read_lines path)
  in
  match parsed with
  | [] | [ _ ] -> fail "%s: stream too short: want header and summary" label
  | header :: rest ->
    if str "schema" header <> "bespoke-guard/v1" then
      fail "%s: unexpected schema tag %S" label (str "schema" header);
    if str "core" header <> core then
      fail "%s: header core %S, want %S" label (str "core" header) core;
    if str "design" header = "" then fail "%s: empty design name" label;
    if str "workload" header = "" then fail "%s: empty workload name" label;
    let mode = str "mode" header in
    if not (List.mem mode [ "hw"; "shadow"; "original" ]) then
      fail "%s: unknown mode %S" label mode;
    let assumptions = int_ "assumptions" header in
    let monitors = int_ "monitors" header in
    let implied = int_ "implied" header in
    let unmonitorable = int_ "unmonitorable" header in
    if monitors < 1 then fail "%s: no monitors in the plan" label;
    if monitors + implied + unmonitorable <> assumptions then
      fail "%s: coverage split %d + %d + %d <> %d assumption(s)" label monitors
        implied unmonitorable assumptions;
    let violations, summary =
      match List.rev rest with
      | s :: r -> (List.rev r, s)
      | [] -> fail "%s: no summary line" label
    in
    if not (bool_ "summary" summary) then
      fail "%s: last line is not the summary" label;
    List.iteri
      (fun i v ->
        if int_ "cycle" v < 0 then fail "%s: record %d: negative cycle" label i;
        if int_ "gate" v < 0 then fail "%s: record %d: negative gate" label i;
        let a = str "assumed" v and o = str "observed" v in
        if a = o then
          fail "%s: record %d: assumed %S equals observed — not a violation"
            label i a;
        if str "reason" v = "" then fail "%s: record %d: empty reason" label i;
        if not (contains ~needle:"cut" (str "detail" v)) then
          fail "%s: record %d: detail %S carries no cut provenance" label i
            (str "detail" v))
      violations;
    if int_ "cycles" summary < 1 then fail "%s: summary checked no cycles" label;
    let total = int_ "violations" summary in
    let gates = int_ "violating_gates" summary in
    if gates <> List.length violations then
      fail "%s: summary names %d violating gate(s), stream carries %d record(s)"
        label gates (List.length violations);
    if total < gates then
      fail "%s: summary violations %d below its %d violating gate(s)" label
        total gates;
    if bool_ "clean" summary <> (total = 0) then
      fail "%s: summary clean flag disagrees with %d violation(s)" label total;
    (List.length violations, total)

let () =
  if Array.length Sys.argv <> 4 then
    fail "usage: guard_smoke_check CLEAN.jsonl VIOLATED.jsonl RV32_CLEAN.jsonl";
  let clean_records, clean_total =
    check_stream ~label:"clean" ~core:"msp430" Sys.argv.(1)
  in
  if clean_records <> 0 || clean_total <> 0 then
    fail "clean stream reports %d violation(s) — the design's own benchmark \
          must satisfy every cut assumption"
      clean_total;
  let viol_records, viol_total =
    check_stream ~label:"violated" ~core:"msp430" Sys.argv.(2)
  in
  if viol_records < 1 || viol_total < 1 then
    fail "violated stream is silent — the unsupported mutant must trip a \
          monitor";
  let rv_records, rv_total =
    check_stream ~label:"rv32-clean" ~core:"rv32" Sys.argv.(3)
  in
  if rv_records <> 0 || rv_total <> 0 then
    fail "rv32 clean stream reports %d violation(s) — the tailored design \
          must satisfy its own workload on every core"
      rv_total;
  Printf.printf
    "guard-smoke: clean streams silent on both cores; mutant stream carries \
     %d violation(s) on %d gate(s) with cut provenance\n"
    viol_total viol_records
