(* Random-program fuzzing (fast tier; see test_fuzz_deep for the
   @slow campaign):

   - programs come from the shared {!Fuzzgen} generator (deterministic
     in the seed, always terminating);
   - every program runs in lockstep, gate-level vs. ISS (exact
     architectural state every instruction, exact cycle counts);
   - a subset goes through the whole bespoke flow: symbolic analysis,
     cut & stitch, and re-verification of the tailored design.

   Any divergence report includes the PRNG seed and the generated
   assembly listing, so it can be replayed from the log alone:

     BESPOKE_FUZZ_SEED=<seed> dune exec test/test_fuzz.exe *)

module Asm = Bespoke_isa.Asm
module Lockstep = Bespoke_cpu.Lockstep
module System = Bespoke_cpu.System
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
let core = Bespoke_cpu.Msp430.core

let shared = lazy (Runner.shared_netlist core)

let report_divergence ~seed ~src what detail =
  QCheck.Test.fail_reportf
    "seed %d %s: %s@\n\
     replay: BESPOKE_FUZZ_SEED=%d dune exec test/test_fuzz.exe@\n\
     --- generated assembly (seed %d) ---@\n\
     %s--- end assembly ---"
    seed what detail seed seed src

let test_lockstep_fuzz =
  QCheck.Test.make ~name:"random programs run in exact lockstep" ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_bound 0xffff))
    (fun (seed, gpio) ->
      let src = Fuzzgen.program ~seed in
      match Asm.assemble src with
      | exception Asm.Error { line; message } ->
        QCheck.Test.fail_reportf "generator produced bad asm (seed %d): line %d %s"
          seed line message
      | img -> (
        match Lockstep.run ~netlist:(Lazy.force shared) ~gpio_in:gpio img with
        | _ -> true
        | exception Lockstep.Divergence m ->
          report_divergence ~seed ~src
            (Printf.sprintf "(gpio 0x%04x) diverged" gpio) m))

let test_flow_fuzz =
  QCheck.Test.make ~name:"random programs survive the full bespoke flow"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let src = Fuzzgen.program ~seed in
      let img = Asm.assemble src in
      let net = Lazy.force shared in
      let sys = System.create ~netlist:net img in
      match Activity.analyze sys with
      | exception Activity.Analysis_error m ->
        report_divergence ~seed ~src "analysis failed" m
      | report ->
        let bespoke, stats =
          Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
            ~constants:report.Activity.constant_values
        in
        if stats.Cut.bespoke_gates >= stats.Cut.original_gates then
          report_divergence ~seed ~src "tailoring" "nothing cut";
        List.for_all
          (fun gpio ->
            let a = Lockstep.run ~netlist:net ~gpio_in:gpio img in
            let b = Lockstep.run ~netlist:bespoke ~gpio_in:gpio img in
            a.Lockstep.gpio_final = b.Lockstep.gpio_final
            && a.Lockstep.cycles = b.Lockstep.cycles
            && a.Lockstep.outputs = b.Lockstep.outputs)
          [ 0; 0x00ff; 0xa5a5; 0xffff ])

(* Replay one specific seed from a failure log: prints the listing and
   runs the lockstep check for it alone. *)
let replay_cases =
  match Sys.getenv_opt "BESPOKE_FUZZ_SEED" with
  | None -> []
  | Some s ->
    let seed = int_of_string s in
    [
      Alcotest.test_case (Printf.sprintf "replay seed %d" seed) `Quick
        (fun () ->
          let src = Fuzzgen.program ~seed in
          Printf.printf "--- generated assembly (seed %d) ---\n%s%!" seed src;
          let img = Asm.assemble src in
          ignore (Lockstep.run ~netlist:(Lazy.force shared) img));
    ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bespoke_fuzz"
    [ ("fuzz", (qt test_lockstep_fuzz :: qt test_flow_fuzz :: replay_cases)) ]
