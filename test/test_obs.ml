(* Tests for the Obs telemetry subsystem: span nesting and ordering,
   JSONL export well-formedness, histogram percentiles, metrics from a
   real tailor run, and the disabled-by-default no-op guarantee. *)

module Obs = Bespoke_obs.Obs
module B = Bespoke_programs.Benchmark
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut

(* Every test leaves the global collector disabled and empty so test
   order never matters. *)
let with_tracing f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.disable ())
    f

let run_tailor_mult () =
  let report, net = Runner.analyze (B.find "mult") in
  Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
    ~constants:report.Activity.constant_values

(* ---- spans ---- *)

let test_span_nesting () =
  with_tracing (fun () ->
      let r =
        Obs.Span.with_ ~name:"outer" (fun () ->
            Obs.Span.with_ ~name:"inner"
              ~args:[ ("k", "v") ]
              (fun () -> 41 + 1))
      in
      Alcotest.(check int) "result threaded through" 42 r;
      let events = Obs.Trace.events () in
      Alcotest.(check (list (pair string char)))
        "B/E sequence"
        [ ("outer", 'B'); ("inner", 'B'); ("inner", 'E'); ("outer", 'E') ]
        (List.map (fun (e : Obs.Trace.event) -> (e.name, e.ph)) events);
      let ts = List.map (fun (e : Obs.Trace.event) -> e.ts_us) events in
      Alcotest.(check bool)
        "timestamps non-decreasing" true
        (List.sort compare ts = ts);
      let inner_b = List.nth events 1 in
      Alcotest.(check (list (pair string string)))
        "args attached to B" [ ("k", "v") ] inner_b.args)

let test_span_end_on_raise () =
  with_tracing (fun () ->
      (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "no") with
      | Failure _ -> ());
      Alcotest.(check (list (pair string char)))
        "span closed despite raise"
        [ ("boom", 'B'); ("boom", 'E') ]
        (List.map
           (fun (e : Obs.Trace.event) -> (e.name, e.ph))
           (Obs.Trace.events ())))

let test_spans_across_domains () =
  with_tracing (fun () ->
      let workers =
        List.init 3 (fun i ->
            Domain.spawn (fun () ->
                Obs.Span.with_ ~name:(Printf.sprintf "worker-%d" i) (fun () ->
                    ())))
      in
      List.iter Domain.join workers;
      Obs.Span.with_ ~name:"main" (fun () -> ());
      let events = Obs.Trace.events () in
      Alcotest.(check int) "all buffers merged" 8 (List.length events);
      (* B/E balance per domain, and events from joined domains kept *)
      let depth : (int, int) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun (e : Obs.Trace.event) ->
          let d = Option.value ~default:0 (Hashtbl.find_opt depth e.tid) in
          let d = d + (if e.ph = 'B' then 1 else -1) in
          if d < 0 then Alcotest.failf "tid %d: E before B" e.tid;
          Hashtbl.replace depth e.tid d)
        events;
      Hashtbl.iter
        (fun tid d ->
          if d <> 0 then Alcotest.failf "tid %d: %d unclosed spans" tid d)
        depth;
      Alcotest.(check bool)
        "events span multiple domains" true
        (Hashtbl.length depth > 1))

(* ---- JSONL export from a real flow ---- *)

let json_str k j =
  match Obs.Json.member k j with
  | Some (Obs.Json.Str s) -> s
  | _ -> Alcotest.failf "field %S missing or not a string" k

let json_num k j =
  match Obs.Json.member k j with
  | Some (Obs.Json.Num n) -> n
  | _ -> Alcotest.failf "field %S missing or not a number" k

let test_jsonl_wellformed () =
  with_tracing (fun () ->
      ignore (run_tailor_mult ());
      let lines =
        List.filter
          (fun l -> l <> "")
          (String.split_on_char '\n' (Obs.Trace.to_jsonl ()))
      in
      Alcotest.(check bool) "trace is non-empty" true (lines <> []);
      (* every line parses; B/E strictly balanced per tid, LIFO order *)
      let stacks : (int, string list) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun line ->
          match Obs.Json.parse line with
          | Error m -> Alcotest.failf "unparseable line %S: %s" line m
          | Ok j -> (
            let tid = int_of_float (json_num "tid" j) in
            Alcotest.(check bool)
              "ts is non-negative" true
              (json_num "ts" j >= 0.0);
            let stack =
              Option.value ~default:[] (Hashtbl.find_opt stacks tid)
            in
            match json_str "ph" j with
            | "B" -> Hashtbl.replace stacks tid (json_str "name" j :: stack)
            | "E" -> (
              match stack with
              | top :: rest ->
                Alcotest.(check string) "E closes innermost B" top
                  (json_str "name" j);
                Hashtbl.replace stacks tid rest
              | [] -> Alcotest.failf "E with no open span: %s" line)
            | "i" -> ()
            | ph -> Alcotest.failf "unexpected ph %S" ph))
        lines;
      Hashtbl.iter
        (fun tid stack ->
          if stack <> [] then
            Alcotest.failf "tid %d ends with %d unclosed spans" tid
              (List.length stack))
        stacks)

(* ---- histograms ---- *)

let test_histogram_percentiles () =
  with_tracing (fun () ->
      let h = Obs.Metrics.histogram "test.uniform" in
      for i = 1 to 1000 do
        Obs.Metrics.observe h i
      done;
      Alcotest.(check int) "count" 1000 (Obs.Metrics.histogram_count h);
      let p50 = Obs.Metrics.percentile h 0.5 in
      let p99 = Obs.Metrics.percentile h 0.99 in
      (* log-scale buckets: the answer is only factor-of-two accurate,
         so check bucket bounds, not exact quantiles *)
      Alcotest.(check bool)
        "p50 in [256,512]" true
        (p50 >= 256.0 && p50 <= 512.0);
      Alcotest.(check bool)
        "p99 in [512,1000]" true
        (p99 >= 512.0 && p99 <= 1000.0);
      Alcotest.(check bool) "quantiles monotone" true (p50 <= p99);
      Alcotest.(check bool)
        "p0 clamped near observed min" true
        (Obs.Metrics.percentile h 0.0 >= 1.0
        && Obs.Metrics.percentile h 0.0 <= 2.0);
      (* a degenerate distribution clamps to the exact value *)
      let d = Obs.Metrics.histogram "test.degenerate" in
      for _ = 1 to 10 do
        Obs.Metrics.observe d 42
      done;
      Alcotest.(check (float 0.0))
        "single-valued p50 is exact" 42.0
        (Obs.Metrics.percentile d 0.5);
      Alcotest.(check (float 0.0))
        "single-valued p99 is exact" 42.0
        (Obs.Metrics.percentile d 0.99))

(* ---- metrics from a real tailor run ---- *)

let test_tailor_metrics () =
  with_tracing (fun () ->
      let _bespoke, stats = run_tailor_mult () in
      let c name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
      Alcotest.(check bool) "gate evals counted" true (c "sim.gate_evals" > 0);
      Alcotest.(check bool)
        "settle iterations counted" true
        (c "sim.settle_iterations" > 0);
      Alcotest.(check bool) "analysis paths counted" true (c "analysis.paths" > 0);
      Alcotest.(check int) "cut.gates_removed matches Cut.stats"
        stats.Cut.cut_gates (c "cut.gates_removed");
      Alcotest.(check bool)
        "resynth folded constants" true
        (c "resynth.const_folds" > 0);
      (* the snapshot parses and spans the whole flow *)
      match Obs.Json.parse (Obs.Metrics.snapshot_json ()) with
      | Error m -> Alcotest.failf "snapshot does not parse: %s" m
      | Ok j ->
        let section k =
          match Obs.Json.member k j with
          | Some (Obs.Json.Obj fields) -> List.map fst fields
          | _ -> Alcotest.failf "snapshot missing %S object" k
        in
        let names =
          section "counters" @ section "gauges" @ section "histograms"
        in
        Alcotest.(check bool)
          "at least 8 distinct metric names" true
          (List.length (List.sort_uniq String.compare names) >= 8);
        List.iter
          (fun prefix ->
            Alcotest.(check bool)
              (prefix ^ " metrics present") true
              (List.exists
                 (fun n -> String.starts_with ~prefix n)
                 names))
          [ "sim."; "analysis."; "cut."; "resynth." ])

(* ---- disabled-by-default no-op guarantee ---- *)

let test_disabled_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.Metrics.counter "test.noop_counter" in
  let h = Obs.Metrics.histogram "test.noop_hist" in
  let r = Obs.Span.with_ ~name:"ignored" (fun () -> "ok") in
  Obs.Span.instant "ignored too";
  Obs.Metrics.incr c;
  Obs.Metrics.add c 100;
  Obs.Metrics.observe h 7;
  Alcotest.(check string) "span body still runs" "ok" r;
  Alcotest.(check int) "no events recorded" 0
    (List.length (Obs.Trace.events ()));
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.histogram_count h);
  Alcotest.(check string) "jsonl empty" "" (Obs.Trace.to_jsonl ())

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "end emitted on raise" `Quick test_span_end_on_raise;
          Alcotest.test_case "per-domain buffers merge" `Quick
            test_spans_across_domains;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl well-formed and balanced" `Quick
            test_jsonl_wellformed;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "tailor run populates registry" `Quick
            test_tailor_metrics;
        ] );
      ( "disabled",
        [ Alcotest.test_case "hooks are no-ops" `Quick test_disabled_noop ] );
    ]
