(* Tests for the Obs telemetry subsystem: span nesting and ordering,
   JSONL export well-formedness, histogram percentiles, metrics from a
   real tailor run, and the disabled-by-default no-op guarantee. *)

module Obs = Bespoke_obs.Obs
module Stats = Bespoke_obs.Stats
module B = Bespoke_programs.Benchmark
module Activity = Bespoke_analysis.Activity
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Pool = Bespoke_core.Pool
let core = Bespoke_cpu.Msp430.core

(* Every test leaves the global collector disabled and empty so test
   order never matters. *)
let with_tracing f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.disable ())
    f

let run_tailor_mult () =
  let report, net = Runner.analyze ~core (B.find "mult") in
  Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
    ~constants:report.Activity.constant_values

(* ---- spans ---- *)

let test_span_nesting () =
  with_tracing (fun () ->
      let r =
        Obs.Span.with_ ~name:"outer" (fun () ->
            Obs.Span.with_ ~name:"inner"
              ~args:[ ("k", "v") ]
              (fun () -> 41 + 1))
      in
      Alcotest.(check int) "result threaded through" 42 r;
      let events = Obs.Trace.events () in
      Alcotest.(check (list (pair string char)))
        "B/E sequence"
        [ ("outer", 'B'); ("inner", 'B'); ("inner", 'E'); ("outer", 'E') ]
        (List.map (fun (e : Obs.Trace.event) -> (e.name, e.ph)) events);
      let ts = List.map (fun (e : Obs.Trace.event) -> e.ts_us) events in
      Alcotest.(check bool)
        "timestamps non-decreasing" true
        (List.sort compare ts = ts);
      let inner_b = List.nth events 1 in
      Alcotest.(check (list (pair string string)))
        "args attached to B" [ ("k", "v") ] inner_b.args)

let test_span_end_on_raise () =
  with_tracing (fun () ->
      (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "no") with
      | Failure _ -> ());
      Alcotest.(check (list (pair string char)))
        "span closed despite raise"
        [ ("boom", 'B'); ("boom", 'E') ]
        (List.map
           (fun (e : Obs.Trace.event) -> (e.name, e.ph))
           (Obs.Trace.events ())))

let test_spans_across_domains () =
  with_tracing (fun () ->
      let workers =
        List.init 3 (fun i ->
            Domain.spawn (fun () ->
                Obs.Span.with_ ~name:(Printf.sprintf "worker-%d" i) (fun () ->
                    ())))
      in
      List.iter Domain.join workers;
      Obs.Span.with_ ~name:"main" (fun () -> ());
      let events = Obs.Trace.events () in
      Alcotest.(check int) "all buffers merged" 8 (List.length events);
      (* B/E balance per domain, and events from joined domains kept *)
      let depth : (int, int) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun (e : Obs.Trace.event) ->
          let d = Option.value ~default:0 (Hashtbl.find_opt depth e.tid) in
          let d = d + (if e.ph = 'B' then 1 else -1) in
          if d < 0 then Alcotest.failf "tid %d: E before B" e.tid;
          Hashtbl.replace depth e.tid d)
        events;
      Hashtbl.iter
        (fun tid d ->
          if d <> 0 then Alcotest.failf "tid %d: %d unclosed spans" tid d)
        depth;
      Alcotest.(check bool)
        "events span multiple domains" true
        (Hashtbl.length depth > 1))

(* ---- JSONL export from a real flow ---- *)

let json_str k j =
  match Obs.Json.member k j with
  | Some (Obs.Json.Str s) -> s
  | _ -> Alcotest.failf "field %S missing or not a string" k

let json_num k j =
  match Obs.Json.member k j with
  | Some (Obs.Json.Num n) -> n
  | _ -> Alcotest.failf "field %S missing or not a number" k

let test_jsonl_wellformed () =
  with_tracing (fun () ->
      ignore (run_tailor_mult ());
      let lines =
        List.filter
          (fun l -> l <> "")
          (String.split_on_char '\n' (Obs.Trace.to_jsonl ()))
      in
      Alcotest.(check bool) "trace is non-empty" true (lines <> []);
      (* every line parses; B/E strictly balanced per tid, LIFO order *)
      let stacks : (int, string list) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun line ->
          match Obs.Json.parse line with
          | Error m -> Alcotest.failf "unparseable line %S: %s" line m
          | Ok j -> (
            let tid = int_of_float (json_num "tid" j) in
            Alcotest.(check bool)
              "ts is non-negative" true
              (json_num "ts" j >= 0.0);
            let stack =
              Option.value ~default:[] (Hashtbl.find_opt stacks tid)
            in
            match json_str "ph" j with
            | "B" -> Hashtbl.replace stacks tid (json_str "name" j :: stack)
            | "E" -> (
              match stack with
              | top :: rest ->
                Alcotest.(check string) "E closes innermost B" top
                  (json_str "name" j);
                Hashtbl.replace stacks tid rest
              | [] -> Alcotest.failf "E with no open span: %s" line)
            | "i" | "M" -> ()
            | ph -> Alcotest.failf "unexpected ph %S" ph))
        lines;
      Hashtbl.iter
        (fun tid stack ->
          if stack <> [] then
            Alcotest.failf "tid %d ends with %d unclosed spans" tid
              (List.length stack))
        stacks)

(* ---- histograms ---- *)

let test_histogram_percentiles () =
  with_tracing (fun () ->
      let h = Obs.Metrics.histogram "test.uniform" in
      for i = 1 to 1000 do
        Obs.Metrics.observe h i
      done;
      Alcotest.(check int) "count" 1000 (Obs.Metrics.histogram_count h);
      let p50 = Obs.Metrics.percentile h 0.5 in
      let p99 = Obs.Metrics.percentile h 0.99 in
      (* log-scale buckets: the answer is only factor-of-two accurate,
         so check bucket bounds, not exact quantiles *)
      Alcotest.(check bool)
        "p50 in [256,512]" true
        (p50 >= 256.0 && p50 <= 512.0);
      Alcotest.(check bool)
        "p99 in [512,1000]" true
        (p99 >= 512.0 && p99 <= 1000.0);
      Alcotest.(check bool) "quantiles monotone" true (p50 <= p99);
      Alcotest.(check bool)
        "p0 clamped near observed min" true
        (Obs.Metrics.percentile h 0.0 >= 1.0
        && Obs.Metrics.percentile h 0.0 <= 2.0);
      (* a degenerate distribution clamps to the exact value *)
      let d = Obs.Metrics.histogram "test.degenerate" in
      for _ = 1 to 10 do
        Obs.Metrics.observe d 42
      done;
      Alcotest.(check (float 0.0))
        "single-valued p50 is exact" 42.0
        (Obs.Metrics.percentile d 0.5);
      Alcotest.(check (float 0.0))
        "single-valued p99 is exact" 42.0
        (Obs.Metrics.percentile d 0.99))

(* Exact percentile values and log-bucket edge behavior.  Bucket b
   holds values in [2^(b-1), 2^b): 7 is the last value of bucket 3,
   8 the first of bucket 4.  The representative value is the geometric
   midpoint 0.75 * 2^b, clamped to the observed [min, max]. *)
let test_histogram_exact () =
  with_tracing (fun () ->
      (* one bucket, midpoint representative: 5,6,7 all in [4,8) *)
      let h = Obs.Metrics.histogram "test.exact_mid" in
      List.iter (Obs.Metrics.observe h) [ 5; 6; 7 ];
      Alcotest.(check (float 0.0))
        "p50 is the bucket midpoint 6" 6.0
        (Obs.Metrics.percentile h 0.5);
      (* bucket-edge pair: 7 -> bucket 3, 8 -> bucket 4; the clamp to
         [min, max] makes both quantiles exact *)
      let e = Obs.Metrics.histogram "test.exact_edge" in
      Obs.Metrics.observe e 7;
      Obs.Metrics.observe e 8;
      Alcotest.(check (float 0.0))
        "p50 clamps up to min 7" 7.0
        (Obs.Metrics.percentile e 0.5);
      Alcotest.(check (float 0.0))
        "p99 clamps down to max 8" 8.0
        (Obs.Metrics.percentile e 0.99);
      (* a power of two lands in the bucket above its exponent *)
      let p = Obs.Metrics.histogram "test.exact_pow2" in
      Obs.Metrics.observe p 4;
      Alcotest.(check (float 0.0))
        "single 2^k value is exact" 4.0
        (Obs.Metrics.percentile p 0.9);
      (* zero has its own bucket and a zero representative *)
      let z = Obs.Metrics.histogram "test.exact_zero" in
      Obs.Metrics.observe z 0;
      Alcotest.(check (float 0.0))
        "all-zero histogram quantile is 0" 0.0
        (Obs.Metrics.percentile z 0.99);
      (* empty histogram: quantile defined as 0 *)
      let n = Obs.Metrics.histogram "test.exact_empty" in
      Alcotest.(check (float 0.0))
        "empty histogram quantile is 0" 0.0
        (Obs.Metrics.percentile n 0.5))

(* Concurrent pool-domain updates must leave the registry exact (no
   lost increments) and the snapshot deterministic once quiescent. *)
let test_metrics_concurrent_snapshot () =
  with_tracing (fun () ->
      let c = Obs.Metrics.counter "test.conc_counter" in
      let h = Obs.Metrics.histogram "test.conc_hist" in
      let n = 400 in
      Pool.iter ~jobs:4
        (fun i ->
          Obs.Metrics.incr c;
          Obs.Metrics.observe h (1 + (i mod 64)))
        (List.init n Fun.id);
      Alcotest.(check int) "no lost counter increments" n
        (Obs.Metrics.counter_value c);
      Alcotest.(check int) "no lost observations" n
        (Obs.Metrics.histogram_count h);
      let s1 = Obs.Metrics.snapshot_json () in
      let s2 = Obs.Metrics.snapshot_json () in
      Alcotest.(check string) "quiescent snapshots identical" s1 s2;
      match Obs.Json.parse s1 with
      | Error m -> Alcotest.failf "snapshot does not parse: %s" m
      | Ok _ -> ())

(* ---- the background sampler ---- *)

let test_sampler_series () =
  let path = Filename.temp_file "bespoke_test_metrics" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Sampler.stop ();
      Obs.reset ();
      Obs.disable ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Obs.reset ();
      Obs.Sampler.start ~path ~interval_ms:40 ();
      Alcotest.(check bool) "sampler reports running" true
        (Obs.Sampler.running ());
      Alcotest.(check (option string)) "sampler reports its path" (Some path)
        (Obs.Sampler.path ());
      let c = Obs.Metrics.counter "test.sampler_counter" in
      Obs.Metrics.incr c;
      Unix.sleepf 0.12;
      Obs.Sampler.stop ();
      Alcotest.(check bool) "sampler stopped" false (Obs.Sampler.running ());
      match Stats.load_metrics path with
      | Error m -> Alcotest.failf "sampler output invalid: %s" m
      | Ok series ->
        Alcotest.(check int) "declared interval" 40 series.Stats.interval_ms;
        Alcotest.(check bool)
          (Printf.sprintf "at least 2 snapshots (got %d)"
             series.Stats.snapshots)
          true (series.Stats.snapshots >= 2);
        Alcotest.(check bool) "series spans real time" true
          (series.Stats.span_us > 0.0))

(* ---- bench regression comparison ---- *)

let test_stats_compare () =
  let entry label scale =
    {
      Stats.b_label = label;
      b_metrics =
        [
          ("cps/mult/event", 1000.0 *. scale);
          ("cps/mult/compiled", 5000.0 *. scale);
          ("campaign/jobs_per_sec/warm_jobs4", 80.0);
        ];
    }
  in
  let old_e = entry "old" 1.0 in
  (* self-comparison is clean *)
  let self = Stats.compare_benches ~threshold:0.1 old_e old_e in
  Alcotest.(check int) "self-compare has no regressions" 0
    (List.length self.Stats.regressions);
  Alcotest.(check int) "self-compare covers all metrics" 3
    (List.length self.Stats.deltas);
  (* a uniform 12% throughput drop beyond the 10% threshold *)
  let slow = entry "new" 0.88 in
  let cmp = Stats.compare_benches ~threshold:0.1 old_e slow in
  Alcotest.(check int) "both cps drops flagged" 2
    (List.length cmp.Stats.regressions);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (d.Stats.d_metric ^ " ratio below 0.9")
        true (d.Stats.d_ratio < 0.9))
    cmp.Stats.regressions;
  (* the same drop under a looser threshold is not a regression *)
  let loose = Stats.compare_benches ~threshold:0.2 old_e slow in
  Alcotest.(check int) "20%% threshold tolerates a 12%% drop" 0
    (List.length loose.Stats.regressions);
  (* metric-set drift is reported, not silently dropped *)
  let extra =
    { old_e with Stats.b_metrics = ("cps/extra/event", 1.0) :: old_e.b_metrics }
  in
  let drift = Stats.compare_benches ~threshold:0.1 extra slow in
  Alcotest.(check (list string)) "vanished metric listed"
    [ "cps/extra/event" ] drift.Stats.only_old

(* ---- sampler interval edge cases ---- *)

(* Zero or negative intervals would spin the ticker thread; the
   sampler clamps to 1 ms and the header records the clamped value
   (the CLI additionally rejects them with a usage error). *)
let test_sampler_interval_clamp () =
  let probe interval_ms =
    let path = Filename.temp_file "bespoke_test_metrics" ".jsonl" in
    Fun.protect
      ~finally:(fun () ->
        Obs.Sampler.stop ();
        Obs.reset ();
        Obs.disable ();
        if Sys.file_exists path then Sys.remove path)
      (fun () ->
        Obs.reset ();
        Obs.Sampler.start ~path ~interval_ms ();
        Unix.sleepf 0.05;
        Obs.Sampler.stop ();
        match Stats.load_metrics path with
        | Error m ->
          Alcotest.failf "sampler output for interval %d invalid: %s"
            interval_ms m
        | Ok series ->
          Alcotest.(check int)
            (Printf.sprintf "interval %d clamped to 1 ms in the header"
               interval_ms)
            1 series.Stats.interval_ms;
          Alcotest.(check bool) "clamped sampler still snapshots" true
            (series.Stats.snapshots >= 1))
  in
  probe 0;
  probe (-25)

(* ---- truncated-stream tolerance in the stats loaders ---- *)

(* A live JSONL stream can end mid-record (crash, kill -9, full disk).
   Every loader must skip a malformed FINAL line and aggregate what
   came before — and must stay fatal on corruption anywhere else. *)
let test_truncated_loaders () =
  let tmp lines f =
    let path = Filename.temp_file "bespoke_test_stats" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines;
        close_out oc;
        f path)
  in
  let cut = {|{"cycle":12,"ga|} in
  (* trace *)
  let b = {|{"ph":"B","name":"work","ts":1.0,"tid":0,"pid":1}|} in
  let e = {|{"ph":"E","name":"work","ts":5.0,"tid":0,"pid":1}|} in
  (match tmp [ b; e; cut ] Stats.load_trace with
  | Error m -> Alcotest.failf "trace with truncated tail rejected: %s" m
  | Ok [ s ] ->
    Alcotest.(check string) "span survives the cut" "work" s.Stats.span_name;
    Alcotest.(check int) "span count" 1 s.Stats.count
  | Ok l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
  (match tmp [ b; cut; e ] Stats.load_trace with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-stream trace corruption must stay fatal");
  (* metrics *)
  let mh = Printf.sprintf {|{"schema":%S,"interval_ms":40}|} Obs.Sampler.schema in
  let snap ts = Printf.sprintf {|{"ts_us":%.1f,"metrics":{}}|} ts in
  (match tmp [ mh; snap 1.0; snap 2.0; cut ] Stats.load_metrics with
  | Error m -> Alcotest.failf "metrics with truncated tail rejected: %s" m
  | Ok series ->
    Alcotest.(check int) "snapshots before the cut kept" 2
      series.Stats.snapshots);
  (match tmp [ mh; snap 1.0; cut; snap 2.0 ] Stats.load_metrics with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-stream metrics corruption must stay fatal");
  (* campaign *)
  let ch = {|{"schema":"bespoke-campaign/v1","jobs":2,"total_jobs":2}|} in
  let job =
    {|{"job":0,"kind":"analyze","bench":"mult","status":"ok","cached":false,"time_s":0.1,"payload":{}}|}
  in
  (match tmp [ ch; job; cut ] Stats.load_campaign with
  | Error m -> Alcotest.failf "campaign with truncated tail rejected: %s" m
  | Ok c ->
    Alcotest.(check int) "job before the cut kept" 1 c.Stats.c_ok;
    Alcotest.(check int) "no summary: total from records" 1 c.Stats.c_total);
  (match tmp [ ch; job; cut; job ] Stats.load_campaign with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-stream campaign corruption must stay fatal");
  (* guard *)
  let gh =
    {|{"schema":"bespoke-guard/v1","design":"mult","workload":"mult","mode":"shadow","assumptions":10,"monitors":4,"implied":5,"unmonitorable":1}|}
  in
  let viol =
    {|{"cycle":3,"gate":7,"assumed":0,"observed":1,"reason":"cut: never toggles"}|}
  in
  match tmp [ gh; viol; cut ] Stats.load_guard with
  | Error m -> Alcotest.failf "guard with truncated tail rejected: %s" m
  | Ok g ->
    Alcotest.(check bool) "violation before the cut kept" false g.Stats.g_clean;
    Alcotest.(check int) "truncated stream: lower-bound violations" 1
      g.Stats.g_violations;
    Alcotest.(check (list (pair string int)))
      "cut-reason provenance aggregated"
      [ ("cut: never toggles", 1) ]
      g.Stats.g_reasons

(* ---- metrics from a real tailor run ---- *)

let test_tailor_metrics () =
  with_tracing (fun () ->
      let _bespoke, stats = run_tailor_mult () in
      let c name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
      Alcotest.(check bool) "gate evals counted" true (c "sim.gate_evals" > 0);
      Alcotest.(check bool)
        "settle iterations counted" true
        (c "sim.settle_iterations" > 0);
      Alcotest.(check bool) "analysis paths counted" true (c "analysis.paths" > 0);
      Alcotest.(check int) "cut.gates_removed matches Cut.stats"
        stats.Cut.cut_gates (c "cut.gates_removed");
      Alcotest.(check bool)
        "resynth folded constants" true
        (c "resynth.const_folds" > 0);
      (* the snapshot parses and spans the whole flow *)
      match Obs.Json.parse (Obs.Metrics.snapshot_json ()) with
      | Error m -> Alcotest.failf "snapshot does not parse: %s" m
      | Ok j ->
        let section k =
          match Obs.Json.member k j with
          | Some (Obs.Json.Obj fields) -> List.map fst fields
          | _ -> Alcotest.failf "snapshot missing %S object" k
        in
        let names =
          section "counters" @ section "gauges" @ section "histograms"
        in
        Alcotest.(check bool)
          "at least 8 distinct metric names" true
          (List.length (List.sort_uniq String.compare names) >= 8);
        List.iter
          (fun prefix ->
            Alcotest.(check bool)
              (prefix ^ " metrics present") true
              (List.exists
                 (fun n -> String.starts_with ~prefix n)
                 names))
          [ "sim."; "analysis."; "cut."; "resynth." ])

(* ---- disabled-by-default no-op guarantee ---- *)

let test_disabled_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.Metrics.counter "test.noop_counter" in
  let h = Obs.Metrics.histogram "test.noop_hist" in
  let r = Obs.Span.with_ ~name:"ignored" (fun () -> "ok") in
  Obs.Span.instant "ignored too";
  Obs.Metrics.incr c;
  Obs.Metrics.add c 100;
  Obs.Metrics.observe h 7;
  Alcotest.(check string) "span body still runs" "ok" r;
  Alcotest.(check int) "no events recorded" 0
    (List.length (Obs.Trace.events ()));
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.histogram_count h);
  Alcotest.(check string) "jsonl empty" "" (Obs.Trace.to_jsonl ())

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "end emitted on raise" `Quick test_span_end_on_raise;
          Alcotest.test_case "per-domain buffers merge" `Quick
            test_spans_across_domains;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl well-formed and balanced" `Quick
            test_jsonl_wellformed;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "exact percentiles and bucket edges" `Quick
            test_histogram_exact;
          Alcotest.test_case "concurrent updates, deterministic snapshot"
            `Quick test_metrics_concurrent_snapshot;
          Alcotest.test_case "tailor run populates registry" `Quick
            test_tailor_metrics;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "time series lifecycle" `Quick test_sampler_series;
          Alcotest.test_case "zero/negative interval clamped" `Quick
            test_sampler_interval_clamp;
        ] );
      ( "stats",
        [
          Alcotest.test_case "bench regression comparison" `Quick
            test_stats_compare;
          Alcotest.test_case "truncated final line tolerated" `Quick
            test_truncated_loaders;
        ] );
      ( "disabled",
        [ Alcotest.test_case "hooks are no-ops" `Quick test_disabled_noop ] );
    ]
