(* Round-trip properties for the plain-text netlist format: parsing a
   serialized netlist gives back an equivalent design, and a second
   serialization is byte-identical (fixpoint).  Checked on the stock
   CPU, on tailored (bespoke) netlists, and on fault-injected
   mutants — the shapes the verification campaign saves and reloads. *)

module B = Bespoke_programs.Benchmark
module Netlist = Bespoke_netlist.Netlist
module Serial = Bespoke_netlist.Serial
module Runner = Bespoke_core.Runner
module Cut = Bespoke_core.Cut
module Activity = Bespoke_analysis.Activity
module Fault = Bespoke_verify.Fault
let core = Bespoke_cpu.Msp430.core

let roundtrip what net =
  let s1 = Serial.to_string net in
  let net' = Serial.of_string s1 in
  let s2 = Serial.to_string net' in
  Alcotest.(check string) (what ^ " fixpoint") s1 s2;
  Alcotest.(check int)
    (what ^ " gate count")
    (Array.length net.Netlist.gates)
    (Array.length net'.Netlist.gates)

let bespoke_of b =
  let report, net = Runner.analyze ~core b in
  let bespoke, _ =
    Cut.tailor net ~possibly_toggled:report.Activity.possibly_toggled
      ~constants:report.Activity.constant_values
  in
  bespoke

let test_stock () = roundtrip "stock CPU" (Runner.shared_netlist core)

let test_bespoke () =
  List.iter
    (fun name -> roundtrip ("bespoke " ^ name) (bespoke_of (B.find name)))
    [ "mult"; "tHold" ]

let test_mutants () =
  let bespoke = bespoke_of (B.find "mult") in
  let toggles =
    (* every real gate "exercised" so generate draws from all kinds *)
    Array.map
      (fun (g : Bespoke_netlist.Gate.t) ->
        match g.Bespoke_netlist.Gate.op with
        | Bespoke_netlist.Gate.Input | Bespoke_netlist.Gate.Const _ -> 0
        | _ -> 1)
      bespoke.Netlist.gates
  in
  let faults = Fault.generate ~core ~seed:7 ~n:10 ~toggles bespoke in
  Alcotest.(check bool) "some faults drawn" true (List.length faults >= 5);
  List.iter
    (fun (f : Fault.t) ->
      let mutant = Fault.inject bespoke f in
      roundtrip
        (Printf.sprintf "mutant %d (%s)" f.Fault.id (Fault.kind_name f.Fault.kind))
        mutant)
    faults

let () =
  Alcotest.run "bespoke_serial"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "stock netlist" `Quick test_stock;
          Alcotest.test_case "bespoke netlists" `Quick test_bespoke;
          Alcotest.test_case "fault-injected mutants" `Quick test_mutants;
        ] );
    ]
