(* Directed ISS unit tests for the RV32 subset core, mirroring
   test_isa.ml for the MSP430: encode/decode round trips over every
   instruction shape, then per-instruction semantics through the
   assembler and golden-model ISS — two's-complement arithmetic,
   sign-extension of loads and immediates, branch offsets in both
   directions, load/store byte-lane alignment, and the hard-wired
   zero register. *)

module Coredef = Bespoke_coreapi.Coredef
module Isa = Bespoke_rv32.Isa
module Defs = Bespoke_rv32.Defs

let core = Bespoke_rv32.Rv32.core

(* ---- encode/decode ---- *)

let roundtrip i =
  let w = Isa.encode i in
  let i' = Isa.decode w in
  Alcotest.(check string) "roundtrip" (Isa.to_string i) (Isa.to_string i')

let all_aluops =
  [ Isa.Add; Isa.Sub; Isa.Sll; Isa.Slt; Isa.Sltu; Isa.Xor; Isa.Srl;
    Isa.Sra; Isa.Or; Isa.And ]

let test_roundtrip () =
  roundtrip (Isa.Lui { rd = 5; imm = 0x12345 lsl 12 });
  roundtrip (Isa.Auipc { rd = 10; imm = 0xfffff lsl 12 });
  roundtrip (Isa.Jal { rd = 1; off = -2048 });
  roundtrip (Isa.Jal { rd = 0; off = 2044 });
  roundtrip (Isa.Jalr { rd = 1; rs1 = 2; imm = -4 });
  List.iter
    (fun cond -> roundtrip (Isa.Branch { cond; rs1 = 3; rs2 = 4; off = -16 }))
    [ Isa.Beq; Isa.Bne; Isa.Blt; Isa.Bge; Isa.Bltu; Isa.Bgeu ];
  List.iter
    (fun width -> roundtrip (Isa.Load { width; rd = 6; rs1 = 7; imm = -1 }))
    [ Isa.Lb; Isa.Lh; Isa.Lw; Isa.Lbu; Isa.Lhu ];
  List.iter
    (fun width -> roundtrip (Isa.Store { width; rs1 = 8; rs2 = 9; imm = 2047 }))
    [ Isa.Sb; Isa.Sh; Isa.Sw ];
  List.iter
    (fun op ->
      (match op with
      | Isa.Sub -> ()  (* no subi in RV32I *)
      | _ -> roundtrip (Isa.Opimm { op; rd = 11; rs1 = 12; imm = 31 }));
      roundtrip (Isa.Op { op; rd = 13; rs1 = 14; rs2 = 15 }))
    all_aluops

(* ---- semantics through the assembler and the ISS ---- *)

let run src =
  let img = core.Coredef.assemble src in
  let iss = img.Coredef.mk_iss () in
  iss.Coredef.reset ();
  let n = ref 0 in
  while (not (iss.Coredef.halted ())) && !n < 10_000 do
    iss.Coredef.step ();
    incr n
  done;
  if not (iss.Coredef.halted ()) then Alcotest.fail "program did not halt";
  iss

let reg (iss : Coredef.iss) r = iss.Coredef.reg r

(* register indices used below: t0=x5 t1=x6 t2=x7 a0=x10 a1=x11 *)
let t0 = 5 and t1 = 6 and t2 = 7 and a0 = 10 and a1 = 11

let check_prog what src expected =
  let iss = run src in
  List.iter
    (fun (r, v) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: x%d" what r)
        (v land 0xFFFFFFFF) (reg iss r))
    expected

let test_x0_hardwired () =
  check_prog "writes to x0 are discarded"
    "        addi x0, x0, 5\n\
    \        li t0, 7\n\
    \        add x0, t0, t0\n\
    \        lui x0, 0xfffff\n\
    \        add a0, x0, x0\n\
    \        halt\n"
    [ (0, 0); (a0, 0) ]

let test_arith () =
  check_prog "add/sub wrap at 32 bits"
    "        li t0, 0x7fffffff\n\
    \        addi t1, t0, 1\n\
    \        sub t2, x0, t0\n\
    \        halt\n"
    [ (t1, 0x80000000); (t2, 0x80000001) ];
  check_prog "negative addi sign-extends"
    "        li t0, 5\n\
    \        addi t1, t0, -7\n\
    \        halt\n"
    [ (t1, -2) ]

let test_logic () =
  check_prog "xor/or/and and immediates"
    "        li t0, 0xff00f0f0\n\
    \        li t1, 0x0ff0ff00\n\
    \        xor t2, t0, t1\n\
    \        or a0, t0, t1\n\
    \        and a1, t0, t1\n\
    \        xori x28, t0, -1\n\
    \        ori x29, t0, 0x0f\n\
    \        andi x30, t0, 0xff\n\
    \        halt\n"
    [
      (t2, 0xf0f00ff0); (a0, 0xfff0fff0); (a1, 0x0f00f000);
      (28, 0x00ff0f0f); (29, 0xff00f0ff); (30, 0xf0);
    ]

let test_shifts () =
  check_prog "sll/srl/sra, register and immediate"
    "        li t0, 0x80000001\n\
    \        slli t1, t0, 4\n\
    \        srli t2, t0, 4\n\
    \        srai a0, t0, 4\n\
    \        li a1, 8\n\
    \        sll x28, t0, a1\n\
    \        srl x29, t0, a1\n\
    \        sra x30, t0, a1\n\
    \        halt\n"
    [
      (t1, 0x00000010); (t2, 0x08000000); (a0, 0xf8000000);
      (28, 0x00000100); (29, 0x00800000); (30, 0xff800000);
    ]

let test_compare () =
  check_prog "slt is signed, sltu unsigned"
    "        li t0, -1\n\
    \        li t1, 1\n\
    \        slt t2, t0, t1\n\
    \        sltu a0, t0, t1\n\
    \        slti a1, t0, 0\n\
    \        sltiu x28, t1, -1\n\
    \        halt\n"
    [ (t2, 1); (a0, 0); (a1, 1); (28, 1) ]

let test_lui_auipc () =
  (* the first instruction executes at rom_base *)
  check_prog "lui loads the upper 20 bits, auipc adds the pc"
    "        lui t0, 0x12345\n\
    \        auipc t1, 1\n\
    \        halt\n"
    [ (t0, 0x12345000); (t1, (Defs.rom_base + 4 + 0x1000) land 0xFFFF) ]

let test_loads_sign_extension () =
  check_prog "lb/lh sign-extend, lbu/lhu zero-extend"
    "        li t0, 0x8000\n\
    \        li t1, 0x8091a2b3\n\
    \        sw t1, 0(t0)\n\
    \        lb t2, 3(t0)\n\
    \        lbu a0, 3(t0)\n\
    \        lh a1, 2(t0)\n\
    \        lhu x28, 2(t0)\n\
    \        lb x29, 0(t0)\n\
    \        lw x30, 0(t0)\n\
    \        halt\n"
    [
      (t2, 0xffffff80); (a0, 0x80); (a1, 0xffff8091); (28, 0x8091);
      (29, 0xffffffb3); (30, 0x8091a2b3);
    ]

let test_store_lanes () =
  check_prog "sb/sh merge into the addressed byte lanes"
    "        li t0, 0x8000\n\
    \        li t1, 0x11223344\n\
    \        sw t1, 0(t0)\n\
    \        li t2, 0xaa\n\
    \        sb t2, 1(t0)\n\
    \        li a0, 0xbbcc\n\
    \        sh a0, 2(t0)\n\
    \        lw a1, 0(t0)\n\
    \        halt\n"
    [ (a1, 0xbbccaa44) ]

let test_branches () =
  (* every taken branch adds a distinct bit to a0; every not-taken
     branch aims at the poison label — a0 must collect exactly the
     six bits *)
  check_prog "all six branch conditions, signed and unsigned"
    "        li t0, -1\n\
    \        li t1, 1\n\
    \        li a0, 0\n\
    \        beq t0, t0, B1\n\
    \        j fail\n\
    B1:     addi a0, a0, 1\n\
    \        bne t0, t1, B2\n\
    \        j fail\n\
    B2:     addi a0, a0, 2\n\
    \        blt t0, t1, B3\n\
    \        j fail\n\
    B3:     addi a0, a0, 4\n\
    \        bge t1, t0, B4\n\
    \        j fail\n\
    B4:     addi a0, a0, 8\n\
    \        bltu t1, t0, B5\n\
    \        j fail\n\
    B5:     addi a0, a0, 16\n\
    \        bgeu t0, t1, B6\n\
    \        j fail\n\
    B6:     addi a0, a0, 32\n\
    \        beq t0, t1, fail\n\
    \        bne t0, t0, fail\n\
    \        blt t1, t0, fail\n\
    \        bge t0, t1, fail\n\
    \        bltu t0, t1, fail\n\
    \        bgeu t1, t0, fail\n\
    \        halt\n\
    fail:   li a0, 999\n\
    \        halt\n"
    [ (a0, 63) ]

let test_backward_branch () =
  check_prog "backward branch offsets: a counted loop"
    "        li t0, 5\n\
    \        li t1, 0\n\
    loop:   add t1, t1, t0\n\
    \        addi t0, t0, -1\n\
    \        bne t0, x0, loop\n\
    \        halt\n"
    [ (t0, 0); (t1, 15) ]

let test_jal_jalr () =
  (* jal links pc+4; jalr returns through the link register and
     clears bit 0/1 of the target *)
  check_prog "jal/jalr call and return"
    "        li a0, 0\n\
    \        jal ra, sub1\n\
    \        addi a0, a0, 100\n\
    \        halt\n\
    sub1:   addi a0, a0, 5\n\
    \        ret\n"
    [ (a0, 105) ];
  let iss =
    run
      "        jal ra, next\n\
       next:   halt\n"
  in
  Alcotest.(check int) "jal links pc+4" ((Defs.rom_base + 4) land 0xFFFF)
    (reg iss 1)

let test_gpio_and_halt () =
  let iss =
    run
      "        li t0, 0xC\n\
      \        li t1, 0x5a5aa5a5\n\
      \        sw t1, 0(t0)\n\
      \        halt\n"
  in
  Alcotest.(check int) "gpio_out register" 0x5a5aa5a5 (iss.Coredef.gpio_out ());
  Alcotest.(check bool) "halted" true (iss.Coredef.halted ())

let test_timing_contract () =
  let iss =
    run "        nop\n        nop\n        nop\n        halt\n"
  in
  Alcotest.(check int) "retired" 4 (iss.Coredef.retired ());
  Alcotest.(check int) "uniform cycles/insn" (4 * Defs.cycles_per_insn)
    (iss.Coredef.cycles ())

let () =
  Alcotest.run "bespoke_rv32_isa"
    [
      ( "encode",
        [ Alcotest.test_case "roundtrip all instruction shapes" `Quick
            test_roundtrip ] );
      ( "iss",
        [
          Alcotest.test_case "x0 hard-wired to zero" `Quick test_x0_hardwired;
          Alcotest.test_case "add/sub/addi arithmetic" `Quick test_arith;
          Alcotest.test_case "logic ops and immediates" `Quick test_logic;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "signed/unsigned compares" `Quick test_compare;
          Alcotest.test_case "lui/auipc" `Quick test_lui_auipc;
          Alcotest.test_case "load sign-extension" `Quick
            test_loads_sign_extension;
          Alcotest.test_case "store byte lanes" `Quick test_store_lanes;
          Alcotest.test_case "branch conditions" `Quick test_branches;
          Alcotest.test_case "backward branch offsets" `Quick
            test_backward_branch;
          Alcotest.test_case "jal/jalr linkage" `Quick test_jal_jalr;
          Alcotest.test_case "gpio store and halt" `Quick test_gpio_and_halt;
          Alcotest.test_case "timing contract" `Quick test_timing_contract;
        ] );
    ]
