module Bit = Bespoke_logic.Bit
module Bvec = Bespoke_logic.Bvec
module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist

type op2 = Band | Bor | Bxor | Bxnor

type signal = { id : int; w : int; node : node; scope : string }

and node =
  | Input of string
  | Const of Bit.t array
  | Not of signal
  | Op2 of op2 * signal * signal
  | Mux2 of signal * signal * signal  (* sel, f, t *)
  | Concat of signal list  (* LSB-first parts *)
  | Select of signal * int * int  (* hi, lo *)
  | Adder of signal * signal * signal  (* a, b, cin; width = w a + 1 *)
  | Reg of regspec
  | Wire of wirecell

and regspec = {
  init : int;
  d : signal;
  enable : signal option;
  clear : signal option;
  clear_to : int;
}

and wirecell = { mutable driver : signal option }

type builder = {
  mutable inputs : (string * signal) list;  (* reverse order *)
  mutable outputs : (string * signal) list;
  mutable named : (string * signal) list;
  mutable scope_stack : string list;
}

let next_id = ref 0
let ambient_scope = ref ""

let fresh node w scope =
  incr next_id;
  { id = !next_id; w; node; scope }

let mk node w = fresh node w !ambient_scope

let create_builder () =
  { inputs = []; outputs = []; named = []; scope_stack = [] }

let width s = s.w

let scope_path stack = String.concat "/" (List.rev stack)

let in_scope b name f =
  b.scope_stack <- name :: b.scope_stack;
  let saved = !ambient_scope in
  ambient_scope := scope_path b.scope_stack;
  let finally () =
    b.scope_stack <- List.tl b.scope_stack;
    ambient_scope := saved
  in
  match f () with
  | v ->
    finally ();
    v
  | exception e ->
    finally ();
    raise e

let at_scope b path f =
  let saved_stack = b.scope_stack in
  let saved = !ambient_scope in
  b.scope_stack <- [ path ];
  ambient_scope := path;
  let finally () =
    b.scope_stack <- saved_stack;
    ambient_scope := saved
  in
  match f () with
  | v ->
    finally ();
    v
  | exception e ->
    finally ();
    raise e

let input b name w =
  if List.mem_assoc name b.inputs then
    invalid_arg (Printf.sprintf "Rtl.input: duplicate port %S" name);
  let s = mk (Input name) w in
  b.inputs <- (name, s) :: b.inputs;
  s

let output b name s =
  if List.mem_assoc name b.outputs then
    invalid_arg (Printf.sprintf "Rtl.output: duplicate port %S" name);
  b.outputs <- (name, s) :: b.outputs

let name_net b name s =
  if List.mem_assoc name b.named then
    invalid_arg (Printf.sprintf "Rtl.name_net: duplicate name %S" name);
  b.named <- (name, s) :: b.named

let constant ~width:w n =
  mk (Const (Array.init w (fun i -> Bit.of_bool ((n lsr i) land 1 = 1)))) w

let zero w = constant ~width:w 0
let ones w = constant ~width:w ((1 lsl w) - 1)
let vdd = constant ~width:1 1
let gnd = constant ~width:1 0

let check_same name a b =
  if a.w <> b.w then
    invalid_arg
      (Printf.sprintf "Rtl.%s: width mismatch (%d vs %d)" name a.w b.w)

let ( ~: ) a = mk (Not a) a.w

let op2 name op a b =
  check_same name a b;
  mk (Op2 (op, a, b)) a.w

let ( &: ) a b = op2 "(&:)" Band a b
let ( |: ) a b = op2 "(|:)" Bor a b
let ( ^: ) a b = op2 "(^:)" Bxor a b
let xnor a b = op2 "xnor" Bxnor a b

let mux2 sel f t =
  if sel.w <> 1 then invalid_arg "Rtl.mux2: selector must be 1 bit";
  check_same "mux2" f t;
  mk (Mux2 (sel, f, t)) f.w

let concat parts =
  match parts with
  | [] -> invalid_arg "Rtl.concat: empty"
  | [ s ] -> s
  | _ -> mk (Concat parts) (List.fold_left (fun acc s -> acc + s.w) 0 parts)

let select s ~hi ~lo =
  if lo < 0 || hi < lo || hi >= s.w then
    invalid_arg
      (Printf.sprintf "Rtl.select: [%d:%d] out of range for width %d" hi lo s.w);
  if lo = 0 && hi = s.w - 1 then s else mk (Select (s, hi, lo)) (hi - lo + 1)

let bit s i = select s ~hi:i ~lo:i
let msb s = bit s (s.w - 1)

let repeat s n =
  if n <= 0 then invalid_arg "Rtl.repeat: n <= 0";
  concat (List.init n (fun _ -> s))

let uresize s w =
  if w = s.w then s
  else if w < s.w then select s ~hi:(w - 1) ~lo:0
  else concat [ s; zero (w - s.w) ]

let sresize s w =
  if w = s.w then s
  else if w < s.w then select s ~hi:(w - 1) ~lo:0
  else concat [ s; repeat (msb s) (w - s.w) ]

let rec mux sel cases =
  let n = List.length cases in
  if n <> 1 lsl sel.w then
    invalid_arg
      (Printf.sprintf "Rtl.mux: %d cases for a %d-bit selector" n sel.w);
  match cases with
  | [ only ] -> only
  | _ ->
    let rec split i = function
      | [] -> ([], [])
      | x :: rest ->
        let a, b = split (i + 1) rest in
        if i < n / 2 then (x :: a, b) else (a, x :: b)
    in
    let lo_cases, hi_cases = split 0 cases in
    let sel_rest = select sel ~hi:(sel.w - 1) ~lo:(sel.w - 1) in
    if sel.w = 1 then mux2 sel (List.nth cases 0) (List.nth cases 1)
    else
      let sel_lo = select sel ~hi:(sel.w - 2) ~lo:0 in
      mux2 sel_rest (mux sel_lo lo_cases) (mux sel_lo hi_cases)

let onehot_select pairs ~default =
  match pairs with
  | [] -> default
  | (_, v0) :: _ ->
    let w = v0.w in
    let masked =
      List.map (fun (en, v) -> repeat en w &: v) pairs
    in
    let any = List.fold_left (fun acc (en, _) -> acc |: en) gnd pairs in
    let ored = List.fold_left ( |: ) (List.hd masked) (List.tl masked) in
    ored |: (repeat (~:any) w &: default)

let adder ?cin a b =
  check_same "add" a b;
  let cin = match cin with Some c -> c | None -> gnd in
  if cin.w <> 1 then invalid_arg "Rtl.add: carry-in must be 1 bit";
  mk (Adder (a, b, cin)) (a.w + 1)

let add ?cin a b = select (adder ?cin a b) ~hi:(a.w - 1) ~lo:0

let add_co ?cin a b =
  let s = adder ?cin a b in
  (select s ~hi:(a.w - 1) ~lo:0, bit s a.w)

let sub_co a b =
  let s = adder ~cin:vdd a (~:b) in
  (select s ~hi:(a.w - 1) ~lo:0, bit s a.w)

let sub a b = fst (sub_co a b)
let negate a = sub (zero a.w) a

let reduce_or s =
  let rec go acc i = if i >= s.w then acc else go (acc |: bit s i) (i + 1) in
  if s.w = 1 then s else go (bit s 0) 1

let reduce_and s =
  let rec go acc i = if i >= s.w then acc else go (acc &: bit s i) (i + 1) in
  if s.w = 1 then s else go (bit s 0) 1

let is_zero s = ~:(reduce_or s)
let ( ==: ) a b = is_zero (a ^: b)
let ( <>: ) a b = reduce_or (a ^: b)
let eq_const a n = a ==: constant ~width:a.w n

let ( <: ) a b =
  (* unsigned: a < b iff no carry-out of a + ~b + 1 *)
  let _, cout = sub_co a b in
  ~:cout

let ( >=: ) a b = ~:(a <: b)

let sll_const s n =
  if n = 0 then s
  else if n >= s.w then zero s.w
  else concat [ zero n; select s ~hi:(s.w - 1 - n) ~lo:0 ]

let srl_const s n =
  if n = 0 then s
  else if n >= s.w then zero s.w
  else concat [ select s ~hi:(s.w - 1) ~lo:n; zero n ]

let ( *: ) a b =
  (* shift-add array multiplier *)
  let wout = a.w + b.w in
  let acc = ref (zero wout) in
  for i = 0 to b.w - 1 do
    let pp = repeat (bit b i) a.w &: a in
    let shifted = if i = 0 then pp else concat [ zero i; pp ] in
    acc := add !acc (uresize shifted wout)
  done;
  !acc

let reg b ?enable ?clear ?(clear_to = 0) ~init d =
  ignore b;
  mk (Reg { init; d; enable; clear; clear_to }) d.w

let wire w = mk (Wire { driver = None }) w

let ( <== ) w s =
  match w.node with
  | Wire cell ->
    (match cell.driver with
    | Some _ -> invalid_arg "Rtl.(<==): wire already assigned"
    | None ->
      if w.w <> s.w then invalid_arg "Rtl.(<==): width mismatch";
      cell.driver <- Some s)
  | _ -> invalid_arg "Rtl.(<==): not a wire"

(* ------------------------------------------------------------------ *)
(* Reference evaluator                                                  *)

let eval_comb env root =
  let memo : (int, Bvec.t) Hashtbl.t = Hashtbl.create 64 in
  let visiting : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec go s =
    match Hashtbl.find_opt memo s.id with
    | Some v -> v
    | None ->
      let v =
        match s.node with
        | Input name ->
          let v = env name in
          if Bvec.width v <> s.w then
            invalid_arg
              (Printf.sprintf "Rtl.eval_comb: input %S width mismatch" name);
          v
        | Const bits -> Array.copy bits
        | Not a -> Bvec.lnot (go a)
        | Op2 (Band, a, b) -> Bvec.land_ (go a) (go b)
        | Op2 (Bor, a, b) -> Bvec.lor_ (go a) (go b)
        | Op2 (Bxor, a, b) -> Bvec.lxor_ (go a) (go b)
        | Op2 (Bxnor, a, b) -> Bvec.lnot (Bvec.lxor_ (go a) (go b))
        | Mux2 (sel, f, t) ->
          let sv = (go sel).(0) and fv = go f and tv = go t in
          Array.init s.w (fun i -> Bit.mux sv fv.(i) tv.(i))
        | Concat parts ->
          Array.concat (List.map (fun p -> Array.to_list (go p) |> Array.of_list) parts)
        | Select (a, hi, lo) ->
          let av = go a in
          Array.sub av lo (hi - lo + 1)
        | Adder (a, b, cin) ->
          let av = go a and bv = go b and cv = (go cin).(0) in
          let out = Array.make (s.w) Bit.X in
          let carry = ref cv in
          for i = 0 to a.w - 1 do
            let x = av.(i) and y = bv.(i) and c = !carry in
            out.(i) <- Bit.lxor_ (Bit.lxor_ x y) c;
            carry := Bit.lor_ (Bit.land_ x y) (Bit.land_ c (Bit.lor_ x y))
          done;
          out.(a.w) <- !carry;
          out
        | Reg _ -> invalid_arg "Rtl.eval_comb: sequential node"
        | Wire cell -> (
          if Hashtbl.mem visiting s.id then
            invalid_arg "Rtl.eval_comb: combinational cycle through wire";
          Hashtbl.replace visiting s.id ();
          match cell.driver with
          | None -> invalid_arg "Rtl.eval_comb: unassigned wire"
          | Some d ->
            let v = go d in
            Hashtbl.remove visiting s.id;
            v)
      in
      Hashtbl.replace memo s.id v;
      v
  in
  go root

(* ------------------------------------------------------------------ *)
(* Synthesis                                                            *)

module B = Netlist.Builder

type lowerer = {
  nb : B.t;
  cse : (int * int * int * int, int) Hashtbl.t;  (* opcode, fanins -> gate *)
  consts : (Bit.t, int) Hashtbl.t;
  memo : (int, int array) Hashtbl.t;  (* signal id -> gate ids *)
  mutable pending_regs : (regspec * int array * string) list;
  wires_busy : (int, unit) Hashtbl.t;
}

let opcode_of_op = function
  | Gate.Buf -> 2
  | Gate.Not -> 3
  | Gate.And -> 4
  | Gate.Or -> 5
  | Gate.Nand -> 6
  | Gate.Nor -> 7
  | Gate.Xor -> 8
  | Gate.Xnor -> 9
  | Gate.Mux -> 10
  | Gate.Const _ | Gate.Input | Gate.Dff _ -> invalid_arg "opcode_of_op"

let const_gate l v =
  match Hashtbl.find_opt l.consts v with
  | Some id -> id
  | None ->
    let id = B.add_op l.nb (Gate.Const v) [||] in
    Hashtbl.replace l.consts v id;
    id

let const_value l id =
  match (B.gate l.nb id).Gate.op with Gate.Const v -> Some v | _ -> None

(* Create a gate with peephole simplification + structural hashing. *)
let rec emit l scope op (fanin : int array) : int =
  let c i = const_value l fanin.(i) in
  let simplified =
    match op, Array.length fanin with
    | Gate.Buf, _ -> Some fanin.(0)
    | Gate.Not, _ -> (
      match c 0 with
      | Some v -> Some (const_gate l (Bit.lnot v))
      | None -> (
        match (B.gate l.nb fanin.(0)).Gate.op with
        | Gate.Not -> Some (B.gate l.nb fanin.(0)).Gate.fanin.(0)
        | _ -> None))
    | Gate.And, _ -> (
      match c 0, c 1 with
      | Some Bit.Zero, _ | _, Some Bit.Zero -> Some (const_gate l Bit.Zero)
      | Some Bit.One, _ -> Some fanin.(1)
      | _, Some Bit.One -> Some fanin.(0)
      | Some Bit.X, Some Bit.X -> Some (const_gate l Bit.X)
      | _ -> if fanin.(0) = fanin.(1) then Some fanin.(0) else None)
    | Gate.Or, _ -> (
      match c 0, c 1 with
      | Some Bit.One, _ | _, Some Bit.One -> Some (const_gate l Bit.One)
      | Some Bit.Zero, _ -> Some fanin.(1)
      | _, Some Bit.Zero -> Some fanin.(0)
      | Some Bit.X, Some Bit.X -> Some (const_gate l Bit.X)
      | _ -> if fanin.(0) = fanin.(1) then Some fanin.(0) else None)
    | Gate.Xor, _ -> (
      match c 0, c 1 with
      | Some Bit.Zero, _ -> Some fanin.(1)
      | _, Some Bit.Zero -> Some fanin.(0)
      | Some Bit.One, _ -> Some (emit l scope Gate.Not [| fanin.(1) |])
      | _, Some Bit.One -> Some (emit l scope Gate.Not [| fanin.(0) |])
      | Some Bit.X, _ | _, Some Bit.X -> Some (const_gate l Bit.X)
      | _ ->
        if fanin.(0) = fanin.(1) then Some (const_gate l Bit.Zero) else None)
    | Gate.Xnor, _ -> (
      match c 0, c 1 with
      | Some Bit.One, _ -> Some fanin.(1)
      | _, Some Bit.One -> Some fanin.(0)
      | Some Bit.Zero, _ -> Some (emit l scope Gate.Not [| fanin.(1) |])
      | _, Some Bit.Zero -> Some (emit l scope Gate.Not [| fanin.(0) |])
      | Some Bit.X, _ | _, Some Bit.X -> Some (const_gate l Bit.X)
      | _ ->
        if fanin.(0) = fanin.(1) then Some (const_gate l Bit.One) else None)
    | Gate.Mux, _ -> (
      (* fanin = [sel; f; t] *)
      match c 0 with
      | Some Bit.Zero -> Some fanin.(1)
      | Some Bit.One -> Some fanin.(2)
      | _ ->
        if fanin.(1) = fanin.(2) then Some fanin.(1)
        else
          match c 1, c 2 with
          | Some Bit.Zero, Some Bit.One -> Some fanin.(0)
          | Some Bit.One, Some Bit.Zero ->
            Some (emit l scope Gate.Not [| fanin.(0) |])
          | _ -> None)
    | (Gate.Nand | Gate.Nor), _ -> None
    | (Gate.Const _ | Gate.Input | Gate.Dff _), _ -> invalid_arg "emit"
  in
  match simplified with
  | Some id -> id
  | None ->
    let all_const =
      Array.for_all (fun f -> const_value l f <> None) fanin
    in
    if all_const then
      let vals = Array.map (fun f -> Option.get (const_value l f)) fanin in
      const_gate l (Gate.eval op vals)
    else
      let key =
        ( opcode_of_op op,
          fanin.(0),
          (if Array.length fanin > 1 then fanin.(1) else -1),
          if Array.length fanin > 2 then fanin.(2) else -1 )
      in
      (match Hashtbl.find_opt l.cse key with
      | Some id -> id
      | None ->
        let id = B.add_op l.nb ~module_path:scope op fanin in
        Hashtbl.replace l.cse key id;
        id)

let rec lower l (s : signal) : int array =
  match Hashtbl.find_opt l.memo s.id with
  | Some ids -> ids
  | None ->
    let ids =
      match s.node with
      | Input _ ->
        Array.init s.w (fun _ ->
            B.add_op l.nb ~module_path:s.scope Gate.Input [||])
      | Const bits -> Array.map (fun v -> const_gate l v) bits
      | Not a ->
        let av = lower l a in
        Array.map (fun g -> emit l s.scope Gate.Not [| g |]) av
      | Op2 (op, a, b) ->
        let gop =
          match op with
          | Band -> Gate.And
          | Bor -> Gate.Or
          | Bxor -> Gate.Xor
          | Bxnor -> Gate.Xnor
        in
        let av = lower l a and bv = lower l b in
        Array.init s.w (fun i -> emit l s.scope gop [| av.(i); bv.(i) |])
      | Mux2 (sel, f, t) ->
        let sv = (lower l sel).(0) in
        let fv = lower l f and tv = lower l t in
        Array.init s.w (fun i -> emit l s.scope Gate.Mux [| sv; fv.(i); tv.(i) |])
      | Concat parts ->
        Array.concat (List.map (lower l) parts)
      | Select (a, hi, lo) ->
        let av = lower l a in
        Array.sub av lo (hi - lo + 1)
      | Adder (a, b, cin) ->
        let av = lower l a and bv = lower l b in
        let cv = (lower l cin).(0) in
        let out = Array.make s.w 0 in
        let carry = ref cv in
        for i = 0 to a.w - 1 do
          let x = av.(i) and y = bv.(i) and cgate = !carry in
          let axb = emit l s.scope Gate.Xor [| x; y |] in
          out.(i) <- emit l s.scope Gate.Xor [| axb; cgate |];
          let t1 = emit l s.scope Gate.And [| x; y |] in
          let t2 = emit l s.scope Gate.And [| cgate; axb |] in
          carry := emit l s.scope Gate.Or [| t1; t2 |]
        done;
        out.(a.w) <- !carry;
        out
      | Reg spec ->
        let init_bit i = Bit.of_bool ((spec.init lsr i) land 1 = 1) in
        let q =
          Array.init s.w (fun i ->
              B.add_op l.nb ~module_path:s.scope (Gate.Dff (init_bit i)) [| 0 |])
        in
        Hashtbl.replace l.memo s.id q;
        l.pending_regs <- (spec, q, s.scope) :: l.pending_regs;
        q
      | Wire cell -> (
        if Hashtbl.mem l.wires_busy s.id then
          failwith "Rtl.synthesize: combinational cycle through wire";
        Hashtbl.replace l.wires_busy s.id ();
        match cell.driver with
        | None -> failwith "Rtl.synthesize: unassigned wire"
        | Some d ->
          let v = lower l d in
          Hashtbl.remove l.wires_busy s.id;
          v)
    in
    (* Regs insert their own memo entry before lowering d. *)
    if not (Hashtbl.mem l.memo s.id) then Hashtbl.replace l.memo s.id ids;
    ids

let patch_reg l (spec, q, scope) =
  let dv = lower l spec.d in
  let with_enable =
    match spec.enable with
    | None -> dv
    | Some en ->
      let eg = (lower l en).(0) in
      Array.mapi (fun i d -> emit l scope Gate.Mux [| eg; q.(i); d |]) dv
  in
  let next =
    match spec.clear with
    | None -> with_enable
    | Some clr ->
      let cg = (lower l clr).(0) in
      Array.mapi
        (fun i d ->
          let cv = const_gate l (Bit.of_bool ((spec.clear_to lsr i) land 1 = 1)) in
          emit l scope Gate.Mux [| cg; d; cv |])
        with_enable
  in
  Array.iteri
    (fun i dff_id ->
      let g = B.gate l.nb dff_id in
      B.set l.nb dff_id { g with Gate.fanin = [| next.(i) |] })
    q

let synthesize b =
  let l =
    {
      nb = B.create ();
      cse = Hashtbl.create 4096;
      consts = Hashtbl.create 3;
      memo = Hashtbl.create 4096;
      pending_regs = [];
      wires_busy = Hashtbl.create 16;
    }
  in
  (* Lower inputs first so port gate order is stable. *)
  let in_ports = List.rev b.inputs |> List.map (fun (n, s) -> (n, lower l s)) in
  let out_ports =
    List.rev b.outputs |> List.map (fun (n, s) -> (n, lower l s))
  in
  let named = List.rev b.named |> List.map (fun (n, s) -> (n, lower l s)) in
  (* Resolve register next-state functions (may discover more logic and
     more registers). *)
  let rec drain () =
    match l.pending_regs with
    | [] -> ()
    | batch ->
      l.pending_regs <- [];
      List.iter (patch_reg l) (List.rev batch);
      drain ()
  in
  drain ();
  List.iter (fun (n, ids) -> B.set_input_port l.nb n ids) in_ports;
  List.iter (fun (n, ids) -> B.set_output_port l.nb n ids) out_ports;
  List.iter (fun (n, ids) -> B.set_name l.nb n ids) named;
  let net = B.finish l.nb in
  (* Fanout-based drive selection: heavily loaded gates get the X2 cell
     (roughly what a timing-driven synthesis run would do). *)
  let fanout = Netlist.fanout net in
  let net =
    Netlist.map_gates net (fun id g ->
        if Array.length fanout.(id) >= 5 && not (Gate.is_source g) then
          { g with Gate.drive = 1 }
        else g)
  in
  ignore (Netlist.levelize net);
  net
