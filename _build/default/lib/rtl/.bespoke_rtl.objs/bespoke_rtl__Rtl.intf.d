lib/rtl/rtl.mli: Bespoke_logic Bespoke_netlist
