lib/rtl/rtl.ml: Array Bespoke_logic Bespoke_netlist Hashtbl List Option Printf String
