(** Hardware-construction DSL and synthesizer.

    Circuits are built as signal DAGs (vectors, LSB first) and then
    [synthesize]d into a {!Bespoke_netlist.Netlist.t} of 2-input gates,
    muxes and DFFs, with structural hashing, constant folding and
    fanout-based drive selection.  This stands in for the paper's
    RTL-to-gates synthesis (Synopsys Design Compiler).

    The DSL is single-threaded: signal constructors record the ambient
    hierarchical scope installed by {!in_scope}. *)

type builder
type signal

val create_builder : unit -> builder
val width : signal -> int

(** {1 Ports, hierarchy, naming} *)

val input : builder -> string -> int -> signal
val output : builder -> string -> signal -> unit

val name_net : builder -> string -> signal -> unit
(** Register an analysis hook: the net becomes observable by name in
    the synthesized netlist without being a design output. *)

val in_scope : builder -> string -> (unit -> 'a) -> 'a
(** Gates created inside run under ["parent/child"] module paths. *)

val at_scope : builder -> string -> (unit -> 'a) -> 'a
(** Like {!in_scope}, but absolute: the given path replaces the whole
    current scope stack (for shared infrastructure that must not be
    attributed to whichever module happens to instantiate it). *)

(** {1 Constants} *)

val constant : width:int -> int -> signal
val zero : int -> signal
val ones : int -> signal
val vdd : signal
val gnd : signal

(** {1 Bitwise operators} *)

val ( ~: ) : signal -> signal
val ( &: ) : signal -> signal -> signal
val ( |: ) : signal -> signal -> signal
val ( ^: ) : signal -> signal -> signal
val xnor : signal -> signal -> signal

(** {1 Structure} *)

val concat : signal list -> signal
(** LSB-first: [concat [lo; hi]] places [lo] in the low bits. *)

val select : signal -> hi:int -> lo:int -> signal
val bit : signal -> int -> signal
val msb : signal -> signal
val repeat : signal -> int -> signal
val uresize : signal -> int -> signal  (* zero-extend / truncate *)
val sresize : signal -> int -> signal  (* sign-extend / truncate *)

(** {1 Mux / selection} *)

val mux2 : signal -> signal -> signal -> signal
(** [mux2 sel f t]: [f] when [sel] = 0, [t] when [sel] = 1.  [sel] must
    be 1 bit wide; [f] and [t] the same width. *)

val mux : signal -> signal list -> signal
(** Indexed selection; the list length must be [2^(width sel)]. *)

val onehot_select : (signal * signal) list -> default:signal -> signal
(** [(enable, value)] pairs; enables are expected mutually exclusive,
    implemented as an AND/OR network: out = OR(en_i & v_i) | (none & default). *)

(** {1 Arithmetic / comparison (unsigned two's complement)} *)

val add : ?cin:signal -> signal -> signal -> signal
(** Result has the operand width (carry-out discarded). *)

val add_co : ?cin:signal -> signal -> signal -> signal * signal
(** Result plus carry-out. *)

val sub : signal -> signal -> signal
val sub_co : signal -> signal -> signal * signal
(** Carry-out of [a + ~b + 1] — the MSP430 C flag convention for SUB/CMP. *)

val negate : signal -> signal
val ( ==: ) : signal -> signal -> signal
val ( <>: ) : signal -> signal -> signal
val eq_const : signal -> int -> signal
val ( <: ) : signal -> signal -> signal  (* unsigned less-than, 1 bit *)
val ( >=: ) : signal -> signal -> signal
val ( *: ) : signal -> signal -> signal
(** Array multiplier; result width is the sum of operand widths. *)

val reduce_or : signal -> signal
val reduce_and : signal -> signal
val is_zero : signal -> signal

(** {1 Shifts} *)

val sll_const : signal -> int -> signal
val srl_const : signal -> int -> signal

(** {1 Sequential} *)

val reg :
  builder ->
  ?enable:signal ->
  ?clear:signal ->
  ?clear_to:int ->
  init:int ->
  signal ->
  signal
(** Positive-edge DFF bank.  [enable] gates updates, [clear] is a
    synchronous clear to [clear_to] (default 0, priority over enable).
    [init] is the power-on/reset value. *)

val wire : int -> signal
val ( <== ) : signal -> signal -> unit
(** Assign a wire's driver (exactly once).  Wires allow feedback; a
    combinational loop through wires is rejected at synthesis. *)

(** {1 Reference semantics (for tests)} *)

val eval_comb : (string -> Bespoke_logic.Bvec.t) -> signal -> Bespoke_logic.Bvec.t
(** Direct ternary evaluation of a register-free signal DAG given
    input-port values.  @raise Invalid_argument on [Reg] nodes or
    unassigned wires. *)

(** {1 Synthesis} *)

val synthesize : builder -> Bespoke_netlist.Netlist.t
(** Lower every output, named net and reachable register to gates.
    The result is validated and levelized (combinational loops are
    reported here). *)
