type t = Bit.t array

let create n b = Array.make n b
let width = Array.length
let equal a b = width a = width b && Array.for_all2 Bit.equal a b
let get (v : t) i = v.(i)
let set (v : t) i b = v.(i) <- b
let copy = Array.copy

let of_int ~width:w n =
  Array.init w (fun i -> Bit.of_bool ((n lsr i) land 1 = 1))

let to_int v =
  let rec go i acc =
    if i >= width v then Some acc
    else
      match v.(i) with
      | Bit.Zero -> go (i + 1) acc
      | Bit.One -> go (i + 1) (acc lor (1 lsl i))
      | Bit.X -> None
  in
  go 0 0

let to_int_exn v =
  match to_int v with
  | Some n -> n
  | None -> invalid_arg "Bvec.to_int_exn: contains X"

let to_signed_int v =
  match to_int v with
  | None -> None
  | Some n ->
    let w = width v in
    if w > 0 && n land (1 lsl (w - 1)) <> 0 then Some (n - (1 lsl w))
    else Some n

let is_known v = Array.for_all Bit.is_known v
let all_x n = create n Bit.X

let of_string s =
  let n = String.length s in
  Array.init n (fun i -> Bit.of_char s.[n - 1 - i])

let to_string v =
  String.init (width v) (fun i -> Bit.to_char v.(width v - 1 - i))

let pp fmt v = Format.pp_print_string fmt (to_string v)

let merge a b =
  if width a <> width b then invalid_arg "Bvec.merge: width mismatch";
  Array.map2 Bit.merge a b

let subsumes ~general ~specific =
  width general = width specific
  && Array.for_all2 Bit.subsumes general specific

let count_x v =
  Array.fold_left (fun acc b -> if Bit.is_known b then acc else acc + 1) 0 v

let concretizations v =
  let rec go i acc =
    if i >= width v then acc
    else
      match v.(i) with
      | Bit.Zero | Bit.One -> go (i + 1) acc
      | Bit.X ->
        let fill b u =
          let u = copy u in
          u.(i) <- b;
          u
        in
        go (i + 1)
          (List.concat_map (fun u -> [ fill Bit.Zero u; fill Bit.One u ]) acc)
  in
  go 0 [ copy v ]

let lnot v = Array.map Bit.lnot v

let map2 name f a b =
  if width a <> width b then invalid_arg ("Bvec." ^ name ^ ": width mismatch");
  Array.map2 f a b

let land_ a b = map2 "land_" Bit.land_ a b
let lor_ a b = map2 "lor_" Bit.lor_ a b
let lxor_ a b = map2 "lxor_" Bit.lxor_ a b

let add a b =
  if width a <> width b then invalid_arg "Bvec.add: width mismatch";
  let out = create (width a) Bit.X in
  let carry = ref Bit.Zero in
  for i = 0 to width a - 1 do
    let x = a.(i) and y = b.(i) and c = !carry in
    out.(i) <- Bit.lxor_ (Bit.lxor_ x y) c;
    carry := Bit.lor_ (Bit.land_ x y) (Bit.land_ c (Bit.lor_ x y))
  done;
  out

let succ v = add v (of_int ~width:(width v) 1)
