lib/logic/bit.ml: Array Format Int Printf
