lib/logic/bvec.mli: Bit Format
