lib/logic/bvec.ml: Array Bit Format List String
