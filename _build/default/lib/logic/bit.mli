(** Three-valued logic: the scalar value domain of the symbolic simulator.

    [X] represents an unknown value that may be 0 or 1 depending on
    application inputs (paper, Section 3.1).  All operators are the
    standard Kleene/IEEE-1164 ternary extensions of the Boolean
    functions: a gate output is known exactly when the known inputs
    force it (controlling values), and [X] otherwise. *)

type t = Zero | One | X

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_char : t -> char
val of_char : char -> t
(** [of_char] accepts '0', '1', 'x', 'X'.  @raise Invalid_argument otherwise *)

val of_bool : bool -> t

val to_bool_exn : t -> bool
(** @raise Invalid_argument on [X]. *)

val is_known : t -> bool

(** {1 Integer encoding}

    [Zero] = 0, [One] = 1, [X] = 2.  The simulator stores values in
    int arrays with this encoding; the lookup tables below are indexed
    as [a * 3 + b]. *)

val to_int : t -> int
val of_int_exn : int -> t

val code_zero : int
val code_one : int
val code_x : int

(** {1 Ternary operators} *)

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t
val lnand : t -> t -> t
val lnor : t -> t -> t
val lxnor : t -> t -> t

val mux : t -> t -> t -> t
(** [mux sel a b] is [a] when [sel = Zero], [b] when [sel = One]; when
    [sel = X] it is the merge of [a] and [b] (equal branches stay
    known). *)

(** {1 Information order}

    [X] carries less information than a known value.  [merge] is the
    join: used to build conservative superstates (Algorithm 1). *)

val merge : t -> t -> t
(** [merge a b] is [a] if [a = b], else [X]. *)

val subsumes : t -> t -> bool
(** [subsumes general specific]: every concrete value allowed by
    [specific] is allowed by [general].  [X] subsumes everything; a
    known value subsumes only itself. *)

val concretizations : t -> t list
(** [Zero]/[One] map to themselves; [X] maps to [[Zero; One]]. *)

(** {1 Packed operator tables}

    Flat int tables over the 0/1/2 encoding, for the inner loop of the
    levelized simulator.  [tbl_not.(a)], [tbl_and.(a * 3 + b)], and
    [tbl_mux.(sel * 9 + a * 3 + b)]. *)

val tbl_not : int array
val tbl_buf : int array
val tbl_and : int array
val tbl_or : int array
val tbl_nand : int array
val tbl_nor : int array
val tbl_xor : int array
val tbl_xnor : int array
val tbl_mux : int array
val tbl_merge : int array
