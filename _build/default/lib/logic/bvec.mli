(** Ternary bit-vectors (LSB at index 0).

    Used for symbolic register/memory words and for moving values
    between the gate-level world and the integer world of the ISS,
    assembler and test harnesses. *)

type t = Bit.t array

val create : int -> Bit.t -> t
val width : t -> int
val equal : t -> t -> bool
val get : t -> int -> Bit.t
val set : t -> int -> Bit.t -> unit
val copy : t -> t

val of_int : width:int -> int -> t
(** Low [width] bits of the two's-complement representation. *)

val to_int : t -> int option
(** [None] if any bit is [X]; otherwise the unsigned value. *)

val to_int_exn : t -> int
val to_signed_int : t -> int option
val is_known : t -> bool
val all_x : int -> t
val of_string : string -> t
(** MSB-first, e.g. ["10x1"]. *)

val to_string : t -> string
(** MSB-first. *)

val pp : Format.formatter -> t -> unit

(** {1 Information order} *)

val merge : t -> t -> t
(** Pointwise [Bit.merge].  @raise Invalid_argument on width mismatch. *)

val subsumes : general:t -> specific:t -> bool
val concretizations : t -> t list
(** Exponential in the number of X bits; callers must bound it. *)

val count_x : t -> int

(** {1 Ternary arithmetic / logic} *)

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t

val add : t -> t -> t
(** Ternary ripple-carry addition (X carries propagate). *)

val succ : t -> t
