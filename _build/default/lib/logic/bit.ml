type t = Zero | One | X

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let compare a b =
  let rank = function Zero -> 0 | One -> 1 | X -> 2 in
  Int.compare (rank a) (rank b)

let to_char = function Zero -> '0' | One -> '1' | X -> 'x'

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | 'x' | 'X' -> X
  | c -> invalid_arg (Printf.sprintf "Bit.of_char: %c" c)

let pp fmt b = Format.pp_print_char fmt (to_char b)
let of_bool b = if b then One else Zero

let to_bool_exn = function
  | Zero -> false
  | One -> true
  | X -> invalid_arg "Bit.to_bool_exn: X"

let is_known = function Zero | One -> true | X -> false
let to_int = function Zero -> 0 | One -> 1 | X -> 2

let of_int_exn = function
  | 0 -> Zero
  | 1 -> One
  | 2 -> X
  | n -> invalid_arg (Printf.sprintf "Bit.of_int_exn: %d" n)

let code_zero = 0
let code_one = 1
let code_x = 2

let lnot = function Zero -> One | One -> Zero | X -> X

let land_ a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | X), (One | X) -> X

let lor_ a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | X), (Zero | X) -> X

let lxor_ a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | (Zero | One), (Zero | One) -> One

let lnand a b = lnot (land_ a b)
let lnor a b = lnot (lor_ a b)
let lxnor a b = lnot (lxor_ a b)
let merge a b = if equal a b then a else X

let mux sel a b =
  match sel with
  | Zero -> a
  | One -> b
  | X -> merge a b

let subsumes general specific =
  match general, specific with
  | X, _ -> true
  | (Zero | One), _ -> equal general specific

let concretizations = function
  | Zero -> [ Zero ]
  | One -> [ One ]
  | X -> [ Zero; One ]

let all = [ Zero; One; X ]

let table1 f = Array.init 3 (fun a -> to_int (f (of_int_exn a)))

let table2 f =
  Array.init 9 (fun i -> to_int (f (of_int_exn (i / 3)) (of_int_exn (i mod 3))))

let table3 f =
  Array.init 27 (fun i ->
      to_int
        (f (of_int_exn (i / 9)) (of_int_exn (i / 3 mod 3)) (of_int_exn (i mod 3))))

let tbl_not = table1 lnot
let tbl_buf = table1 (fun b -> b)
let tbl_and = table2 land_
let tbl_or = table2 lor_
let tbl_nand = table2 lnand
let tbl_nor = table2 lnor
let tbl_xor = table2 lxor_
let tbl_xnor = table2 lxnor
let tbl_mux = table3 mux
let tbl_merge = table2 merge

(* Referenced so the exhaustive-value list is available to tests via
   [concretizations]; [all] itself is intentionally not exported. *)
let _ = all
