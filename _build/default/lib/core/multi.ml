module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist

let union_toggled = function
  | [] -> invalid_arg "Multi.union_toggled: empty"
  | first :: rest ->
    let acc = Array.copy first in
    List.iter
      (fun t ->
        if Array.length t <> Array.length acc then
          invalid_arg "Multi.union_toggled: size mismatch";
        Array.iteri (fun i b -> if b then acc.(i) <- true) t)
      rest;
    acc

let intersect_untoggled = union_toggled

let supported ~design_toggled ~app_toggled =
  let ok = ref true in
  Array.iteri
    (fun i b -> if b && not design_toggled.(i) then ok := false)
    app_toggled;
  !ok

let tailor_multi net ~reports =
  match reports with
  | [] -> invalid_arg "Multi.tailor_multi: no applications"
  | (_, constants) :: _ ->
    let toggled = union_toggled (List.map fst reports) in
    Cut.tailor net ~possibly_toggled:toggled ~constants

let usable_gate_count net toggled =
  let n = ref 0 in
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.Gate.op with
      | Gate.Input | Gate.Const _ -> ()
      | _ -> if toggled.(id) then incr n)
    net.Netlist.gates;
  !n
