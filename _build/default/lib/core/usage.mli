(** Per-module usage breakdowns for the paper's figures.

    "Real" gates only: port pins and tie cells are excluded
    everywhere. *)

module Netlist := Bespoke_netlist.Netlist

type module_row = {
  module_name : string;
  total : int;
  active : int;  (** gates the application can toggle *)
}

val per_module : Netlist.t -> bool array -> module_row list
(** Sorted by module name; a final row named ["(total)"] sums the
    rest. *)

val usable_fraction : Netlist.t -> bool array -> float
val unused_count : Netlist.t -> bool array -> int

type diff = {
  common_untoggled : int;  (** untoggled by both applications *)
  unique_a : int;  (** untoggled only by application A *)
  unique_b : int;
  per_module_unique_a : (string * int) list;
  per_module_unique_b : (string * int) list;
}

val compare_unused : Netlist.t -> bool array -> bool array -> diff
(** The Fig 3 / Fig 4 die-graph comparison in tabular form: gates
    neither application toggles vs. gates only one of them leaves
    untoggled, per module. *)

val pp_per_module : Format.formatter -> module_row list -> unit
