lib/core/usage.ml: Array Bespoke_netlist Format Hashtbl List Option String
