lib/core/usage.mli: Bespoke_netlist Format
