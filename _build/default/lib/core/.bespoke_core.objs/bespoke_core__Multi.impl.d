lib/core/multi.ml: Array Bespoke_netlist Cut List
