lib/core/multi.mli: Bespoke_logic Bespoke_netlist Cut
