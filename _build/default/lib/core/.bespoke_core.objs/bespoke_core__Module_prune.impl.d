lib/core/module_prune.ml: Array Bespoke_netlist Bespoke_power Cut Hashtbl List Option Resynth String
