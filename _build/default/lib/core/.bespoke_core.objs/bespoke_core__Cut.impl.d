lib/core/cut.ml: Array Bespoke_logic Bespoke_netlist Bespoke_power Format Resynth
