lib/core/cut.mli: Bespoke_logic Bespoke_netlist Format
