lib/core/runner.mli: Bespoke_analysis Bespoke_netlist Bespoke_programs
