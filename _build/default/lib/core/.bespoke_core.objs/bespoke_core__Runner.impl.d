lib/core/runner.ml: Array Bespoke_analysis Bespoke_cpu Bespoke_isa Bespoke_logic Bespoke_netlist Bespoke_programs Bespoke_sim Lazy List Printf
