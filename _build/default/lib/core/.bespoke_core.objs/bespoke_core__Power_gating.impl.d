lib/core/power_gating.ml: Array Bespoke_cells Bespoke_cpu Bespoke_logic Bespoke_netlist Bespoke_power Bespoke_programs Bespoke_sim Float Hashtbl List Runner
