lib/core/profiling.mli: Bespoke_netlist Bespoke_programs
