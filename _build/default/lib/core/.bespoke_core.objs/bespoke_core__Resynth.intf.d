lib/core/resynth.mli: Bespoke_netlist
