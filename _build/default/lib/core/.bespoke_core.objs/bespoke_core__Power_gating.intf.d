lib/core/power_gating.mli: Bespoke_netlist Bespoke_programs
