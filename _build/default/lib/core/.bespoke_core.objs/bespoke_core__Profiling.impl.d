lib/core/profiling.ml: Array Bespoke_netlist Bespoke_programs Float List Runner
