lib/core/module_prune.mli: Bespoke_logic Bespoke_netlist
