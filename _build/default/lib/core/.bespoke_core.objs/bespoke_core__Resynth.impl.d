lib/core/resynth.ml: Array Bespoke_logic Bespoke_netlist Bespoke_sim Hashtbl List Option
