module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist
module Sta = Bespoke_power.Sta

let removable_modules net (toggled : bool array) =
  let active : (string, bool) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun id (g : Gate.t) ->
      match g.Gate.op with
      | Gate.Input | Gate.Const _ -> ()
      | _ ->
        let m = Netlist.module_of net id in
        let was = Option.value ~default:false (Hashtbl.find_opt active m) in
        Hashtbl.replace active m (was || toggled.(id)))
    net.Netlist.gates;
  Hashtbl.fold (fun m act acc -> if act then acc else m :: acc) active []
  |> List.sort String.compare

let prune net ~possibly_toggled ~constants =
  let dead = removable_modules net possibly_toggled in
  let dead_set = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace dead_set m ()) dead;
  let mask =
    Array.mapi
      (fun id (g : Gate.t) ->
        match g.Gate.op with
        | Gate.Input | Gate.Const _ -> true
        | _ ->
          (* keep unless the whole module is unusable *)
          not (Hashtbl.mem dead_set (Netlist.module_of net id)))
      net.Netlist.gates
  in
  let stitched = Cut.cut_and_stitch net ~possibly_toggled:mask ~constants in
  let pruned = Sta.downsize (Resynth.optimize stitched) in
  (pruned, dead)
