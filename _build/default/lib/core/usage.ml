module Gate = Bespoke_netlist.Gate
module Netlist = Bespoke_netlist.Netlist

type module_row = { module_name : string; total : int; active : int }

let is_real (g : Gate.t) =
  match g.Gate.op with Gate.Input | Gate.Const _ -> false | _ -> true

let per_module net (toggled : bool array) =
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun id (g : Gate.t) ->
      if is_real g then begin
        let m = Netlist.module_of net id in
        let total, active =
          Option.value ~default:(0, 0) (Hashtbl.find_opt tbl m)
        in
        Hashtbl.replace tbl m
          (total + 1, if toggled.(id) then active + 1 else active)
      end)
    net.Netlist.gates;
  let rows =
    Hashtbl.fold
      (fun module_name (total, active) acc ->
        { module_name; total; active } :: acc)
      tbl []
    |> List.sort (fun a b -> String.compare a.module_name b.module_name)
  in
  let sum_total = List.fold_left (fun acc r -> acc + r.total) 0 rows in
  let sum_active = List.fold_left (fun acc r -> acc + r.active) 0 rows in
  rows @ [ { module_name = "(total)"; total = sum_total; active = sum_active } ]

let usable_fraction net toggled =
  let total = ref 0 and active = ref 0 in
  Array.iteri
    (fun id (g : Gate.t) ->
      if is_real g then begin
        incr total;
        if toggled.(id) then incr active
      end)
    net.Netlist.gates;
  if !total = 0 then 0.0 else float_of_int !active /. float_of_int !total

let unused_count net toggled =
  let n = ref 0 in
  Array.iteri
    (fun id (g : Gate.t) ->
      if is_real g && not toggled.(id) then incr n)
    net.Netlist.gates;
  !n

type diff = {
  common_untoggled : int;
  unique_a : int;
  unique_b : int;
  per_module_unique_a : (string * int) list;
  per_module_unique_b : (string * int) list;
}

let compare_unused net (ta : bool array) (tb : bool array) =
  let common = ref 0 and ua = ref 0 and ub = ref 0 in
  let ma : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let mb : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl m = Hashtbl.replace tbl m (1 + Option.value ~default:0 (Hashtbl.find_opt tbl m)) in
  Array.iteri
    (fun id (g : Gate.t) ->
      if is_real g then
        match ta.(id), tb.(id) with
        | false, false -> incr common
        | false, true ->
          incr ua;
          bump ma (Netlist.module_of net id)
        | true, false ->
          incr ub;
          bump mb (Netlist.module_of net id)
        | true, true -> ())
    net.Netlist.gates;
  let dump tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    common_untoggled = !common;
    unique_a = !ua;
    unique_b = !ub;
    per_module_unique_a = dump ma;
    per_module_unique_b = dump mb;
  }

let pp_per_module fmt rows =
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-16s %5d / %5d (%.1f%%)@."
        r.module_name r.active r.total
        (if r.total = 0 then 0.0
         else 100.0 *. float_of_int r.active /. float_of_int r.total))
    rows
