(** The coarse-grained, module-level bespoke baseline (paper Fig 12):
    an Xtensa-like configuration flow that can only drop a whole RTL
    module, and only when the gate activity analysis shows {e no} gate
    of that module is usable by the application. *)

module Netlist := Bespoke_netlist.Netlist

val removable_modules : Netlist.t -> bool array -> string list
(** Top-level modules in which no real gate is possibly-toggled. *)

val prune :
  Netlist.t -> possibly_toggled:bool array ->
  constants:Bespoke_logic.Bit.t array ->
  Netlist.t * string list
(** Cut only the gates of wholly-unusable modules (stitching their
    constant outputs), then re-synthesize.  Returns the design and the
    list of removed modules. *)
