lib/analysis/activity.mli: Bespoke_cpu Bespoke_logic Bespoke_netlist
