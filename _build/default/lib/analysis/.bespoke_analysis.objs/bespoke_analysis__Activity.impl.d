lib/analysis/activity.ml: Array Bespoke_cpu Bespoke_isa Bespoke_logic Bespoke_netlist Bespoke_sim Hashtbl Lazy List Option Printf Stack
