module Cells = Bespoke_cells.Cells

let vmin ~critical_path_ps ~period_ps =
  if critical_path_ps <= 0.0 then Cells.vdd_floor
  else begin
    let fits v =
      Cells.delay_scale ~vdd:v *. critical_path_ps *. Cells.guard_band
      <= period_ps
    in
    let rec search v best =
      if v < Cells.vdd_floor -. 1e-9 then best
      else if fits v then search (v -. 0.01) v
      else best
    in
    search Cells.vdd_nominal Cells.vdd_nominal
  end

let max_frequency_scale ~critical_path_ps ~period_ps =
  if critical_path_ps <= 0.0 then 1.0
  else Float.max 1.0 (period_ps /. (critical_path_ps *. Cells.guard_band))
