(** Static timing analysis over the gate netlist.

    Linear delay model from {!Bespoke_cells.Cells}: gate delay =
    intrinsic + drive resistance x (wire capacitance + fanin pin
    capacitance of the readers).  Paths start at primary inputs,
    constants and DFF clk->q arcs, and end at DFF D pins (plus setup)
    and primary outputs. *)

type t = {
  arrival_ps : float array;  (** per gate output *)
  critical_path_ps : float;
  critical_gate : int;  (** endpoint gate id of the critical path *)
}

val analyze : Bespoke_netlist.Netlist.t -> t

val slack_fraction : baseline_ps:float -> t -> float
(** [(baseline - critical) / baseline], the paper's "timing slack %". *)

val downsize : Bespoke_netlist.Netlist.t -> Bespoke_netlist.Netlist.t
(** Re-select drive strengths for the (pruned) netlist: high drive
    only where fanout still warrants it — the slack-driven cell
    downsizing step of the paper's re-synthesis. *)
