(** Voltage scaling: turning exposed timing slack into power savings
    (paper Table 2).

    The minimum safe supply is the lowest voltage (searched in 10 mV
    steps, worst-case PVT guard band applied) at which the design's
    critical path still fits in the clock period. *)

val vmin :
  critical_path_ps:float -> period_ps:float -> float
(** Clamped to [Cells.vdd_floor .. Cells.vdd_nominal]. *)

val max_frequency_scale : critical_path_ps:float -> period_ps:float -> float
(** How much faster the design could be clocked at nominal voltage. *)
