lib/power/voltage.ml: Bespoke_cells Float
