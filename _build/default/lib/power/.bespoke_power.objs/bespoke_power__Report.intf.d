lib/power/report.mli: Bespoke_netlist Format
