lib/power/sta.mli: Bespoke_netlist
