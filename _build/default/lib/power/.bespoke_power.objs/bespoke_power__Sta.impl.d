lib/power/sta.ml: Array Bespoke_cells Bespoke_netlist Float List
