lib/power/report.ml: Array Bespoke_cells Bespoke_netlist Format Hashtbl List Option String
