lib/power/voltage.mli:
