(** Netlist interchange: structural Verilog and Graphviz exports.

    The Verilog writer emits a flat gate-level module (one [assign]
    per combinational gate, one flop process per DFF, asynchronous
    active-high reset) so a bespoke design can be taken to standard
    simulators or synthesis tools.  The DOT writers target inspection:
    the module graph summarizes inter-module connectivity; the full
    gate graph is practical only for small netlists. *)

val to_verilog : ?module_name:string -> Netlist.t -> string

val module_graph_dot : Netlist.t -> string
(** One node per top-level module, edge labels = number of nets
    crossing the boundary. *)

val gate_graph_dot : ?max_gates:int -> Netlist.t -> string
(** Full gate-level graph, clustered by module.
    @raise Invalid_argument when the netlist exceeds [max_gates]
    (default 2000). *)
