(** A single gate instance in a structural netlist.

    Every gate drives exactly one net, identified with the gate's own
    id; [fanin] holds the ids of the gates driving its input pins. *)

type op =
  | Const of Bespoke_logic.Bit.t  (** constant driver; no inputs *)
  | Input  (** primary-input bit; no inputs; value set by the simulator *)
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux  (** fanin [sel; a; b]: output is [a] when sel=0, [b] when sel=1 *)
  | Dff of Bespoke_logic.Bit.t  (** fanin [d]; payload is the reset value *)

type t = {
  op : op;
  fanin : int array;
  module_path : string;
      (** hierarchical instance path, e.g. "cpu/frontend"; "" at top *)
  drive : int;  (** drive-strength index into the cell library (0 = low) *)
}

val arity : op -> int
val is_sequential : t -> bool
val is_source : t -> bool
(** True for gates whose output does not depend combinationally on any
    fanin: [Const], [Input], [Dff]. *)

val op_equal : op -> op -> bool
val op_name : op -> string
val pp_op : Format.formatter -> op -> unit

val eval : op -> Bespoke_logic.Bit.t array -> Bespoke_logic.Bit.t
(** Combinational evaluation ([Dff] evaluates its [d] input, i.e. the
    next-state function; [Input] evaluation is an error). *)
