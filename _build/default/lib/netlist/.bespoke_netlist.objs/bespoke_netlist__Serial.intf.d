lib/netlist/serial.mli: Netlist
