lib/netlist/netlist.ml: Array Bespoke_logic Format Gate Hashtbl List Printf Queue Stack String
