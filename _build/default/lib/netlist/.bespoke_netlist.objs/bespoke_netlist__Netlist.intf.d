lib/netlist/netlist.mli: Format Gate
