lib/netlist/serial.ml: Array Bespoke_logic Buffer Char Gate List Netlist Printf String
