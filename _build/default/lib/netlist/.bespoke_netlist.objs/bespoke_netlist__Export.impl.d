lib/netlist/export.ml: Array Bespoke_logic Buffer Gate Hashtbl List Netlist Option Printf String
