lib/netlist/gate.mli: Bespoke_logic Format
