lib/netlist/gate.ml: Array Bespoke_logic Format Printf
