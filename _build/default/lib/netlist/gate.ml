module Bit = Bespoke_logic.Bit

type op =
  | Const of Bit.t
  | Input
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux
  | Dff of Bit.t

type t = { op : op; fanin : int array; module_path : string; drive : int }

let arity = function
  | Const _ | Input -> 0
  | Buf | Not | Dff _ -> 1
  | And | Or | Nand | Nor | Xor | Xnor -> 2
  | Mux -> 3

let is_sequential g = match g.op with Dff _ -> true | _ -> false

let is_source g =
  match g.op with Const _ | Input | Dff _ -> true | _ -> false

let op_equal a b =
  match a, b with
  | Const x, Const y -> Bit.equal x y
  | Dff x, Dff y -> Bit.equal x y
  | Input, Input
  | Buf, Buf
  | Not, Not
  | And, And
  | Or, Or
  | Nand, Nand
  | Nor, Nor
  | Xor, Xor
  | Xnor, Xnor
  | Mux, Mux -> true
  | ( ( Const _ | Input | Buf | Not | And | Or | Nand | Nor | Xor | Xnor | Mux
      | Dff _ ),
      _ ) -> false

let op_name = function
  | Const b -> Printf.sprintf "const%c" (Bit.to_char b)
  | Input -> "input"
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Or -> "or"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Mux -> "mux"
  | Dff _ -> "dff"

let pp_op fmt op = Format.pp_print_string fmt (op_name op)

let eval op (ins : Bit.t array) =
  match op with
  | Const b -> b
  | Input -> invalid_arg "Gate.eval: Input has no combinational function"
  | Buf -> ins.(0)
  | Not -> Bit.lnot ins.(0)
  | And -> Bit.land_ ins.(0) ins.(1)
  | Or -> Bit.lor_ ins.(0) ins.(1)
  | Nand -> Bit.lnand ins.(0) ins.(1)
  | Nor -> Bit.lnor ins.(0) ins.(1)
  | Xor -> Bit.lxor_ ins.(0) ins.(1)
  | Xnor -> Bit.lxnor ins.(0) ins.(1)
  | Mux -> Bit.mux ins.(0) ins.(1) ins.(2)
  | Dff _ -> ins.(0)
