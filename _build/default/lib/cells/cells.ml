module Gate = Bespoke_netlist.Gate

type cell = {
  name : string;
  area_um2 : float;
  leakage_nw : float;
  input_cap_ff : float;
  intrinsic_ps : float;
  drive_res_ps_per_ff : float;
  internal_sw_ff : float;
}

let drive_strengths = 2

let mk name area leak cap intr res sw =
  {
    name;
    area_um2 = area;
    leakage_nw = leak;
    input_cap_ff = cap;
    intrinsic_ps = intr;
    drive_res_ps_per_ff = res;
    internal_sw_ff = sw;
  }

(* X2 variants: ~1.5x area/leakage, double the input cap, roughly half
   the drive resistance, slightly lower intrinsic delay. *)
let upsize c =
  {
    name = c.name ^ "_x2";
    area_um2 = c.area_um2 *. 1.5;
    leakage_nw = c.leakage_nw *. 1.9;
    input_cap_ff = c.input_cap_ff *. 2.0;
    intrinsic_ps = c.intrinsic_ps *. 0.9;
    drive_res_ps_per_ff = c.drive_res_ps_per_ff *. 0.55;
    internal_sw_ff = c.internal_sw_ff *. 1.7;
  }

let zero_cell name = mk name 0.0 0.0 0.0 0.0 0.0 0.0
let inv = mk "inv_x1" 1.08 2.1 1.6 12.0 6.0 1.2
let buf = mk "buf_x1" 1.44 2.6 1.5 24.0 5.5 2.0
let nand2 = mk "nand2_x1" 1.44 2.9 1.7 16.0 6.5 1.6
let nor2 = mk "nor2_x1" 1.44 2.7 1.7 20.0 7.5 1.6
let and2 = mk "and2_x1" 1.80 3.4 1.7 28.0 6.0 2.4
let or2 = mk "or2_x1" 1.80 3.3 1.7 30.0 6.2 2.4
let xor2 = mk "xor2_x1" 3.24 5.6 3.0 36.0 7.0 3.6
let xnor2 = mk "xnor2_x1" 3.24 5.7 3.0 36.0 7.0 3.6
let mux2 = mk "mux2_x1" 3.60 6.1 2.2 38.0 7.0 3.8
let dff = mk "dff_x1" 7.20 12.4 2.0 96.0 8.0 7.5

let base_of_op (op : Gate.op) =
  match op with
  | Gate.Input -> zero_cell "port"
  | Gate.Const _ -> zero_cell "tie"
  | Gate.Buf -> buf
  | Gate.Not -> inv
  | Gate.And -> and2
  | Gate.Or -> or2
  | Gate.Nand -> nand2
  | Gate.Nor -> nor2
  | Gate.Xor -> xor2
  | Gate.Xnor -> xnor2
  | Gate.Mux -> mux2
  | Gate.Dff _ -> dff

let of_gate op ~drive =
  let c = base_of_op op in
  match op with
  | Gate.Input | Gate.Const _ -> c
  | _ -> if drive <= 0 then c else upsize c

let dff_setup_ps = 42.0
let dff_clk_pin_cap_ff = 1.1

(* Average routed-net capacitance grows with fanout; 65 nm-scale
   figures (~0.2 fF/um, short nets). *)
let wire_cap_ff ~fanout = 0.8 +. (0.9 *. float_of_int (max 1 fanout))

let area_routing_overhead = 1.25
let vdd_nominal = 1.0
let vdd_floor = 0.50
let vth = 0.35
let alpha = 1.3

(* Alpha-power law: gate delay is proportional to V / (V - Vth)^alpha;
   normalize so delay_scale ~vdd:vdd_nominal = 1. *)
let delay_scale ~vdd =
  if vdd <= vth +. 0.05 then infinity
  else
    let raw v = v /. ((v -. vth) ** alpha) in
    raw vdd /. raw vdd_nominal

let dynamic_scale ~vdd = vdd *. vdd /. (vdd_nominal *. vdd_nominal)

(* Leakage falls with Vdd (DIBL + stack effect): model as cubic. *)
let leakage_scale ~vdd = (vdd /. vdd_nominal) ** 3.0

let guard_band = 1.10
