lib/cells/cells.ml: Bespoke_netlist
