lib/cells/cells.mli: Bespoke_netlist
