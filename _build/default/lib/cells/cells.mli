(** Synthetic 65 nm-class standard-cell library.

    Stands in for the paper's TSMC 65GP characterization: per-cell
    area, leakage, pin capacitance and a linear delay model
    (intrinsic + drive resistance x load), at the nominal operating
    point of 1.0 V / 100 MHz.  Absolute values are invented but
    mutually consistent, so design-to-design ratios (the quantities the
    paper reports) are meaningful. *)

type cell = {
  name : string;
  area_um2 : float;
  leakage_nw : float;  (** static power at 1.0 V *)
  input_cap_ff : float;  (** capacitance of each input pin *)
  intrinsic_ps : float;  (** unloaded delay (clk->q for DFFs) *)
  drive_res_ps_per_ff : float;  (** slope of delay vs. output load *)
  internal_sw_ff : float;
      (** equivalent internal switched capacitance per output toggle *)
}

val drive_strengths : int
(** Number of available drive variants per function (X1, X2). *)

val of_gate : Bespoke_netlist.Gate.op -> drive:int -> cell
(** [Input] and [Const] map to zero-cost pseudo-cells (port pins and
    tie cells are free in our model). *)

val dff_setup_ps : float
val dff_clk_pin_cap_ff : float

val wire_cap_ff : fanout:int -> float
(** Estimated routed-wire capacitance of a net, our place-and-route
    proxy. *)

val area_routing_overhead : float
(** Multiplier applied to summed cell area to account for routing /
    utilization, the P&R effect on die area. *)

(** {1 Operating-point scaling}

    Alpha-power-law MOSFET model: delay(v) scales as
    [(v0/v) * ((v0 - vth)/(v - vth))^alpha] relative to [v0] = 1.0 V. *)

val vdd_nominal : float
val vdd_floor : float
(** Lowest supply the cells are characterized for. *)

val delay_scale : vdd:float -> float

val dynamic_scale : vdd:float -> float
(** Proportional to V^2. *)

val leakage_scale : vdd:float -> float

val guard_band : float
(** Multiplier on path delay for worst-case PVT when choosing Vmin. *)
