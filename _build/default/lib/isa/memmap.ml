let ram_base = 0x0200
let ram_words = 1024
let ram_bytes = ram_words * 2
let rom_base = 0xF000
let rom_words = 2048
let rom_bytes = rom_words * 2
let in_ram a = a >= ram_base && a < ram_base + ram_bytes
let in_rom a = a >= rom_base && a <= 0xffff
let in_periph a = a >= 0 && a < ram_base
let reset_vector = 0xFFFE
let irq_vector = 0xFFF0
let sfr_ie = 0x0000
let sfr_ifg = 0x0002
let gpio_in = 0x0010
let gpio_out = 0x0012
let sim_halt = 0x0014
let clk_ctl = 0x0020
let clk_cnt = 0x0022
let wdt_ctl = 0x0030
let wdt_cnt = 0x0032
let dbg_ctl = 0x0040
let dbg_pc = 0x0042
let dbg_brk = 0x0044
let dbg_cyc_lo = 0x0046
let dbg_cyc_hi = 0x0048
let mpy_op1 = 0x0130
let mpy_mac = 0x0134
let mpy_op2 = 0x0138
let mpy_reslo = 0x013A
let mpy_reshi = 0x013C
