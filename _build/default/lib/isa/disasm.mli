(** Disassembly of assembled images. *)

val instruction_at : Asm.image -> int -> (Isa.t * int) option
(** Decode the instruction starting at a byte address; returns the
    instruction and its word count, or [None] if the address is
    outside ROM or does not decode. *)

val listing : Asm.image -> string
(** Human-readable listing of every assembled instruction:
    address, raw words, mnemonic. *)
