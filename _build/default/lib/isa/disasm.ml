let instruction_at (img : Asm.image) addr =
  if not (Memmap.in_rom addr) || addr land 1 = 1 then None
  else begin
    let rom = Asm.image_rom img in
    let word a = rom.(((a - Memmap.rom_base) / 2) land (Memmap.rom_words - 1)) in
    match Isa.decode (word addr) [ word (addr + 2); word (addr + 4) ] with
    | insn, used -> Some (insn, used)
    | exception Isa.Decode_error _ -> None
  end

let listing (img : Asm.image) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "; entry 0x%04x, %d words emitted\n" img.Asm.entry
       (List.length img.Asm.words));
  let rom = Asm.image_rom img in
  List.iter
    (fun a ->
      match instruction_at img a with
      | Some (insn, used) ->
        let words =
          String.concat " "
            (List.init used (fun i ->
                 Printf.sprintf "%04x"
                   rom.(((a + (2 * i) - Memmap.rom_base) / 2)
                        land (Memmap.rom_words - 1))))
        in
        Buffer.add_string buf
          (Printf.sprintf "%04x: %-16s %s\n" a words (Isa.to_string insn))
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "%04x: %04x            ; (not decodable)\n" a
             rom.((a - Memmap.rom_base) / 2)))
    (Asm.instruction_addrs img);
  Buffer.contents buf
