(** The cycle cost of each instruction in the multi-cycle CPU FSM.

    This is the contract between the instruction-set simulator (which
    accumulates these counts) and the gate-level CPU (whose FSM
    structurally takes exactly these cycle counts); the lockstep tests
    check the two agree via the debug cycle counter. *)

val src_ext_cycles : Isa.src -> int
(** 1 when the source needs an extension-word fetch. *)

val src_read_cycles : Isa.src -> int
(** 1 when the source is a memory operand. *)

val writes_dst : Isa.two_op -> bool
(** CMP and BIT compute flags only and skip the destination write. *)

val cycles : Isa.t -> int
(** Total cycles from fetch to the last write, inclusive. *)

val irq_entry_cycles : int
(** Cycles to pre-empt the fetch, push PC, push SR and load the
    vector. *)
