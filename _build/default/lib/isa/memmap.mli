(** Memory map shared by the ISS, the gate-level CPU and the harness.

    A 16-bit byte-addressed space, MSP430-style:
    - [0x0000, 0x01FF]: peripheral file (in-core registers);
    - [0x0200, 0x09FF]: data RAM (external macro, 1K words);
    - [0xF000, 0xFFFF]: program ROM (external macro, 2K words);
      interrupt/reset vectors live in the top words. *)

val ram_base : int
val ram_bytes : int
val ram_words : int
val rom_base : int
val rom_bytes : int
val rom_words : int

val in_ram : int -> bool
val in_rom : int -> bool
val in_periph : int -> bool

(** Reset vector address (0xFFFE). *)
val reset_vector : int

(** Vector of the single peripheral IRQ (0xFFF0). *)
val irq_vector : int

(** {1 Peripheral registers (byte addresses, word-aligned)}

    [sfr_ie]/[sfr_ifg]: interrupt enable / flags, bit 0 = external IRQ.
    [gpio_in]: read-only external input pins; [gpio_out]: output
    register.  [sim_halt]: any write ends the program (simulation-only
    port).  [clk_ctl]/[clk_cnt]: clock-module divider control and
    read-only divided counter.  [wdt_ctl]: watchdog control (bit 7 =
    hold; any control write clears the counter); [wdt_cnt]: counter
    readback.  [dbg_*]: debug block (control, PC sample, breakpoint
    compare, free-running cycle counter).  [mpy_*]: hardware
    multiplier (op1 / multiply-accumulate op1 / op2-trigger / 32-bit
    result). *)

val sfr_ie : int
val sfr_ifg : int
val gpio_in : int
val gpio_out : int
val sim_halt : int
val clk_ctl : int
val clk_cnt : int
val wdt_ctl : int
val wdt_cnt : int
val dbg_ctl : int
val dbg_pc : int
val dbg_brk : int
val dbg_cyc_lo : int
val dbg_cyc_hi : int
val mpy_op1 : int
val mpy_mac : int
val mpy_op2 : int
val mpy_reslo : int
val mpy_reshi : int
