(** Two-pass assembler for the MSP430-class ISA.

    Syntax (one statement per line):
    {v
    ; comment
    label:  mov   #0x0280, sp        ; immediates, CG-optimized
            mov.b @r4+, 3(r5)        ; byte ops, autoincrement, indexed
            cmp   &flag, r6          ; absolute addressing
            jne   loop
            call  #subroutine
            ret                      ; emulated instructions supported
            halt                     ; write to the simulation halt port
            .org  0xf000
            .word 1, 2, label+2
            .space 4                 ; words of zero
            .equ  N, 16
            .entry start             ; reset vector (default: label 'start')
            .irq  handler            ; peripheral IRQ vector
    v}

    Bare expressions as jump/call targets are labels; data operands
    must use an explicit addressing sigil (#, &, @, x(rn)). *)

type image = {
  words : (int * int) list;  (** (byte address, 16-bit word), sorted *)
  entry : int;
  symbols : (string * int) list;
  line_of_addr : (int * int) list;
      (** instruction start address -> 1-based source line *)
}

exception Error of { line : int; message : string }

val assemble : string -> image
(** @raise Error with the offending source line. *)

val assemble_file : string -> image

val image_rom : image -> int array
(** The ROM contents as [Memmap.rom_words] words (unset words are 0),
    indexed from [Memmap.rom_base]. *)

val instruction_addrs : image -> int list
(** Addresses holding the first word of an assembled instruction (for
    line/branch coverage accounting). *)
