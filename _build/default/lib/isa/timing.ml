let src_ext_cycles = function
  | Isa.Sidx _ -> 1
  | Isa.Imm n ->
    if List.mem (n land 0xffff) [ 0; 1; 2; 4; 8; 0xffff ] then 0 else 1
  | Isa.Sreg _ | Isa.Sind _ | Isa.Sinc _ -> 0

let src_read_cycles = function
  | Isa.Sidx _ | Isa.Sind _ | Isa.Sinc _ -> 1
  | Isa.Sreg _ | Isa.Imm _ -> 0

let dst_ext_cycles = function Isa.Dreg _ -> 0 | Isa.Didx _ -> 1
let dst_read_cycles = function Isa.Dreg _ -> 0 | Isa.Didx _ -> 1

let writes_dst (op : Isa.two_op) =
  match op with Isa.CMP | Isa.BIT -> false | _ -> true

let dst_write_cycles op = function
  | Isa.Dreg _ -> 0
  | Isa.Didx _ -> if writes_dst op then 1 else 0

let cycles (i : Isa.t) =
  match i with
  | Isa.Jump _ -> 2  (* FETCH, EXEC *)
  | Isa.Two { op; src; dst; _ } ->
    1 (* FETCH *) + src_ext_cycles src + src_read_cycles src
    + dst_ext_cycles dst + dst_read_cycles dst + 1 (* EXEC *)
    + dst_write_cycles op dst
  | Isa.One { op = Isa.RETI; _ } -> 3  (* FETCH, POP SR, POP PC *)
  | Isa.One { op = Isa.PUSH; dst; _ } ->
    1 + src_ext_cycles dst + src_read_cycles dst + 1 (* EXEC *) + 1 (* WR *)
  | Isa.One { op = Isa.CALL; dst; _ } ->
    1 + src_ext_cycles dst + src_read_cycles dst + 1 (* EXEC *) + 1 (* WR *)
  | Isa.One { dst; _ } ->
    (* RRC/RRA/SWPB/SXT: read-modify-write on the operand *)
    1 + src_ext_cycles dst + src_read_cycles dst + 1 (* EXEC *)
    + (match dst with Isa.Sreg _ | Isa.Imm _ -> 0 | _ -> 1 (* WB *))

(* A pending interrupt pre-empts a fetch cycle, then pushes PC, pushes
   SR and loads the vector. *)
let irq_entry_cycles = 4
