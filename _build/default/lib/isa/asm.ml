type image = {
  words : (int * int) list;
  entry : int;
  symbols : (string * int) list;
  line_of_addr : (int * int) list;
}

exception Error of { line : int; message : string }

let err line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* ---------- expressions ---------- *)

type atom = Num of int | Sym of string
type expr = (int * atom) list  (* (sign, atom), summed *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let parse_expr ~line (s : string) : expr =
  let s = String.trim s in
  if s = "" then err line "empty expression";
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let sign = ref 1 in
  let expect_atom = ref true in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if !expect_atom && c = '-' then begin
      sign := - !sign;
      incr i
    end
    else if !expect_atom && c = '+' then incr i
    else if !expect_atom then begin
      let start = !i in
      if c >= '0' && c <= '9' then begin
        while !i < n && is_ident_char s.[!i] do
          incr i
        done;
        let tok = String.sub s start (!i - start) in
        match int_of_string_opt tok with
        | Some v -> out := (!sign, Num v) :: !out
        | None -> err line "bad number %S" tok
      end
      else if is_ident_char c then begin
        while !i < n && is_ident_char s.[!i] do
          incr i
        done;
        out := (!sign, Sym (String.sub s start (!i - start))) :: !out
      end
      else err line "unexpected character %C in expression %S" c s;
      sign := 1;
      expect_atom := false
    end
    else if c = '+' then begin
      incr i;
      expect_atom := true
    end
    else if c = '-' then begin
      incr i;
      sign := -1;
      expect_atom := true
    end
    else err line "unexpected character %C in expression %S" c s
  done;
  if !expect_atom then err line "trailing operator in expression %S" s;
  List.rev !out

let eval_literal (e : expr) : int option =
  List.fold_left
    (fun acc (sign, a) ->
      match acc, a with
      | Some total, Num v -> Some (total + (sign * v))
      | _, Sym _ | None, _ -> None)
    (Some 0) e

let eval_expr ~line ~symbols (e : expr) : int =
  List.fold_left
    (fun total (sign, a) ->
      match a with
      | Num v -> total + (sign * v)
      | Sym s -> (
        match Hashtbl.find_opt symbols s with
        | Some v -> total + (sign * v)
        | None -> err line "undefined symbol %S" s))
    0 e

(* ---------- operands ---------- *)

type operand =
  | OReg of int
  | OImm of expr
  | OAbs of expr
  | OIdx of expr * int
  | OInd of int
  | OInc of int
  | OBare of expr  (* jump targets *)

let parse_reg_opt (s : string) =
  match String.lowercase_ascii (String.trim s) with
  | "pc" | "r0" -> Some 0
  | "sp" | "r1" -> Some 1
  | "sr" | "r2" -> Some 2
  | "cg" | "r3" -> Some 3
  | t ->
    if String.length t >= 2 && t.[0] = 'r' then
      match int_of_string_opt (String.sub t 1 (String.length t - 1)) with
      | Some n when n >= 0 && n <= 15 -> Some n
      | _ -> None
    else None

let parse_operand ~line (s : string) : operand =
  let s = String.trim s in
  if s = "" then err line "empty operand";
  match s.[0] with
  | '#' -> OImm (parse_expr ~line (String.sub s 1 (String.length s - 1)))
  | '&' -> OAbs (parse_expr ~line (String.sub s 1 (String.length s - 1)))
  | '@' ->
    let body = String.sub s 1 (String.length s - 1) in
    let body = String.trim body in
    if String.length body > 0 && body.[String.length body - 1] = '+' then
      let rn = String.sub body 0 (String.length body - 1) in
      (match parse_reg_opt rn with
      | Some r -> OInc r
      | None -> err line "bad register in %S" s)
    else (
      match parse_reg_opt body with
      | Some r -> OInd r
      | None -> err line "bad register in %S" s)
  | _ -> (
    match parse_reg_opt s with
    | Some r -> OReg r
    | None ->
      (* indexed: expr(reg) *)
      if String.length s > 0 && s.[String.length s - 1] = ')' then begin
        match String.index_opt s '(' with
        | Some p ->
          let ex = String.sub s 0 p in
          let rn = String.sub s (p + 1) (String.length s - p - 2) in
          (match parse_reg_opt rn with
          | Some r -> OIdx (parse_expr ~line ex, r)
          | None -> err line "bad register in %S" s)
        | None -> err line "unbalanced parenthesis in %S" s
      end
      else OBare (parse_expr ~line s))

let cg_values = [ 0; 1; 2; 4; 8; 0xffff ]

(* Resolve an expression with whatever symbols are known at this point
   (pass 1 sees symbols defined above the use site; pass 2 sees all). *)
let eval_partial ~symbols (e : expr) : int option =
  List.fold_left
    (fun acc (sign, a) ->
      match acc, a with
      | None, _ -> None
      | Some total, Num v -> Some (total + (sign * v))
      | Some total, Sym s -> (
        match Hashtbl.find_opt symbols s with
        | Some v -> Some (total + (sign * v))
        | None -> None))
    (Some 0) e

(* Number of extension words a source operand needs.  Pass-1 sizing and
   pass-2 encoding must agree: an immediate uses the constant-generator
   short form iff it resolves (with the symbols known so far) to a CG
   value.  A forward reference that later turns out to be a CG constant
   is caught by [encode_checked]. *)
let src_ext_words ~symbols = function
  | OReg _ | OInd _ | OInc _ -> 0
  | OAbs _ | OIdx _ -> 1
  | OImm e -> (
    match eval_partial ~symbols e with
    | Some v when List.mem (v land 0xffff) cg_values -> 0
    | _ -> 1)
  | OBare _ -> 1

let dst_ext_words = function
  | OReg _ -> 0
  | OAbs _ | OIdx _ -> 1
  | (OImm _ | OInd _ | OInc _ | OBare _) -> 1 (* rejected later *)

let to_src ~line ~symbols (o : operand) : Isa.src =
  match o with
  | OReg r -> Isa.Sreg r
  | OImm e -> Isa.Imm (eval_expr ~line ~symbols e land 0xffff)
  | OAbs e -> Isa.Sidx (Isa.sr, eval_expr ~line ~symbols e)
  | OIdx (e, r) -> Isa.Sidx (r, eval_expr ~line ~symbols e)
  | OInd r -> Isa.Sind r
  | OInc r -> Isa.Sinc r
  | OBare _ -> err line "bare expression not allowed as data operand (use #, & or x(rn))"

let to_dst ~line ~symbols (o : operand) : Isa.dst =
  match o with
  | OReg r -> Isa.Dreg r
  | OAbs e -> Isa.Didx (Isa.sr, eval_expr ~line ~symbols e)
  | OIdx (e, r) -> Isa.Didx (r, eval_expr ~line ~symbols e)
  | OImm _ | OInd _ | OInc _ | OBare _ ->
    err line "operand not writable (destination must be reg, &abs or x(rn))"

(* ---------- statements ---------- *)

type stmt =
  | Insn of { mnemonic : string; operands : operand list }
  | Dir_org of expr
  | Dir_word of expr list
  | Dir_space of expr
  | Dir_equ of string * expr
  | Dir_entry of expr
  | Dir_irq of expr

type line_item = { line : int; label : string option; stmt : stmt option }

let split_operands (s : string) =
  if String.trim s = "" then []
  else String.split_on_char ',' s |> List.map String.trim

let parse_line lineno (raw : string) : line_item =
  let no_comment =
    match String.index_opt raw ';' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let text = String.trim no_comment in
  if text = "" then { line = lineno; label = None; stmt = None }
  else
    let label, rest =
      match String.index_opt text ':' with
      | Some i
        when String.for_all is_ident_char (String.sub text 0 i) && i > 0 ->
        ( Some (String.sub text 0 i),
          String.trim (String.sub text (i + 1) (String.length text - i - 1)) )
      | _ -> (None, text)
    in
    if rest = "" then { line = lineno; label; stmt = None }
    else
      let mnemonic, args =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some i ->
          ( String.sub rest 0 i,
            String.trim (String.sub rest (i + 1) (String.length rest - i - 1))
          )
      in
      let mnemonic = String.lowercase_ascii mnemonic in
      let stmt =
        match mnemonic with
        | ".org" -> Dir_org (parse_expr ~line:lineno args)
        | ".word" ->
          Dir_word (List.map (parse_expr ~line:lineno) (split_operands args))
        | ".space" -> Dir_space (parse_expr ~line:lineno args)
        | ".equ" -> (
          match split_operands args with
          | [ name; value ] -> Dir_equ (name, parse_expr ~line:lineno value)
          | _ -> err lineno ".equ wants: .equ name, value")
        | ".entry" -> Dir_entry (parse_expr ~line:lineno args)
        | ".irq" -> Dir_irq (parse_expr ~line:lineno args)
        | _ ->
          Insn
            {
              mnemonic;
              operands =
                List.map (parse_operand ~line:lineno) (split_operands args);
            }
      in
      { line = lineno; label; stmt = Some stmt }

(* ---------- mnemonic tables ---------- *)

let two_ops =
  [
    ("mov", Isa.MOV);
    ("add", Isa.ADD);
    ("addc", Isa.ADDC);
    ("subc", Isa.SUBC);
    ("sub", Isa.SUB);
    ("cmp", Isa.CMP);
    ("dadd", Isa.DADD);
    ("bit", Isa.BIT);
    ("bic", Isa.BIC);
    ("bis", Isa.BIS);
    ("xor", Isa.XOR);
    ("and", Isa.AND);
  ]

let one_ops =
  [
    ("rrc", Isa.RRC);
    ("swpb", Isa.SWPB);
    ("rra", Isa.RRA);
    ("sxt", Isa.SXT);
    ("push", Isa.PUSH);
    ("call", Isa.CALL);
  ]

let jumps =
  [
    ("jne", Isa.JNE);
    ("jnz", Isa.JNE);
    ("jeq", Isa.JEQ);
    ("jz", Isa.JEQ);
    ("jnc", Isa.JNC);
    ("jlo", Isa.JNC);
    ("jc", Isa.JC);
    ("jhs", Isa.JC);
    ("jn", Isa.JN);
    ("jge", Isa.JGE);
    ("jl", Isa.JL);
    ("jmp", Isa.JMP);
  ]

let split_size (m : string) =
  if String.length m > 2 && String.sub m (String.length m - 2) 2 = ".b" then
    (String.sub m 0 (String.length m - 2), Isa.Byte)
  else (m, Isa.Word)

let lit n : operand = OImm [ (1, Num n) ]

(* Emulated instructions expand to exactly one core instruction. *)
let expand_emulated ~line mnemonic operands =
  let one_operand () =
    match operands with
    | [ o ] -> o
    | _ -> err line "%s wants one operand" mnemonic
  in
  let base, size = split_size mnemonic in
  let rebuild m = (m ^ (if size = Isa.Byte then ".b" else ""), size) in
  ignore rebuild;
  match base, operands with
  | "nop", [] -> Some ("mov", size, [ OReg 3; OReg 3 ])
  | "ret", [] -> Some ("mov", size, [ OInc 1; OReg 0 ])
  | "pop", _ -> Some ("mov", size, [ OInc 1; one_operand () ])
  | "br", _ -> Some ("mov", Isa.Word, [ one_operand (); OReg 0 ])
  | "clr", _ -> Some ("mov", size, [ lit 0; one_operand () ])
  | "clrc", [] -> Some ("bic", Isa.Word, [ lit 1; OReg 2 ])
  | "setc", [] -> Some ("bis", Isa.Word, [ lit 1; OReg 2 ])
  | "clrz", [] -> Some ("bic", Isa.Word, [ lit 2; OReg 2 ])
  | "setz", [] -> Some ("bis", Isa.Word, [ lit 2; OReg 2 ])
  | "clrn", [] -> Some ("bic", Isa.Word, [ lit 4; OReg 2 ])
  | "setn", [] -> Some ("bis", Isa.Word, [ lit 4; OReg 2 ])
  | "dint", [] -> Some ("bic", Isa.Word, [ lit 8; OReg 2 ])
  | "eint", [] -> Some ("bis", Isa.Word, [ lit 8; OReg 2 ])
  | "inc", _ -> Some ("add", size, [ lit 1; one_operand () ])
  | "incd", _ -> Some ("add", size, [ lit 2; one_operand () ])
  | "dec", _ -> Some ("sub", size, [ lit 1; one_operand () ])
  | "decd", _ -> Some ("sub", size, [ lit 2; one_operand () ])
  | "tst", _ -> Some ("cmp", size, [ lit 0; one_operand () ])
  | "rla", _ ->
    let o = one_operand () in
    Some ("add", size, [ o; o ])
  | "rlc", _ ->
    let o = one_operand () in
    Some ("addc", size, [ o; o ])
  | "inv", _ -> Some ("xor", size, [ lit 0xffff; one_operand () ])
  | "adc", _ -> Some ("addc", size, [ lit 0; one_operand () ])
  | "sbc", _ -> Some ("subc", size, [ lit 0; one_operand () ])
  | "halt", [] -> Some ("mov", Isa.Word, [ lit 1; OAbs [ (1, Num Memmap.sim_halt) ] ])
  | _ -> None

(* ---------- sizing (pass 1) ---------- *)

let insn_words ~line ~symbols mnemonic operands =
  let resolved =
    match expand_emulated ~line mnemonic operands with
    | Some (m, sz, ops) -> (m, sz, ops)
    | None ->
      let base, size = split_size mnemonic in
      (base, size, operands)
  in
  let m, _, ops = resolved in
  if List.mem_assoc m two_ops then begin
    match ops with
    | [ s; d ] -> 1 + src_ext_words ~symbols s + dst_ext_words d
    | _ -> err line "%s wants two operands" m
  end
  else if List.mem_assoc m one_ops then begin
    match ops with
    | [ d ] ->
      (* call #label takes an extension word; push @r5 doesn't. *)
      1 + src_ext_words ~symbols d
    | _ -> err line "%s wants one operand" m
  end
  else if List.mem_assoc m jumps then 1
  else if m = "reti" then 1
  else err line "unknown mnemonic %S" m

(* ---------- encoding (pass 2) ---------- *)

let encode_insn ~line ~symbols ~addr mnemonic operands : int list =
  let m, size, ops =
    match expand_emulated ~line mnemonic operands with
    | Some (m, sz, ops) -> (m, sz, ops)
    | None ->
      let base, sz = split_size mnemonic in
      (base, sz, operands)
  in
  let words =
    if List.mem_assoc m two_ops then begin
      let op = List.assoc m two_ops in
      match ops with
      | [ s; d ] ->
        Isa.encode
          (Isa.Two
             {
               op;
               size;
               src = to_src ~line ~symbols s;
               dst = to_dst ~line ~symbols d;
             })
      | _ -> err line "%s wants two operands" m
    end
    else if List.mem_assoc m one_ops then begin
      let op = List.assoc m one_ops in
      match ops with
      | [ d ] -> Isa.encode (Isa.One { op; size; dst = to_src ~line ~symbols d })
      | _ -> err line "%s wants one operand" m
    end
    else if List.mem_assoc m jumps then begin
      let cond = List.assoc m jumps in
      match ops with
      | [ OBare e ] | [ OAbs e ] ->
        let target = eval_expr ~line ~symbols e in
        let delta = target - (addr + 2) in
        if delta mod 2 <> 0 then err line "odd jump target";
        let off = delta / 2 in
        if off < -512 || off > 511 then
          err line "jump target out of range (%d words)" off;
        Isa.encode (Isa.Jump { cond; off })
      | _ -> err line "%s wants a label operand" m
    end
    else if m = "reti" then
      Isa.encode (Isa.One { op = Isa.RETI; size = Isa.Word; dst = Isa.Sreg 0 })
    else err line "unknown mnemonic %S" m
  in
  words

(* The pass-1 size and pass-2 encoding must agree; check defensively. *)
let encode_checked ~line ~symbols ~addr mnemonic operands =
  let words = encode_insn ~line ~symbols ~addr mnemonic operands in
  let predicted = insn_words ~line ~symbols mnemonic operands in
  if List.length words <> predicted then
    err line
      "internal: size mismatch for %s (predicted %d words, encoded %d); use a \
       literal immediate"
      mnemonic predicted (List.length words);
  words

(* ---------- driver ---------- *)

let assemble (source : string) : image =
  let lines = String.split_on_char '\n' source in
  let items = List.mapi (fun i l -> parse_line (i + 1) l) lines in
  let symbols : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* pass 1: layout *)
  let addr = ref Memmap.rom_base in
  let entry_expr = ref None in
  let irq_expr = ref None in
  List.iter
    (fun { line; label; stmt } ->
      (match label with
      | Some l ->
        if Hashtbl.mem symbols l then err line "duplicate label %S" l;
        Hashtbl.replace symbols l !addr
      | None -> ());
      match stmt with
      | None -> ()
      | Some (Dir_org e) -> (
        match eval_literal e with
        | Some v -> addr := v
        | None -> err line ".org wants a literal address")
      | Some (Dir_word es) -> addr := !addr + (2 * List.length es)
      | Some (Dir_space e) -> (
        match eval_literal e with
        | Some v -> addr := !addr + (2 * v)
        | None -> err line ".space wants a literal count")
      | Some (Dir_equ (name, e)) -> (
        match eval_literal e with
        | Some v -> Hashtbl.replace symbols name v
        | None ->
          (* allow label arithmetic in a second pass? keep it literal *)
          err line ".equ wants a literal value")
      | Some (Dir_entry e) -> entry_expr := Some (line, e)
      | Some (Dir_irq e) -> irq_expr := Some (line, e)
      | Some (Insn { mnemonic; operands }) ->
        if !addr land 1 = 1 then err line "instruction at odd address";
        addr := !addr + (2 * insn_words ~line ~symbols mnemonic operands))
    items;
  (* pass 2: emit *)
  let words = ref [] in
  let line_map = ref [] in
  let emit a w = words := (a, w land 0xffff) :: !words in
  let addr = ref Memmap.rom_base in
  List.iter
    (fun { line; label = _; stmt } ->
      match stmt with
      | None -> ()
      | Some (Dir_org e) -> addr := Option.get (eval_literal e)
      | Some (Dir_word es) ->
        List.iter
          (fun e ->
            emit !addr (eval_expr ~line ~symbols e);
            addr := !addr + 2)
          es
      | Some (Dir_space e) ->
        let k = Option.get (eval_literal e) in
        for _ = 1 to k do
          emit !addr 0;
          addr := !addr + 2
        done
      | Some (Dir_equ _) | Some (Dir_entry _) | Some (Dir_irq _) -> ()
      | Some (Insn { mnemonic; operands }) ->
        let ws = encode_checked ~line ~symbols ~addr:!addr mnemonic operands in
        line_map := (!addr, line) :: !line_map;
        List.iter
          (fun w ->
            emit !addr w;
            addr := !addr + 2)
          ws)
    items;
  let entry =
    match !entry_expr with
    | Some (line, e) -> eval_expr ~line ~symbols e
    | None -> (
      match Hashtbl.find_opt symbols "start" with
      | Some a -> a
      | None -> err 0 "no .entry directive and no 'start' label")
  in
  emit Memmap.reset_vector entry;
  (match !irq_expr with
  | Some (line, e) -> emit Memmap.irq_vector (eval_expr ~line ~symbols e)
  | None -> ());
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (a, _) ->
      if Hashtbl.mem seen a then err 0 "overlapping emission at 0x%04x" a
      else Hashtbl.replace seen a ())
    !words;
  {
    words = List.sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev !words);
    entry;
    symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [];
    line_of_addr = List.rev !line_map;
  }

let assemble_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  assemble src

let image_rom (img : image) : int array =
  let rom = Array.make Memmap.rom_words 0 in
  List.iter
    (fun (a, w) ->
      if a >= Memmap.rom_base && a <= 0xffff then
        rom.((a - Memmap.rom_base) / 2) <- w
      else invalid_arg (Printf.sprintf "image word at 0x%04x outside ROM" a))
    img.words;
  rom

let instruction_addrs (img : image) = List.map fst img.line_of_addr
