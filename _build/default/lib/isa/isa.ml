type reg = int

let pc = 0
let sp = 1
let sr = 2
let cg = 3

type size = Word | Byte

type two_op =
  | MOV
  | ADD
  | ADDC
  | SUBC
  | SUB
  | CMP
  | DADD
  | BIT
  | BIC
  | BIS
  | XOR
  | AND

type one_op = RRC | SWPB | RRA | SXT | PUSH | CALL | RETI
type cond = JNE | JEQ | JNC | JC | JN | JGE | JL | JMP

type src =
  | Sreg of reg
  | Sidx of reg * int
  | Sind of reg
  | Sinc of reg
  | Imm of int

type dst = Dreg of reg | Didx of reg * int

type t =
  | Two of { op : two_op; size : size; src : src; dst : dst }
  | One of { op : one_op; size : size; dst : src }
  | Jump of { cond : cond; off : int }

let two_op_code = function
  | MOV -> 0x4
  | ADD -> 0x5
  | ADDC -> 0x6
  | SUBC -> 0x7
  | SUB -> 0x8
  | CMP -> 0x9
  | DADD -> 0xA
  | BIT -> 0xB
  | BIC -> 0xC
  | BIS -> 0xD
  | XOR -> 0xE
  | AND -> 0xF

let two_op_of_code = function
  | 0x4 -> MOV
  | 0x5 -> ADD
  | 0x6 -> ADDC
  | 0x7 -> SUBC
  | 0x8 -> SUB
  | 0x9 -> CMP
  | 0xA -> DADD
  | 0xB -> BIT
  | 0xC -> BIC
  | 0xD -> BIS
  | 0xE -> XOR
  | 0xF -> AND
  | _ -> invalid_arg "two_op_of_code"

let one_op_code = function
  | RRC -> 0
  | SWPB -> 1
  | RRA -> 2
  | SXT -> 3
  | PUSH -> 4
  | CALL -> 5
  | RETI -> 6

let one_op_of_code = function
  | 0 -> RRC
  | 1 -> SWPB
  | 2 -> RRA
  | 3 -> SXT
  | 4 -> PUSH
  | 5 -> CALL
  | 6 -> RETI
  | _ -> invalid_arg "one_op_of_code"

let cond_code = function
  | JNE -> 0
  | JEQ -> 1
  | JNC -> 2
  | JC -> 3
  | JN -> 4
  | JGE -> 5
  | JL -> 6
  | JMP -> 7

let cond_of_code = function
  | 0 -> JNE
  | 1 -> JEQ
  | 2 -> JNC
  | 3 -> JC
  | 4 -> JN
  | 5 -> JGE
  | 6 -> JL
  | 7 -> JMP
  | _ -> invalid_arg "cond_of_code"

let two_op_name = function
  | MOV -> "mov"
  | ADD -> "add"
  | ADDC -> "addc"
  | SUBC -> "subc"
  | SUB -> "sub"
  | CMP -> "cmp"
  | DADD -> "dadd"
  | BIT -> "bit"
  | BIC -> "bic"
  | BIS -> "bis"
  | XOR -> "xor"
  | AND -> "and"

let one_op_name = function
  | RRC -> "rrc"
  | SWPB -> "swpb"
  | RRA -> "rra"
  | SXT -> "sxt"
  | PUSH -> "push"
  | CALL -> "call"
  | RETI -> "reti"

let cond_name = function
  | JNE -> "jne"
  | JEQ -> "jeq"
  | JNC -> "jnc"
  | JC -> "jc"
  | JN -> "jn"
  | JGE -> "jge"
  | JL -> "jl"
  | JMP -> "jmp"

let reg_name r =
  match r with
  | 0 -> "pc"
  | 1 -> "sp"
  | 2 -> "sr"
  | _ -> Printf.sprintf "r%d" r

let src_to_string = function
  | Sreg r -> reg_name r
  | Sidx (2, x) -> Printf.sprintf "&0x%04x" (x land 0xffff)
  | Sidx (r, x) -> Printf.sprintf "%d(%s)" x (reg_name r)
  | Sind r -> Printf.sprintf "@%s" (reg_name r)
  | Sinc r -> Printf.sprintf "@%s+" (reg_name r)
  | Imm n -> Printf.sprintf "#%d" n

let dst_to_string = function
  | Dreg r -> reg_name r
  | Didx (2, x) -> Printf.sprintf "&0x%04x" (x land 0xffff)
  | Didx (r, x) -> Printf.sprintf "%d(%s)" x (reg_name r)

let suffix = function Word -> "" | Byte -> ".b"

let to_string = function
  | Two { op; size; src; dst } ->
    Printf.sprintf "%s%s %s, %s" (two_op_name op) (suffix size)
      (src_to_string src) (dst_to_string dst)
  | One { op = RETI; _ } -> "reti"
  | One { op; size; dst } ->
    Printf.sprintf "%s%s %s" (one_op_name op) (suffix size) (src_to_string dst)
  | Jump { cond; off } -> Printf.sprintf "%s %+d" (cond_name cond) off

let pp fmt i = Format.pp_print_string fmt (to_string i)

exception Decode_error of string

(* As/source-register encoding, including the constant generators.
   Returns (as_bits, register, extension words). *)
let encode_src (src : src) =
  match src with
  | Sreg r -> (0, r, [])
  | Sidx (r, x) -> (1, r, [ x land 0xffff ])
  | Sind r -> (2, r, [])
  | Sinc r -> (3, r, [])
  | Imm 0 -> (0, cg, [])
  | Imm 1 -> (1, cg, [])  (* R3/As=01: constant 1, no ext word *)
  | Imm 2 -> (2, cg, [])
  | Imm n when n land 0xffff = 0xffff -> (3, cg, [])
  | Imm 4 -> (2, sr, [])
  | Imm 8 -> (3, sr, [])
  | Imm n -> (3, pc, [ n land 0xffff ])

let encode_dst (dst : dst) =
  match dst with
  | Dreg r -> (0, r, [])
  | Didx (r, x) -> (1, r, [ x land 0xffff ])

let encode = function
  | Two { op; size; src; dst } ->
    let as_bits, sreg, sext = encode_src src in
    let ad_bits, dreg, dext = encode_dst dst in
    let bw = match size with Word -> 0 | Byte -> 1 in
    let w =
      (two_op_code op lsl 12)
      lor (sreg lsl 8)
      lor (ad_bits lsl 7)
      lor (bw lsl 6)
      lor (as_bits lsl 4)
      lor dreg
    in
    w :: (sext @ dext)
  | One { op; size; dst } ->
    let as_bits, dreg, ext = encode_src dst in
    let bw = match size with Word -> 0 | Byte -> 1 in
    let w =
      0x1000
      lor (one_op_code op lsl 7)
      lor (bw lsl 6)
      lor (as_bits lsl 4)
      lor dreg
    in
    w :: ext
  | Jump { cond; off } ->
    if off < -512 || off > 511 then
      invalid_arg (Printf.sprintf "Isa.encode: jump offset %d out of range" off);
    [ 0x2000 lor (cond_code cond lsl 10) lor (off land 0x3ff) ]

(* Decode a source specifier.  Consumes an extension word when needed. *)
let decode_src ~as_bits ~reg ~rest =
  let take () =
    match rest with
    | w :: _ -> w
    | [] -> raise (Decode_error "missing extension word")
  in
  if reg = cg then
    match as_bits with
    | 0 -> (Imm 0, 0)
    | 1 -> (Imm 1, 0)
    | 2 -> (Imm 2, 0)
    | _ -> (Imm 0xffff, 0)
  else if reg = sr && as_bits >= 2 then
    if as_bits = 2 then (Imm 4, 0) else (Imm 8, 0)
  else
    match as_bits with
    | 0 -> (Sreg reg, 0)
    | 1 -> (Sidx (reg, take ()), 1)
    | 2 -> (Sind reg, 0)
    | 3 -> if reg = pc then (Imm (take ()), 1) else (Sinc reg, 0)
    | _ -> assert false

let decode word rest =
  let opc = (word lsr 12) land 0xf in
  if opc = 2 || opc = 3 then begin
    let cond = cond_of_code ((word lsr 10) land 0x7) in
    let off = word land 0x3ff in
    let off = if off land 0x200 <> 0 then off - 0x400 else off in
    (Jump { cond; off }, 1)
  end
  else if opc = 1 then begin
    let code = (word lsr 7) land 0x7 in
    if code > 6 then raise (Decode_error (Printf.sprintf "bad one-op %x" word));
    let op = one_op_of_code code in
    let bw = (word lsr 6) land 1 in
    let size = if bw = 1 then Byte else Word in
    (match op, size with
    | (SWPB | SXT | CALL | RETI), Byte ->
      raise (Decode_error "byte mode illegal for this one-op")
    | _ -> ());
    let as_bits = (word lsr 4) land 0x3 in
    let reg = word land 0xf in
    if op = RETI then (One { op; size = Word; dst = Sreg 0 }, 1)
    else
      let dst, used = decode_src ~as_bits ~reg ~rest in
      (One { op; size; dst }, 1 + used)
  end
  else if opc >= 4 then begin
    let op = two_op_of_code opc in
    let sreg = (word lsr 8) land 0xf in
    let ad = (word lsr 7) land 1 in
    let bw = (word lsr 6) land 1 in
    let as_bits = (word lsr 4) land 0x3 in
    let dreg = word land 0xf in
    let size = if bw = 1 then Byte else Word in
    let src, used = decode_src ~as_bits ~reg:sreg ~rest in
    let rest' = List.filteri (fun i _ -> i >= used) rest in
    let dst, dused =
      if ad = 0 then (Dreg dreg, 0)
      else
        match rest' with
        | w :: _ -> (Didx (dreg, w), 1)
        | [] -> raise (Decode_error "missing destination extension word")
    in
    (Two { op; size; src; dst }, 1 + used + dused)
  end
  else raise (Decode_error (Printf.sprintf "illegal opcode word %04x" word))

let length_words i = List.length (encode i)

let flag_c = 0
let flag_z = 1
let flag_n = 2
let flag_gie = 3
let flag_v = 8

let cond_holds cond ~sr_value =
  let b i = (sr_value lsr i) land 1 = 1 in
  match cond with
  | JNE -> not (b flag_z)
  | JEQ -> b flag_z
  | JNC -> not (b flag_c)
  | JC -> b flag_c
  | JN -> b flag_n
  | JGE -> b flag_n = b flag_v
  | JL -> b flag_n <> b flag_v
  | JMP -> true
