(** The MSP430-class instruction set: types, binary encoding, decoding
    and disassembly.

    This is the real MSP430 encoding (format I two-operand, format II
    single-operand, format III jumps; seven addressing modes; R2/R3
    constant generators), which is what makes the gate-level frontend
    of the CPU representative of the paper's openMSP430 target. *)

type reg = int  (** 0..15; 0 = PC, 1 = SP, 2 = SR/CG1, 3 = CG2 *)

val pc : reg
val sp : reg
val sr : reg
val cg : reg

type size = Word | Byte

type two_op =
  | MOV
  | ADD
  | ADDC
  | SUBC
  | SUB
  | CMP
  | DADD
  | BIT
  | BIC
  | BIS
  | XOR
  | AND

type one_op = RRC | SWPB | RRA | SXT | PUSH | CALL | RETI

type cond = JNE | JEQ | JNC | JC | JN | JGE | JL | JMP

(** Source addressing.  [Imm] covers both @PC+ immediates and the
    R2/R3 constant-generator encodings; the encoder picks the short
    form when the value allows. *)
type src =
  | Sreg of reg
  | Sidx of reg * int  (** x(Rn); with Rn = SR this encodes &abs *)
  | Sind of reg  (** @Rn *)
  | Sinc of reg  (** @Rn+ *)
  | Imm of int

type dst = Dreg of reg | Didx of reg * int  (** x(Rn) / &abs via SR *)

type t =
  | Two of { op : two_op; size : size; src : src; dst : dst }
  | One of { op : one_op; size : size; dst : src }
      (** format II operands use source addressing modes *)
  | Jump of { cond : cond; off : int }
      (** [off] in words, -512..511; target = pc + 2 + 2*off *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Encoding} *)

val encode : t -> int list
(** Opcode word followed by extension words (source first). *)

exception Decode_error of string

val decode : int -> int list -> t * int
(** [decode word rest] decodes one instruction whose first word is
    [word] and whose following memory words are [rest] (for extension
    words).  Returns the instruction and the number of words consumed.
    @raise Decode_error on an illegal encoding. *)

val length_words : t -> int

(** {1 Condition evaluation} *)

val flag_c : int
val flag_z : int
val flag_n : int
val flag_gie : int
val flag_v : int
(** Bit positions in the status register. *)

val cond_holds : cond -> sr_value:int -> bool
