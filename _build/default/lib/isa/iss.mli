(** Instruction-set simulator: the golden architectural model.

    Executes binaries over the {!Memmap} address space with the same
    peripheral semantics as the gate-level CPU (GPIO, halt port, clock
    module, watchdog, debug block, hardware multiplier, single external
    IRQ).  The lockstep tests drive the ISS and the gate-level core
    side by side and require identical architectural state. *)

type t

val create : Asm.image -> t
val reset : t -> unit

(** {1 Architectural state} *)

val reg : t -> int -> int
val set_reg : t -> int -> int -> unit
val pc : t -> int
val sr : t -> int
val halted : t -> bool
val cycles : t -> int
(** Accumulated cycle count per the {!Timing} model. *)

val instructions_retired : t -> int

val read_word : t -> int -> int
(** Bus read (peripherals included). *)

val read_ram_word : t -> int -> int
(** Direct RAM array access, no peripheral side effects. *)

val write_ram_word : t -> int -> int -> unit

val ram_snapshot : t -> int array
(** All [Memmap.ram_words] words. *)

(** {1 I/O} *)

val set_gpio_in : t -> int -> unit
val gpio_out : t -> int
val output_trace : t -> (int * int) list
(** [(instruction index, value)] for every write to the GPIO output
    register, oldest first. *)

val set_irq_line : t -> bool -> unit

(** {1 Execution} *)

exception Bus_error of { addr : int; write : bool }

val step : t -> unit
(** Execute one instruction (taking a pending enabled interrupt
    first).  No-op when halted. *)

val run : ?max_insns:int -> t -> unit
(** Step until halted.  @raise Failure if the limit is exceeded. *)

val current_insn : t -> Isa.t
(** Decode (without executing) the instruction at PC. *)
