lib/isa/disasm.ml: Array Asm Buffer Isa List Memmap Printf String
