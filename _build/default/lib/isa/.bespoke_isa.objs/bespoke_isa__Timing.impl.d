lib/isa/timing.ml: Isa List
