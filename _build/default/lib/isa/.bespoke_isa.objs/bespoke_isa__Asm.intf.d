lib/isa/asm.mli:
