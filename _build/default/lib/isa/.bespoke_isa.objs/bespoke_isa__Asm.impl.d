lib/isa/asm.ml: Array Hashtbl Int Isa List Memmap Option Printf String
