lib/isa/memmap.ml:
