lib/isa/memmap.mli:
