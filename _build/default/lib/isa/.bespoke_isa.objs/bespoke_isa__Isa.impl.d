lib/isa/isa.ml: Format List Printf
