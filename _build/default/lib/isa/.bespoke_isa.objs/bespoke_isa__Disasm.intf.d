lib/isa/disasm.mli: Asm Isa
