lib/isa/iss.mli: Asm Isa
