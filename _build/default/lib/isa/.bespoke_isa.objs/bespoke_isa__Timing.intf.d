lib/isa/timing.mli: Isa
