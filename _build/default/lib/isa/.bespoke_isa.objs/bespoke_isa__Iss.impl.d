lib/isa/iss.ml: Array Asm Isa List Memmap Printf Timing
